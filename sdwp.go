// Package sdwp is the public facade of the spatial-data-warehouse
// personalization library — a from-scratch Go reproduction of Glorio,
// Mazón, Garrigós & Trujillo, "Using Web-based Personalization on Spatial
// Data Warehouses" (EDBT 2010).
//
// The implementation lives in internal packages; this package re-exports
// the types and constructors a downstream application needs:
//
//   - model the warehouse conceptually (NewSchemaBuilder → MD model, WrapGeo
//     → GeoMD model) and load instances into a Cube;
//   - declare the spatial-aware user model (NewProfile) and its users
//     (NewUserStore);
//   - write PRML personalization rules (plain text, see ParseRules) and
//     register them on an Engine;
//   - start per-user Sessions: schema rules personalize the GeoMD schema,
//     instance rules personalize the cube view, and spatial selections fire
//     tracking rules that learn the user's interests;
//   - query at scale: EngineOptions.QueryWorkers partitions every fact scan
//     across a worker pool (Cube.ExecuteParallel), and Session.QueryBatch /
//     Engine.ExecuteBatch / Cube.ExecuteBatch answer many queries in one
//     shared scan per fact table; every Session query routes through the
//     engine's scheduler (internal/qsched), which coalesces concurrent
//     queries into shared scans under cost-driven fair admission (each
//     tenant's share of batch slots tracks its attributed scan cost per
//     unit EngineOptions.TenantWeights weight, so a heavy tenant is
//     boundedly isolated), sheds over-share tenants under overload
//     (EngineOptions.MaxQueueDepth / TargetQueueWait → HTTP 429 +
//     Retry-After) before the EngineOptions.QueryTimeout deadline drops
//     stale queued work (per-request contexts via Session.QueryCtx), and
//     fronts everything with an epoch-keyed result cache — see
//     EngineOptions.CoalesceWindow / MaxInFlightScans / ResultCacheBytes
//     / MaxBatchQueries / AutoTune and Engine.SchedulerStats
//     (docs/ARCHITECTURE.md has the architecture, docs/OPERATIONS.md the
//     operator guide);
//   - shard for write and scan scale: EngineOptions.FactShards
//     hash-partitions every fact table behind the scheduler
//     (internal/shard) — scatter-gather scans over per-shard locks with
//     results identical to the unsharded engine, routed ingest via
//     Engine.AddFact, and a cross-batch artifact cache
//     (EngineOptions.ArtifactCacheBytes) that keeps hot filter bitmaps
//     and roll-up key columns alive between scans;
//   - optionally serve everything over HTTP with NewHTTPServer.
//
// See examples/quickstart for a complete program.
package sdwp

import (
	"sdwp/internal/core"
	"sdwp/internal/cube"
	"sdwp/internal/datagen"
	"sdwp/internal/geom"
	"sdwp/internal/geomd"
	"sdwp/internal/mdmodel"
	"sdwp/internal/prml"
	"sdwp/internal/qsched"
	"sdwp/internal/usermodel"
	"sdwp/internal/webapi"
)

// Geometry substrate.
type (
	// Geometry is any of the four geometric primitives.
	Geometry = geom.Geometry
	// Point is a lon/lat POINT.
	Point = geom.Point
	// Line is a LINE polyline.
	Line = geom.Line
	// Polygon is a POLYGON with optional holes.
	Polygon = geom.Polygon
	// Collection is a COLLECTION of geometries.
	Collection = geom.Collection
	// GeometryType enumerates POINT, LINE, POLYGON, COLLECTION.
	GeometryType = geom.Type
)

// Geometry type constants (the paper's GeometricTypes enumeration).
const (
	POINT      = geom.TypePoint
	LINE       = geom.TypeLine
	POLYGON    = geom.TypePolygon
	COLLECTION = geom.TypeCollection
)

// Pt constructs a point from longitude and latitude.
func Pt(lon, lat float64) Point { return geom.Pt(lon, lat) }

// ParseWKT parses Well-Known Text into a Geometry.
func ParseWKT(s string) (Geometry, error) { return geom.ParseWKT(s) }

// HaversineKm returns the great-circle distance between two lon/lat points
// in kilometres.
func HaversineKm(a, b Point) float64 { return geom.Haversine(a, b) }

// Conceptual models.
type (
	// MDSchema is a multidimensional model (facts, dimensions, hierarchies).
	MDSchema = mdmodel.Schema
	// SchemaBuilder assembles an MDSchema fluently.
	SchemaBuilder = mdmodel.Builder
	// GeoSchema is a GeoMD model: an MDSchema plus spatial levels and
	// thematic layers.
	GeoSchema = geomd.Schema
	// Profile is the spatial-aware user model definition (SUS, Fig. 3).
	Profile = usermodel.Profile
	// UserStore holds user profile instances.
	UserStore = usermodel.Store
	// UserEntity is one node of a user's profile graph.
	UserEntity = usermodel.Entity
)

// NewSchemaBuilder starts a multidimensional schema.
func NewSchemaBuilder(name string) *SchemaBuilder { return mdmodel.NewBuilder(name) }

// WrapGeo wraps a validated MD schema as an (initially non-spatial) GeoMD
// schema; personalization rules add the spatiality per user.
func WrapGeo(md *MDSchema) *GeoSchema { return geomd.New(md) }

// NewProfile starts an empty SUS profile definition.
func NewProfile() *Profile { return usermodel.NewProfile() }

// NewUserStore creates a profile store over a validated profile.
func NewUserStore(p *Profile) (*UserStore, error) { return usermodel.NewStore(p) }

// Warehouse storage and queries.
type (
	// Cube stores dimension members, facts and the geographic catalog.
	Cube = cube.Cube
	// Query is an OLAP aggregation request.
	Query = cube.Query
	// Result is a query result table with scan statistics.
	Result = cube.Result
	// LevelRef names a dimension level in queries.
	LevelRef = cube.LevelRef
	// MeasureAgg is one aggregate column of a query.
	MeasureAgg = cube.MeasureAgg
	// AttrFilter restricts facts by a dimension attribute at some level.
	AttrFilter = cube.AttrFilter
	// FilterOp enumerates attribute comparison operators.
	FilterOp = cube.FilterOp
	// View is a personalized window over a cube.
	View = cube.View
	// BatchOptions configures one shared batch scan
	// (Cube.ExecuteBatchOpt): worker count, the cross-query
	// subexpression-sharing and per-filter-sharing A/B switches, and an
	// optional cross-batch artifact cache.
	BatchOptions = cube.BatchOptions
	// SharingStats reports how much cross-query stage work one batch scan
	// shared (filter bitmaps — per set and per predicate — and group-key
	// columns).
	SharingStats = cube.SharingStats
	// ArtifactCache is the cross-batch artifact cache: doorkept,
	// version-invalidated storage for filter bitmaps (per-predicate and
	// composed per-set) and roll-up key columns (BatchOptions.Artifacts;
	// engines size one via EngineOptions.ArtifactCacheBytes).
	ArtifactCache = cube.ArtifactCache
)

// NewArtifactCache builds a cross-batch artifact cache bounded to
// maxBytes (nil when maxBytes <= 0 — caching off).
func NewArtifactCache(maxBytes int64) *ArtifactCache { return cube.NewArtifactCache(maxBytes) }

// Aggregation functions.
const (
	SUM   = cube.AggSum
	COUNT = cube.AggCount
	AVG   = cube.AggAvg
	MIN   = cube.AggMin
	MAX   = cube.AggMax
)

// Filter comparison operators (AttrFilter.Op).
const (
	OpEq = cube.OpEq
	OpNe = cube.OpNe
	OpLt = cube.OpLt
	OpLe = cube.OpLe
	OpGt = cube.OpGt
	OpGe = cube.OpGe
)

// NewCube creates an empty cube for a GeoMD schema.
func NewCube(s *GeoSchema) *Cube { return cube.New(s) }

// Rules and the engine.
type (
	// Rule is a parsed PRML personalization rule.
	Rule = prml.Rule
	// RuleValue is a PRML runtime value (used for designer parameters).
	RuleValue = prml.Value
	// Engine is the personalization engine.
	Engine = core.Engine
	// EngineOptions configures an Engine.
	EngineOptions = core.Options
	// Session is one decision maker's personalized analysis session.
	Session = core.Session
	// SelectionResult reports a spatial selection's effect.
	SelectionResult = core.SelectionResult
	// SchedulerStats snapshots the engine's query-scheduler counters:
	// coalesce ratio, cache hit rate, queue depth, admission timeouts,
	// overload-shed counters and per-tenant fair shares (snapshotted
	// atomically with the queue state), the live auto-tuned knob values,
	// the cross-query subexpression-sharing ratios, and — on a sharded
	// engine — shard fan-out and artifact-cache counters
	// (Engine.SchedulerStats, GET /api/stats).
	SchedulerStats = qsched.Stats
	// TenantShare is one tenant's fair-share ledger position
	// (SchedulerStats.FairShares).
	TenantShare = qsched.TenantShare
	// ArtifactCacheStats reports the cross-batch artifact cache
	// (SchedulerStats.ArtifactCache; EngineOptions.ArtifactCacheBytes).
	ArtifactCacheStats = cube.ArtifactCacheStats
	// SharedSubexprMode toggles cross-query subexpression sharing inside
	// batch scans (EngineOptions.SharedSubexpr).
	SharedSubexprMode = core.SharedSubexprMode
	// PackedColumnsMode toggles compressed-column execution — packed
	// predicate/aggregation kernels vs the unpacked scalar path
	// (EngineOptions.PackedColumns).
	PackedColumnsMode = core.PackedColumnsMode
	// PackedStats reports the compressed-column storage footprint
	// (SchedulerStats.Packed, Cube.PackedStats).
	PackedStats = cube.PackedStats
)

// Shared-subexpression modes for EngineOptions.SharedSubexpr: sharing is
// on by default, SharedSubexprOff restores per-query evaluation.
const (
	SharedSubexprOn  = core.SharedSubexprOn
	SharedSubexprOff = core.SharedSubexprOff
)

// Packed-column modes for EngineOptions.PackedColumns: packed execution
// is on by default, PackedColumnsOff forces the unpacked scalar path.
// Results are identical either way.
const (
	PackedColumnsOn  = core.PackedColumnsOn
	PackedColumnsOff = core.PackedColumnsOff
)

// Scheduler errors, re-exported for callers that match on them.
var (
	// ErrOverloaded is the base error of queries shed by the scheduler's
	// overload controller (EngineOptions.MaxQueueDepth / TargetQueueWait;
	// match with errors.Is — the web layer serves it as HTTP 429).
	ErrOverloaded = qsched.ErrOverloaded
	// ErrQueryTimeout is the base error of queries dropped from the
	// admission queue past their deadline (EngineOptions.QueryTimeout;
	// HTTP 504 at the web layer).
	ErrQueryTimeout = qsched.ErrTimeout
)

// OverloadError is the structured form of an overload shed (errors.As):
// the reason, the queue depth at the decision, and the drain-rate-derived
// Retry-After hint.
type OverloadError = qsched.OverloadError

// ParseRules parses PRML source into rules (without registering them).
func ParseRules(src string) ([]*Rule, error) { return prml.Parse(src) }

// FormatRules renders rules in canonical PRML text.
func FormatRules(rules ...*Rule) string { return prml.Format(rules...) }

// Number wraps a float64 as a rule parameter value.
func Number(f float64) RuleValue { return prml.NumberVal(f) }

// String wraps a string as a rule parameter value.
func String(s string) RuleValue { return prml.StringVal(s) }

// NewEngine creates a personalization engine over a loaded cube and user
// store.
func NewEngine(c *Cube, users *UserStore, opts EngineOptions) *Engine {
	return core.NewEngine(c, users, opts)
}

// Web layer.

// HTTPServer serves the personalization API over HTTP.
type HTTPServer = webapi.Server

// NewHTTPServer builds the HTTP handler for an engine.
func NewHTTPServer(e *Engine) *HTTPServer { return webapi.NewServer(e) }

// Synthetic data (the examples' and benchmarks' workload source).
type (
	// DataConfig sizes a synthetic warehouse.
	DataConfig = datagen.Config
	// Dataset is a generated warehouse with ground-truth locations.
	Dataset = datagen.Dataset
)

// DefaultDataConfig returns the example-sized synthetic warehouse
// configuration.
func DefaultDataConfig() DataConfig { return datagen.Default() }

// GenerateData builds a synthetic warehouse.
func GenerateData(cfg DataConfig) (*Dataset, error) { return datagen.Generate(cfg) }

// SalesSchema returns the paper's Fig. 2 sales analysis schema.
func SalesSchema() *GeoSchema { return datagen.SalesSchema() }

// Fig4Profile returns the paper's Fig. 4 spatial-aware user model.
func Fig4Profile() (*Profile, error) { return datagen.Fig4Profile() }

// NewSalesUserStore creates a Fig. 4 user store with the given user→role
// assignments.
func NewSalesUserStore(roles map[string]string) (*UserStore, error) {
	return datagen.NewUserStore(roles)
}

// PaperRules is the PRML source of the paper's Section 5 sample rules,
// verbatim: the addSpatiality schema rule (Example 5.1), the 5kmStores
// instance rule (Example 5.2), and the IntAirportCity/TrainAirportCity
// interest rules (Example 5.3). Engines using TrainAirportCity must declare
// the "threshold" parameter.
const PaperRules = `
Rule:addSpatiality When SessionStart do
  If (SUS.DecisionMaker.dm2role.name = 'RegionalSalesManager') then
    AddLayer('Airport', POINT)
    BecomeSpatial(MD.Sales.Store.geometry, POINT)
  endIf
endWhen

Rule:5kmStores When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 5km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen

Rule:IntAirportCity When SpatialSelection(GeoMD.Store.City,
    Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km) do
  SetContent(SUS.DecisionMaker.dm2airportcity.degree,
    SUS.DecisionMaker.dm2airportcity.degree + 1)
endWhen

Rule:TrainAirportCity When SessionStart do
  If (SUS.DecisionMaker.dm2airportcity.degree > threshold) then
    AddLayer('Train', LINE)
    Foreach t, c, a in (GeoMD.Train, GeoMD.Store.City, GeoMD.Airport)
      If (Distance(Intersection(Intersection(t.geometry, c.geometry), a.geometry)) < 50km) then
        SelectInstance(c)
      endIf
    endForeach
  endIf
endWhen
`

// Package datagen generates the synthetic spatial warehouse used by the
// examples, tests and benchmark harness: the paper's Fig. 2 sales schema,
// the Fig. 4 spatial-aware user profile, and a deterministic geographic
// catalog standing in for the external spatial data sources the paper
// relies on (geoportals, OpenStreetMap, commercial map layers) — see the
// substitution table in DESIGN.md.
//
// Geography is generated over a Spain-like bounding box in lon/lat degrees.
// Train lines are polylines whose vertices pass exactly through the city
// and airport points they serve, so the paper's Example 5.3 rule (splitting
// a train line at a city and an airport) finds real connections.
package datagen

import (
	"fmt"
	"math/rand"

	"sdwp/internal/cube"
	"sdwp/internal/geom"
	"sdwp/internal/geomd"
	"sdwp/internal/mdmodel"
	"sdwp/internal/usermodel"
)

// Config sizes the generated warehouse. Zero values take defaults.
type Config struct {
	Seed      int64
	States    int // second-coarsest Store level
	Cities    int
	Stores    int
	Customers int
	Products  int
	Days      int
	Sales     int

	// AirportEvery places one airport near every n-th city.
	AirportEvery int
	// TrainLines is the number of train lines; each connects a run of
	// nearby cities and the airports among them.
	TrainLines int
	// Hospitals is the number of hospital points (an extra catalog layer
	// exercising rules beyond the paper's examples).
	Hospitals int
	// Highways is the number of highway polylines.
	Highways int

	// Bounding box (lon/lat degrees); defaults to a Spain-like extent.
	LonMin, LonMax, LatMin, LatMax float64
}

// Default returns the configuration used by the examples: a small but
// non-trivial warehouse (fast to build in tests).
func Default() Config {
	return Config{
		Seed:         1,
		States:       8,
		Cities:       60,
		Stores:       300,
		Customers:    500,
		Products:     80,
		Days:         90,
		Sales:        20000,
		AirportEvery: 5,
		TrainLines:   12,
		Hospitals:    40,
		Highways:     8,
	}
}

func (c *Config) fillDefaults() {
	d := Default()
	if c.States == 0 {
		c.States = d.States
	}
	if c.Cities == 0 {
		c.Cities = d.Cities
	}
	if c.Stores == 0 {
		c.Stores = d.Stores
	}
	if c.Customers == 0 {
		c.Customers = d.Customers
	}
	if c.Products == 0 {
		c.Products = d.Products
	}
	if c.Days == 0 {
		c.Days = d.Days
	}
	if c.Sales == 0 {
		c.Sales = d.Sales
	}
	if c.AirportEvery == 0 {
		c.AirportEvery = d.AirportEvery
	}
	if c.TrainLines == 0 {
		c.TrainLines = d.TrainLines
	}
	if c.LonMax == 0 && c.LonMin == 0 {
		c.LonMin, c.LonMax = -9.0, 3.0
	}
	if c.LatMax == 0 && c.LatMin == 0 {
		c.LatMin, c.LatMax = 36.0, 43.5
	}
}

// Layer names of the geographic catalog.
const (
	LayerAirport  = "Airport"
	LayerTrain    = "Train"
	LayerHospital = "Hospital"
	LayerHighway  = "Highway"
)

// Dataset is a generated warehouse plus the ground-truth locations tests
// assert against.
type Dataset struct {
	Cube *cube.Cube

	CityLocs     []geom.Point // by City member index
	StoreLocs    []geom.Point // by Store member index
	StoreCity    []int32      // Store member → City member
	AirportLocs  []geom.Point // by Airport layer object index
	AirportCity  []int32      // Airport object → City member it serves
	TrainRoutes  [][]int32    // per train line: the city members it passes
	CustomerLocs []geom.Point
}

// SalesSchema builds the paper's Fig. 2 multidimensional model for sales
// analysis: the Sales fact with UnitSales/StoreCost/StoreSales measures and
// the Customer, Store (expanded hierarchy), Product and Time dimensions.
func SalesSchema() *geomd.Schema {
	b := mdmodel.NewBuilder("SalesDW")
	b.Dimension("Store").
		Level("Store", "name").OID("storeID").Attr("address", mdmodel.TypeString).
		Level("City", "name").Attr("population", mdmodel.TypeNumber).
		Level("State", "name").
		Level("Country", "name")
	b.Dimension("Customer").
		Level("Customer", "name").Attr("age", mdmodel.TypeNumber).
		Level("Segment", "name")
	b.Dimension("Product").
		Level("Product", "name").Attr("brand", mdmodel.TypeString).
		Level("Family", "name")
	b.Dimension("Time").
		Level("Day", "date").
		Level("Month", "name").
		Level("Year", "name")
	b.Fact("Sales").
		Measure("UnitSales").Measure("StoreCost").Measure("StoreSales").
		Uses("Store", "Customer", "Product", "Time")
	return geomd.New(b.MustBuild())
}

// Fig4Profile builds the paper's Fig. 4 spatial-aware user model: a
// DecisionMaker («User») with a Role («Characteristic»), an AnalysisSession
// («Session») carrying a Location («LocationContext») point, and an
// AirportCity («SpatialSelection») interest counter.
func Fig4Profile() (*usermodel.Profile, error) {
	p := usermodel.NewProfile()
	type cls struct {
		name   string
		stereo usermodel.Stereotype
		props  []usermodel.PropDef
	}
	for _, c := range []cls{
		{"DecisionMaker", usermodel.StereoUser,
			[]usermodel.PropDef{{Name: "name", Type: usermodel.PropString}}},
		{"Role", usermodel.StereoCharacteristic,
			[]usermodel.PropDef{{Name: "name", Type: usermodel.PropString}}},
		{"AnalysisSession", usermodel.StereoSession,
			[]usermodel.PropDef{{Name: "startedAt", Type: usermodel.PropString}}},
		{"Location", usermodel.StereoLocationContext,
			[]usermodel.PropDef{{Name: "geometry", Type: usermodel.PropGeometry, GeomType: geom.TypePoint}}},
		{"AirportCity", usermodel.StereoSpatialSelection, nil}, // degree auto-added
	} {
		if _, err := p.AddClass(c.name, c.stereo, c.props...); err != nil {
			return nil, err
		}
	}
	for _, a := range [][3]string{
		{"DecisionMaker", "dm2role", "Role"},
		{"DecisionMaker", "dm2session", "AnalysisSession"},
		{"DecisionMaker", "dm2airportcity", "AirportCity"},
		{"AnalysisSession", "s2location", "Location"},
	} {
		if err := p.AddAssoc(a[0], a[1], a[2]); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// NewUserStore builds a user store over the Fig. 4 profile with the given
// users pre-created and their Role characteristic set.
func NewUserStore(roles map[string]string) (*usermodel.Store, error) {
	p, err := Fig4Profile()
	if err != nil {
		return nil, err
	}
	st, err := usermodel.NewStore(p)
	if err != nil {
		return nil, err
	}
	for user, roleName := range roles {
		dm, err := st.Create(user)
		if err != nil {
			return nil, err
		}
		if err := dm.Set("name", user); err != nil {
			return nil, err
		}
		role := usermodel.NewEntity(p.Class("Role"))
		if err := role.Set("name", roleName); err != nil {
			return nil, err
		}
		if err := dm.Link(p, "dm2role", role); err != nil {
			return nil, err
		}
		ac := usermodel.NewEntity(p.Class("AirportCity"))
		if err := dm.Link(p, "dm2airportcity", ac); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// Generate builds the warehouse.
func Generate(cfg Config) (*Dataset, error) {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := SalesSchema()
	c := cube.New(schema)
	ds := &Dataset{Cube: c}

	// --- Store dimension (coarse to fine) ---
	country, err := c.AddMember("Store", "Country", "Spain", cube.NoParent)
	if err != nil {
		return nil, err
	}
	for s := 0; s < cfg.States; s++ {
		if _, err := c.AddMember("Store", "State", fmt.Sprintf("State%02d", s), country); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Cities; i++ {
		loc := geom.Pt(
			cfg.LonMin+rng.Float64()*(cfg.LonMax-cfg.LonMin),
			cfg.LatMin+rng.Float64()*(cfg.LatMax-cfg.LatMin),
		)
		state := int32(i % cfg.States)
		city, err := c.AddMember("Store", "City", fmt.Sprintf("City%03d", i), state)
		if err != nil {
			return nil, err
		}
		if err := c.SetMemberAttr("Store", "City", city, "population",
			float64(20000+rng.Intn(3000000))); err != nil {
			return nil, err
		}
		if err := c.SetMemberGeometry("Store", "City", city, loc); err != nil {
			return nil, err
		}
		ds.CityLocs = append(ds.CityLocs, loc)
	}
	for i := 0; i < cfg.Stores; i++ {
		city := int32(rng.Intn(cfg.Cities))
		base := ds.CityLocs[city]
		// Stores scatter within ~6 km of their city centre.
		loc := geom.Pt(
			base.X+rng.NormFloat64()*0.03,
			base.Y+rng.NormFloat64()*0.02,
		)
		st, err := c.AddMember("Store", "Store", fmt.Sprintf("Store%04d", i), city)
		if err != nil {
			return nil, err
		}
		if err := c.SetMemberAttr("Store", "Store", st, "storeID", fmt.Sprintf("S%04d", i)); err != nil {
			return nil, err
		}
		if err := c.SetMemberAttr("Store", "Store", st, "address",
			fmt.Sprintf("%d Main St, City%03d", i, city)); err != nil {
			return nil, err
		}
		if err := c.SetMemberGeometry("Store", "Store", st, loc); err != nil {
			return nil, err
		}
		ds.StoreLocs = append(ds.StoreLocs, loc)
		ds.StoreCity = append(ds.StoreCity, city)
	}

	// --- Customer dimension ---
	segments := []string{"Retail", "Wholesale", "Online"}
	for i, s := range segments {
		if _, err := c.AddMember("Customer", "Segment", s, cube.NoParent); err != nil {
			return nil, err
		}
		_ = i
	}
	for i := 0; i < cfg.Customers; i++ {
		city := ds.CityLocs[rng.Intn(cfg.Cities)]
		loc := geom.Pt(city.X+rng.NormFloat64()*0.05, city.Y+rng.NormFloat64()*0.04)
		cu, err := c.AddMember("Customer", "Customer", fmt.Sprintf("Customer%05d", i),
			int32(rng.Intn(len(segments))))
		if err != nil {
			return nil, err
		}
		if err := c.SetMemberAttr("Customer", "Customer", cu, "age", float64(18+rng.Intn(70))); err != nil {
			return nil, err
		}
		if err := c.SetMemberGeometry("Customer", "Customer", cu, loc); err != nil {
			return nil, err
		}
		ds.CustomerLocs = append(ds.CustomerLocs, loc)
	}

	// --- Product dimension ---
	families := []string{"Food", "Drink", "Household", "Electronics", "Clothing"}
	for _, f := range families {
		if _, err := c.AddMember("Product", "Family", f, cube.NoParent); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Products; i++ {
		pr, err := c.AddMember("Product", "Product", fmt.Sprintf("Product%03d", i),
			int32(i%len(families)))
		if err != nil {
			return nil, err
		}
		if err := c.SetMemberAttr("Product", "Product", pr, "brand",
			fmt.Sprintf("Brand%02d", i%17)); err != nil {
			return nil, err
		}
	}

	// --- Time dimension ---
	months := (cfg.Days + 29) / 30
	years := (months + 11) / 12
	for y := 0; y < years; y++ {
		if _, err := c.AddMember("Time", "Year", fmt.Sprintf("%d", 2009+y), cube.NoParent); err != nil {
			return nil, err
		}
	}
	for m := 0; m < months; m++ {
		if _, err := c.AddMember("Time", "Month", fmt.Sprintf("%d-%02d", 2009+m/12, m%12+1),
			int32(m/12)); err != nil {
			return nil, err
		}
	}
	for d := 0; d < cfg.Days; d++ {
		m := d / 30
		if _, err := c.AddMember("Time", "Day", fmt.Sprintf("%d-%02d-%02d", 2009+m/12, m%12+1, d%30+1),
			int32(m)); err != nil {
			return nil, err
		}
	}

	// --- Geographic catalog layers ---
	if err := genLayers(cfg, rng, c, ds); err != nil {
		return nil, err
	}

	// --- Sales facts ---
	for i := 0; i < cfg.Sales; i++ {
		units := float64(1 + rng.Intn(20))
		cost := units * (2 + rng.Float64()*8)
		err := c.AddFact("Sales", map[string]int32{
			"Store":    int32(rng.Intn(cfg.Stores)),
			"Customer": int32(rng.Intn(cfg.Customers)),
			"Product":  int32(rng.Intn(cfg.Products)),
			"Time":     int32(rng.Intn(cfg.Days)),
		}, map[string]float64{
			"UnitSales":  units,
			"StoreCost":  cost,
			"StoreSales": cost * (1.1 + rng.Float64()*0.5),
		})
		if err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// genLayers populates the geographic catalog.
func genLayers(cfg Config, rng *rand.Rand, c *cube.Cube, ds *Dataset) error {
	// Airports near every AirportEvery-th city, offset ~8-15 km.
	if _, err := c.RegisterLayer(LayerAirport, geom.TypePoint); err != nil {
		return err
	}
	for city := 0; city < cfg.Cities; city += cfg.AirportEvery {
		base := ds.CityLocs[city]
		loc := geom.Pt(base.X+0.08+rng.Float64()*0.06, base.Y+0.02+rng.Float64()*0.04)
		if _, err := c.AddLayerObject(LayerAirport, fmt.Sprintf("APT%03d", city), loc); err != nil {
			return err
		}
		ds.AirportLocs = append(ds.AirportLocs, loc)
		ds.AirportCity = append(ds.AirportCity, int32(city))
	}

	// Train lines: each connects a run of cities ordered by longitude,
	// passing exactly through city points and the airports of served
	// cities.
	if _, err := c.RegisterLayer(LayerTrain, geom.TypeLine); err != nil {
		return err
	}
	cityByAirport := map[int32]geom.Point{}
	for i, cityIdx := range ds.AirportCity {
		cityByAirport[cityIdx] = ds.AirportLocs[i]
	}
	for line := 0; line < cfg.TrainLines; line++ {
		start := rng.Intn(cfg.Cities)
		stops := 3 + rng.Intn(4)
		var pts []geom.Point
		var route []int32
		for s := 0; s < stops; s++ {
			cityIdx := int32((start + s*3) % cfg.Cities)
			route = append(route, cityIdx)
			pts = append(pts, ds.CityLocs[cityIdx])
			// Swing by the airport if this city has one.
			if apt, ok := cityByAirport[cityIdx]; ok {
				pts = append(pts, apt)
			}
		}
		if len(pts) < 2 {
			continue
		}
		if _, err := c.AddLayerObject(LayerTrain, fmt.Sprintf("Line%02d", line),
			geom.Line{Pts: pts}); err != nil {
			return err
		}
		ds.TrainRoutes = append(ds.TrainRoutes, route)
	}

	// Hospitals: random points near cities.
	if _, err := c.RegisterLayer(LayerHospital, geom.TypePoint); err != nil {
		return err
	}
	for i := 0; i < cfg.Hospitals; i++ {
		base := ds.CityLocs[rng.Intn(cfg.Cities)]
		loc := geom.Pt(base.X+rng.NormFloat64()*0.02, base.Y+rng.NormFloat64()*0.02)
		if _, err := c.AddLayerObject(LayerHospital, fmt.Sprintf("HOSP%03d", i), loc); err != nil {
			return err
		}
	}

	// Highways: long polylines across the bounding box.
	if _, err := c.RegisterLayer(LayerHighway, geom.TypeLine); err != nil {
		return err
	}
	for i := 0; i < cfg.Highways; i++ {
		y := cfg.LatMin + rng.Float64()*(cfg.LatMax-cfg.LatMin)
		pts := []geom.Point{}
		for x := cfg.LonMin; x <= cfg.LonMax; x += 1.5 {
			pts = append(pts, geom.Pt(x, y+rng.NormFloat64()*0.2))
		}
		if _, err := c.AddLayerObject(LayerHighway, fmt.Sprintf("HWY%02d", i),
			geom.Line{Pts: pts}); err != nil {
			return err
		}
	}
	return nil
}

package datagen

import (
	"strings"
	"testing"

	"sdwp/internal/geom"
	"sdwp/internal/usermodel"
)

// TestFig2SalesSchema is experiment F2: the generated schema has the shape
// of the paper's Fig. 2.
func TestFig2SalesSchema(t *testing.T) {
	s := SalesSchema()
	md := s.MD
	if err := md.Validate(); err != nil {
		t.Fatal(err)
	}
	f := md.Fact("Sales")
	if f == nil {
		t.Fatal("Sales fact missing")
	}
	for _, m := range []string{"UnitSales", "StoreCost", "StoreSales"} {
		if f.Measure(m) == nil {
			t.Errorf("measure %s missing", m)
		}
	}
	for _, d := range []string{"Store", "Customer", "Product", "Time"} {
		if !f.HasDimension(d) {
			t.Errorf("dimension %s missing from fact", d)
		}
	}
	// The expanded Store hierarchy of Fig. 2.
	store := md.Dimension("Store")
	want := []string{"Store", "City", "State", "Country"}
	if len(store.Levels) != len(want) {
		t.Fatalf("Store levels = %d", len(store.Levels))
	}
	for i, lv := range want {
		if store.Levels[i].Name != lv {
			t.Errorf("Store level %d = %s, want %s", i, store.Levels[i].Name, lv)
		}
	}
	// Base schema carries no spatiality — that is personalization's job.
	if len(s.SpatialLevels()) != 0 || len(s.Layers()) != 0 {
		t.Error("base schema must not be spatial")
	}
	// Rendered form mentions the Fig. 2 elements.
	out := s.Render()
	for _, frag := range []string{"Fact Sales", "Dimension Store", "Base City"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
}

func TestFig4ProfileShape(t *testing.T) {
	p, err := Fig4Profile()
	if err != nil {
		t.Fatal(err)
	}
	if p.UserClass() != "DecisionMaker" {
		t.Errorf("user class = %q", p.UserClass())
	}
	for _, want := range []struct {
		class  string
		stereo usermodel.Stereotype
	}{
		{"Role", usermodel.StereoCharacteristic},
		{"AnalysisSession", usermodel.StereoSession},
		{"Location", usermodel.StereoLocationContext},
		{"AirportCity", usermodel.StereoSpatialSelection},
	} {
		c := p.Class(want.class)
		if c == nil || c.Stereo != want.stereo {
			t.Errorf("class %s = %+v", want.class, c)
		}
	}
	if p.Class("AirportCity").Prop("degree") == nil {
		t.Error("AirportCity degree missing")
	}
}

func TestNewUserStore(t *testing.T) {
	st, err := NewUserStore(map[string]string{"alice": "RegionalSalesManager"})
	if err != nil {
		t.Fatal(err)
	}
	dm := st.Get("alice")
	if dm == nil {
		t.Fatal("alice missing")
	}
	v, err := dm.Resolve([]string{"dm2role", "name"})
	if err != nil || v != "RegionalSalesManager" {
		t.Fatalf("role = %v, %v", v, err)
	}
	if d, err := dm.Resolve([]string{"dm2airportcity", "degree"}); err != nil || d != 0.0 {
		t.Fatalf("degree = %v, %v", d, err)
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Cities: 20, Stores: 80, Customers: 50, Products: 30, Days: 40, Sales: 1000, TrainLines: 5, Hospitals: 10, Highways: 3, States: 4, AirportEvery: 4}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := ds.Cube
	if got := c.Dimension("Store").Level("City").Len(); got != 20 {
		t.Errorf("cities = %d", got)
	}
	if got := c.Dimension("Store").Level("Store").Len(); got != 80 {
		t.Errorf("stores = %d", got)
	}
	if got := c.FactData("Sales").Len(); got != 1000 {
		t.Errorf("sales = %d", got)
	}
	if got := c.Layer(LayerAirport).Len(); got != 5 { // every 4th of 20 cities
		t.Errorf("airports = %d", got)
	}
	if c.Layer(LayerTrain).Len() == 0 || c.Layer(LayerHospital).Len() != 10 || c.Layer(LayerHighway).Len() != 3 {
		t.Error("layer sizes wrong")
	}
	// Ground-truth slices align.
	if len(ds.CityLocs) != 20 || len(ds.StoreLocs) != 80 || len(ds.StoreCity) != 80 {
		t.Error("ground truth slices wrong")
	}
	// Determinism: same seed, same data.
	ds2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.StoreLocs {
		if !ds.StoreLocs[i].Eq(ds2.StoreLocs[i]) {
			t.Fatalf("store %d location differs across runs", i)
		}
	}
	// Different seed, different data.
	cfg.Seed = 8
	ds3, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ds.StoreLocs {
		if !ds.StoreLocs[i].Eq(ds3.StoreLocs[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical geography")
	}
}

func TestGenerateGeographyInvariants(t *testing.T) {
	ds, err := Generate(Default())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	// Stores are near their city (within ~25 km; 4σ of the scatter).
	for i, sl := range ds.StoreLocs {
		cityLoc := ds.CityLocs[ds.StoreCity[i]]
		if d := geom.Haversine(sl, cityLoc); d > 25 {
			t.Errorf("store %d is %.1f km from its city", i, d)
		}
	}
	// Airports are 5-20 km from their city.
	for i, al := range ds.AirportLocs {
		cityLoc := ds.CityLocs[ds.AirportCity[i]]
		d := geom.Haversine(al, cityLoc)
		if d < 2 || d > 25 {
			t.Errorf("airport %d is %.1f km from its city", i, d)
		}
	}
	// Train lines pass exactly through the cities on their route.
	trains := ds.Cube.Layer(LayerTrain)
	for li, route := range ds.TrainRoutes {
		line := trains.Geometry(int32(li))
		for _, cityIdx := range route {
			if geom.Distance(ds.CityLocs[cityIdx], line) > 1e-9 {
				t.Errorf("train %d misses city %d", li, cityIdx)
			}
		}
	}
	// All coordinates inside the bounding box (with scatter slack).
	box := geom.Rect{Min: geom.Pt(cfg.LonMin-0.5, cfg.LatMin-0.5), Max: geom.Pt(cfg.LonMax+0.5, cfg.LatMax+0.5)}
	_ = box
	for _, p := range ds.CityLocs {
		if p.X < -9.0 || p.X > 3.0 || p.Y < 36.0 || p.Y > 43.5 {
			t.Fatalf("city outside bbox: %v", p)
		}
	}
}

func TestGenerateFactKeysValid(t *testing.T) {
	ds, err := Generate(Config{Seed: 3, Cities: 10, Stores: 30, Customers: 20, Products: 10, Days: 20, Sales: 500})
	if err != nil {
		t.Fatal(err)
	}
	fd := ds.Cube.FactData("Sales")
	nStores := ds.Cube.Dimension("Store").Level("Store").Len()
	for i := int32(0); int(i) < fd.Len(); i++ {
		k, ok := fd.DimKey("Store", i)
		if !ok || k < 0 || int(k) >= nStores {
			t.Fatalf("fact %d has bad store key %d", i, k)
		}
		if v, ok := fd.Measure("UnitSales", i); !ok || v <= 0 {
			t.Fatalf("fact %d has bad UnitSales %v", i, v)
		}
	}
}

func TestDefaultsFill(t *testing.T) {
	var cfg Config
	cfg.fillDefaults()
	if cfg.Cities == 0 || cfg.LonMin == 0 && cfg.LonMax == 0 {
		t.Error("defaults not filled")
	}
	if _, err := Generate(Config{}); err != nil {
		t.Fatalf("zero config must generate: %v", err)
	}
}

func BenchmarkGenerateDefault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Default()); err != nil {
			b.Fatal(err)
		}
	}
}

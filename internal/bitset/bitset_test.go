package bitset

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	if s.Any() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d, want 6", s.Count())
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if s.Test(2) {
		t.Fatal("bit 2 should be clear")
	}
}

func TestFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		s := Full(n)
		if got := s.Count(); got != n {
			t.Errorf("Full(%d).Count() = %d", n, got)
		}
	}
}

func TestNilUniverseSemantics(t *testing.T) {
	var s *Set
	if !s.Test(5) {
		t.Error("nil set must Test true for non-negative index")
	}
	if s.Test(-1) {
		t.Error("nil set must Test false for negative index")
	}
	if s.Clone() != nil {
		t.Error("Clone of nil must be nil")
	}
	if s.String() != "{universe}" {
		t.Errorf("String = %q", s.String())
	}
	// IntersectWith(nil) is a no-op.
	a := FromIndices(10, []int{1, 2, 3})
	a.IntersectWith(nil)
	if a.Count() != 3 {
		t.Error("IntersectWith(nil) changed the set")
	}
}

func TestSetOps(t *testing.T) {
	a := FromIndices(200, []int{1, 100, 150})
	b := FromIndices(200, []int{100, 199})

	u := a.Clone()
	u.UnionWith(b)
	if got := u.Indices(); len(got) != 4 {
		t.Fatalf("union = %v", got)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Indices(); len(got) != 1 || got[0] != 100 {
		t.Fatalf("intersection = %v", got)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got := d.Indices(); len(got) != 2 || got[0] != 1 || got[1] != 150 {
		t.Fatalf("difference = %v", got)
	}
}

func TestForEachOrderAndStop(t *testing.T) {
	s := FromIndices(300, []int{7, 64, 65, 256})
	var got []int
	s.ForEach(func(i int) bool { got = append(got, i); return true })
	want := []int{7, 64, 65, 256}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	var first []int
	s.ForEach(func(i int) bool { first = append(first, i); return false })
	if len(first) != 1 || first[0] != 7 {
		t.Fatalf("early stop got %v", first)
	}
}

func TestEqual(t *testing.T) {
	a := FromIndices(64, []int{3})
	b := FromIndices(64, []int{3})
	c := FromIndices(65, []int{3})
	if !a.Equal(b) {
		t.Error("equal sets reported unequal")
	}
	if a.Equal(c) {
		t.Error("different capacity reported equal")
	}
	var n1, n2 *Set
	if !n1.Equal(n2) {
		t.Error("nil == nil expected")
	}
	if a.Equal(nil) {
		t.Error("set == nil unexpected")
	}
}

func TestPanics(t *testing.T) {
	s := New(10)
	mustPanic(t, "negative New", func() { New(-1) })
	mustPanic(t, "Set out of range", func() { s.Set(10) })
	mustPanic(t, "Clear negative", func() { s.Clear(-1) })
	mustPanic(t, "nil write", func() { var n *Set; n.Set(0) })
	mustPanic(t, "capacity mismatch", func() { s.UnionWith(New(11)) })
	mustPanic(t, "nil operand", func() { s.UnionWith(nil) })
}

// Property: for random index sets, Count == len(unique indices) and
// Indices round-trips through FromIndices.
func TestQuickFromIndicesRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 1 << 16
		seen := map[int]bool{}
		idx := make([]int, 0, len(raw))
		for _, r := range raw {
			i := int(r)
			if !seen[i] {
				seen[i] = true
				idx = append(idx, i)
			}
		}
		s := FromIndices(n, idx)
		if s.Count() != len(idx) {
			return false
		}
		back := s.Indices()
		s2 := FromIndices(n, back)
		return s.Equal(s2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish — difference is intersection with complement.
func TestQuickDifferenceLaw(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		a := New(n)
		b := New(n)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		d := a.Clone()
		d.DifferenceWith(b)
		// complement of b
		nb := Full(n)
		nb.DifferenceWith(b)
		i := a.Clone()
		i.IntersectWith(nb)
		return d.Equal(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCount(b *testing.B) {
	s := Full(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Count()
	}
}

func BenchmarkForEachSparse(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < 1<<20; i += 1024 {
		s.Set(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := 0
		s.ForEach(func(int) bool { c++; return true })
	}
}

func TestStringRendering(t *testing.T) {
	if got := FromIndices(10, []int{1, 5}).String(); got != "{1, 5}" {
		t.Errorf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
	// More than 16 bits truncate with an ellipsis.
	big := Full(64)
	s := big.String()
	if len(s) == 0 || s[len(s)-1] != '}' {
		t.Errorf("String shape: %q", s)
	}
	found := false
	for _, r := range s {
		if r == '…' {
			found = true
		}
	}
	if !found {
		t.Errorf("expected ellipsis in %q", s)
	}
}

func TestForEachRange(t *testing.T) {
	s := New(200)
	bits := []int{0, 1, 63, 64, 65, 127, 128, 190, 199}
	for _, b := range bits {
		s.Set(b)
	}
	collect := func(lo, hi int) []int {
		var out []int
		s.ForEachRange(lo, hi, func(i int) bool {
			out = append(out, i)
			return true
		})
		return out
	}
	want := func(lo, hi int) []int {
		var out []int
		for _, b := range bits {
			if b >= lo && b < hi {
				out = append(out, b)
			}
		}
		return out
	}
	// Ranges chosen to hit word boundaries, partial first/last words,
	// single-word ranges, empty ranges and clamping.
	ranges := [][2]int{
		{0, 200}, {0, 64}, {64, 128}, {1, 64}, {63, 65}, {65, 127},
		{128, 128}, {130, 129}, {-5, 10}, {190, 1000}, {199, 200}, {0, 1},
	}
	for _, r := range ranges {
		got, exp := collect(r[0], r[1]), want(r[0], r[1])
		if fmt.Sprint(got) != fmt.Sprint(exp) {
			t.Errorf("ForEachRange(%d, %d) = %v, want %v", r[0], r[1], got, exp)
		}
	}
	// Early stop.
	var seen []int
	s.ForEachRange(0, 200, func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 3
	})
	if len(seen) != 3 {
		t.Errorf("early stop visited %v", seen)
	}
	// Nil receiver iterates nothing.
	var nilSet *Set
	nilSet.ForEachRange(0, 10, func(int) bool { t.Error("nil set visited"); return true })

	// Full-range ForEachRange agrees with ForEach.
	var all []int
	s.ForEach(func(i int) bool { all = append(all, i); return true })
	if fmt.Sprint(collect(0, s.Len())) != fmt.Sprint(all) {
		t.Errorf("full range %v != ForEach %v", collect(0, s.Len()), all)
	}
}

// TestCountRange checks the popcount-in-range used by the staged batch
// executor for scan statistics: it must agree with ForEachRange on every
// boundary shape, clamp out-of-range bounds, and count nil as 0.
func TestCountRange(t *testing.T) {
	s := New(200)
	for _, b := range []int{0, 1, 63, 64, 65, 127, 128, 190, 199} {
		s.Set(b)
	}
	ranges := [][2]int{
		{0, 200}, {0, 64}, {64, 128}, {1, 64}, {63, 65}, {65, 127},
		{128, 128}, {130, 129}, {-5, 10}, {190, 1000}, {199, 200}, {0, 1},
		{62, 66}, {120, 135},
	}
	for _, r := range ranges {
		want := 0
		s.ForEachRange(r[0], r[1], func(int) bool { want++; return true })
		if got := s.CountRange(r[0], r[1]); got != want {
			t.Errorf("CountRange(%d, %d) = %d, want %d", r[0], r[1], got, want)
		}
	}
	if got := s.CountRange(0, s.Len()); got != s.Count() {
		t.Errorf("full CountRange = %d, want Count %d", got, s.Count())
	}
	if New(100).CountRange(0, 100) != 0 {
		t.Error("empty set counted bits")
	}
	var nilSet *Set
	if nilSet.CountRange(0, 10) != 0 {
		t.Error("nil CountRange != 0")
	}
	empty := New(0)
	if empty.CountRange(0, 10) != 0 {
		t.Error("zero-capacity CountRange != 0")
	}
}

// TestReset checks the pooled-buffer reset: all bits clear, capacity
// kept, nil write panics.
func TestReset(t *testing.T) {
	s := FromIndices(130, []int{0, 63, 64, 129})
	s.Reset()
	if s.Any() || s.Len() != 130 {
		t.Errorf("after Reset: any=%v len=%d", s.Any(), s.Len())
	}
	s.Set(5) // still writable at full capacity
	if !s.Test(5) {
		t.Error("set after Reset lost")
	}
	defer func() {
		if recover() == nil {
			t.Error("nil Reset did not panic")
		}
	}()
	var nilSet *Set
	nilSet.Reset()
}

// TestIntersectWithEdgeCases covers the mask combination the staged
// executor builds per query (filter bitmap ∩ view mask): empty operands,
// set bits straddling word boundaries, nil-as-universe, and disjoint sets.
func TestIntersectWithEdgeCases(t *testing.T) {
	// Bits straddling the 64-bit word boundary on both sides.
	a := FromIndices(130, []int{62, 63, 64, 65, 127, 128})
	b := FromIndices(130, []int{63, 64, 128, 129})
	a.IntersectWith(b)
	if got, want := fmt.Sprint(a.Indices()), fmt.Sprint([]int{63, 64, 128}); got != want {
		t.Errorf("straddle intersection = %s, want %s", got, want)
	}

	// Intersecting with an empty set clears everything.
	c := Full(100)
	c.IntersectWith(New(100))
	if c.Any() {
		t.Errorf("intersection with empty set left bits: %v", c.Indices())
	}

	// An empty receiver stays empty.
	d := New(100)
	d.IntersectWith(Full(100))
	if d.Any() {
		t.Error("empty receiver gained bits")
	}

	// nil operand is the universe: no change.
	e := FromIndices(100, []int{0, 64, 99})
	e.IntersectWith(nil)
	if got, want := fmt.Sprint(e.Indices()), fmt.Sprint([]int{0, 64, 99}); got != want {
		t.Errorf("universe intersection changed set: %s, want %s", got, want)
	}

	// Disjoint sets intersect to empty.
	f := FromIndices(130, []int{0, 64})
	f.IntersectWith(FromIndices(130, []int{1, 65, 129}))
	if f.Any() {
		t.Errorf("disjoint intersection nonempty: %v", f.Indices())
	}

	// ForEachRange over an empty set visits nothing on any bounds.
	New(130).ForEachRange(0, 130, func(int) bool {
		t.Error("empty set visited a bit")
		return true
	})
}

func TestIndicesNil(t *testing.T) {
	var s *Set
	if s.Indices() != nil {
		t.Error("nil Indices should be nil")
	}
	if s.Len() != 0 || s.Count() != 0 || s.Any() {
		t.Error("nil set stats")
	}
}

func TestAndInto(t *testing.T) {
	a := FromIndices(130, []int{0, 5, 64, 65, 129})
	b := FromIndices(130, []int{5, 64, 100, 129})
	dst := FromIndices(130, []int{1, 2, 3}) // prior contents must be overwritten
	dst.AndInto(a, b)
	if got, want := fmt.Sprint(dst.Indices()), fmt.Sprint([]int{5, 64, 129}); got != want {
		t.Errorf("AndInto = %s, want %s", got, want)
	}

	// nil operands are the universe.
	dst.AndInto(a, nil)
	if !dst.Equal(a) {
		t.Errorf("AndInto(a, universe) = %v, want a", dst.Indices())
	}
	dst.AndInto(nil, b)
	if !dst.Equal(b) {
		t.Errorf("AndInto(universe, b) = %v, want b", dst.Indices())
	}
	dst.AndInto(nil, nil)
	if !dst.Equal(Full(130)) {
		t.Errorf("AndInto(universe, universe) = %v, want full", dst.Indices())
	}

	// Aliasing: the destination may be one of the operands (in-place
	// narrowing), including both (self-intersection is the identity).
	m := a.Clone()
	m.AndInto(m, b)
	want := a.Clone()
	want.IntersectWith(b)
	if !m.Equal(want) {
		t.Errorf("aliased AndInto = %v, want %v", m.Indices(), want.Indices())
	}
	m = a.Clone()
	m.AndInto(m, m)
	if !m.Equal(a) {
		t.Errorf("self AndInto changed the set: %v", m.Indices())
	}

	// Capacity mismatch and nil receiver panic like the other writes.
	mustPanic(t, "AndInto mismatch", func() { New(10).AndInto(New(11), nil) })
	mustPanic(t, "AndInto nil receiver", func() {
		var s *Set
		s.AndInto(New(1), New(1))
	})
}

func TestIntersectAll(t *testing.T) {
	a := FromIndices(200, []int{0, 3, 64, 128, 199})
	b := FromIndices(200, []int{3, 64, 70, 199})
	c := FromIndices(200, []int{3, 64, 199})

	dst := FromIndices(200, []int{7}) // prior contents must be overwritten
	dst.IntersectAll([]*Set{a, b, c})
	if got, want := fmt.Sprint(dst.Indices()), fmt.Sprint([]int{3, 64, 199}); got != want {
		t.Errorf("IntersectAll = %s, want %s", got, want)
	}

	// Empty (and all-nil) operand lists yield the full set — the identity
	// of intersection, clipped to capacity (tail bits stay clear).
	dst.IntersectAll(nil)
	if !dst.Equal(Full(200)) {
		t.Errorf("IntersectAll(nil) = %d bits, want full", dst.Count())
	}
	dst.IntersectAll([]*Set{nil, nil})
	if !dst.Equal(Full(200)) {
		t.Errorf("IntersectAll(universes) = %d bits, want full", dst.Count())
	}
	odd := New(67) // capacity not word-aligned: trailing word must be trimmed
	odd.IntersectAll(nil)
	if odd.Count() != 67 || odd.Test(67) {
		t.Errorf("IntersectAll identity leaked past capacity: count %d", odd.Count())
	}

	// nil entries are skipped as universes.
	dst.IntersectAll([]*Set{a, nil, c})
	want := a.Clone()
	want.IntersectWith(c)
	if !dst.Equal(want) {
		t.Errorf("IntersectAll with universe entry = %v, want %v", dst.Indices(), want.Indices())
	}

	// Self-intersection: the destination may appear among the operands.
	m := a.Clone()
	m.IntersectAll([]*Set{b, m, c})
	dst.IntersectAll([]*Set{a, b, c})
	if !m.Equal(dst) {
		t.Errorf("aliased IntersectAll = %v, want %v", m.Indices(), dst.Indices())
	}

	// A single operand copies it; an empty operand empties the result.
	dst.IntersectAll([]*Set{c})
	if !dst.Equal(c) {
		t.Errorf("single-operand IntersectAll = %v, want %v", dst.Indices(), c.Indices())
	}
	dst.IntersectAll([]*Set{a, New(200)})
	if dst.Any() {
		t.Errorf("intersection with empty set nonempty: %v", dst.Indices())
	}

	mustPanic(t, "IntersectAll mismatch", func() { New(10).IntersectAll([]*Set{New(11)}) })
	mustPanic(t, "IntersectAll nil receiver", func() {
		var s *Set
		s.IntersectAll(nil)
	})
}

// mustPanic asserts fn panics.
func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

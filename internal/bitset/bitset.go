// Package bitset provides a dense, fixed-capacity bit set used to represent
// personalized selections over cube members and fact instances.
//
// A nil *Set is a valid "universe" value meaning "everything selected"; all
// read operations treat nil as the full set of the relevant capacity. Write
// operations require a non-nil set.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity 0; use New to create a set with room for n bits.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for bits [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Full returns a set of capacity n with every bit set.
func Full(n int) *Set {
	s := New(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// FromIndices returns a set of capacity n with exactly the given bits set.
// Indices out of range panic.
func FromIndices(n int, idx []int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Set(i)
	}
	return s
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Set sets bit i. It panics if i is out of range.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i. It panics if i is out of range.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set. A nil set reports true for every
// in-range index (nil means "universe"). Out-of-range indices report false.
func (s *Set) Test(i int) bool {
	if s == nil {
		return i >= 0
	}
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits. A nil set has count 0 (callers that
// treat nil as universe must special-case it before asking for a count).
func (s *Set) Count() int {
	if s == nil {
		return 0
	}
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountRange returns the number of set bits i with lo <= i < hi. The
// bounds are clamped to the set's capacity; a nil set counts 0 (callers
// that treat nil as universe must special-case it, as with Count).
func (s *Set) CountRange(lo, hi int) int {
	if s == nil {
		return 0
	}
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return 0
	}
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	c := 0
	for wi := loW; wi <= hiW; wi++ {
		w := s.words[wi]
		if wi == loW {
			w &= ^uint64(0) << (uint(lo) % wordBits)
		}
		if wi == hiW {
			if rem := uint(hi) % wordBits; rem != 0 {
				w &= 1<<rem - 1
			}
		}
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	if s == nil {
		return false
	}
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// UnionWith sets s = s ∪ o. The sets must have equal capacity.
func (s *Set) UnionWith(o *Set) {
	s.sameCap(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith sets s = s ∩ o. The sets must have equal capacity.
// A nil o is the universe, so intersection leaves s unchanged.
func (s *Set) IntersectWith(o *Set) {
	if o == nil {
		return
	}
	s.sameCap(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// AndInto sets s = a ∩ b in one pass, overwriting s's previous contents.
// A nil operand is the universe (s then copies the other operand; two nil
// operands make s full). All non-nil sets must share s's capacity, and s
// may alias a or b (each word is read before it is written), so
// m.AndInto(m, v) narrows m by v in place.
func (s *Set) AndInto(a, b *Set) {
	if s == nil {
		panic("bitset: write to nil set")
	}
	if a == nil {
		a, b = b, nil
	}
	if a == nil {
		for i := range s.words {
			s.words[i] = ^uint64(0)
		}
		s.trim()
		return
	}
	s.sameCap(a)
	if b == nil {
		copy(s.words, a.words)
		return
	}
	s.sameCap(b)
	for i := range s.words {
		s.words[i] = a.words[i] & b.words[i]
	}
}

// IntersectAll sets s to the multi-way intersection of sets, overwriting
// s's previous contents — the AND-composition primitive of the per-filter
// batch executor (one word-parallel pass composes a query's filter mask
// from its predicate bitmaps). nil entries are the universe and an empty
// (or all-nil) list yields the full set of s's capacity, the identity of
// intersection. Non-nil entries must share s's capacity; s may appear in
// sets (every word of every operand is read before s's word is written).
func (s *Set) IntersectAll(sets []*Set) {
	if s == nil {
		panic("bitset: write to nil set")
	}
	for _, o := range sets {
		if o != nil {
			s.sameCap(o)
		}
	}
	for wi := range s.words {
		w := ^uint64(0)
		for _, o := range sets {
			if o != nil {
				w &= o.words[wi]
			}
		}
		s.words[wi] = w
	}
	s.trim()
}

// DifferenceWith sets s = s \ o. The sets must have equal capacity.
func (s *Set) DifferenceWith(o *Set) {
	s.sameCap(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Reset clears every bit, keeping the capacity. Supports buffer reuse
// (e.g. pooled scan artifacts); a nil receiver panics like other writes.
func (s *Set) Reset() {
	if s == nil {
		panic("bitset: write to nil set")
	}
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy. Cloning nil returns nil (universe).
func (s *Set) Clone() *Set {
	if s == nil {
		return nil
	}
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Equal reports whether the two sets have the same capacity and contents.
func (s *Set) Equal(o *Set) bool {
	if s == nil || o == nil {
		return s == nil && o == nil
	}
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for each set bit in ascending order until fn returns
// false. A nil receiver iterates nothing.
func (s *Set) ForEach(fn func(i int) bool) {
	if s == nil {
		return
	}
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// ForEachRange calls fn for each set bit i with lo <= i < hi in ascending
// order until fn returns false. The bounds are clamped to the set's
// capacity; a nil receiver iterates nothing.
func (s *Set) ForEachRange(lo, hi int, fn func(i int) bool) {
	if s == nil {
		return
	}
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return
	}
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	for wi := loW; wi <= hiW; wi++ {
		w := s.words[wi]
		if wi == loW {
			w &= ^uint64(0) << (uint(lo) % wordBits)
		}
		if wi == hiW {
			if rem := uint(hi) % wordBits; rem != 0 {
				w &= 1<<rem - 1
			}
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the set bits in ascending order.
func (s *Set) Indices() []int {
	if s == nil {
		return nil
	}
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// Words exposes the set's backing words, least-significant bit first (bit i
// of the set is bit i%64 of word i/64). The packed-column predicate kernels
// of internal/cube write filter results straight into these words, one
// 64-fact word at a time. len(Words()) == ceil(Len()/64); bits at or past
// Len() in the last word are zero and writers must keep them zero (the
// Count/iteration primitives rely on the trimmed tail).
func (s *Set) Words() []uint64 {
	if s == nil {
		return nil
	}
	return s.words
}

// String renders the set as "{1, 5, 9}" capped at 16 elements for logging.
func (s *Set) String() string {
	if s == nil {
		return "{universe}"
	}
	var b strings.Builder
	b.WriteByte('{')
	shown := 0
	s.ForEach(func(i int) bool {
		if shown > 0 {
			b.WriteString(", ")
		}
		if shown == 16 {
			b.WriteString("…")
			return false
		}
		fmt.Fprintf(&b, "%d", i)
		shown++
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) check(i int) {
	if s == nil {
		panic("bitset: write to nil set")
	}
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

func (s *Set) sameCap(o *Set) {
	if o == nil {
		panic("bitset: nil operand")
	}
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, o.n))
	}
}

// trim clears bits beyond capacity in the last word.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

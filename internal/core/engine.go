// Package core implements the paper's primary contribution: the spatial
// personalization engine for data warehouses. It wires together the three
// conceptual models — the spatial-aware user model (package usermodel), the
// multidimensional/GeoMD model (packages mdmodel and geomd) and the PRML
// rule language (package prml) — over the SOLAP cube substrate (package
// cube), and executes the two-phase personalization process of the paper's
// Fig. 1:
//
//  1. When a decision maker starts an analysis session, schema rules run
//     first and produce a per-session personalized GeoMD model
//     (BecomeSpatial, AddLayer), then instance rules run and produce a
//     personalized cube view (SelectInstance under spatial conditions).
//  2. During the session, spatial selections the user performs fire
//     tracking rules that acquire knowledge into the user model
//     (SetContent), which future sessions' rules can react to.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sdwp/internal/cube"
	"sdwp/internal/geom"
	"sdwp/internal/obs"
	"sdwp/internal/prml"
	"sdwp/internal/qsched"
	"sdwp/internal/shard"
	"sdwp/internal/usermodel"
)

// SharedSubexprMode toggles cross-query subexpression sharing inside
// batch scans: whether a shared scan materializes each distinct filter set
// as one bitmap and each distinct (dimension, level) grouping as one
// roll-up key column, shared by every query of the batch (see
// internal/cube/exec_shared.go).
type SharedSubexprMode int

const (
	// SharedSubexprOn — the default (zero value) — shares stage-1/2
	// artifacts across the queries of every batch scan.
	SharedSubexprOn SharedSubexprMode = iota
	// SharedSubexprOff reverts to per-query filter evaluation and
	// group-key decode (the PR 1 fused path) — the A/B benching baseline.
	SharedSubexprOff
)

// PackedColumnsMode toggles compressed-column execution: whether compiled
// plans bind the dictionary-encoded bit-packed fact columns and dispatch
// the word-at-a-time predicate kernels and monomorphic aggregation
// kernels (see internal/cube/packed.go). The packed columns themselves
// are always maintained; the mode only selects the execution path, so
// flipping it never rewrites storage. Results are identical either way.
type PackedColumnsMode int

const (
	// PackedColumnsOn — the default (zero value) — compiles plans against
	// the packed columns. The SDWP_PACKED_COLUMNS env var (strconv
	// booleans) still applies and lets test matrices flip the default
	// without a config change.
	PackedColumnsOn PackedColumnsMode = iota
	// PackedColumnsOff forces the unpacked scalar path — the equivalence
	// oracle and the A/B benching baseline.
	PackedColumnsOff
)

// Options configures an Engine.
type Options struct {
	// Planar switches the Distance/unary-Distance operators from geodetic
	// kilometres (the default, for lon/lat data) to planar units (used by
	// tests and the ablation benchmarks; see internal/geom).
	Planar bool
	// DisableRuleOptimizer turns off the radius-query execution plan for
	// the Foreach/Distance/SelectInstance idiom (see internal/core/
	// optimize.go), forcing the generic rule interpreter. Used by the
	// ablation benchmarks.
	DisableRuleOptimizer bool
	// QueryWorkers sizes the worker pool of the partitioned parallel query
	// executor used by Session.Query/QueryBaseline/QueryBatch: 0 or 1 runs
	// every query serially (the default, and the serial fallback), > 1
	// splits each fact scan across that many goroutines, and < 0 uses one
	// worker per logical CPU. Results are deterministic run to run for a
	// given setting, and identical across settings whenever per-group
	// measure sums are exact in float64 (always for COUNT/MIN/MAX and for
	// integer-valued measures; otherwise equal up to floating-point
	// summation order — see internal/cube/exec.go).
	QueryWorkers int
	// CoalesceWindow is the query scheduler's micro-batch window: how long
	// the first queued query is held open for more concurrent queries to
	// coalesce into the same shared scan (typically 0–2 ms). 0 adds no
	// latency — under load, queries still coalesce behind in-flight scans.
	CoalesceWindow time.Duration
	// MaxInFlightScans bounds concurrent shared scans dispatched by the
	// scheduler (0 = qsched.DefaultMaxInFlight).
	MaxInFlightScans int
	// ResultCacheBytes sizes the scheduler's epoch-keyed personalized
	// result cache; 0 disables caching (the default: repeated queries in
	// benchmarks and experiments then measure real scans).
	ResultCacheBytes int64
	// MaxBatchQueries caps queries per batch — one coalesced shared scan
	// and one POST /api/query/batch request share the limit
	// (0 = qsched.DefaultMaxBatch).
	MaxBatchQueries int
	// DisableScheduler routes Session.Query/QueryBaseline/QueryBatch
	// straight to the cube executors, bypassing queueing, coalescing and
	// caching — the scheduler's correctness baseline.
	DisableScheduler bool
	// SharedSubexpr controls cross-query subexpression sharing inside
	// batch scans (shared filter bitmaps and group-key columns). On by
	// default; SharedSubexprOff restores the per-query evaluation of PR 1
	// for A/B benching. Results are identical either way.
	SharedSubexpr SharedSubexprMode
	// PackedColumns controls compressed-column execution: packed predicate
	// and aggregation kernels on (the default) or the unpacked scalar path
	// (the oracle the equivalence harness pins kernels against). Results
	// are identical either way.
	PackedColumns PackedColumnsMode
	// DisablePerFilterSharing keeps the batch executor's stage-1 sharing
	// at whole-filter-set granularity: each distinct filter set evaluates
	// its full conjunction instead of materializing one bitmap per
	// distinct single AttrFilter and AND-composing set masks from them.
	// Off by default (per-filter sharing on); the A/B baseline for
	// overlapping-but-unequal filter-set workloads. Results are identical
	// either way.
	DisablePerFilterSharing bool
	// FactShards hash-partitions every fact table into this many shards
	// behind the scheduler (internal/shard): ingest and scans then scale
	// across independent per-shard locks and the scatter-gather executor
	// merges per-shard partials into results identical to the unsharded
	// engine. 0 or 1 keeps today's single-table path exactly. With shards,
	// MaxInFlightScans also bounds the per-batch shard-scan fan-out.
	FactShards int
	// QueryTimeout is the scheduler's admission deadline: a query still
	// queued this long is dropped with a descriptive error instead of
	// executing late (0 = no deadline). Per-request contexts passed to
	// Session.QueryCtx/QueryBatchCtx can tighten it per query.
	QueryTimeout time.Duration
	// ArtifactCacheBytes sizes the cross-batch artifact cache: hot filter
	// bitmaps and roll-up key columns survive between batch scans, keyed
	// by sub-fingerprint and invalidated by table-version bumps on
	// AddFact/member mutation (0 = off). On a sharded engine the budget is
	// split evenly across the shards.
	ArtifactCacheBytes int64
	// TraceSampleRate enables query-lifecycle tracing: each traced query
	// records a span tree (admission wait, compile, shared scan with
	// per-shard stage timings, finalize) served by GET /api/trace/{id}.
	// Queries that end in an error are always retained; successful ones
	// are kept with this probability (1 = every query, 0 = tracing off —
	// the default, which skips trace allocation entirely). Latency
	// histograms and /metrics are independent of this knob and always on.
	TraceSampleRate float64
	// SlowQueryThreshold logs a structured warning (slog) for any query
	// whose end-to-end latency — admission wait included — meets or
	// exceeds it, with its trace ID and stage breakdown (0 = off).
	SlowQueryThreshold time.Duration
	// QueryCostProfiles sizes the heavy-query profile registry: the top-K
	// query fingerprints by decay-weighted cumulative cost, served by
	// GET /api/queries/top (0 = the obs default, 128).
	QueryCostProfiles int
	// QueryCostDecay is the half-life of the profile registry's scores: a
	// fingerprint idle this long counts half as heavy as a fresh one, so
	// yesterday's hot dashboard ages out of the top-K (0 = the obs
	// default, 10 minutes).
	QueryCostDecay time.Duration
	// TenantLabelCap bounds per-tenant metric label cardinality: past this
	// many distinct tenants, new ones collapse into the "other" series on
	// /metrics and in the accountant (0 = the obs default, 64).
	TenantLabelCap int
	// MaxQueueDepth turns on overload shedding by queue depth: when the
	// scheduler's admission queue is at or past it, queries from tenants
	// at or over their fair share are refused with qsched.ErrOverloaded
	// (HTTP 429 + Retry-After at the web layer) instead of queueing toward
	// the QueryTimeout deadline (0 = off).
	MaxQueueDepth int
	// TargetQueueWait turns on overload shedding by admission latency:
	// when the smoothed admission wait exceeds it, over-share tenants are
	// shed (0 = off). Set it well below QueryTimeout — shedding exists to
	// act before the 504 deadline does.
	TargetQueueWait time.Duration
	// TenantWeights maps userKey → fair-share weight for the scheduler's
	// cost-driven admission (unlisted tenants weigh 1; a weight-2 tenant
	// sustains twice the attributed scan cost before losing priority).
	TenantWeights map[string]float64
	// AutoTune starts the adaptive knob tuner: a background goroutine that
	// re-sizes CoalesceWindow from the observed arrival rate and
	// ResultCacheBytes/ArtifactCacheBytes from hit-rate telemetry, within
	// bounds derived from the configured values (window ≤ max(4×configured,
	// 2ms); caches within [configured/4, configured×4]; a knob configured
	// 0 — disabled — is never touched). Off by default; every adjustment
	// is logged via slog.
	AutoTune bool
	// AutoTuneInterval is the tuner's observation period (0 = 2s).
	AutoTuneInterval time.Duration
}

// QueryWorkers returns the engine's configured query worker-pool size.
func (e *Engine) QueryWorkers() int { return e.opts.QueryWorkers }

// lockedCubeExec is the unsharded engine's executor: the cube fronted by
// one RWMutex so Engine.AddFact (write) is safe against in-flight scans
// and compiles (read). The sharded table has finer-grained per-shard
// locks and does this itself; here a single warehouse-wide lock matches
// the single fact table it guards. Reads are shared, so concurrent
// queries pay one uncontended RLock per scan.
type lockedCubeExec struct {
	mu sync.RWMutex
	c  *cube.Cube
}

func (l *lockedCubeExec) Compile(q cube.Query) (*cube.CompiledQuery, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.c.Compile(q)
}

func (l *lockedCubeExec) ExecuteParallel(q cube.Query, v *cube.View, workers int) (*cube.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.c.ExecuteParallel(q, v, workers)
}

func (l *lockedCubeExec) ExecuteBatch(qs []cube.Query, vs []*cube.View, workers int) ([]*cube.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.c.ExecuteBatch(qs, vs, workers)
}

func (l *lockedCubeExec) ExecuteBatchCompiledOpt(cqs []*cube.CompiledQuery, vs []*cube.View, opts cube.BatchOptions) ([]*cube.Result, cube.SharingStats, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.c.ExecuteBatchCompiledOpt(cqs, vs, opts)
}

// addFact appends under the write lock: no scan or compile is mid-flight
// while fact columns reallocate.
func (l *lockedCubeExec) addFact(fact string, keys map[string]int32, measures map[string]float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.AddFact(fact, keys, measures)
}

// materializeView builds a view's combined fact masks under the read
// lock (mask building walks the fact key columns).
func (l *lockedCubeExec) materializeView(v *cube.View, facts []string) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, f := range facts {
		v.Materialize(f)
	}
}

// Engine is the personalization engine for one warehouse deployment.
type Engine struct {
	cube  *cube.Cube
	users *usermodel.Store
	opts  Options
	sched *qsched.Scheduler
	// exec is what the scheduler dispatches to: the RWMutex-fronted cube,
	// or — with Options.FactShards > 1 — the sharded table routing
	// scatter-gather scans across fact shards.
	exec qsched.Executor
	// locked is the unsharded executor (nil on a sharded engine).
	locked *lockedCubeExec
	// shards is non-nil on a sharded engine (exec is then the table).
	shards *shard.Table
	// artifacts is the unsharded engine's cross-batch artifact cache
	// (sharded engines keep one per shard inside the table).
	artifacts *cube.ArtifactCache
	// registry/metrics are the engine's telemetry sink: per-stage latency
	// histograms plus a collector re-emitting the scheduler counters, all
	// rendered by GET /metrics. Always on — recording is lock-free and
	// costs a few atomic adds per query.
	registry *obs.Registry
	metrics  *obs.QueryMetrics
	// tracer is non-nil only when Options.TraceSampleRate > 0; a nil
	// tracer short-circuits every tracing hook to a pointer test.
	tracer *obs.Tracer
	// costs attributes per-query resource consumption to tenants and
	// feeds the heavy-query profile registry; served by GET /api/tenants
	// and GET /api/queries/top and re-emitted on /metrics. Always on.
	costs *obs.Accountant
	// tun is the adaptive knob tuner, non-nil only with Options.AutoTune
	// (stopped by Close before the scheduler drains).
	tun *tuner

	mu       sync.Mutex
	rules    []*prml.Rule
	params   map[string]prml.Value
	sessions map[string]*Session
	seq      int
}

// NewEngine creates an engine over a loaded cube and a user-profile store.
// The engine owns a query scheduler (see internal/qsched) that every
// session's queries route through; long-lived deployments should Close the
// engine to stop it. With Options.FactShards > 1 the engine also derives
// the fact shards here (hash-redistributing already-loaded facts), so all
// warehouse loading should precede engine construction — and subsequent
// ingest must go through Engine.AddFact so shards stay consistent.
func NewEngine(c *cube.Cube, users *usermodel.Store, opts Options) *Engine {
	e := &Engine{
		cube:     c,
		users:    users,
		opts:     opts,
		params:   map[string]prml.Value{},
		sessions: map[string]*Session{},
	}
	// Apply the packed-columns mode before deriving shards: NewFactShard
	// inherits the parent's setting, so the fan-out below compiles the
	// same execution path everywhere. PackedColumnsOn (the zero value)
	// leaves the cube's default alone, which keeps the SDWP_PACKED_COLUMNS
	// env override effective for engines built with default options.
	if opts.PackedColumns == PackedColumnsOff {
		c.SetPackedColumns(false)
	}
	if opts.FactShards > 1 {
		e.shards = shard.New(c, shard.Options{
			Shards:             opts.FactShards,
			MaxInFlightScans:   opts.MaxInFlightScans,
			ArtifactCacheBytes: opts.ArtifactCacheBytes,
		})
		e.exec = e.shards
	} else {
		e.locked = &lockedCubeExec{c: c}
		e.exec = e.locked
		if opts.ArtifactCacheBytes > 0 {
			e.artifacts = cube.NewArtifactCache(opts.ArtifactCacheBytes)
		}
	}
	e.registry = obs.NewRegistry()
	e.metrics = obs.NewQueryMetricsCap(e.registry, opts.TenantLabelCap)
	e.costs = obs.NewAccountant(obs.AccountantOptions{
		ProfileCapacity: opts.QueryCostProfiles,
		DecayHalfLife:   opts.QueryCostDecay,
		TenantCap:       opts.TenantLabelCap,
	})
	if opts.TraceSampleRate > 0 {
		e.tracer = obs.NewTracer(obs.TracerOptions{SampleRate: opts.TraceSampleRate})
	}
	e.sched = qsched.New(e.exec, qsched.Options{
		Window:                  opts.CoalesceWindow,
		MaxBatch:                opts.MaxBatchQueries,
		MaxInFlight:             opts.MaxInFlightScans,
		CacheBytes:              opts.ResultCacheBytes,
		Workers:                 opts.QueryWorkers,
		Disabled:                opts.DisableScheduler,
		DisableSharedSubexpr:    opts.SharedSubexpr == SharedSubexprOff,
		DisablePerFilterSharing: opts.DisablePerFilterSharing,
		Timeout:                 opts.QueryTimeout,
		Artifacts:               e.artifacts,
		Metrics:                 e.metrics,
		SlowQuery:               opts.SlowQueryThreshold,
		Costs:                   e.costs,
		TenantWeights:           opts.TenantWeights,
		MaxQueueDepth:           opts.MaxQueueDepth,
		TargetQueueWait:         opts.TargetQueueWait,
	})
	e.registry.RegisterCollector(e.collectSchedulerSamples)
	e.registry.RegisterCollector(e.collectCostSamples)
	obs.RegisterRuntimeMetrics(e.registry)
	if opts.AutoTune && !opts.DisableScheduler {
		e.tun = newTuner(e)
		go e.tun.run()
	}
	return e
}

// collectSchedulerSamples re-emits the scheduler's cumulative counters
// (and a few gauges) as Prometheus samples on every /metrics scrape, so
// one scrape carries both the latency histograms and the counter state
// that GET /api/stats serves as JSON.
func (e *Engine) collectSchedulerSamples(emit func(obs.Sample)) {
	st := e.SchedulerStats()
	counter := func(name, help string, v int64) {
		emit(obs.Sample{Name: name, Help: help, Type: "counter", Value: float64(v)})
	}
	gauge := func(name, help string, v float64) {
		emit(obs.Sample{Name: name, Help: help, Type: "gauge", Value: v})
	}
	gauge("sdwp_uptime_seconds", "Seconds since the query scheduler started.", st.UptimeSeconds)
	counter("sdwp_queries_submitted_total", "Queries handed to the scheduler.", st.Submitted)
	counter("sdwp_queries_executed_total", "Queries answered by a shared scan.", st.Executed)
	counter("sdwp_queries_coalesced_total", "Queries answered by joining an identical queued query.", st.Shared)
	counter("sdwp_queries_timed_out_total", "Queries dropped past their admission deadline.", st.TimedOut)
	counter("sdwp_batches_total", "Coalesced batches dispatched.", st.Batches)
	counter("sdwp_fact_scans_total", "Shared fact scans executed.", st.FactScans)
	counter("sdwp_result_cache_hits_total", "Result-cache hits.", st.CacheHits)
	counter("sdwp_result_cache_misses_total", "Result-cache misses.", st.CacheMisses)
	counter("sdwp_result_cache_evictions_total", "Result-cache evictions.", st.CacheEvictions)
	gauge("sdwp_result_cache_bytes", "Bytes held by the result cache.", float64(st.CacheBytes))
	gauge("sdwp_queue_depth", "Queries waiting in the admission queue.", float64(st.QueueDepth))
	gauge("sdwp_scans_in_flight", "Shared scans running right now.", float64(st.InFlight))
	// Overload-control and fair-share series, all derived from the one
	// locked Stats snapshot above — a scrape can never see shed counters
	// torn against queue depth or the per-tenant ledgers. Maps are walked
	// in sorted order so successive scrapes render identically.
	gauge("sdwp_shed_rate", "Decaying rate of shed queries per second.", st.ShedRatePerSec)
	gauge("sdwp_queue_wait_ewma_seconds", "Smoothed admission wait the queue_wait shed threshold compares against.", st.QueueWaitEWMAMs/1e3)
	gauge("sdwp_drain_rate", "Smoothed admission rate (requests/sec) Retry-After hints derive from.", st.DrainRatePerSec)
	users := make([]string, 0, len(st.ShedByTenant))
	for user := range st.ShedByTenant {
		users = append(users, user)
	}
	sort.Strings(users)
	for _, user := range users {
		byReason := st.ShedByTenant[user]
		reasons := make([]string, 0, len(byReason))
		for reason := range byReason {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			emit(obs.Sample{Name: "sdwp_shed_total",
				Help: "Queries refused by the overload controller.", Type: "counter",
				Value:  float64(byReason[reason]),
				Labels: map[string]string{"user": user, "reason": reason}})
		}
	}
	for _, fs := range st.FairShares {
		emit(obs.Sample{Name: "sdwp_tenant_fair_share",
			Help: "Tenant's fraction of the summed weight-normalized attributed cost.", Type: "gauge",
			Value:  fs.Share,
			Labels: map[string]string{"tenant": fs.Tenant}})
	}
	gauge("sdwp_coalesce_window_seconds", "Live coalescing window (drifts from the configured value under auto-tune).", float64(st.CoalesceWindowNs)/1e9)
	gauge("sdwp_result_cache_cap_bytes", "Live result-cache byte budget (drifts under auto-tune).", float64(st.ResultCacheCapBytes))
	if st.FactShards > 0 {
		gauge("sdwp_fact_shards", "Fact-table shard count.", float64(st.FactShards))
		counter("sdwp_shard_scans_total", "Per-shard scans fanned out by the scatter-gather executor.", st.ShardScans)
	}
	counter("sdwp_packed_kernel_scans_total", "Plan scans dispatched to a monomorphic packed aggregation kernel.", st.PackedKernelScans)
	counter("sdwp_packed_predicate_kernels_total", "Predicate bitmaps filled word-at-a-time from packed columns.", st.PackedPredicateKernels)
	gauge("sdwp_packed_columns", "Fact dimension-key columns carrying a packed representation.", float64(st.Packed.Columns))
	gauge("sdwp_packed_bytes", "Bytes held by the bit-packed fact columns.", float64(st.Packed.PackedBytes))
	gauge("sdwp_packed_unpacked_bytes", "Bytes the same columns occupy unpacked (int32 per fact).", float64(st.Packed.UnpackedBytes))
}

// collectCostSamples re-emits the tenant cost accounts and profile
// registry counters on every /metrics scrape. Tenant series are bounded
// by Options.TenantLabelCap — the accountant already collapsed overflow
// tenants into "other" — so scrape size cannot grow with tenant churn.
func (e *Engine) collectCostSamples(emit func(obs.Sample)) {
	counter := func(name, help, tenant string, v float64) {
		s := obs.Sample{Name: name, Help: help, Type: "counter", Value: v}
		if tenant != "" {
			s.Labels = map[string]string{"tenant": tenant}
		}
		emit(s)
	}
	for _, ts := range e.costs.Tenants() {
		counter("sdwp_tenant_queries_total", "Queries attributed to the tenant.", ts.Tenant, float64(ts.Queries))
		counter("sdwp_tenant_cache_hits_total", "Result-cache hits attributed to the tenant.", ts.Tenant, float64(ts.CacheHits))
		counter("sdwp_tenant_facts_scanned_total", "Fact rows scanned on behalf of the tenant.", ts.Tenant, float64(ts.Cost.FactsScanned))
		counter("sdwp_tenant_cpu_seconds_total", "Scan CPU attributed to the tenant.", ts.Tenant, float64(ts.Cost.CPUNs)/1e9)
		counter("sdwp_tenant_artifact_bytes_total", "Filter-bitmap and key-column bytes charged to the tenant.", ts.Tenant, float64(ts.Cost.BitmapBytes+ts.Cost.KeyColBytes))
		counter("sdwp_tenant_cache_credit_seconds_total", "CPU the tenant avoided through result-cache hits.", ts.Tenant, float64(ts.Cost.CacheCreditNs)/1e9)
	}
	profiles := e.costs.Profiles()
	records, evictions := profiles.Counters()
	emit(obs.Sample{Name: "sdwp_query_profile_count", Help: "Query fingerprints tracked by the heavy-query registry.",
		Type: "gauge", Value: float64(profiles.Len())})
	counter("sdwp_query_profile_records_total", "Query completions folded into the heavy-query registry.", "", float64(records))
	counter("sdwp_query_profile_evictions_total", "Cold fingerprints evicted from the heavy-query registry.", "", float64(evictions))
}

// Accountant returns the engine's per-tenant cost accountant — what
// GET /api/tenants and GET /api/queries/top serve.
func (e *Engine) Accountant() *obs.Accountant { return e.costs }

// MetricsRegistry returns the engine's telemetry registry — what
// GET /metrics renders in Prometheus text format.
func (e *Engine) MetricsRegistry() *obs.Registry { return e.registry }

// Tracer returns the engine's query-lifecycle tracer, nil unless
// Options.TraceSampleRate > 0.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Close stops the engine's query scheduler: queued queries drain, new ones
// are rejected. Idempotent; the engine must not be queried after Close.
// The adaptive tuner (if running) is stopped first, so no knob moves
// while the scheduler drains.
func (e *Engine) Close() {
	if e.tun != nil {
		e.tun.stopWait()
	}
	e.sched.Close()
}

// SchedulerStats snapshots the query scheduler's counters (coalesce ratio,
// cache hit rate, queue depth — what GET /api/stats serves), composed with
// the shard layer's view when the engine is sharded: shard count,
// per-shard fact balance, scan fan-out, and the aggregated cross-batch
// artifact-cache counters.
func (e *Engine) SchedulerStats() qsched.Stats {
	st := e.sched.Stats()
	if e.shards != nil {
		ss := e.shards.Stats()
		st.FactShards = ss.Shards
		st.ShardFactCounts = ss.FactCounts
		st.ShardScans = ss.ShardScans
		st.ArtifactCache = ss.ArtifactCache
		st.ArtifactDoorkept = ss.ArtifactCache.Doorkept
		st.Packed = ss.Packed
	} else {
		e.locked.mu.RLock()
		st.Packed = e.cube.PackedStats()
		e.locked.mu.RUnlock()
	}
	return st
}

// FactShards returns the engine's shard count (1 = unsharded).
func (e *Engine) FactShards() int {
	if e.shards == nil {
		return 1
	}
	return e.shards.Shards()
}

// AddFact appends a fact instance to the warehouse, safely against the
// engine's in-flight queries on either path: on an unsharded engine the
// append takes the executor's write lock (scans hold its read lock); on
// a sharded one it routes the instance to its key-hashed shard under the
// shard's lock and records the global→(shard, local) mapping. Live
// ingest must come through here (or shard.Table.AddFact) — calling
// cube.AddFact directly bypasses both the locking and, when sharded, the
// routing (such facts are invisible to shard scans).
//
// The scheduler's result cache is keyed by view epochs, which track
// selections, not ingest: deployments querying repeatedly during live
// ingest should run with ResultCacheBytes 0 or accept entries up to one
// cache lifetime stale (the cross-batch artifact cache, by contrast, is
// version-keyed and never serves pre-ingest artifacts).
func (e *Engine) AddFact(fact string, keys map[string]int32, measures map[string]float64) error {
	if e.shards != nil {
		return e.shards.AddFact(fact, keys, measures)
	}
	return e.locked.addFact(fact, keys, measures)
}

// MaxBatchQueries returns the effective per-batch query cap shared by the
// scheduler's coalesced scans and the web API's batch endpoint.
func (e *Engine) MaxBatchQueries() int {
	if e.opts.MaxBatchQueries > 0 {
		return e.opts.MaxBatchQueries
	}
	return qsched.DefaultMaxBatch
}

// Cube returns the engine's cube.
func (e *Engine) Cube() *cube.Cube { return e.cube }

// Users returns the engine's user-profile store.
func (e *Engine) Users() *usermodel.Store { return e.users }

// SetParam declares a designer-defined constant available to rules (the
// paper's Example 5.3 threshold).
func (e *Engine) SetParam(name string, v prml.Value) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.params[name] = v
}

// Param returns a declared constant.
func (e *Engine) Param(name string) (prml.Value, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.params[name]
	return v, ok
}

// paramNames returns the declared constant names for the analyzer.
func (e *Engine) paramNames() map[string]bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]bool, len(e.params))
	for k := range e.params {
		out[k] = true
	}
	return out
}

// AddRules parses, analyzes and registers PRML rules. Analysis findings are
// returned as an error; nothing is registered in that case.
func (e *Engine) AddRules(src string) ([]*prml.Rule, error) {
	rules, err := prml.Parse(src)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	existing := append([]*prml.Rule(nil), e.rules...)
	e.mu.Unlock()
	all := append(existing, rules...)
	if issues := prml.Analyze(all, prml.AnalyzeOptions{Params: e.paramNames()}); len(issues) > 0 {
		return nil, issues[0]
	}
	e.mu.Lock()
	e.rules = all
	e.mu.Unlock()
	return rules, nil
}

// Rules returns the registered rules in registration order.
func (e *Engine) Rules() []*prml.Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*prml.Rule(nil), e.rules...)
}

// RemoveRule unregisters the named rule, reporting whether it existed.
// Live sessions keep the personalization the rule already applied; the rule
// simply stops firing for future events.
func (e *Engine) RemoveRule(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, r := range e.rules {
		if r.Name == name {
			e.rules = append(e.rules[:i], e.rules[i+1:]...)
			return true
		}
	}
	return false
}

// rulesByKind returns registered rules of one kind, preserving order.
func (e *Engine) rulesByKind(k prml.RuleKind) []*prml.Rule {
	var out []*prml.Rule
	for _, r := range e.Rules() {
		if prml.Classify(r) == k {
			out = append(out, r)
		}
	}
	return out
}

// StartSession begins an analysis session for the user at the given
// location (nil when unknown): it materializes the SUS session/location
// entities, clones the base GeoMD schema, and fires the SessionStart rules
// in the Fig. 1 phase order — schema rules, then instance rules, then pure
// acquisition rules.
func (e *Engine) StartSession(userID string, location geom.Geometry) (*Session, error) {
	profile, err := e.users.GetOrCreate(userID)
	if err != nil {
		return nil, err
	}
	if err := e.wireSession(profile, location); err != nil {
		return nil, err
	}

	e.mu.Lock()
	e.seq++
	id := fmt.Sprintf("s%06d", e.seq)
	e.mu.Unlock()

	s := &Session{
		ID:       id,
		UserID:   userID,
		engine:   e,
		user:     profile,
		schema:   e.cube.Schema().Clone(),
		view:     cube.NewView(e.cube),
		location: location,
	}

	for _, kind := range []prml.RuleKind{prml.RuleSchema, prml.RuleInstance, prml.RuleOther} {
		for _, r := range e.rulesByKind(kind) {
			if r.Event.Kind != prml.EvSessionStart {
				continue
			}
			if _, err := s.exec(r); err != nil {
				return nil, fmt.Errorf("core: session start: %w", err)
			}
		}
	}
	// Pre-materialize the personalized view so the session's first query
	// pays no selection cost (the paper's one-time "the spatial analysis
	// have been done" property, Section 4.2.4). Mask building walks the
	// fact key columns, so it takes the same read lock the scans use —
	// safe against concurrent Engine.AddFact on both paths.
	facts := make([]string, 0, len(e.cube.Schema().MD.Facts))
	for _, f := range e.cube.Schema().MD.Facts {
		facts = append(facts, f.Name)
	}
	if e.shards != nil {
		e.shards.MaterializeView(s.view, facts)
	} else {
		e.locked.materializeView(s.view, facts)
	}

	e.mu.Lock()
	e.sessions[id] = s
	e.mu.Unlock()
	return s, nil
}

// ExecuteBatch answers a batch of queries — each through its own session's
// personalized view (a nil session entry is the non-personalized baseline)
// — in one shared scan per fact table, the multi-tenant shape of a busy
// deployment: many logged-in users' dashboards refreshing against the same
// fact data. sessions may be nil (all baseline) or one entry per query.
//
// This is the raw shared-scan primitive (the scheduler's own executor);
// callers serving interactive traffic should prefer Session.Query /
// Session.QueryBatch, which add coalescing and caching on top.
func (e *Engine) ExecuteBatch(qs []cube.Query, sessions []*Session) ([]*cube.Result, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("core: batch needs at least one query")
	}
	if sessions != nil && len(sessions) != len(qs) {
		return nil, fmt.Errorf("core: batch has %d queries but %d sessions", len(qs), len(sessions))
	}
	var vs []*cube.View
	if sessions != nil {
		vs = make([]*cube.View, len(qs))
		for i, s := range sessions {
			if s != nil {
				vs[i] = s.View()
			}
		}
	}
	// Compile through the executor (cube or sharded table) so the scan
	// runs wherever the scheduler's scans run — on a sharded engine this
	// is the scatter-gather path.
	cqs := make([]*cube.CompiledQuery, len(qs))
	for i, q := range qs {
		cq, err := e.exec.Compile(q)
		if err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		cqs[i] = cq
	}
	res, _, err := e.exec.ExecuteBatchCompiledOpt(cqs, vs, cube.BatchOptions{
		Workers:                 e.opts.QueryWorkers,
		DisableSharing:          e.opts.SharedSubexpr == SharedSubexprOff,
		DisablePredicateSharing: e.opts.DisablePerFilterSharing,
		Artifacts:               e.artifacts,
	})
	return res, err
}

// Session returns a live session by id, or nil.
func (e *Engine) Session(id string) *Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sessions[id]
}

// EndSession fires SessionEnd rules and removes the session.
func (e *Engine) EndSession(s *Session) error {
	for _, r := range e.Rules() {
		if r.Event.Kind != prml.EvSessionEnd {
			continue
		}
		if _, err := s.exec(r); err != nil {
			return fmt.Errorf("core: session end: %w", err)
		}
	}
	e.mu.Lock()
	delete(e.sessions, s.ID)
	e.mu.Unlock()
	return nil
}

// wireSession materializes the SUS «Session» and «LocationContext» entities
// on the user's profile graph, following the profile's association
// definitions (Fig. 4: DecisionMaker --dm2session--> Session
// --s2location--> Location). The wiring is structural: it finds the first
// association from the user class to a «Session» class and from there to a
// «LocationContext» class, so concrete profiles can use any role names.
func (e *Engine) wireSession(user *usermodel.Entity, location geom.Geometry) error {
	p := e.users.Profile()
	userClass := user.Class().Name

	sessRole, sessClass := findAssocByStereo(p, userClass, usermodel.StereoSession)
	if sessRole == "" {
		return nil // profile has no session concept; nothing to wire
	}
	sess := usermodel.NewEntity(p.Class(sessClass))
	// Stamp the conventional startedAt property when the profile declares
	// it (the Fig. 4 AnalysisSession does).
	if pd := p.Class(sessClass).Prop("startedAt"); pd != nil && pd.Type == usermodel.PropString {
		if err := sess.Set("startedAt", time.Now().UTC().Format(time.RFC3339)); err != nil {
			return fmt.Errorf("core: wiring session: %w", err)
		}
	}
	if err := user.Link(p, sessRole, sess); err != nil {
		return fmt.Errorf("core: wiring session: %w", err)
	}
	locRole, locClass := findAssocByStereo(p, sessClass, usermodel.StereoLocationContext)
	if locRole == "" || location == nil {
		return nil
	}
	loc := usermodel.NewEntity(p.Class(locClass))
	if prop := findGeometryProp(p.Class(locClass)); prop != "" {
		if err := loc.Set(prop, location); err != nil {
			return fmt.Errorf("core: wiring location: %w", err)
		}
	}
	if err := sess.Link(p, locRole, loc); err != nil {
		return fmt.Errorf("core: wiring location: %w", err)
	}
	return nil
}

// findAssocByStereo finds the first association (in role order) from the
// given class to a class with the wanted stereotype.
func findAssocByStereo(p *usermodel.Profile, from string, want usermodel.Stereotype) (role, to string) {
	for _, d := range p.Assocs(from) {
		if c := p.Class(d.To); c != nil && c.Stereo == want {
			return d.Role, d.To
		}
	}
	return "", ""
}

func findGeometryProp(c *usermodel.ClassDef) string {
	for _, pd := range c.Props {
		if pd.Type == usermodel.PropGeometry {
			return pd.Name
		}
	}
	return ""
}

package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sdwp/internal/cube"
	"sdwp/internal/prml"
	"sdwp/internal/qsched"
)

// TestSchedulerRoutedQueryEquivalence runs the same personalized session
// queries through a scheduler-enabled engine (window, cache, coalescing
// all on) and a scheduler-disabled one, over the same cube, and requires
// identical results — including on cache-hit repeats.
func TestSchedulerRoutedQueryEquivalence(t *testing.T) {
	e1, ds := newTestEngineOpts(t, Options{
		CoalesceWindow:   time.Millisecond,
		ResultCacheBytes: 1 << 20,
		QueryWorkers:     2,
	})
	defer e1.Close()
	e2 := NewEngine(ds.Cube, e1.Users(), Options{DisableScheduler: true})
	defer e2.Close()
	e2.SetParam("threshold", mustParam(t, e1, "threshold"))
	if _, err := e2.AddRules(paperRules); err != nil {
		t.Fatal(err)
	}

	s1, err := e1.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e2.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	queries := []cube.Query{
		{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}},
		{Fact: "Sales", GroupBy: []cube.LevelRef{{Dimension: "Store", Level: "City"}},
			Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}}},
		{Fact: "Sales", GroupBy: []cube.LevelRef{{Dimension: "Product", Level: "Family"}},
			Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}},
			OrderBy:    &cube.OrderBy{Agg: 0, Desc: true}, Limit: 3},
	}
	for round := 0; round < 3; round++ { // round > 0 hits e1's cache
		for i, q := range queries {
			r1, err := s1.Query(q)
			if err != nil {
				t.Fatalf("round %d query %d scheduler: %v", round, i, err)
			}
			r2, err := s2.Query(q)
			if err != nil {
				t.Fatalf("round %d query %d direct: %v", round, i, err)
			}
			if !sameAnswer(r1, r2) {
				t.Errorf("round %d query %d: scheduler result differs from direct", round, i)
			}
			b1, err := s1.QueryBaseline(q)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := s2.QueryBaseline(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sameAnswer(b1, b2) {
				t.Errorf("round %d query %d: baseline differs", round, i)
			}
		}
	}
	if st := e1.SchedulerStats(); st.CacheHits == 0 {
		t.Error("repeat rounds never hit the result cache")
	}
}

func mustParam(t *testing.T, e *Engine, name string) prml.Value {
	t.Helper()
	v, ok := e.Param(name)
	if !ok {
		t.Fatalf("param %s missing", name)
	}
	return v
}

// TestEngineExecuteBatchMisuse covers the batch API's misuse paths
// table-driven: empty query lists, mismatched sessions slices, and the
// valid nil/partial-sessions shapes.
func TestEngineExecuteBatchMisuse(t *testing.T) {
	e, ds := newTestEngine(t)
	defer e.Close()
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	good := cube.Query{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}

	cases := []struct {
		name     string
		qs       []cube.Query
		sessions []*Session
		wantErr  string
		wantLen  int
	}{
		{name: "empty query list", qs: nil, sessions: nil, wantErr: "at least one query"},
		{name: "empty with sessions", qs: []cube.Query{}, sessions: []*Session{s}, wantErr: "at least one query"},
		{name: "too few sessions", qs: []cube.Query{good, good}, sessions: []*Session{s}, wantErr: "2 queries but 1 sessions"},
		{name: "too many sessions", qs: []cube.Query{good}, sessions: []*Session{s, s}, wantErr: "1 queries but 2 sessions"},
		{name: "nil sessions is baseline", qs: []cube.Query{good, good}, sessions: nil, wantLen: 2},
		{name: "nil entry is baseline", qs: []cube.Query{good, good}, sessions: []*Session{s, nil}, wantLen: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := e.ExecuteBatch(tc.qs, tc.sessions)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != tc.wantLen {
				t.Fatalf("len(res) = %d, want %d", len(res), tc.wantLen)
			}
			for i, r := range res {
				if r == nil {
					t.Fatalf("result %d is nil", i)
				}
			}
		})
	}

	// The personalized entry must see no more than the baseline one.
	res, err := e.ExecuteBatch([]cube.Query{good, good}, []*Session{s, nil})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].MatchedFacts > res[1].MatchedFacts {
		t.Errorf("personalized matched %d > baseline %d", res[0].MatchedFacts, res[1].MatchedFacts)
	}
}

// TestEngineCloseRejectsQueries checks the scheduler lifecycle on the
// engine: Close drains, later queries fail, Close is idempotent.
func TestEngineCloseRejectsQueries(t *testing.T) {
	e, ds := newTestEngine(t)
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	q := cube.Query{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := s.Query(q); err != qsched.ErrClosed {
		t.Errorf("query after close: err = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

// TestSharedSubexprBatchUnderSpatialSelect is the race-stress companion of
// the staged batch executor: several goroutines hammer sharing-heavy
// QueryBatch calls (queries sharing one filter set and grouping, so every
// scan materializes shared stage-1/2 artifacts) while a writer keeps
// mutating the session's selection through SpatialSelect. The run must be
// data-race free (-race in CI), every batch must be internally consistent
// (entries sharing artifacts see the same facts), and the quiescent state
// must equal direct serial execution for both sharing modes.
func TestSharedSubexprBatchUnderSpatialSelect(t *testing.T) {
	for _, mode := range []SharedSubexprMode{SharedSubexprOn, SharedSubexprOff} {
		mode := mode
		name := "shared"
		if mode == SharedSubexprOff {
			name = "fused"
		}
		t.Run(name, func(t *testing.T) {
			e, ds := newTestEngineOpts(t, Options{
				CoalesceWindow: 200 * time.Microsecond,
				QueryWorkers:   2,
				SharedSubexpr:  mode,
			})
			defer e.Close()
			s, err := e.StartSession("alice", ds.CityLocs[0])
			if err != nil {
				t.Fatal(err)
			}
			filters := []cube.AttrFilter{{
				LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
				Attr:     "population", Op: cube.OpGt, Value: float64(0),
			}}
			qs := make([]cube.Query, 6)
			for i := range qs {
				qs[i] = cube.Query{
					Fact:       "Sales",
					GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: "City"}},
					Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}},
					Filters:    filters,
					Limit:      1000 + i, // distinct plans, shared subexpressions
				}
			}

			var wg sync.WaitGroup
			errs := make(chan error, 64)
			done := make(chan struct{})
			wg.Add(1)
			go func() { // writer: widen the selection while batches run
				defer wg.Done()
				defer close(done)
				for _, km := range []int{2, 8, 32, 120} {
					pred := fmt.Sprintf(
						"Distance(GeoMD.Store.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < %dkm", km)
					if _, err := s.SpatialSelect("GeoMD.Store", pred); err != nil {
						errs <- err
						return
					}
				}
			}()
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						res, err := s.QueryBatch(qs, nil)
						if err != nil {
							errs <- err
							return
						}
						// Entries materialize their view snapshot in batch
						// order and selections only ever widen the mask, so
						// within one batch the matched counts must be
						// non-decreasing (an entry seeing *fewer* facts than
						// an earlier one means a torn or stale mask).
						for i := 1; i < len(res); i++ {
							if res[i].MatchedFacts < res[i-1].MatchedFacts {
								errs <- fmt.Errorf("batch entry %d matched %d < entry %d's %d",
									i, res[i].MatchedFacts, i-1, res[i-1].MatchedFacts)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Quiescent: batch results equal direct serial execution.
			res, err := s.QueryBatch(qs, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range qs {
				want, err := e.Cube().Execute(q, s.View())
				if err != nil {
					t.Fatal(err)
				}
				if !sameAnswer(res[i], want) {
					t.Fatalf("quiescent batch entry %d differs from serial execution", i)
				}
			}
		})
	}
}

// TestNoStaleCachedResultsUnderSpatialSelect is the stale-epoch stress
// test: readers hammer cached personalized queries while a writer keeps
// widening the session's selection through SpatialSelect. Selections only
// ever union within a level, so the personalized fact count is
// monotonically nondecreasing; a reader that observes view epoch E before
// querying must get a result reflecting at least every selection recorded
// at an epoch <= E — anything smaller is a stale pre-epoch cache entry.
func TestNoStaleCachedResultsUnderSpatialSelect(t *testing.T) {
	e, ds := newTestEngineOpts(t, Options{
		CoalesceWindow:   200 * time.Microsecond,
		ResultCacheBytes: 1 << 20,
		QueryWorkers:     2,
	})
	defer e.Close()
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	q := cube.Query{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}

	// checkpoints record (epoch, direct personalized count) after each
	// completed selection; the slice only grows.
	type checkpoint struct {
		epoch uint64
		count int
	}
	var (
		cpMu        sync.Mutex
		checkpoints []checkpoint
	)
	record := func() {
		direct, err := e.Cube().Execute(q, s.View())
		if err != nil {
			t.Error(err)
			return
		}
		ep := s.View().Epoch()
		cpMu.Lock()
		checkpoints = append(checkpoints, checkpoint{epoch: ep, count: direct.MatchedFacts})
		cpMu.Unlock()
	}
	record() // post-login state

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	done := make(chan struct{})

	// Writer: widen the selection radius step by step. Each SpatialSelect
	// unions more stores into the Store.Store level mask, bumping the
	// view's epoch per selected instance.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for _, km := range []int{2, 4, 8, 16, 32, 64, 120} {
			pred := fmt.Sprintf(
				"Distance(GeoMD.Store.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < %dkm", km)
			if _, err := s.SpatialSelect("GeoMD.Store", pred); err != nil {
				errs <- err
				return
			}
			record()
		}
	}()

	// Readers: cached scheduler-routed queries racing the selections.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				e0 := s.View().Epoch()
				res, err := s.Query(q)
				if err != nil {
					errs <- err
					return
				}
				// Strongest recorded state the reader provably observed.
				cpMu.Lock()
				floor := -1
				for _, cp := range checkpoints {
					if cp.epoch <= e0 && cp.count > floor {
						floor = cp.count
					}
				}
				cpMu.Unlock()
				if res.MatchedFacts < floor {
					errs <- fmt.Errorf("stale result: matched %d < %d recorded at epoch <= %d",
						res.MatchedFacts, floor, e0)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The radii must have actually widened the selection, or the harness
	// proves nothing.
	cpMu.Lock()
	first, last := checkpoints[0], checkpoints[len(checkpoints)-1]
	cpMu.Unlock()
	if last.count <= first.count {
		t.Fatalf("selection never widened: %d -> %d facts", first.count, last.count)
	}

	// Quiescent state: a fresh query (possibly cached) must equal direct
	// execution exactly.
	want, err := e.Cube().Execute(q, s.View())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswer(got, want) {
			t.Fatalf("quiescent query %d differs from direct execution", i)
		}
	}
	if st := e.SchedulerStats(); st.CacheHits == 0 {
		t.Log("note: stress run recorded no cache hits (timing-dependent)")
	}
}

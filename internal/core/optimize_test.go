package core

import (
	"testing"

	"sdwp/internal/datagen"
	"sdwp/internal/prml"
)

// optimizerEngines builds two engines over the same dataset: one with the
// rule optimizer, one forcing the generic interpreter.
func optimizerEngines(t testing.TB, cfg datagen.Config, rules string) (*Engine, *Engine, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(disable bool) *Engine {
		users, err := datagen.NewUserStore(map[string]string{"u": "RegionalSalesManager"})
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(ds.Cube, users, Options{DisableRuleOptimizer: disable})
		e.SetParam("threshold", prml.NumberVal(2))
		if _, err := e.AddRules(rules); err != nil {
			t.Fatal(err)
		}
		return e
	}
	return mk(false), mk(true), ds
}

const radiusRule = `
Rule:near When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 5km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen`

// The optimized plan must select exactly the same members as the
// interpreter, across several login locations.
func TestOptimizerMatchesInterpreter(t *testing.T) {
	cfg := datagen.Default()
	cfg.Stores = 500
	cfg.Sales = 100
	fast, slow, ds := optimizerEngines(t, cfg, radiusRule)
	for _, cityIdx := range []int{0, 5, 11, 17} {
		loc := ds.CityLocs[cityIdx]
		sf, err := fast.StartSession("u", loc)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := slow.StartSession("u", loc)
		if err != nil {
			t.Fatal(err)
		}
		mf := sf.View().LevelMask("Store", "Store")
		ms := ss.View().LevelMask("Store", "Store")
		if !mf.Equal(ms) {
			t.Fatalf("city %d: optimizer %s != interpreter %s", cityIdx, mf, ms)
		}
	}
}

// The reference geometry may be a whole layer ("near any highway"); the
// optimizer must still agree (MembersWithinKm handles non-point centers by
// exact scan).
func TestOptimizerLayerReference(t *testing.T) {
	const rules = `
Rule:addRoads When SessionStart do
  AddLayer('Highway', LINE)
endWhen
Rule:near When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, GeoMD.Highway.geometry) < 10km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen`
	cfg := datagen.Default()
	cfg.Stores = 300
	cfg.Sales = 100
	fast, slow, ds := optimizerEngines(t, cfg, rules)
	sf, err := fast.StartSession("u", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	ss, err := slow.StartSession("u", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	mf := sf.View().LevelMask("Store", "Store")
	ms := ss.View().LevelMask("Store", "Store")
	if mf == nil || !mf.Equal(ms) {
		t.Fatalf("optimizer %s != interpreter %s", mf, ms)
	}
	if !mf.Any() {
		t.Fatal("no stores near highways; geography too sparse for the test")
	}
}

// Shapes the optimizer must NOT claim: they fall back to the interpreter
// and still work.
func TestOptimizerBailsOutOnOtherShapes(t *testing.T) {
	const rules = `
Rule:twoActions When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 5km) then
      SelectInstance(s)
      SetContent(SUS.DecisionMaker.name, 'seen')
    endIf
  endForeach
endWhen
Rule:greaterThan When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) > 5000km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen
Rule:attrCond When SessionStart do
  Foreach c in (GeoMD.Store.City)
    If (c.population > 1000000) then
      SelectInstance(c)
    endIf
  endForeach
endWhen`
	cfg := datagen.Default()
	cfg.Stores = 100
	cfg.Sales = 100
	fast, slow, ds := optimizerEngines(t, cfg, rules)
	sf, err := fast.StartSession("u", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	ss, err := slow.StartSession("u", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range [][2]string{{"Store", "Store"}, {"Store", "City"}} {
		mf := sf.View().LevelMask(lvl[0], lvl[1])
		ms := ss.View().LevelMask(lvl[0], lvl[1])
		if !mf.Equal(ms) {
			t.Fatalf("%s.%s: optimizer path diverged: %s vs %s", lvl[0], lvl[1], mf, ms)
		}
	}
	if got := sf.User().GetString("name"); got != "seen" {
		t.Errorf("interpreter fallback skipped actions: name = %q", got)
	}
}

// Planar mode must never use the (geodetic) optimizer.
func TestOptimizerDisabledInPlanarMode(t *testing.T) {
	cfg := datagen.Default()
	cfg.Stores = 50
	cfg.Sales = 50
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	users, err := datagen.NewUserStore(map[string]string{"u": "X"})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(ds.Cube, users, Options{Planar: true})
	if _, err := e.AddRules(radiusRule); err != nil {
		t.Fatal(err)
	}
	// In planar degree units, a 5 "km" radius is a 5-degree radius; the
	// session must start (interpreter path) without error.
	s, err := e.StartSession("u", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	mask := s.View().LevelMask("Store", "Store")
	if mask == nil || !mask.Any() {
		t.Fatal("planar interpreter selected nothing within 5 degrees")
	}
}

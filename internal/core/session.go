package core

import (
	"context"
	"fmt"
	"sync"

	"sdwp/internal/cube"
	"sdwp/internal/geom"
	"sdwp/internal/geomd"
	"sdwp/internal/prml"
	"sdwp/internal/usermodel"
)

// Session is one decision maker's personalized analysis session: the
// outcome of the Fig. 1 process — a personalized GeoMD schema plus a
// personalized cube view — together with the event surface the BI front end
// drives (queries and spatial selections).
type Session struct {
	ID     string
	UserID string

	engine   *Engine
	user     *usermodel.Entity
	location geom.Geometry

	mu     sync.Mutex
	schema *geomd.Schema
	view   *cube.View
}

// Schema returns the session's personalized GeoMD schema.
func (s *Session) Schema() *geomd.Schema {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.schema
}

// View returns the session's personalized cube view.
func (s *Session) View() *cube.View {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view
}

// User returns the decision maker's profile root entity.
func (s *Session) User() *usermodel.Entity { return s.user }

// Engine returns the engine this session belongs to.
func (s *Session) Engine() *Engine { return s.engine }

// Location returns the session's location context geometry (nil if
// unknown).
func (s *Session) Location() geom.Geometry { return s.location }

// Query runs an OLAP query through the personalized view — what the
// paper's "succeeding analysis in any BI tool" sees. The query routes
// through the engine's scheduler (internal/qsched): it may be answered
// from the epoch-keyed result cache, coalesce into a shared scan with
// other sessions' concurrent queries, or execute alone — always with a
// result identical to the direct serial path.
func (s *Session) Query(q cube.Query) (*cube.Result, error) {
	return s.QueryCtx(context.Background(), q)
}

// QueryCtx is Query with a per-request context: cancellation unblocks the
// caller, and a context deadline (or core.Options.QueryTimeout) drops the
// query from the admission queue instead of executing it late.
func (s *Session) QueryCtx(ctx context.Context, q cube.Query) (*cube.Result, error) {
	return s.engine.sched.SubmitCtx(ctx, q, s.View(), s.UserID)
}

// QueryBaseline runs the same query against the whole warehouse (the
// non-personalized baseline of experiment C1), also scheduler-routed.
func (s *Session) QueryBaseline(q cube.Query) (*cube.Result, error) {
	return s.QueryBaselineCtx(context.Background(), q)
}

// QueryBaselineCtx is QueryBaseline with a per-request context (see
// QueryCtx).
func (s *Session) QueryBaselineCtx(ctx context.Context, q cube.Query) (*cube.Result, error) {
	return s.engine.sched.SubmitCtx(ctx, q, nil, s.UserID)
}

// QueryBatch answers a batch of queries through the scheduler: each entry
// hits the result cache individually, and misses coalesce into shared
// scans together with every other session's concurrent traffic (see
// cube.ExecuteBatch for the underlying scan). baseline optionally marks
// queries that bypass the personalized view (nil = all personalized;
// otherwise one entry per query).
func (s *Session) QueryBatch(qs []cube.Query, baseline []bool) ([]*cube.Result, error) {
	return s.QueryBatchCtx(context.Background(), qs, baseline)
}

// QueryBatchCtx is QueryBatch with a per-request context scoping the
// whole batch (see QueryCtx).
func (s *Session) QueryBatchCtx(ctx context.Context, qs []cube.Query, baseline []bool) ([]*cube.Result, error) {
	if baseline != nil && len(baseline) != len(qs) {
		return nil, fmt.Errorf("core: batch has %d queries but %d baseline flags", len(qs), len(baseline))
	}
	vs := make([]*cube.View, len(qs))
	v := s.View()
	for i := range qs {
		if baseline == nil || !baseline[i] {
			vs[i] = v
		}
	}
	return s.engine.sched.SubmitBatchCtx(ctx, qs, vs, s.UserID)
}

// exec runs one rule body in this session's environment.
func (s *Session) exec(r *prml.Rule) (prml.Stats, error) {
	env := &sessionEnv{s: s}
	return prml.NewEvaluator(env).Exec(r)
}

// SelectionResult reports what a SpatialSelect did.
type SelectionResult struct {
	// Selected lists the instances the predicate matched (and that were
	// added to the personalized view).
	Selected []prml.Instance
	// RulesFired lists the tracking rules triggered by the selection.
	RulesFired []string
}

// SpatialSelect performs an interactive spatial selection — the user picks
// the instances of target (a GeoMD path such as GeoMD.Store.City) that
// satisfy predicate (a PRML boolean expression over that element, e.g.
// Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km).
//
// The selection (i) restricts the personalized view to the matched
// instances, and (ii) fires every registered SpatialSelection tracking rule
// whose event target is the same element and whose event expression is
// satisfied by at least one matched instance (the operational semantics
// chosen in DESIGN.md §2).
func (s *Session) SpatialSelect(target string, predicate string) (*SelectionResult, error) {
	targetPath, err := parseTargetPath(target)
	if err != nil {
		return nil, err
	}
	pred, err := prml.ParseExpr(predicate)
	if err != nil {
		return nil, err
	}

	env := &sessionEnv{s: s}
	ev := prml.NewEvaluator(env)
	res := &SelectionResult{}

	// Evaluate the predicate once per instance of the target element, with
	// the instance bound as the "current" value of the target path.
	err = env.Iterate(targetPath, func(inst prml.Instance) error {
		env.bind(targetPath, inst)
		v, err := ev.EvalExpr(pred)
		env.unbind()
		if err != nil {
			return err
		}
		if v.Kind != prml.KindBool {
			return fmt.Errorf("core: selection predicate is %s, want bool", v.Kind)
		}
		if v.Bool {
			if err := env.SelectInstance(prml.InstVal(inst)); err != nil {
				return err
			}
			res.Selected = append(res.Selected, inst)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(res.Selected) == 0 {
		return res, nil
	}

	// Fire matching tracking rules.
	for _, r := range s.engine.rulesByKind(prml.RuleTracking) {
		if r.Event.Target == nil || r.Event.Target.String() != targetPath.String() {
			continue
		}
		fired := false
		for _, inst := range res.Selected {
			env.bind(r.Event.Target, inst)
			ok, err := ev.EvalEventCond(r.Event.Cond, "", prml.Instance{})
			env.unbind()
			if err != nil {
				return nil, fmt.Errorf("core: event condition of rule %s: %w", r.Name, err)
			}
			if ok {
				fired = true
				break
			}
		}
		if !fired {
			continue
		}
		if _, err := s.exec(r); err != nil {
			return nil, err
		}
		res.RulesFired = append(res.RulesFired, r.Name)
	}
	return res, nil
}

// parseTargetPath parses and validates a GeoMD element path.
func parseTargetPath(target string) (*prml.PathExpr, error) {
	e, err := prml.ParseExpr(target)
	if err != nil {
		return nil, err
	}
	p, ok := e.(*prml.PathExpr)
	if !ok || p.Root != prml.RootGeoMD {
		return nil, fmt.Errorf("core: selection target must be a GeoMD path, got %q", target)
	}
	return p, nil
}

package core

import (
	"strings"
	"testing"

	"sdwp/internal/cube"
	"sdwp/internal/datagen"
	"sdwp/internal/geom"
	"sdwp/internal/prml"
	"sdwp/internal/usermodel"
)

// The paper's Section 5 rules, verbatim.
const paperRules = `
Rule:addSpatiality When SessionStart do
  If (SUS.DecisionMaker.dm2role.name = 'RegionalSalesManager') then
    AddLayer('Airport', POINT)
    BecomeSpatial(MD.Sales.Store.geometry, POINT)
  endIf
endWhen

Rule:5kmStores When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 5km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen

Rule:IntAirportCity When SpatialSelection(GeoMD.Store.City,
    Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km) do
  SetContent(SUS.DecisionMaker.dm2airportcity.degree,
    SUS.DecisionMaker.dm2airportcity.degree + 1)
endWhen

Rule:TrainAirportCity When SessionStart do
  If (SUS.DecisionMaker.dm2airportcity.degree > threshold) then
    AddLayer('Train', LINE)
    Foreach t, c, a in (GeoMD.Train, GeoMD.Store.City, GeoMD.Airport)
      If (Distance(Intersection(Intersection(t.geometry, c.geometry), a.geometry)) < 50km) then
        SelectInstance(c)
      endIf
    endForeach
  endIf
endWhen
`

// newTestEngine builds an engine over a small generated warehouse with the
// paper's rules registered and two users: a regional sales manager and an
// accountant.
func newTestEngine(t testing.TB) (*Engine, *datagen.Dataset) {
	t.Helper()
	return newTestEngineOpts(t, Options{})
}

// newTestEngineOpts is newTestEngine with explicit engine options (e.g.
// QueryWorkers for the parallel-executor stress tests).
func newTestEngineOpts(t testing.TB, opts Options) (*Engine, *datagen.Dataset) {
	t.Helper()
	cfg := datagen.Default()
	cfg.Cities = 30
	cfg.Stores = 150
	cfg.Customers = 100
	cfg.Sales = 3000
	cfg.TrainLines = 8
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	users, err := datagen.NewUserStore(map[string]string{
		"alice": "RegionalSalesManager",
		"bob":   "Accountant",
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(ds.Cube, users, opts)
	e.SetParam("threshold", prml.NumberVal(2))
	if _, err := e.AddRules(paperRules); err != nil {
		t.Fatal(err)
	}
	return e, ds
}

func TestAddRulesRejectsBrokenRules(t *testing.T) {
	e, _ := newTestEngine(t)
	if _, err := e.AddRules("Rule:x When"); err == nil {
		t.Error("syntax error accepted")
	}
	// Analyzer catches unknown identifiers.
	if _, err := e.AddRules(`Rule:x When SessionStart do
  If (SUS.DecisionMaker.dm2airportcity.degree > unknownParam) then
    AddLayer('Airport', POINT)
  endIf
endWhen`); err == nil || !strings.Contains(err.Error(), "unknownParam") {
		t.Errorf("err = %v", err)
	}
	// Duplicate rule names across registrations rejected.
	if _, err := e.AddRules(`Rule:addSpatiality When SessionStart do
  AddLayer('Airport', POINT)
endWhen`); err == nil || !strings.Contains(err.Error(), "duplicate rule name") {
		t.Errorf("err = %v", err)
	}
	if got := len(e.Rules()); got != 4 {
		t.Errorf("rules = %d, want the original 4", got)
	}
}

// TestExample51SchemaRule is experiment X1 and (with the Train layer from
// rule TrainAirportCity) F6: the manager's session schema matches Fig. 6,
// the accountant's stays at Fig. 2.
func TestExample51SchemaRule(t *testing.T) {
	e, ds := newTestEngine(t)
	loc := ds.CityLocs[0]

	alice, err := e.StartSession("alice", loc)
	if err != nil {
		t.Fatal(err)
	}
	if !alice.Schema().IsSpatial("Store", "Store") {
		t.Error("manager's Store level must be spatial (BecomeSpatial)")
	}
	if _, ok := alice.Schema().Layer("Airport"); !ok {
		t.Error("manager's schema must have the Airport layer")
	}
	gt, _ := alice.Schema().SpatialType("Store", "Store")
	if gt != geom.TypePoint {
		t.Errorf("Store spatial type = %v", gt)
	}

	bob, err := e.StartSession("bob", loc)
	if err != nil {
		t.Fatal(err)
	}
	if bob.Schema().IsSpatial("Store", "Store") {
		t.Error("accountant's schema must not gain spatiality")
	}
	if _, ok := bob.Schema().Layer("Airport"); ok {
		t.Error("accountant's schema must not gain the Airport layer")
	}
	// The engine's base schema is untouched (clone semantics).
	if e.Cube().Schema().IsSpatial("Store", "Store") {
		t.Error("base schema mutated by a session")
	}
}

// TestExample52InstanceRule is experiment X2: only stores within 5 km of
// the user remain visible to succeeding analysis.
func TestExample52InstanceRule(t *testing.T) {
	e, ds := newTestEngine(t)
	loc := ds.CityLocs[3]
	s, err := e.StartSession("alice", loc)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: stores within 5 km (haversine).
	want := map[int32]bool{}
	for i, sl := range ds.StoreLocs {
		if geom.Haversine(loc, sl) < 5 {
			want[int32(i)] = true
		}
	}
	if len(want) == 0 {
		t.Fatal("test geography produced no stores within 5 km; adjust config")
	}
	mask := s.View().LevelMask("Store", "Store")
	if mask == nil {
		t.Fatal("no store selection recorded")
	}
	if mask.Count() != len(want) {
		t.Fatalf("selected %d stores, want %d", mask.Count(), len(want))
	}
	for idx := range want {
		if !mask.Test(int(idx)) {
			t.Errorf("store %d within 5km not selected", idx)
		}
	}

	// Succeeding analysis sees only those stores' facts.
	res, err := s.Query(cube.Query{
		Fact:       "Sales",
		Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.QueryBaseline(cube.Query{
		Fact:       "Sales",
		Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedFacts >= base.MatchedFacts {
		t.Errorf("personalized %d facts !< baseline %d", res.MatchedFacts, base.MatchedFacts)
	}
	// Count exactly: facts whose store is in the selection.
	fd := e.Cube().FactData("Sales")
	exact := 0
	for i := int32(0); int(i) < fd.Len(); i++ {
		k, _ := fd.DimKey("Store", i)
		if want[k] {
			exact++
		}
	}
	if res.MatchedFacts != exact {
		t.Errorf("personalized matched %d, want %d", res.MatchedFacts, exact)
	}
}

// TestExample53InterestRules is experiment X3: spatial selections raise the
// AirportCity degree via the tracking rule; once past the threshold, the
// next session gains the Train layer and train-connected cities.
func TestExample53InterestRules(t *testing.T) {
	e, ds := newTestEngine(t)
	loc := ds.CityLocs[0]

	const selectNearAirports = "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km"

	// Three sessions, each selecting cities near airports once.
	for round := 1; round <= 3; round++ {
		s, err := e.StartSession("alice", loc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.SpatialSelect("GeoMD.Store.City", selectNearAirports)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Selected) == 0 {
			t.Fatal("no airport cities selected; geography too sparse")
		}
		fired := false
		for _, name := range res.RulesFired {
			if name == "IntAirportCity" {
				fired = true
			}
		}
		if !fired {
			t.Fatalf("round %d: tracking rule did not fire (fired: %v)", round, res.RulesFired)
		}
		degree, err := e.Users().Get("alice").Resolve([]string{"dm2airportcity", "degree"})
		if err != nil {
			t.Fatal(err)
		}
		if degree != float64(round) {
			t.Fatalf("degree after round %d = %v", round, degree)
		}
		if err := e.EndSession(s); err != nil {
			t.Fatal(err)
		}
	}

	// degree (3) > threshold (2): the next session runs TrainAirportCity.
	s, err := e.StartSession("alice", loc)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Schema().Layer("Train"); !ok {
		t.Fatal("Train layer missing after threshold exceeded")
	}
	cityMask := s.View().LevelMask("Store", "City")
	if cityMask == nil || !cityMask.Any() {
		t.Fatal("no train-connected cities selected")
	}
	// Every selected city must lie on some train route (necessary
	// condition for a rail connection).
	onRoute := map[int32]bool{}
	for _, route := range ds.TrainRoutes {
		for _, cityIdx := range route {
			onRoute[cityIdx] = true
		}
	}
	for _, idx := range cityMask.Indices() {
		if !onRoute[int32(idx)] {
			t.Errorf("selected city %d is on no train route", idx)
		}
	}

	// The accountant never accumulated interest: no Train layer.
	b, err := e.StartSession("bob", loc)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Schema().Layer("Train"); ok {
		t.Error("accountant gained the Train layer without interest")
	}
}

// TestFig1ProcessPipeline is experiment F1: the complete Fig. 1 flow in one
// test — MD model, schema rules, GeoMD model, instance rules, personalized
// analysis.
func TestFig1ProcessPipeline(t *testing.T) {
	e, ds := newTestEngine(t)
	s, err := e.StartSession("alice", ds.CityLocs[1])
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 (schema rules) produced a GeoMD model.
	diff := s.Schema().Diff(e.Cube().Schema())
	wantDiff := map[string]bool{
		"+SpatialLevel Store.Store POINT": true,
		"+Layer Airport POINT":            true,
	}
	for _, d := range diff {
		if !wantDiff[d] {
			t.Errorf("unexpected schema delta %q", d)
		}
		delete(wantDiff, d)
	}
	if len(wantDiff) != 0 {
		t.Errorf("missing schema deltas: %v (got %v)", wantDiff, diff)
	}
	// Phase 2 (instance rules) produced a restricted view.
	if !s.View().Restricted() {
		t.Fatal("view not personalized")
	}
	// Succeeding OLAP analysis works through the view.
	res, err := s.Query(cube.Query{
		Fact:       "Sales",
		GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: "City"}},
		Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScannedFacts == 0 {
		t.Fatal("query scanned nothing")
	}
}

func TestSessionWiringBuildsFig4Graph(t *testing.T) {
	e, ds := newTestEngine(t)
	loc := ds.CityLocs[2]
	s, err := e.StartSession("alice", loc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.User().Resolve([]string{"dm2session", "s2location", "geometry"})
	if err != nil {
		t.Fatal(err)
	}
	pt, ok := g.(geom.Point)
	if !ok || !pt.Eq(loc) {
		t.Fatalf("wired location = %v", g)
	}
	if s.Location() == nil || s.User() == nil || s.ID == "" {
		t.Error("session accessors broken")
	}
	if e.Session(s.ID) != s {
		t.Error("session registry lookup failed")
	}
	if err := e.EndSession(s); err != nil {
		t.Fatal(err)
	}
	if e.Session(s.ID) != nil {
		t.Error("session not removed on end")
	}
}

func TestStartSessionWithoutLocationFailsLocationRule(t *testing.T) {
	// The 5kmStores rule needs the user location; without one the rule
	// errors and session start reports it (fail-loud semantics).
	e, _ := newTestEngine(t)
	if _, err := e.StartSession("alice", nil); err == nil {
		t.Fatal("expected error from location-dependent rule")
	}
}

func TestSpatialSelectValidation(t *testing.T) {
	e, ds := newTestEngine(t)
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SpatialSelect("SUS.DecisionMaker", "true"); err == nil {
		t.Error("non-GeoMD target accepted")
	}
	if _, err := s.SpatialSelect("GeoMD.Store.City", "1 + 1"); err == nil {
		t.Error("non-bool predicate accepted")
	}
	if _, err := s.SpatialSelect("GeoMD.Store.City", "not valid ("); err == nil {
		t.Error("broken predicate accepted")
	}
	if _, err := s.SpatialSelect("GeoMD.Nothing", "true"); err == nil {
		t.Error("unknown element accepted")
	}
	// A predicate matching nothing fires no rules.
	res, err := s.SpatialSelect("GeoMD.Store.City", "false")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 0 || len(res.RulesFired) != 0 {
		t.Errorf("empty selection acted: %+v", res)
	}
}

func TestAccountantCannotUseAirportLayer(t *testing.T) {
	// The Airport layer is in the manager's personalized schema only; the
	// accountant's selection predicate referencing it must fail — schema
	// personalization gates instance personalization (Fig. 1 phasing).
	e, ds := newTestEngine(t)
	s, err := e.StartSession("bob", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.SpatialSelect("GeoMD.Store.City",
		"Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km")
	if err == nil {
		t.Fatal("accountant used a layer outside their schema")
	}
}

func TestParamsAndKindOrdering(t *testing.T) {
	e, _ := newTestEngine(t)
	if _, ok := e.Param("threshold"); !ok {
		t.Error("threshold param missing")
	}
	if _, ok := e.Param("ghost"); ok {
		t.Error("ghost param present")
	}
	schema := e.rulesByKind(prml.RuleSchema)
	if len(schema) != 2 { // addSpatiality + TrainAirportCity
		t.Errorf("schema rules = %d", len(schema))
	}
	inst := e.rulesByKind(prml.RuleInstance)
	if len(inst) != 1 || inst[0].Name != "5kmStores" {
		t.Errorf("instance rules = %v", inst)
	}
	track := e.rulesByKind(prml.RuleTracking)
	if len(track) != 1 || track[0].Name != "IntAirportCity" {
		t.Errorf("tracking rules = %v", track)
	}
}

func TestEnvPathResolutionErrors(t *testing.T) {
	e, ds := newTestEngine(t)
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	env := &sessionEnv{s: s}
	ev := prml.NewEvaluator(env)
	for _, src := range []string{
		"SUS.WrongClass.name",          // wrong user class
		"SUS.DecisionMaker.ghost",      // unknown property
		"GeoMD.Nothing.geometry",       // unknown element
		"GeoMD.Store.City.population",  // attribute without instance context
		"MD.Sales.Store.City.geometry", // City not spatial → no collection form
		"GeoMD.Store",                  // bare element in scalar context
	} {
		expr, err := prml.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := ev.EvalExpr(expr); err == nil {
			t.Errorf("%q: expected resolution error", src)
		}
	}
	// Store became spatial for alice → collection geometry works.
	expr, _ := prml.ParseExpr("Distance(SUS.DecisionMaker.dm2session.s2location.geometry, GeoMD.Store.geometry) < 10000km")
	v, err := ev.EvalExpr(expr)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != prml.KindBool || !v.Bool {
		t.Errorf("collection distance = %v", v)
	}
}

func TestEnvActionsErrors(t *testing.T) {
	e, ds := newTestEngine(t)
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	env := &sessionEnv{s: s}
	// AddLayer not in catalog.
	if err := env.AddLayer("Volcano", geom.TypePoint); err == nil {
		t.Error("unknown catalog layer accepted")
	}
	// AddLayer with wrong type.
	if err := env.AddLayer(datagen.LayerTrain, geom.TypePoint); err == nil {
		t.Error("catalog type mismatch accepted")
	}
	// SetContent outside SUS.
	target, _ := prml.ParseExpr("GeoMD.Store.City.population")
	if err := env.SetContent(target.(*prml.PathExpr), prml.NumberVal(1)); err == nil {
		t.Error("SetContent to model path accepted")
	}
	// SelectInstance of a layer object.
	if err := env.SelectInstance(prml.InstVal(prml.Instance{
		Kind: prml.InstLayerObject, Layer: datagen.LayerAirport, Index: 0,
	})); err == nil {
		t.Error("layer object selection accepted")
	}
	// SelectInstance of a non-instance.
	if err := env.SelectInstance(prml.NumberVal(1)); err == nil {
		t.Error("non-instance selection accepted")
	}
	// BecomeSpatial of a layer path.
	bsTarget, _ := prml.ParseExpr("GeoMD.Airport")
	if err := env.BecomeSpatial(bsTarget.(*prml.PathExpr), geom.TypePoint); err == nil {
		t.Error("BecomeSpatial of a layer accepted")
	}
}

func TestEnvFieldNavigation(t *testing.T) {
	e, ds := newTestEngine(t)
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	env := &sessionEnv{s: s}
	store := prml.Instance{Kind: prml.InstMember, Dimension: "Store", Level: "Store", Index: 0}

	// Attribute access.
	v, err := env.Field(store, []string{"name"})
	if err != nil || v.Kind != prml.KindString {
		t.Fatalf("name = %v, %v", v, err)
	}
	// Roll-up navigation to the city and its attribute.
	v, err = env.Field(store, []string{"City", "name"})
	if err != nil || v.Kind != prml.KindString || !strings.HasPrefix(v.Str, "City") {
		t.Fatalf("City.name = %v, %v", v, err)
	}
	v, err = env.Field(store, []string{"City", "population"})
	if err != nil || v.Kind != prml.KindNumber {
		t.Fatalf("City.population = %v, %v", v, err)
	}
	// Roll-up to an instance.
	v, err = env.Field(store, []string{"State"})
	if err != nil || v.Kind != prml.KindInstance || v.Inst.Level != "State" {
		t.Fatalf("State = %v, %v", v, err)
	}
	// Geometry.
	v, err = env.Field(store, []string{"geometry"})
	if err != nil || v.Kind != prml.KindGeom {
		t.Fatalf("geometry = %v, %v", v, err)
	}
	// Errors.
	if _, err := env.Field(store, []string{"ghost"}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := env.Field(store, []string{"name", "deeper"}); err == nil {
		t.Error("navigation through attribute accepted")
	}
	if _, err := env.Field(store, []string{"geometry", "deeper"}); err == nil {
		t.Error("navigation beyond geometry accepted")
	}
	// Layer object fields.
	apt := prml.Instance{Kind: prml.InstLayerObject, Layer: datagen.LayerAirport, Index: 0}
	if v, err := env.Field(apt, []string{"name"}); err != nil || v.Kind != prml.KindString {
		t.Errorf("airport name = %v, %v", v, err)
	}
	if _, err := env.Field(apt, []string{"altitude"}); err == nil {
		t.Error("unknown layer field accepted")
	}
	// Fact fields.
	fact := prml.Instance{Kind: prml.InstFact, Fact: "Sales", Index: 0}
	if v, err := env.Field(fact, []string{"UnitSales"}); err != nil || v.Kind != prml.KindNumber {
		t.Errorf("measure = %v, %v", v, err)
	}
	if v, err := env.Field(fact, []string{"Store", "City", "name"}); err != nil || v.Kind != prml.KindString {
		t.Errorf("fact→store→city = %v, %v", v, err)
	}
	if _, err := env.Field(fact, []string{"Ghost"}); err == nil {
		t.Error("unknown fact field accepted")
	}
}

func TestSessionEndRule(t *testing.T) {
	e, ds := newTestEngine(t)
	if _, err := e.AddRules(`Rule:logout When SessionEnd do
  SetContent(SUS.DecisionMaker.name, 'loggedOut')
endWhen`); err != nil {
		t.Fatal(err)
	}
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EndSession(s); err != nil {
		t.Fatal(err)
	}
	if got := e.Users().Get("alice").GetString("name"); got != "loggedOut" {
		t.Errorf("SessionEnd rule did not run: name = %q", got)
	}
}

func TestWireSessionWithoutSessionClass(t *testing.T) {
	// A profile with only a user class: wiring is a no-op, sessions work.
	p := usermodel.NewProfile()
	if _, err := p.AddClass("U", usermodel.StereoUser); err != nil {
		t.Fatal(err)
	}
	store, err := usermodel.NewStore(p)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := datagen.Generate(datagen.Config{Cities: 5, Stores: 10, Customers: 5, Products: 5, Days: 5, Sales: 50})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(ds.Cube, store, Options{})
	s, err := e.StartSession("u1", geom.Pt(0, 40))
	if err != nil {
		t.Fatal(err)
	}
	if s.User().Class().Name != "U" {
		t.Error("wrong user class")
	}
}

// Rules may iterate fact instances directly (MD.<Fact> as Foreach source)
// and select them — producing a fact-level mask rather than a member mask.
func TestFactIterationRule(t *testing.T) {
	e, ds := newTestEngine(t)
	if _, err := e.AddRules(`Rule:bigTickets When SessionStart do
  Foreach f in (MD.Sales)
    If (f.UnitSales > 19) then
      SelectInstance(f)
    endIf
  endForeach
endWhen`); err != nil {
		t.Fatal(err)
	}
	s, err := e.StartSession("bob", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	mask := s.View().FactMask("Sales")
	if mask == nil || !mask.Any() {
		t.Fatal("no facts selected")
	}
	// Ground truth: facts with UnitSales == 20 (generator max).
	fd := e.Cube().FactData("Sales")
	want := 0
	for i := int32(0); int(i) < fd.Len(); i++ {
		if v, _ := fd.Measure("UnitSales", i); v > 19 {
			want++
		}
	}
	if mask.Count() != want {
		t.Fatalf("selected %d facts, want %d", mask.Count(), want)
	}
	// The fact mask intersects with bob's store mask in queries.
	res, err := s.Query(cube.Query{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedFacts > want {
		t.Fatalf("query saw %d facts, more than the %d selected", res.MatchedFacts, want)
	}
}

// A v-dependent reference expression must defeat the optimizer's pattern
// matcher and still evaluate correctly through the interpreter.
func TestOptimizerBailsOnVarDependentReference(t *testing.T) {
	e, ds := newTestEngine(t)
	if _, err := e.AddRules(`Rule:selfRef When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, Intersection(s.geometry, s.geometry)) < 1km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen`); err != nil {
		t.Fatal(err)
	}
	s, err := e.StartSession("bob", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Every store is at distance 0 from itself: all stores selected.
	mask := s.View().LevelMask("Store", "Store")
	if mask == nil || mask.Count() != e.Cube().Dimension("Store").Level("Store").Len() {
		t.Fatalf("self-reference rule selected %v", mask)
	}
}

func TestRemoveRule(t *testing.T) {
	e, ds := newTestEngine(t)
	if !e.RemoveRule("5kmStores") {
		t.Fatal("rule not found for removal")
	}
	if e.RemoveRule("5kmStores") {
		t.Fatal("double removal succeeded")
	}
	if got := len(e.Rules()); got != 3 {
		t.Fatalf("rules after removal = %d", got)
	}
	// Sessions no longer run the removed instance rule — and no longer
	// need a location.
	s, err := e.StartSession("alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.View().LevelMask("Store", "Store") != nil {
		t.Error("removed rule still selected stores")
	}
	_ = ds
}

func TestSessionStartedAtStamped(t *testing.T) {
	e, ds := newTestEngine(t)
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.User().Resolve([]string{"dm2session", "startedAt"})
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := v.(string)
	if !ok || len(ts) < 20 || !strings.Contains(ts, "T") {
		t.Fatalf("startedAt = %v", v)
	}
}

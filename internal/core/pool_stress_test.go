package core

// Race-stress companion of the pooled-partial morsel executor: parallel
// batches (QueryWorkers > 1, so every scan takes several partial tables
// from the per-fact-table pool, steals morsels off the shared cursor, and
// releases the partials after finalize) run against concurrent AddFact
// ingest and SpatialSelect selection churn. The run must be data-race
// free (-race in CI; scripts/stress.sh runs the PooledPartial pattern),
// batches must stay internally consistent, and the quiescent state must
// match serial execution — pooled state bleeding between scans, or a
// partial released while a sibling still aliases its arena, shows up here
// as corrupted aggregates or detector reports.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"sdwp/internal/cube"
)

func TestPooledPartialBatchUnderIngestAndSpatialSelect(t *testing.T) {
	for _, mode := range []SharedSubexprMode{SharedSubexprOn, SharedSubexprOff} {
		mode := mode
		name := "shared"
		if mode == SharedSubexprOff {
			name = "fused"
		}
		t.Run(name, func(t *testing.T) {
			e, ds := newTestEngineOpts(t, Options{
				CoalesceWindow: 200 * time.Microsecond,
				QueryWorkers:   4, // parallel scans: several pooled partials per query
				SharedSubexpr:  mode,
			})
			defer e.Close()
			s, err := e.StartSession("alice", ds.CityLocs[0])
			if err != nil {
				t.Fatal(err)
			}
			// Alternate group-bys so consecutive scans rebind pooled
			// partials between the dense path (single group) and the
			// hash-cells path (two groups) with different aggregate counts.
			qs := make([]cube.Query, 6)
			for i := range qs {
				qs[i] = cube.Query{
					Fact:       "Sales",
					GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: "City"}},
					Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}, {Measure: "UnitSales", Agg: cube.AggSum}},
					Limit:      1000 + i, // distinct plans, shared subexpressions
				}
				if i%2 == 1 {
					qs[i].GroupBy = []cube.LevelRef{
						{Dimension: "Store", Level: "State"}, {Dimension: "Time", Level: "Month"}}
					qs[i].Aggregates = []cube.MeasureAgg{{Agg: cube.AggCount}}
				}
			}

			stop := make(chan struct{})
			errs := make(chan error, 64)
			var writers sync.WaitGroup
			writers.Add(1)
			go func() { // ingest: append facts while batches scan
				defer writers.Done()
				rng := rand.New(rand.NewSource(11))
				for {
					select {
					case <-stop:
						return
					default:
					}
					keys := map[string]int32{
						"Store":    int32(rng.Intn(150)),
						"Customer": int32(rng.Intn(100)),
						"Product":  int32(rng.Intn(40)),
						"Time":     int32(rng.Intn(60)),
					}
					if err := e.AddFact("Sales", keys, map[string]float64{"UnitSales": 1}); err != nil {
						errs <- err
						return
					}
				}
			}()
			writers.Add(1)
			go func() { // selection churn: widen the view while batches scan
				defer writers.Done()
				for _, km := range []int{2, 8, 32, 120} {
					pred := fmt.Sprintf(
						"Distance(GeoMD.Store.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < %dkm", km)
					if _, err := s.SpatialSelect("GeoMD.Store", pred); err != nil {
						errs <- err
						return
					}
				}
			}()

			var queriers sync.WaitGroup
			for g := 0; g < 3; g++ {
				queriers.Add(1)
				go func() {
					defer queriers.Done()
					for n := 0; n < 20; n++ {
						res, err := s.QueryBatch(qs, nil)
						if err != nil {
							errs <- err
							return
						}
						// No query filters, so MatchedFacts is each entry's
						// visible fact count. The table only grows and
						// selections only widen, and entries materialize
						// their view snapshot in batch order — so within
						// one batch the counts must be non-decreasing; a
						// drop means a torn mask or pooled state bleeding
						// between scans.
						for i := 1; i < len(res); i++ {
							if res[i].MatchedFacts < res[i-1].MatchedFacts {
								errs <- fmt.Errorf("batch entry %d matched %d < entry %d's %d",
									i, res[i].MatchedFacts, i-1, res[i-1].MatchedFacts)
								return
							}
						}
					}
				}()
			}
			queriers.Wait()
			close(stop)
			writers.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Quiescent: pooled batch results equal direct serial execution.
			res, err := s.QueryBatch(qs, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range qs {
				want, err := e.Cube().Execute(q, s.View())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res[i], want) {
					t.Fatalf("quiescent batch entry %d differs from serial execution", i)
				}
			}
		})
	}
}

package core

// Race-stress companion of the pooled-partial morsel executor: parallel
// batches (QueryWorkers > 1, so every scan takes several partial tables
// from the per-fact-table pool, steals morsels off the shared cursor, and
// releases the partials after finalize) run against concurrent AddFact
// ingest and SpatialSelect selection churn. The run must be data-race
// free (-race in CI; scripts/stress.sh runs the PooledPartial pattern),
// batches must stay internally consistent, and the quiescent state must
// match serial execution — pooled state bleeding between scans, or a
// partial released while a sibling still aliases its arena, shows up here
// as corrupted aggregates or detector reports.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sdwp/internal/cube"
	"sdwp/internal/datagen"
)

// TestPackedRepackUnderIngestRespectsScanBound stresses the compressed
// column layer's repack path: the warehouse is seeded with low dimension
// keys (every packed column starts at width 1), then concurrent ingest
// ramps the keys so each column overflows its bit width several times —
// each overflow repacks into a fresh word array — while parallel batch
// scans hold packed views taken at compile time. A scan reading past its
// compile-time bound, or through a torn repack, breaks the SUM ==
// MatchedFacts identity below (every fact carries UnitSales 1) or the
// quiescent equality against the serial unpacked oracle.
func TestPackedRepackUnderIngestRespectsScanBound(t *testing.T) {
	const (
		stores    = 400 // forces Store-key widths 1 through 9 bits
		customers = 130
		products  = 70
		days      = 40
	)
	c := cube.New(datagen.SalesSchema())
	mustAdd := func(dim, level, name string, parent int32) int32 {
		t.Helper()
		id, err := c.AddMember(dim, level, name, parent)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	country := mustAdd("Store", "Country", "Spain", cube.NoParent)
	state := mustAdd("Store", "State", "State00", country)
	city := mustAdd("Store", "City", "City000", state)
	for i := 0; i < stores; i++ {
		mustAdd("Store", "Store", fmt.Sprintf("Store%04d", i), city)
	}
	seg := mustAdd("Customer", "Segment", "Retail", cube.NoParent)
	for i := 0; i < customers; i++ {
		mustAdd("Customer", "Customer", fmt.Sprintf("Cust%04d", i), seg)
	}
	fam := mustAdd("Product", "Family", "Food", cube.NoParent)
	for i := 0; i < products; i++ {
		mustAdd("Product", "Product", fmt.Sprintf("Prod%03d", i), fam)
	}
	year := mustAdd("Time", "Year", "2009", cube.NoParent)
	month := mustAdd("Time", "Month", "2009-01", year)
	for i := 0; i < days; i++ {
		mustAdd("Time", "Day", fmt.Sprintf("2009-01-%02d", i), month)
	}
	// Seed low-key facts so every packed dim-key column starts at width 1.
	for i := 0; i < 1500; i++ {
		if err := c.AddFact("Sales", map[string]int32{
			"Store": int32(i % 2), "Customer": int32(i % 2),
			"Product": int32(i % 2), "Time": int32(i % 2),
		}, map[string]float64{"UnitSales": 1}); err != nil {
			t.Fatal(err)
		}
	}
	users, err := datagen.NewUserStore(map[string]string{"alice": "RegionalSalesManager"})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(c, users, Options{QueryWorkers: 4})
	defer e.Close()

	// Single-level SUM and COUNT (the dense monomorphic kernels) plus a
	// multi-level shape (the hashed-cell kernel).
	qs := []cube.Query{
		{Fact: "Sales", GroupBy: []cube.LevelRef{{Dimension: "Store", Level: "Store"}},
			Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}}},
		{Fact: "Sales", GroupBy: []cube.LevelRef{{Dimension: "Store", Level: "City"}},
			Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}},
		{Fact: "Sales",
			GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: "Store"}, {Dimension: "Time", Level: "Day"}},
			Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}, {Agg: cube.AggCount}}},
	}

	stop := make(chan struct{})
	errs := make(chan error, 16)
	var writers sync.WaitGroup
	writers.Add(1)
	go func() { // ingest: ramp keys so every column repacks mid-run
		defer writers.Done()
		for i := 0; i < 40000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.AddFact("Sales", map[string]int32{
				"Store": int32(i % stores), "Customer": int32(i % customers),
				"Product": int32(i % products), "Time": int32(i % days),
			}, map[string]float64{"UnitSales": 1}); err != nil {
				errs <- err
				return
			}
		}
	}()

	var queriers sync.WaitGroup
	for g := 0; g < 3; g++ {
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			for n := 0; n < 25; n++ {
				res, err := e.ExecuteBatch(qs, nil)
				if err != nil {
					errs <- err
					return
				}
				// No filters and no view: every scanned fact matches, and
				// each fact's UnitSales is 1, so each entry's first
				// aggregate (SUM or COUNT) must total MatchedFacts exactly.
				for i, r := range res {
					if r.ScannedFacts != r.MatchedFacts {
						errs <- fmt.Errorf("batch entry %d: scanned %d != matched %d",
							i, r.ScannedFacts, r.MatchedFacts)
						return
					}
					var sum float64
					for _, row := range r.Rows {
						sum += row.Values[0]
					}
					if sum != float64(r.MatchedFacts) {
						errs <- fmt.Errorf("batch entry %d: aggregate total %v != matched %d (scan bound violated)",
							i, sum, r.MatchedFacts)
						return
					}
				}
			}
		}()
	}
	queriers.Wait()
	close(stop)
	writers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent: the packed batch path equals the serial unpacked oracle
	// over the fully repacked columns.
	res, err := e.ExecuteBatch(qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := c.PackedColumns()
	c.SetPackedColumns(false)
	for i, q := range qs {
		want, err := c.Execute(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswer(res[i], want) {
			t.Fatalf("quiescent batch entry %d differs from the unpacked serial oracle", i)
		}
	}
	c.SetPackedColumns(prev)
}

func TestPooledPartialBatchUnderIngestAndSpatialSelect(t *testing.T) {
	for _, mode := range []SharedSubexprMode{SharedSubexprOn, SharedSubexprOff} {
		mode := mode
		name := "shared"
		if mode == SharedSubexprOff {
			name = "fused"
		}
		t.Run(name, func(t *testing.T) {
			e, ds := newTestEngineOpts(t, Options{
				CoalesceWindow: 200 * time.Microsecond,
				QueryWorkers:   4, // parallel scans: several pooled partials per query
				SharedSubexpr:  mode,
			})
			defer e.Close()
			s, err := e.StartSession("alice", ds.CityLocs[0])
			if err != nil {
				t.Fatal(err)
			}
			// Alternate group-bys so consecutive scans rebind pooled
			// partials between the dense path (single group) and the
			// hash-cells path (two groups) with different aggregate counts.
			qs := make([]cube.Query, 6)
			for i := range qs {
				qs[i] = cube.Query{
					Fact:       "Sales",
					GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: "City"}},
					Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}, {Measure: "UnitSales", Agg: cube.AggSum}},
					Limit:      1000 + i, // distinct plans, shared subexpressions
				}
				if i%2 == 1 {
					qs[i].GroupBy = []cube.LevelRef{
						{Dimension: "Store", Level: "State"}, {Dimension: "Time", Level: "Month"}}
					qs[i].Aggregates = []cube.MeasureAgg{{Agg: cube.AggCount}}
				}
			}

			stop := make(chan struct{})
			errs := make(chan error, 64)
			var writers sync.WaitGroup
			writers.Add(1)
			go func() { // ingest: append facts while batches scan
				defer writers.Done()
				rng := rand.New(rand.NewSource(11))
				for {
					select {
					case <-stop:
						return
					default:
					}
					keys := map[string]int32{
						"Store":    int32(rng.Intn(150)),
						"Customer": int32(rng.Intn(100)),
						"Product":  int32(rng.Intn(40)),
						"Time":     int32(rng.Intn(60)),
					}
					if err := e.AddFact("Sales", keys, map[string]float64{"UnitSales": 1}); err != nil {
						errs <- err
						return
					}
				}
			}()
			writers.Add(1)
			go func() { // selection churn: widen the view while batches scan
				defer writers.Done()
				for _, km := range []int{2, 8, 32, 120} {
					pred := fmt.Sprintf(
						"Distance(GeoMD.Store.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < %dkm", km)
					if _, err := s.SpatialSelect("GeoMD.Store", pred); err != nil {
						errs <- err
						return
					}
				}
			}()

			var queriers sync.WaitGroup
			for g := 0; g < 3; g++ {
				queriers.Add(1)
				go func() {
					defer queriers.Done()
					for n := 0; n < 20; n++ {
						res, err := s.QueryBatch(qs, nil)
						if err != nil {
							errs <- err
							return
						}
						// No query filters, so MatchedFacts is each entry's
						// visible fact count. The table only grows and
						// selections only widen, and entries materialize
						// their view snapshot in batch order — so within
						// one batch the counts must be non-decreasing; a
						// drop means a torn mask or pooled state bleeding
						// between scans.
						for i := 1; i < len(res); i++ {
							if res[i].MatchedFacts < res[i-1].MatchedFacts {
								errs <- fmt.Errorf("batch entry %d matched %d < entry %d's %d",
									i, res[i].MatchedFacts, i-1, res[i-1].MatchedFacts)
								return
							}
						}
					}
				}()
			}
			queriers.Wait()
			close(stop)
			writers.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Quiescent: pooled batch results equal direct serial execution.
			res, err := s.QueryBatch(qs, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range qs {
				want, err := e.Cube().Execute(q, s.View())
				if err != nil {
					t.Fatal(err)
				}
				if !sameAnswer(res[i], want) {
					t.Fatalf("quiescent batch entry %d differs from serial execution", i)
				}
			}
		})
	}
}

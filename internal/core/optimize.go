package core

import (
	"sdwp/internal/geom"
	"sdwp/internal/prml"
)

// This file implements the engine's rule-plan optimizer: the paper's
// hottest rule idiom,
//
//	Foreach v in (GeoMD.<Level>)
//	  If (Distance(v.geometry, <v-free geometry expr>) < <r>) then
//	    SelectInstance(v)
//	  endIf
//	endForeach
//
// (Example 5.2's 5kmStores, the logistics example's reachableStores, ...)
// is executed as a radius query through the cube's spatial access paths —
// an R-tree candidate sweep for point levels — instead of interpreting the
// loop body once per member. The ablation benchmark
// BenchmarkAblationRuleOptimizer measures the difference; Options.
// DisableRuleOptimizer turns the optimizer off.
//
// The optimizer is semantics-preserving: it bails out (handled=false) for
// any shape it does not fully recognize, it re-applies the strict `<`
// comparison on the exact geodetic distance of each index candidate, and it
// only runs in geodetic mode (the planar ablation mode uses the generic
// interpreter, whose Distance is planar).

// OptimizeForeach implements prml.ForeachOptimizer for sessionEnv.
func (env *sessionEnv) OptimizeForeach(f *prml.ForeachStmt, eval func(prml.Expr) (prml.Value, error)) (bool, int, error) {
	if env.s.engine.opts.Planar || env.s.engine.opts.DisableRuleOptimizer {
		return false, 0, nil
	}
	plan, ok := matchRadiusSelect(f)
	if !ok {
		return false, 0, nil
	}
	elem, rest, err := env.resolveElem(plan.source)
	if err != nil || len(rest) != 0 || elem.kind != elemLevel {
		return false, 0, nil
	}
	ld := env.s.engine.cube.Dimension(elem.dim).Level(elem.level)
	if ld == nil {
		return false, 0, nil
	}
	// The reference geometry must be loop-variable-free (checked by the
	// matcher) and must evaluate to a geometry in the enclosing scope.
	refVal, err := eval(plan.refExpr)
	if err != nil {
		return false, 0, nil // let the interpreter surface the error
	}
	var ref geom.Geometry
	switch refVal.Kind {
	case prml.KindGeom:
		ref = refVal.Geom
	default:
		return false, 0, nil
	}
	if ref == nil || ref.IsEmpty() {
		return false, 0, nil
	}
	// Members without geometry make the generic path error; bail out so the
	// behaviour (the error) is identical.
	for i := int32(0); int(i) < ld.Len(); i++ {
		if ld.Geometry(i) == nil {
			return false, 0, nil
		}
	}

	n := 0
	var selErr error
	err = env.s.engine.cube.MembersWithinKm(elem.dim, elem.level, ref, plan.radiusKm,
		func(member int32) bool {
			// Strict `<` on the exact distance (the index uses ≤).
			g := ld.Geometry(member)
			if geom.GeodeticDistance(g, ref) >= plan.radiusKm {
				return true
			}
			inst := prml.Instance{Kind: prml.InstMember, Dimension: elem.dim,
				Level: elem.level, Index: member}
			if selErr = env.SelectInstance(prml.InstVal(inst)); selErr != nil {
				return false
			}
			n++
			return true
		})
	if err != nil {
		return false, 0, nil
	}
	if selErr != nil {
		return true, n, selErr
	}
	return true, n, nil
}

// radiusSelectPlan is the recognized shape.
type radiusSelectPlan struct {
	source   *prml.PathExpr
	refExpr  prml.Expr
	radiusKm float64
}

// matchRadiusSelect recognizes the idiom described above.
func matchRadiusSelect(f *prml.ForeachStmt) (radiusSelectPlan, bool) {
	var none radiusSelectPlan
	if len(f.Vars) != 1 || len(f.Sources) != 1 || len(f.Body) != 1 {
		return none, false
	}
	v := f.Vars[0]
	src := f.Sources[0]
	if src.Root != prml.RootGeoMD {
		return none, false
	}
	ifStmt, ok := f.Body[0].(*prml.IfStmt)
	if !ok || len(ifStmt.Else) != 0 || len(ifStmt.Then) != 1 {
		return none, false
	}
	sel, ok := ifStmt.Then[0].(*prml.SelectInstanceStmt)
	if !ok {
		return none, false
	}
	selPath, ok := sel.Target.(*prml.PathExpr)
	if !ok || selPath.Root != v || len(selPath.Segs) != 0 {
		return none, false
	}
	cmp, ok := ifStmt.Cond.(*prml.BinaryExpr)
	if !ok || cmp.Op != prml.OpLt {
		return none, false
	}
	lit, ok := cmp.R.(*prml.NumberLit)
	if !ok || lit.Value <= 0 {
		return none, false
	}
	call, ok := cmp.L.(*prml.CallExpr)
	if !ok || call.Op != prml.SpDistance || len(call.Args) != 2 {
		return none, false
	}
	// One argument must be v.geometry (or bare v), the other v-free.
	isVarGeom := func(e prml.Expr) bool {
		p, ok := e.(*prml.PathExpr)
		if !ok || p.Root != v {
			return false
		}
		return len(p.Segs) == 0 || (len(p.Segs) == 1 && p.Segs[0] == "geometry")
	}
	var refExpr prml.Expr
	switch {
	case isVarGeom(call.Args[0]) && exprFreeOf(call.Args[1], v):
		refExpr = call.Args[1]
	case isVarGeom(call.Args[1]) && exprFreeOf(call.Args[0], v):
		refExpr = call.Args[0]
	default:
		return none, false
	}
	return radiusSelectPlan{source: src, refExpr: refExpr, radiusKm: lit.Value}, true
}

// exprFreeOf reports whether the expression never references the variable.
func exprFreeOf(e prml.Expr, v string) bool {
	switch ex := e.(type) {
	case nil:
		return true
	case *prml.NumberLit, *prml.StringLit, *prml.BoolLit:
		return true
	case *prml.PathExpr:
		return ex.Root != v
	case *prml.UnaryExpr:
		return exprFreeOf(ex.X, v)
	case *prml.BinaryExpr:
		return exprFreeOf(ex.L, v) && exprFreeOf(ex.R, v)
	case *prml.CallExpr:
		for _, a := range ex.Args {
			if !exprFreeOf(a, v) {
				return false
			}
		}
		return true
	}
	return false
}

package core

import (
	"fmt"
	"sync"
	"testing"

	"sdwp/internal/cube"
)

// TestConcurrentSessions drives many users through the full lifecycle in
// parallel: session start (rule evaluation + schema cloning), queries,
// spatial selections (profile writes) and session end. Run with -race.
func TestConcurrentSessions(t *testing.T) {
	e, ds := newTestEngine(t)
	// Extra users so goroutines hit distinct and shared profiles.
	for i := 0; i < 4; i++ {
		if _, err := e.Users().GetOrCreate(fmt.Sprintf("user%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	q := cube.Query{
		Fact:       "Sales",
		GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: "City"}},
		Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			user := "alice"
			if g%2 == 1 {
				user = "bob"
			}
			loc := ds.CityLocs[g%len(ds.CityLocs)]
			for round := 0; round < 5; round++ {
				s, err := e.StartSession(user, loc)
				if err != nil {
					errs <- err
					return
				}
				if _, err := s.Query(q); err != nil {
					errs <- err
					return
				}
				if user == "alice" {
					if _, err := s.SpatialSelect("GeoMD.Store.City",
						"Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km"); err != nil {
						errs <- err
						return
					}
				}
				if err := e.EndSession(s); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Alice's degree advanced once per selecting round (4 goroutines × 5).
	deg, err := e.Users().Get("alice").Resolve([]string{"dm2airportcity", "degree"})
	if err != nil {
		t.Fatal(err)
	}
	if deg != 20.0 {
		t.Fatalf("degree = %v, want 20 (no lost updates)", deg)
	}
}

// TestConcurrentQueriesVsViewMutation stress-tests the parallel and batch
// executors against live session-view mutation: readers hammer Execute /
// ExecuteBatch through the personalized view while writers keep firing
// spatial selections that mutate the same view and invalidate its
// materialized mask. Run with -race. Every query must see a consistent
// snapshot: a result computed entirely before or entirely after some
// selection, so MatchedFacts can only shrink over time (selections
// intersect) and must never exceed the baseline.
func TestConcurrentQueriesVsViewMutation(t *testing.T) {
	e, ds := newTestEngineOpts(t, Options{QueryWorkers: 4})
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	q := cube.Query{
		Fact:       "Sales",
		GroupBy:    []cube.LevelRef{{Dimension: "Product", Level: "Family"}},
		Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}},
	}
	baseline, err := s.QueryBaseline(q)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})

	// Writers: interactive spatial selections narrowing the view.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for round := 0; round < 6; round++ {
			if _, err := s.SpatialSelect("GeoMD.Store.City",
				"Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km"); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Readers: parallel single queries and shared-scan batches.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if g%2 == 0 {
					res, err := s.Query(q)
					if err != nil {
						errs <- err
						return
					}
					if res.MatchedFacts > baseline.MatchedFacts {
						errs <- fmt.Errorf("matched %d > baseline %d", res.MatchedFacts, baseline.MatchedFacts)
						return
					}
				} else {
					batch, err := s.QueryBatch([]cube.Query{q, q}, []bool{false, true})
					if err != nil {
						errs <- err
						return
					}
					if batch[0].MatchedFacts > batch[1].MatchedFacts {
						errs <- fmt.Errorf("personalized matched %d > baseline %d",
							batch[0].MatchedFacts, batch[1].MatchedFacts)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentQueriesOneSession exercises the view's materialization
// cache under parallel readers.
func TestConcurrentQueriesOneSession(t *testing.T) {
	e, ds := newTestEngine(t)
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	q := cube.Query{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}
	var wg sync.WaitGroup
	results := make([]int, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Query(q)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res.MatchedFacts
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("inconsistent results: %v", results)
		}
	}
}

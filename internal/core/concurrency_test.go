package core

import (
	"fmt"
	"sync"
	"testing"

	"sdwp/internal/cube"
)

// TestConcurrentSessions drives many users through the full lifecycle in
// parallel: session start (rule evaluation + schema cloning), queries,
// spatial selections (profile writes) and session end. Run with -race.
func TestConcurrentSessions(t *testing.T) {
	e, ds := newTestEngine(t)
	// Extra users so goroutines hit distinct and shared profiles.
	for i := 0; i < 4; i++ {
		if _, err := e.Users().GetOrCreate(fmt.Sprintf("user%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	q := cube.Query{
		Fact:       "Sales",
		GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: "City"}},
		Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			user := "alice"
			if g%2 == 1 {
				user = "bob"
			}
			loc := ds.CityLocs[g%len(ds.CityLocs)]
			for round := 0; round < 5; round++ {
				s, err := e.StartSession(user, loc)
				if err != nil {
					errs <- err
					return
				}
				if _, err := s.Query(q); err != nil {
					errs <- err
					return
				}
				if user == "alice" {
					if _, err := s.SpatialSelect("GeoMD.Store.City",
						"Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km"); err != nil {
						errs <- err
						return
					}
				}
				if err := e.EndSession(s); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Alice's degree advanced once per selecting round (4 goroutines × 5).
	deg, err := e.Users().Get("alice").Resolve([]string{"dm2airportcity", "degree"})
	if err != nil {
		t.Fatal(err)
	}
	if deg != 20.0 {
		t.Fatalf("degree = %v, want 20 (no lost updates)", deg)
	}
}

// TestConcurrentQueriesOneSession exercises the view's materialization
// cache under parallel readers.
func TestConcurrentQueriesOneSession(t *testing.T) {
	e, ds := newTestEngine(t)
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	q := cube.Query{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}
	var wg sync.WaitGroup
	results := make([]int, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Query(q)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res.MatchedFacts
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("inconsistent results: %v", results)
		}
	}
}

package core

// Cost-insensitive Result comparison shared by the engine's equivalence
// tests: the Cost vector is attribution — it depends on the scheduling,
// sharing, and sharding mode a query happened to execute under (batch CPU
// shares, artifact splits, cache credits) — while the equivalence laws
// these tests pin cover the logical answer: rows, row order, columns, and
// the scan counters.

import (
	"reflect"

	"sdwp/internal/cube"
	"sdwp/internal/obs"
)

// sameAnswer reports whether two Results agree on everything but Cost.
func sameAnswer(got, want *cube.Result) bool {
	g, w := *got, *want
	g.Cost, w.Cost = obs.QueryCost{}, obs.QueryCost{}
	return reflect.DeepEqual(&g, &w)
}

// sameAnswers is sameAnswer over aligned result slices.
func sameAnswers(got, want []*cube.Result) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if !sameAnswer(got[i], want[i]) {
			return false
		}
	}
	return true
}

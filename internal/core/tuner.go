package core

import (
	"log/slog"
	"sync"
	"time"

	"sdwp/internal/qsched"
)

// The adaptive knob tuner (Options.AutoTune): a background goroutine that
// observes the scheduler's telemetry every interval and re-sizes the
// runtime-tunable knobs within bounds derived from the operator's
// configured values. Heuristics, deliberately coarse (factor-of-two
// moves, wide deadbands — a tuner that oscillates is worse than none):
//
//   - CoalesceWindow from arrival rate: high arrivals filling only small
//     batches mean the window closes before concurrency can coalesce —
//     grow it (×2, bounded by max(4×configured, 2ms)); a near-idle
//     scheduler pays the window as pure latency — shrink it back (÷2,
//     down to 0).
//   - ResultCacheBytes / ArtifactCacheBytes from hit rates: a full cache
//     with a high hit rate earns a bigger budget (×2); a cache missing
//     nearly everything sheds budget (÷2). Both clamp to
//     [configured/4, configured×4], and a cache the operator disabled
//     (configured 0) is never touched.
//
// Every adjustment is logged via slog with the observation that drove it.
// The decision logic lives in tick(), which is driven by the run() loop
// in production and fed synthetic Stats deltas in tests.

const (
	// defaultAutoTuneInterval is the observation period when
	// Options.AutoTuneInterval is unset.
	defaultAutoTuneInterval = 2 * time.Second

	// Window heuristics: grow when arrivals are past windowGrowArrival/s
	// but batches still fill below windowLowFill queries; shrink when
	// arrivals drop under windowShrinkArrival/s. windowStep is the
	// smallest non-zero window (growing from 0 starts here; shrinking
	// below it snaps to 0).
	windowGrowArrival   = 200.0
	windowShrinkArrival = 50.0
	windowLowFill       = 4.0
	windowStep          = 100 * time.Microsecond

	// Cache heuristics: act only on intervals with at least
	// minCacheLookups lookups (below that, hit rates are noise); shrink
	// below cacheShrinkHitRate, grow above cacheGrowHitRate when the
	// cache is also near its budget (cacheFullFraction) — a high hit rate
	// with slack left needs no more bytes.
	minCacheLookups    = 32
	cacheShrinkHitRate = 0.05
	cacheGrowHitRate   = 0.5
	cacheFullFraction  = 0.9
)

// tunerHooks are the tuner's levers, split from the engine so tests can
// drive tick() against recorded fakes.
type tunerHooks struct {
	stats           func() qsched.Stats
	setWindow       func(time.Duration)
	resizeResult    func(int64)
	resizeArtifacts func(int64)
	logger          *slog.Logger
}

// tuner owns the adaptive-knob loop. All mutable state is touched only by
// the run() goroutine (or the test driving tick() directly).
type tuner struct {
	hooks    tunerHooks
	interval time.Duration

	// Live knob values and their bounds. tuneResult/tuneArtifacts are
	// false when the corresponding cache is configured off.
	window        time.Duration
	windowMax     time.Duration
	resultBytes   int64
	resultMin     int64
	resultMax     int64
	tuneResult    bool
	artifactBytes int64
	artifactMin   int64
	artifactMax   int64
	tuneArtifacts bool

	// prev is the previous interval's counter snapshot (deltas drive the
	// heuristics); havePrev gates the first interval, which has no delta.
	prev     qsched.Stats
	havePrev bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// newTuner builds the engine's tuner (Options.AutoTune): hooks wired to
// the scheduler and cache layers, bounds derived from the configured
// knobs.
func newTuner(e *Engine) *tuner {
	interval := e.opts.AutoTuneInterval
	if interval <= 0 {
		interval = defaultAutoTuneInterval
	}
	t := &tuner{
		hooks: tunerHooks{
			stats:        e.SchedulerStats,
			setWindow:    e.sched.SetWindow,
			resizeResult: e.sched.ResizeResultCache,
			resizeArtifacts: func(n int64) {
				if e.shards != nil {
					e.shards.ResizeArtifactCaches(n)
				} else {
					e.artifacts.Resize(n) // nil-safe
				}
			},
			logger: slog.Default(),
		},
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	t.configure(e.opts)
	return t
}

// configure derives the tuner's starting values and bounds from the
// configured knobs.
func (t *tuner) configure(opts Options) {
	t.window = opts.CoalesceWindow
	t.windowMax = 4 * opts.CoalesceWindow
	if t.windowMax < 2*time.Millisecond {
		t.windowMax = 2 * time.Millisecond
	}
	if opts.ResultCacheBytes > 0 {
		t.tuneResult = true
		t.resultBytes = opts.ResultCacheBytes
		t.resultMin = opts.ResultCacheBytes / 4
		t.resultMax = opts.ResultCacheBytes * 4
	}
	if opts.ArtifactCacheBytes > 0 {
		t.tuneArtifacts = true
		t.artifactBytes = opts.ArtifactCacheBytes
		t.artifactMin = opts.ArtifactCacheBytes / 4
		t.artifactMax = opts.ArtifactCacheBytes * 4
	}
}

// run is the tuner goroutine: one tick per interval until stopWait.
func (t *tuner) run() {
	defer close(t.done)
	ticker := time.NewTicker(t.interval)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-t.stop:
			return
		case now := <-ticker.C:
			t.tick(t.hooks.stats(), now.Sub(last))
			last = now
		}
	}
}

// stopWait stops the tuner and waits for its goroutine to exit (so Close
// never races a knob adjustment against scheduler shutdown). Idempotent.
func (t *tuner) stopWait() {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}

// tick is one observation: compare st against the previous snapshot over
// dt and move whichever knobs the heuristics call for. The first call
// only seeds the baseline.
func (t *tuner) tick(st qsched.Stats, dt time.Duration) {
	if dt <= 0 {
		return
	}
	prev := t.prev
	t.prev = st
	if !t.havePrev {
		t.havePrev = true
		return
	}

	arrival := float64(st.Submitted-prev.Submitted) / dt.Seconds()
	batches := st.Batches - prev.Batches
	fill := 0.0
	if batches > 0 {
		fill = float64(st.Executed-prev.Executed) / float64(batches)
	}
	switch {
	case arrival >= windowGrowArrival && batches > 0 && fill < windowLowFill && t.window < t.windowMax:
		next := t.window * 2
		if next < windowStep {
			next = windowStep
		}
		if next > t.windowMax {
			next = t.windowMax
		}
		t.setWindow(next, "high arrival, low batch fill", arrival, fill)
	case arrival < windowShrinkArrival && t.window > 0:
		next := t.window / 2
		if next < windowStep {
			next = 0
		}
		t.setWindow(next, "low arrival", arrival, fill)
	}

	if t.tuneResult {
		if next, rate, ok := retuneCache(st.CacheHits-prev.CacheHits, st.CacheMisses-prev.CacheMisses,
			st.CacheBytes, t.resultBytes, t.resultMin, t.resultMax); ok {
			t.logAdjust("resultCacheBytes", t.resultBytes, next, cacheReason(next, t.resultBytes), rate)
			t.resultBytes = next
			t.hooks.resizeResult(next)
		}
	}
	if t.tuneArtifacts {
		ac, pac := st.ArtifactCache, prev.ArtifactCache
		if next, rate, ok := retuneCache(ac.Hits-pac.Hits, ac.Misses-pac.Misses,
			ac.Bytes, t.artifactBytes, t.artifactMin, t.artifactMax); ok {
			t.logAdjust("artifactCacheBytes", t.artifactBytes, next, cacheReason(next, t.artifactBytes), rate)
			t.artifactBytes = next
			t.hooks.resizeArtifacts(next)
		}
	}
}

// retuneCache is the shared cache heuristic: given an interval's hit/miss
// deltas and the cache's current footprint vs budget, return the next
// budget (ok=false when no move is warranted).
func retuneCache(hits, misses, bytes, cur, min, max int64) (next int64, hitRate float64, ok bool) {
	lookups := hits + misses
	if lookups < minCacheLookups {
		return 0, 0, false
	}
	hitRate = float64(hits) / float64(lookups)
	switch {
	case hitRate < cacheShrinkHitRate:
		next = cur / 2
	case hitRate > cacheGrowHitRate && float64(bytes) >= cacheFullFraction*float64(cur):
		next = cur * 2
	default:
		return 0, hitRate, false
	}
	if next < min {
		next = min
	}
	if next > max {
		next = max
	}
	return next, hitRate, next != cur
}

func cacheReason(next, cur int64) string {
	if next > cur {
		return "high hit rate, cache full"
	}
	return "low hit rate"
}

// setWindow applies and logs one window move (no-op if unchanged).
func (t *tuner) setWindow(next time.Duration, reason string, arrival, fill float64) {
	if next == t.window {
		return
	}
	t.hooks.logger.Info("auto-tune",
		slog.String("knob", "coalesceWindow"),
		slog.Duration("from", t.window), slog.Duration("to", next),
		slog.String("reason", reason),
		slog.Float64("arrivalPerSec", arrival), slog.Float64("batchFill", fill))
	t.window = next
	t.hooks.setWindow(next)
}

// logAdjust records one cache-budget move.
func (t *tuner) logAdjust(knob string, from, to int64, reason string, hitRate float64) {
	t.hooks.logger.Info("auto-tune",
		slog.String("knob", knob),
		slog.Int64("from", from), slog.Int64("to", to),
		slog.String("reason", reason),
		slog.Float64("hitRate", hitRate))
}

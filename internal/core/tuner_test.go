package core

import (
	"io"
	"log/slog"
	"testing"
	"time"

	"sdwp/internal/qsched"
)

// fakeHooks records every knob adjustment the tuner makes, so tick() can
// be driven with synthetic Stats deltas and checked exactly.
type fakeHooks struct {
	windows   []time.Duration
	results   []int64
	artifacts []int64
}

func (f *fakeHooks) hooks() tunerHooks {
	return tunerHooks{
		stats:           func() qsched.Stats { return qsched.Stats{} },
		setWindow:       func(w time.Duration) { f.windows = append(f.windows, w) },
		resizeResult:    func(n int64) { f.results = append(f.results, n) },
		resizeArtifacts: func(n int64) { f.artifacts = append(f.artifacts, n) },
		logger:          slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// newTestTuner builds a tuner over fake hooks with both caches configured.
func newTestTuner(opts Options) (*tuner, *fakeHooks) {
	f := &fakeHooks{}
	t := &tuner{hooks: f.hooks(), interval: time.Second}
	t.configure(opts)
	return t, f
}

// TestTunerFirstTickSeedsBaseline: the first observation has no delta to
// act on — it must only record the snapshot.
func TestTunerFirstTickSeedsBaseline(t *testing.T) {
	tun, f := newTestTuner(Options{CoalesceWindow: time.Millisecond, ResultCacheBytes: 1 << 20})
	tun.tick(qsched.Stats{Submitted: 1 << 20, CacheMisses: 1 << 20}, time.Second)
	if len(f.windows) != 0 || len(f.results) != 0 {
		t.Errorf("first tick adjusted knobs: windows=%v results=%v", f.windows, f.results)
	}
	if !tun.havePrev {
		t.Error("first tick did not seed the baseline")
	}
}

// TestTunerWindowGrow: sustained arrivals with underfilled batches double
// the window, bounded by the configured max.
func TestTunerWindowGrow(t *testing.T) {
	tun, f := newTestTuner(Options{CoalesceWindow: time.Millisecond})
	tun.tick(qsched.Stats{}, time.Second)
	st := qsched.Stats{Submitted: 500, Executed: 100, Batches: 50} // fill 2 < 4
	tun.tick(st, time.Second)
	if len(f.windows) != 1 || f.windows[0] != 2*time.Millisecond {
		t.Fatalf("windows = %v, want one grow to 2ms", f.windows)
	}
	// Keep growing: the bound is 4× configured.
	for i := 2; i <= 4; i++ {
		st.Submitted += 500
		st.Executed += 100
		st.Batches += 50
		tun.tick(st, time.Second)
	}
	if got := f.windows[len(f.windows)-1]; got != 4*time.Millisecond {
		t.Errorf("window grew to %v, want capped at 4ms", got)
	}
	if tun.window != 4*time.Millisecond {
		t.Errorf("tuner window = %v, want 4ms", tun.window)
	}
	// At the cap, another hot interval must not adjust again.
	n := len(f.windows)
	st.Submitted += 500
	st.Executed += 100
	st.Batches += 50
	tun.tick(st, time.Second)
	if len(f.windows) != n {
		t.Errorf("window adjusted past its cap: %v", f.windows)
	}
}

// TestTunerWindowShrink: a near-idle scheduler halves the window, snapping
// to zero below the minimum step.
func TestTunerWindowShrink(t *testing.T) {
	tun, f := newTestTuner(Options{CoalesceWindow: 200 * time.Microsecond})
	tun.tick(qsched.Stats{}, time.Second)
	st := qsched.Stats{Submitted: 10}
	tun.tick(st, time.Second) // 10/s < 50/s
	if len(f.windows) != 1 || f.windows[0] != 100*time.Microsecond {
		t.Fatalf("windows = %v, want one shrink to 100µs", f.windows)
	}
	st.Submitted += 10
	tun.tick(st, time.Second) // 100µs/2 < windowStep: snap to 0
	if got := f.windows[len(f.windows)-1]; got != 0 {
		t.Errorf("window shrank to %v, want 0", got)
	}
	// A zero window stays put on further idle intervals.
	n := len(f.windows)
	st.Submitted += 10
	tun.tick(st, time.Second)
	if len(f.windows) != n {
		t.Errorf("idle interval adjusted a zero window: %v", f.windows)
	}
}

// TestTunerCacheGrowShrink: hit-rate-driven cache budget moves, clamped to
// [configured/4, configured×4].
func TestTunerCacheGrowShrink(t *testing.T) {
	const cfg = 1 << 20
	tun, f := newTestTuner(Options{ResultCacheBytes: cfg})
	tun.tick(qsched.Stats{}, time.Second)

	// High hit rate with the cache nearly full: grow ×2.
	st := qsched.Stats{CacheHits: 90, CacheMisses: 10, CacheBytes: cfg}
	tun.tick(st, time.Second)
	if len(f.results) != 1 || f.results[0] != 2*cfg {
		t.Fatalf("results = %v, want one grow to %d", f.results, 2*cfg)
	}

	// High hit rate with slack left: no move.
	st.CacheHits += 90
	st.CacheMisses += 10
	st.CacheBytes = cfg / 2
	tun.tick(st, time.Second)
	if len(f.results) != 1 {
		t.Errorf("grew with slack left: %v", f.results)
	}

	// Near-zero hit rate: shrink ×2 per interval down to the floor.
	for i := 0; i < 6; i++ {
		st.CacheMisses += 100
		tun.tick(st, time.Second)
	}
	if got := f.results[len(f.results)-1]; got != cfg/4 {
		t.Errorf("cache shrank to %d, want floor %d", got, cfg/4)
	}

	// Too few lookups to judge: no move either way.
	n := len(f.results)
	st.CacheMisses += minCacheLookups - 1
	tun.tick(st, time.Second)
	if len(f.results) != n {
		t.Errorf("adjusted on %d lookups (below the %d floor)", minCacheLookups-1, minCacheLookups)
	}
}

// TestTunerDisabledCacheNeverTouched: a cache the operator configured off
// must never be resized on, whatever the telemetry says.
func TestTunerDisabledCacheNeverTouched(t *testing.T) {
	tun, f := newTestTuner(Options{CoalesceWindow: time.Millisecond}) // both cache budgets 0
	tun.tick(qsched.Stats{}, time.Second)
	st := qsched.Stats{CacheHits: 1000, CacheBytes: 1 << 30}
	st.ArtifactCache.Hits = 1000
	st.ArtifactCache.Bytes = 1 << 30
	tun.tick(st, time.Second)
	if len(f.results) != 0 || len(f.artifacts) != 0 {
		t.Errorf("tuner resized disabled caches: results=%v artifacts=%v", f.results, f.artifacts)
	}
}

// TestTunerArtifactCache: the artifact cache is tuned off its own counters,
// independent of the result cache's.
func TestTunerArtifactCache(t *testing.T) {
	const cfg = 1 << 20
	tun, f := newTestTuner(Options{ArtifactCacheBytes: cfg})
	tun.tick(qsched.Stats{}, time.Second)
	var st qsched.Stats
	st.ArtifactCache.Hits = 80
	st.ArtifactCache.Misses = 20
	st.ArtifactCache.Bytes = cfg
	tun.tick(st, time.Second)
	if len(f.artifacts) != 1 || f.artifacts[0] != 2*cfg {
		t.Errorf("artifacts = %v, want one grow to %d", f.artifacts, 2*cfg)
	}
	if len(f.results) != 0 {
		t.Errorf("result cache resized with budget 0: %v", f.results)
	}
}

// TestEngineAutoTuneClose: an engine with AutoTune on must stop the tuner
// goroutine cleanly on Close, and the tuner must actually drive the live
// scheduler knob (visible through SchedulerStats).
func TestEngineAutoTuneClose(t *testing.T) {
	e, _ := newTestEngineOpts(t, Options{
		AutoTune:         true,
		AutoTuneInterval: time.Millisecond,
		CoalesceWindow:   200 * time.Microsecond,
	})
	if e.tun == nil {
		t.Fatal("AutoTune on but no tuner started")
	}
	// An idle engine shrinks the window toward zero within a few intervals.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.SchedulerStats().CoalesceWindowNs == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := e.SchedulerStats().CoalesceWindowNs; got != 0 {
		t.Errorf("idle window = %dns after tuning, want 0", got)
	}
	done := make(chan struct{})
	go func() { e.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close with AutoTune hung")
	}
	// Idempotent stop: a second Close must not panic or hang.
	e.Close()
}

package core

import (
	"fmt"

	"sdwp/internal/geom"
	"sdwp/internal/prml"
	"sdwp/internal/usermodel"
)

// sessionEnv binds the PRML evaluator to one session. It implements
// prml.Env.
//
// Model-path semantics (Section 4.2.2 of the paper, operationalized):
//
//   - SUS.<UserClass>.<role/prop>... resolves over the decision maker's
//     profile graph.
//   - MD./GeoMD. paths name warehouse elements: an optional fact segment,
//     then a dimension (its finest level) optionally refined by a level
//     name, or a thematic layer of the session's personalized schema.
//   - A trailing "geometry" segment on an *unbound* element denotes the
//     COLLECTION of all its instance geometries, so
//     Distance(x, GeoMD.Airport.geometry) reads "distance from x to the
//     nearest airport" — the paper's "near an airport" idiom. Unbound
//     level geometry requires the level to be spatial in the session
//     schema (i.e. a BecomeSpatial rule ran); unbound layer geometry
//     requires the layer to have been added by an AddLayer rule.
//   - During SpatialSelect and tracking-event evaluation, the selection's
//     target element is *bound* to the instance under consideration, so the
//     same path denotes that instance's own geometry (the paper's
//     Example 5.3 event condition).
type sessionEnv struct {
	s *Session

	bound     bool
	boundElem elemRef
	boundInst prml.Instance
}

// elemRef identifies a warehouse element a path resolves to.
type elemRef struct {
	kind  elemKind
	fact  string // elemFact
	dim   string // elemLevel
	level string // elemLevel
	layer string // elemLayer
}

type elemKind uint8

const (
	elemLevel elemKind = iota + 1
	elemLayer
	elemFact
)

func (e elemRef) String() string {
	switch e.kind {
	case elemLevel:
		return e.dim + "." + e.level
	case elemLayer:
		return "layer " + e.layer
	case elemFact:
		return "fact " + e.fact
	}
	return "?"
}

// bind sets the current instance binding for the element denoted by path.
func (env *sessionEnv) bind(p *prml.PathExpr, inst prml.Instance) {
	if elem, _, err := env.resolveElem(p); err == nil {
		env.bound = true
		env.boundElem = elem
		env.boundInst = inst
	}
}

func (env *sessionEnv) unbind() { env.bound = false }

// resolveElem maps a model path to the element it denotes plus trailing
// segments (attribute / geometry / nothing).
func (env *sessionEnv) resolveElem(p *prml.PathExpr) (elemRef, []string, error) {
	segs := p.Segs
	if len(segs) == 0 {
		return elemRef{}, nil, fmt.Errorf("core: path %s needs at least one segment", p.Root)
	}
	schema := env.s.Schema()
	md := schema.MD

	i := 0
	var fact string
	// Layers are visible only once an AddLayer rule put them in the
	// session's schema (GeoMD prefix; the plain MD model has no layers).
	if p.Root == prml.RootGeoMD {
		if _, ok := schema.Layer(segs[0]); ok {
			return elemRef{kind: elemLayer, layer: segs[0]}, segs[1:], nil
		}
	}
	if f := md.Fact(segs[i]); f != nil {
		fact = f.Name
		i++
		if i == len(segs) {
			return elemRef{kind: elemFact, fact: fact}, nil, nil
		}
	}
	d := md.Dimension(segs[i])
	if d == nil {
		return elemRef{}, nil, fmt.Errorf("core: %s does not name a layer, fact or dimension", p)
	}
	level := d.Finest().Name
	i++
	for i < len(segs) && d.Level(segs[i]) != nil {
		level = segs[i]
		i++
	}
	return elemRef{kind: elemLevel, dim: d.Name, level: level}, segs[i:], nil
}

// ResolvePath implements prml.Env.
func (env *sessionEnv) ResolvePath(p *prml.PathExpr) (prml.Value, error) {
	switch p.Root {
	case prml.RootSUS:
		return env.resolveSUS(p)
	case prml.RootMD, prml.RootGeoMD:
		return env.resolveModel(p)
	}
	return prml.Value{}, fmt.Errorf("core: unknown path root %q", p.Root)
}

func (env *sessionEnv) resolveSUS(p *prml.PathExpr) (prml.Value, error) {
	userClass := env.s.user.Class().Name
	if len(p.Segs) == 0 || p.Segs[0] != userClass {
		return prml.Value{}, fmt.Errorf("core: SUS path must start with the user class %q, got %s", userClass, p)
	}
	v, err := env.s.user.Resolve(p.Segs[1:])
	if err != nil {
		return prml.Value{}, err
	}
	if _, isEntity := v.(*usermodel.Entity); isEntity {
		return prml.Value{}, fmt.Errorf("core: %s resolves to an entity, not a value", p)
	}
	return prml.FromAny(v)
}

func (env *sessionEnv) resolveModel(p *prml.PathExpr) (prml.Value, error) {
	elem, rest, err := env.resolveElem(p)
	if err != nil {
		return prml.Value{}, err
	}
	// Bound element: the path denotes the instance under consideration.
	if env.bound && elem == env.boundElem {
		if len(rest) == 0 {
			return prml.InstVal(env.boundInst), nil
		}
		return env.Field(env.boundInst, rest)
	}
	// Unbound geometry: the collection of all instance geometries.
	if len(rest) == 1 && rest[0] == "geometry" {
		return env.elementGeometry(elem)
	}
	if len(rest) == 0 {
		return prml.Value{}, fmt.Errorf("core: %s denotes the element %s; use it in Foreach or a selection target", p, elem)
	}
	return prml.Value{}, fmt.Errorf("core: %s: attribute %q needs an instance context (Foreach variable or selection binding)", p, rest[0])
}

// elementGeometry gathers all geometries of a level or layer.
func (env *sessionEnv) elementGeometry(elem elemRef) (prml.Value, error) {
	c := env.s.engine.cube
	schema := env.s.Schema()
	switch elem.kind {
	case elemLayer:
		ld := c.Layer(elem.layer)
		if ld == nil {
			return prml.Value{}, fmt.Errorf("core: layer %q has no catalog data", elem.layer)
		}
		geoms := make([]geom.Geometry, ld.Len())
		for i := int32(0); int(i) < ld.Len(); i++ {
			geoms[i] = ld.Geometry(i)
		}
		return prml.GeomVal(geom.Collection{Geoms: geoms}), nil
	case elemLevel:
		if !schema.IsSpatial(elem.dim, elem.level) {
			return prml.Value{}, fmt.Errorf("core: level %s is not spatial in this session's schema (no BecomeSpatial rule fired)", elem)
		}
		dd := c.Dimension(elem.dim)
		ld := dd.Level(elem.level)
		var geoms []geom.Geometry
		for i := int32(0); int(i) < ld.Len(); i++ {
			if g := ld.Geometry(i); g != nil {
				geoms = append(geoms, g)
			}
		}
		return prml.GeomVal(geom.Collection{Geoms: geoms}), nil
	}
	return prml.Value{}, fmt.Errorf("core: %s has no geometry", elem)
}

// Field implements prml.Env: navigation from a loop-bound instance.
func (env *sessionEnv) Field(inst prml.Instance, segs []string) (prml.Value, error) {
	if len(segs) == 0 {
		return prml.InstVal(inst), nil
	}
	c := env.s.engine.cube
	switch inst.Kind {
	case prml.InstMember:
		dd := c.Dimension(inst.Dimension)
		if dd == nil {
			return prml.Value{}, fmt.Errorf("core: instance %s references unknown dimension", inst)
		}
		ld := dd.Level(inst.Level)
		if ld == nil {
			return prml.Value{}, fmt.Errorf("core: instance %s references unknown level", inst)
		}
		seg := segs[0]
		if seg == "geometry" {
			g := ld.Geometry(inst.Index)
			if g == nil {
				return prml.Value{}, fmt.Errorf("core: member %s has no geometry loaded", inst)
			}
			if len(segs) > 1 {
				return prml.Value{}, fmt.Errorf("core: cannot navigate beyond geometry")
			}
			return prml.GeomVal(g), nil
		}
		// Roll-up navigation: s.City.name climbs to the ancestor member.
		from := dd.LevelIndex(inst.Level)
		if to := dd.LevelIndex(seg); to > from && from >= 0 {
			anc := dd.Ancestor(from, to, inst.Index)
			if anc < 0 {
				return prml.Value{}, fmt.Errorf("core: member %s has no ancestor at level %s", inst, seg)
			}
			up := prml.Instance{Kind: prml.InstMember, Dimension: inst.Dimension,
				Level: seg, Index: anc}
			return env.Field(up, segs[1:])
		}
		if len(segs) > 1 {
			return prml.Value{}, fmt.Errorf("core: cannot navigate through attribute %q", seg)
		}
		v, ok := ld.Attr(seg, inst.Index)
		if !ok {
			return prml.Value{}, fmt.Errorf("core: level %s.%s has no attribute %q", inst.Dimension, inst.Level, seg)
		}
		return prml.FromAny(v)

	case prml.InstLayerObject:
		ld := c.Layer(inst.Layer)
		if ld == nil {
			return prml.Value{}, fmt.Errorf("core: instance %s references unknown layer", inst)
		}
		if len(segs) > 1 {
			return prml.Value{}, fmt.Errorf("core: cannot navigate beyond layer object fields")
		}
		switch segs[0] {
		case "geometry":
			return prml.GeomVal(ld.Geometry(inst.Index)), nil
		case "name":
			return prml.StringVal(ld.Name(inst.Index)), nil
		}
		return prml.Value{}, fmt.Errorf("core: layer objects have geometry and name, not %q", segs[0])

	case prml.InstFact:
		return env.factField(inst, segs)
	}
	return prml.Value{}, fmt.Errorf("core: cannot navigate from %s", inst)
}

// factField navigates from a fact instance: a measure name yields its
// value; a dimension name yields the fact's member at that dimension's
// finest level (navigation may continue from there).
func (env *sessionEnv) factField(inst prml.Instance, segs []string) (prml.Value, error) {
	c := env.s.engine.cube
	fd := c.FactData(inst.Fact)
	if fd == nil {
		return prml.Value{}, fmt.Errorf("core: instance %s references unknown fact", inst)
	}
	seg := segs[0]
	if v, ok := fd.Measure(seg, inst.Index); ok {
		if len(segs) > 1 {
			return prml.Value{}, fmt.Errorf("core: cannot navigate through measure %q", seg)
		}
		return prml.NumberVal(v), nil
	}
	if key, ok := fd.DimKey(seg, inst.Index); ok {
		dd := c.Dimension(seg)
		member := prml.Instance{Kind: prml.InstMember, Dimension: seg,
			Level: dd.LevelName(0), Index: key}
		return env.Field(member, segs[1:])
	}
	return prml.Value{}, fmt.Errorf("core: fact %s has no measure or dimension %q", inst.Fact, seg)
}

// SetContent implements prml.Env: acquisition into the user model.
func (env *sessionEnv) SetContent(target *prml.PathExpr, v prml.Value) error {
	if target.Root != prml.RootSUS {
		return fmt.Errorf("core: SetContent targets the user model; %s is not a SUS path", target)
	}
	userClass := env.s.user.Class().Name
	if len(target.Segs) < 2 || target.Segs[0] != userClass {
		return fmt.Errorf("core: SetContent target must be SUS.%s.<path>, got %s", userClass, target)
	}
	return env.s.user.SetPath(target.Segs[1:], v.ToAny())
}

// SelectInstance implements prml.Env: adds the instance to the session's
// personalized view.
func (env *sessionEnv) SelectInstance(v prml.Value) error {
	if v.Kind != prml.KindInstance {
		return fmt.Errorf("core: SelectInstance needs an instance, got %s", v.Kind)
	}
	s := env.s
	s.mu.Lock()
	defer s.mu.Unlock()
	inst := v.Inst
	switch inst.Kind {
	case prml.InstMember:
		return s.view.SelectMember(inst.Dimension, inst.Level, inst.Index)
	case prml.InstFact:
		return s.view.SelectFact(inst.Fact, inst.Index)
	}
	return fmt.Errorf("core: cannot select %s (layer objects are reference data, not warehouse instances)", inst)
}

// BecomeSpatial implements prml.Env: promotes a level of the session's
// schema.
func (env *sessionEnv) BecomeSpatial(target *prml.PathExpr, g geom.Type) error {
	elem, rest, err := env.resolveElem(target)
	if err != nil {
		return err
	}
	if elem.kind != elemLevel {
		return fmt.Errorf("core: BecomeSpatial target %s is not a dimension level", target)
	}
	if len(rest) > 1 || (len(rest) == 1 && rest[0] != "geometry") {
		return fmt.Errorf("core: BecomeSpatial target %s has trailing segments %v", target, rest)
	}
	s := env.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.schema.BecomeSpatial(elem.dim, elem.level, g)
}

// AddLayer implements prml.Env: makes a catalog layer visible in the
// session's schema. The layer's data must exist in the geographic catalog
// (the engine's stand-in for the external spatial data sources of the
// paper's Section 1 — geoportals, OSM, etc.).
func (env *sessionEnv) AddLayer(name string, g geom.Type) error {
	ld := env.s.engine.cube.Layer(name)
	if ld == nil {
		return fmt.Errorf("core: layer %q is not available in the geographic catalog", name)
	}
	if ld.Type() != g {
		return fmt.Errorf("core: catalog layer %q has type %s, rule wants %s", name, ld.Type(), g)
	}
	s := env.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.schema.AddLayer(name, g)
}

// Iterate implements prml.Env: Foreach domains.
func (env *sessionEnv) Iterate(p *prml.PathExpr, fn func(prml.Instance) error) error {
	elem, rest, err := env.resolveElem(p)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: cannot iterate %s (trailing %v)", p, rest)
	}
	c := env.s.engine.cube
	switch elem.kind {
	case elemLayer:
		ld := c.Layer(elem.layer)
		if ld == nil {
			return fmt.Errorf("core: layer %q has no catalog data", elem.layer)
		}
		for i := int32(0); int(i) < ld.Len(); i++ {
			if err := fn(prml.Instance{Kind: prml.InstLayerObject, Layer: elem.layer, Index: i}); err != nil {
				return err
			}
		}
		return nil
	case elemLevel:
		ld := c.Dimension(elem.dim).Level(elem.level)
		for i := int32(0); int(i) < ld.Len(); i++ {
			if err := fn(prml.Instance{Kind: prml.InstMember, Dimension: elem.dim, Level: elem.level, Index: i}); err != nil {
				return err
			}
		}
		return nil
	case elemFact:
		fd := c.FactData(elem.fact)
		for i := int32(0); int(i) < fd.Len(); i++ {
			if err := fn(prml.Instance{Kind: prml.InstFact, Fact: elem.fact, Index: i}); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("core: cannot iterate %s", p)
}

// Param implements prml.Env.
func (env *sessionEnv) Param(name string) (prml.Value, bool) {
	return env.s.engine.Param(name)
}

// DistanceKm implements prml.Env.
func (env *sessionEnv) DistanceKm(a, b geom.Geometry) float64 {
	if env.s.engine.opts.Planar {
		return geom.Distance(a, b)
	}
	return geom.GeodeticDistance(a, b)
}

// LengthKm implements prml.Env.
func (env *sessionEnv) LengthKm(g geom.Geometry) float64 {
	if env.s.engine.opts.Planar {
		return geom.MinLength(g)
	}
	return geom.GeodeticMinLength(g)
}

package core

// Engine-level coverage of the shard subsystem: a sharded engine — PRML
// session personalization, spatial selections, the scheduler, and the
// scatter-gather executor all composed — must return results identical to
// an unsharded engine over the same warehouse, and must survive
// concurrent queries vs SpatialSelect vs routed AddFact under the race
// detector.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sdwp/internal/cube"
)

// shardedTestQueries is a small personalization-sensitive query mix
// (integer-valued UnitSales keeps SUM exact under any merge order).
var shardedTestQueries = []cube.Query{
	{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}},
	{Fact: "Sales", GroupBy: []cube.LevelRef{{Dimension: "Store", Level: "City"}},
		Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}}},
	{Fact: "Sales", GroupBy: []cube.LevelRef{{Dimension: "Product", Level: "Family"}},
		Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggAvg}},
		OrderBy:    &cube.OrderBy{Agg: 0, Desc: true}, Limit: 5},
	{Fact: "Sales", GroupBy: []cube.LevelRef{{Dimension: "Store", Level: "State"}},
		Aggregates: []cube.MeasureAgg{{Measure: "StoreSales", Agg: cube.AggMax},
			{Measure: "StoreCost", Agg: cube.AggMin}},
		Filters: []cube.AttrFilter{{
			LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
			Attr:     "population", Op: cube.OpGt, Value: float64(100000)}}},
}

// TestShardedEngineEquivalence runs the same personalized sessions (rules
// fired, spatial selections applied) through a sharded and an unsharded
// engine over the same cube and requires identical results on every path
// — Query, QueryBaseline, QueryBatch, and Engine.ExecuteBatch.
func TestShardedEngineEquivalence(t *testing.T) {
	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sharded, ds := newTestEngineOpts(t, Options{
				FactShards:         shards,
				QueryWorkers:       2,
				ArtifactCacheBytes: 8 << 20,
			})
			defer sharded.Close()
			if got := sharded.FactShards(); got != shards {
				t.Fatalf("FactShards() = %d, want %d", got, shards)
			}
			plain := NewEngine(ds.Cube, sharded.Users(), Options{DisableScheduler: true})
			defer plain.Close()
			plain.SetParam("threshold", mustParam(t, sharded, "threshold"))
			if _, err := plain.AddRules(paperRules); err != nil {
				t.Fatal(err)
			}

			s1, err := sharded.StartSession("alice", ds.CityLocs[0])
			if err != nil {
				t.Fatal(err)
			}
			s2, err := plain.StartSession("alice", ds.CityLocs[0])
			if err != nil {
				t.Fatal(err)
			}
			// A spatial selection narrows both sessions' views identically
			// and bumps the view epochs (re-splitting the shard masks).
			const sel = "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 40km"
			if _, err := s1.SpatialSelect("GeoMD.Store.City", sel); err != nil {
				t.Fatal(err)
			}
			if _, err := s2.SpatialSelect("GeoMD.Store.City", sel); err != nil {
				t.Fatal(err)
			}

			for i, q := range shardedTestQueries {
				r1, err := s1.Query(q)
				if err != nil {
					t.Fatalf("query %d sharded: %v", i, err)
				}
				r2, err := s2.Query(q)
				if err != nil {
					t.Fatalf("query %d plain: %v", i, err)
				}
				if !sameAnswer(r1, r2) {
					t.Errorf("query %d: sharded result differs from unsharded", i)
				}
				b1, err := s1.QueryBaseline(q)
				if err != nil {
					t.Fatal(err)
				}
				b2, err := s2.QueryBaseline(q)
				if err != nil {
					t.Fatal(err)
				}
				if !sameAnswer(b1, b2) {
					t.Errorf("query %d: sharded baseline differs", i)
				}
			}

			// Batch paths.
			batch1, err := s1.QueryBatch(shardedTestQueries, nil)
			if err != nil {
				t.Fatal(err)
			}
			batch2, err := s2.QueryBatch(shardedTestQueries, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !sameAnswers(batch1, batch2) {
				t.Error("sharded QueryBatch differs from unsharded")
			}
			raw1, err := sharded.ExecuteBatch(shardedTestQueries, []*Session{s1, nil, s1, nil})
			if err != nil {
				t.Fatal(err)
			}
			raw2, err := plain.ExecuteBatch(shardedTestQueries, []*Session{s2, nil, s2, nil})
			if err != nil {
				t.Fatal(err)
			}
			if !sameAnswers(raw1, raw2) {
				t.Error("sharded Engine.ExecuteBatch differs from unsharded")
			}

			// Routed ingest through the engine keeps both sides consistent:
			// the sharded engine's parent cube is the plain engine's cube.
			rng := rand.New(rand.NewSource(int64(shards)))
			for i := 0; i < 100; i++ {
				keys := map[string]int32{
					"Store":    int32(rng.Intn(150)),
					"Customer": int32(rng.Intn(100)),
					"Product":  int32(rng.Intn(40)),
					"Time":     int32(rng.Intn(60)),
				}
				measures := map[string]float64{"UnitSales": float64(1 + rng.Intn(9))}
				if err := sharded.AddFact("Sales", keys, measures); err != nil {
					t.Fatalf("AddFact %d: %v", i, err)
				}
			}
			for i, q := range shardedTestQueries {
				b1, err := s1.QueryBaseline(q)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ds.Cube.Execute(q, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !sameAnswer(b1, want) {
					t.Errorf("post-ingest query %d: sharded differs from serial oracle", i)
				}
			}

			st := sharded.SchedulerStats()
			if st.FactShards != shards || len(st.ShardFactCounts) != shards || st.ShardScans == 0 {
				t.Errorf("shard stats not composed into SchedulerStats: %+v", st)
			}
		})
	}
}

// TestShardedBatchUnderSpatialSelectAndIngest is the engine-level race
// stress: sharded scheduler-routed batches run while sessions keep
// applying spatial selections and facts stream in through the routed
// ingest path. Run under -race in CI.
func TestShardedBatchUnderSpatialSelectAndIngest(t *testing.T) {
	e, ds := newTestEngineOpts(t, Options{
		FactShards:         3,
		QueryWorkers:       2,
		CoalesceWindow:     200 * time.Microsecond,
		ResultCacheBytes:   1 << 20,
		ArtifactCacheBytes: 4 << 20,
	})
	defer e.Close()

	const sessions = 3
	ss := make([]*Session, sessions)
	for i := range ss {
		s, err := e.StartSession("alice", ds.CityLocs[i%len(ds.CityLocs)])
		if err != nil {
			t.Fatal(err)
		}
		ss[i] = s
	}

	stop := make(chan struct{})
	var mutators sync.WaitGroup

	// Ingest stream.
	mutators.Add(1)
	go func() {
		defer mutators.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			keys := map[string]int32{
				"Store":    int32(rng.Intn(150)),
				"Customer": int32(rng.Intn(100)),
				"Product":  int32(rng.Intn(40)),
				"Time":     int32(rng.Intn(60)),
			}
			if err := e.AddFact("Sales", keys, map[string]float64{"UnitSales": 1}); err != nil {
				t.Errorf("AddFact: %v", err)
				return
			}
		}
	}()

	// Selection stream: epochs bump, shard masks re-split.
	mutators.Add(1)
	go func() {
		defer mutators.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := ss[i%sessions]
			if _, err := s.SpatialSelect("GeoMD.Store.City",
				"Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 40km"); err != nil {
				t.Errorf("SpatialSelect: %v", err)
				return
			}
		}
	}()

	var queriers sync.WaitGroup
	for g := 0; g < 4; g++ {
		queriers.Add(1)
		go func(g int) {
			defer queriers.Done()
			s := ss[g%sessions]
			for n := 0; n < 25; n++ {
				q := shardedTestQueries[n%len(shardedTestQueries)]
				if _, err := s.Query(q); err != nil {
					t.Errorf("querier %d: %v", g, err)
					return
				}
				if _, err := s.QueryBatch(shardedTestQueries[:2], []bool{false, true}); err != nil {
					t.Errorf("querier %d batch: %v", g, err)
					return
				}
			}
		}(g)
	}
	queriers.Wait()
	close(stop)
	mutators.Wait()
}

// TestUnshardedAddFactUnderQueries pins Engine.AddFact's concurrency
// contract on the single-table path: ingest through the engine takes the
// executor's write lock, so it is safe against scheduler-routed queries
// (fact-column appends can reallocate the backing arrays mid-scan
// otherwise). Run under -race in CI.
func TestUnshardedAddFactUnderQueries(t *testing.T) {
	e, ds := newTestEngineOpts(t, Options{QueryWorkers: 2, CoalesceWindow: 100 * time.Microsecond})
	defer e.Close()
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var ingest sync.WaitGroup
	ingest.Add(1)
	go func() {
		defer ingest.Done()
		rng := rand.New(rand.NewSource(3))
		for {
			select {
			case <-stop:
				return
			default:
			}
			keys := map[string]int32{
				"Store":    int32(rng.Intn(150)),
				"Customer": int32(rng.Intn(100)),
				"Product":  int32(rng.Intn(40)),
				"Time":     int32(rng.Intn(60)),
			}
			if err := e.AddFact("Sales", keys, map[string]float64{"UnitSales": 1}); err != nil {
				t.Errorf("AddFact: %v", err)
				return
			}
		}
	}()

	var queriers sync.WaitGroup
	for g := 0; g < 3; g++ {
		queriers.Add(1)
		go func(g int) {
			defer queriers.Done()
			for n := 0; n < 25; n++ {
				if _, err := s.Query(shardedTestQueries[n%len(shardedTestQueries)]); err != nil {
					t.Errorf("querier %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	queriers.Wait()
	close(stop)
	ingest.Wait()

	// After quiescence the scheduler's answer matches the serial oracle.
	got, err := s.QueryBaseline(shardedTestQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	want, err := ds.Cube.Execute(shardedTestQueries[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswer(got, want) {
		t.Error("post-ingest result differs from serial oracle")
	}
}

package prml

import (
	"reflect"
	"strings"
	"testing"
)

// stripPos removes source positions so structural comparison ignores
// formatting differences.
func stripPos(v any) {
	stripValue(reflect.ValueOf(v))
}

func stripValue(rv reflect.Value) {
	switch rv.Kind() {
	case reflect.Ptr, reflect.Interface:
		if !rv.IsNil() {
			stripValue(rv.Elem())
		}
	case reflect.Struct:
		for i := 0; i < rv.NumField(); i++ {
			f := rv.Field(i)
			if f.Type() == reflect.TypeOf(Pos{}) && f.CanSet() {
				f.Set(reflect.Zero(f.Type()))
				continue
			}
			stripValue(f)
		}
	case reflect.Slice:
		for i := 0; i < rv.Len(); i++ {
			stripValue(rv.Index(i))
		}
	}
}

// TestFig5MetamodelRoundTrip is experiment F5: every metamodel construct of
// Fig. 5 (events, conditions, spatial expressions, all four actions)
// round-trips through the canonical printer.
func TestFig5MetamodelRoundTrip(t *testing.T) {
	srcs := []string{
		ruleAddSpatiality,
		rule5kmStores,
		ruleIntAirportCity,
		ruleTrainAirportCity,
		`
Rule:kitchenSink When SessionEnd do
  If (not (1 + 2 * 3 - 4 / 2 >= 5) or 'a' <> 'b' and true) then
    SetContent(SUS.U.x, -3.5)
  else
    SelectInstance(GeoMD.Store)
  endIf
  Foreach a, b in (GeoMD.X, MD.Y.Z)
    If (Intersect(a.geometry, b.geometry) = false) then
      SelectInstance(a)
    endIf
    If (Cross(a.geometry, b.geometry) or Inside(a.geometry, b.geometry)
        or Disjoint(a.geometry, b.geometry) or Equals(a.geometry, b.geometry)) then
      SelectInstance(b)
    endIf
  endForeach
  AddLayer('Highway''s', POLYGON)
  BecomeSpatial(GeoMD.F.L.geometry, COLLECTION)
  SetContent(SUS.U.seen, 500m)
endWhen`,
	}
	for _, src := range srcs {
		orig, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		printed := Format(orig...)
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, printed)
		}
		for _, r := range orig {
			stripPos(r)
		}
		for _, r := range back {
			stripPos(r)
		}
		if !reflect.DeepEqual(orig, back) {
			t.Errorf("round trip changed AST:\n--- printed ---\n%s", printed)
		}
	}
}

func TestFormatShape(t *testing.T) {
	r, err := ParseRule(ruleTrainAirportCity)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(r)
	for _, frag := range []string{
		"Rule:TrainAirportCity When SessionStart do",
		"If ((SUS.DecisionMaker.dm2airportcity.degree > threshold)) then",
		"AddLayer('Train', LINE)",
		"Foreach t, c, a in (GeoMD.Train, GeoMD.Store.City, GeoMD.Airport)",
		"Distance(Intersection(Intersection(t.geometry, c.geometry), a.geometry))",
		"50km",
		"SelectInstance(c)",
		"endForeach",
		"endWhen",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Format missing %q in:\n%s", frag, out)
		}
	}
}

func TestFormatUnits(t *testing.T) {
	e, _ := ParseExpr("500m")
	if got := FormatExpr(e); got != "500m" {
		t.Errorf("500m formats as %q", got)
	}
	e, _ = ParseExpr("2.5km")
	if got := FormatExpr(e); got != "2.5km" {
		t.Errorf("2.5km formats as %q", got)
	}
	e, _ = ParseExpr("7")
	if got := FormatExpr(e); got != "7" {
		t.Errorf("7 formats as %q", got)
	}
}

func TestFormatEventWithSelection(t *testing.T) {
	r, _ := ParseRule(ruleIntAirportCity)
	out := Format(r)
	if !strings.Contains(out, "When SpatialSelection(GeoMD.Store.City, ") {
		t.Errorf("event format wrong:\n%s", out)
	}
}

func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want RuleKind
	}{
		{ruleAddSpatiality, RuleSchema},
		{rule5kmStores, RuleInstance},
		{ruleIntAirportCity, RuleTracking},
		{ruleTrainAirportCity, RuleSchema}, // AddLayer + SelectInstance → schema phase
		{`Rule:ack When SessionStart do SetContent(SUS.U.x, 1) endWhen`, RuleOther},
		{`Rule:end When SessionEnd do SetContent(SUS.U.x, 0) endWhen`, RuleOther},
	} {
		r, err := ParseRule(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		if got := Classify(r); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", r.Name, got, tc.want)
		}
	}
	for k, s := range map[RuleKind]string{
		RuleSchema: "schema", RuleInstance: "instance",
		RuleTracking: "tracking", RuleOther: "other", RuleKind(99): "?",
	} {
		if k.String() != s {
			t.Errorf("RuleKind(%d).String() = %q", k, k.String())
		}
	}
}

package prml

import (
	"fmt"

	"sdwp/internal/geom"
)

// Parse parses PRML source containing any number of rules.
func Parse(src string) ([]*Rule, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var rules []*Rule
	for !p.at(tokEOF) {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("prml: no rules in input")
	}
	return rules, nil
}

// ParseRule parses source containing exactly one rule.
func ParseRule(src string) (*Rule, error) {
	rules, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(rules) != 1 {
		return nil, fmt.Errorf("prml: expected exactly one rule, got %d", len(rules))
	}
	return rules[0], nil
}

// ParseExpr parses a standalone expression (used for ad-hoc spatial
// predicates supplied over the web API).
func ParseExpr(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errHere("trailing input after expression")
	}
	return e, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) peek() token { // one token of lookahead
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) atIdent(name string) bool {
	return p.cur().kind == tokIdent && p.cur().text == name
}

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errHere(format string, args ...any) error {
	return fmt.Errorf("prml: %s: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	if !p.at(k) {
		return token{}, p.errHere("expected %s, found %s", k, p.describeCur())
	}
	return p.advance(), nil
}

func (p *parser) expectIdent(name string) error {
	if !p.atIdent(name) {
		return p.errHere("expected %q, found %s", name, p.describeCur())
	}
	p.advance()
	return nil
}

func (p *parser) describeCur() string {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		return fmt.Sprintf("%q", t.text)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	case tokNumber:
		return fmt.Sprintf("number %v", t.num)
	default:
		return t.kind.String()
	}
}

// parseRule parses "Rule:name When event do body endWhen".
func (p *parser) parseRule() (*Rule, error) {
	start := p.cur().pos
	if err := p.expectIdent("Rule"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	name, err := p.parseRuleName()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("When"); err != nil {
		return nil, err
	}
	ev, err := p.parseEvent()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("do"); err != nil {
		return nil, err
	}
	body, err := p.parseStmts("endWhen")
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("endWhen"); err != nil {
		return nil, err
	}
	return &Rule{Name: name, Event: ev, Body: body, Pos: start}, nil
}

// parseRuleName accepts an identifier, optionally preceded by an adjacent
// number token — the paper names one of its rules "5kmStores", which a
// conventional identifier lexer would reject.
func (p *parser) parseRuleName() (string, error) {
	if p.at(tokNumber) {
		num := p.cur()
		next := p.peek()
		adjacent := next.kind == tokIdent &&
			next.pos.Line == num.pos.Line &&
			next.pos.Col == num.pos.Col+len(num.text)
		if adjacent {
			p.advance()
			p.advance()
			return num.text + next.text, nil
		}
		return "", p.errHere("rule name cannot be a bare number")
	}
	t, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) parseEvent() (Event, error) {
	pos := p.cur().pos
	t, err := p.expect(tokIdent)
	if err != nil {
		return Event{}, err
	}
	switch t.text {
	case "SessionStart":
		return Event{Kind: EvSessionStart, Pos: pos}, nil
	case "SessionEnd":
		return Event{Kind: EvSessionEnd, Pos: pos}, nil
	case "SpatialSelection":
		if _, err := p.expect(tokLParen); err != nil {
			return Event{}, err
		}
		target, err := p.parsePath()
		if err != nil {
			return Event{}, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return Event{}, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return Event{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return Event{}, err
		}
		return Event{Kind: EvSpatialSelection, Target: target, Cond: cond, Pos: pos}, nil
	}
	return Event{}, fmt.Errorf("prml: %s: unknown event %q", pos, t.text)
}

// stmtTerminators is the set of identifiers that end a statement list.
var stmtTerminators = map[string]bool{
	"endWhen": true, "endIf": true, "endForeach": true, "else": true,
}

func (p *parser) parseStmts(terminator string) ([]Stmt, error) {
	var out []Stmt
	for {
		if p.at(tokEOF) {
			return nil, p.errHere("expected %q before end of input", terminator)
		}
		if p.cur().kind == tokIdent && stmtTerminators[p.cur().text] {
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	pos := p.cur().pos
	if !p.at(tokIdent) {
		return nil, p.errHere("expected a statement, found %s", p.describeCur())
	}
	switch p.cur().text {
	case "If":
		return p.parseIf()
	case "Foreach":
		return p.parseForeach()
	case "SetContent":
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		target, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &SetContentStmt{Target: target, Value: val, Pos: pos}, nil
	case "SelectInstance":
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		target, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &SelectInstanceStmt{Target: target, Pos: pos}, nil
	case "BecomeSpatial":
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		target, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		g, err := p.parseGeomType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &BecomeSpatialStmt{Target: target, Geom: g, Pos: pos}, nil
	case "AddLayer":
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		name, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		g, err := p.parseGeomType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &AddLayerStmt{Layer: name.text, Geom: g, Pos: pos}, nil
	}
	return nil, p.errHere("unknown statement %q", p.cur().text)
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.cur().pos
	p.advance() // If
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if err := p.expectIdent("then"); err != nil {
		return nil, err
	}
	thenBody, err := p.parseStmts("endIf")
	if err != nil {
		return nil, err
	}
	var elseBody []Stmt
	if p.atIdent("else") {
		p.advance()
		elseBody, err = p.parseStmts("endIf")
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectIdent("endIf"); err != nil {
		return nil, err
	}
	return &IfStmt{Cond: cond, Then: thenBody, Else: elseBody, Pos: pos}, nil
}

func (p *parser) parseForeach() (Stmt, error) {
	pos := p.cur().pos
	p.advance() // Foreach
	var vars []string
	for {
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if v.text == "in" {
			return nil, fmt.Errorf("prml: %s: missing loop variable before 'in'", v.pos)
		}
		vars = append(vars, v.text)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectIdent("in"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var sources []*PathExpr
	for {
		src, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		sources = append(sources, src)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if len(vars) != len(sources) {
		return nil, fmt.Errorf("prml: %s: Foreach has %d variables but %d sources", pos, len(vars), len(sources))
	}
	body, err := p.parseStmts("endForeach")
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("endForeach"); err != nil {
		return nil, err
	}
	return &ForeachStmt{Vars: vars, Sources: sources, Body: body, Pos: pos}, nil
}

func (p *parser) parseGeomType() (geom.Type, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return geom.TypeInvalid, err
	}
	g, err := geom.ParseType(t.text)
	if err != nil {
		return geom.TypeInvalid, fmt.Errorf("prml: %s: %w", t.pos, err)
	}
	return g, nil
}

func (p *parser) parsePath() (*PathExpr, error) {
	root, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	pe := &PathExpr{Root: root.text, Pos: root.pos}
	for p.at(tokDot) {
		p.advance()
		seg, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		pe.Segs = append(pe.Segs, seg.text)
	}
	return pe, nil
}

// Expression grammar (loosest to tightest): or → and → not → comparison →
// additive → multiplicative → unary minus → primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atIdent("or") {
		pos := p.cur().pos
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atIdent("and") {
		pos := p.cur().pos
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atIdent("not") {
		pos := p.cur().pos
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNot, X: x, Pos: pos}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[tokKind]BinOp{
	tokEq: OpEq, tokNe: OpNe, tokLt: OpLt, tokLe: OpLe, tokGt: OpGt, tokGe: OpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().kind]; ok {
		pos := p.cur().pos
		p.advance()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: l, R: r, Pos: pos}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) || p.at(tokMinus) {
		op := OpAdd
		if p.at(tokMinus) {
			op = OpSub
		}
		pos := p.cur().pos
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokStar) || p.at(tokSlash) {
		op := OpMul
		if p.at(tokSlash) {
			op = OpDiv
		}
		pos := p.cur().pos
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.at(tokMinus) {
		pos := p.cur().pos
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNeg, X: x, Pos: pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		return &NumberLit{Value: t.num, Unit: t.unit, Pos: t.pos}, nil
	case tokString:
		p.advance()
		return &StringLit{Value: t.text, Pos: t.pos}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		switch t.text {
		case "true":
			p.advance()
			return &BoolLit{Value: true, Pos: t.pos}, nil
		case "false":
			p.advance()
			return &BoolLit{Value: false, Pos: t.pos}, nil
		}
		// Spatial operator call?
		if op, ok := spatialOpByName[t.text]; ok && p.peek().kind == tokLParen {
			p.advance() // name
			p.advance() // (
			var args []Expr
			if !p.at(tokRParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.at(tokComma) {
						p.advance()
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &CallExpr{Op: op, Args: args, Pos: t.pos}, nil
		}
		return p.parsePath()
	}
	return nil, p.errHere("expected an expression, found %s", p.describeCur())
}

package prml

import (
	"fmt"
	"strings"
	"testing"

	"sdwp/internal/geom"
)

// fakeEnv is a scripted Env for evaluator tests. Distances are planar so
// test geometry stays arithmetic-friendly.
type fakeEnv struct {
	paths   map[string]Value            // rooted path → value
	fields  map[string]map[string]Value // instance key → field → value
	domains map[string][]Instance       // rooted path → Foreach domain
	params  map[string]Value

	setCalls  []string
	selected  []Instance
	schemaOps []string
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{
		paths:   map[string]Value{},
		fields:  map[string]map[string]Value{},
		domains: map[string][]Instance{},
		params:  map[string]Value{},
	}
}

func (f *fakeEnv) ResolvePath(p *PathExpr) (Value, error) {
	if v, ok := f.paths[p.String()]; ok {
		return v, nil
	}
	return Value{}, fmt.Errorf("fake: unknown path %s", p)
}

func (f *fakeEnv) Field(inst Instance, segs []string) (Value, error) {
	m := f.fields[inst.String()]
	if m == nil {
		return Value{}, fmt.Errorf("fake: unknown instance %s", inst)
	}
	if v, ok := m[strings.Join(segs, ".")]; ok {
		return v, nil
	}
	return Value{}, fmt.Errorf("fake: instance %s has no field %v", inst, segs)
}

func (f *fakeEnv) Iterate(p *PathExpr, fn func(Instance) error) error {
	dom, ok := f.domains[p.String()]
	if !ok {
		return fmt.Errorf("fake: no domain %s", p)
	}
	for _, inst := range dom {
		if err := fn(inst); err != nil {
			return err
		}
	}
	return nil
}

func (f *fakeEnv) Param(name string) (Value, bool) {
	v, ok := f.params[name]
	return v, ok
}

func (f *fakeEnv) SetContent(target *PathExpr, v Value) error {
	f.setCalls = append(f.setCalls, fmt.Sprintf("%s=%s", target, v))
	f.paths[target.String()] = v
	return nil
}

func (f *fakeEnv) SelectInstance(v Value) error {
	if v.Kind != KindInstance {
		return fmt.Errorf("fake: SelectInstance wants an instance, got %s", v.Kind)
	}
	f.selected = append(f.selected, v.Inst)
	return nil
}

func (f *fakeEnv) BecomeSpatial(target *PathExpr, g geom.Type) error {
	f.schemaOps = append(f.schemaOps, fmt.Sprintf("BecomeSpatial(%s,%s)", target, g))
	return nil
}

func (f *fakeEnv) AddLayer(name string, g geom.Type) error {
	f.schemaOps = append(f.schemaOps, fmt.Sprintf("AddLayer(%s,%s)", name, g))
	return nil
}

func (f *fakeEnv) DistanceKm(a, b geom.Geometry) float64 { return geom.Distance(a, b) }
func (f *fakeEnv) LengthKm(g geom.Geometry) float64      { return geom.MinLength(g) }

// member builds a dimension-member instance with a geometry field.
func (f *fakeEnv) member(dim, level string, idx int32, g geom.Geometry) Instance {
	inst := Instance{Kind: InstMember, Dimension: dim, Level: level, Index: idx}
	f.fields[inst.String()] = map[string]Value{"geometry": GeomVal(g)}
	return inst
}

func TestExecExample51SchemaRule(t *testing.T) {
	r, err := ParseRule(ruleAddSpatiality)
	if err != nil {
		t.Fatal(err)
	}
	env := newFakeEnv()
	env.paths["SUS.DecisionMaker.dm2role.name"] = StringVal("RegionalSalesManager")
	ev := NewEvaluator(env)
	st, err := ev.Exec(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.schemaOps) != 2 ||
		env.schemaOps[0] != "AddLayer(Airport,POINT)" ||
		env.schemaOps[1] != "BecomeSpatial(MD.Sales.Store.geometry,POINT)" {
		t.Fatalf("schemaOps = %v", env.schemaOps)
	}
	if st.SchemaActions != 2 || st.ActionsRun != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// A different role performs nothing.
	env2 := newFakeEnv()
	env2.paths["SUS.DecisionMaker.dm2role.name"] = StringVal("Accountant")
	st2, err := NewEvaluator(env2).Exec(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(env2.schemaOps) != 0 || st2.ActionsRun != 0 {
		t.Fatalf("wrong role still acted: %v", env2.schemaOps)
	}
}

func TestExecExample52InstanceRule(t *testing.T) {
	r, err := ParseRule(rule5kmStores)
	if err != nil {
		t.Fatal(err)
	}
	env := newFakeEnv()
	// Stores at planar distances 3, 4.9 and 7 from the user at (0,0).
	s0 := env.member("Store", "Store", 0, geom.Pt(3, 0))
	s1 := env.member("Store", "Store", 1, geom.Pt(0, 4.9))
	s2 := env.member("Store", "Store", 2, geom.Pt(7, 0))
	env.domains["GeoMD.Store"] = []Instance{s0, s1, s2}
	env.paths["SUS.DecisionMaker.dm2session.s2location.geometry"] = GeomVal(geom.Pt(0, 0))

	st, err := NewEvaluator(env).Exec(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.selected) != 2 || env.selected[0] != s0 || env.selected[1] != s1 {
		t.Fatalf("selected = %v (s2 at distance 7 must be excluded)", env.selected)
	}
	if st.InstancesSel != 2 || st.LoopIterations != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExecExample53TrackingRuleBody(t *testing.T) {
	r, err := ParseRule(ruleIntAirportCity)
	if err != nil {
		t.Fatal(err)
	}
	env := newFakeEnv()
	env.paths["SUS.DecisionMaker.dm2airportcity.degree"] = NumberVal(3)
	if _, err := NewEvaluator(env).Exec(r); err != nil {
		t.Fatal(err)
	}
	if len(env.setCalls) != 1 || env.setCalls[0] != "SUS.DecisionMaker.dm2airportcity.degree=4" {
		t.Fatalf("setCalls = %v", env.setCalls)
	}
}

func TestExecExample53TrainRule(t *testing.T) {
	r, err := ParseRule(ruleTrainAirportCity)
	if err != nil {
		t.Fatal(err)
	}
	env := newFakeEnv()
	env.params["threshold"] = NumberVal(2)
	env.paths["SUS.DecisionMaker.dm2airportcity.degree"] = NumberVal(3)

	// Train t0 passes through city c0 (at 10,0) and airport a0 (at 40,0):
	// segment length 30 < 50 → select c0. City c1 is on no train.
	t0 := env.member("Train", "", 0, geom.Ln(geom.Pt(0, 0), geom.Pt(100, 0)))
	t0.Kind = InstLayerObject
	t0.Layer = "Train"
	t0.Dimension, t0.Level = "", ""
	env.fields[t0.String()] = map[string]Value{"geometry": GeomVal(geom.Ln(geom.Pt(0, 0), geom.Pt(100, 0)))}
	c0 := env.member("Store", "City", 0, geom.Pt(10, 0))
	c1 := env.member("Store", "City", 1, geom.Pt(10, 55))
	a0 := Instance{Kind: InstLayerObject, Layer: "Airport", Index: 0}
	env.fields[a0.String()] = map[string]Value{"geometry": GeomVal(geom.Pt(40, 0))}

	env.domains["GeoMD.Train"] = []Instance{t0}
	env.domains["GeoMD.Store.City"] = []Instance{c0, c1}
	env.domains["GeoMD.Airport"] = []Instance{a0}

	st, err := NewEvaluator(env).Exec(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.schemaOps) != 1 || env.schemaOps[0] != "AddLayer(Train,LINE)" {
		t.Fatalf("schemaOps = %v", env.schemaOps)
	}
	if len(env.selected) != 1 || env.selected[0] != c0 {
		t.Fatalf("selected = %v, want just the connected city", env.selected)
	}
	if st.LoopIterations != 2 { // 1 train × 2 cities × 1 airport
		t.Fatalf("iterations = %d", st.LoopIterations)
	}

	// Below threshold: nothing happens.
	env.paths["SUS.DecisionMaker.dm2airportcity.degree"] = NumberVal(1)
	env.schemaOps, env.selected = nil, nil
	if _, err := NewEvaluator(env).Exec(r); err != nil {
		t.Fatal(err)
	}
	if len(env.schemaOps) != 0 || len(env.selected) != 0 {
		t.Fatal("below-threshold rule still acted")
	}
}

func TestEvalEventCond(t *testing.T) {
	r, err := ParseRule(ruleIntAirportCity)
	if err != nil {
		t.Fatal(err)
	}
	env := newFakeEnv()
	// The engine binds the selected instance; here the condition references
	// model paths directly, so provide them.
	env.paths["GeoMD.Store.City.geometry"] = GeomVal(geom.Pt(0, 0))
	env.paths["GeoMD.Airport.geometry"] = GeomVal(geom.Pt(0, 10))
	ev := NewEvaluator(env)
	ok, err := ev.EvalEventCond(r.Event.Cond, "", Instance{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("distance 10 < 20 must hold")
	}
	env.paths["GeoMD.Airport.geometry"] = GeomVal(geom.Pt(0, 30))
	ok, err = ev.EvalEventCond(r.Event.Cond, "", Instance{})
	if err != nil || ok {
		t.Fatalf("distance 30 < 20 must fail: %v %v", ok, err)
	}
	// Non-bool conditions are rejected.
	if _, err := ev.EvalEventCond(&NumberLit{Value: 1}, "", Instance{}); err == nil {
		t.Fatal("non-bool event condition accepted")
	}
}

func TestEvalOperators(t *testing.T) {
	env := newFakeEnv()
	ev := NewEvaluator(env)
	cases := map[string]Value{
		"1 + 2":          NumberVal(3),
		"7 - 2 - 1":      NumberVal(4), // left associative
		"2 * 3 + 1":      NumberVal(7),
		"10 / 4":         NumberVal(2.5),
		"-3 + 5":         NumberVal(2),
		"1 < 2":          BoolVal(true),
		"2 <= 2":         BoolVal(true),
		"3 > 4":          BoolVal(false),
		"4 >= 5":         BoolVal(false),
		"1 = 1":          BoolVal(true),
		"1 <> 1":         BoolVal(false),
		"'a' = 'a'":      BoolVal(true),
		"'a' <> 'b'":     BoolVal(true),
		"'a' < 'b'":      BoolVal(true),
		"true and false": BoolVal(false),
		"true or false":  BoolVal(true),
		"not true":       BoolVal(false),
		"not (1 > 2)":    BoolVal(true),
		"true = false":   BoolVal(false),
		"1 = 'a'":        BoolVal(false), // cross-kind equality is false
		"500m + 0.5":     NumberVal(1),   // metres normalize to km
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		got, err := ev.EvalExpr(e)
		if err != nil {
			t.Fatalf("eval %q: %v", src, err)
		}
		if got != want {
			t.Errorf("%q = %s, want %s", src, got, want)
		}
	}
}

func TestEvalSpatialOperators(t *testing.T) {
	env := newFakeEnv()
	env.paths["GeoMD.A.geometry"] = GeomVal(geom.Ln(geom.Pt(0, 0), geom.Pt(10, 0)))
	env.paths["GeoMD.B.geometry"] = GeomVal(geom.Ln(geom.Pt(5, -5), geom.Pt(5, 5)))
	env.paths["GeoMD.P.geometry"] = GeomVal(geom.Pt(5, 0))
	env.paths["GeoMD.Poly.geometry"] = GeomVal(geom.Poly(geom.Pt(-1, -1), geom.Pt(11, -1), geom.Pt(11, 1), geom.Pt(-1, 1)))
	ev := NewEvaluator(env)
	cases := map[string]Value{
		"Intersect(GeoMD.A.geometry, GeoMD.B.geometry)":    BoolVal(true),
		"Disjoint(GeoMD.A.geometry, GeoMD.B.geometry)":     BoolVal(false),
		"Cross(GeoMD.A.geometry, GeoMD.B.geometry)":        BoolVal(true),
		"Inside(GeoMD.P.geometry, GeoMD.A.geometry)":       BoolVal(true),
		"Inside(GeoMD.A.geometry, GeoMD.Poly.geometry)":    BoolVal(true),
		"Equals(GeoMD.A.geometry, GeoMD.A.geometry)":       BoolVal(true),
		"Equals(GeoMD.A.geometry, GeoMD.B.geometry)":       BoolVal(false),
		"Distance(GeoMD.P.geometry, GeoMD.B.geometry) = 0": BoolVal(true),
		"Distance(GeoMD.A.geometry) = 10":                  BoolVal(true), // unary = length
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		got, err := ev.EvalExpr(e)
		if err != nil {
			t.Fatalf("eval %q: %v", src, err)
		}
		if got != want {
			t.Errorf("%q = %s, want %s", src, got, want)
		}
	}
	// Intersection returns a geometry value.
	e, _ := ParseExpr("Intersection(GeoMD.A.geometry, GeoMD.P.geometry)")
	v, err := ev.EvalExpr(e)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != KindGeom || v.Geom.Type() != geom.TypeCollection {
		t.Fatalf("Intersection = %s", v)
	}
}

func TestEvalErrors(t *testing.T) {
	env := newFakeEnv()
	env.paths["SUS.U.s"] = StringVal("x")
	ev := NewEvaluator(env)
	for _, src := range []string{
		"1 + 'a'",
		"1 / 0",
		"not 3",
		"-true",
		"'a' < 1",
		"true and 1",
		"1 or false",
		"unknownIdent",
		"SUS.U.ghost",
		"Distance('a', 'b')",
		"Intersect(SUS.U.s, SUS.U.s)",
	} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := ev.EvalExpr(e); err == nil {
			t.Errorf("%q: expected evaluation error", src)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	env := newFakeEnv()
	ev := NewEvaluator(env)
	// The right operand references an unknown path; short-circuit must skip
	// its evaluation.
	e, _ := ParseExpr("false and SUS.U.ghost")
	if v, err := ev.EvalExpr(e); err != nil || v.Bool {
		t.Fatalf("and short-circuit: %v %v", v, err)
	}
	e, _ = ParseExpr("true or SUS.U.ghost")
	if v, err := ev.EvalExpr(e); err != nil || !v.Bool {
		t.Fatalf("or short-circuit: %v %v", v, err)
	}
}

func TestExecErrorsCarryRuleName(t *testing.T) {
	r, _ := ParseRule(`Rule:broken When SessionStart do
  If (SUS.U.ghost) then
    AddLayer('X', POINT)
  endIf
endWhen`)
	_, err := NewEvaluator(newFakeEnv()).Exec(r)
	if err == nil || !strings.Contains(err.Error(), "rule broken") {
		t.Fatalf("err = %v", err)
	}
}

func TestExecIfConditionMustBeBool(t *testing.T) {
	r, _ := ParseRule(`Rule:r When SessionStart do
  If (1 + 1) then
    AddLayer('X', POINT)
  endIf
endWhen`)
	_, err := NewEvaluator(newFakeEnv()).Exec(r)
	if err == nil || !strings.Contains(err.Error(), "want bool") {
		t.Fatalf("err = %v", err)
	}
}

func TestExecElseBranch(t *testing.T) {
	r, _ := ParseRule(`Rule:r When SessionStart do
  If (false) then
    AddLayer('A', POINT)
  else
    AddLayer('B', LINE)
  endIf
endWhen`)
	env := newFakeEnv()
	if _, err := NewEvaluator(env).Exec(r); err != nil {
		t.Fatal(err)
	}
	if len(env.schemaOps) != 1 || env.schemaOps[0] != "AddLayer(B,LINE)" {
		t.Fatalf("schemaOps = %v", env.schemaOps)
	}
}

func TestEvalInstanceShorthandGeometry(t *testing.T) {
	// Distance(s, ...) works when s is an instance: the evaluator coerces
	// instances to their geometry field.
	env := newFakeEnv()
	s := env.member("Store", "Store", 0, geom.Pt(3, 4))
	env.domains["GeoMD.Store"] = []Instance{s}
	env.paths["SUS.U.loc"] = GeomVal(geom.Pt(0, 0))
	r, _ := ParseRule(`Rule:r When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s, SUS.U.loc) = 5) then
      SelectInstance(s)
    endIf
  endForeach
endWhen`)
	if _, err := NewEvaluator(env).Exec(r); err != nil {
		t.Fatal(err)
	}
	if len(env.selected) != 1 {
		t.Fatalf("selected = %v", env.selected)
	}
}

func TestValueHelpers(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{BoolVal(true), KindBool},
		{NumberVal(1), KindNumber},
		{StringVal("x"), KindString},
		{GeomVal(geom.Pt(0, 0)), KindGeom},
		{InstVal(Instance{Kind: InstFact, Fact: "Sales", Index: 2}), KindInstance},
	} {
		if tc.v.Kind != tc.kind {
			t.Errorf("kind = %v, want %v", tc.v.Kind, tc.kind)
		}
		if tc.v.String() == "" {
			t.Errorf("empty String for %v", tc.kind)
		}
	}
	// FromAny/ToAny round trip.
	for _, x := range []any{true, 3.5, "s", geom.Pt(1, 2), nil} {
		v, err := FromAny(x)
		if err != nil {
			t.Fatal(err)
		}
		back := v.ToAny()
		switch want := x.(type) {
		case geom.Geometry:
			if !geom.Equals(back.(geom.Geometry), want) {
				t.Errorf("geom round trip lost value")
			}
		default:
			if back != x {
				t.Errorf("round trip %v → %v", x, back)
			}
		}
	}
	if _, err := FromAny(struct{}{}); err == nil {
		t.Error("FromAny should reject unknown types")
	}
	if v, _ := FromAny(int32(4)); v.Num != 4 {
		t.Error("int32 conversion")
	}
	if got := (Instance{Kind: InstMember, Dimension: "D", Level: "L", Index: 1}).String(); got != "D.L[1]" {
		t.Errorf("member String = %q", got)
	}
	if got := (Instance{Kind: InstLayerObject, Layer: "A", Index: 0}).String(); got != "layer A[0]" {
		t.Errorf("layer String = %q", got)
	}
}

func BenchmarkEval5kmStores1000(b *testing.B) {
	r, err := ParseRule(rule5kmStores)
	if err != nil {
		b.Fatal(err)
	}
	env := newFakeEnv()
	insts := make([]Instance, 1000)
	for i := range insts {
		insts[i] = env.member("Store", "Store", int32(i), geom.Pt(float64(i%100), float64(i/100)))
	}
	env.domains["GeoMD.Store"] = insts
	env.paths["SUS.DecisionMaker.dm2session.s2location.geometry"] = GeomVal(geom.Pt(0, 0))
	ev := NewEvaluator(env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.selected = env.selected[:0]
		if _, err := ev.Exec(r); err != nil {
			b.Fatal(err)
		}
	}
}

package prml

import (
	"math/rand"
	"strings"
	"testing"
)

// The parser must never panic, whatever bytes arrive: web clients submit
// rule sources directly (POST /api/rules).

func TestParseNeverPanicsOnGarbage(t *testing.T) {
	inputs := []string{
		"", " ", "\n\n\n", "((((((((",
		")))))", "Rule", "Rule:", "Rule:x", "Rule:x When",
		"When do endWhen", "endWhen endWhen endWhen",
		"Rule:x When SessionStart do If If If endWhen",
		"Rule:x When SessionStart do Foreach Foreach endWhen",
		"'unterminated", `"unterminated`,
		"Rule:x When SessionStart do SelectInstance(((((1)))) endWhen",
		"Rule:x When SpatialSelection(,) do endWhen",
		"1 + 2", ".....", ",,,,,", "km km km", "5km5km5km",
		strings.Repeat("If (", 1000),
		strings.Repeat("Rule:x When SessionStart do endWhen\n", 50) + "Rule:",
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
			_, _ = ParseExpr(src)
		}()
	}
}

func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("Rule:xWhenSessionStartdoIfthenendIfForeachin()<>=+-*/.,'\"5km GeoMD.SUS\n\t")
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(200)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		src := string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// TestParseNeverPanicsOnMutatedRules mutates the paper's rules byte-wise:
// deletions, substitutions, truncations.
func TestParseNeverPanicsOnMutatedRules(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := ruleAddSpatiality + rule5kmStores + ruleTrainAirportCity
	for trial := 0; trial < 2000; trial++ {
		b := []byte(base)
		switch rng.Intn(3) {
		case 0: // delete a span
			if len(b) > 10 {
				i := rng.Intn(len(b) - 5)
				b = append(b[:i], b[i+rng.Intn(5):]...)
			}
		case 1: // substitute bytes
			for k := 0; k < 5; k++ {
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			}
		case 2: // truncate
			b = b[:rng.Intn(len(b))]
		}
		src := string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %d: %v\n%s", trial, r, src)
				}
			}()
			if rules, err := Parse(src); err == nil {
				// Whatever parses must also print and re-parse.
				if _, err := Parse(Format(rules...)); err != nil {
					t.Fatalf("mutation %d: printed form fails to re-parse: %v", trial, err)
				}
			}
		}()
	}
}

// Analyzer must be panic-free on arbitrary (parseable) rules too.
func TestAnalyzeNeverPanics(t *testing.T) {
	srcs := []string{
		"Rule:a When SessionStart do SelectInstance(GeoMD.X) endWhen",
		"Rule:b When SpatialSelection(GeoMD.A.b, Distance(GeoMD.A.b) < 1) do SetContent(SUS.U.x, 1) endWhen",
		"Rule:c When SessionEnd do If (not not not true) then AddLayer('x', COLLECTION) endIf endWhen",
	}
	for _, src := range srcs {
		rules, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("analyze panic on %q: %v", src, r)
				}
			}()
			_ = Analyze(rules, AnalyzeOptions{})
		}()
	}
}

package prml

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders rules in canonical PRML concrete syntax. Parsing the output
// yields a structurally identical AST (round-trip property, tested).
func Format(rules ...*Rule) string {
	var b strings.Builder
	for i, r := range rules {
		if i > 0 {
			b.WriteByte('\n')
		}
		formatRule(&b, r)
	}
	return b.String()
}

func formatRule(b *strings.Builder, r *Rule) {
	fmt.Fprintf(b, "Rule:%s When %s do\n", r.Name, formatEvent(r.Event))
	formatStmts(b, r.Body, 1)
	b.WriteString("endWhen\n")
}

func formatEvent(e Event) string {
	if e.Kind == EvSpatialSelection {
		return fmt.Sprintf("SpatialSelection(%s, %s)", e.Target, FormatExpr(e.Cond))
	}
	return e.Kind.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func formatStmts(b *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		formatStmt(b, s, depth)
	}
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch st := s.(type) {
	case *IfStmt:
		fmt.Fprintf(b, "If (%s) then\n", FormatExpr(st.Cond))
		formatStmts(b, st.Then, depth+1)
		if len(st.Else) > 0 {
			indent(b, depth)
			b.WriteString("else\n")
			formatStmts(b, st.Else, depth+1)
		}
		indent(b, depth)
		b.WriteString("endIf\n")
	case *ForeachStmt:
		srcs := make([]string, len(st.Sources))
		for i, s := range st.Sources {
			srcs[i] = s.String()
		}
		fmt.Fprintf(b, "Foreach %s in (%s)\n", strings.Join(st.Vars, ", "), strings.Join(srcs, ", "))
		formatStmts(b, st.Body, depth+1)
		indent(b, depth)
		b.WriteString("endForeach\n")
	case *SetContentStmt:
		fmt.Fprintf(b, "SetContent(%s, %s)\n", st.Target, FormatExpr(st.Value))
	case *SelectInstanceStmt:
		fmt.Fprintf(b, "SelectInstance(%s)\n", FormatExpr(st.Target))
	case *BecomeSpatialStmt:
		fmt.Fprintf(b, "BecomeSpatial(%s, %s)\n", st.Target, st.Geom)
	case *AddLayerStmt:
		fmt.Fprintf(b, "AddLayer('%s', %s)\n", escapeString(st.Layer, '\''), st.Geom)
	}
}

// FormatExpr renders an expression in canonical syntax, parenthesizing
// binary sub-expressions so operator precedence never needs to be
// reconstructed.
func FormatExpr(e Expr) string {
	switch ex := e.(type) {
	case *NumberLit:
		switch ex.Unit {
		case "km":
			return trimFloat(ex.Value) + "km"
		case "m":
			return trimFloat(ex.Value*1000) + "m"
		default:
			return trimFloat(ex.Value)
		}
	case *StringLit:
		return "'" + escapeString(ex.Value, '\'') + "'"
	case *BoolLit:
		if ex.Value {
			return "true"
		}
		return "false"
	case *PathExpr:
		return ex.String()
	case *BinaryExpr:
		return "(" + FormatExpr(ex.L) + " " + ex.Op.String() + " " + FormatExpr(ex.R) + ")"
	case *UnaryExpr:
		if ex.Op == OpNot {
			return "not " + FormatExpr(ex.X)
		}
		return "-" + FormatExpr(ex.X)
	case *CallExpr:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = FormatExpr(a)
		}
		return ex.Op.String() + "(" + strings.Join(args, ", ") + ")"
	}
	return "<?expr>"
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

func escapeString(s string, quote byte) string {
	return strings.ReplaceAll(s, string(quote), string(quote)+string(quote))
}

// Package prml implements the paper's spatial extension of PRML, the
// Personalization Rules Modeling Language: a rule-based Event-Condition-
// Action language originally defined for Web applications and adapted here
// to spatial data warehouses (paper Section 4.2 and Fig. 5).
//
// The package provides the full language pipeline: lexer, recursive-descent
// parser, AST (the executable counterpart of the Fig. 5 metamodel), a
// canonical printer, a static analyzer, and a tree-walking evaluator that
// binds to the warehouse through the Env interface (implemented by package
// core).
//
// The concrete syntax follows the paper's examples:
//
//	Rule:addSpatiality When SessionStart do
//	  If (SUS.DecisionMaker.dm2role.name = 'RegionalSalesManager') then
//	    AddLayer('Airport', POINT)
//	    BecomeSpatial(MD.Sales.Store.geometry, POINT)
//	  endIf
//	endWhen
package prml

import (
	"fmt"
	"strings"

	"sdwp/internal/geom"
)

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// EventKind enumerates the rule trigger events of the metamodel.
type EventKind uint8

const (
	// EvSessionStart fires when the user logs into an analysis session.
	EvSessionStart EventKind = iota + 1
	// EvSessionEnd fires when the analysis session terminates.
	EvSessionEnd
	// EvSpatialSelection fires when the user performs a spatial selection
	// matching the event's target element and spatial expression
	// (Section 4.2.1).
	EvSpatialSelection
)

// String names the event kind with the paper's spelling.
func (k EventKind) String() string {
	switch k {
	case EvSessionStart:
		return "SessionStart"
	case EvSessionEnd:
		return "SessionEnd"
	case EvSpatialSelection:
		return "SpatialSelection"
	default:
		return "?"
	}
}

// Event is a rule trigger. Target and Cond are set only for
// EvSpatialSelection.
type Event struct {
	Kind   EventKind
	Target *PathExpr // the GeoMD element whose instances were selected
	Cond   Expr      // the spatial expression of the selection
	Pos    Pos
}

// Rule is one PRML personalization rule.
type Rule struct {
	Name  string
	Event Event
	Body  []Stmt
	Pos   Pos
}

// Stmt is a statement in a rule body.
type Stmt interface {
	stmtNode()
	// StmtPos returns the statement's source position.
	StmtPos() Pos
}

// IfStmt is "If (cond) then ... [else ...] endIf".
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// ForeachStmt is "Foreach v1, v2 in (src1, src2) ... endForeach". Multiple
// variables iterate the cartesian product of their sources, as in the
// paper's Example 5.3 (Foreach t, c, a in (GeoMD.Train, GeoMD.Store.City,
// GeoMD.Airport)).
type ForeachStmt struct {
	Vars    []string
	Sources []*PathExpr
	Body    []Stmt
	Pos     Pos
}

// SetContentStmt is the acquisition action SetContent(property, value).
type SetContentStmt struct {
	Target *PathExpr
	Value  Expr
	Pos    Pos
}

// SelectInstanceStmt is the instance action SelectInstance(i).
type SelectInstanceStmt struct {
	Target Expr
	Pos    Pos
}

// BecomeSpatialStmt is the schema action BecomeSpatial(element, type).
type BecomeSpatialStmt struct {
	Target *PathExpr
	Geom   geom.Type
	Pos    Pos
}

// AddLayerStmt is the schema action AddLayer('name', type).
type AddLayerStmt struct {
	Layer string
	Geom  geom.Type
	Pos   Pos
}

func (*IfStmt) stmtNode()             {}
func (*ForeachStmt) stmtNode()        {}
func (*SetContentStmt) stmtNode()     {}
func (*SelectInstanceStmt) stmtNode() {}
func (*BecomeSpatialStmt) stmtNode()  {}
func (*AddLayerStmt) stmtNode()       {}

func (s *IfStmt) StmtPos() Pos             { return s.Pos }
func (s *ForeachStmt) StmtPos() Pos        { return s.Pos }
func (s *SetContentStmt) StmtPos() Pos     { return s.Pos }
func (s *SelectInstanceStmt) StmtPos() Pos { return s.Pos }
func (s *BecomeSpatialStmt) StmtPos() Pos  { return s.Pos }
func (s *AddLayerStmt) StmtPos() Pos       { return s.Pos }

// Expr is an expression node.
type Expr interface {
	exprNode()
	// ExprPos returns the expression's source position.
	ExprPos() Pos
}

// NumberLit is a numeric literal, possibly carrying a distance unit. Value
// is stored canonically in the unit system of the Distance operator
// (kilometres): "5km" has Value 5, "500m" has Value 0.5.
type NumberLit struct {
	Value float64
	Unit  string // "", "km" or "m"
	Pos   Pos
}

// StringLit is a quoted string literal.
type StringLit struct {
	Value string
	Pos   Pos
}

// BoolLit is true or false.
type BoolLit struct {
	Value bool
	Pos   Pos
}

// Path roots recognized by the language (Section 4.2.2).
const (
	RootSUS   = "SUS"   // the spatial-aware user model
	RootMD    = "MD"    // the multidimensional model
	RootGeoMD = "GeoMD" // the geographic multidimensional model
)

// PathExpr is a dotted path expression. Root is SUS, MD or GeoMD for model
// paths, or a loop-variable/parameter name otherwise.
type PathExpr struct {
	Root string
	Segs []string
	Pos  Pos
}

// IsModelPath reports whether the path is rooted at one of the three model
// prefixes.
func (p *PathExpr) IsModelPath() bool {
	return p.Root == RootSUS || p.Root == RootMD || p.Root == RootGeoMD
}

// String renders the dotted path.
func (p *PathExpr) String() string {
	if len(p.Segs) == 0 {
		return p.Root
	}
	return p.Root + "." + strings.Join(p.Segs, ".")
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpEq BinOp = iota + 1 // =
	OpNe                  // <>
	OpLt                  // <
	OpLe                  // <=
	OpGt                  // >
	OpGe                  // >=
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
)

// String renders the operator's concrete syntax.
func (o BinOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	default:
		return "?"
	}
}

// BinaryExpr is "L op R".
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
	Pos  Pos
}

// UnOp enumerates unary operators.
type UnOp uint8

const (
	OpNot UnOp = iota + 1
	OpNeg
)

// UnaryExpr is "not X" or "-X".
type UnaryExpr struct {
	Op  UnOp
	X   Expr
	Pos Pos
}

// SpatialOp enumerates the spatial operators the paper adds to PRML
// (Section 4.2.3): the five boolean topological relations, numeric
// Distance, and geometric Intersection.
type SpatialOp uint8

const (
	SpIntersect SpatialOp = iota + 1
	SpDisjoint
	SpCross
	SpInside
	SpEquals
	SpDistance
	SpIntersection
)

// String names the operator with the paper's spelling.
func (o SpatialOp) String() string {
	switch o {
	case SpIntersect:
		return "Intersect"
	case SpDisjoint:
		return "Disjoint"
	case SpCross:
		return "Cross"
	case SpInside:
		return "Inside"
	case SpEquals:
		return "Equals"
	case SpDistance:
		return "Distance"
	case SpIntersection:
		return "Intersection"
	default:
		return "?"
	}
}

// spatialOpByName maps concrete syntax to operators.
var spatialOpByName = map[string]SpatialOp{
	"Intersect":    SpIntersect,
	"Disjoint":     SpDisjoint,
	"Cross":        SpCross,
	"Inside":       SpInside,
	"Equals":       SpEquals,
	"Distance":     SpDistance,
	"Intersection": SpIntersection,
}

// CallExpr is a spatial operator application.
type CallExpr struct {
	Op   SpatialOp
	Args []Expr
	Pos  Pos
}

func (*NumberLit) exprNode()  {}
func (*StringLit) exprNode()  {}
func (*BoolLit) exprNode()    {}
func (*PathExpr) exprNode()   {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}

func (e *NumberLit) ExprPos() Pos  { return e.Pos }
func (e *StringLit) ExprPos() Pos  { return e.Pos }
func (e *BoolLit) ExprPos() Pos    { return e.Pos }
func (e *PathExpr) ExprPos() Pos   { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos  { return e.Pos }
func (e *CallExpr) ExprPos() Pos   { return e.Pos }

// RuleKind classifies rules for the two-phase personalization process of
// Fig. 1: schema rules reshape the model, instance rules select data, and
// tracking rules acquire user knowledge from selection events.
type RuleKind uint8

const (
	// RuleSchema rules contain BecomeSpatial or AddLayer actions.
	RuleSchema RuleKind = iota + 1
	// RuleInstance rules select instances but do not reshape the schema.
	RuleInstance
	// RuleTracking rules are triggered by SpatialSelection events and only
	// acquire knowledge (SetContent).
	RuleTracking
	// RuleOther rules do none of the above (pure acquisition on session
	// events).
	RuleOther
)

// String names the rule kind.
func (k RuleKind) String() string {
	switch k {
	case RuleSchema:
		return "schema"
	case RuleInstance:
		return "instance"
	case RuleTracking:
		return "tracking"
	case RuleOther:
		return "other"
	default:
		return "?"
	}
}

// Classify determines a rule's kind. Rules that both reshape the schema and
// select instances classify as schema rules (they must run in the schema
// phase; their selections apply afterwards), mirroring the paper's process
// where TrainAirportCity adds a layer and then selects cities.
func Classify(r *Rule) RuleKind {
	if r.Event.Kind == EvSpatialSelection {
		return RuleTracking
	}
	var hasSchema, hasSelect bool
	walkStmts(r.Body, func(s Stmt) {
		switch s.(type) {
		case *BecomeSpatialStmt, *AddLayerStmt:
			hasSchema = true
		case *SelectInstanceStmt:
			hasSelect = true
		}
	})
	switch {
	case hasSchema:
		return RuleSchema
	case hasSelect:
		return RuleInstance
	default:
		return RuleOther
	}
}

// walkStmts visits every statement in a body, recursively.
func walkStmts(body []Stmt, fn func(Stmt)) {
	for _, s := range body {
		fn(s)
		switch st := s.(type) {
		case *IfStmt:
			walkStmts(st.Then, fn)
			walkStmts(st.Else, fn)
		case *ForeachStmt:
			walkStmts(st.Body, fn)
		}
	}
}

package prml

import (
	"strings"
	"testing"

	"sdwp/internal/geom"
)

// The paper's three sample rules, verbatim modulo whitespace (Section 5).
const (
	ruleAddSpatiality = `
Rule:addSpatiality When SessionStart do
  If (SUS.DecisionMaker.dm2role.name = 'RegionalSalesManager') then
    AddLayer('Airport', POINT)
    BecomeSpatial(MD.Sales.Store.geometry, POINT)
  endIf
endWhen`

	rule5kmStores = `
Rule:5kmStores When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 5km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen`

	ruleIntAirportCity = `
Rule:IntAirportCity When SpatialSelection(GeoMD.Store.City,
    Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km) do
  SetContent(SUS.DecisionMaker.dm2airportcity.degree,
    SUS.DecisionMaker.dm2airportcity.degree + 1)
endWhen`

	ruleTrainAirportCity = `
Rule:TrainAirportCity When SessionStart do
  If (SUS.DecisionMaker.dm2airportcity.degree > threshold) then
    AddLayer('Train', LINE)
    Foreach t, c, a in (GeoMD.Train, GeoMD.Store.City, GeoMD.Airport)
      If (Distance(Intersection(Intersection(t.geometry, c.geometry), a.geometry)) < 50km) then
        SelectInstance(c)
      endIf
    endForeach
  endIf
endWhen`
)

func TestParseDigitLeadingRuleName(t *testing.T) {
	// The paper names Example 5.2's rule "5kmStores"; the parser accepts
	// digit-leading names after "Rule:".
	r, err := ParseRule(rule5kmStores)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "5kmStores" {
		t.Fatalf("name = %q", r.Name)
	}
}

func TestParsePaperRules(t *testing.T) {
	r1, err := ParseRule(ruleAddSpatiality)
	if err != nil {
		t.Fatalf("addSpatiality: %v", err)
	}
	if r1.Name != "addSpatiality" || r1.Event.Kind != EvSessionStart {
		t.Fatalf("rule header wrong: %+v", r1)
	}
	ifStmt, ok := r1.Body[0].(*IfStmt)
	if !ok {
		t.Fatalf("body[0] = %T", r1.Body[0])
	}
	if len(ifStmt.Then) != 2 {
		t.Fatalf("then = %d stmts", len(ifStmt.Then))
	}
	al, ok := ifStmt.Then[0].(*AddLayerStmt)
	if !ok || al.Layer != "Airport" || al.Geom != geom.TypePoint {
		t.Fatalf("AddLayer = %+v", ifStmt.Then[0])
	}
	bs, ok := ifStmt.Then[1].(*BecomeSpatialStmt)
	if !ok || bs.Geom != geom.TypePoint || bs.Target.String() != "MD.Sales.Store.geometry" {
		t.Fatalf("BecomeSpatial = %+v", ifStmt.Then[1])
	}

	r2, err := ParseRule(rule5kmStores)
	if err != nil {
		t.Fatalf("5kmStores: %v", err)
	}
	fe, ok := r2.Body[0].(*ForeachStmt)
	if !ok || len(fe.Vars) != 1 || fe.Vars[0] != "s" || fe.Sources[0].String() != "GeoMD.Store" {
		t.Fatalf("Foreach = %+v", r2.Body[0])
	}
	inner, ok := fe.Body[0].(*IfStmt)
	if !ok {
		t.Fatalf("foreach body = %T", fe.Body[0])
	}
	cmp, ok := inner.Cond.(*BinaryExpr)
	if !ok || cmp.Op != OpLt {
		t.Fatalf("condition = %+v", inner.Cond)
	}
	lit, ok := cmp.R.(*NumberLit)
	if !ok || lit.Value != 5 || lit.Unit != "km" {
		t.Fatalf("5km literal = %+v", cmp.R)
	}
	call, ok := cmp.L.(*CallExpr)
	if !ok || call.Op != SpDistance || len(call.Args) != 2 {
		t.Fatalf("Distance call = %+v", cmp.L)
	}

	r3, err := ParseRule(ruleIntAirportCity)
	if err != nil {
		t.Fatalf("IntAirportCity: %v", err)
	}
	if r3.Event.Kind != EvSpatialSelection {
		t.Fatalf("event = %v", r3.Event.Kind)
	}
	if r3.Event.Target.String() != "GeoMD.Store.City" {
		t.Fatalf("event target = %s", r3.Event.Target)
	}
	if _, ok := r3.Event.Cond.(*BinaryExpr); !ok {
		t.Fatalf("event cond = %T", r3.Event.Cond)
	}
	sc, ok := r3.Body[0].(*SetContentStmt)
	if !ok || sc.Target.String() != "SUS.DecisionMaker.dm2airportcity.degree" {
		t.Fatalf("SetContent = %+v", r3.Body[0])
	}
	add, ok := sc.Value.(*BinaryExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("degree+1 = %+v", sc.Value)
	}

	r4, err := ParseRule(ruleTrainAirportCity)
	if err != nil {
		t.Fatalf("TrainAirportCity: %v", err)
	}
	outer, ok := r4.Body[0].(*IfStmt)
	if !ok {
		t.Fatalf("body[0] = %T", r4.Body[0])
	}
	fe3, ok := outer.Then[1].(*ForeachStmt)
	if !ok || len(fe3.Vars) != 3 {
		t.Fatalf("3-var foreach = %+v", outer.Then[1])
	}
	if fe3.Vars[0] != "t" || fe3.Sources[2].String() != "GeoMD.Airport" {
		t.Fatalf("foreach vars/sources = %v %v", fe3.Vars, fe3.Sources)
	}
	cond := fe3.Body[0].(*IfStmt).Cond.(*BinaryExpr)
	dist := cond.L.(*CallExpr)
	if dist.Op != SpDistance || len(dist.Args) != 1 {
		t.Fatalf("unary Distance = %+v", dist)
	}
	nested := dist.Args[0].(*CallExpr)
	if nested.Op != SpIntersection {
		t.Fatalf("nested = %+v", nested)
	}
	if inner2 := nested.Args[0].(*CallExpr); inner2.Op != SpIntersection {
		t.Fatalf("inner intersection = %+v", inner2)
	}
}

func TestParseMultipleRules(t *testing.T) {
	rules, err := Parse(ruleAddSpatiality + "\n" + ruleTrainAirportCity)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Name != "addSpatiality" || rules[1].Name != "TrainAirportCity" {
		t.Fatalf("rules = %v", rules)
	}
}

func TestParseUnits(t *testing.T) {
	e, err := ParseExpr("500m")
	if err != nil {
		t.Fatal(err)
	}
	if lit := e.(*NumberLit); lit.Value != 0.5 || lit.Unit != "m" {
		t.Fatalf("500m = %+v", lit)
	}
	e, _ = ParseExpr("2.5km")
	if lit := e.(*NumberLit); lit.Value != 2.5 {
		t.Fatalf("2.5km = %+v", lit)
	}
	e, _ = ParseExpr("42")
	if lit := e.(*NumberLit); lit.Value != 42 || lit.Unit != "" {
		t.Fatalf("42 = %+v", lit)
	}
	if _, err := ParseExpr("5miles"); err == nil {
		t.Error("unknown unit should error")
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 < 10 and not false or true")
	if err != nil {
		t.Fatal(err)
	}
	// Top level must be or.
	or, ok := e.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top = %+v", e)
	}
	and, ok := or.L.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("or.L = %+v", or.L)
	}
	cmp, ok := and.L.(*BinaryExpr)
	if !ok || cmp.Op != OpLt {
		t.Fatalf("and.L = %+v", and.L)
	}
	sum, ok := cmp.L.(*BinaryExpr)
	if !ok || sum.Op != OpAdd {
		t.Fatalf("cmp.L = %+v", cmp.L)
	}
	mul, ok := sum.R.(*BinaryExpr)
	if !ok || mul.Op != OpMul {
		t.Fatalf("sum.R = %+v", sum.R)
	}
}

func TestParseParenthesesAndNegation(t *testing.T) {
	e, err := ParseExpr("-(1 + 2) * 3")
	if err != nil {
		t.Fatal(err)
	}
	mul := e.(*BinaryExpr)
	if mul.Op != OpMul {
		t.Fatalf("top = %+v", e)
	}
	neg := mul.L.(*UnaryExpr)
	if neg.Op != OpNeg {
		t.Fatalf("mul.L = %+v", mul.L)
	}
}

func TestParseStringEscapes(t *testing.T) {
	e, err := ParseExpr("'O''Brien'")
	if err != nil {
		t.Fatal(err)
	}
	if lit := e.(*StringLit); lit.Value != "O'Brien" {
		t.Fatalf("escaped = %q", lit.Value)
	}
	e, _ = ParseExpr(`"double"`)
	if lit := e.(*StringLit); lit.Value != "double" {
		t.Fatalf("double-quoted = %q", lit.Value)
	}
}

func TestParseComments(t *testing.T) {
	src := `
// schema rule for the regional manager
Rule:r When SessionStart do
  AddLayer('X', POINT) // add the layer
endWhen`
	if _, err := ParseRule(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseElse(t *testing.T) {
	src := `
Rule:r When SessionStart do
  If (true) then
    AddLayer('A', POINT)
  else
    AddLayer('B', LINE)
  endIf
endWhen`
	r, err := ParseRule(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := r.Body[0].(*IfStmt)
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Fatalf("else parse: %+v", ifs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"", "no rules"},
		{"Rule addSpatiality When SessionStart do endWhen", "expected ':'"},
		{"Rule:r When Never do endWhen", "unknown event"},
		{"Rule:r When SessionStart do", "expected \"endWhen\""},
		{"Rule:r When SessionStart do Frobnicate(1) endWhen", "unknown statement"},
		{"Rule:r When SessionStart do If (true) AddLayer('A', POINT) endIf endWhen", "expected \"then\""},
		{"Rule:r When SessionStart do Foreach in (GeoMD.Store) endForeach endWhen", "missing loop variable"},
		{"Rule:r When SessionStart do Foreach a, b in (GeoMD.Store) endForeach endWhen", "2 variables but 1 sources"},
		{"Rule:r When SessionStart do AddLayer(Airport, POINT) endWhen", "expected string"},
		{"Rule:r When SessionStart do AddLayer('A', CIRCLE) endWhen", "unknown geometric type"},
		{"Rule:r When SpatialSelection(GeoMD.Store) do endWhen", "expected ','"},
		{"Rule:r When SessionStart do SelectInstance() endWhen", "expected an expression"},
		{"Rule:5 When SessionStart do endWhen", "bare number"},
		{"Rule:r When SessionStart do If (1 +) then endIf endWhen", "expected an expression"},
		{"Rule:r When SessionStart do If ((true) then endIf endWhen", "expected ')'"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("%q: expected error", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%q: error %q missing %q", tc.src, err, tc.frag)
		}
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	_, err := Parse("Rule:r When SessionStart do\n  Frobnicate(1)\nendWhen")
	if err == nil || !strings.Contains(err.Error(), "2:3") {
		t.Fatalf("position missing: %v", err)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"€", "'unterminated", "'multi\nline'"} {
		if _, err := Parse("Rule:r When SessionStart do AddLayer(" + src); err == nil {
			t.Errorf("%q: expected lex error", src)
		}
	}
}

func BenchmarkParseTrainRule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRule(ruleTrainAirportCity); err != nil {
			b.Fatal(err)
		}
	}
}

package prml

import (
	"strings"
	"testing"
)

func analyzeSrc(t *testing.T, src string, params ...string) []Issue {
	t.Helper()
	rules, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pm := map[string]bool{}
	for _, p := range params {
		pm[p] = true
	}
	return Analyze(rules, AnalyzeOptions{Params: pm})
}

func TestAnalyzePaperRulesClean(t *testing.T) {
	src := ruleAddSpatiality + "\n" + rule5kmStores + "\n" +
		ruleIntAirportCity + "\n" + ruleTrainAirportCity
	issues := analyzeSrc(t, src, "threshold")
	if len(issues) != 0 {
		t.Fatalf("paper rules should analyze clean, got %v", issues)
	}
}

func TestAnalyzeUnknownIdentifier(t *testing.T) {
	issues := analyzeSrc(t, ruleTrainAirportCity) // threshold not declared
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, `"threshold"`) {
		t.Fatalf("issues = %v", issues)
	}
	if issues[0].Rule != "TrainAirportCity" {
		t.Errorf("issue rule = %q", issues[0].Rule)
	}
	if !strings.Contains(issues[0].Error(), "TrainAirportCity") {
		t.Errorf("Error() = %q", issues[0].Error())
	}
}

func TestAnalyzeDuplicateRuleNames(t *testing.T) {
	src := `Rule:x When SessionStart do AddLayer('A', POINT) endWhen
Rule:x When SessionStart do AddLayer('B', POINT) endWhen`
	issues := analyzeSrc(t, src)
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "duplicate rule name") {
		t.Fatalf("issues = %v", issues)
	}
}

func TestAnalyzeEventTarget(t *testing.T) {
	src := `Rule:x When SpatialSelection(SUS.U.thing, true) do SetContent(SUS.U.x, 1) endWhen`
	issues := analyzeSrc(t, src)
	found := false
	for _, i := range issues {
		if strings.Contains(i.Msg, "SpatialSelection target must be a GeoMD path") {
			found = true
		}
	}
	if !found {
		t.Fatalf("issues = %v", issues)
	}
}

func TestAnalyzeForeachSources(t *testing.T) {
	src := `Rule:x When SessionStart do
  Foreach s in (SUS.U)
    SelectInstance(s)
  endForeach
endWhen`
	issues := analyzeSrc(t, src)
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "must be an MD or GeoMD path") {
		t.Fatalf("issues = %v", issues)
	}
}

func TestAnalyzeLoopVariableScoping(t *testing.T) {
	// Loop variable visible in body, not outside.
	src := `Rule:x When SessionStart do
  Foreach s in (GeoMD.Store)
    SelectInstance(s)
  endForeach
  SelectInstance(s)
endWhen`
	issues := analyzeSrc(t, src)
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, `"s"`) {
		t.Fatalf("issues = %v", issues)
	}
	// Shadowing a model prefix.
	src2 := `Rule:x When SessionStart do
  Foreach GeoMD in (GeoMD.Store)
    SelectInstance(GeoMD)
  endForeach
endWhen`
	issues2 := analyzeSrc(t, src2)
	if len(issues2) == 0 || !strings.Contains(issues2[0].Msg, "shadows a model prefix") {
		t.Fatalf("issues = %v", issues2)
	}
	// Duplicate loop variable.
	src3 := `Rule:x When SessionStart do
  Foreach a, a in (GeoMD.X, GeoMD.Y)
    SelectInstance(a)
  endForeach
endWhen`
	issues3 := analyzeSrc(t, src3)
	if len(issues3) == 0 || !strings.Contains(issues3[0].Msg, "duplicate loop variable") {
		t.Fatalf("issues = %v", issues3)
	}
}

func TestAnalyzeActionTargets(t *testing.T) {
	// SetContent must target a model path.
	src := `Rule:x When SessionStart do
  Foreach s in (GeoMD.Store)
    SetContent(s.geometry, 1)
  endForeach
endWhen`
	issues := analyzeSrc(t, src)
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "SetContent target") {
		t.Fatalf("issues = %v", issues)
	}
	// BecomeSpatial must target MD/GeoMD with a fact-level path.
	src2 := `Rule:x When SessionStart do BecomeSpatial(SUS.U.geometry, POINT) endWhen`
	issues2 := analyzeSrc(t, src2)
	if len(issues2) != 1 || !strings.Contains(issues2[0].Msg, "BecomeSpatial target") {
		t.Fatalf("issues = %v", issues2)
	}
	src3 := `Rule:x When SessionStart do BecomeSpatial(MD.Sales, POINT) endWhen`
	issues3 := analyzeSrc(t, src3)
	if len(issues3) != 1 || !strings.Contains(issues3[0].Msg, "fact's level") {
		t.Fatalf("issues = %v", issues3)
	}
}

func TestAnalyzeSpatialArity(t *testing.T) {
	src := `Rule:x When SessionStart do
  If (Intersect(GeoMD.A.geometry) = true) then
    AddLayer('L', POINT)
  endIf
  If (Distance(GeoMD.A.geometry, GeoMD.B.geometry, GeoMD.C.geometry) < 1) then
    AddLayer('M', POINT)
  endIf
endWhen`
	issues := analyzeSrc(t, src)
	if len(issues) != 2 {
		t.Fatalf("issues = %v", issues)
	}
	for _, i := range issues {
		if !strings.Contains(i.Msg, "arguments") {
			t.Errorf("unexpected issue %v", i)
		}
	}
}

func TestAnalyzeBareModelRoot(t *testing.T) {
	src := `Rule:x When SessionStart do SetContent(SUS, 1) endWhen`
	issues := analyzeSrc(t, src)
	if len(issues) == 0 || !strings.Contains(issues[0].Msg, "at least one segment") {
		t.Fatalf("issues = %v", issues)
	}
}

func TestAnalyzeEmptyAddLayerName(t *testing.T) {
	src := `Rule:x When SessionStart do AddLayer('', POINT) endWhen`
	issues := analyzeSrc(t, src)
	if len(issues) != 1 || !strings.Contains(issues[0].Msg, "non-empty layer name") {
		t.Fatalf("issues = %v", issues)
	}
}

package prml

import (
	"fmt"
)

// AnalyzeOptions configures static analysis.
type AnalyzeOptions struct {
	// Params names the designer-defined constants available to rules (the
	// paper's Example 5.3 uses "threshold", "a threshold defined by the
	// designer"). Bare identifiers that are neither loop variables nor
	// listed here are reported.
	Params map[string]bool
}

// Issue is one static-analysis finding.
type Issue struct {
	Rule string
	Pos  Pos
	Msg  string
}

// Error renders the issue as "rule@pos: msg".
func (i Issue) Error() string {
	return fmt.Sprintf("prml: rule %s @ %s: %s", i.Rule, i.Pos, i.Msg)
}

// Analyze statically checks a rule set: path roots must be model prefixes,
// loop variables or declared parameters; spatial operators must have the
// right arity; schema actions must target model paths; rule names must be
// unique. It returns all findings (empty slice = clean).
func Analyze(rules []*Rule, opts AnalyzeOptions) []Issue {
	var issues []Issue
	names := map[string]bool{}
	for _, r := range rules {
		a := &analyzer{rule: r, opts: opts}
		if r.Name == "" {
			a.report(r.Pos, "rule has no name")
		} else if names[r.Name] {
			a.report(r.Pos, fmt.Sprintf("duplicate rule name %q", r.Name))
		}
		names[r.Name] = true

		if r.Event.Kind == EvSpatialSelection {
			if r.Event.Target == nil || r.Event.Target.Root != RootGeoMD {
				a.report(r.Event.Pos, "SpatialSelection target must be a GeoMD path")
			}
			a.checkExpr(r.Event.Cond, map[string]bool{})
		}
		a.checkStmts(r.Body, map[string]bool{})
		issues = append(issues, a.issues...)
	}
	return issues
}

type analyzer struct {
	rule   *Rule
	opts   AnalyzeOptions
	issues []Issue
}

func (a *analyzer) report(pos Pos, msg string) {
	a.issues = append(a.issues, Issue{Rule: a.rule.Name, Pos: pos, Msg: msg})
}

// checkStmts validates statements under the given loop-variable scope.
func (a *analyzer) checkStmts(body []Stmt, scope map[string]bool) {
	for _, s := range body {
		switch st := s.(type) {
		case *IfStmt:
			a.checkExpr(st.Cond, scope)
			a.checkStmts(st.Then, scope)
			a.checkStmts(st.Else, scope)
		case *ForeachStmt:
			inner := make(map[string]bool, len(scope)+len(st.Vars))
			for k := range scope {
				inner[k] = true
			}
			for _, src := range st.Sources {
				a.checkPath(src, scope)
				if src.Root != RootGeoMD && src.Root != RootMD {
					a.report(src.Pos, fmt.Sprintf("Foreach source %s must be an MD or GeoMD path", src))
				}
			}
			for _, v := range st.Vars {
				if v == RootSUS || v == RootMD || v == RootGeoMD {
					a.report(st.Pos, fmt.Sprintf("loop variable %q shadows a model prefix", v))
				}
				if inner[v] {
					a.report(st.Pos, fmt.Sprintf("duplicate loop variable %q", v))
				}
				inner[v] = true
			}
			a.checkStmts(st.Body, inner)
		case *SetContentStmt:
			a.checkPath(st.Target, scope)
			if !st.Target.IsModelPath() {
				a.report(st.Pos, "SetContent target must be a SUS, MD or GeoMD path")
			}
			a.checkExpr(st.Value, scope)
		case *SelectInstanceStmt:
			a.checkExpr(st.Target, scope)
		case *BecomeSpatialStmt:
			a.checkPath(st.Target, scope)
			if st.Target.Root != RootMD && st.Target.Root != RootGeoMD {
				a.report(st.Pos, "BecomeSpatial target must be an MD or GeoMD path")
			} else if len(st.Target.Segs) < 2 {
				a.report(st.Pos, "BecomeSpatial target must name a fact's level (e.g. MD.Sales.Store.geometry)")
			}
		case *AddLayerStmt:
			if st.Layer == "" {
				a.report(st.Pos, "AddLayer needs a non-empty layer name")
			}
		}
	}
}

// spatialArity maps operators to their minimum and maximum argument counts.
// Distance is unary (length of the "corresponding segment", Example 5.3) or
// binary (distance between two geometries).
var spatialArity = map[SpatialOp][2]int{
	SpIntersect:    {2, 2},
	SpDisjoint:     {2, 2},
	SpCross:        {2, 2},
	SpInside:       {2, 2},
	SpEquals:       {2, 2},
	SpDistance:     {1, 2},
	SpIntersection: {2, 2},
}

func (a *analyzer) checkExpr(e Expr, scope map[string]bool) {
	switch ex := e.(type) {
	case nil:
		return
	case *PathExpr:
		a.checkPath(ex, scope)
	case *BinaryExpr:
		a.checkExpr(ex.L, scope)
		a.checkExpr(ex.R, scope)
	case *UnaryExpr:
		a.checkExpr(ex.X, scope)
	case *CallExpr:
		ar, ok := spatialArity[ex.Op]
		if !ok {
			a.report(ex.Pos, "unknown spatial operator")
			return
		}
		if len(ex.Args) < ar[0] || len(ex.Args) > ar[1] {
			a.report(ex.Pos, fmt.Sprintf("%s expects %d..%d arguments, got %d",
				ex.Op, ar[0], ar[1], len(ex.Args)))
		}
		for _, arg := range ex.Args {
			a.checkExpr(arg, scope)
		}
	}
}

func (a *analyzer) checkPath(p *PathExpr, scope map[string]bool) {
	if p == nil {
		return
	}
	if p.IsModelPath() {
		if len(p.Segs) == 0 {
			a.report(p.Pos, fmt.Sprintf("path %s needs at least one segment", p.Root))
		}
		return
	}
	if scope[p.Root] {
		return // loop variable
	}
	if a.opts.Params != nil && a.opts.Params[p.Root] && len(p.Segs) == 0 {
		return // designer-defined constant
	}
	a.report(p.Pos, fmt.Sprintf("unknown identifier %q (not a model prefix, loop variable or declared parameter)", p.Root))
}

package prml

import (
	"fmt"

	"sdwp/internal/geom"
)

// Kind enumerates runtime value kinds.
type Kind uint8

const (
	KindNull Kind = iota
	KindBool
	KindNumber
	KindString
	KindGeom
	KindInstance
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindGeom:
		return "geometry"
	case KindInstance:
		return "instance"
	default:
		return "?"
	}
}

// InstanceKind distinguishes what an Instance value refers to.
type InstanceKind uint8

const (
	// InstMember is a member of a dimension level.
	InstMember InstanceKind = iota + 1
	// InstLayerObject is an object of a thematic layer.
	InstLayerObject
	// InstFact is a fact instance.
	InstFact
)

// Instance is a reference to a warehouse instance — what Foreach variables
// bind to and what SelectInstance receives. The Env owns the meaning of the
// reference.
type Instance struct {
	Kind      InstanceKind
	Dimension string // InstMember
	Level     string // InstMember
	Layer     string // InstLayerObject
	Fact      string // InstFact
	Index     int32
}

// String renders the reference for diagnostics.
func (i Instance) String() string {
	switch i.Kind {
	case InstMember:
		return fmt.Sprintf("%s.%s[%d]", i.Dimension, i.Level, i.Index)
	case InstLayerObject:
		return fmt.Sprintf("layer %s[%d]", i.Layer, i.Index)
	case InstFact:
		return fmt.Sprintf("fact %s[%d]", i.Fact, i.Index)
	default:
		return "instance(?)"
	}
}

// Value is a PRML runtime value.
type Value struct {
	Kind Kind
	Bool bool
	Num  float64
	Str  string
	Geom geom.Geometry
	Inst Instance
}

// Null returns the null value.
func Null() Value { return Value{} }

// BoolVal wraps a bool.
func BoolVal(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// NumberVal wraps a number.
func NumberVal(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// StringVal wraps a string.
func StringVal(s string) Value { return Value{Kind: KindString, Str: s} }

// GeomVal wraps a geometry.
func GeomVal(g geom.Geometry) Value { return Value{Kind: KindGeom, Geom: g} }

// InstVal wraps an instance reference.
func InstVal(i Instance) Value { return Value{Kind: KindInstance, Inst: i} }

// FromAny converts a dynamically typed Go value (as stored by the user
// model) into a Value.
func FromAny(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return Null(), nil
	case bool:
		return BoolVal(x), nil
	case float64:
		return NumberVal(x), nil
	case float32:
		return NumberVal(float64(x)), nil
	case int:
		return NumberVal(float64(x)), nil
	case int32:
		return NumberVal(float64(x)), nil
	case int64:
		return NumberVal(float64(x)), nil
	case string:
		return StringVal(x), nil
	case geom.Geometry:
		return GeomVal(x), nil
	case Value:
		return x, nil
	case Instance:
		return InstVal(x), nil
	}
	return Value{}, fmt.Errorf("prml: cannot convert %T to a PRML value", v)
}

// ToAny converts a Value back to a dynamically typed Go value.
func (v Value) ToAny() any {
	switch v.Kind {
	case KindBool:
		return v.Bool
	case KindNumber:
		return v.Num
	case KindString:
		return v.Str
	case KindGeom:
		return v.Geom
	case KindInstance:
		return v.Inst
	default:
		return nil
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindBool:
		return fmt.Sprintf("%v", v.Bool)
	case KindNumber:
		return trimFloat(v.Num)
	case KindString:
		return fmt.Sprintf("%q", v.Str)
	case KindGeom:
		if v.Geom == nil {
			return "geometry(nil)"
		}
		return v.Geom.WKT()
	case KindInstance:
		return v.Inst.String()
	default:
		return "?"
	}
}

// ForeachOptimizer is an optional Env extension: before interpreting a
// Foreach generically, the evaluator offers the whole statement to the
// environment, which may recognize an execution plan (e.g. a radius query
// through a spatial index for the paper's Distance(...) < r selection
// idiom) and run it natively. eval evaluates an expression in the enclosing
// scope (loop variables of outer loops included). The optimizer must be
// semantics-preserving: it reports handled=false whenever unsure, and n (the
// number of instances selected) feeds the evaluator's statistics.
type ForeachOptimizer interface {
	OptimizeForeach(f *ForeachStmt, eval func(Expr) (Value, error)) (handled bool, n int, err error)
}

// Env binds the rule evaluator to the warehouse: path resolution over the
// three conceptual models (SUS, MD, GeoMD), iteration domains for Foreach,
// designer parameters, the four personalization actions, and the distance
// metric (geodetic kilometres in the reference engine).
type Env interface {
	// ResolvePath resolves a model-rooted path to a value.
	ResolvePath(p *PathExpr) (Value, error)
	// Field resolves trailing path segments from a loop-bound instance
	// (e.g. s.geometry, c.name).
	Field(inst Instance, segs []string) (Value, error)
	// Iterate enumerates the instances denoted by a model path for Foreach.
	Iterate(p *PathExpr, fn func(Instance) error) error
	// Param returns a designer-defined constant (e.g. threshold).
	Param(name string) (Value, bool)

	// SetContent performs the acquisition action.
	SetContent(target *PathExpr, v Value) error
	// SelectInstance performs the instance-selection action.
	SelectInstance(v Value) error
	// BecomeSpatial performs the schema promotion action.
	BecomeSpatial(target *PathExpr, g geom.Type) error
	// AddLayer performs the layer-addition action.
	AddLayer(name string, g geom.Type) error

	// DistanceKm returns the distance between two geometries in km.
	DistanceKm(a, b geom.Geometry) float64
	// LengthKm returns the unary Distance of a geometry in km (the paper's
	// Example 5.3 usage; see geom.GeodeticMinLength).
	LengthKm(g geom.Geometry) float64
}

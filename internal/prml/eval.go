package prml

import (
	"fmt"

	"sdwp/internal/geom"
)

// Evaluator executes rules against an Env. It is stateless between calls
// and safe to reuse; per-execution statistics are returned by Exec.
type Evaluator struct {
	env Env
}

// NewEvaluator returns an evaluator bound to env.
func NewEvaluator(env Env) *Evaluator { return &Evaluator{env: env} }

// Stats reports what one rule execution did.
type Stats struct {
	ActionsRun     int // total personalization actions performed
	InstancesSel   int // SelectInstance calls
	SchemaActions  int // BecomeSpatial + AddLayer calls
	ContentUpdates int // SetContent calls
	LoopIterations int // Foreach body executions
}

// Exec runs the rule body (the caller decides whether the event matches).
func (ev *Evaluator) Exec(r *Rule) (Stats, error) {
	var st Stats
	err := ev.execStmts(r.Body, scope{}, &st)
	if err != nil {
		return st, fmt.Errorf("rule %s: %w", r.Name, err)
	}
	return st, nil
}

// EvalEventCond evaluates a SpatialSelection event condition with the event
// target bound as the variable named by bindVar (the engine binds each
// selected instance in turn to decide whether the rule fires).
func (ev *Evaluator) EvalEventCond(cond Expr, bindVar string, inst Instance) (bool, error) {
	sc := scope{}
	if bindVar != "" {
		sc[bindVar] = InstVal(inst)
	}
	v, err := ev.evalExpr(cond, sc)
	if err != nil {
		return false, err
	}
	if v.Kind != KindBool {
		return false, fmt.Errorf("prml: event condition is %s, want bool", v.Kind)
	}
	return v.Bool, nil
}

// EvalExpr evaluates a standalone expression with an empty scope (used by
// the web API for ad-hoc predicates).
func (ev *Evaluator) EvalExpr(e Expr) (Value, error) {
	return ev.evalExpr(e, scope{})
}

// EvalExprWith evaluates an expression with one bound variable.
func (ev *Evaluator) EvalExprWith(e Expr, varName string, val Value) (Value, error) {
	return ev.evalExpr(e, scope{varName: val})
}

// scope maps loop variables to their current values.
type scope map[string]Value

func (s scope) child() scope {
	c := make(scope, len(s)+2)
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (ev *Evaluator) execStmts(body []Stmt, sc scope, st *Stats) error {
	for _, s := range body {
		if err := ev.execStmt(s, sc, st); err != nil {
			return err
		}
	}
	return nil
}

func (ev *Evaluator) execStmt(s Stmt, sc scope, st *Stats) error {
	switch stmt := s.(type) {
	case *IfStmt:
		v, err := ev.evalExpr(stmt.Cond, sc)
		if err != nil {
			return err
		}
		if v.Kind != KindBool {
			return fmt.Errorf("prml: %s: If condition is %s, want bool", stmt.Pos, v.Kind)
		}
		if v.Bool {
			return ev.execStmts(stmt.Then, sc, st)
		}
		return ev.execStmts(stmt.Else, sc, st)

	case *ForeachStmt:
		if opt, ok := ev.env.(ForeachOptimizer); ok {
			handled, n, err := opt.OptimizeForeach(stmt, func(e Expr) (Value, error) {
				return ev.evalExpr(e, sc)
			})
			if err != nil {
				return err
			}
			if handled {
				st.LoopIterations += n
				st.ActionsRun += n
				st.InstancesSel += n
				return nil
			}
		}
		return ev.execForeach(stmt, sc, st, 0)

	case *SetContentStmt:
		v, err := ev.evalExpr(stmt.Value, sc)
		if err != nil {
			return err
		}
		if err := ev.env.SetContent(stmt.Target, v); err != nil {
			return fmt.Errorf("prml: %s: %w", stmt.Pos, err)
		}
		st.ActionsRun++
		st.ContentUpdates++
		return nil

	case *SelectInstanceStmt:
		v, err := ev.evalExpr(stmt.Target, sc)
		if err != nil {
			return err
		}
		if err := ev.env.SelectInstance(v); err != nil {
			return fmt.Errorf("prml: %s: %w", stmt.Pos, err)
		}
		st.ActionsRun++
		st.InstancesSel++
		return nil

	case *BecomeSpatialStmt:
		if err := ev.env.BecomeSpatial(stmt.Target, stmt.Geom); err != nil {
			return fmt.Errorf("prml: %s: %w", stmt.Pos, err)
		}
		st.ActionsRun++
		st.SchemaActions++
		return nil

	case *AddLayerStmt:
		if err := ev.env.AddLayer(stmt.Layer, stmt.Geom); err != nil {
			return fmt.Errorf("prml: %s: %w", stmt.Pos, err)
		}
		st.ActionsRun++
		st.SchemaActions++
		return nil
	}
	return fmt.Errorf("prml: unknown statement %T", s)
}

// execForeach iterates the cartesian product of the statement's sources,
// binding one variable per source (Example 5.3's three-variable loop).
func (ev *Evaluator) execForeach(f *ForeachStmt, sc scope, st *Stats, depth int) error {
	if depth == len(f.Vars) {
		st.LoopIterations++
		return ev.execStmts(f.Body, sc, st)
	}
	return ev.env.Iterate(f.Sources[depth], func(inst Instance) error {
		inner := sc.child()
		inner[f.Vars[depth]] = InstVal(inst)
		return ev.execForeach(f, inner, st, depth+1)
	})
}

func (ev *Evaluator) evalExpr(e Expr, sc scope) (Value, error) {
	switch ex := e.(type) {
	case *NumberLit:
		return NumberVal(ex.Value), nil
	case *StringLit:
		return StringVal(ex.Value), nil
	case *BoolLit:
		return BoolVal(ex.Value), nil
	case *PathExpr:
		return ev.evalPath(ex, sc)
	case *UnaryExpr:
		v, err := ev.evalExpr(ex.X, sc)
		if err != nil {
			return Value{}, err
		}
		switch ex.Op {
		case OpNot:
			if v.Kind != KindBool {
				return Value{}, fmt.Errorf("prml: %s: not applied to %s", ex.Pos, v.Kind)
			}
			return BoolVal(!v.Bool), nil
		case OpNeg:
			if v.Kind != KindNumber {
				return Value{}, fmt.Errorf("prml: %s: unary minus applied to %s", ex.Pos, v.Kind)
			}
			return NumberVal(-v.Num), nil
		}
		return Value{}, fmt.Errorf("prml: %s: unknown unary operator", ex.Pos)
	case *BinaryExpr:
		return ev.evalBinary(ex, sc)
	case *CallExpr:
		return ev.evalCall(ex, sc)
	}
	return Value{}, fmt.Errorf("prml: unknown expression %T", e)
}

func (ev *Evaluator) evalPath(p *PathExpr, sc scope) (Value, error) {
	if p.IsModelPath() {
		return ev.env.ResolvePath(p)
	}
	if v, ok := sc[p.Root]; ok {
		if len(p.Segs) == 0 {
			return v, nil
		}
		if v.Kind != KindInstance {
			return Value{}, fmt.Errorf("prml: %s: cannot navigate %s from %s value",
				p.Pos, p.Segs[0], v.Kind)
		}
		return ev.env.Field(v.Inst, p.Segs)
	}
	if v, ok := ev.env.Param(p.Root); ok && len(p.Segs) == 0 {
		return v, nil
	}
	return Value{}, fmt.Errorf("prml: %s: unknown identifier %q", p.Pos, p.Root)
}

func (ev *Evaluator) evalBinary(b *BinaryExpr, sc scope) (Value, error) {
	// Short-circuit logical operators.
	if b.Op == OpAnd || b.Op == OpOr {
		l, err := ev.evalExpr(b.L, sc)
		if err != nil {
			return Value{}, err
		}
		if l.Kind != KindBool {
			return Value{}, fmt.Errorf("prml: %s: %s applied to %s", b.Pos, b.Op, l.Kind)
		}
		if b.Op == OpAnd && !l.Bool {
			return BoolVal(false), nil
		}
		if b.Op == OpOr && l.Bool {
			return BoolVal(true), nil
		}
		r, err := ev.evalExpr(b.R, sc)
		if err != nil {
			return Value{}, err
		}
		if r.Kind != KindBool {
			return Value{}, fmt.Errorf("prml: %s: %s applied to %s", b.Pos, b.Op, r.Kind)
		}
		return BoolVal(r.Bool), nil
	}

	l, err := ev.evalExpr(b.L, sc)
	if err != nil {
		return Value{}, err
	}
	r, err := ev.evalExpr(b.R, sc)
	if err != nil {
		return Value{}, err
	}

	switch b.Op {
	case OpAdd, OpSub, OpMul, OpDiv:
		if l.Kind != KindNumber || r.Kind != KindNumber {
			return Value{}, fmt.Errorf("prml: %s: arithmetic on %s and %s", b.Pos, l.Kind, r.Kind)
		}
		switch b.Op {
		case OpAdd:
			return NumberVal(l.Num + r.Num), nil
		case OpSub:
			return NumberVal(l.Num - r.Num), nil
		case OpMul:
			return NumberVal(l.Num * r.Num), nil
		case OpDiv:
			if r.Num == 0 {
				return Value{}, fmt.Errorf("prml: %s: division by zero", b.Pos)
			}
			return NumberVal(l.Num / r.Num), nil
		}
	case OpEq, OpNe:
		eq, err := valuesEqual(l, r)
		if err != nil {
			return Value{}, fmt.Errorf("prml: %s: %w", b.Pos, err)
		}
		if b.Op == OpNe {
			eq = !eq
		}
		return BoolVal(eq), nil
	case OpLt, OpLe, OpGt, OpGe:
		var cmp float64
		switch {
		case l.Kind == KindNumber && r.Kind == KindNumber:
			cmp = l.Num - r.Num
		case l.Kind == KindString && r.Kind == KindString:
			switch {
			case l.Str < r.Str:
				cmp = -1
			case l.Str > r.Str:
				cmp = 1
			}
		default:
			return Value{}, fmt.Errorf("prml: %s: cannot order %s and %s", b.Pos, l.Kind, r.Kind)
		}
		switch b.Op {
		case OpLt:
			return BoolVal(cmp < 0), nil
		case OpLe:
			return BoolVal(cmp <= 0), nil
		case OpGt:
			return BoolVal(cmp > 0), nil
		case OpGe:
			return BoolVal(cmp >= 0), nil
		}
	}
	return Value{}, fmt.Errorf("prml: %s: unknown binary operator", b.Pos)
}

func valuesEqual(l, r Value) (bool, error) {
	if l.Kind == KindNull || r.Kind == KindNull {
		return l.Kind == r.Kind, nil
	}
	if l.Kind != r.Kind {
		return false, nil
	}
	switch l.Kind {
	case KindBool:
		return l.Bool == r.Bool, nil
	case KindNumber:
		return l.Num == r.Num, nil
	case KindString:
		return l.Str == r.Str, nil
	case KindGeom:
		return geom.Equals(l.Geom, r.Geom), nil
	case KindInstance:
		return l.Inst == r.Inst, nil
	}
	return false, fmt.Errorf("cannot compare %s values", l.Kind)
}

// toGeometry coerces a value to a geometry: geometry values pass through;
// instance values resolve their "geometry" field via the Env (so rules may
// write Distance(s, ...) as shorthand for Distance(s.geometry, ...)).
func (ev *Evaluator) toGeometry(v Value, pos Pos) (geom.Geometry, error) {
	switch v.Kind {
	case KindGeom:
		return v.Geom, nil
	case KindInstance:
		f, err := ev.env.Field(v.Inst, []string{"geometry"})
		if err != nil {
			return nil, err
		}
		if f.Kind != KindGeom {
			return nil, fmt.Errorf("prml: %s: instance %s has no geometry", pos, v.Inst)
		}
		return f.Geom, nil
	case KindNull:
		return nil, nil
	}
	return nil, fmt.Errorf("prml: %s: expected geometry, got %s", pos, v.Kind)
}

func (ev *Evaluator) evalCall(c *CallExpr, sc scope) (Value, error) {
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		v, err := ev.evalExpr(a, sc)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	ar := spatialArity[c.Op]
	if len(args) < ar[0] || len(args) > ar[1] {
		return Value{}, fmt.Errorf("prml: %s: %s expects %d..%d arguments, got %d",
			c.Pos, c.Op, ar[0], ar[1], len(args))
	}

	// Unary Distance: the length of the "corresponding segment".
	if c.Op == SpDistance && len(args) == 1 {
		g, err := ev.toGeometry(args[0], c.Pos)
		if err != nil {
			return Value{}, err
		}
		return NumberVal(ev.env.LengthKm(g)), nil
	}

	ga, err := ev.toGeometry(args[0], c.Pos)
	if err != nil {
		return Value{}, err
	}
	gb, err := ev.toGeometry(args[1], c.Pos)
	if err != nil {
		return Value{}, err
	}

	switch c.Op {
	case SpDistance:
		return NumberVal(ev.env.DistanceKm(ga, gb)), nil
	case SpIntersect:
		return BoolVal(geom.Intersects(ga, gb)), nil
	case SpDisjoint:
		return BoolVal(geom.Disjoint(ga, gb)), nil
	case SpCross:
		return BoolVal(geom.Crosses(ga, gb)), nil
	case SpInside:
		return BoolVal(geom.Within(ga, gb)), nil
	case SpEquals:
		return BoolVal(geom.Equals(ga, gb)), nil
	case SpIntersection:
		return GeomVal(geom.Intersection(ga, gb)), nil
	}
	return Value{}, fmt.Errorf("prml: %s: unknown spatial operator", c.Pos)
}

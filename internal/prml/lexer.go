package prml

import (
	"fmt"
	"strconv"
	"strings"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber // value normalized to km when a unit suffix is present
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokColon
	tokEq // =
	tokNe // <>
	tokLt
	tokLe
	tokGt
	tokGe
	tokPlus
	tokMinus
	tokStar
	tokSlash
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokColon:
		return "':'"
	case tokEq:
		return "'='"
	case tokNe:
		return "'<>'"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	default:
		return "?"
	}
}

// token is one lexical token.
type token struct {
	kind tokKind
	text string  // identifier or string contents
	num  float64 // numeric value (km-normalized if unit given)
	unit string  // "", "km", "m"
	pos  Pos
}

// lexer scans PRML source. Line comments start with "//" and run to end of
// line.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// errf builds a positioned lexical error.
func (l *lexer) errf(p Pos, format string, args ...any) error {
	return fmt.Errorf("prml: %s: %s", p, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	p := Pos{l.line, l.col}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: p}, nil
	}
	c := l.peekByte()
	switch {
	case isLetter(c):
		start := l.pos
		for l.pos < len(l.src) && (isLetter(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: p}, nil
	case isDigit(c):
		return l.scanNumber(p)
	case c == '\'' || c == '"':
		return l.scanString(p)
	}
	l.advance()
	switch c {
	case '(':
		return token{kind: tokLParen, pos: p}, nil
	case ')':
		return token{kind: tokRParen, pos: p}, nil
	case ',':
		return token{kind: tokComma, pos: p}, nil
	case '.':
		return token{kind: tokDot, pos: p}, nil
	case ':':
		return token{kind: tokColon, pos: p}, nil
	case '=':
		return token{kind: tokEq, pos: p}, nil
	case '+':
		return token{kind: tokPlus, pos: p}, nil
	case '-':
		return token{kind: tokMinus, pos: p}, nil
	case '*':
		return token{kind: tokStar, pos: p}, nil
	case '/':
		return token{kind: tokSlash, pos: p}, nil
	case '<':
		switch l.peekByte() {
		case '>':
			l.advance()
			return token{kind: tokNe, pos: p}, nil
		case '=':
			l.advance()
			return token{kind: tokLe, pos: p}, nil
		}
		return token{kind: tokLt, pos: p}, nil
	case '>':
		if l.peekByte() == '=' {
			l.advance()
			return token{kind: tokGe, pos: p}, nil
		}
		return token{kind: tokGt, pos: p}, nil
	}
	return token{}, l.errf(p, "unexpected character %q", string(c))
}

// scanNumber scans digits, an optional fraction, and an optional distance
// unit suffix (km or m), normalizing the value to kilometres when a unit is
// present.
func (l *lexer) scanNumber(p Pos) (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.peekByte()) {
		l.advance()
	}
	if l.peekByte() == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
	}
	numText := l.src[start:l.pos]
	v, err := strconv.ParseFloat(numText, 64)
	if err != nil {
		return token{}, l.errf(p, "bad number %q", numText)
	}
	// Unit suffix: consume the longest valid unit prefix ("km" or "m") and
	// leave any following letters to the next token — the paper's rule name
	// "5kmStores" must lex as number(5km) + identifier(Stores).
	unit := ""
	if isLetter(l.peekByte()) {
		rest := l.src[l.pos:]
		switch {
		case len(rest) >= 2 && (rest[0] == 'k' || rest[0] == 'K') && (rest[1] == 'm' || rest[1] == 'M'):
			l.advance()
			l.advance()
			unit = "km"
		case rest[0] == 'm' || rest[0] == 'M':
			l.advance()
			unit = "m"
			v /= 1000
		default:
			us := l.pos
			for l.pos < len(l.src) && isLetter(l.peekByte()) {
				l.advance()
			}
			return token{}, l.errf(p, "unknown distance unit %q (want km or m)", l.src[us:l.pos])
		}
	}
	return token{kind: tokNumber, num: v, unit: unit, text: l.src[start:l.pos], pos: p}, nil
}

// scanString scans a quoted string (single or double quotes, no escapes —
// the paper's rule texts never need them; a doubled quote inserts a literal
// quote, SQL-style).
func (l *lexer) scanString(p Pos) (token, error) {
	quote := l.advance()
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.advance()
		if c == quote {
			if l.peekByte() == quote { // doubled quote → literal
				l.advance()
				b.WriteByte(quote)
				continue
			}
			return token{kind: tokString, text: b.String(), pos: p}, nil
		}
		if c == '\n' {
			return token{}, l.errf(p, "unterminated string")
		}
		b.WriteByte(c)
	}
	return token{}, l.errf(p, "unterminated string")
}

// lexAll tokenizes the whole input (used by the parser).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

// Package shard is the horizontal scaling layer under the query
// scheduler: it hash-partitions every fact table of one cube into N
// independent shards and answers batch queries by scatter-gather — the
// compiled plans fan out across the shards (each shard scan materializes
// its own stage-1/2 artifacts — per-predicate filter bitmaps AND-composed
// into set masks over the shard's own fact rows, and roll-up key columns
// — and accumulates per-query partials under its own lock), and the
// per-shard partials gather through the executor's deterministic
// shard-order merge/finalize path, so results are identical to the
// unsharded engine. MergeFinalize also returns every shard scan's pooled
// partial tables to their shard's pool once the gathered results are
// finalized.
//
// Why shards: one fact table per cube is a single ingest lock and a
// single scan unit — the remaining ceiling on fact-table size and write
// throughput. A sharded Table gives every shard its own fact columns,
// bitset and partial-table pools, artifact cache and RWMutex: ingest
// into one shard blocks only that shard's scans for the duration of an
// append, and the scatter's fan-out is bounded
// (Options.MaxInFlightScans) so a wide table cannot oversubscribe small
// hosts.
//
// The parent cube keeps the authoritative copy of every fact (shards are
// scan replicas): views, exports, snapshots and PRML iteration keep
// working on global fact indices, and the Table routes each global index
// to its (shard, local) position for mask splitting and ingest. Member
// and attribute data is shared by reference across shards — it must be
// fully loaded before New, the same "compile after loading" discipline
// the executor already documents.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sdwp/internal/bitset"
	"sdwp/internal/cube"
)

// MaxShards bounds the shard count (routes store the shard id in a byte).
const MaxShards = 256

// Options configures a sharded table.
type Options struct {
	// Shards is the shard count (clamped to [1, MaxShards]). 1 still runs
	// the scatter-gather machinery over a single shard — the degenerate
	// case the equivalence harness pins against the unsharded executor.
	Shards int
	// MaxInFlightScans bounds concurrent shard scans per Table (0 = one
	// per shard: unbounded fan-out).
	MaxInFlightScans int
	// ArtifactCacheBytes sizes the cross-batch artifact cache, split
	// evenly across the shards (0 = no caching).
	ArtifactCacheBytes int64
}

// route maps one fact's global instance indices to shard positions.
type route struct {
	shardOf []uint8
	localOf []int32
}

// factShard is one shard: a derived cube holding this shard's slice of
// every fact table, its own lock, and its own cross-batch artifact cache.
type factShard struct {
	// mu orders ingest (write) against scans (read): a scan holds the read
	// lock across rebind + scan so the shard's columns cannot grow under
	// it, which is what makes concurrent AddFact safe in sharded mode.
	mu    sync.RWMutex
	c     *cube.Cube
	cache *cube.ArtifactCache
}

// splitKey identifies one split view mask: a view state (id, epoch) over
// one fact table.
type splitKey struct {
	viewID uint64
	epoch  uint64
	fact   string
}

// splitCacheCap bounds the split-mask cache (a plain memory bound; every
// entry is one view state's per-shard bitmaps).
const splitCacheCap = 128

// Table is a sharded fact store bound to one parent cube. It implements
// the scheduler's Executor interface, so core.Engine swaps it in for the
// cube transparently when Options.FactShards > 1.
type Table struct {
	parent *cube.Cube
	shards []*factShard
	opts   Options

	// mu guards the parent's fact columns and the routes during ingest;
	// scans only take it briefly to materialize and split view masks.
	mu     sync.RWMutex
	routes map[string]*route

	splitMu    sync.Mutex
	splits     map[splitKey][]*bitset.Set
	splitOrder []splitKey

	sem chan struct{} // bounds concurrent shard scans

	stBatches    atomic.Int64
	stShardScans atomic.Int64
}

// New builds a sharded table over a loaded cube: it derives opts.Shards
// fact-shard cubes (sharing the parent's dimension and layer data) and
// redistributes every existing fact instance by key hash. Facts loaded
// into the parent after New must go through Table.AddFact, which keeps
// parent, routes and shards consistent.
func New(parent *cube.Cube, opts Options) *Table {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Shards > MaxShards {
		opts.Shards = MaxShards
	}
	inFlight := opts.MaxInFlightScans
	if inFlight <= 0 || inFlight > opts.Shards {
		inFlight = opts.Shards
	}
	t := &Table{
		parent: parent,
		opts:   opts,
		routes: map[string]*route{},
		splits: map[splitKey][]*bitset.Set{},
		sem:    make(chan struct{}, inFlight),
	}
	perShardCache := opts.ArtifactCacheBytes / int64(opts.Shards)
	for s := 0; s < opts.Shards; s++ {
		t.shards = append(t.shards, &factShard{
			c:     parent.NewFactShard(),
			cache: cube.NewArtifactCache(perShardCache),
		})
	}
	for _, f := range parent.Schema().MD.Facts {
		fd := parent.FactData(f.Name)
		r := &route{}
		keys := make(map[string]int32, len(f.Dimensions))
		measures := make(map[string]float64, len(f.Measures))
		for i := int32(0); int(i) < fd.Len(); i++ {
			for _, dn := range f.Dimensions {
				keys[dn], _ = fd.DimKey(dn, i)
			}
			for _, m := range f.Measures {
				measures[m.Name], _ = fd.Measure(m.Name, i)
			}
			s := t.shardFor(f.Dimensions, keys)
			sh := t.shards[s]
			r.shardOf = append(r.shardOf, uint8(s))
			r.localOf = append(r.localOf, int32(sh.c.FactData(f.Name).Len()))
			if err := sh.c.AddFact(f.Name, keys, measures); err != nil {
				// The parent accepted this instance, so the shard (sharing
				// the parent's dimensions) must too.
				panic(fmt.Sprintf("shard: redistributing fact %q: %v", f.Name, err))
			}
		}
		t.routes[f.Name] = r
	}
	return t
}

// shardFor hashes a fact instance's dimension keys (FNV-1a over the
// fact's declared dimension order) to its owning shard. The assignment
// depends only on the keys, so identical load orders shard identically
// run to run.
func (t *Table) shardFor(dims []string, keys map[string]int32) int {
	h := uint32(2166136261)
	for _, dn := range dims {
		k := uint32(keys[dn])
		for shift := 0; shift < 32; shift += 8 {
			h ^= (k >> shift) & 0xff
			h *= 16777619
		}
	}
	return int(h % uint32(len(t.shards)))
}

// Shards returns the shard count.
func (t *Table) Shards() int { return len(t.shards) }

// Parent returns the parent cube (the authoritative fact store).
func (t *Table) Parent() *cube.Cube { return t.parent }

// AddFact appends a fact instance: to the parent (which assigns the
// global index and keeps views, exports and snapshots whole), to the
// routing table, and to the key-hashed shard. Only the owning shard's
// scans wait on the append; scatter-gather scans over other shards
// proceed concurrently.
func (t *Table) AddFact(fact string, keys map[string]int32, measures map[string]float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.parent.AddFact(fact, keys, measures); err != nil {
		return err
	}
	r := t.routes[fact]
	if r == nil {
		r = &route{}
		t.routes[fact] = r
	}
	s := t.shardFor(t.parent.Schema().MD.Fact(fact).Dimensions, keys)
	sh := t.shards[s]
	sh.mu.Lock()
	local := int32(sh.c.FactData(fact).Len())
	err := sh.c.AddFact(fact, keys, measures)
	sh.mu.Unlock()
	if err != nil {
		return fmt.Errorf("shard: shard %d rejected fact the parent accepted: %w", s, err)
	}
	r.shardOf = append(r.shardOf, uint8(s))
	r.localOf = append(r.localOf, local)
	return nil
}

// FactCounts returns every shard's total fact count (summed across fact
// tables) — the per-shard balance GET /api/stats reports.
func (t *Table) FactCounts() []int {
	out := make([]int, len(t.shards))
	t.mu.RLock()
	defer t.mu.RUnlock()
	for s, sh := range t.shards {
		for _, f := range t.parent.Schema().MD.Facts {
			out[s] += sh.c.FactData(f.Name).Len()
		}
	}
	return out
}

// Stats is a point-in-time snapshot of the table's counters.
type Stats struct {
	// Shards is the shard count; FactCounts the per-shard fact totals.
	Shards     int   `json:"shards"`
	FactCounts []int `json:"factCounts"`
	// Batches counts scatter-gather executions; ShardScans the per-shard
	// scans they fanned out to (ShardScans/Batches is the fan-out ratio).
	Batches    int64 `json:"batches"`
	ShardScans int64 `json:"shardScans"`
	// ArtifactCache aggregates the per-shard cross-batch caches.
	ArtifactCache cube.ArtifactCacheStats `json:"artifactCache"`
	// Packed aggregates the per-shard compressed-column storage stats
	// (bytes sum across shards; per-column bit widths max-merge).
	Packed cube.PackedStats `json:"packed"`
}

// Stats snapshots the table's counters.
func (t *Table) Stats() Stats {
	st := Stats{
		Shards:     len(t.shards),
		FactCounts: t.FactCounts(),
		Batches:    t.stBatches.Load(),
		ShardScans: t.stShardScans.Load(),
		Packed:     t.PackedStats(),
	}
	for _, sh := range t.shards {
		st.ArtifactCache.Add(sh.cache.Stats())
	}
	return st
}

// ResizeArtifactCaches retunes the table-wide artifact-cache byte budget
// at runtime — the adaptive tuner's knob — splitting it evenly across
// shards exactly as New did. A no-op when the caches are disabled or the
// budget is non-positive.
func (t *Table) ResizeArtifactCaches(total int64) {
	if total <= 0 || len(t.shards) == 0 {
		return
	}
	perShard := total / int64(len(t.shards))
	for _, sh := range t.shards {
		sh.cache.Resize(perShard) // nil-safe: disabled caches stay disabled
	}
}

// PackedStats aggregates the shards' compressed-column storage stats,
// taking each shard's read lock so ingest cannot grow columns mid-sum.
func (t *Table) PackedStats() cube.PackedStats {
	var ps cube.PackedStats
	for _, sh := range t.shards {
		sh.mu.RLock()
		ps.Add(sh.c.PackedStats())
		sh.mu.RUnlock()
	}
	return ps
}

// MaterializeView builds a view's combined visibility masks over the
// given fact tables under the ingest read lock (mask building walks the
// parent's fact key columns, which AddFact grows under the write lock).
func (t *Table) MaterializeView(v *cube.View, facts []string) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, f := range facts {
		v.Materialize(f)
	}
}

// Compile resolves and validates a query against the parent cube. The
// scheduler compiles once at admission; execution rebinds the plan onto
// each shard's columns (cube.CompiledQuery.Rebind). The ingest read lock
// keeps the parent's columns stable while the plan binds them (the
// bindings are then swapped per shard, but resolution reads them).
func (t *Table) Compile(q cube.Query) (*cube.CompiledQuery, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.parent.Compile(q)
}

// ExecuteParallel answers one query by scatter-gather (the single-query
// degenerate batch). workers sizes each shard scan's worker pool.
func (t *Table) ExecuteParallel(q cube.Query, v *cube.View, workers int) (*cube.Result, error) {
	res, _, err := t.ExecuteBatchOpt([]cube.Query{q}, []*cube.View{v}, cube.BatchOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// ExecuteBatch answers a batch of queries with one scatter-gather per
// fact table, mirroring cube.ExecuteBatch (sharing on).
func (t *Table) ExecuteBatch(qs []cube.Query, vs []*cube.View, workers int) ([]*cube.Result, error) {
	res, _, err := t.ExecuteBatchOpt(qs, vs, cube.BatchOptions{Workers: workers})
	return res, err
}

// ExecuteBatchOpt is ExecuteBatch with explicit batch options.
func (t *Table) ExecuteBatchOpt(qs []cube.Query, vs []*cube.View, opts cube.BatchOptions) ([]*cube.Result, cube.SharingStats, error) {
	if vs != nil && len(vs) != len(qs) {
		return nil, cube.SharingStats{}, fmt.Errorf("shard: batch has %d queries but %d views", len(qs), len(vs))
	}
	cqs := make([]*cube.CompiledQuery, len(qs))
	for i, q := range qs {
		cq, err := t.Compile(q)
		if err != nil {
			return nil, cube.SharingStats{}, fmt.Errorf("shard: batch query %d: %w", i, err)
		}
		cqs[i] = cq
	}
	return t.ExecuteBatchCompiledOpt(cqs, vs, opts)
}

// ExecuteBatchCompiledOpt is the scatter-gather executor: split every
// query's view mask by shard, fan the batch out (each shard rebinds the
// plans onto its columns under its read lock and runs the shared staged
// scan with its own artifact cache), and gather the per-shard partials
// through the deterministic merge/finalize path. Results are identical to
// the unsharded executor's; SharingStats sums the per-shard scans (so
// instance and distinct counts scale with the fan-out, but their ratios
// still measure per-scan sharing), with Queries reported once.
func (t *Table) ExecuteBatchCompiledOpt(cqs []*cube.CompiledQuery, vs []*cube.View, opts cube.BatchOptions) ([]*cube.Result, cube.SharingStats, error) {
	var stats cube.SharingStats
	if vs != nil && len(vs) != len(cqs) {
		return nil, stats, fmt.Errorf("shard: batch has %d queries but %d views", len(cqs), len(vs))
	}
	if len(cqs) == 0 {
		return []*cube.Result{}, stats, nil
	}

	// Split personalized view masks per shard under the ingest read lock
	// (routes and the parent's columns are stable there).
	masks := make([][]*bitset.Set, len(cqs)) // [query][shard], nil = unrestricted
	t.mu.RLock()
	for i, cq := range cqs {
		if cq == nil {
			t.mu.RUnlock()
			return nil, stats, fmt.Errorf("shard: batch query %d is nil", i)
		}
		if vs != nil && vs[i] != nil {
			ms, err := t.splitLocked(cq.Query().Fact, vs[i])
			if err != nil {
				t.mu.RUnlock()
				return nil, stats, err
			}
			masks[i] = ms
		}
	}
	t.mu.RUnlock()

	t.stBatches.Add(1)
	n := len(t.shards)
	shardParts := make([][]*cube.BatchPartial, n)
	shardStats := make([]cube.SharingStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := range t.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			t.sem <- struct{}{}
			defer func() { <-t.sem }()
			sh := t.shards[s]
			sh.mu.RLock()
			defer sh.mu.RUnlock()
			rebound := make([]*cube.CompiledQuery, len(cqs))
			for i, cq := range cqs {
				rc, err := cq.Rebind(sh.c)
				if err != nil {
					errs[s] = fmt.Errorf("shard %d: query %d: %w", s, i, err)
					return
				}
				rebound[i] = rc
			}
			smasks := make([]*bitset.Set, len(cqs))
			for i := range cqs {
				if masks[i] != nil {
					smasks[i] = masks[i][s]
				}
			}
			o := opts
			o.Artifacts = sh.cache
			// Label this shard's stage timings in the batch's scan trace
			// (opts.Trace, when set, is shared across the fan-out).
			o.TraceShard = s
			parts, st, err := sh.c.ExecuteBatchCompiledPartials(rebound, smasks, o)
			if err != nil {
				errs[s] = fmt.Errorf("shard %d: %w", s, err)
				return
			}
			shardParts[s] = parts
			shardStats[s] = st
			t.stShardScans.Add(1)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	var t0 time.Time
	if opts.Trace != nil {
		t0 = time.Now()
	}
	results, err := cube.MergeFinalize(shardParts)
	if opts.Trace != nil {
		opts.Trace.AddGather(time.Since(t0))
	}
	if err != nil {
		return nil, stats, err
	}
	for _, st := range shardStats {
		stats.Add(st)
	}
	stats.Queries = len(cqs)
	return results, stats, nil
}

// splitLocked returns the per-shard visibility masks of one view over one
// fact table: the view's materialized global mask scattered through the
// routing table (nil when the view leaves the fact unrestricted). Splits
// are cached by (view id, epoch, fact) — per-shard bitmaps are exactly
// the "selection epochs scale across shards" exchange unit: a selection
// bumps the epoch and the next query re-splits once, not once per shard
// scan. Callers hold t.mu (read).
func (t *Table) splitLocked(fact string, v *cube.View) ([]*bitset.Set, error) {
	r := t.routes[fact]
	if r == nil {
		return nil, fmt.Errorf("shard: unknown fact %q", fact)
	}
	key := splitKey{viewID: v.ID(), epoch: v.Epoch(), fact: fact}
	t.splitMu.Lock()
	if ms, ok := t.splits[key]; ok {
		t.splitMu.Unlock()
		return ms, nil
	}
	t.splitMu.Unlock()

	m := v.Materialize(fact)
	if m == nil {
		return nil, nil
	}
	out := make([]*bitset.Set, len(t.shards))
	for s, sh := range t.shards {
		out[s] = bitset.New(sh.c.FactData(fact).Len())
	}
	m.ForEach(func(g int) bool {
		if g >= len(r.shardOf) {
			// A fact loaded into the parent without going through
			// Table.AddFact has no route; it is invisible to shard scans
			// (ingest must go through the Table once sharded).
			return true
		}
		out[r.shardOf[g]].Set(int(r.localOf[g]))
		return true
	})
	t.splitMu.Lock()
	if _, ok := t.splits[key]; !ok {
		if len(t.splitOrder) >= splitCacheCap {
			oldest := t.splitOrder[0]
			t.splitOrder = t.splitOrder[1:]
			delete(t.splits, oldest)
		}
		t.splits[key] = out
		t.splitOrder = append(t.splitOrder, key)
	}
	t.splitMu.Unlock()
	return out, nil
}

package shard_test

// Equivalence and race harness for the sharded executor: for generated
// warehouses, randomized queries and randomized personalized views, the
// scatter-gather Table — across shard counts {1, 2, 4, 7}, worker counts,
// and cross-query subexpression sharing on/off — must return Results
// identical to the serial unsharded oracle, before and after routed
// ingest. SUM/AVG draw over the integer-valued UnitSales measure so
// per-group sums are exact in float64 and byte-for-byte equality holds
// regardless of merge order (the same convention as the executor harness
// in internal/cube).

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"sdwp/internal/cube"
	"sdwp/internal/datagen"
	"sdwp/internal/obs"
	"sdwp/internal/shard"
)

func testDataset(t testing.TB, seed int64) (*datagen.Dataset, datagen.Config) {
	t.Helper()
	cfg := datagen.Config{
		Seed: seed, States: 5, Cities: 15, Stores: 80, Customers: 60,
		Products: 30, Days: 30, Sales: 4000,
		AirportEvery: 5, TrainLines: 4, Hospitals: 5, Highways: 2,
	}
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds, cfg
}

var equivLevels = map[string][]string{
	"Store":    {"Store", "City", "State", "Country"},
	"Customer": {"Customer", "Segment"},
	"Product":  {"Product", "Family"},
	"Time":     {"Day", "Month", "Year"},
}

var equivDims = []string{"Store", "Customer", "Product", "Time"}

func randomQuery(rng *rand.Rand) cube.Query {
	q := cube.Query{Fact: "Sales"}
	dims := append([]string(nil), equivDims...)
	rng.Shuffle(len(dims), func(i, j int) { dims[i], dims[j] = dims[j], dims[i] })
	for _, d := range dims[:rng.Intn(4)] {
		levels := equivLevels[d]
		q.GroupBy = append(q.GroupBy, cube.LevelRef{Dimension: d, Level: levels[rng.Intn(len(levels))]})
	}
	for n := 1 + rng.Intn(3); len(q.Aggregates) < n; {
		switch rng.Intn(5) {
		case 0:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Agg: cube.AggCount})
		case 1:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: "UnitSales", Agg: cube.AggSum})
		case 2:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: "UnitSales", Agg: cube.AggAvg})
		case 3:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: "StoreCost", Agg: cube.AggMin})
		case 4:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: "StoreSales", Agg: cube.AggMax})
		}
	}
	// Filter values come from small pools so predicates recur across the
	// batch's queries: overlapping-but-unequal filter sets are exactly
	// what the per-predicate composition paths (full, partial, residual)
	// need to be exercised against the serial oracle.
	numericOps := []cube.FilterOp{cube.OpEq, cube.OpNe, cube.OpLt, cube.OpLe, cube.OpGt, cube.OpGe}
	popPool := []float64{100000, 500000, 1500000}
	agePool := []float64{30, 45, 60}
	for i := rng.Intn(3); i > 0; i-- {
		switch rng.Intn(2) {
		case 0:
			q.Filters = append(q.Filters, cube.AttrFilter{
				LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
				Attr:     "population",
				Op:       numericOps[rng.Intn(len(numericOps))],
				Value:    popPool[rng.Intn(len(popPool))],
			})
		case 1:
			q.Filters = append(q.Filters, cube.AttrFilter{
				LevelRef: cube.LevelRef{Dimension: "Customer", Level: "Customer"},
				Attr:     "age",
				Op:       numericOps[rng.Intn(len(numericOps))],
				Value:    agePool[rng.Intn(len(agePool))],
			})
		}
	}
	if len(q.Aggregates) > 0 && rng.Intn(2) == 0 {
		q.OrderBy = &cube.OrderBy{Agg: rng.Intn(len(q.Aggregates)), Desc: rng.Intn(2) == 0}
	}
	if rng.Intn(2) == 0 {
		q.Limit = 1 + rng.Intn(10)
	}
	return q
}

func randomView(rng *rand.Rand, c *cube.Cube, cfg datagen.Config) *cube.View {
	if rng.Intn(3) == 0 {
		return nil
	}
	v := cube.NewView(c)
	pick := func(dim, level string, max, n int) {
		for i := 0; i < n; i++ {
			if err := v.SelectMember(dim, level, int32(rng.Intn(max))); err != nil {
				panic(err)
			}
		}
	}
	switch rng.Intn(4) {
	case 0:
		pick("Store", "City", cfg.Cities, 2+rng.Intn(8))
	case 1:
		pick("Store", "Store", cfg.Stores, 5+rng.Intn(20))
	case 2:
		pick("Product", "Family", 5, 1+rng.Intn(3))
	case 3:
		pick("Store", "City", cfg.Cities, 2+rng.Intn(8))
		pick("Customer", "Segment", 3, 1+rng.Intn(2))
	}
	if rng.Intn(4) == 0 {
		for i := 0; i < 50; i++ {
			if err := v.SelectFact("Sales", int32(rng.Intn(cfg.Sales))); err != nil {
				panic(err)
			}
		}
	}
	return v
}

func diffResults(t *testing.T, label string, got, want *cube.Result) {
	t.Helper()
	// Cost attribution varies with execution mode (sharding splits artifact
	// charges differently than a single-node scan); the equivalence law
	// covers the logical answer, not the cost vector.
	g, w := *got, *want
	g.Cost, w.Cost = obs.QueryCost{}, obs.QueryCost{}
	if reflect.DeepEqual(&g, &w) {
		return
	}
	t.Errorf("%s: results differ", label)
	t.Logf("want: cols=%v/%v scanned=%d matched=%d rows=%d",
		want.GroupCols, want.AggCols, want.ScannedFacts, want.MatchedFacts, len(want.Rows))
	t.Logf("got:  cols=%v/%v scanned=%d matched=%d rows=%d",
		got.GroupCols, got.AggCols, got.ScannedFacts, got.MatchedFacts, len(got.Rows))
	for i := 0; i < len(want.Rows) && i < len(got.Rows); i++ {
		if !reflect.DeepEqual(want.Rows[i], got.Rows[i]) {
			t.Logf("first differing row %d: want %v, got %v", i, want.Rows[i], got.Rows[i])
			break
		}
	}
}

// randomFact builds a valid Sales instance with an integer-valued
// UnitSales (so SUM stays exact under any merge order).
func randomFact(rng *rand.Rand, cfg datagen.Config) (map[string]int32, map[string]float64) {
	keys := map[string]int32{
		"Store":    int32(rng.Intn(cfg.Stores)),
		"Customer": int32(rng.Intn(cfg.Customers)),
		"Product":  int32(rng.Intn(cfg.Products)),
		"Time":     int32(rng.Intn(cfg.Days)),
	}
	measures := map[string]float64{
		"UnitSales":  float64(1 + rng.Intn(9)),
		"StoreCost":  float64(rng.Intn(4000)) / 4,
		"StoreSales": float64(rng.Intn(8000)) / 4,
	}
	return keys, measures
}

// TestShardedEquivalenceRandomized is the extended equivalence harness of
// the sharded executor: shard counts × workers × sharing modes × random
// views must match the serial unsharded oracle exactly — including after
// a round of routed ingest re-hashes new facts across the shards.
func TestShardedEquivalenceRandomized(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ds, cfg := testDataset(t, int64(100+shards))
			rng := rand.New(rand.NewSource(int64(shards) * 17))
			table := shard.New(ds.Cube, shard.Options{Shards: shards, ArtifactCacheBytes: 8 << 20})
			if got := table.Shards(); got != shards {
				t.Fatalf("Shards() = %d, want %d", got, shards)
			}

			const cases = 16
			check := func(phase string) {
				qs := make([]cube.Query, cases)
				vs := make([]*cube.View, cases)
				serial := make([]*cube.Result, cases)
				for i := range qs {
					qs[i] = randomQuery(rng)
					vs[i] = randomView(rng, ds.Cube, cfg)
				}
				// The oracle is the serial unpacked scalar path; the
				// scatter-gather sweep below then runs with the packed
				// kernels both on and off (the parent's setting fans out
				// to the shard cubes).
				prevPacked := ds.Cube.PackedColumns()
				ds.Cube.SetPackedColumns(false)
				for i := range qs {
					var err error
					serial[i], err = ds.Cube.Execute(qs[i], vs[i])
					if err != nil {
						t.Fatalf("%s case %d: serial: %v", phase, i, err)
					}
				}
				ds.Cube.SetPackedColumns(prevPacked)
				// Sharing modes: fused, whole-set artifacts, and
				// per-predicate bitmaps with AND-composition (the default)
				// — per-shard composition must stay byte-identical too.
				modes := []struct {
					name string
					opts cube.BatchOptions
				}{
					{"fused", cube.BatchOptions{DisableSharing: true}},
					{"per-set", cube.BatchOptions{DisablePredicateSharing: true}},
					{"per-predicate", cube.BatchOptions{}},
				}
				for _, packed := range []bool{true, false} {
					ds.Cube.SetPackedColumns(packed)
					for _, w := range []int{1, 3} {
						for _, mode := range modes {
							opts := mode.opts
							opts.Workers = w
							batch, stats, err := table.ExecuteBatchOpt(qs, vs, opts)
							if err != nil {
								t.Fatalf("%s workers %d mode %s packed=%v: %v", phase, w, mode.name, packed, err)
							}
							if stats.Queries != cases {
								t.Errorf("%s: stats.Queries = %d, want %d", phase, stats.Queries, cases)
							}
							for i := range qs {
								diffResults(t, fmt.Sprintf("%s case %d shards %d workers %d mode %s packed=%v",
									phase, i, shards, w, mode.name, packed), batch[i], serial[i])
							}
						}
					}
				}
				ds.Cube.SetPackedColumns(prevPacked)
				// Single-query scatter-gather path.
				for i := 0; i < 4; i++ {
					got, err := table.ExecuteParallel(qs[i], vs[i], 2)
					if err != nil {
						t.Fatalf("%s single %d: %v", phase, i, err)
					}
					diffResults(t, fmt.Sprintf("%s single %d", phase, i), got, serial[i])
				}
			}

			check("initial")

			// Routed ingest: new facts hash across the shards and the parent
			// stays authoritative, so the oracle sees them too.
			for i := 0; i < 300; i++ {
				keys, measures := randomFact(rng, cfg)
				if err := table.AddFact("Sales", keys, measures); err != nil {
					t.Fatalf("AddFact %d: %v", i, err)
				}
			}
			if got := ds.Cube.FactData("Sales").Len(); got != cfg.Sales+300 {
				t.Fatalf("parent has %d facts, want %d", got, cfg.Sales+300)
			}
			counts := table.FactCounts()
			total := 0
			for _, c := range counts {
				total += c
			}
			if total != cfg.Sales+300 {
				t.Fatalf("shard fact counts sum to %d, want %d (%v)", total, cfg.Sales+300, counts)
			}

			check("after-ingest")

			st := table.Stats()
			if st.Shards != shards || st.Batches == 0 || st.ShardScans < st.Batches {
				t.Errorf("implausible shard stats: %+v", st)
			}
		})
	}
}

// TestShardedArtifactCacheAcrossBatches checks the cross-batch artifact
// cache end to end: a repeated sharing-heavy batch must hit the cache on
// its second run, and ingest must invalidate (table-version bump → stale
// drop → re-materialize) without changing any result.
func TestShardedArtifactCacheAcrossBatches(t *testing.T) {
	ds, cfg := testDataset(t, 7)
	rng := rand.New(rand.NewSource(7))
	table := shard.New(ds.Cube, shard.Options{Shards: 3, ArtifactCacheBytes: 16 << 20})

	filters := []cube.AttrFilter{{
		LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
		Attr:     "population", Op: cube.OpGt, Value: float64(100000),
	}}
	// SUM stays on the integer-valued UnitSales (exact under any merge
	// order); the float measures use order-insensitive MIN/MAX.
	var qs []cube.Query
	for _, level := range []string{"Store", "City", "State"} {
		for _, agg := range []cube.MeasureAgg{
			{Measure: "UnitSales", Agg: cube.AggSum},
			{Measure: "StoreSales", Agg: cube.AggMax},
		} {
			qs = append(qs, cube.Query{
				Fact:       "Sales",
				GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: level}},
				Aggregates: []cube.MeasureAgg{agg},
				Filters:    filters,
			})
		}
	}
	run := func(label string) []*cube.Result {
		res, _, err := table.ExecuteBatchOpt(qs, nil, cube.BatchOptions{Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return res
	}
	first := run("first")
	if st := table.Stats().ArtifactCache; st.Doorkept == 0 || st.Entries != 0 {
		t.Errorf("first batch should be doorkept, not cached: %+v", st)
	}
	run("admit") // the admission doorkeeper caches fingerprints on their second offer
	before := table.Stats().ArtifactCache
	second := run("second")
	after := table.Stats().ArtifactCache
	if after.Hits <= before.Hits {
		t.Errorf("no artifact cache hits on repeat: before %+v after %+v", before, after)
	}
	for i := range first {
		diffResults(t, fmt.Sprintf("repeat case %d", i), second[i], first[i])
	}

	// Ingest bumps shard table versions: cached artifacts must go stale,
	// and re-materialized results must still match the serial oracle.
	keys, measures := randomFact(rng, cfg)
	if err := table.AddFact("Sales", keys, measures); err != nil {
		t.Fatal(err)
	}
	third := run("after-ingest")
	for i, q := range qs {
		want, err := ds.Cube.Execute(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		diffResults(t, fmt.Sprintf("post-ingest case %d", i), third[i], want)
	}
	if st := table.Stats().ArtifactCache; st.Stale == 0 {
		t.Errorf("ingest did not invalidate cached artifacts: %+v", st)
	}

	// Member-attribute mutation on the PARENT must invalidate the
	// per-shard caches too: shards share the parent's member data by
	// reference, so a filter bitmap built before the mutation is wrong
	// afterwards (regression: bumpFactVersions used to bump only the
	// mutated cube's own fact tables, leaving shard scans serving stale
	// artifacts).
	run("rewarm") // re-populate the caches at the current version
	for city := int32(0); int(city) < cfg.Cities; city++ {
		if err := ds.Cube.SetMemberAttr("Store", "City", city, "population", float64(1)); err != nil {
			t.Fatal(err)
		}
	}
	fourth := run("after-member-mutation")
	for i, q := range qs {
		want, err := ds.Cube.Execute(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		diffResults(t, fmt.Sprintf("post-mutation case %d", i), fourth[i], want)
		if len(fourth[i].Rows) != 0 {
			// Every city's population is now 1, so the OpGt(100000) filter
			// matches nothing — a non-empty result means a stale bitmap.
			t.Errorf("post-mutation case %d: %d rows from a filter that matches nothing",
				i, len(fourth[i].Rows))
		}
	}
}

// TestShardedBatchUnderIngestAndSelection is the race stress of the shard
// subsystem: scatter-gather batches run while facts stream in through the
// routed ingest path and a shared view mutates through new selections.
// Every query must complete without error; run under -race in CI.
func TestShardedBatchUnderIngestAndSelection(t *testing.T) {
	ds, cfg := testDataset(t, 11)
	table := shard.New(ds.Cube, shard.Options{Shards: 4, ArtifactCacheBytes: 8 << 20})
	v := cube.NewView(ds.Cube)
	if err := v.SelectMember("Store", "City", 0); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Ingest: a stream of routed AddFacts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			keys, measures := randomFact(rng, cfg)
			if err := table.AddFact("Sales", keys, measures); err != nil {
				t.Errorf("AddFact: %v", err)
				return
			}
		}
	}()

	// Selection: the shared view keeps growing (epoch bumps re-split the
	// per-shard masks).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := v.SelectMember("Store", "City", int32(rng.Intn(cfg.Cities))); err != nil {
				t.Errorf("SelectMember: %v", err)
				return
			}
		}
	}()

	// Queriers: concurrent sharded batches through the shared view. They
	// run a fixed number of batches; the mutators loop until stopped.
	var queriers sync.WaitGroup
	for g := 0; g < 4; g++ {
		queriers.Add(1)
		go func(g int) {
			defer queriers.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for n := 0; n < 30; n++ {
				qs := []cube.Query{randomQuery(rng), randomQuery(rng)}
				vs := []*cube.View{v, nil}
				if _, _, err := table.ExecuteBatchOpt(qs, vs, cube.BatchOptions{Workers: 2}); err != nil {
					t.Errorf("querier %d: %v", g, err)
					return
				}
			}
		}(g)
	}

	queriers.Wait()
	close(stop)
	wg.Wait()
}

package shard_test

// Cost conservation across the scatter-gather executor: per-shard scans
// each charge their freshly built artifacts to the queries using them,
// the per-shard partials carry those charges through merge/finalize, and
// the gathered SharingStats sums the per-shard byte totals — so summing
// Result.Cost across the batch must reproduce the summed stats exactly,
// for every shard count, sharing mode, and packed setting.

import (
	"fmt"
	"testing"

	"sdwp/internal/cube"
	"sdwp/internal/shard"
)

func costTestBatch() []cube.Query {
	shared := cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
		Attr: "population", Op: cube.OpGt, Value: float64(100000)}
	young := cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: "Customer", Level: "Customer"},
		Attr: "age", Op: cube.OpLe, Value: float64(35)}
	agg := []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}}
	var qs []cube.Query
	for _, fs := range [][]cube.AttrFilter{nil, {shared}, {shared, young}} {
		for _, level := range []string{"City", "State"} {
			qs = append(qs, cube.Query{Fact: "Sales",
				GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: level}},
				Aggregates: agg, Filters: fs})
		}
	}
	return qs
}

// TestShardedCostConservation sweeps shard counts {1,2,4,7} × sharing
// modes × packed on/off and pins the conservation law on the gathered
// results: nothing leaks and nothing double-counts across the fan-out.
func TestShardedCostConservation(t *testing.T) {
	modes := []struct {
		name string
		opts cube.BatchOptions
	}{
		{"fused", cube.BatchOptions{DisableSharing: true}},
		{"per-set", cube.BatchOptions{DisablePredicateSharing: true}},
		{"per-predicate", cube.BatchOptions{}},
	}
	for _, shards := range []int{1, 2, 4, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ds, _ := testDataset(t, int64(300+shards))
			table := shard.New(ds.Cube, shard.Options{Shards: shards})
			qs := costTestBatch()
			for _, packed := range []bool{true, false} {
				prev := ds.Cube.PackedColumns()
				ds.Cube.SetPackedColumns(packed)
				for _, mode := range modes {
					label := fmt.Sprintf("packed=%v/%s", packed, mode.name)
					res, stats, err := table.ExecuteBatchOpt(qs, nil, mode.opts)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					var bitmap, keyCol int64
					for i, r := range res {
						c := r.Cost
						if c.FactsScanned != int64(r.ScannedFacts) {
							t.Errorf("%s query %d: Cost.FactsScanned %d != ScannedFacts %d",
								label, i, c.FactsScanned, r.ScannedFacts)
						}
						if c.FactsMatched != int64(r.MatchedFacts) {
							t.Errorf("%s query %d: Cost.FactsMatched %d != MatchedFacts %d",
								label, i, c.FactsMatched, r.MatchedFacts)
						}
						bitmap += c.BitmapBytes
						keyCol += c.KeyColBytes
					}
					if bitmap != stats.BitmapBytesBuilt {
						t.Errorf("%s: Σ BitmapBytes %d != BitmapBytesBuilt %d across %d shards",
							label, bitmap, stats.BitmapBytesBuilt, shards)
					}
					if keyCol != stats.KeyColBytesBuilt {
						t.Errorf("%s: Σ KeyColBytes %d != KeyColBytesBuilt %d across %d shards",
							label, keyCol, stats.KeyColBytesBuilt, shards)
					}
				}
				ds.Cube.SetPackedColumns(prev)
			}
		})
	}
}

// TestShardedCostMatchesUnsharded checks the scan-counter attribution is
// independent of the fan-out: the same batch charges identical
// FactsScanned/FactsMatched per query whether the table is sharded or not
// (byte charges differ — shards materialize per-shard artifacts — but the
// row counters are physical and must agree).
func TestShardedCostMatchesUnsharded(t *testing.T) {
	ds, _ := testDataset(t, 77)
	qs := costTestBatch()
	base, _, err := ds.Cube.ExecuteBatchOpt(qs, nil, cube.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	table := shard.New(ds.Cube, shard.Options{Shards: 4})
	res, _, err := table.ExecuteBatchOpt(qs, nil, cube.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if res[i].Cost.FactsScanned != base[i].Cost.FactsScanned ||
			res[i].Cost.FactsMatched != base[i].Cost.FactsMatched {
			t.Errorf("query %d: sharded scan counters (%d/%d) != unsharded (%d/%d)",
				i, res[i].Cost.FactsScanned, res[i].Cost.FactsMatched,
				base[i].Cost.FactsScanned, base[i].Cost.FactsMatched)
		}
	}
}

package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free latency histogram with power-of-two
// microsecond buckets: bucket k counts observations whose latency is
// ≤ 2^k µs (k = 0..26, ~67s), with one overflow bucket above that.
// Observe is a couple of atomic adds — cheap enough for every query.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sumNS  atomic.Int64
}

// histBuckets: 27 power-of-two µs buckets (1µs .. 2^26µs ≈ 67s) + overflow.
const histBuckets = 28

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

func bucketIndex(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us <= 1 {
		return 0
	}
	idx := bits.Len64(us - 1) // smallest k with us <= 2^k
	if idx >= histBuckets-1 {
		return histBuckets - 1 // overflow
	}
	return idx
}

// bucketUpperSeconds returns bucket k's upper bound in seconds (the
// Prometheus `le` label value); the last bucket is +Inf.
func bucketUpperSeconds(k int) float64 {
	return float64(uint64(1)<<uint(k)) / 1e6
}

// snapshot returns the cumulative bucket counts, total count, and sum
// in seconds. Reads are atomic per bucket; a scrape racing Observe may
// see a sample in count but not yet in sum, which Prometheus tolerates
// (counters are scraped independently anyway).
func (h *Histogram) snapshot() (cum [histBuckets]uint64, count uint64, sumSec float64) {
	var running uint64
	for i := 0; i < histBuckets; i++ {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, running, float64(h.sumNS.Load()) / 1e9
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	_, n, _ := h.snapshot()
	return n
}

// HistogramVec is a Histogram partitioned by one label (e.g. tenant).
// The label space is bounded: past the cardinality cap new values
// collapse into an OtherTenant ("other") series so a hostile tenant ID
// stream cannot grow the registry without bound.
type HistogramVec struct {
	label string
	max   int

	mu     sync.RWMutex
	series map[string]*Histogram
}

const maxLabelValues = 64

// With returns the histogram for one label value, creating it on first
// use.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.series[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.series[value]; h != nil {
		return h
	}
	if len(v.series) >= v.max {
		value = OtherTenant
		if h = v.series[value]; h != nil {
			return h
		}
	}
	h = &Histogram{}
	v.series[value] = h
	return h
}

// Count sums observations across every series of the vec.
func (v *HistogramVec) Count() uint64 {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	var n uint64
	for _, h := range v.series {
		n += h.Count()
	}
	return n
}

// Observe records a sample under the given label value.
func (v *HistogramVec) Observe(value string, d time.Duration) {
	if v == nil {
		return
	}
	v.With(value).Observe(d)
}

// Registry holds named histograms and counter/gauge collectors and
// renders them in Prometheus text exposition format 0.0.4.
type Registry struct {
	mu         sync.Mutex
	hists      []*registeredHist
	collectors []Collector
}

type registeredHist struct {
	name string
	help string
	h    *Histogram // single-series form
	vec  *HistogramVec
	fn   HistogramFunc // scrape-time pre-aggregated form
}

// HistogramBucket is one cumulative bucket of a pre-aggregated
// histogram (UpperBound is the `le` value; +Inf for the tail).
type HistogramBucket struct {
	UpperBound      float64
	CumulativeCount uint64
}

// HistogramFunc produces a full histogram snapshot at scrape time —
// used for distributions owned elsewhere (e.g. the runtime's GC pause
// histogram) that can't be fed through Observe.
type HistogramFunc func() (buckets []HistogramBucket, sum float64, count uint64)

// Sample is one counter or gauge emitted by a Collector at scrape time.
type Sample struct {
	Name  string
	Help  string
	Type  string // "counter" or "gauge"
	Value float64
	// Labels are rendered in key order; may be nil.
	Labels map[string]string
}

// Collector is called at each scrape to emit point-in-time samples —
// the bridge that re-exposes the engine's existing cumulative counters
// without moving their ownership into this package.
type Collector func(emit func(Sample))

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// NewHistogram registers and returns a single-series histogram.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	h := &Histogram{}
	r.mu.Lock()
	r.hists = append(r.hists, &registeredHist{name: name, help: help, h: h})
	r.mu.Unlock()
	return h
}

// NewHistogramVec registers and returns a histogram partitioned by one
// label with the default cardinality cap.
func (r *Registry) NewHistogramVec(name, help, label string) *HistogramVec {
	return r.NewHistogramVecCap(name, help, label, 0)
}

// NewHistogramVecCap is NewHistogramVec with an explicit label
// cardinality cap (0 = default 64); past it new values collapse into
// the OtherTenant series.
func (r *Registry) NewHistogramVecCap(name, help, label string, max int) *HistogramVec {
	if max <= 0 {
		max = maxLabelValues
	}
	v := &HistogramVec{label: label, max: max, series: make(map[string]*Histogram)}
	r.mu.Lock()
	r.hists = append(r.hists, &registeredHist{name: name, help: help, vec: v})
	r.mu.Unlock()
	return v
}

// NewHistogramFunc registers a scrape-time pre-aggregated histogram.
func (r *Registry) NewHistogramFunc(name, help string, fn HistogramFunc) {
	r.mu.Lock()
	r.hists = append(r.hists, &registeredHist{name: name, help: help, fn: fn})
	r.mu.Unlock()
}

// RegisterCollector adds a scrape-time counter/gauge source.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// WritePrometheus renders every registered metric. Safe to call
// concurrently with Observe from any number of goroutines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hists := append([]*registeredHist(nil), r.hists...)
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	var b strings.Builder
	for _, rh := range hists {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", rh.name, rh.help, rh.name)
		if rh.h != nil {
			writeHistogram(&b, rh.name, "", rh.h)
			continue
		}
		if rh.fn != nil {
			writeHistogramFunc(&b, rh.name, rh.fn)
			continue
		}
		rh.vec.mu.RLock()
		values := make([]string, 0, len(rh.vec.series))
		for v := range rh.vec.series {
			values = append(values, v)
		}
		rh.vec.mu.RUnlock()
		sort.Strings(values)
		for _, v := range values {
			// %q escapes `"` `\` and `\n` — exactly the label escaping the
			// Prometheus text format requires.
			writeHistogram(&b, rh.name,
				fmt.Sprintf("%s=%q", rh.vec.label, v), rh.vec.With(v))
		}
	}

	seen := make(map[string]bool)
	for _, c := range collectors {
		c(func(s Sample) {
			if !seen[s.Name] {
				seen[s.Name] = true
				typ := s.Type
				if typ == "" {
					typ = "gauge"
				}
				fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", s.Name, s.Help, s.Name, typ)
			}
			b.WriteString(s.Name)
			if len(s.Labels) > 0 {
				keys := make([]string, 0, len(s.Labels))
				for k := range s.Labels {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				b.WriteByte('{')
				for i, k := range keys {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
				}
				b.WriteByte('}')
			}
			fmt.Fprintf(&b, " %s\n", formatValue(s.Value))
		})
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series. extraLabel is a
// pre-rendered `name="value"` pair or "".
func writeHistogram(b *strings.Builder, name, extraLabel string, h *Histogram) {
	cum, count, sum := h.snapshot()
	sep := ""
	if extraLabel != "" {
		sep = extraLabel + ","
	}
	for k := 0; k < histBuckets-1; k++ {
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n",
			name, sep, formatValue(bucketUpperSeconds(k)), cum[k])
	}
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, cum[histBuckets-1])
	if extraLabel != "" {
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, extraLabel, formatValue(sum))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, extraLabel, count)
	} else {
		fmt.Fprintf(b, "%s_sum %s\n", name, formatValue(sum))
		fmt.Fprintf(b, "%s_count %d\n", name, count)
	}
}

// writeHistogramFunc renders a pre-aggregated histogram snapshot.
func writeHistogramFunc(b *strings.Builder, name string, fn HistogramFunc) {
	buckets, sum, count := fn()
	sawInf := false
	for _, bk := range buckets {
		le := "+Inf"
		if !math.IsInf(bk.UpperBound, 1) {
			le = formatValue(bk.UpperBound)
		} else {
			sawInf = true
		}
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, le, bk.CumulativeCount)
	}
	if !sawInf {
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
	}
	fmt.Fprintf(b, "%s_sum %s\n", name, formatValue(sum))
	fmt.Fprintf(b, "%s_count %d\n", name, count)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// QueryMetrics groups the per-query latency histograms the scheduler
// feeds. All Observe methods are nil-safe so an engine without a
// registry pays a single pointer test per stage.
type QueryMetrics struct {
	EndToEnd  *HistogramVec // by tenant: submit → result delivered
	QueueWait *HistogramVec // by tenant: enqueue → batch assembly
	Scan      *Histogram    // executor batch wall time
	Merge     *Histogram    // shard-merge + finalize portion of the batch
}

// NewQueryMetrics registers the standard query histograms on r with the
// default tenant-label cardinality cap.
func NewQueryMetrics(r *Registry) *QueryMetrics {
	return NewQueryMetricsCap(r, 0)
}

// NewQueryMetricsCap is NewQueryMetrics with an explicit tenant-label
// cardinality cap on the per-tenant vecs (0 = default 64).
func NewQueryMetricsCap(r *Registry, tenantCap int) *QueryMetrics {
	return &QueryMetrics{
		EndToEnd: r.NewHistogramVecCap("sdwp_query_duration_seconds",
			"End-to-end query latency from submit to result delivery.", "user", tenantCap),
		QueueWait: r.NewHistogramVecCap("sdwp_query_queue_wait_seconds",
			"Time a query spent awaiting admission before batch assembly.", "user", tenantCap),
		Scan: r.NewHistogram("sdwp_batch_scan_seconds",
			"Executor wall time per coalesced batch (all fact scans)."),
		Merge: r.NewHistogram("sdwp_batch_merge_seconds",
			"Partial-merge plus finalize time per coalesced batch."),
	}
}

// ObserveEndToEnd records one end-to-end latency under the tenant label.
func (m *QueryMetrics) ObserveEndToEnd(user string, d time.Duration) {
	if m == nil {
		return
	}
	m.EndToEnd.Observe(user, d)
}

// ObserveQueueWait records one admission-wait latency under the tenant
// label.
func (m *QueryMetrics) ObserveQueueWait(user string, d time.Duration) {
	if m == nil {
		return
	}
	m.QueueWait.Observe(user, d)
}

// ObserveScan records one batch scan wall time.
func (m *QueryMetrics) ObserveScan(d time.Duration) {
	if m == nil {
		return
	}
	m.Scan.Observe(d)
}

// ObserveMerge records one batch merge+finalize time.
func (m *QueryMetrics) ObserveMerge(d time.Duration) {
	if m == nil {
		return
	}
	m.Merge.Observe(d)
}

package obs

import (
	"fmt"
	"testing"
	"time"
)

// TestSplitTotalConserves pins the cost-attribution invariant everything
// downstream relies on: the proportional split of a batch total across
// weighted queries sums back to the total exactly, for any weights.
func TestSplitTotalConserves(t *testing.T) {
	cases := []struct {
		total   int64
		weights []int64
	}{
		{0, []int64{1, 2, 3}},
		{1, []int64{1}},
		{7, []int64{1, 1, 1}},
		{100, []int64{1, 2, 3, 4}},
		{999_999_937, []int64{5, 0, 17, 1, 1 << 40}},
		{1 << 50, []int64{3, 3, 3, 3, 3, 3, 3}},
	}
	for _, tc := range cases {
		shares := SplitTotal(tc.total, tc.weights)
		if len(shares) != len(tc.weights) {
			t.Fatalf("SplitTotal(%d, %v) returned %d shares", tc.total, tc.weights, len(shares))
		}
		var sum int64
		for i, s := range shares {
			if s < 0 {
				t.Errorf("SplitTotal(%d, %v): negative share %d at %d", tc.total, tc.weights, s, i)
			}
			sum += s
		}
		if sum != tc.total {
			t.Errorf("SplitTotal(%d, %v) = %v sums to %d", tc.total, tc.weights, shares, sum)
		}
	}
	if got := SplitTotal(10, nil); len(got) != 0 {
		t.Errorf("SplitTotal with no weights returned %v", got)
	}
}

// TestSplitTotalProportional checks heavier weights get at least as much.
func TestSplitTotalProportional(t *testing.T) {
	shares := SplitTotal(1000, []int64{1, 10, 100})
	if !(shares[0] <= shares[1] && shares[1] <= shares[2]) {
		t.Errorf("shares not monotone in weight: %v", shares)
	}
	if shares[2] < 800 {
		t.Errorf("dominant weight got %d of 1000", shares[2])
	}
}

// TestSplitCostConserves checks the field-wise even split over dedup'd
// waiters: every cost field sums back to the original exactly.
func TestSplitCostConserves(t *testing.T) {
	c := QueryCost{
		FactsScanned: 101, FactsMatched: 17, CellsTouched: 5,
		BitmapBytes: 1003, KeyColBytes: 47, SharedSavedBytes: 999,
		CPUNs: 123457, SharedSavedNs: 31, CacheCreditNs: 7,
	}
	for _, n := range []int{1, 2, 3, 7} {
		parts := SplitCost(c, n)
		if len(parts) != n {
			t.Fatalf("SplitCost n=%d returned %d parts", n, len(parts))
		}
		var sum QueryCost
		for _, p := range parts {
			sum.Add(p)
		}
		if sum != c {
			t.Errorf("n=%d: parts sum to %+v, want %+v", n, sum, c)
		}
	}
}

// TestAccountantAttributionAndTotals checks per-tenant accumulation, the
// global totals, and the weight-ordered listing.
func TestAccountantAttributionAndTotals(t *testing.T) {
	a := NewAccountant(AccountantOptions{})
	a.RecordQuery("alice", "fpA", "t1", time.Millisecond, QueryCost{FactsScanned: 100, CPUNs: 5000})
	a.RecordQuery("alice", "fpB", "t2", time.Millisecond, QueryCost{FactsScanned: 50, CPUNs: 1000})
	a.RecordQuery("bob", "fpA", "t3", time.Millisecond, QueryCost{FactsScanned: 10, CPUNs: 200})
	a.RecordCacheHit("bob", QueryCost{CPUNs: 700, CacheCreditNs: 300})

	stats := a.Tenants()
	if len(stats) != 2 {
		t.Fatalf("tenants = %d, want 2", len(stats))
	}
	if stats[0].Tenant != "alice" {
		t.Errorf("heaviest tenant = %q, want alice", stats[0].Tenant)
	}
	if stats[0].Queries != 2 || stats[0].Cost.FactsScanned != 150 || stats[0].Cost.CPUNs != 6000 {
		t.Errorf("alice account %+v", stats[0])
	}
	bob := stats[1]
	if bob.Queries != 2 || bob.CacheHits != 1 {
		t.Errorf("bob counts %+v", bob)
	}
	if bob.Cost.CacheCreditNs != 1000 { // stored CPU + stored credit
		t.Errorf("bob cache credit = %d, want 1000", bob.Cost.CacheCreditNs)
	}
	if want := 0.5; bob.CacheHitRate != want {
		t.Errorf("bob hit rate = %v, want %v", bob.CacheHitRate, want)
	}

	queries, total := a.Totals()
	if queries != 4 {
		t.Errorf("total queries = %d, want 4", queries)
	}
	var sum QueryCost
	for _, ts := range stats {
		sum.Add(ts.Cost)
	}
	if total != sum {
		t.Errorf("global total %+v != Σ tenants %+v", total, sum)
	}
}

// TestAccountantTenantCapCollapses checks the cardinality guard: past the
// cap, new tenants land in the shared "other" account instead of growing
// the map (and the metric label space) without bound.
func TestAccountantTenantCapCollapses(t *testing.T) {
	a := NewAccountant(AccountantOptions{TenantCap: 3})
	for i := 0; i < 10; i++ {
		a.RecordQuery(fmt.Sprintf("tenant%d", i), "fp", "", time.Millisecond, QueryCost{FactsScanned: 1})
	}
	stats := a.Tenants()
	if len(stats) > 4 { // cap named tenants + the shared "other" series
		t.Fatalf("tenant accounts = %d, want <= cap+1 = 4", len(stats))
	}
	var other *TenantStat
	for i := range stats {
		if stats[i].Tenant == OtherTenant {
			other = &stats[i]
		}
	}
	if other == nil {
		t.Fatal("no \"other\" account after overflow")
	}
	if other.Queries != 7 { // 10 tenants, 3 named before the cap bit
		t.Errorf("other absorbed %d queries, want 7", other.Queries)
	}
	queries, total := a.Totals()
	if queries != 10 || total.FactsScanned != 10 {
		t.Errorf("totals lost overflow traffic: %d queries, %+v", queries, total)
	}
}

// TestProfileRegistryTopAndEviction checks the heavy-query registry:
// ranking by cumulative cost, the profile fields, and capacity eviction
// of the coldest fingerprint.
func TestProfileRegistryTopAndEviction(t *testing.T) {
	r := NewProfileRegistry(2, time.Hour)
	r.Record("heavy", "t1", 10*time.Millisecond, QueryCost{FactsScanned: 1000, CPUNs: 1e7})
	r.Record("heavy", "t2", 30*time.Millisecond, QueryCost{FactsScanned: 1000, CPUNs: 3e7})
	r.Record("light", "t3", time.Millisecond, QueryCost{FactsScanned: 10, CPUNs: 1e5})

	top := r.Top(10)
	if len(top) != 2 {
		t.Fatalf("Top returned %d profiles, want 2", len(top))
	}
	if top[0].Fingerprint != "heavy" {
		t.Errorf("top profile = %q, want heavy", top[0].Fingerprint)
	}
	h := top[0]
	if h.Count != 2 || h.TotalCost.FactsScanned != 2000 {
		t.Errorf("heavy profile %+v", h)
	}
	if h.MeanCost.FactsScanned != 1000 || h.MeanCost.CPUNs != 2e7 {
		t.Errorf("heavy mean cost %+v", h.MeanCost)
	}
	if h.MeanMs != 20 {
		t.Errorf("heavy mean = %vms, want 20", h.MeanMs)
	}
	if h.P99Ms < 20 {
		t.Errorf("heavy p99 = %vms, want >= mean", h.P99Ms)
	}
	if h.LastTraceID != "t2" {
		t.Errorf("last trace = %q, want t2", h.LastTraceID)
	}

	// A third fingerprint evicts the coldest (light).
	r.Record("new", "t4", time.Millisecond, QueryCost{FactsScanned: 500, CPUNs: 1e6})
	if r.Len() != 2 {
		t.Fatalf("registry holds %d, want capacity 2", r.Len())
	}
	for _, p := range r.Top(10) {
		if p.Fingerprint == "light" {
			t.Error("light survived eviction over the colder entry")
		}
	}
	records, evictions := r.Counters()
	if records != 4 || evictions != 1 {
		t.Errorf("counters = %d records / %d evictions, want 4/1", records, evictions)
	}
}

// TestProfileRegistryDecay checks score decay: with a tiny half-life an
// old heavy fingerprint ranks below a fresh light one.
func TestProfileRegistryDecay(t *testing.T) {
	r := NewProfileRegistry(8, time.Millisecond)
	base := time.Unix(1000, 0)
	now := base
	r.now = func() time.Time { return now }

	r.Record("old-heavy", "", time.Second, QueryCost{FactsScanned: 1e6, CPUNs: 1e9})
	now = base.Add(time.Second) // 1000 half-lives later
	r.Record("fresh-light", "", time.Millisecond, QueryCost{FactsScanned: 10, CPUNs: 1e5})

	top := r.Top(2)
	if len(top) != 2 || top[0].Fingerprint != "fresh-light" {
		t.Fatalf("decay did not demote the stale fingerprint: %+v", top)
	}
}

// TestHistogramQuantile checks the bucketed quantile used for profile p99.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond) // bucket upper bound 2µs
	}
	h.Observe(100 * time.Millisecond)
	if q := h.Quantile(0.5); q > 4e-6 {
		t.Errorf("p50 = %v, want ~2µs", q)
	}
	if q := h.Quantile(0.999); q < 0.05 {
		t.Errorf("p99.9 = %v, want to land in the slow bucket", q)
	}
	var empty Histogram
	if q := empty.Quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

package obs

import (
	"math"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
)

// Runtime telemetry: re-exposes the Go runtime's own metrics on the
// registry so a scrape of /metrics answers "is it the engine or the
// runtime" without attaching pprof. Everything reads runtime/metrics at
// scrape time — no background goroutine, no sampling loop.

// runtimeSampleNames are the runtime/metrics series the collector reads
// per scrape.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
)

// gcPauseBounds are the fixed `le` bounds the runtime's variable-width
// GC pause histogram is downsampled to (seconds).
var gcPauseBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// RegisterRuntimeMetrics registers Go runtime telemetry on r:
// sdwp_go_goroutines and sdwp_go_heap_bytes gauges, the
// sdwp_go_gc_pause_seconds histogram, and a constant sdwp_build_info
// gauge carrying the Go version and module revision as labels.
func RegisterRuntimeMetrics(r *Registry) {
	buildLabels := map[string]string{"goversion": runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			buildLabels["module"] = bi.Main.Path
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				buildLabels["revision"] = s.Value
			}
		}
	}
	r.RegisterCollector(func(emit func(Sample)) {
		samples := []metrics.Sample{{Name: rmGoroutines}, {Name: rmHeapBytes}}
		metrics.Read(samples)
		emit(Sample{
			Name: "sdwp_go_goroutines", Help: "Live goroutines (runtime/metrics).",
			Type: "gauge", Value: runtimeSampleValue(samples[0]),
		})
		emit(Sample{
			Name: "sdwp_go_heap_bytes", Help: "Bytes of live heap objects (runtime/metrics).",
			Type: "gauge", Value: runtimeSampleValue(samples[1]),
		})
		emit(Sample{
			Name: "sdwp_build_info", Help: "Build metadata; constant 1.",
			Type: "gauge", Value: 1, Labels: buildLabels,
		})
	})
	r.NewHistogramFunc("sdwp_go_gc_pause_seconds",
		"Stop-the-world GC pause distribution since process start (runtime/metrics, downsampled).",
		gcPauseHistogram)
}

// runtimeSampleValue normalizes a runtime/metrics sample to float64.
func runtimeSampleValue(s metrics.Sample) float64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	case metrics.KindFloat64:
		return s.Value.Float64()
	default:
		return 0
	}
}

// gcPauseHistogram reads the runtime's cumulative GC pause histogram
// and downsamples it to gcPauseBounds. The runtime's bucket boundaries
// don't align with ours, so a bucket straddling a bound is counted
// under the first fixed bound at or above its upper edge — a ≤ one
// bucket-width overestimate, fine for a pause dashboard.
func gcPauseHistogram() (buckets []HistogramBucket, sum float64, count uint64) {
	samples := []metrics.Sample{{Name: rmGCPauses}}
	metrics.Read(samples)
	if samples[0].Value.Kind() != metrics.KindFloat64Histogram {
		return nil, 0, 0
	}
	h := samples[0].Value.Float64Histogram()
	cum := make([]uint64, len(gcPauseBounds)+1) // +Inf tail
	for i, c := range h.Counts {
		// Bucket i spans (Buckets[i], Buckets[i+1]]; file it under the
		// first fixed bound >= its upper edge.
		upper := math.Inf(1)
		if i+1 < len(h.Buckets) {
			upper = h.Buckets[i+1]
		}
		slot := len(gcPauseBounds) // +Inf
		for b, bound := range gcPauseBounds {
			if upper <= bound {
				slot = b
				break
			}
		}
		cum[slot] += c
		count += c
		// Approximate the pause-time sum from bucket midpoints (clamped
		// for the open-ended tails).
		lo, hi := 0.0, upper
		if i < len(h.Buckets) && !math.IsInf(h.Buckets[i], -1) {
			lo = h.Buckets[i]
		}
		if math.IsInf(hi, 1) {
			hi = 2 * lo
		}
		sum += float64(c) * (lo + hi) / 2
	}
	// Cumulate and attach bounds.
	var running uint64
	buckets = make([]HistogramBucket, 0, len(cum))
	for i, c := range cum {
		running += c
		bound := math.Inf(1)
		if i < len(gcPauseBounds) {
			bound = gcPauseBounds[i]
		}
		buckets = append(buckets, HistogramBucket{UpperBound: bound, CumulativeCount: running})
	}
	return buckets, sum, count
}

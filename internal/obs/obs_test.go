package obs

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0}, // sub-µs truncates to 0µs
		{time.Microsecond, 0},      // ≤ 2^0 µs
		{2 * time.Microsecond, 1},  // ≤ 2^1 µs
		{3 * time.Microsecond, 2},  // first value past 2µs
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{time.Millisecond, 10},               // 1024µs = 2^10
		{(1 << 26) * time.Microsecond, 26},   // last finite bucket (~67s)
		{(1<<26 + 1) * time.Microsecond, 27}, // overflow
		{10 * time.Hour, histBuckets - 1},    // deep overflow clamps
		{-time.Second, 0},                    // Observe clamps negatives...
	}
	for _, c := range cases {
		d := c.d
		if d < 0 {
			d = 0 // ...before calling bucketIndex
		}
		if got := bucketIndex(d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if got := bucketUpperSeconds(0); got != 1e-6 {
		t.Errorf("bucketUpperSeconds(0) = %g, want 1e-6", got)
	}
	if got := bucketUpperSeconds(10); got != 1024e-6 {
		t.Errorf("bucketUpperSeconds(10) = %g, want 1024e-6", got)
	}
}

// promLine is the shape of one sample line in text exposition 0.0.4.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9eE.+-]+(Inf)?$`)

func TestRegistryPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_latency_seconds", "Test latency.")
	v := r.NewHistogramVec("test_by_user_seconds", "Per-user latency.", "user")
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "test_events_total", Help: "Events.", Type: "counter", Value: 42})
		emit(Sample{Name: "test_events_total", Help: "Events.", Type: "counter", Value: 7,
			Labels: map[string]string{"kind": "b", "area": "a"}})
		emit(Sample{Name: "test_depth", Help: "Depth.", Value: 3}) // default gauge
	})

	h.Observe(time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(2 * time.Second)
	v.Observe(`al"ice`, time.Millisecond) // label value needing escaping
	v.Observe("bob", time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP test_latency_seconds Test latency.",
		"# TYPE test_latency_seconds histogram",
		"# TYPE test_by_user_seconds histogram",
		"# TYPE test_events_total counter",
		"# TYPE test_depth gauge",
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_count 3",
		`test_by_user_seconds_bucket{user="al\"ice",le="0.001024"} 1`,
		`test_by_user_seconds_count{user="bob"} 1`,
		"test_events_total 42",
		`test_events_total{area="a",kind="b"} 7`,
		"test_depth 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
	// HELP/TYPE for test_events_total must appear exactly once despite two
	// samples sharing the name.
	if n := strings.Count(out, "# TYPE test_events_total counter"); n != 1 {
		t.Errorf("TYPE test_events_total rendered %d times, want 1", n)
	}

	// Every sample line must be well-formed and every histogram's buckets
	// cumulative (non-decreasing in le order, +Inf equal to _count).
	var lastCum uint64
	var lastLe float64
	inHist := ""
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
		name, rest, _ := strings.Cut(line, " ")
		if i := strings.IndexByte(name, '{'); i >= 0 {
			labels := name[i:]
			name = name[:i]
			if strings.HasSuffix(name, "_bucket") {
				m := regexp.MustCompile(`le="([^"]+)"`).FindStringSubmatch(labels)
				if m == nil {
					t.Fatalf("bucket line without le: %q", line)
				}
				cum, err := strconv.ParseUint(rest, 10, 64)
				if err != nil {
					t.Fatalf("bucket count %q: %v", rest, err)
				}
				series := name + labels[:strings.Index(labels, "le=")]
				le := 1e300 // +Inf sorts above every finite bound
				if m[1] != "+Inf" {
					if le, err = strconv.ParseFloat(m[1], 64); err != nil {
						t.Fatalf("le %q: %v", m[1], err)
					}
				}
				if series == inHist {
					if le < lastLe {
						t.Errorf("%s: le %g after %g", series, le, lastLe)
					}
					if cum < lastCum {
						t.Errorf("%s: bucket %g count %d < previous %d (not cumulative)", series, le, cum, lastCum)
					}
				}
				inHist, lastLe, lastCum = series, le, cum
			}
		}
	}
}

func TestHistogramVecOverflowLabel(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("test_seconds", "t", "user")
	for i := 0; i < maxLabelValues+16; i++ {
		v.Observe(fmt.Sprintf("user%03d", i), time.Millisecond)
	}
	v.mu.RLock()
	n := len(v.series)
	_, hasOverflow := v.series[OtherTenant]
	v.mu.RUnlock()
	if !hasOverflow {
		t.Fatalf("no %q series after exceeding maxLabelValues", OtherTenant)
	}
	if n > maxLabelValues+1 {
		t.Fatalf("series map grew to %d, want <= %d", n, maxLabelValues+1)
	}
	if got := v.With(OtherTenant).Count(); got != 16 {
		t.Fatalf("%q count = %d, want 16", OtherTenant, got)
	}
	if got := v.Count(); got != maxLabelValues+16 {
		t.Fatalf("vec total count = %d, want %d", got, maxLabelValues+16)
	}
}

// TestHistogramVecConfigurableCap checks the explicit cardinality cap:
// past it, new label values collapse into the "other" series instead of
// growing the map.
func TestHistogramVecConfigurableCap(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVecCap("capped_seconds", "t", "user", 4)
	for i := 0; i < 10; i++ {
		v.Observe(fmt.Sprintf("tenant%d", i), time.Millisecond)
	}
	v.mu.RLock()
	n := len(v.series)
	v.mu.RUnlock()
	if n > 5 {
		t.Fatalf("series map grew to %d with cap 4, want <= 5", n)
	}
	if got := v.With(OtherTenant).Count(); got != 6 {
		t.Fatalf("%q count = %d, want 6", OtherTenant, got)
	}
}

func TestTracerRetention(t *testing.T) {
	// Rate 0: traces are issued (so IDs/spans exist) but only errors retain.
	tr0 := NewTracer(TracerOptions{SampleRate: 0})
	ok := tr0.Start("req-ok")
	ok.Finish(nil)
	if _, found := tr0.Get("req-ok"); found {
		t.Fatal("unsampled success retained at rate 0")
	}
	bad := tr0.Start("req-bad")
	bad.Finish(errors.New("boom"))
	snap, found := tr0.Get("req-bad")
	if !found {
		t.Fatal("error trace not retained at rate 0")
	}
	if snap.Error != "boom" || snap.Sampled {
		t.Fatalf("error trace snapshot = %+v", snap)
	}

	// Rate 1: every finish retains.
	tr1 := NewTracer(TracerOptions{SampleRate: 1})
	s := tr1.Start("")
	if s.ID() == "" {
		t.Fatal("no generated ID")
	}
	s.AddSpan("compile", time.Now(), time.Millisecond, nil)
	s.Finish(nil)
	snap, found = tr1.Get(s.ID())
	if !found {
		t.Fatal("sampled success not retained at rate 1")
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "compile" {
		t.Fatalf("spans = %+v", snap.Spans)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, RingSize: 4})
	var ids []string
	for i := 0; i < 10; i++ {
		s := tr.Start(fmt.Sprintf("t%02d", i))
		s.Finish(nil)
		ids = append(ids, s.ID())
	}
	for _, id := range ids[:6] {
		if _, found := tr.Get(id); found {
			t.Errorf("evicted trace %s still indexed", id)
		}
	}
	for _, id := range ids[6:] {
		if _, found := tr.Get(id); !found {
			t.Errorf("recent trace %s missing", id)
		}
	}
	recent := tr.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d, want 4", len(recent))
	}
	for i, snap := range recent { // newest first
		if want := ids[9-i]; snap.ID != want {
			t.Errorf("Recent[%d] = %s, want %s", i, snap.ID, want)
		}
	}
}

func TestTraceFinishIdempotent(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1, RingSize: 8})
	s := tr.Start("once")
	s.Finish(errors.New("first"))
	s.Finish(nil) // the HTTP layer double-finishing after the scheduler
	s.Finish(errors.New("third"))
	snap, found := tr.Get("once")
	if !found {
		t.Fatal("trace not retained")
	}
	if snap.Error != "first" {
		t.Fatalf("Error = %q, want the first finish to win", snap.Error)
	}
	if got := len(tr.Recent(8)); got != 1 {
		t.Fatalf("ring has %d entries after re-finishing, want 1", got)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(Background) = %v", got)
	}
	ctx := context.Background()
	if got := NewContext(ctx, nil); got != ctx {
		t.Fatal("NewContext(nil trace) should return ctx unchanged")
	}
	tr := NewTracer(TracerOptions{SampleRate: 1}).Start("ctx")
	if got := FromContext(NewContext(ctx, tr)); got != tr {
		t.Fatalf("FromContext = %v, want %v", got, tr)
	}
}

func TestRequestIDSanitizing(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleRate: 1})
	if got := tr.Start("client-id-42").ID(); got != "client-id-42" {
		t.Errorf("clean client ID not adopted: %q", got)
	}
	for _, junk := range []string{"has space", "ctrl\x01byte", "üñïçödé", ""} {
		if got := tr.Start(junk).ID(); got == junk || got == "" {
			t.Errorf("junk ID %q not replaced (got %q)", junk, got)
		}
	}
	long := strings.Repeat("x", 200)
	if got := tr.Start(long).ID(); len(got) > 64 {
		t.Errorf("long ID not truncated: %d bytes", len(got))
	}
	if a, b := NewRequestID(), NewRequestID(); a == b {
		t.Errorf("NewRequestID not unique: %s", a)
	}
	if got := RequestID("ok-id"); got != "ok-id" {
		t.Errorf("RequestID(clean) = %q", got)
	}
	if got := RequestID("bad id"); got == "bad id" || got == "" {
		t.Errorf("RequestID(junk) = %q", got)
	}
}

func TestScanTraceConcurrentShards(t *testing.T) {
	var st ScanTrace
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			st.AddShard(ShardScan{Shard: shard, Facts: shard * 100, Wall: time.Millisecond})
			st.AddGather(time.Microsecond)
		}(i)
	}
	wg.Wait()
	shards, gather := st.Snapshot()
	if len(shards) != 8 {
		t.Fatalf("got %d shard records, want 8", len(shards))
	}
	for i, s := range shards {
		if s.Shard != i {
			t.Fatalf("shards not sorted: %v", shards)
		}
	}
	if gather != 8*time.Microsecond {
		t.Fatalf("gather = %v, want 8µs", gather)
	}
	// Nil recorder is a no-op, not a panic.
	var nilST *ScanTrace
	nilST.AddShard(ShardScan{})
	nilST.AddGather(time.Second)
	if s, g := nilST.Snapshot(); s != nil || g != 0 {
		t.Fatal("nil ScanTrace snapshot not empty")
	}
}

// TestObserveDuringScrape hammers Observe and retention concurrently with
// WritePrometheus and Recent — the race-detector target stress.sh runs.
func TestObserveDuringScrape(t *testing.T) {
	r := NewRegistry()
	m := NewQueryMetrics(r)
	tr := NewTracer(TracerOptions{SampleRate: 1, RingSize: 16})
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "x_total", Help: "x", Type: "counter", Value: 1})
	})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				m.ObserveEndToEnd(fmt.Sprintf("u%d", w), time.Duration(i)*time.Microsecond)
				m.ObserveQueueWait(fmt.Sprintf("u%d", w), time.Microsecond)
				m.ObserveScan(time.Millisecond)
				m.ObserveMerge(time.Microsecond)
				s := tr.Start("")
				s.AddSpan("scan", time.Now(), time.Millisecond, nil)
				s.Finish(nil)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Error(err)
			break
		}
		_ = tr.Recent(16)
	}
	close(done)
	wg.Wait()
}

// Package obs is the engine's telemetry subsystem: query-lifecycle
// traces (span trees kept in a bounded ring), lock-free log-bucketed
// latency histograms with a Prometheus text exposition, the scan
// stage-timing recorder the executor fills per shard, and per-tenant
// cost accounting — every query is priced as a QueryCost vector, the
// bill is attributed to its tenant (Accountant), and a decay-weighted
// registry ranks the heaviest query fingerprints (ProfileRegistry).
// The accountant's decayed per-tenant costs are what the scheduler's
// fair admission consumes, so "fair" means fair by resources used.
//
// The package sits below every other internal package (it imports only
// the standard library) so the scheduler, executor, and HTTP layer can
// all depend on it without cycles. Every entry point is nil-safe: a nil
// *Tracer, *Trace, *QueryMetrics, or *ScanTrace turns the corresponding
// call into a no-op, which keeps call sites branch-free and makes
// "telemetry off" cost one pointer test.
package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed stage of a query's lifecycle. Start is absolute
// (UnixNano) rather than trace-relative because coalescing shares one
// scan span across every trace in a batch — the same *Span is attached
// to traces with different start times, so offsets must be computed by
// the reader.
type Span struct {
	Name     string         `json:"name"`
	Start    int64          `json:"startUnixNs"`
	Dur      int64          `json:"durNs"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*Span        `json:"children,omitempty"`
}

// Trace is the span tree of one submitted query. Spans are appended by
// the HTTP layer (compile, cache lookup) and the scheduler (admission
// wait, scan, finalize); Finish freezes the duration and decides
// retention. All methods are nil-safe.
type Trace struct {
	id      string
	start   time.Time
	sampled bool
	tracer  *Tracer

	mu    sync.Mutex
	user  string
	spans []*Span
	done  bool
	errS  string
	durNS int64
}

// SetUser stamps the tenant the query belongs to (set by the scheduler
// once the session is resolved, so /api/traces/recent can filter by
// tenant). Last write wins on the rare deduplicated multi-tenant trace.
func (t *Trace) SetUser(user string) {
	if t == nil || user == "" {
		return
	}
	t.mu.Lock()
	t.user = user
	t.mu.Unlock()
}

// ID returns the trace/request ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Sampled reports whether this trace won the probabilistic sample (it
// is still retained on Finish(err != nil) even when false).
func (t *Trace) Sampled() bool { return t != nil && t.sampled }

// AddSpan records a top-level span with an explicit start and duration.
func (t *Trace) AddSpan(name string, start time.Time, dur time.Duration, attrs map[string]any) {
	if t == nil {
		return
	}
	t.Attach(&Span{Name: name, Start: start.UnixNano(), Dur: dur.Nanoseconds(), Attrs: attrs})
}

// Attach adds an externally built span (possibly shared with other
// traces of the same batch — the span must not be mutated afterwards).
func (t *Trace) Attach(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Finish freezes the trace duration and hands it to the tracer's ring
// when retained (sampled, or err != nil — errors and timeouts are
// always kept). Only the first call wins; the scheduler finishes traces
// at result delivery and the HTTP layer finishes again on its own
// error/success paths, so idempotence is load-bearing.
func (t *Trace) Finish(err error) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.durNS = time.Since(t.start).Nanoseconds()
	if err != nil {
		t.errS = err.Error()
	}
	keep := t.sampled || err != nil
	t.mu.Unlock()
	if keep && t.tracer != nil {
		t.tracer.retain(t)
	}
}

// TraceSnapshot is the JSON form served by /api/trace/{id}.
type TraceSnapshot struct {
	ID          string  `json:"id"`
	User        string  `json:"user,omitempty"`
	StartUnixNs int64   `json:"startUnixNs"`
	DurNs       int64   `json:"durNs"`
	Error       string  `json:"error,omitempty"`
	Sampled     bool    `json:"sampled"`
	Spans       []*Span `json:"spans"`
}

func (t *Trace) snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceSnapshot{
		ID:          t.id,
		User:        t.user,
		StartUnixNs: t.start.UnixNano(),
		DurNs:       t.durNS,
		Error:       t.errS,
		Sampled:     t.sampled,
		Spans:       append([]*Span(nil), t.spans...),
	}
}

// TracerOptions configures NewTracer.
type TracerOptions struct {
	// SampleRate is the probability a non-error query's trace is
	// retained. Errors and timeouts are always retained.
	SampleRate float64
	// RingSize bounds how many finished traces are kept (default 256).
	RingSize int
}

// Tracer issues traces and keeps the most recent retained ones in a
// fixed-size ring indexed by ID. A nil *Tracer issues nil traces.
type Tracer struct {
	opts TracerOptions

	mu   sync.Mutex
	ring []*Trace
	next int
	byID map[string]*Trace
}

// NewTracer builds a tracer. A SampleRate of 0 still issues traces (so
// error traces are retained deterministically); callers that want
// tracing fully off should keep the tracer nil instead.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = 256
	}
	return &Tracer{
		opts: opts,
		ring: make([]*Trace, 0, opts.RingSize),
		byID: make(map[string]*Trace, opts.RingSize),
	}
}

// Start issues a trace. requestID, when non-empty, becomes the trace ID
// (the caller-supplied X-Request-Id); otherwise a fresh ID is
// generated. Nil-safe: a nil tracer returns a nil trace.
func (tr *Tracer) Start(requestID string) *Trace {
	if tr == nil {
		return nil
	}
	id := sanitizeID(requestID)
	if id == "" {
		id = NewRequestID()
	}
	return &Trace{
		id:      id,
		start:   time.Now(),
		sampled: tr.opts.SampleRate > 0 && rand.Float64() < tr.opts.SampleRate,
		tracer:  tr,
	}
}

// retain stores a finished trace, evicting the oldest past RingSize.
func (tr *Tracer) retain(t *Trace) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.ring) < tr.opts.RingSize {
		tr.ring = append(tr.ring, t)
	} else {
		old := tr.ring[tr.next]
		if tr.byID[old.id] == old {
			delete(tr.byID, old.id)
		}
		tr.ring[tr.next] = t
		tr.next = (tr.next + 1) % tr.opts.RingSize
	}
	tr.byID[t.id] = t
}

// Get returns the snapshot of a retained trace by ID. Only finished
// traces are visible; in-flight ones are not yet in the ring.
func (tr *Tracer) Get(id string) (TraceSnapshot, bool) {
	if tr == nil {
		return TraceSnapshot{}, false
	}
	tr.mu.Lock()
	t := tr.byID[id]
	tr.mu.Unlock()
	if t == nil {
		return TraceSnapshot{}, false
	}
	return t.snapshot(), true
}

// Recent returns snapshots of up to n most recently retained traces,
// newest first.
func (tr *Tracer) Recent(n int) []TraceSnapshot {
	return tr.RecentFiltered(n, nil)
}

// RecentFiltered returns up to n most recent retained traces whose
// snapshot satisfies keep (nil keep = all), newest first. The whole
// ring is walked so a filter still finds older matches past n
// non-matching newer traces.
func (tr *Tracer) RecentFiltered(n int, keep func(TraceSnapshot) bool) []TraceSnapshot {
	if tr == nil || n <= 0 {
		return nil
	}
	tr.mu.Lock()
	traces := make([]*Trace, 0, len(tr.ring))
	for i := 0; i < len(tr.ring); i++ {
		// Walk backwards from the insertion cursor: newest first.
		idx := (tr.next - 1 - i + 2*len(tr.ring)) % len(tr.ring)
		if len(tr.ring) < tr.opts.RingSize {
			// Ring not yet full: entries live at [0, len) in append order.
			idx = len(tr.ring) - 1 - i
		}
		traces = append(traces, tr.ring[idx])
	}
	tr.mu.Unlock()
	out := make([]TraceSnapshot, 0, min(n, len(traces)))
	for _, t := range traces {
		if len(out) >= n {
			break
		}
		s := t.snapshot()
		if keep == nil || keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// Request-ID generation: a per-process random prefix plus an atomic
// counter. Cheap enough for every request (no crypto/rand syscall on
// the query path) while still unique across restarts.
var (
	idPrefix = rand.Uint32()
	idSeq    atomic.Uint64
)

// NewRequestID returns a fresh correlation ID. Exported so the HTTP
// layer can stamp responses (timeouts included) even when tracing is
// disabled and no *Trace exists.
func NewRequestID() string {
	return fmt.Sprintf("%08x-%08x", idPrefix, uint32(idSeq.Add(1)))
}

// RequestID returns the sanitized caller-supplied ID, or a fresh one
// when it is empty or junk — the HTTP layer's ID source when tracing is
// disabled and Tracer.Start never runs.
func RequestID(clientID string) string {
	if id := sanitizeID(clientID); id != "" {
		return id
	}
	return NewRequestID()
}

// sanitizeID bounds and cleans a caller-supplied request ID so header
// junk cannot bloat the ring index or break log lines.
func sanitizeID(id string) string {
	const maxLen = 64
	if len(id) > maxLen {
		id = id[:maxLen]
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c < 0x21 || c > 0x7e { // reject spaces and control/non-ASCII bytes
			return ""
		}
	}
	return id
}

type ctxKey struct{}

// NewContext returns ctx carrying the trace (nil trace: ctx unchanged).
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext extracts the trace carried by NewContext, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

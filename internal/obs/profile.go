package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// ProfileRegistry is the fingerprint-keyed heavy-query registry: a
// bounded map from plan fingerprint to cumulative cost statistics,
// ranked by an exponentially decayed cost score so the top-K reflects
// what is expensive *now* rather than since boot. When full, recording
// a new fingerprint evicts the entry with the smallest decayed score —
// a cheap O(capacity) scan that only runs on insertion past the bound.
type ProfileRegistry struct {
	capacity int
	halfLife time.Duration

	mu        sync.Mutex
	entries   map[string]*profileEntry
	records   int64
	evictions int64

	// now is stubbed in tests to exercise decay deterministically.
	now func() time.Time
}

type profileEntry struct {
	count     int64
	sumDurNS  int64
	hist      Histogram // duration distribution, for p99
	sumCost   QueryCost
	lastTrace string

	score     float64 // decayed cumulative cost weight
	lastTouch time.Time
}

// QueryProfile is one registry entry's snapshot, as served by
// GET /api/queries/top.
type QueryProfile struct {
	Fingerprint string    `json:"fingerprint"`
	Count       int64     `json:"count"`
	MeanMs      float64   `json:"meanMs"`
	P99Ms       float64   `json:"p99Ms"`
	MeanCost    QueryCost `json:"meanCost"`
	TotalCost   QueryCost `json:"totalCost"`
	LastTraceID string    `json:"lastTraceId,omitempty"`
	// Score is the decay-weighted cumulative cost the ranking uses.
	Score float64 `json:"score"`
}

// NewProfileRegistry builds a registry holding at most capacity
// fingerprints with the given decay half-life.
func NewProfileRegistry(capacity int, halfLife time.Duration) *ProfileRegistry {
	if capacity <= 0 {
		capacity = defaultProfileCapacity
	}
	if halfLife <= 0 {
		halfLife = defaultDecayHalfLife
	}
	return &ProfileRegistry{
		capacity: capacity,
		halfLife: halfLife,
		entries:  make(map[string]*profileEntry),
		now:      time.Now,
	}
}

// decayFactor is 2^(-age/halfLife).
func (p *ProfileRegistry) decayFactor(age time.Duration) float64 {
	if age <= 0 {
		return 1
	}
	return math.Exp2(-float64(age) / float64(p.halfLife))
}

// Record folds one execution into the fingerprint's entry.
func (p *ProfileRegistry) Record(fingerprint, traceID string, dur time.Duration, c QueryCost) {
	if p == nil || fingerprint == "" {
		return
	}
	now := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.records++
	e := p.entries[fingerprint]
	if e == nil {
		if len(p.entries) >= p.capacity {
			p.evictColdestLocked(now)
		}
		e = &profileEntry{}
		p.entries[fingerprint] = e
	}
	e.count++
	e.sumDurNS += dur.Nanoseconds()
	e.hist.Observe(dur)
	e.sumCost.Add(c)
	if traceID != "" {
		e.lastTrace = traceID
	}
	e.score = e.score*p.decayFactor(now.Sub(e.lastTouch)) + c.Weight()
	e.lastTouch = now
}

// evictColdestLocked removes the entry with the smallest decayed score.
func (p *ProfileRegistry) evictColdestLocked(now time.Time) {
	var coldKey string
	coldScore := math.Inf(1)
	for k, e := range p.entries {
		s := e.score * p.decayFactor(now.Sub(e.lastTouch))
		if s < coldScore || (s == coldScore && k < coldKey) {
			coldScore, coldKey = s, k
		}
	}
	if coldKey != "" {
		delete(p.entries, coldKey)
		p.evictions++
	}
}

// Top snapshots the n highest-scoring profiles, heaviest first.
func (p *ProfileRegistry) Top(n int) []QueryProfile {
	if p == nil || n <= 0 {
		return nil
	}
	now := p.now()
	p.mu.Lock()
	out := make([]QueryProfile, 0, len(p.entries))
	for fp, e := range p.entries {
		q := QueryProfile{
			Fingerprint: fp,
			Count:       e.count,
			TotalCost:   e.sumCost,
			LastTraceID: e.lastTrace,
			Score:       e.score * p.decayFactor(now.Sub(e.lastTouch)),
		}
		if e.count > 0 {
			q.MeanMs = float64(e.sumDurNS) / float64(e.count) / 1e6
			div := func(v int64) int64 { return v / e.count }
			q.MeanCost = QueryCost{
				FactsScanned:     div(e.sumCost.FactsScanned),
				FactsMatched:     div(e.sumCost.FactsMatched),
				CellsTouched:     div(e.sumCost.CellsTouched),
				BitmapBytes:      div(e.sumCost.BitmapBytes),
				KeyColBytes:      div(e.sumCost.KeyColBytes),
				SharedSavedBytes: div(e.sumCost.SharedSavedBytes),
				CPUNs:            div(e.sumCost.CPUNs),
				SharedSavedNs:    div(e.sumCost.SharedSavedNs),
				CacheCreditNs:    div(e.sumCost.CacheCreditNs),
			}
		}
		q.P99Ms = e.hist.Quantile(0.99) * 1e3
		out = append(out, q)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Len returns the number of live entries.
func (p *ProfileRegistry) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Counters returns total records folded in and evictions performed.
func (p *ProfileRegistry) Counters() (records, evictions int64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.records, p.evictions
}

// Quantile returns an upper bound on the q-quantile latency in seconds,
// resolved to the histogram's power-of-two bucket bounds (the overflow
// bucket reports twice the last finite bound). Exact enough for p99
// dashboards; not for SLO math tighter than a factor of two.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	cum, count, _ := h.snapshot()
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(count)))
	if rank == 0 {
		rank = 1
	}
	for k := 0; k < histBuckets; k++ {
		if cum[k] >= rank {
			if k == histBuckets-1 {
				return 2 * bucketUpperSeconds(histBuckets-2)
			}
			return bucketUpperSeconds(k)
		}
	}
	return 2 * bucketUpperSeconds(histBuckets-2)
}

package obs

import (
	"sort"
	"sync"
	"time"
)

// ShardScan is the executor's stage-timing breakdown for one shard's
// portion of a coalesced batch (shard 0 on the unsharded path). The
// executor fills it with a handful of time.Now() calls per batch —
// never per fact — so the morsel loop stays untouched.
type ShardScan struct {
	Shard       int           // shard index (0 when unsharded)
	Facts       int           // fact rows scanned by this shard
	FilterMask  time.Duration // per-predicate bitmap fills + composition
	GroupDecode time.Duration // shared group-key column decode
	Accumulate  time.Duration // morsel scan + accumulate
	Merge       time.Duration // worker-partial merge
	Wall        time.Duration // whole shard scan, wall clock
}

// ScanTrace collects per-shard stage timings for one executor batch.
// The scheduler allocates one per traced (or metered) batch and passes
// it down through cube.BatchOptions; shard goroutines add to it
// concurrently. A nil *ScanTrace is a no-op recorder.
type ScanTrace struct {
	mu     sync.Mutex
	shards []ShardScan
	gather time.Duration
}

// AddShard records one shard's breakdown. Safe for concurrent use.
func (t *ScanTrace) AddShard(s ShardScan) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.shards = append(t.shards, s)
	t.mu.Unlock()
}

// AddGather accumulates merge/finalize time spent after the shard scans
// (cube.MergeFinalize on the sharded path, the finalize loop otherwise).
func (t *ScanTrace) AddGather(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.gather += d
	t.mu.Unlock()
}

// Snapshot returns the recorded shard breakdowns (ordered by shard
// index, then insertion) and the accumulated gather time.
func (t *ScanTrace) Snapshot() ([]ShardScan, time.Duration) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	shards := append([]ShardScan(nil), t.shards...)
	gather := t.gather
	t.mu.Unlock()
	sort.SliceStable(shards, func(i, j int) bool { return shards[i].Shard < shards[j].Shard })
	return shards, gather
}

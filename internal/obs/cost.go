package obs

import (
	"sort"
	"sync"
	"time"
)

// QueryCost is the resource-consumption vector attributed to one query:
// what the executor measured (facts, artifact bytes, result cells), the
// CPU nanoseconds the scheduler split out of the shared batch scan, and
// the credits sharing and caching earned the query. Every field is a
// plain additive counter so costs compose by Add — a sharded scan's cost
// is the sum of its per-shard partial costs, a batch's cost is the sum
// of its per-query attributions (the conservation law the tests pin).
type QueryCost struct {
	// FactsScanned / FactsMatched mirror Result.ScannedFacts/MatchedFacts.
	FactsScanned int64 `json:"factsScanned"`
	FactsMatched int64 `json:"factsMatched"`
	// CellsTouched counts distinct group cells materialized by finalize
	// (before any Limit truncation).
	CellsTouched int64 `json:"cellsTouched"`
	// BitmapBytes / KeyColBytes are this query's share of the filter
	// bitmaps and roll-up key columns freshly materialized by its scan.
	// Shared artifacts split evenly across the queries that use them, so
	// per-query shares sum exactly to the batch's build totals.
	BitmapBytes int64 `json:"bitmapBytes"`
	KeyColBytes int64 `json:"keyColBytes"`
	// SharedSavedBytes is the sharing discount on artifact bytes: what
	// the query would have built alone minus its attributed share.
	SharedSavedBytes int64 `json:"sharedSavedBytes"`
	// CPUNs is this query's share of the batch's per-stage scan CPU
	// (filter mask + group decode + accumulate + merge + gather), split
	// proportionally to facts scanned across the coalesced batch.
	CPUNs int64 `json:"cpuNs"`
	// SharedSavedNs is the coalescing discount: the batch's full scan
	// CPU minus this query's attributed share (zero for a lone query).
	SharedSavedNs int64 `json:"sharedSavedNs"`
	// CacheCreditNs is scan CPU avoided by result-cache hits, credited
	// from the cost stored with the cached result.
	CacheCreditNs int64 `json:"cacheCreditNs"`
}

// Add accumulates o into c.
func (c *QueryCost) Add(o QueryCost) {
	c.FactsScanned += o.FactsScanned
	c.FactsMatched += o.FactsMatched
	c.CellsTouched += o.CellsTouched
	c.BitmapBytes += o.BitmapBytes
	c.KeyColBytes += o.KeyColBytes
	c.SharedSavedBytes += o.SharedSavedBytes
	c.CPUNs += o.CPUNs
	c.SharedSavedNs += o.SharedSavedNs
	c.CacheCreditNs += o.CacheCreditNs
}

// Weight collapses the vector to one scalar for ranking: CPU time when
// the scheduler measured it, with facts scanned as a tie-breaker for
// costs recorded outside a scheduler batch (direct executor calls).
func (c QueryCost) Weight() float64 {
	return float64(c.CPUNs) + float64(c.FactsScanned)
}

// SplitCost divides c into parts shares that sum exactly to c: each
// field splits by integer division with the remainder units going to
// the earliest shares. Used when a deduplicated request fans out to
// several waiters — conservation holds across tenants.
func SplitCost(c QueryCost, parts int) []QueryCost {
	if parts <= 1 {
		return []QueryCost{c}
	}
	out := make([]QueryCost, parts)
	split := func(total int64, field func(*QueryCost) *int64) {
		q, r := total/int64(parts), total%int64(parts)
		for i := range out {
			v := q
			if int64(i) < r {
				v++
			}
			*field(&out[i]) += v
		}
	}
	split(c.FactsScanned, func(q *QueryCost) *int64 { return &q.FactsScanned })
	split(c.FactsMatched, func(q *QueryCost) *int64 { return &q.FactsMatched })
	split(c.CellsTouched, func(q *QueryCost) *int64 { return &q.CellsTouched })
	split(c.BitmapBytes, func(q *QueryCost) *int64 { return &q.BitmapBytes })
	split(c.KeyColBytes, func(q *QueryCost) *int64 { return &q.KeyColBytes })
	split(c.SharedSavedBytes, func(q *QueryCost) *int64 { return &q.SharedSavedBytes })
	split(c.CPUNs, func(q *QueryCost) *int64 { return &q.CPUNs })
	split(c.SharedSavedNs, func(q *QueryCost) *int64 { return &q.SharedSavedNs })
	split(c.CacheCreditNs, func(q *QueryCost) *int64 { return &q.CacheCreditNs })
	return out
}

// SplitTotal divides total nanoseconds (or any additive unit) across
// weights proportionally, with exact conservation: the cumulative-target
// method guarantees every share is non-negative and the shares sum to
// total, deterministically. Zero weights still receive a minimal share
// via the +1 smoothing the caller applies.
func SplitTotal(total int64, weights []int64) []int64 {
	shares := make([]int64, len(weights))
	if len(weights) == 0 || total <= 0 {
		return shares
	}
	var wsum float64
	for _, w := range weights {
		if w > 0 {
			wsum += float64(w)
		}
	}
	if wsum == 0 {
		// Degenerate: split evenly.
		q, r := total/int64(len(weights)), total%int64(len(weights))
		for i := range shares {
			shares[i] = q
			if int64(i) < r {
				shares[i]++
			}
		}
		return shares
	}
	var acc int64
	var cum float64
	for i, w := range weights {
		if w > 0 {
			cum += float64(w)
		}
		target := int64(float64(total) * cum / wsum)
		if i == len(weights)-1 {
			target = total
		}
		if target < acc {
			target = acc
		}
		if target > total {
			target = total
		}
		shares[i] = target - acc
		acc = target
	}
	return shares
}

// OtherTenant is the collapsed label for tenants past the cardinality
// cap, matching the HistogramVec overflow series so JSON aggregates and
// /metrics series line up.
const OtherTenant = "other"

// AccountantOptions sizes the cost-accounting layer.
type AccountantOptions struct {
	// ProfileCapacity bounds the heavy-query profile registry (0 =
	// default 128 fingerprints).
	ProfileCapacity int
	// DecayHalfLife is the half-life of the profile ranking score: a
	// profile's cumulative cost weight halves every period, so a
	// one-time expensive migration query eventually yields the top-K to
	// the queries that are expensive *now* (0 = default 10 minutes).
	DecayHalfLife time.Duration
	// TenantCap bounds the distinct per-tenant aggregate entries; past
	// it new tenants collapse into OtherTenant (0 = default 64).
	TenantCap int
}

const (
	defaultProfileCapacity = 128
	defaultDecayHalfLife   = 10 * time.Minute
	defaultTenantCap       = 64
)

// tenantAccount accumulates one tenant's cost totals.
type tenantAccount struct {
	queries   int64
	cacheHits int64
	cost      QueryCost
}

// TenantStat is one tenant's aggregate, as served by GET /api/tenants.
type TenantStat struct {
	Tenant string `json:"tenant"`
	// Queries counts every submission attributed to the tenant,
	// including result-cache hits.
	Queries      int64     `json:"queries"`
	CacheHits    int64     `json:"cacheHits"`
	CacheHitRate float64   `json:"cacheHitRate"`
	Cost         QueryCost `json:"cost"`
}

// Accountant attributes per-query costs to tenants and feeds the
// heavy-query profile registry. All methods are nil-safe and
// goroutine-safe; recording is a short critical section over plain
// counter adds.
type Accountant struct {
	opts AccountantOptions

	mu      sync.Mutex
	tenants map[string]*tenantAccount
	total   tenantAccount // global sums, for conservation checks and /metrics

	profiles *ProfileRegistry
}

// NewAccountant builds an accountant with the given bounds.
func NewAccountant(opts AccountantOptions) *Accountant {
	if opts.ProfileCapacity <= 0 {
		opts.ProfileCapacity = defaultProfileCapacity
	}
	if opts.DecayHalfLife <= 0 {
		opts.DecayHalfLife = defaultDecayHalfLife
	}
	if opts.TenantCap <= 0 {
		opts.TenantCap = defaultTenantCap
	}
	return &Accountant{
		opts:     opts,
		tenants:  make(map[string]*tenantAccount),
		profiles: NewProfileRegistry(opts.ProfileCapacity, opts.DecayHalfLife),
	}
}

// TenantCap returns the configured tenant-label cardinality cap.
func (a *Accountant) TenantCap() int {
	if a == nil {
		return 0
	}
	return a.opts.TenantCap
}

// tenantLocked returns (creating if needed) the account for tenant,
// collapsing new tenants into OtherTenant once the cap is reached.
func (a *Accountant) tenantLocked(tenant string) *tenantAccount {
	if t := a.tenants[tenant]; t != nil {
		return t
	}
	if len(a.tenants) >= a.opts.TenantCap {
		tenant = OtherTenant
		if t := a.tenants[tenant]; t != nil {
			return t
		}
	}
	t := &tenantAccount{}
	a.tenants[tenant] = t
	return t
}

// RecordQuery attributes one executed query's cost to a tenant and
// feeds the profile registry under the query's plan fingerprint.
func (a *Accountant) RecordQuery(tenant, fingerprint, traceID string, dur time.Duration, c QueryCost) {
	if a == nil {
		return
	}
	a.mu.Lock()
	t := a.tenantLocked(tenant)
	t.queries++
	t.cost.Add(c)
	a.total.queries++
	a.total.cost.Add(c)
	a.mu.Unlock()
	a.profiles.Record(fingerprint, traceID, dur, c)
}

// RecordCacheHit credits a tenant for a result-cache hit: the stored
// result's cost is the work the cache avoided, credited as CacheCreditNs
// (CPU) — the hit itself scans nothing, so no other field accrues.
func (a *Accountant) RecordCacheHit(tenant string, saved QueryCost) {
	if a == nil {
		return
	}
	credit := saved.CPUNs + saved.CacheCreditNs
	a.mu.Lock()
	t := a.tenantLocked(tenant)
	t.queries++
	t.cacheHits++
	t.cost.CacheCreditNs += credit
	a.total.queries++
	a.total.cacheHits++
	a.total.cost.CacheCreditNs += credit
	a.mu.Unlock()
}

// Tenants snapshots every tenant aggregate, most expensive first.
func (a *Accountant) Tenants() []TenantStat {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := make([]TenantStat, 0, len(a.tenants))
	for name, t := range a.tenants {
		s := TenantStat{Tenant: name, Queries: t.queries, CacheHits: t.cacheHits, Cost: t.cost}
		if t.queries > 0 {
			s.CacheHitRate = float64(t.cacheHits) / float64(t.queries)
		}
		out = append(out, s)
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		wi, wj := out[i].Cost.Weight(), out[j].Cost.Weight()
		if wi != wj {
			return wi > wj
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}

// Totals returns the global query count and summed cost across every
// tenant (including OtherTenant) — the right-hand side of the
// conservation law the tests assert.
func (a *Accountant) Totals() (queries int64, cost QueryCost) {
	if a == nil {
		return 0, QueryCost{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total.queries, a.total.cost
}

// TopQueries returns the n heaviest query profiles by decayed
// cumulative cost.
func (a *Accountant) TopQueries(n int) []QueryProfile {
	if a == nil {
		return nil
	}
	return a.profiles.Top(n)
}

// Profiles exposes the underlying registry (for metrics collectors).
func (a *Accountant) Profiles() *ProfileRegistry {
	if a == nil {
		return nil
	}
	return a.profiles
}

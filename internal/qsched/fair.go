package qsched

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"sdwp/internal/obs"
)

// This file is the scheduler's cost-driven resource manager: per-tenant
// weighted fair shares debited by attributed scan cost (deficit-weighted
// batch assembly), and the overload-control path that sheds over-share
// tenants with a retry hint before requests ever reach the 504 admission
// deadline.
//
// The fairness model: each tenant carries a decaying account of the scan
// cost attributed to its completed queries (usage), plus a provisional
// debit for queries already assembled into an in-flight scan (pending —
// an EWMA estimate of the tenant's per-query cost, reversed and replaced
// by the measured cost when the scan completes, so several batches
// assembled before any completion cannot over-admit one tenant). Batch
// assembly always admits the tenant with the lowest (usage + pending) /
// weight. Round-robin equalized admission *counts*; this equalizes
// admitted *cost*: a tenant whose queries each scan the whole table gets
// one slot for every N a cheap-query tenant gets, so both converge to
// equal attributed scan CPU per unit weight. The scheme is work-
// conserving — an over-share tenant still takes every slot no one else
// wants — so fairness costs no throughput.
//
// Cost units: when Options.Costs is wired (every engine), usage is the
// attributed scan CPU in nanoseconds (obs.QueryCost.CPUNs, the batch's
// measured CPU split proportionally to facts scanned). Without an
// accountant the scheduler falls back to facts scanned as the cost unit.
// Either way the unit is consistent per scheduler, and fairness only
// depends on ratios.
//
// Dedup note: waiters merged onto an identical queued request ride for
// free — the request's cost is charged to the tenant that enqueued it
// first. The cost accountant still splits the attributed cost across all
// waiting tenants (conservation); the fair-share ledger deliberately
// charges the instigator, since dedup'd joiners consumed no extra scan.

// DefaultFairShareHalfLife is the decay half-life of the per-tenant usage
// window when Options.FairShareHalfLife is unset: a tenant idle this long
// counts half as heavy, so a burst five half-lives old is forgiven and a
// returning tenant is not punished for yesterday's scans.
const DefaultFairShareHalfLife = 10 * time.Second

const (
	// minDebit floors the per-query cost estimate so a brand-new tenant
	// (estimate not yet learned) still accumulates pending debt during
	// assembly — without it every estimate-zero tenant would tie at score
	// zero forever and assembly would degenerate to FIFO.
	minDebit = 1
	// estimateAlpha is the EWMA weight of the newest measured per-query
	// cost in a tenant's estimate.
	estimateAlpha = 0.3
	// ewmaAlpha smooths the admission-wait and drain-rate signals the
	// overload controller sheds on.
	ewmaAlpha = 0.2
	// maxShedTenants bounds the per-tenant shed-counter map (and therefore
	// the sdwp_shed_total label cardinality): past this many distinct shed
	// tenants, new ones collapse into obs.OtherTenant.
	maxShedTenants = 64
	// minRetryAfter / maxRetryAfter clamp the Retry-After hint: never tell
	// a client "0" (it would hammer right back), never more than a minute
	// (the queue state a minute out is unknowable).
	minRetryAfter = time.Second
	maxRetryAfter = 60 * time.Second
	// maxWindow clamps SetWindow: the coalescing window is a latency
	// budget, and past ~100ms it is queueing, not batching.
	maxWindow = 100 * time.Millisecond
)

// ErrOverloaded is the base error of queries shed by the overload
// controller: the queue is past Options.MaxQueueDepth (or admission waits
// are past Options.TargetQueueWait) and the tenant is at or over its fair
// share. Callers match it with errors.Is; the concrete *OverloadError
// (errors.As) carries the Retry-After hint. The web layer maps it to
// HTTP 429.
var ErrOverloaded = errors.New("qsched: scheduler overloaded, query shed")

// Shed reasons (OverloadError.Reason, the reason label of
// sdwp_shed_total).
const (
	// ShedQueueDepth: the admission queue was at or past
	// Options.MaxQueueDepth.
	ShedQueueDepth = "queue_depth"
	// ShedQueueWait: the smoothed admission wait was past
	// Options.TargetQueueWait.
	ShedQueueWait = "queue_wait"
)

// OverloadError is the structured form of a shed: why, how deep the queue
// was, and when the client should retry (computed from the observed drain
// rate, clamped to [1s, 60s]).
type OverloadError struct {
	// Reason is ShedQueueDepth or ShedQueueWait.
	Reason string
	// QueueDepth is the admission-queue depth at the shed decision.
	QueueDepth int
	// RetryAfter estimates when the backlog will have drained: queue depth
	// over the smoothed admission rate. The web layer serves it as the
	// Retry-After header (whole seconds, rounded up).
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v (%s: depth %d, retry after %s)",
		ErrOverloaded, e.Reason, e.QueueDepth, e.RetryAfter.Round(time.Second))
}

// Unwrap makes errors.Is(err, ErrOverloaded) work on the structured form.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// tenant is one userKey's scheduling state: its queued requests and its
// fair-share ledger. All fields are guarded by Scheduler.mu.
type tenant struct {
	// weight is the tenant's configured share (Options.TenantWeights,
	// default 1): usage is normalized by it, so weight 2 sustains twice
	// the attributed scan cost of weight 1 before losing priority.
	weight float64
	// usage is the decayed attributed cost of completed queries (CPU ns,
	// or facts scanned without an accountant — see the file comment).
	usage float64
	// lastDecay is when usage was last decayed (decay is applied lazily).
	lastDecay time.Time
	// pending is the provisional debit of assembled-but-unfinished
	// queries: estimate is added at assembly and reversed at completion,
	// when the measured cost is charged into usage instead.
	pending float64
	// estimate is the EWMA per-query cost, the provisional debit unit.
	estimate float64
	// fifo is the tenant's admitted requests in arrival order.
	fifo []*request
}

// tenantLocked returns (creating if needed) the user's scheduling state.
// Callers hold s.mu.
func (s *Scheduler) tenantLocked(user string, now time.Time) *tenant {
	t := s.tenants[user]
	if t == nil {
		w := s.opts.TenantWeights[user]
		if w <= 0 {
			w = 1
		}
		t = &tenant{weight: w, estimate: minDebit, lastDecay: now}
		s.tenants[user] = t
	}
	return t
}

// halfLife returns the usage-decay half-life.
func (s *Scheduler) halfLife() time.Duration {
	if s.opts.FairShareHalfLife > 0 {
		return s.opts.FairShareHalfLife
	}
	return DefaultFairShareHalfLife
}

// decayTenantLocked applies the lazy exponential decay to a tenant's
// usage window. Callers hold s.mu.
func (s *Scheduler) decayTenantLocked(t *tenant, now time.Time) {
	dt := now.Sub(t.lastDecay)
	if dt <= 0 {
		return
	}
	t.usage *= math.Exp2(-dt.Seconds() / s.halfLife().Seconds())
	t.lastDecay = now
}

// scoreLocked is the tenant's normalized fair-share position: decayed
// usage plus provisional debits, per unit weight. Assembly admits the
// minimum; the overload controller sheds tenants at or above the mean.
// Callers hold s.mu.
func (s *Scheduler) scoreLocked(t *tenant, now time.Time) float64 {
	s.decayTenantLocked(t, now)
	return (t.usage + t.pending) / t.weight
}

// costUnits extracts the fair-share charge from one executed result:
// attributed scan CPU when the accountant wired the split, facts scanned
// otherwise (see the file comment on units).
func (s *Scheduler) costUnits(c obs.QueryCost) float64 {
	if s.opts.Costs != nil {
		return float64(c.CPUNs)
	}
	return float64(c.FactsScanned + 1)
}

// settleBatchLocked reverses the batch's provisional debits and charges
// the measured per-query cost into each owning tenant's decayed usage
// window, updating the per-query estimates. Callers hold s.mu.
func (s *Scheduler) settleBatchLocked(batch []*request, costs []obs.QueryCost, now time.Time) {
	for i, r := range batch {
		t := s.tenants[r.user]
		if t == nil {
			continue
		}
		t.pending -= r.debit
		if t.pending < 0 {
			t.pending = 0
		}
		if costs == nil {
			continue // scan failed: the debit is reversed, nothing is charged
		}
		actual := s.costUnits(costs[i])
		s.decayTenantLocked(t, now)
		t.usage += actual
		t.estimate = (1-estimateAlpha)*t.estimate + estimateAlpha*actual
		if t.estimate < minDebit {
			t.estimate = minDebit
		}
	}
	s.pruneTenantsLocked(now)
}

// pruneTenantsLocked drops tenants that are idle (no queued work, no
// in-flight debit) and whose decayed usage has faded to noise, bounding
// the tenant map under userKey churn. Callers hold s.mu.
func (s *Scheduler) pruneTenantsLocked(now time.Time) {
	if len(s.tenants) <= maxShedTenants {
		return
	}
	for user, t := range s.tenants {
		if len(t.fifo) == 0 && t.pending == 0 {
			s.decayTenantLocked(t, now)
			if t.usage < 1 {
				delete(s.tenants, user)
			}
		}
	}
}

// pickTenantLocked returns the active tenant with the lowest fair-share
// score — ties break by arrival order (s.active), which preserves exact
// round-robin behavior when every tenant's cost profile is identical.
// Callers hold s.mu; s.active must be non-empty.
func (s *Scheduler) pickTenantLocked(now time.Time) (idx int, user string) {
	best := math.Inf(1)
	for i, u := range s.active {
		if sc := s.scoreLocked(s.tenants[u], now); sc < best {
			best, idx, user = sc, i, u
		}
	}
	return idx, user
}

// --- overload control ---

// breachLocked reports whether an overload threshold is currently
// breached, and which. Callers hold s.mu.
func (s *Scheduler) breachLocked() (string, bool) {
	if d := s.opts.MaxQueueDepth; d > 0 && s.queued >= d {
		return ShedQueueDepth, true
	}
	if w := s.opts.TargetQueueWait; w > 0 && s.waitEWMA > float64(w) {
		return ShedQueueWait, true
	}
	return "", false
}

// overShareLocked reports whether the tenant is at or above the mean
// fair-share score — the shed eligibility test. Under-share tenants are
// never shed (they are owed capacity); at breach with a single tenant, or
// with every tenant equal, the flooding tenants are exactly the ones at
// the mean. Callers hold s.mu.
func (s *Scheduler) overShareLocked(user string, now time.Time) bool {
	if len(s.tenants) == 0 {
		return true // breach with no ledger at all: everyone is the flood
	}
	var sum float64
	for _, t := range s.tenants {
		sum += s.scoreLocked(t, now)
	}
	mean := sum / float64(len(s.tenants))
	t := s.tenants[user]
	if t == nil {
		return mean == 0 // an unseen tenant has score 0: over-share only if everyone is
	}
	return s.scoreLocked(t, now) >= mean
}

// retryAfterLocked estimates when the backlog will have drained: queue
// depth over the smoothed admission rate, clamped to [minRetryAfter,
// maxRetryAfter]. Callers hold s.mu.
func (s *Scheduler) retryAfterLocked() time.Duration {
	drain := s.drainEWMA
	if drain < 0.1 {
		drain = 0.1 // cold start / stalled queue: clamp below, not divide by zero
	}
	ra := time.Duration(float64(s.queued) / drain * float64(time.Second))
	if ra < minRetryAfter {
		ra = minRetryAfter
	}
	if ra > maxRetryAfter {
		ra = maxRetryAfter
	}
	return ra
}

// maybeShed is the admission-time overload gate: when an overload
// threshold is breached and the tenant is at or over its fair share, the
// query is refused with *OverloadError instead of joining the queue it
// would only time out of. Runs before compilation — shed traffic costs
// one mutex hold, nothing else. Returns nil to admit.
func (s *Scheduler) maybeShed(user string) error {
	if s.opts.MaxQueueDepth <= 0 && s.opts.TargetQueueWait <= 0 {
		return nil
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	reason, breached := s.breachLocked()
	if !breached || !s.overShareLocked(user, now) {
		return nil
	}
	s.recordShedLocked(user, reason, now)
	return &OverloadError{Reason: reason, QueueDepth: s.queued, RetryAfter: s.retryAfterLocked()}
}

// recordShedLocked counts one shed (per tenant and reason, collapsing
// past maxShedTenants into obs.OtherTenant) and bumps the decaying
// shed-rate window. Callers hold s.mu.
func (s *Scheduler) recordShedLocked(user, reason string, now time.Time) {
	s.shedTotal++
	byReason := s.shedCounts[user]
	if byReason == nil {
		if len(s.shedCounts) >= maxShedTenants {
			user = obs.OtherTenant
			byReason = s.shedCounts[user]
		}
		if byReason == nil {
			byReason = map[string]int64{}
			s.shedCounts[user] = byReason
		}
	}
	byReason[reason]++
	s.decayShedLocked(now)
	s.shedRecent++
}

// decayShedLocked ages the shed-rate window (same half-life as the fair
// shares). Callers hold s.mu.
func (s *Scheduler) decayShedLocked(now time.Time) {
	dt := now.Sub(s.shedDecayAt)
	if dt <= 0 {
		return
	}
	s.shedRecent *= math.Exp2(-dt.Seconds() / s.halfLife().Seconds())
	s.shedDecayAt = now
}

// shedRateLocked converts the decaying shed window into sheds/second: a
// steady shed rate r settles the window at r·H/ln2, so rate = window·
// ln2/H. Callers hold s.mu.
func (s *Scheduler) shedRateLocked(now time.Time) float64 {
	s.decayShedLocked(now)
	return s.shedRecent * math.Ln2 / s.halfLife().Seconds()
}

// TenantShare is one tenant's fair-share position in Stats: its weight,
// decayed attributed usage, in-flight provisional debit, queued requests,
// and its fraction of the total normalized usage (0 when idle).
type TenantShare struct {
	Tenant string `json:"tenant"`
	// Weight is the configured share (Options.TenantWeights, default 1).
	Weight float64 `json:"weight"`
	// UsageCost is the decayed attributed cost window (CPU ns with an
	// accountant, facts scanned without).
	UsageCost float64 `json:"usageCost"`
	// PendingCost is the provisional debit of assembled-but-unfinished
	// queries.
	PendingCost float64 `json:"pendingCost"`
	// Queued is the tenant's admission-queue depth right now.
	Queued int `json:"queued"`
	// Share is the tenant's fraction of the summed normalized usage —
	// ~equal across backlogged tenants of equal weight when fair admission
	// is doing its job.
	Share float64 `json:"share"`
}

// fairSharesLocked snapshots every tenant's ledger, heaviest share first.
// Callers hold s.mu.
func (s *Scheduler) fairSharesLocked(now time.Time) []TenantShare {
	if len(s.tenants) == 0 {
		return nil
	}
	out := make([]TenantShare, 0, len(s.tenants))
	var total float64
	for user, t := range s.tenants {
		sc := s.scoreLocked(t, now)
		total += sc
		out = append(out, TenantShare{
			Tenant: user, Weight: t.weight,
			UsageCost: t.usage, PendingCost: t.pending,
			Queued: len(t.fifo), Share: sc,
		})
	}
	for i := range out {
		if total > 0 {
			out[i].Share /= total
		} else {
			out[i].Share = 0
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}

package qsched

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdwp/internal/cube"
	"sdwp/internal/obs"
)

// TestCostWeightedAssembly drives the assembler directly with two tenants
// of equal weight but 10:1 learned per-query cost estimates: deficit
// scheduling must give the cheap tenant ~10 slots for every expensive one,
// not alternate per count.
func TestCostWeightedAssembly(t *testing.T) {
	s := &Scheduler{tenants: map[string]*tenant{}, byKey: map[string]*request{}}
	enqueue := func(user string, n int) {
		for i := 0; i < n; i++ {
			s.enqueueLocked(&request{key: fmt.Sprintf("%s-%d", user, i), user: user}, user)
		}
	}
	enqueue("pricey", 4)
	enqueue("cheap", 4)
	s.tenants["pricey"].estimate = 10 // learned: each query costs 10 units
	s.tenants["cheap"].estimate = 1

	batch := s.assembleLocked(6)
	var order []string
	for _, r := range batch {
		order = append(order, r.key)
	}
	// pricey-0 ties at score 0 and goes first (arrival order), debiting 10;
	// cheap then owns the next 4 slots (scores 1..4 < 10) before pricey is
	// cheapest again.
	want := []string{"pricey-0", "cheap-0", "cheap-1", "cheap-2", "cheap-3", "pricey-1"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("assembly order = %v, want %v", order, want)
	}
	// Provisional debits must match what assembly charged.
	if p := s.tenants["pricey"].pending; p != 20 {
		t.Errorf("pricey pending = %v, want 20", p)
	}
	if p := s.tenants["cheap"].pending; p != 4 {
		t.Errorf("cheap pending = %v, want 4", p)
	}
}

// TestWeightedAssembly gives tenant A twice the weight of tenant B under
// identical cost profiles: A must get exactly two slots for each of B's.
func TestWeightedAssembly(t *testing.T) {
	s := &Scheduler{
		opts:    Options{TenantWeights: map[string]float64{"A": 2, "B": 1}},
		tenants: map[string]*tenant{}, byKey: map[string]*request{},
	}
	for i := 0; i < 6; i++ {
		s.enqueueLocked(&request{key: fmt.Sprintf("A-%d", i), user: "A"}, "A")
	}
	for i := 0; i < 6; i++ {
		s.enqueueLocked(&request{key: fmt.Sprintf("B-%d", i), user: "B"}, "B")
	}
	batch := s.assembleLocked(9)
	counts := map[string]int{}
	for _, r := range batch {
		counts[r.user]++
	}
	if counts["A"] != 6 || counts["B"] != 3 {
		t.Errorf("slots A=%d B=%d, want 6/3 (weight 2:1)", counts["A"], counts["B"])
	}
}

// TestSettleReplacesProvisionalDebit checks the debit lifecycle: assembly
// charges the estimate into pending, settle reverses it and charges the
// measured cost into usage (updating the estimate) — or, on a failed scan,
// reverses the debit and charges nothing.
func TestSettleReplacesProvisionalDebit(t *testing.T) {
	s := &Scheduler{tenants: map[string]*tenant{}, byKey: map[string]*request{}}
	s.enqueueLocked(&request{key: "A-0", user: "A"}, "A")
	batch := s.assembleLocked(1)
	if len(batch) != 1 {
		t.Fatalf("batch size = %d, want 1", len(batch))
	}
	tn := s.tenants["A"]
	if tn.pending != minDebit {
		t.Fatalf("pending after assembly = %v, want %v", tn.pending, float64(minDebit))
	}

	now := time.Now()
	s.settleBatchLocked(batch, []obs.QueryCost{{FactsScanned: 99}}, now)
	if tn.pending != 0 {
		t.Errorf("pending after settle = %v, want 0", tn.pending)
	}
	if tn.usage != 100 { // FactsScanned+1 without an accountant
		t.Errorf("usage after settle = %v, want 100", tn.usage)
	}
	wantEst := (1-estimateAlpha)*minDebit + estimateAlpha*100
	if tn.estimate != wantEst {
		t.Errorf("estimate after settle = %v, want %v", tn.estimate, wantEst)
	}

	// A failed scan (nil costs) reverses the debit without charging.
	s.enqueueLocked(&request{key: "A-1", user: "A"}, "A")
	batch = s.assembleLocked(1)
	usage, est := tn.usage, tn.estimate
	s.settleBatchLocked(batch, nil, now)
	if tn.pending != 0 {
		t.Errorf("pending after failed settle = %v, want 0", tn.pending)
	}
	if tn.usage != usage || tn.estimate != est {
		t.Errorf("failed settle charged usage/estimate: %v/%v, want %v/%v",
			tn.usage, tn.estimate, usage, est)
	}
}

// TestFairnessSkewedCost is the end-to-end fairness property: two tenants
// of equal weight with standing backlogs, one submitting full-table
// queries and one view-restricted queries scanning ~1/15 of the facts.
// Cost-fair admission must drain the cheap tenant's whole backlog while
// admitting only the few expensive queries its attributed cost pays for —
// per-count round-robin would interleave them ~1:1 instead.
func TestFairnessSkewedCost(t *testing.T) {
	ds := testDataset(t)
	v := cube.NewView(ds.Cube)
	if err := v.SelectMember("Store", "City", 0); err != nil {
		t.Fatal(err)
	}
	heavyProbe, err := ds.Cube.Execute(countQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	lightProbe, err := ds.Cube.Execute(countQuery, v)
	if err != nil {
		t.Fatal(err)
	}
	if lightProbe.MatchedFacts*5 > heavyProbe.MatchedFacts {
		t.Fatalf("light view matches %d of %d facts: not skewed enough for the property",
			lightProbe.MatchedFacts, heavyProbe.MatchedFacts)
	}

	// A gated executor pins the first scan so both backlogs build before
	// any scheduling decision; MaxBatch 4 keeps batch slots scarce.
	ge := &gatedExec{Cube: ds.Cube, entered: make(chan struct{}, 256), release: make(chan struct{})}
	s := New(ge, Options{Window: 0, MaxInFlight: 1, MaxBatch: 4})
	defer s.Close()

	const perTenant = 60
	type completion struct {
		user string
		seq  int64
		cost int64
	}
	var done atomic.Int64
	var seq atomic.Int64
	results := make(chan completion, 2*perTenant)
	errs := make(chan error, 2*perTenant)
	var wg sync.WaitGroup
	submit := func(user string, view *cube.View) {
		defer wg.Done()
		res, err := s.Submit(cityQuery(int(seq.Add(1))), view, user)
		if err != nil {
			errs <- err
			return
		}
		results <- completion{user: user, seq: done.Add(1), cost: res.Cost.FactsScanned + 1}
	}

	// The first heavy query enters the stalled scan and holds the slot.
	wg.Add(1)
	go submit("heavy", nil)
	<-ge.entered
	for i := 1; i < perTenant; i++ {
		wg.Add(2)
		go submit("heavy", nil)
		go submit("light", v)
	}
	wg.Add(1)
	go submit("light", v)
	waitFor(t, "backlogs to build", func() bool {
		return s.Stats().QueueDepth == 2*perTenant-1
	})

	close(ge.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	close(results)

	var lastLight int64
	var heavySeqs []int64
	lightDone := 0
	for c := range results {
		if c.user == "light" {
			if c.seq > lastLight {
				lastLight = c.seq
			}
			lightDone++
		} else {
			heavySeqs = append(heavySeqs, c.seq)
		}
	}
	if len(heavySeqs) != perTenant || lightDone != perTenant {
		t.Fatalf("completions: %d heavy, %d light, want %d each", len(heavySeqs), lightDone, perTenant)
	}
	heavyBefore := 0
	for _, hs := range heavySeqs {
		if hs < lastLight {
			heavyBefore++
		}
	}
	// Light's whole backlog costs about as much as two full-table scans, so
	// only a handful of heavy queries should be admitted alongside it: the
	// pinned first query, the learning-transient batch, and the cost-paced
	// trickle. Round-robin would finish ~all 60 heavy queries first.
	t.Logf("heavy queries completed before light's backlog drained: %d of %d", heavyBefore, perTenant)
	if heavyBefore > 15 {
		t.Errorf("heavy got %d slots while light still had backlog, want ≤15 (cost-fair pacing)", heavyBefore)
	}
	// Snapshot consistency: every live tenant's share is normalized.
	var total float64
	for _, sh := range s.Stats().FairShares {
		if sh.Share < 0 || sh.Share > 1 {
			t.Errorf("tenant %s share = %v, want within [0,1]", sh.Tenant, sh.Share)
		}
		total += sh.Share
	}
	if total > 1.0001 {
		t.Errorf("fair shares sum to %v, want ≤1", total)
	}
}

// gatedExec wraps the cube so a test can hold scans in flight: every scan
// announces itself on entered and blocks until release is closed.
type gatedExec struct {
	*cube.Cube
	entered chan struct{}
	release chan struct{}
}

func (g *gatedExec) ExecuteBatchCompiledOpt(cqs []*cube.CompiledQuery, vs []*cube.View, opts cube.BatchOptions) ([]*cube.Result, cube.SharingStats, error) {
	g.entered <- struct{}{}
	<-g.release
	return g.Cube.ExecuteBatchCompiledOpt(cqs, vs, opts)
}

// TestShedStorm fills the admission queue to MaxQueueDepth behind a stalled
// scan and checks the overload contract: the flooding tenant is refused
// with ErrOverloaded carrying a sane Retry-After, an under-share tenant is
// still admitted, the shed counters are consistent in any Stats snapshot,
// and everything drains cleanly — no goroutine leaks — once the scan
// unblocks and the scheduler closes.
func TestShedStorm(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ds := testDataset(t)
	ge := &gatedExec{Cube: ds.Cube, entered: make(chan struct{}, 16), release: make(chan struct{})}
	const depth = 4
	s := New(ge, Options{Window: 0, MaxInFlight: 1, MaxQueueDepth: depth})

	results := make(chan error, depth+2)
	submit := func(user string, i int) {
		_, err := s.Submit(cityQuery(i), nil, user)
		results <- err
	}

	// One query enters the (stalled) scan and pins the in-flight slot.
	go submit("flood", 0)
	<-ge.entered

	// The flood fills the queue to the threshold.
	for i := 1; i <= depth; i++ {
		go submit("flood", i)
	}
	waitFor(t, "queue to fill", func() bool { return s.Stats().QueueDepth == depth })

	// The next flood query must be shed, structured and bounded.
	_, err := s.Submit(cityQuery(depth+1), nil, "flood")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("flooded submit error = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v does not unwrap to *OverloadError", err)
	}
	if oe.Reason != ShedQueueDepth {
		t.Errorf("shed reason = %q, want %q", oe.Reason, ShedQueueDepth)
	}
	if oe.QueueDepth < depth {
		t.Errorf("shed queue depth = %d, want ≥ %d", oe.QueueDepth, depth)
	}
	if oe.RetryAfter < minRetryAfter || oe.RetryAfter > maxRetryAfter {
		t.Errorf("Retry-After = %v, want within [%v, %v]", oe.RetryAfter, minRetryAfter, maxRetryAfter)
	}

	// The snapshot is taken under one lock: the per-tenant breakdown always
	// sums to the total, and this shed is attributed to the flooder.
	st := s.Stats()
	if st.ShedTotal != 1 {
		t.Errorf("ShedTotal = %d, want 1", st.ShedTotal)
	}
	var sum int64
	for _, byReason := range st.ShedByTenant {
		for _, n := range byReason {
			sum += n
		}
	}
	if sum != st.ShedTotal {
		t.Errorf("sum over ShedByTenant = %d != ShedTotal %d (torn snapshot)", sum, st.ShedTotal)
	}
	if st.ShedByTenant["flood"][ShedQueueDepth] != 1 {
		t.Errorf("ShedByTenant[flood][%s] = %d, want 1", ShedQueueDepth, st.ShedByTenant["flood"][ShedQueueDepth])
	}
	if st.ShedRatePerSec <= 0 {
		t.Errorf("ShedRatePerSec = %v, want > 0 right after a shed", st.ShedRatePerSec)
	}

	// An under-share tenant is never shed: it queues past the threshold.
	go submit("light", 50)
	waitFor(t, "under-share tenant to be admitted", func() bool {
		return s.Stats().QueueDepth == depth+1
	})

	// Unblock the scan; everything queued must complete without error.
	close(ge.release)
	for drained := 0; drained < depth+2; drained++ {
		select {
		case err := <-results:
			if err != nil {
				t.Errorf("queued query failed after drain: %v", err)
			}
		case <-ge.entered: // later batches passing the gate
			drained--
		case <-time.After(5 * time.Second):
			t.Fatal("timed out draining queued queries")
		}
	}
	s.Close()
	waitFor(t, "goroutines to drain after Close", func() bool {
		runtime.Gosched()
		return runtime.NumGoroutine() <= baseline+2
	})
}

// waitFor polls cond until it holds or the test deadline budget runs out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSetWindowClamp pins the runtime window knob's clamp to [0, maxWindow]
// and its visibility through Window() and Stats.
func TestSetWindowClamp(t *testing.T) {
	s := New(nil, Options{Disabled: true, Window: time.Millisecond})
	defer s.Close()
	if got := s.Window(); got != time.Millisecond {
		t.Errorf("initial window = %v, want 1ms", got)
	}
	s.SetWindow(-5 * time.Millisecond)
	if got := s.Window(); got != 0 {
		t.Errorf("window after negative set = %v, want 0", got)
	}
	s.SetWindow(time.Second)
	if got := s.Window(); got != maxWindow {
		t.Errorf("window after oversized set = %v, want clamp %v", got, maxWindow)
	}
	s.SetWindow(250 * time.Microsecond)
	if got := s.Stats().CoalesceWindowNs; got != 250*1000 {
		t.Errorf("Stats.CoalesceWindowNs = %d, want 250000", got)
	}
}

// TestResizeResultCache shrinks the live cache below its footprint and
// checks immediate eviction, plus the disabled-cache and non-positive
// no-ops.
func TestResizeResultCache(t *testing.T) {
	s := New(nil, Options{Disabled: true, CacheBytes: 1 << 20})
	defer s.Close()
	res := &cube.Result{Rows: []cube.Row{{Values: []float64{1}}}}
	per := entrySize("k00", res)
	for i := 0; i < 8; i++ {
		s.cache.put(fmt.Sprintf("k%02d", i), res)
	}
	if _, _, _, bytes, entries := s.cache.stats(); entries != 8 || bytes != 8*per {
		t.Fatalf("cache holds %d entries / %d bytes, want 8 / %d", entries, bytes, 8*per)
	}

	s.ResizeResultCache(3 * per)
	if got := s.Stats().ResultCacheCapBytes; got != 3*per {
		t.Errorf("cap after resize = %d, want %d", got, 3*per)
	}
	_, _, evictions, bytes, entries := s.cache.stats()
	if entries != 3 || bytes != 3*per {
		t.Errorf("after shrink: %d entries / %d bytes, want 3 / %d", entries, bytes, 3*per)
	}
	if evictions != 5 {
		t.Errorf("evictions = %d, want 5", evictions)
	}
	// The survivors are the most recently used.
	if _, ok := s.cache.get("k07"); !ok {
		t.Error("most recent entry evicted by shrink")
	}
	if _, ok := s.cache.get("k00"); ok {
		t.Error("least recent entry survived shrink")
	}

	// Non-positive sizes and a disabled cache are no-ops, not panics.
	s.ResizeResultCache(0)
	if got := s.cache.capBytes(); got != 3*per {
		t.Errorf("cap after resize(0) = %d, want unchanged %d", got, 3*per)
	}
	off := New(nil, Options{Disabled: true})
	defer off.Close()
	off.ResizeResultCache(1 << 20)
	if off.cache != nil {
		t.Error("resize turned a disabled cache on")
	}
}

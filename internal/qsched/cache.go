package qsched

import (
	"container/list"
	"sync"

	"sdwp/internal/cube"
)

// resultCache is a byte-bounded LRU over immutable query results. Keys are
// the scheduler's (view id, view epoch, plan fingerprint) triples, so a
// view mutation retires all of that view's entries simply by never looking
// them up again — old-epoch entries age out through normal LRU pressure.
type resultCache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key  string
	res  *cube.Result
	size int64
}

func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{max: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached result for key and marks it most recently used.
// The returned Result is shared and must be treated as immutable.
func (c *resultCache) get(key string) (*cube.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// entryOverhead approximates the per-entry bookkeeping cost beyond the
// result itself: the cacheEntry struct, its list.Element, and the map slot.
const entryOverhead = 128

// entrySize is what one cached entry charges against the byte budget: the
// result, its key string, and the fixed bookkeeping overhead.
func entrySize(key string, res *cube.Result) int64 {
	return resultSize(res) + int64(len(key)) + entryOverhead
}

// put inserts (or refreshes) a result, evicting least-recently-used entries
// until the byte budget holds. Results larger than the whole budget are not
// cached at all.
func (c *resultCache) put(key string, res *cube.Result) {
	size := entrySize(key, res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.max { // checked under the lock: max is mutable via resize
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += size - e.size
		e.res, e.size = res, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, size: size})
		c.bytes += size
	}
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// stats returns the cache counters and current footprint.
func (c *resultCache) stats() (hits, misses, evictions, bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.bytes, len(c.items)
}

// capBytes returns the current byte budget (mutable via resize).
func (c *resultCache) capBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.max
}

// resize retunes the byte budget at runtime — the adaptive tuner's
// hit-rate knob — evicting least-recently-used entries immediately when
// shrinking below the current footprint.
func (c *resultCache) resize(maxBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.max = maxBytes
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// doorkeeper is the result cache's admission filter: a result is cached
// only once its plan fingerprint has been requested at least twice, so
// one-off exploratory queries pass through without evicting hot entries.
// It is keyed by the bare plan fingerprint (not the view epoch), so a
// recurring dashboard tile stays admitted across selections and across
// users. Two map generations bound the footprint: when the current
// generation fills up it becomes the old one and a fresh map starts, which
// forgets fingerprints roughly FIFO without ever scanning.
type doorkeeper struct {
	mu       sync.Mutex
	capacity int
	cur, old map[string]struct{}
}

func newDoorkeeper(capacity int) *doorkeeper {
	return &doorkeeper{capacity: capacity, cur: map[string]struct{}{}}
}

// request records one request for the fingerprint and reports whether it
// had been requested before (= the next put for it may cache).
func (d *doorkeeper) request(fp string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.cur[fp]; ok {
		return true
	}
	if _, ok := d.old[fp]; ok {
		d.cur[fp] = struct{}{} // keep hot fingerprints in the fresh gen
		return true
	}
	if len(d.cur) >= d.capacity {
		d.old = d.cur
		d.cur = map[string]struct{}{}
	}
	d.cur[fp] = struct{}{}
	return false
}

// errCache is the negative cache for invalid queries: compile errors keyed
// by query fingerprint. Validation depends only on the cube schema — never
// on view state — so entries are epoch-agnostic; the bounded FIFO simply
// forgets old mistakes. A hit answers a repeated malformed query without
// re-deriving the error or touching the coalesce queue.
type errCache struct {
	mu       sync.Mutex
	capacity int
	m        map[string]error
	order    []string // insertion order, the FIFO eviction queue
}

func newErrCache(capacity int) *errCache {
	return &errCache{capacity: capacity, m: map[string]error{}}
}

// get returns the cached compile error for the fingerprint, if any.
func (c *errCache) get(fp string) (error, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	err, ok := c.m[fp]
	return err, ok
}

// put records a compile error, evicting the oldest entry over capacity.
func (c *errCache) put(fp string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[fp]; ok {
		return
	}
	if len(c.m) >= c.capacity && len(c.order) > 0 {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
	}
	c.m[fp] = err
	c.order = append(c.order, fp)
}

// size returns the number of cached errors.
func (c *errCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// resultSize approximates a Result's memory footprint: struct and slice
// headers plus string bytes and 8 bytes per aggregate value. It
// deliberately overcounts a little (headers rounded up) so the byte bound
// is conservative.
func resultSize(r *cube.Result) int64 {
	const (
		structOverhead = 96
		sliceHeader    = 24
		stringHeader   = 16
	)
	size := int64(structOverhead)
	for _, s := range r.GroupCols {
		size += stringHeader + int64(len(s))
	}
	for _, s := range r.AggCols {
		size += stringHeader + int64(len(s))
	}
	for _, row := range r.Rows {
		size += 2 * sliceHeader
		for _, g := range row.Groups {
			size += stringHeader + int64(len(g))
		}
		size += 8 * int64(len(row.Values))
	}
	return size
}

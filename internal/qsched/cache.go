package qsched

import (
	"container/list"
	"sync"

	"sdwp/internal/cube"
)

// resultCache is a byte-bounded LRU over immutable query results. Keys are
// the scheduler's (view id, view epoch, plan fingerprint) triples, so a
// view mutation retires all of that view's entries simply by never looking
// them up again — old-epoch entries age out through normal LRU pressure.
type resultCache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key  string
	res  *cube.Result
	size int64
}

func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{max: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached result for key and marks it most recently used.
// The returned Result is shared and must be treated as immutable.
func (c *resultCache) get(key string) (*cube.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// entryOverhead approximates the per-entry bookkeeping cost beyond the
// result itself: the cacheEntry struct, its list.Element, and the map slot.
const entryOverhead = 128

// entrySize is what one cached entry charges against the byte budget: the
// result, its key string, and the fixed bookkeeping overhead.
func entrySize(key string, res *cube.Result) int64 {
	return resultSize(res) + int64(len(key)) + entryOverhead
}

// put inserts (or refreshes) a result, evicting least-recently-used entries
// until the byte budget holds. Results larger than the whole budget are not
// cached at all.
func (c *resultCache) put(key string, res *cube.Result) {
	size := entrySize(key, res)
	if size > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += size - e.size
		e.res, e.size = res, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, size: size})
		c.bytes += size
	}
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// stats returns the cache counters and current footprint.
func (c *resultCache) stats() (hits, misses, evictions, bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.bytes, len(c.items)
}

// resultSize approximates a Result's memory footprint: struct and slice
// headers plus string bytes and 8 bytes per aggregate value. It
// deliberately overcounts a little (headers rounded up) so the byte bound
// is conservative.
func resultSize(r *cube.Result) int64 {
	const (
		structOverhead = 96
		sliceHeader    = 24
		stringHeader   = 16
	)
	size := int64(structOverhead)
	for _, s := range r.GroupCols {
		size += stringHeader + int64(len(s))
	}
	for _, s := range r.AggCols {
		size += stringHeader + int64(len(s))
	}
	for _, row := range r.Rows {
		size += 2 * sliceHeader
		for _, g := range row.Groups {
			size += stringHeader + int64(len(g))
		}
		size += 8 * int64(len(row.Values))
	}
	return size
}

package qsched

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"

	"sdwp/internal/obs"
)

// TestTraceLifecycleSpans submits one traced query and checks the span
// tree GET /api/trace/{id} would serve: compile, admissionWait, scan
// (with the executor's per-shard stage breakdown as children), finalize
// — and that the stages account for the trace's end-to-end duration.
func TestTraceLifecycleSpans(t *testing.T) {
	ds := testDataset(t)
	tracer := obs.NewTracer(obs.TracerOptions{SampleRate: 1})
	s := New(ds.Cube, Options{Window: 2 * time.Millisecond, MaxInFlight: 1})
	defer s.Close()

	tr := tracer.Start("trace-me")
	ctx := obs.NewContext(context.Background(), tr)
	if _, err := s.SubmitCtx(ctx, cityQuery(0), nil, "alice"); err != nil {
		t.Fatal(err)
	}
	snap, ok := tracer.Get("trace-me")
	if !ok {
		t.Fatal("trace not retained after delivery")
	}
	if snap.Error != "" {
		t.Fatalf("unexpected trace error %q", snap.Error)
	}

	byName := map[string]*obs.Span{}
	for _, sp := range snap.Spans {
		byName[sp.Name] = sp
	}
	for _, want := range []string{"compile", "admissionWait", "scan", "finalize"} {
		if byName[want] == nil {
			t.Fatalf("span %q missing (have %v)", want, names(snap.Spans))
		}
	}
	scan := byName["scan"]
	shardScans := 0
	for _, c := range scan.Children {
		if c.Name == "shardScan" {
			shardScans++
			for _, attr := range []string{"shard", "facts", "filterMaskNs", "groupDecodeNs", "accumulateNs", "mergeNs"} {
				if _, ok := c.Attrs[attr]; !ok {
					t.Errorf("shardScan span missing attr %q: %v", attr, c.Attrs)
				}
			}
		}
	}
	if shardScans != 1 {
		t.Fatalf("unsharded scan has %d shardScan children, want 1", shardScans)
	}

	// The lifecycle stages are contiguous (submit → compile → queue →
	// scan → finalize → delivery), so their durations must sum to
	// approximately the whole trace — nothing big unaccounted for.
	var sum int64
	for _, sp := range snap.Spans {
		sum += sp.Dur
	}
	if snap.DurNs <= 0 {
		t.Fatalf("trace duration %d", snap.DurNs)
	}
	if sum < snap.DurNs/2 || sum > snap.DurNs+int64(time.Millisecond) {
		t.Errorf("stage durations sum to %dns, trace end-to-end is %dns", sum, snap.DurNs)
	}
}

func names(spans []*obs.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestTraceTimeoutRetained checks the admission-timeout path: a query
// dropped past its deadline must finish its trace with the error and be
// retained even at sample rate 0 (errors always keep their traces).
func TestTraceTimeoutRetained(t *testing.T) {
	ds := testDataset(t)
	tracer := obs.NewTracer(obs.TracerOptions{SampleRate: 0})
	s := New(ds.Cube, Options{Window: 40 * time.Millisecond, Timeout: time.Nanosecond})
	defer s.Close()

	tr := tracer.Start("late-query")
	ctx := obs.NewContext(context.Background(), tr)
	_, err := s.SubmitCtx(ctx, cityQuery(1), nil, "alice")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	snap, ok := tracer.Get("late-query")
	if !ok {
		t.Fatal("timed-out trace not retained at sample rate 0")
	}
	if snap.Error == "" {
		t.Fatal("timed-out trace has no error")
	}
	found := false
	for _, sp := range snap.Spans {
		if sp.Name == "admissionWait" {
			if v, _ := sp.Attrs["timedOut"].(bool); v {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no admissionWait span with timedOut=true: %v", snap.Spans)
	}
}

// TestQueryMetricsRecorded checks the scheduler feeds every stage
// histogram: end-to-end by tenant, queue wait, scan, merge.
func TestQueryMetricsRecorded(t *testing.T) {
	ds := testDataset(t)
	m := obs.NewQueryMetrics(obs.NewRegistry())
	s := New(ds.Cube, Options{Metrics: m})
	defer s.Close()
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := s.Submit(cityQuery(i), nil, "alice"); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.EndToEnd.With("alice").Count(); got != n {
		t.Errorf("end-to-end observations = %d, want %d", got, n)
	}
	if got := m.QueueWait.Count(); got == 0 {
		t.Error("no queue-wait observations")
	}
	if got := m.Scan.Count(); got == 0 {
		t.Error("no scan observations")
	}
	if got := m.Merge.Count(); got == 0 {
		t.Error("no merge observations")
	}
}

// TestSlowQueryLog checks the structured slow-query record: with the
// threshold at 1ns every query is slow, and the record must carry the
// trace ID and stage breakdown.
func TestSlowQueryLog(t *testing.T) {
	ds := testDataset(t)
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tracer := obs.NewTracer(obs.TracerOptions{SampleRate: 1})
	s := New(ds.Cube, Options{SlowQuery: time.Nanosecond, Logger: logger})
	defer s.Close()

	tr := tracer.Start("slow-one")
	ctx := obs.NewContext(context.Background(), tr)
	if _, err := s.SubmitCtx(ctx, cityQuery(2), nil, "carol"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"slow query", "traceId=slow-one", "user=carol", "fact=Sales", "queueWait=", "scan=", "total="} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-query log missing %q\n---\n%s", want, out)
		}
	}

	// Under the threshold: silence.
	buf.Reset()
	s2 := New(ds.Cube, Options{SlowQuery: time.Hour, Logger: logger})
	defer s2.Close()
	if _, err := s2.Submit(cityQuery(3), nil, "carol"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("fast query logged as slow: %s", buf.String())
	}
}

// TestStatsUptimeSnapshot checks the snapshot metadata on Stats: a
// parseable RFC3339Nano timestamp and an uptime that advances.
func TestStatsUptimeSnapshot(t *testing.T) {
	ds := testDataset(t)
	s := New(ds.Cube, Options{})
	defer s.Close()
	st1 := s.Stats()
	if _, err := time.Parse(time.RFC3339Nano, st1.SnapshotAt); err != nil {
		t.Fatalf("SnapshotAt %q: %v", st1.SnapshotAt, err)
	}
	if st1.UptimeSeconds < 0 {
		t.Fatalf("UptimeSeconds = %g", st1.UptimeSeconds)
	}
	time.Sleep(10 * time.Millisecond)
	st2 := s.Stats()
	if st2.UptimeSeconds <= st1.UptimeSeconds {
		t.Fatalf("uptime did not advance: %g then %g", st1.UptimeSeconds, st2.UptimeSeconds)
	}
}

package qsched

import (
	"fmt"
	"testing"

	"sdwp/internal/cube"
)

func testResult(tag string, rows int) *cube.Result {
	r := &cube.Result{GroupCols: []string{"g"}, AggCols: []string{"COUNT(*)"}}
	for i := 0; i < rows; i++ {
		r.Rows = append(r.Rows, cube.Row{Groups: []string{fmt.Sprintf("%s-%03d", tag, i)}, Values: []float64{1}})
	}
	return r
}

func TestResultCacheHitAndUpdate(t *testing.T) {
	c := newResultCache(1 << 20)
	if _, ok := c.get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	ra := testResult("a", 3)
	c.put("a", ra)
	got, ok := c.get("a")
	if !ok || got != ra {
		t.Fatalf("get after put: ok=%v got=%p want=%p", ok, got, ra)
	}
	// Refreshing a key replaces the value and adjusts the footprint.
	ra2 := testResult("a", 10)
	c.put("a", ra2)
	if got, _ := c.get("a"); got != ra2 {
		t.Fatal("refreshed entry not returned")
	}
	hits, misses, evictions, bytes, entries := c.stats()
	if hits != 2 || misses != 1 || evictions != 0 || entries != 1 {
		t.Errorf("stats = hits %d misses %d evictions %d entries %d", hits, misses, evictions, entries)
	}
	if want := entrySize("a", ra2); bytes != want {
		t.Errorf("bytes = %d, want %d", bytes, want)
	}
}

func TestResultCacheEvictsLRU(t *testing.T) {
	one := entrySize("k0", testResult("k0", 4))
	c := newResultCache(3 * one)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), testResult(fmt.Sprintf("k%d", i), 4))
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.put("k3", testResult("k3", 4))
	if _, ok := c.get("k1"); ok {
		t.Error("LRU victim k1 still cached")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	_, _, evictions, bytes, entries := c.stats()
	if evictions != 1 || entries != 3 {
		t.Errorf("evictions = %d entries = %d, want 1 / 3", evictions, entries)
	}
	if bytes > 3*one {
		t.Errorf("bytes = %d over budget %d", bytes, 3*one)
	}
}

func TestResultCacheRejectsOversize(t *testing.T) {
	c := newResultCache(64) // smaller than any real result
	c.put("big", testResult("big", 100))
	if _, ok := c.get("big"); ok {
		t.Error("oversize result cached")
	}
	if _, _, _, bytes, entries := c.stats(); bytes != 0 || entries != 0 {
		t.Errorf("bytes = %d entries = %d after oversize put", bytes, entries)
	}
}

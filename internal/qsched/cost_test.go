package qsched

// Scheduler-level cost attribution: the batch pays its measured scan CPU
// once, every query of the batch gets a proportional share plus the
// sharing discount, deduplicated waiters split their request's cost
// across tenants, and result-cache hits credit the stored cost back.
// The conservation laws here complement the byte-level ones in
// internal/cube and internal/shard: Σ per-query CPU == batch CPU, and
// per-tenant accounts sum to what was actually executed.

import (
	"sync"
	"testing"
	"time"

	"sdwp/internal/cube"
	"sdwp/internal/obs"
)

// TestBatchCPUAttributionConserves submits one multi-query batch and pins
// the CPU split: shares sum to the batch total, and every query's share
// plus its sharing discount reconstructs the same batch total.
func TestBatchCPUAttributionConserves(t *testing.T) {
	ds := testDataset(t)
	acct := obs.NewAccountant(obs.AccountantOptions{})
	s := New(ds.Cube, Options{Costs: acct})
	defer s.Close()

	qs := []cube.Query{cityQuery(0), cityQuery(1), cityQuery(2), countQuery}
	res, err := s.SubmitBatch(qs, nil, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Batches != 1 {
		t.Fatalf("batches = %d, want 1 (the conservation law is per batch)", st.Batches)
	}
	var batchCPU, facts int64
	for _, r := range res {
		batchCPU += r.Cost.CPUNs
		facts += int64(r.ScannedFacts)
	}
	if batchCPU <= 0 {
		t.Fatal("batch attributed no CPU")
	}
	for i, r := range res {
		if got := r.Cost.CPUNs + r.Cost.SharedSavedNs; got != batchCPU {
			t.Errorf("query %d: share %d + discount %d = %d != batch CPU %d",
				i, r.Cost.CPUNs, r.Cost.SharedSavedNs, got, batchCPU)
		}
	}

	// The tenant account sums exactly what the batch attributed.
	stats := acct.Tenants()
	if len(stats) != 1 || stats[0].Tenant != "alice" {
		t.Fatalf("tenants = %+v, want alice alone", stats)
	}
	if stats[0].Cost.CPUNs != batchCPU {
		t.Errorf("alice CPU %d != Σ attributed %d", stats[0].Cost.CPUNs, batchCPU)
	}
	if stats[0].Cost.FactsScanned != facts {
		t.Errorf("alice facts %d != Σ scanned %d", stats[0].Cost.FactsScanned, facts)
	}
	if stats[0].Queries != int64(len(qs)) {
		t.Errorf("alice queries = %d, want %d", stats[0].Queries, len(qs))
	}

	// The profile registry folded every fingerprint in.
	if top := acct.TopQueries(10); len(top) != len(qs) {
		t.Errorf("profiles = %d, want %d distinct fingerprints", len(top), len(qs))
	}
}

// TestDedupSplitsCostAcrossTenants coalesces the identical query from two
// tenants into one scan and checks the split: each tenant is charged, and
// the two shares sum to the single scan's cost.
func TestDedupSplitsCostAcrossTenants(t *testing.T) {
	ds := testDataset(t)
	acct := obs.NewAccountant(obs.AccountantOptions{})
	s := New(ds.Cube, Options{
		Window:      200 * time.Millisecond, // plenty for both to join
		MaxInFlight: 1,
		Costs:       acct,
	})
	defer s.Close()

	var wg sync.WaitGroup
	results := make([]*cube.Result, 2)
	errs := make([]error, 2)
	for i, user := range []string{"alice", "bob"} {
		wg.Add(1)
		go func(i int, user string) {
			defer wg.Done()
			results[i], errs[i] = s.Submit(countQuery, nil, user)
		}(i, user)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if st := s.Stats(); st.Shared != 1 {
		t.Fatalf("shared = %d, want 1 (the two submissions must dedup)", st.Shared)
	}

	full := results[0].Cost
	stats := acct.Tenants()
	if len(stats) != 2 {
		t.Fatalf("tenants = %d, want 2", len(stats))
	}
	var sum obs.QueryCost
	for _, ts := range stats {
		if ts.Queries != 1 {
			t.Errorf("tenant %s recorded %d queries, want 1", ts.Tenant, ts.Queries)
		}
		if ts.Cost.FactsScanned <= 0 {
			t.Errorf("tenant %s charged no facts", ts.Tenant)
		}
		sum.Add(ts.Cost)
	}
	if sum.FactsScanned != full.FactsScanned || sum.CPUNs != full.CPUNs {
		t.Errorf("tenant shares (facts %d, cpu %d) don't sum to the scan's cost (facts %d, cpu %d)",
			sum.FactsScanned, sum.CPUNs, full.FactsScanned, full.CPUNs)
	}
}

// TestCacheHitCreditsTenant checks the avoided-cost credit: a result-cache
// hit records a query and a cache hit for the tenant, crediting the
// stored result's CPU instead of charging a scan.
func TestCacheHitCreditsTenant(t *testing.T) {
	ds := testDataset(t)
	acct := obs.NewAccountant(obs.AccountantOptions{})
	s := New(ds.Cube, Options{CacheBytes: 1 << 20, Costs: acct})
	defer s.Close()

	for i := 0; i < 3; i++ { // 1st doorkept, 2nd cached, 3rd a hit
		if _, err := s.Submit(countQuery, nil, "carol"); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.CacheHits == 0 {
		t.Fatalf("no cache hit after repeats: %+v", st)
	}
	stats := acct.Tenants()
	if len(stats) != 1 {
		t.Fatalf("tenants = %+v", stats)
	}
	carol := stats[0]
	if carol.Queries != 3 || carol.CacheHits == 0 {
		t.Errorf("carol = %d queries / %d hits, want 3 queries with hits", carol.Queries, carol.CacheHits)
	}
	if carol.Cost.CacheCreditNs <= 0 {
		t.Error("cache hit credited no avoided CPU")
	}
	if carol.CacheHitRate <= 0 {
		t.Errorf("hit rate = %v, want > 0", carol.CacheHitRate)
	}
}

// Package qsched is the engine-level query scheduler: the piece that turns
// "millions of users issuing concurrent single queries" into the shared
// scans the cube's batch executor is built for (multi-query optimization in
// the GLADE tradition), with a cost-driven resource manager — weighted fair
// shares, overload shedding, runtime-tunable knobs — so one heavy tenant is
// boundedly isolated instead of starving the rest (cf. Tempo).
//
// Four mechanisms compose:
//
//  1. Coalescing with cost-driven fair admission. Concurrent Submit calls
//     queue per user; a dispatcher assembles them into one
//     cube.ExecuteBatch shared scan per micro-batch, always admitting the
//     tenant with the lowest attributed scan cost per unit weight over a
//     decaying window (deficit-weighted scheduling over the obs.QueryCost
//     attribution; see fair.go). With identical cost profiles this
//     degrades exactly to round-robin. A batch closes when the configured
//     window elapses, when MaxBatch queries are queued, or, with a zero
//     window, as soon as an in-flight slot frees (scans running at the
//     MaxInFlight bound are themselves the batching clock: everything
//     that queues behind them coalesces).
//  2. Deduplication. Identical queued queries (same plan fingerprint,
//     same view state) execute once; every waiter shares the one result.
//  3. Result cache. A byte-bounded LRU keyed by plan fingerprint plus the
//     view's (id, epoch) pair answers repeats without any scan. A view
//     mutation bumps its epoch, so PRML-driven selections invalidate
//     exactly that session's entries — no scavenging, no stale reads.
//     Admission is doorkept: a result is cached only once its fingerprint
//     has been requested at least twice, so one-off exploratory queries
//     cannot evict hot entries. A bounded negative cache likewise answers
//     repeated invalid queries from their cached compile error without
//     re-deriving it or touching the coalesce queue.
//  4. Overload control. When the admission queue is past MaxQueueDepth or
//     smoothed admission waits exceed TargetQueueWait, queries from
//     tenants at or over their fair share are refused up front with
//     ErrOverloaded and a drain-rate-derived retry hint (HTTP 429 +
//     Retry-After at the web layer) instead of timing out at the 504
//     deadline after queueing uselessly. Under-share tenants are never
//     shed. Both thresholds unset = shedding off.
//
// The coalescing window and the result-cache budget are runtime-tunable
// (SetWindow, ResizeResultCache) — the hooks core's adaptive tuner drives.
//
// The scans themselves are sharing-aware: coalesced batches run through
// cube.ExecuteBatchCompiledOpt, which materializes each distinct filter
// set and (dimension, level) grouping once per scan and drives every
// query's accumulation off the shared artifacts (Stats reports the
// achieved sharing ratios; Options.DisableSharedSubexpr reverts to
// per-query evaluation).
package qsched

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"sdwp/internal/cube"
	"sdwp/internal/obs"
)

// Executor is what the scheduler dispatches to: the plain *cube.Cube for
// a single fact store, or a *shard.Table for a hash-partitioned one (the
// scatter-gather executor has the same batch surface, so the scheduler is
// the shard router without knowing it — exactly the "scheduler as natural
// shard router" step the partial-merge protocol was built for).
type Executor interface {
	// Compile resolves and validates a query for later batch execution.
	Compile(q cube.Query) (*cube.CompiledQuery, error)
	// ExecuteParallel answers one query (the Disabled bypass path).
	ExecuteParallel(q cube.Query, v *cube.View, workers int) (*cube.Result, error)
	// ExecuteBatch answers a batch (the Disabled bypass path).
	ExecuteBatch(qs []cube.Query, vs []*cube.View, workers int) ([]*cube.Result, error)
	// ExecuteBatchCompiledOpt runs one coalesced shared scan.
	ExecuteBatchCompiledOpt(cqs []*cube.CompiledQuery, vs []*cube.View, opts cube.BatchOptions) ([]*cube.Result, cube.SharingStats, error)
}

// DefaultMaxBatch bounds one coalesced shared scan and — shared through
// core.Options.MaxBatchQueries — one POST /api/query/batch request. Every
// query in a batch holds its own partial aggregation tables during the
// scan, so the cap bounds per-scan memory.
const DefaultMaxBatch = 64

// DefaultMaxInFlight bounds concurrent shared scans when
// Options.MaxInFlight is unset: enough to overlap one scan with the next
// batch's assembly without oversubscribing small hosts.
const DefaultMaxInFlight = 2

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("qsched: scheduler closed")

// ErrTimeout is the base error of queries dropped from the admission
// queue past their deadline (Options.Timeout or a request context
// deadline, whichever is earlier). Callers match it with errors.Is.
var ErrTimeout = errors.New("qsched: query timed out in admission queue")

// Options configures a Scheduler.
type Options struct {
	// Window is how long the dispatcher holds the first queued query open
	// for more arrivals before dispatching the micro-batch (the 0–2 ms
	// latency budget of the ISSUE). 0 adds no latency: batches then form
	// only from queries that pile up behind in-flight scans.
	Window time.Duration
	// MaxBatch dispatches a batch immediately once this many queries are
	// queued (default DefaultMaxBatch).
	MaxBatch int
	// MaxInFlight bounds concurrent shared scans (default
	// DefaultMaxInFlight).
	MaxInFlight int
	// CacheBytes sizes the result cache; 0 disables caching.
	CacheBytes int64
	// Workers is the per-scan worker pool, as in cube.ExecuteParallel.
	Workers int
	// Disabled bypasses queueing and caching entirely: Submit executes
	// directly. The correctness baseline of the equivalence harness.
	Disabled bool
	// DisableSharedSubexpr turns off cross-query subexpression sharing
	// (shared filter bitmaps and group-key columns) inside coalesced
	// scans — the A/B baseline for cube.BatchOptions.DisableSharing.
	DisableSharedSubexpr bool
	// DisablePerFilterSharing keeps stage-1 sharing at whole-filter-set
	// granularity inside coalesced scans (no per-predicate bitmaps, no
	// AND-composition) — the A/B baseline for
	// cube.BatchOptions.DisablePredicateSharing.
	DisablePerFilterSharing bool
	// Timeout is the admission deadline: a query still queued this long
	// after Submit is dropped with ErrTimeout instead of executing — under
	// overload the queue sheds its oldest waiters deterministically rather
	// than growing unboundedly stale. 0 = no deadline. A request context
	// with an earlier deadline tightens it per query.
	Timeout time.Duration
	// Artifacts optionally fronts every coalesced scan with a cross-batch
	// artifact cache (hot filter bitmaps and roll-up key columns survive
	// between scans; see cube.ArtifactCache). A sharded Executor manages
	// its own per-shard caches and ignores this.
	Artifacts *cube.ArtifactCache
	// Metrics optionally receives per-query latency observations
	// (end-to-end by tenant, queue wait, scan, merge). nil records
	// nothing.
	Metrics *obs.QueryMetrics
	// Costs optionally receives per-query cost attribution: each
	// executed query's Result.Cost — with the batch's measured scan CPU
	// split proportionally to facts scanned across the coalesced batch,
	// and the sharing discount recorded per query — is attributed to its
	// tenant and folded into the heavy-query profile registry; result-
	// cache hits credit the stored cost as avoided work. nil records
	// nothing.
	Costs *obs.Accountant
	// SlowQuery, when > 0, logs a structured record (slog, level WARN)
	// for every query whose end-to-end latency reaches it, carrying the
	// trace ID and stage breakdown.
	SlowQuery time.Duration
	// Logger receives slow-query records (nil = slog.Default()).
	Logger *slog.Logger
	// TenantWeights maps userKey → fair-share weight (default 1, and any
	// value <= 0 reads as 1): a tenant with weight 2 sustains twice the
	// attributed scan cost of a weight-1 tenant before losing admission
	// priority. Unlisted tenants get weight 1.
	TenantWeights map[string]float64
	// FairShareHalfLife is the decay half-life of the per-tenant usage
	// window fair admission ranks on (default DefaultFairShareHalfLife).
	FairShareHalfLife time.Duration
	// MaxQueueDepth, when > 0, is the overload threshold on admission-queue
	// depth: at or past it, over-share tenants are shed with ErrOverloaded
	// instead of queueing (see mechanism 4 in the package comment).
	MaxQueueDepth int
	// TargetQueueWait, when > 0, is the overload threshold on the smoothed
	// admission wait: when the EWMA of observed queue waits exceeds it,
	// over-share tenants are shed. Meaningful only below Timeout —
	// shedding exists to act before the deadline does.
	TargetQueueWait time.Duration
}

// negCacheCapacity bounds the negative cache for invalid queries;
// doorkeeperCapacity bounds one generation of the result-cache admission
// filter. Both are plain memory bounds, not tuning knobs.
const (
	negCacheCapacity   = 512
	doorkeeperCapacity = 4096
)

// outcome is one delivered query result.
type outcome struct {
	res *cube.Result
	err error
}

// waiter is one caller blocked on a request. Dedup merges waiters of
// different tenants (and traces) onto one request, so the telemetry
// identity — trace, tenant label for the end-to-end histogram, submit
// time — rides per waiter, not per request. tr and start are zero when
// telemetry is off.
type waiter struct {
	ch    chan outcome
	tr    *obs.Trace
	user  string
	start time.Time
}

// request is one admitted query plus everyone waiting on it (dedup merges
// identical queries into a single request with several waiters). The plan
// compiled at admission is reused for the scan.
type request struct {
	cq    *cube.CompiledQuery
	view  *cube.View
	epoch uint64
	key   string
	// fp is the plan fingerprint (the heavy-query profile registry's
	// key; also a prefix-free component of key).
	fp string
	// admit records the doorkeeper's verdict at admission: cache the
	// result only if the plan fingerprint had been requested before.
	admit   bool
	waiters []waiter
	// user is the tenant that enqueued the request first — the fair-share
	// ledger's charge target (dedup'd joiners ride free; see fair.go).
	user string
	// debit is the provisional fair-share charge taken at batch assembly
	// and reversed at settle (zero until assembled).
	debit float64
	// enqueuedAt and deadline implement admission timeouts: a request
	// popped after its deadline is answered with ErrTimeout instead of
	// joining a batch. Zero deadline = no limit.
	enqueuedAt time.Time
	deadline   time.Time
}

// Scheduler coalesces concurrent queries into shared scans and fronts them
// with the epoch-keyed result cache. All methods are safe for concurrent
// use.
type Scheduler struct {
	c        Executor
	opts     Options
	cache    *resultCache // nil when caching is disabled
	door     *doorkeeper  // nil when caching is disabled
	negCache *errCache    // compile errors by fingerprint (always on)

	kick  chan struct{} // wakes the dispatcher (buffered, lossy)
	slots chan struct{} // in-flight scan semaphore
	wg    sync.WaitGroup

	// startedAt anchors Stats.UptimeSeconds so scrapers can turn the
	// cumulative counters into rates.
	startedAt time.Time

	// closedFlag mirrors closed for lock-free reads on the submit fast
	// path, so a cache hit can never be served after Close returns.
	closedFlag atomic.Bool

	// windowNs is the live coalescing window (seeded from Options.Window,
	// retunable via SetWindow), read atomically by the dispatcher.
	windowNs atomic.Int64

	mu      sync.Mutex
	closed  bool
	tenants map[string]*tenant  // userKey → queue + fair-share ledger
	active  []string            // tenants with queued work, arrival order
	byKey   map[string]*request // dedup index over queued requests
	queued  int
	// Overload-control state (see fair.go): smoothed admission wait and
	// drain rate, shed counters per (tenant, reason), and the decaying
	// shed window behind the shed-rate gauge.
	waitEWMA       float64 // ns
	drainEWMA      float64 // requests/sec
	lastAssembleAt time.Time
	shedTotal      int64
	shedCounts     map[string]map[string]int64
	shedRecent     float64
	shedDecayAt    time.Time

	stSubmitted atomic.Int64
	stShared    atomic.Int64
	stExecuted  atomic.Int64
	stBatches   atomic.Int64
	stScans     atomic.Int64
	stMaxQueue  atomic.Int64
	stNegHits   atomic.Int64
	stDoorkept  atomic.Int64
	stTimedOut  atomic.Int64

	// Cross-query sharing counters, accumulated from every scan's
	// cube.SharingStats (see Stats.FilterMaskSharing / GroupKeySharing /
	// PredicateSharing).
	stFilterSets     atomic.Int64
	stFilterDistinct atomic.Int64
	stPredSets       atomic.Int64
	stPredDistinct   atomic.Int64
	stComposed       atomic.Int64
	stGroupSets      atomic.Int64
	stGroupDistinct  atomic.Int64
	stPartialsReused atomic.Int64
	stPartialsAlloc  atomic.Int64
	stPackedKernels  atomic.Int64
	stPackedPreds    atomic.Int64
}

// New builds a scheduler over an executor — the cube itself, or a sharded
// table routing to fact shards — and starts its dispatcher (unless
// Disabled). Callers own the lifecycle: Close stops the dispatcher after
// draining queued queries.
func New(c Executor, opts Options) *Scheduler {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	s := &Scheduler{
		c:          c,
		opts:       opts,
		tenants:    map[string]*tenant{},
		byKey:      map[string]*request{},
		shedCounts: map[string]map[string]int64{},
		negCache:   newErrCache(negCacheCapacity),
		startedAt:  time.Now(),
	}
	s.windowNs.Store(int64(opts.Window))
	s.lastAssembleAt = s.startedAt
	s.shedDecayAt = s.startedAt
	if opts.CacheBytes > 0 {
		s.cache = newResultCache(opts.CacheBytes)
		s.door = newDoorkeeper(doorkeeperCapacity)
	}
	if !opts.Disabled {
		s.kick = make(chan struct{}, 1)
		s.slots = make(chan struct{}, opts.MaxInFlight)
		s.wg.Add(1)
		go s.dispatchLoop()
	}
	return s
}

// Close stops accepting queries, drains everything already queued, waits
// for in-flight scans, and returns. Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	s.closedFlag.Store(true)
	if already || s.opts.Disabled {
		return
	}
	s.kickDispatcher()
	s.wg.Wait()
}

// Submit answers one query through the scheduler: cache first, then the
// coalescing queue, blocking until the result is ready. userKey scopes
// fair admission — each distinct key gets its own queue and fair-share
// ledger, and batches always admit the tenant with the lowest attributed
// cost per unit weight, so a tenant flooding the scheduler (by count or
// by expensive queries) only ever occupies the batch slots other tenants
// leave unused. Under overload (Options.MaxQueueDepth /
// TargetQueueWait), queries from over-share tenants are refused with an
// error matching ErrOverloaded instead of queueing.
//
// v may be nil (the non-personalized baseline). The returned Result may be
// shared with other waiters and with the cache: treat it as immutable.
func (s *Scheduler) Submit(q cube.Query, v *cube.View, userKey string) (*cube.Result, error) {
	return s.SubmitCtx(context.Background(), q, v, userKey)
}

// SubmitCtx is Submit with a request context: cancellation or a context
// deadline unblocks the caller early (the query may still execute for its
// other waiters), and a context deadline earlier than Options.Timeout
// tightens this query's admission deadline.
func (s *Scheduler) SubmitCtx(ctx context.Context, q cube.Query, v *cube.View, userKey string) (*cube.Result, error) {
	ch, res, err := s.submit(ctx, q, v, userKey)
	if ch == nil {
		return res, err
	}
	select {
	case out := <-ch:
		return out.res, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// requestDeadline combines Options.Timeout with the context deadline into
// the request's admission deadline (zero = none).
func (s *Scheduler) requestDeadline(ctx context.Context, now time.Time) time.Time {
	var d time.Time
	if s.opts.Timeout > 0 {
		d = now.Add(s.opts.Timeout)
	}
	if cd, ok := ctx.Deadline(); ok && (d.IsZero() || cd.Before(d)) {
		d = cd
	}
	return d
}

// timeoutOutcome builds the descriptive drop error for one expired
// request.
func timeoutOutcome(req *request, now time.Time) outcome {
	return outcome{err: fmt.Errorf("%w (queued %s, deadline exceeded by %s)",
		ErrTimeout,
		now.Sub(req.enqueuedAt).Round(time.Microsecond),
		now.Sub(req.deadline).Round(time.Microsecond))}
}

// SubmitBatch answers several queries, preserving order. Entries hit the
// cache individually; all misses are admitted under one queue lock and a
// single dispatcher wake-up, so on an idle scheduler the whole batch lands
// in one shared scan (the guarantee POST /api/query/batch always had) while
// under load it additionally coalesces with other tenants' traffic.
func (s *Scheduler) SubmitBatch(qs []cube.Query, vs []*cube.View, userKey string) ([]*cube.Result, error) {
	return s.SubmitBatchCtx(context.Background(), qs, vs, userKey)
}

// SubmitBatchCtx is SubmitBatch with a request context (see SubmitCtx for
// the deadline semantics; one context scopes the whole batch).
func (s *Scheduler) SubmitBatchCtx(ctx context.Context, qs []cube.Query, vs []*cube.View, userKey string) ([]*cube.Result, error) {
	if vs != nil && len(vs) != len(qs) {
		return nil, fmt.Errorf("qsched: batch has %d queries but %d views", len(qs), len(vs))
	}
	if s.opts.Disabled {
		return s.c.ExecuteBatch(qs, vs, s.opts.Workers)
	}
	s.stSubmitted.Add(int64(len(qs)))
	// One trace (from the request context) scopes the whole batch: every
	// entry's spans land on it. start is zero when telemetry is off.
	tr := obs.FromContext(ctx)
	tr.SetUser(userKey)
	var start time.Time
	if tr != nil || s.opts.Metrics != nil || s.opts.SlowQuery > 0 || s.opts.Costs != nil {
		start = time.Now()
	}
	results := make([]*cube.Result, len(qs))
	chans := make([]chan outcome, len(qs))
	type pending struct {
		i     int
		cq    *cube.CompiledQuery
		view  *cube.View
		epoch uint64
		key   string
		fp    string
		admit bool
	}
	var pends []pending
	var firstErr error
	for i, q := range qs {
		if s.closedFlag.Load() {
			firstErr = fmt.Errorf("qsched: batch query %d: %w", i, ErrClosed)
			break
		}
		var v *cube.View
		if vs != nil {
			v = vs[i]
		}
		fp := q.Fingerprint()
		if err, ok := s.negCache.get(fp); ok {
			s.stNegHits.Add(1)
			firstErr = fmt.Errorf("qsched: batch query %d: %w", i, err)
			break
		}
		key, epoch := s.cacheKey(fp, v)
		var admit bool
		if s.cache != nil {
			if res, ok := s.cache.get(key); ok {
				s.door.request(fp) // keep hot fingerprints admitted (see submit)
				if !start.IsZero() {
					s.opts.Metrics.ObserveEndToEnd(userKey, time.Since(start))
				}
				s.opts.Costs.RecordCacheHit(userKey, res.Cost)
				results[i] = res
				continue
			}
			admit = s.door.request(fp)
		}
		cq, err := s.c.Compile(q)
		if err != nil {
			s.negCache.put(fp, err)
			firstErr = fmt.Errorf("qsched: batch query %d: %w", i, err)
			break
		}
		pends = append(pends, pending{i: i, cq: cq, view: v, epoch: epoch, key: key, fp: fp, admit: admit})
	}
	// One overload decision covers the whole batch: cache hits above were
	// already served, and a shed batch never touches the queue.
	if len(pends) > 0 && firstErr == nil {
		if err := s.maybeShed(userKey); err != nil {
			firstErr = err
			pends = nil
		}
	}
	if len(pends) > 0 {
		now := time.Now()
		deadline := s.requestDeadline(ctx, now)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			if firstErr == nil {
				firstErr = ErrClosed
			}
		} else {
			for _, p := range pends {
				ch := make(chan outcome, 1)
				chans[p.i] = ch
				s.enqueueLocked(&request{cq: p.cq, view: p.view, epoch: p.epoch,
					key: p.key, fp: p.fp, admit: p.admit, user: userKey,
					waiters:    []waiter{{ch: ch, tr: tr, user: userKey, start: start}},
					enqueuedAt: now, deadline: deadline}, userKey)
			}
			s.mu.Unlock()
			s.kickDispatcher()
		}
	}
	// Drain everything admitted, even after an error: those queries will
	// execute regardless, and abandoning the channels would strand their
	// deliveries. Context cancellation unblocks the caller; the buffered
	// per-waiter channels absorb the late deliveries.
	for i, ch := range chans {
		if ch == nil {
			continue
		}
		var out outcome
		select {
		case out = <-ch:
		case <-ctx.Done():
			out = outcome{err: ctx.Err()}
		}
		if out.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("qsched: batch query %d: %w", i, out.err)
		}
		results[i] = out.res
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// submit admits one query. It returns either an immediate result (cache
// hit, direct execution, or error) with a nil channel, or a channel the
// result will be delivered on.
func (s *Scheduler) submit(ctx context.Context, q cube.Query, v *cube.View, userKey string) (<-chan outcome, *cube.Result, error) {
	s.stSubmitted.Add(1)
	if s.closedFlag.Load() {
		return nil, nil, ErrClosed
	}
	if s.opts.Disabled {
		res, err := s.c.ExecuteParallel(q, v, s.opts.Workers)
		return nil, res, err
	}
	// Telemetry is pay-per-use: tr is nil unless the caller's context
	// carries a trace, and start stays zero unless something (trace,
	// histogram, slow-query log, cost accounting) will consume it.
	tr := obs.FromContext(ctx)
	tr.SetUser(userKey)
	var start time.Time
	if tr != nil || s.opts.Metrics != nil || s.opts.SlowQuery > 0 || s.opts.Costs != nil {
		start = time.Now()
	}
	// A repeated malformed query is answered from the negative cache
	// before any key building or compilation — invalid traffic never
	// reaches the coalesce queue twice.
	fp := q.Fingerprint()
	if err, ok := s.negCache.get(fp); ok {
		s.stNegHits.Add(1)
		tr.Finish(err)
		return nil, nil, err
	}
	// The epoch is read before execution, so a cached entry's result was
	// computed from a view state at least as new as its key. A reader that
	// observes epoch E and hits (id, E, fp) therefore never gets data from
	// before E — a selection racing the scan can only make the entry
	// fresher, which is within the view's query-vs-selection semantics
	// (and runBatch skips caching in that case anyway).
	key, epoch := s.cacheKey(fp, v)
	var admit bool
	if s.cache != nil {
		if res, ok := s.cache.get(key); ok {
			// Fingerprints are injective, so a hit proves this exact query
			// validated before — no need to compile on the hit path. The
			// doorkeeper is still touched so a tile hot in the cache stays
			// admitted when a view mutation forces its next miss.
			s.door.request(fp)
			s.opts.Costs.RecordCacheHit(userKey, res.Cost)
			if !start.IsZero() {
				s.opts.Metrics.ObserveEndToEnd(userKey, time.Since(start))
			}
			if tr != nil {
				tr.AddSpan("resultCache", start, time.Since(start), map[string]any{"hit": true})
				tr.Finish(nil)
			}
			return nil, res, nil
		}
		// The doorkeeper decides on the miss: only a fingerprint that has
		// been requested before earns a cache slot for its result.
		admit = s.door.request(fp)
	}
	// Overload gate, after the cache (hits cost no scan — overload is no
	// reason to refuse them) and before compilation: shed traffic costs
	// one mutex hold.
	if err := s.maybeShed(userKey); err != nil {
		if tr != nil {
			attrs := map[string]any{"shed": true}
			var oe *OverloadError
			if errors.As(err, &oe) {
				attrs["reason"] = oe.Reason
				attrs["queueDepth"] = oe.QueueDepth
				attrs["retryAfterMs"] = oe.RetryAfter.Milliseconds()
			}
			tr.AddSpan("shed", start, time.Since(start), attrs)
		}
		tr.Finish(err)
		return nil, nil, err
	}
	// Compile on admission: a malformed query must fail alone, never
	// abort the shared scan it would have joined — and the scan then
	// reuses the plan instead of resolving the query a second time.
	var compileStart time.Time
	if tr != nil {
		compileStart = time.Now()
	}
	cq, err := s.c.Compile(q)
	if tr != nil {
		tr.AddSpan("compile", compileStart, time.Since(compileStart), nil)
	}
	if err != nil {
		s.negCache.put(fp, err)
		tr.Finish(err)
		return nil, nil, err
	}
	ch := make(chan outcome, 1)
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, ErrClosed
	}
	s.enqueueLocked(&request{cq: cq, view: v, epoch: epoch, key: key, fp: fp, admit: admit,
		user:       userKey,
		waiters:    []waiter{{ch: ch, tr: tr, user: userKey, start: start}},
		enqueuedAt: now,
		deadline:   s.requestDeadline(ctx, now)}, userKey)
	s.mu.Unlock()
	s.kickDispatcher()
	return ch, nil, nil
}

// cacheKey builds the cache/dedup key — plan fingerprint plus the view's
// (id, epoch) — and returns the epoch it observed. The comment block in
// submit explains why reading the epoch before execution is the safe side
// of the race with concurrent selections.
func (s *Scheduler) cacheKey(fp string, v *cube.View) (key string, epoch uint64) {
	var viewID uint64
	if v != nil {
		viewID = v.ID()
		epoch = v.Epoch()
	}
	return fmt.Sprintf("%d@%d|%s", viewID, epoch, fp), epoch
}

// enqueueLocked admits one request: identical queued requests merge (the
// new request's waiters join the existing one), otherwise it joins its
// user's FIFO. Callers hold s.mu.
func (s *Scheduler) enqueueLocked(req *request, userKey string) {
	if prev := s.byKey[req.key]; prev != nil {
		prev.waiters = append(prev.waiters, req.waiters...)
		// A second identical request proves the fingerprint is hot, so the
		// merged execution may cache even if the first arrival was not yet
		// admitted.
		prev.admit = prev.admit || req.admit
		// The merged request keeps the most generous admission deadline
		// (zero = none): a fresh waiter must not inherit an instant
		// timeout from an older identical one.
		if req.deadline.IsZero() || (!prev.deadline.IsZero() && prev.deadline.Before(req.deadline)) {
			prev.deadline = req.deadline
		}
		s.stShared.Add(int64(len(req.waiters)))
		return
	}
	s.byKey[req.key] = req
	t := s.tenantLocked(userKey, req.enqueuedAt)
	if len(t.fifo) == 0 {
		s.active = append(s.active, userKey)
	}
	t.fifo = append(t.fifo, req)
	s.queued++
	if d := int64(s.queued); d > s.stMaxQueue.Load() {
		s.stMaxQueue.Store(d)
	}
}

// kickDispatcher wakes the dispatcher (lossy: a buffered token is enough,
// the dispatcher rechecks the queue on every iteration).
func (s *Scheduler) kickDispatcher() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Window is the live coalescing window (Options.Window until SetWindow
// retunes it).
func (s *Scheduler) Window() time.Duration {
	return s.window()
}

func (s *Scheduler) window() time.Duration {
	return time.Duration(s.windowNs.Load())
}

// SetWindow retunes the coalescing window at runtime — the adaptive
// tuner's arrival-rate knob — clamped to [0, 100ms] (past that it is
// queueing, not batching). Takes effect on the next dispatch iteration.
func (s *Scheduler) SetWindow(w time.Duration) {
	if w < 0 {
		w = 0
	}
	if w > maxWindow {
		w = maxWindow
	}
	s.windowNs.Store(int64(w))
}

// ResizeResultCache retunes the result-cache byte budget at runtime,
// evicting down when shrinking. A no-op when caching is disabled or
// n <= 0 — the tuner never turns a disabled cache on (CacheBytes 0 is an
// operator decision, not a starting point).
func (s *Scheduler) ResizeResultCache(n int64) {
	if s.cache == nil || n <= 0 {
		return
	}
	s.cache.resize(n)
}

// dispatchLoop is the scheduler's single dispatcher goroutine: wait for
// work, hold the coalescing window open, take an in-flight slot, assemble
// a fair batch, and hand it to a scan goroutine.
func (s *Scheduler) dispatchLoop() {
	defer s.wg.Done()
	for {
		// Wait for queued work (or for Close with an empty queue).
		s.mu.Lock()
		for s.queued == 0 {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.mu.Unlock()
			<-s.kick
			s.mu.Lock()
		}
		s.mu.Unlock()

		// Micro-batch window: let more concurrent queries pile in, but cut
		// the wait short once the batch is full (or on Close). The window
		// is read atomically — the adaptive tuner retunes it at runtime.
		if w := s.window(); w > 0 {
			deadline := time.NewTimer(w)
		window:
			for {
				s.mu.Lock()
				full := s.queued >= s.opts.MaxBatch || s.closed
				s.mu.Unlock()
				if full {
					break
				}
				select {
				case <-s.kick:
				case <-deadline.C:
					break window
				}
			}
			deadline.Stop()
		}

		// Bound in-flight scans. Queries keep queueing while we wait for a
		// slot — with Window 0 this is where all the coalescing happens.
		s.slots <- struct{}{}
		s.mu.Lock()
		batch := s.assembleLocked(s.opts.MaxBatch)
		s.mu.Unlock()
		if len(batch) == 0 {
			<-s.slots
			continue
		}
		s.wg.Add(1)
		go func(batch []*request) {
			defer s.wg.Done()
			defer func() { <-s.slots }()
			s.runBatch(batch)
		}(batch)
	}
}

// assembleLocked pops up to max requests, each time from the tenant with
// the lowest fair-share score — attributed cost plus provisional debits
// per unit weight, ties broken by arrival order — so a tenant with a deep
// backlog or expensive queries gets only the cost share the others leave
// unused (with uniform costs this is exactly round-robin). Each admitted
// request provisionally debits its tenant's per-query cost estimate,
// reversed and replaced by the measured cost at settle. Requests popped
// past their admission deadline are dropped — every waiter gets
// ErrTimeout and the request never joins a scan — so under overload the
// queue sheds stale work deterministically instead of executing it late.
// The pops also feed the overload controller's admission-wait and
// drain-rate EWMAs. Callers hold s.mu.
func (s *Scheduler) assembleLocked(max int) []*request {
	var batch []*request
	now := time.Now()
	popped := 0
	for s.queued > 0 && len(batch) < max {
		idx, user := s.pickTenantLocked(now)
		t := s.tenants[user]
		req := t.fifo[0]
		if len(t.fifo) == 1 {
			t.fifo = nil
			s.active = append(s.active[:idx], s.active[idx+1:]...)
		} else {
			t.fifo = t.fifo[1:]
		}
		s.queued--
		popped++
		delete(s.byKey, req.key)
		s.waitEWMA = (1-ewmaAlpha)*s.waitEWMA + ewmaAlpha*float64(now.Sub(req.enqueuedAt))
		if !req.deadline.IsZero() && now.After(req.deadline) {
			out := timeoutOutcome(req, now)
			s.stTimedOut.Add(int64(len(req.waiters)))
			wait := now.Sub(req.enqueuedAt)
			for _, w := range req.waiters {
				s.opts.Metrics.ObserveQueueWait(w.user, wait)
				if !w.start.IsZero() {
					s.opts.Metrics.ObserveEndToEnd(w.user, now.Sub(w.start))
				}
				if w.tr != nil {
					w.tr.AddSpan("admissionWait", req.enqueuedAt, wait,
						map[string]any{"timedOut": true})
					w.tr.Finish(out.err)
				}
				w.ch <- out // buffered: never blocks under the lock
			}
			continue
		}
		// Provisional debit: the tenant pays its estimated per-query cost
		// up front, so several batches assembled before any completion
		// cannot over-admit one tenant. Dropped requests above never pay.
		req.debit = t.estimate
		if req.debit < minDebit {
			req.debit = minDebit
		}
		t.pending += req.debit
		batch = append(batch, req)
	}
	if popped > 0 {
		if dt := now.Sub(s.lastAssembleAt).Seconds(); dt > 0 {
			s.drainEWMA = (1-ewmaAlpha)*s.drainEWMA + ewmaAlpha*float64(popped)/dt
		}
		s.lastAssembleAt = now
	}
	return batch
}

// runBatch executes one assembled batch as a shared scan and delivers the
// results. Admission already validated every query, so an executor error
// here is systemic and is delivered to the whole batch.
func (s *Scheduler) runBatch(batch []*request) {
	assembled := time.Now()
	cqs := make([]*cube.CompiledQuery, len(batch))
	vs := make([]*cube.View, len(batch))
	facts := map[string]struct{}{}
	traced := false
	for i, r := range batch {
		cqs[i] = r.cq
		vs[i] = r.view
		facts[r.cq.Query().Fact] = struct{}{}
		for _, w := range r.waiters {
			if w.tr != nil {
				traced = true
			}
		}
	}
	// Telemetry plumbing: the executor fills st with per-shard stage
	// timings when anyone will read them (a trace or the histograms). All
	// of it is per batch — a handful of time.Now() calls around a scan
	// that touches every fact row — so the tracing-off overhead is noise
	// (BenchmarkTraceOverhead pins this).
	acct := s.opts.Costs
	telem := traced || s.opts.Metrics != nil || s.opts.SlowQuery > 0 || acct != nil
	var st *obs.ScanTrace
	if traced || s.opts.Metrics != nil || acct != nil {
		st = &obs.ScanTrace{}
	}
	s.stBatches.Add(1)
	s.stExecuted.Add(int64(len(batch)))
	s.stScans.Add(int64(len(facts)))
	var scanStart time.Time
	if telem {
		scanStart = time.Now()
	}
	results, sharing, err := s.c.ExecuteBatchCompiledOpt(cqs, vs, cube.BatchOptions{
		Workers:                 s.opts.Workers,
		DisableSharing:          s.opts.DisableSharedSubexpr,
		DisablePredicateSharing: s.opts.DisablePerFilterSharing,
		Artifacts:               s.opts.Artifacts,
		Trace:                   st,
	})
	var scanEnd time.Time
	var scanDur time.Duration
	var scanSpan *obs.Span
	if telem {
		scanEnd = time.Now()
		scanDur = scanEnd.Sub(scanStart)
		s.opts.Metrics.ObserveScan(scanDur)
		shardScans, gather := st.Snapshot()
		merge := gather
		for _, ss := range shardScans {
			merge += ss.Merge
		}
		if st != nil {
			s.opts.Metrics.ObserveMerge(merge)
		}
		if traced {
			// One scan span is shared by every trace of the batch (the scan
			// itself is shared work) with a child per shard carrying the
			// executor's stage breakdown, plus the gather/finalize tail.
			scanSpan = &obs.Span{Name: "scan", Start: scanStart.UnixNano(),
				Dur: scanDur.Nanoseconds(),
				Attrs: map[string]any{
					"batchQueries": len(batch), "factScans": len(facts)}}
			for _, ss := range shardScans {
				scanSpan.Children = append(scanSpan.Children, &obs.Span{
					Name:  "shardScan",
					Start: scanStart.UnixNano(),
					Dur:   ss.Wall.Nanoseconds(),
					Attrs: map[string]any{
						"shard":         ss.Shard,
						"facts":         ss.Facts,
						"filterMaskNs":  ss.FilterMask.Nanoseconds(),
						"groupDecodeNs": ss.GroupDecode.Nanoseconds(),
						"accumulateNs":  ss.Accumulate.Nanoseconds(),
						"mergeNs":       ss.Merge.Nanoseconds(),
					},
				})
			}
			if gather > 0 {
				scanSpan.Children = append(scanSpan.Children, &obs.Span{
					Name:  "gather",
					Start: scanEnd.Add(-gather).UnixNano(),
					Dur:   gather.Nanoseconds(),
				})
			}
		}
	}
	if err == nil {
		s.stFilterSets.Add(int64(sharing.FilterSets))
		s.stFilterDistinct.Add(int64(sharing.DistinctFilterSets))
		s.stPredSets.Add(int64(sharing.FilterPredicates))
		s.stPredDistinct.Add(int64(sharing.DistinctPredicates))
		s.stComposed.Add(int64(sharing.ComposedMasks + sharing.PartialMasks))
		s.stGroupSets.Add(int64(sharing.GroupKeySets))
		s.stGroupDistinct.Add(int64(sharing.DistinctGroupings))
		s.stPartialsReused.Add(int64(sharing.PartialsReused))
		s.stPartialsAlloc.Add(int64(sharing.PartialsAllocated))
		s.stPackedKernels.Add(int64(sharing.PackedKernelScans))
		s.stPackedPreds.Add(int64(sharing.PackedPredicateKernels))
	}
	// Cost attribution: the batch pays the full measured CPU (every shard's
	// stage time plus the gather), each query gets a share proportional to
	// the facts it scanned, and the rest of the batch's CPU is recorded as
	// its sharing discount — the work it rode along on. The split conserves:
	// Σ per-query CPUNs == batch CPU exactly (obs.SplitTotal pins the tail).
	if acct != nil && err == nil {
		shardScans, gather := st.Snapshot()
		batchCPU := gather.Nanoseconds()
		for _, ss := range shardScans {
			batchCPU += (ss.FilterMask + ss.GroupDecode + ss.Accumulate + ss.Merge).Nanoseconds()
		}
		weights := make([]int64, len(results))
		for i, res := range results {
			weights[i] = res.Cost.FactsScanned + 1
		}
		shares := obs.SplitTotal(batchCPU, weights)
		for i, res := range results {
			res.Cost.CPUNs += shares[i]
			res.Cost.SharedSavedNs += batchCPU - shares[i]
		}
	}
	// Fair-share settle: reverse every provisional debit taken at assembly
	// and charge each request's measured cost into its tenant's decayed
	// usage window — one lock hold for the whole batch, after the CPU
	// split above so the charge is the attributed cost.
	{
		var costs []obs.QueryCost
		if err == nil {
			costs = make([]obs.QueryCost, len(results))
			for i, res := range results {
				costs[i] = res.Cost
			}
		}
		settleAt := time.Now()
		s.mu.Lock()
		s.settleBatchLocked(batch, costs, settleAt)
		s.mu.Unlock()
	}
	for i, r := range batch {
		out := outcome{err: err}
		if err == nil {
			out.res = results[i]
			// Cache only if the doorkeeper admitted the fingerprint (a
			// repeat, not a one-off) and the view did not mutate during
			// the scan: the executor may have seen the newer mask, and an
			// entry must never claim an epoch older than the data it
			// holds.
			if s.cache != nil {
				if !r.admit {
					s.stDoorkept.Add(1)
				} else if r.view == nil || r.view.Epoch() == r.epoch {
					s.cache.put(r.key, out.res)
				}
			}
		}
		if telem {
			wait := assembled.Sub(r.enqueuedAt)
			// Deduplicated waiters split their request's cost evenly: the
			// scan ran once for all of them, so the per-waiter shares sum
			// back to the request's attributed cost (conservation again).
			var wcosts []obs.QueryCost
			if acct != nil && err == nil {
				wcosts = obs.SplitCost(out.res.Cost, len(r.waiters))
			}
			for wi, w := range r.waiters {
				s.opts.Metrics.ObserveQueueWait(w.user, wait)
				now := time.Now()
				var e2e time.Duration
				if !w.start.IsZero() {
					e2e = now.Sub(w.start)
					s.opts.Metrics.ObserveEndToEnd(w.user, e2e)
				}
				if wcosts != nil {
					acct.RecordQuery(w.user, r.fp, w.tr.ID(), e2e, wcosts[wi])
				}
				if w.tr != nil {
					w.tr.AddSpan("admissionWait", r.enqueuedAt, wait,
						map[string]any{"batchQueries": len(batch)})
					w.tr.Attach(scanSpan)
					var costAttrs map[string]any
					if err == nil {
						c := out.res.Cost
						costAttrs = map[string]any{
							"factsScanned":  c.FactsScanned,
							"bitmapBytes":   c.BitmapBytes,
							"keyColBytes":   c.KeyColBytes,
							"cells":         c.CellsTouched,
							"cpuNs":         c.CPUNs,
							"sharedSavedNs": c.SharedSavedNs,
						}
					}
					w.tr.AddSpan("finalize", scanEnd, now.Sub(scanEnd), costAttrs)
					w.tr.Finish(err)
				}
				s.maybeLogSlow(w.tr.ID(), w.user, r.cq.Query().Fact,
					e2e, wait, scanDur, len(batch), out.res, err)
			}
		}
		for _, w := range r.waiters {
			w.ch <- out
		}
	}
}

// maybeLogSlow emits the structured slow-query record when the knob is on
// and the query crossed the threshold.
func (s *Scheduler) maybeLogSlow(traceID, user, fact string, e2e, wait, scan time.Duration, batchQueries int, res *cube.Result, err error) {
	if s.opts.SlowQuery <= 0 || e2e < s.opts.SlowQuery {
		return
	}
	lg := s.opts.Logger
	if lg == nil {
		lg = slog.Default()
	}
	attrs := []slog.Attr{
		slog.String("traceId", traceID),
		slog.String("user", user),
		slog.String("fact", fact),
		slog.Duration("total", e2e),
		slog.Duration("queueWait", wait),
		slog.Duration("scan", scan),
		slog.Int("batchQueries", batchQueries),
	}
	if res != nil {
		attrs = append(attrs,
			slog.Int64("factsScanned", res.Cost.FactsScanned),
			slog.Int64("cpuNs", res.Cost.CPUNs),
			slog.Int64("bitmapBytes", res.Cost.BitmapBytes),
			slog.Int64("keyColBytes", res.Cost.KeyColBytes),
			slog.Int64("cells", res.Cost.CellsTouched))
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	lg.LogAttrs(context.Background(), slog.LevelWarn, "slow query", attrs...)
}

// Stats is a point-in-time snapshot of the scheduler's counters.
type Stats struct {
	// SnapshotAt is when this snapshot was taken (RFC3339Nano) and
	// UptimeSeconds how long the scheduler has been up — together they
	// let a scraper turn two successive snapshots of the cumulative
	// counters below into rates.
	SnapshotAt    string  `json:"snapshotAt"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Submitted counts every query handed to Submit/SubmitBatch.
	Submitted int64 `json:"submitted"`
	// CacheHits/CacheMisses count result-cache lookups (both 0 when the
	// cache is disabled).
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	// Shared counts queries answered by joining an identical queued query
	// instead of executing again.
	Shared int64 `json:"shared"`
	// Executed counts queries answered by a scan; Batches and FactScans
	// count the shared scans that answered them. Executed/FactScans is the
	// coalesce ratio.
	Executed  int64 `json:"executed"`
	Batches   int64 `json:"batches"`
	FactScans int64 `json:"factScans"`
	// QueueDepth/MaxQueueDepth observe the admission queue; InFlight the
	// scans running right now.
	QueueDepth    int   `json:"queueDepth"`
	MaxQueueDepth int64 `json:"maxQueueDepth"`
	InFlight      int   `json:"inFlight"`
	// Cache footprint.
	CacheBytes     int64 `json:"cacheBytes"`
	CacheEntries   int   `json:"cacheEntries"`
	CacheEvictions int64 `json:"cacheEvictions"`
	// CacheDoorkept counts results not cached because their fingerprint
	// had only been requested once (the admission doorkeeper); NegCacheHits
	// counts invalid queries answered from the negative cache without
	// re-compiling; NegCacheEntries is its current size.
	CacheDoorkept   int64 `json:"cacheDoorkept"`
	NegCacheHits    int64 `json:"negCacheHits"`
	NegCacheEntries int   `json:"negCacheEntries"`
	// TimedOut counts queries dropped from the admission queue past their
	// deadline (Options.Timeout / request context) without executing.
	TimedOut int64 `json:"timedOut"`
	// Overload control (all zero with MaxQueueDepth/TargetQueueWait
	// unset): ShedTotal counts queries refused with ErrOverloaded,
	// ShedByTenant breaks them down per tenant and reason (label
	// cardinality capped into "other"), ShedRatePerSec is the decaying
	// shed rate, QueueWaitEWMAMs the smoothed admission wait the
	// queue_wait threshold compares against, and DrainRatePerSec the
	// smoothed admission rate Retry-After hints derive from. The snapshot
	// is taken under one lock: sum over ShedByTenant always equals
	// ShedTotal.
	ShedTotal       int64                       `json:"shedTotal"`
	ShedByTenant    map[string]map[string]int64 `json:"shedByTenant,omitempty"`
	ShedRatePerSec  float64                     `json:"shedRatePerSec"`
	QueueWaitEWMAMs float64                     `json:"queueWaitEwmaMs"`
	DrainRatePerSec float64                     `json:"drainRatePerSec"`
	// FairShares is every live tenant's fair-share ledger, heaviest share
	// first (same lock as the shed counters — never torn against them).
	FairShares []TenantShare `json:"fairShares,omitempty"`
	// CoalesceWindowNs and ResultCacheCapBytes are the live values of the
	// runtime-tunable knobs (they drift from the configured Options under
	// the adaptive tuner).
	CoalesceWindowNs    int64 `json:"coalesceWindowNs"`
	ResultCacheCapBytes int64 `json:"resultCacheCapBytes"`
	// Sharded execution (all zero on an unsharded engine; the engine fills
	// them from the shard table): FactShards is the shard count,
	// ShardFactCounts the per-shard fact totals (the hash-partition
	// balance), ShardScans the per-shard scans the scatter-gather executor
	// fanned batches out to (ShardScans/FactScans is the fan-out).
	FactShards      int   `json:"factShards,omitempty"`
	ShardFactCounts []int `json:"shardFactCounts,omitempty"`
	ShardScans      int64 `json:"shardScans,omitempty"`
	// ArtifactCache reports the cross-batch artifact cache (zero value
	// when disabled; aggregated across shards on a sharded engine).
	ArtifactCache cube.ArtifactCacheStats `json:"artifactCache"`
	// Cross-query subexpression sharing inside coalesced scans (all zero
	// when DisableSharedSubexpr is set): FilterSets counts queries that
	// carried filters, FilterMasks the distinct filter bitmaps their scans
	// needed; FilterPredicates counts (query, distinct-predicate) uses,
	// PredicateMasks the distinct single-filter sub-fingerprints among
	// them, ComposedMasks the set masks produced by AND-composing
	// per-predicate bitmaps (full or partial); GroupKeySets counts
	// (query, grouping) pairs, GroupKeyCols the distinct roll-up key
	// columns.
	FilterSets       int64 `json:"filterSets"`
	FilterMasks      int64 `json:"filterMasks"`
	FilterPredicates int64 `json:"filterPredicates"`
	PredicateMasks   int64 `json:"predicateMasks"`
	ComposedMasks    int64 `json:"composedMasks"`
	GroupKeySets     int64 `json:"groupKeySets"`
	GroupKeyCols     int64 `json:"groupKeyCols"`
	// PartialsReused / PartialsAllocated count the per-worker partial
	// aggregation tables the executor's scans took from the per-fact-table
	// pools vs allocated fresh (see cube.SharingStats); reused /
	// (reused + allocated) is the pool hit rate — near 1 once the
	// scheduler reaches a warm steady state.
	PartialsReused    int64 `json:"partialsReused"`
	PartialsAllocated int64 `json:"partialsAllocated"`
	// ArtifactDoorkept counts artifacts the cross-batch cache's admission
	// doorkeeper turned away (= ArtifactCache.Doorkept, surfaced top-level
	// beside the result cache's CacheDoorkept).
	ArtifactDoorkept int64 `json:"artifactDoorkept"`
	// PackedKernelScans counts plan scans that dispatched a monomorphic
	// stage-3 aggregation kernel; PackedPredicateKernels counts stage-1
	// predicate bitmaps filled word-at-a-time from the packed columns
	// (both 0 when packed execution is off — see cube.SharingStats).
	PackedKernelScans      int64 `json:"packedKernelScans"`
	PackedPredicateKernels int64 `json:"packedPredicateKernels"`
	// Packed reports the compressed-column storage footprint (bit widths
	// per column, packed vs unpacked bytes; filled by the engine —
	// aggregated across shards on a sharded engine).
	Packed cube.PackedStats `json:"packed"`
	// CoalesceRatio is queries answered per fact scan, (Executed + Shared)
	// / FactScans: > 1 means the scheduler is saving scans. CacheHitRate
	// is hits / lookups. FilterMaskSharing, PredicateSharing and
	// GroupKeySharing are instances per distinct artifact
	// (FilterSets/FilterMasks, FilterPredicates/PredicateMasks and
	// GroupKeySets/GroupKeyCols): > 1 means batches actually shared
	// stage-1/2 work. All 0 until there is data.
	CoalesceRatio     float64 `json:"coalesceRatio"`
	CacheHitRate      float64 `json:"cacheHitRate"`
	FilterMaskSharing float64 `json:"filterMaskSharing"`
	PredicateSharing  float64 `json:"predicateSharing"`
	GroupKeySharing   float64 `json:"groupKeySharing"`
}

// Stats snapshots the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	now := time.Now()
	st := Stats{
		SnapshotAt:             now.UTC().Format(time.RFC3339Nano),
		UptimeSeconds:          now.Sub(s.startedAt).Seconds(),
		Submitted:              s.stSubmitted.Load(),
		Shared:                 s.stShared.Load(),
		Executed:               s.stExecuted.Load(),
		Batches:                s.stBatches.Load(),
		FactScans:              s.stScans.Load(),
		MaxQueueDepth:          s.stMaxQueue.Load(),
		CacheDoorkept:          s.stDoorkept.Load(),
		NegCacheHits:           s.stNegHits.Load(),
		TimedOut:               s.stTimedOut.Load(),
		ArtifactCache:          s.opts.Artifacts.Stats(),
		FilterSets:             s.stFilterSets.Load(),
		FilterMasks:            s.stFilterDistinct.Load(),
		FilterPredicates:       s.stPredSets.Load(),
		PredicateMasks:         s.stPredDistinct.Load(),
		ComposedMasks:          s.stComposed.Load(),
		GroupKeySets:           s.stGroupSets.Load(),
		GroupKeyCols:           s.stGroupDistinct.Load(),
		PartialsReused:         s.stPartialsReused.Load(),
		PartialsAllocated:      s.stPartialsAlloc.Load(),
		PackedKernelScans:      s.stPackedKernels.Load(),
		PackedPredicateKernels: s.stPackedPreds.Load(),
	}
	st.ArtifactDoorkept = st.ArtifactCache.Doorkept
	if s.negCache != nil {
		st.NegCacheEntries = s.negCache.size()
	}
	if s.cache != nil {
		st.CacheHits, st.CacheMisses, st.CacheEvictions, st.CacheBytes, st.CacheEntries = s.cache.stats()
	}
	// One lock hold snapshots all the mutually-consistent scheduler state:
	// queue depth, shed counters, and the fair-share ledgers are never
	// torn against each other (sum over ShedByTenant == ShedTotal in any
	// snapshot a scraper sees).
	s.mu.Lock()
	st.QueueDepth = s.queued
	st.ShedTotal = s.shedTotal
	if len(s.shedCounts) > 0 {
		st.ShedByTenant = make(map[string]map[string]int64, len(s.shedCounts))
		for user, byReason := range s.shedCounts {
			m := make(map[string]int64, len(byReason))
			for reason, n := range byReason {
				m[reason] = n
			}
			st.ShedByTenant[user] = m
		}
	}
	st.ShedRatePerSec = s.shedRateLocked(now)
	st.QueueWaitEWMAMs = s.waitEWMA / float64(time.Millisecond)
	st.DrainRatePerSec = s.drainEWMA
	st.FairShares = s.fairSharesLocked(now)
	s.mu.Unlock()
	st.CoalesceWindowNs = s.window().Nanoseconds()
	if s.cache != nil {
		st.ResultCacheCapBytes = s.cache.capBytes()
	}
	if s.slots != nil {
		st.InFlight = len(s.slots)
	}
	if st.FactScans > 0 {
		st.CoalesceRatio = float64(st.Executed+st.Shared) / float64(st.FactScans)
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(lookups)
	}
	if st.FilterMasks > 0 {
		st.FilterMaskSharing = float64(st.FilterSets) / float64(st.FilterMasks)
	}
	if st.PredicateMasks > 0 {
		st.PredicateSharing = float64(st.FilterPredicates) / float64(st.PredicateMasks)
	}
	if st.GroupKeyCols > 0 {
		st.GroupKeySharing = float64(st.GroupKeySets) / float64(st.GroupKeyCols)
	}
	return st
}

package qsched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"sdwp/internal/cube"
	"sdwp/internal/datagen"
	"sdwp/internal/obs"
)

// sameAnswer compares two Results ignoring the Cost vector: attribution
// depends on the scheduling and sharing mode a query happened to run
// under (batch CPU shares, artifact splits), the logical answer must not.
func sameAnswer(got, want *cube.Result) bool {
	g, w := *got, *want
	g.Cost, w.Cost = obs.QueryCost{}, obs.QueryCost{}
	return reflect.DeepEqual(&g, &w)
}

func testDataset(t testing.TB) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Seed: 1, States: 5, Cities: 15, Stores: 80, Customers: 60,
		Products: 30, Days: 30, Sales: 4000,
		AirportEvery: 5, TrainLines: 4, Hospitals: 5, Highways: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

var countQuery = cube.Query{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}

// cityQuery returns a distinct single-group query per i (different level
// filters would need attributes; distinct Limit keeps plans apart).
func cityQuery(i int) cube.Query {
	return cube.Query{
		Fact:       "Sales",
		GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: "City"}},
		Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}},
		OrderBy:    &cube.OrderBy{Agg: 0, Desc: true},
		Limit:      i + 1,
	}
}

// TestCoalescingSharedScan floods the scheduler from many goroutines and
// checks (a) every result is identical to the direct serial path and (b)
// fewer fact-table scans ran than queries executed — the coalescing the
// subsystem exists for.
func TestCoalescingSharedScan(t *testing.T) {
	ds := testDataset(t)
	s := New(ds.Cube, Options{Window: 2 * time.Millisecond, MaxInFlight: 1})
	defer s.Close()

	const users, perUser = 8, 6
	want := make(map[int]*cube.Result)
	for i := 0; i < perUser; i++ {
		res, err := ds.Cube.Execute(cityQuery(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	var wg sync.WaitGroup
	errs := make(chan error, users*perUser)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for k := 0; k < perUser; k++ {
				i := (k + u) % perUser // stagger so batches mix distinct plans
				res, err := s.Submit(cityQuery(i), nil, fmt.Sprintf("user%d", u))
				if err != nil {
					errs <- err
					return
				}
				if !sameAnswer(res, want[i]) {
					errs <- fmt.Errorf("user %d query %d: result differs from serial", u, i)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Submitted != users*perUser {
		t.Errorf("submitted = %d, want %d", st.Submitted, users*perUser)
	}
	if st.Executed+st.Shared != st.Submitted {
		t.Errorf("executed %d + shared %d != submitted %d", st.Executed, st.Shared, st.Submitted)
	}
	if st.FactScans >= st.Submitted {
		t.Errorf("fact scans %d not fewer than %d queries: no coalescing", st.FactScans, st.Submitted)
	}
	if st.CoalesceRatio <= 1 {
		t.Errorf("coalesce ratio = %.2f, want > 1", st.CoalesceRatio)
	}
}

// TestDedupIdenticalConcurrentQueries checks that identical concurrent
// queries execute once and every waiter still gets the full result.
func TestDedupIdenticalConcurrentQueries(t *testing.T) {
	ds := testDataset(t)
	s := New(ds.Cube, Options{Window: 2 * time.Millisecond, MaxInFlight: 1})
	defer s.Close()
	want, err := ds.Cube.Execute(countQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := s.Submit(countQuery, nil, fmt.Sprintf("user%d", g%4))
			if err != nil {
				errs <- err
				return
			}
			if !sameAnswer(res, want) {
				errs <- fmt.Errorf("goroutine %d: result differs", g)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Shared == 0 {
		t.Error("no dedup sharing under identical concurrent queries")
	}
	if st.Executed+st.Shared != n {
		t.Errorf("executed %d + shared %d != %d", st.Executed, st.Shared, n)
	}
}

// TestCacheHitAndEpochInvalidation checks the personalized cache path:
// the doorkeeper admits a fingerprint on its second request (the first
// request of a one-off is never cached), a later repeat is a hit, a view
// mutation (epoch bump) is a miss that recomputes against the new state,
// and the stale entry is never served.
func TestCacheHitAndEpochInvalidation(t *testing.T) {
	ds := testDataset(t)
	s := New(ds.Cube, Options{CacheBytes: 1 << 20})
	defer s.Close()
	v := cube.NewView(ds.Cube)
	if err := v.SelectMember("Store", "City", 0); err != nil {
		t.Fatal(err)
	}

	first, err := s.Submit(countQuery, v, "alice") // one-off: not cached
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheDoorkept != 1 {
		t.Errorf("doorkept = %d after one-off, want 1", st.CacheDoorkept)
	}
	second, err := s.Submit(countQuery, v, "alice") // admitted and cached
	if err != nil {
		t.Fatal(err)
	}
	third, err := s.Submit(countQuery, v, "alice") // served from cache
	if err != nil {
		t.Fatal(err)
	}
	if third != second {
		t.Error("repeat query did not return the cached result")
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached result differs from the first execution")
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", st.CacheHits)
	}

	// Mutating the view bumps its epoch: the next lookup must miss and see
	// the wider selection.
	if err := v.SelectMember("Store", "City", 1); err != nil {
		t.Fatal(err)
	}
	after, err := s.Submit(countQuery, v, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if after == first {
		t.Fatal("post-mutation query served the pre-epoch cached result")
	}
	want, err := ds.Cube.Execute(countQuery, v)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, want) {
		t.Errorf("post-mutation result differs from direct execution")
	}
	if after.MatchedFacts < first.MatchedFacts {
		t.Errorf("wider selection matched %d < %d", after.MatchedFacts, first.MatchedFacts)
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Errorf("cache hits after mutation = %d, want still 1", st.CacheHits)
	}
}

// TestFairAdmissionRoundRobin drives the batch assembler directly: with
// one flooding tenant and several light ones — all with identical (never
// yet measured) cost profiles — deficit-weighted assembly must degrade
// exactly to round-robin: one query per tenant before the flooder gets a
// second slot.
func TestFairAdmissionRoundRobin(t *testing.T) {
	s := &Scheduler{tenants: map[string]*tenant{}, byKey: map[string]*request{}}
	enqueue := func(user string, n int) {
		for i := 0; i < n; i++ {
			s.enqueueLocked(&request{key: fmt.Sprintf("%s-%d", user, i), user: user}, user)
		}
	}
	enqueue("heavy", 10)
	enqueue("lightA", 1)
	enqueue("lightB", 1)

	batch := s.assembleLocked(6)
	if len(batch) != 6 {
		t.Fatalf("batch size = %d, want 6", len(batch))
	}
	var order []string
	for _, r := range batch {
		order = append(order, r.key)
	}
	// One slot per tenant in rotation, then the flooder fills the rest.
	want := []string{"heavy-0", "lightA-0", "lightB-0", "heavy-1", "heavy-2", "heavy-3"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("assembly order = %v, want %v", order, want)
	}
	// The remaining backlog drains in a later batch.
	rest := s.assembleLocked(64)
	if len(rest) != 6 || s.queued != 0 {
		t.Errorf("second batch = %d requests, queued = %d; want 6 / 0", len(rest), s.queued)
	}
	if len(s.byKey) != 0 {
		t.Errorf("dedup index has %d stale entries", len(s.byKey))
	}
}

// TestValidationErrorDoesNotPoisonBatch checks that a malformed query
// fails alone while concurrent valid queries coalesce and succeed.
func TestValidationErrorDoesNotPoisonBatch(t *testing.T) {
	ds := testDataset(t)
	s := New(ds.Cube, Options{Window: 2 * time.Millisecond, MaxInFlight: 1})
	defer s.Close()
	bad := cube.Query{Fact: "Ghost", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}

	var wg sync.WaitGroup
	errs := make(chan error, 9)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := s.Submit(countQuery, nil, fmt.Sprintf("user%d", g)); err != nil {
				errs <- fmt.Errorf("good query failed: %w", err)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(bad, nil, "mallory"); err == nil {
			errs <- fmt.Errorf("malformed query accepted")
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSubmitBatchPreservesOrder checks order, per-entry views, and the
// view-length mismatch error.
func TestSubmitBatchPreservesOrder(t *testing.T) {
	ds := testDataset(t)
	s := New(ds.Cube, Options{Window: time.Millisecond})
	defer s.Close()
	v := cube.NewView(ds.Cube)
	if err := v.SelectMember("Store", "City", 2); err != nil {
		t.Fatal(err)
	}
	qs := []cube.Query{cityQuery(0), countQuery, cityQuery(2)}
	vs := []*cube.View{nil, v, nil}
	got, err := s.SubmitBatch(qs, vs, "alice")
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		want, err := ds.Cube.Execute(qs[i], vs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswer(got[i], want) {
			t.Errorf("batch entry %d differs from direct execution", i)
		}
	}
	if _, err := s.SubmitBatch(qs, vs[:2], "alice"); err == nil {
		t.Error("view-length mismatch accepted")
	}
	bad := cube.Query{Fact: "Ghost", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}
	if _, err := s.SubmitBatch([]cube.Query{countQuery, bad}, nil, "alice"); err == nil {
		t.Error("batch with malformed query succeeded")
	}
}

// TestSubmitBatchSingleScanWhenIdle pins the batch-admission guarantee: a
// whole dashboard batch admitted on an idle scheduler lands in ONE shared
// scan, exactly like the pre-scheduler cube.ExecuteBatch path.
func TestSubmitBatchSingleScanWhenIdle(t *testing.T) {
	ds := testDataset(t)
	s := New(ds.Cube, Options{}) // window 0 — the default engine shape
	defer s.Close()
	qs := []cube.Query{cityQuery(0), cityQuery(1), cityQuery(2), countQuery}
	res, err := s.SubmitBatch(qs, nil, "alice")
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		want, err := ds.Cube.Execute(qs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswer(res[i], want) {
			t.Errorf("batch entry %d differs from direct execution", i)
		}
	}
	st := s.Stats()
	if st.Batches != 1 || st.FactScans != 1 {
		t.Errorf("batches = %d, factScans = %d; want 1 shared scan for the whole batch",
			st.Batches, st.FactScans)
	}
}

// TestCloseDrainsAndRejects checks lifecycle: Close completes queued work,
// later Submits fail with ErrClosed, and Close is idempotent.
func TestCloseDrainsAndRejects(t *testing.T) {
	ds := testDataset(t)
	s := New(ds.Cube, Options{Window: 5 * time.Millisecond, MaxInFlight: 1})
	const n = 12
	results := make(chan error, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, err := s.Submit(cityQuery(g%4), nil, fmt.Sprintf("user%d", g))
			results <- err
		}(g)
	}
	// Give the submitters a moment to queue, then close under load.
	time.Sleep(2 * time.Millisecond)
	s.Close()
	wg.Wait()
	close(results)
	for err := range results {
		// Every submit either completed (drained) or was rejected cleanly.
		if err != nil && err != ErrClosed {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(countQuery, nil, "late"); err != ErrClosed {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestCloseRejectsCachedQueries pins the shutdown contract for the cache
// path: after Close even a query with a warm cache entry must get
// ErrClosed, not a stealth success.
func TestCloseRejectsCachedQueries(t *testing.T) {
	ds := testDataset(t)
	s := New(ds.Cube, Options{CacheBytes: 1 << 20})
	for i := 0; i < 3; i++ { // doorkeeper admits on the 2nd, 3rd is a hit
		if _, err := s.Submit(countQuery, nil, "alice"); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.CacheHits)
	}
	s.Close()
	if _, err := s.Submit(countQuery, nil, "alice"); err != ErrClosed {
		t.Errorf("cached query after close: err = %v, want ErrClosed", err)
	}
}

// TestNegativeCacheRepeatedInvalidQueries checks that a repeated invalid
// query is answered from the negative cache — same error, one compile —
// and that distinct invalid queries occupy distinct entries.
func TestNegativeCacheRepeatedInvalidQueries(t *testing.T) {
	ds := testDataset(t)
	s := New(ds.Cube, Options{})
	defer s.Close()
	bad := cube.Query{Fact: "Ghost", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}

	_, err1 := s.Submit(bad, nil, "alice")
	if err1 == nil {
		t.Fatal("invalid query accepted")
	}
	if st := s.Stats(); st.NegCacheHits != 0 || st.NegCacheEntries != 1 {
		t.Fatalf("after first failure: negHits=%d entries=%d, want 0/1", st.NegCacheHits, st.NegCacheEntries)
	}
	_, err2 := s.Submit(bad, nil, "bob") // cached, regardless of user
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("cached error differs: %v vs %v", err2, err1)
	}
	bad2 := cube.Query{Fact: "Sales"} // no aggregates
	if _, err := s.Submit(bad2, nil, "alice"); err == nil {
		t.Fatal("aggregate-less query accepted")
	}
	st := s.Stats()
	if st.NegCacheHits != 1 || st.NegCacheEntries != 2 {
		t.Errorf("negHits=%d entries=%d, want 1/2", st.NegCacheHits, st.NegCacheEntries)
	}
	// The batch path consults the same negative cache.
	if _, err := s.SubmitBatch([]cube.Query{bad}, nil, "carol"); err == nil {
		t.Fatal("batch with cached-invalid query accepted")
	}
	if st := s.Stats(); st.NegCacheHits != 2 {
		t.Errorf("negHits after batch = %d, want 2", st.NegCacheHits)
	}
	// A valid query still passes untouched.
	if _, err := s.Submit(countQuery, nil, "alice"); err != nil {
		t.Fatal(err)
	}
}

// TestErrCacheBounded checks the negative cache's FIFO bound directly.
func TestErrCacheBounded(t *testing.T) {
	c := newErrCache(3)
	for i := 0; i < 5; i++ {
		c.put(fmt.Sprintf("fp%d", i), fmt.Errorf("err%d", i))
	}
	if c.size() != 3 {
		t.Fatalf("size = %d, want 3", c.size())
	}
	for _, fp := range []string{"fp0", "fp1"} {
		if _, ok := c.get(fp); ok {
			t.Errorf("%s survived FIFO eviction", fp)
		}
	}
	for _, fp := range []string{"fp2", "fp3", "fp4"} {
		if _, ok := c.get(fp); !ok {
			t.Errorf("%s missing", fp)
		}
	}
	// Re-putting an existing key neither duplicates nor evicts.
	c.put("fp4", fmt.Errorf("other"))
	if err, _ := c.get("fp4"); err == nil || err.Error() != "err4" {
		t.Errorf("re-put replaced entry: %v", err)
	}
}

// TestDoorkeeperRotation checks the admission filter: first request of a
// fingerprint is not admitted, the second is, and generation rotation
// keeps hot fingerprints while forgetting cold ones.
func TestDoorkeeperRotation(t *testing.T) {
	d := newDoorkeeper(2)
	if d.request("a") {
		t.Error("first request of a admitted")
	}
	if !d.request("a") {
		t.Error("second request of a not admitted")
	}
	// Fill the current generation ("a" + "b"), then force rotation.
	d.request("b")
	d.request("c") // rotates: old={a,b}, cur={c}
	if !d.request("a") {
		t.Error("hot fingerprint forgotten across one rotation")
	}
	// Two full rotations without touching "b" forget it.
	d.request("d")
	d.request("e")
	d.request("f")
	if d.request("b") {
		t.Error("cold fingerprint survived two rotations")
	}
}

// TestSharingStatsReported checks that a batch whose queries share a
// filter set and a grouping reports sharing ratios > 1 through Stats, and
// that DisableSharedSubexpr zeroes the counters while returning identical
// results.
func TestSharingStatsReported(t *testing.T) {
	ds := testDataset(t)
	filters := []cube.AttrFilter{{
		LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
		Attr:     "population", Op: cube.OpGt, Value: float64(100000),
	}}
	qs := make([]cube.Query, 6)
	for i := range qs {
		qs[i] = cube.Query{
			Fact:       "Sales",
			GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: "City"}},
			Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}},
			Filters:    filters,
			Limit:      i + 1, // distinct plans, shared subexpressions
		}
	}

	shared := New(ds.Cube, Options{})
	defer shared.Close()
	resShared, err := shared.SubmitBatch(qs, nil, "alice")
	if err != nil {
		t.Fatal(err)
	}
	st := shared.Stats()
	if st.FilterSets != 6 || st.FilterMasks != 1 {
		t.Errorf("filter sharing = %d/%d, want 6/1", st.FilterSets, st.FilterMasks)
	}
	if st.GroupKeySets != 6 || st.GroupKeyCols != 1 {
		t.Errorf("group sharing = %d/%d, want 6/1", st.GroupKeySets, st.GroupKeyCols)
	}
	if st.FilterMaskSharing <= 1 || st.GroupKeySharing <= 1 {
		t.Errorf("sharing ratios = %.1f/%.1f, want > 1", st.FilterMaskSharing, st.GroupKeySharing)
	}

	plain := New(ds.Cube, Options{DisableSharedSubexpr: true})
	defer plain.Close()
	resPlain, err := plain.SubmitBatch(qs, nil, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if st := plain.Stats(); st.FilterSets != 0 || st.GroupKeySets != 0 {
		t.Errorf("sharing counters with sharing disabled = %d/%d, want 0/0",
			st.FilterSets, st.GroupKeySets)
	}
	for i := range resShared {
		if !sameAnswer(resShared[i], resPlain[i]) {
			t.Errorf("entry %d: shared and unshared batch results differ", i)
		}
	}
}

// --- randomized concurrent equivalence harness (acceptance criterion) ---

var equivLevels = []cube.LevelRef{
	{Dimension: "Store", Level: "Store"}, {Dimension: "Store", Level: "City"},
	{Dimension: "Store", Level: "State"}, {Dimension: "Store", Level: "Country"},
	{Dimension: "Customer", Level: "Segment"}, {Dimension: "Product", Level: "Family"},
	{Dimension: "Time", Level: "Month"},
}

// randomQuery draws a random aggregation; SUM/AVG only over the
// integer-valued UnitSales so float64 sums are exact and byte-identity
// holds across executors (see internal/cube/exec_equiv_test.go).
func randomQuery(rng *rand.Rand) cube.Query {
	q := cube.Query{Fact: "Sales"}
	refs := append([]cube.LevelRef(nil), equivLevels...)
	rng.Shuffle(len(refs), func(i, j int) { refs[i], refs[j] = refs[j], refs[i] })
	q.GroupBy = refs[:rng.Intn(3)]
	for n := 1 + rng.Intn(2); len(q.Aggregates) < n; {
		switch rng.Intn(4) {
		case 0:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Agg: cube.AggCount})
		case 1:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: "UnitSales", Agg: cube.AggSum})
		case 2:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: "StoreCost", Agg: cube.AggMin})
		case 3:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: "StoreSales", Agg: cube.AggMax})
		}
	}
	if rng.Intn(2) == 0 {
		q.OrderBy = &cube.OrderBy{Agg: rng.Intn(len(q.Aggregates)), Desc: rng.Intn(2) == 0}
	}
	if rng.Intn(2) == 0 {
		q.Limit = 1 + rng.Intn(10)
	}
	return q
}

func randomView(rng *rand.Rand, c *cube.Cube) *cube.View {
	if rng.Intn(3) == 0 {
		return nil
	}
	v := cube.NewView(c)
	for i := 0; i < 2+rng.Intn(6); i++ {
		if err := v.SelectMember("Store", "City", int32(rng.Intn(15))); err != nil {
			panic(err)
		}
	}
	return v
}

// TestConcurrentEquivalenceRandomized is the correctness bar: randomized
// personalized queries hammered through the scheduler concurrently — with
// the window, dedup, the in-flight bound, and the result cache all active
// — must return results byte-identical to the direct serial path.
func TestConcurrentEquivalenceRandomized(t *testing.T) {
	ds := testDataset(t)
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const cases = 40
			qs := make([]cube.Query, cases)
			vs := make([]*cube.View, cases)
			serial := make([]*cube.Result, cases)
			for i := range qs {
				qs[i] = randomQuery(rng)
				vs[i] = randomView(rng, ds.Cube)
				var err error
				serial[i], err = ds.Cube.Execute(qs[i], vs[i])
				if err != nil {
					t.Fatalf("case %d: serial: %v", i, err)
				}
			}
			s := New(ds.Cube, Options{
				Window:      time.Millisecond,
				MaxInFlight: 2,
				MaxBatch:    8, // force several batches per round
				CacheBytes:  1 << 20,
				Workers:     3,
			})
			defer s.Close()

			var wg sync.WaitGroup
			errs := make(chan error, cases*3)
			for round := 0; round < 3; round++ { // later rounds exercise cache hits
				for g := 0; g < 4; g++ {
					wg.Add(1)
					go func(round, g int) {
						defer wg.Done()
						for i := g; i < cases; i += 4 {
							res, err := s.Submit(qs[i], vs[i], fmt.Sprintf("user%d", i%5))
							if err != nil {
								errs <- fmt.Errorf("round %d case %d: %w", round, i, err)
								return
							}
							if !sameAnswer(res, serial[i]) {
								errs <- fmt.Errorf("round %d case %d: scheduler result differs from serial", round, i)
								return
							}
						}
					}(round, g)
				}
				wg.Wait()
			}
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.CacheHits == 0 {
				t.Error("harness never exercised the cache-hit path")
			}
			if st.Executed+st.Shared+st.CacheHits != st.Submitted {
				t.Errorf("accounting: executed %d + shared %d + hits %d != submitted %d",
					st.Executed, st.Shared, st.CacheHits, st.Submitted)
			}
		})
	}
}

// TestAdmissionTimeoutDropsQueuedQueries covers Options.Timeout: with a
// deadline shorter than the coalescing window, every query expires while
// still queued and must be dropped with ErrTimeout — deterministically,
// without executing — and counted in Stats.TimedOut.
func TestAdmissionTimeoutDropsQueuedQueries(t *testing.T) {
	ds := testDataset(t)
	// The window holds the batch open well past the 1ns deadline, so every
	// request is expired by the time the dispatcher assembles.
	s := New(ds.Cube, Options{Window: 20 * time.Millisecond, Timeout: time.Nanosecond})
	defer s.Close()

	const n = 6
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, err := s.Submit(cityQuery(g), nil, fmt.Sprintf("user%d", g))
			errs <- err
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	}
	st := s.Stats()
	if st.TimedOut != n {
		t.Errorf("Stats.TimedOut = %d, want %d", st.TimedOut, n)
	}
	if st.Executed != 0 {
		t.Errorf("expired queries executed: %d", st.Executed)
	}

	// Without a deadline the same scheduler shape executes normally.
	s2 := New(ds.Cube, Options{Window: time.Millisecond})
	defer s2.Close()
	if _, err := s2.Submit(countQuery, nil, "alice"); err != nil {
		t.Fatalf("no-timeout submit: %v", err)
	}
	if st := s2.Stats(); st.TimedOut != 0 {
		t.Errorf("spurious timeouts: %d", st.TimedOut)
	}
}

// TestSubmitCtxCancellationUnblocks covers the per-request context: a
// canceled context must unblock the caller with ctx.Err() even while the
// query is still queued behind the window.
func TestSubmitCtxCancellationUnblocks(t *testing.T) {
	ds := testDataset(t)
	s := New(ds.Cube, Options{Window: 50 * time.Millisecond})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.SubmitCtx(ctx, countQuery, nil, "alice")
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SubmitCtx did not unblock on cancellation")
	}
}

// TestSubmitBatchCtxDeadline covers the batch context path: a context
// deadline earlier than the window times the whole batch out with
// ErrTimeout (dropped at assembly) or DeadlineExceeded (unblocked wait).
func TestSubmitBatchCtxDeadline(t *testing.T) {
	ds := testDataset(t)
	s := New(ds.Cube, Options{Window: 50 * time.Millisecond})
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := s.SubmitBatchCtx(ctx, []cube.Query{countQuery, cityQuery(1)}, nil, "alice")
	if err == nil || (!errors.Is(err, ErrTimeout) && !errors.Is(err, context.DeadlineExceeded)) {
		t.Errorf("err = %v, want ErrTimeout or DeadlineExceeded", err)
	}
}

// TestCloseUnderInFlightLoad is the shutdown regression of the ISSUE:
// Close called while scans are in flight and queries are still arriving
// must terminate every Submit (result, ErrClosed, or a timeout) and
// return within a bounded time — no goroutine leak, no silent hang.
func TestCloseUnderInFlightLoad(t *testing.T) {
	ds := testDataset(t)
	for round := 0; round < 5; round++ {
		s := New(ds.Cube, Options{Window: time.Millisecond, MaxInFlight: 1, Workers: 2})
		const n = 24
		var wg sync.WaitGroup
		errs := make(chan error, n)
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				res, err := s.Submit(cityQuery(g%6), nil, fmt.Sprintf("user%d", g%4))
				if err == nil && res == nil {
					errs <- fmt.Errorf("nil result without error")
					return
				}
				errs <- err
			}(g)
		}
		// Close races the submitters: some queries are queued, some are
		// mid-scan, some have not been admitted yet.
		closed := make(chan struct{})
		go func() { s.Close(); close(closed) }()

		waited := make(chan struct{})
		go func() { wg.Wait(); close(waited) }()
		deadline := time.After(10 * time.Second)
		select {
		case <-waited:
		case <-deadline:
			t.Fatal("Submit goroutines leaked after Close")
		}
		select {
		case <-closed:
		case <-deadline:
			t.Fatal("Close hung with queries in flight")
		}
		close(errs)
		for err := range errs {
			if err != nil && err != ErrClosed {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
}

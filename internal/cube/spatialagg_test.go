package cube

import (
	"math"
	"testing"

	"sdwp/internal/geom"
)

func TestSpatialSummaryByCity(t *testing.T) {
	c := testWarehouse(t)
	rows, err := c.SpatialSummary("Store", "Store", "City", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cities with stores: Alicante (s0,s1), Elche (s2), MadridCity (s3,s4).
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Group != "Alicante" || rows[1].Group != "Elche" || rows[2].Group != "MadridCity" {
		t.Fatalf("group order = %v %v %v", rows[0].Group, rows[1].Group, rows[2].Group)
	}
	ali := rows[0]
	if ali.Count != 2 {
		t.Errorf("Alicante count = %d", ali.Count)
	}
	// Centroid of s0 (-0.48,38.34) and s1 (-0.49,38.35).
	if math.Abs(ali.Centroid.X-(-0.485)) > 1e-9 || math.Abs(ali.Centroid.Y-38.345) > 1e-9 {
		t.Errorf("Alicante centroid = %v", ali.Centroid)
	}
	if !ali.Bounds.ContainsPoint(geom.Pt(-0.48, 38.34)) || !ali.Bounds.ContainsPoint(geom.Pt(-0.49, 38.35)) {
		t.Errorf("Alicante bounds = %+v", ali.Bounds)
	}
	// Two points hull degenerates to a line; singleton to a point.
	if _, ok := ali.Hull.(geom.Line); !ok {
		t.Errorf("two-store hull type %T", ali.Hull)
	}
	if _, ok := rows[1].Hull.(geom.Point); !ok {
		t.Errorf("one-store hull type %T", rows[1].Hull)
	}
}

func TestSpatialSummaryAtCoarserLevels(t *testing.T) {
	c := testWarehouse(t)
	rows, err := c.SpatialSummary("Store", "Store", "Country", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Group != "Spain" || rows[0].Count != 5 {
		t.Fatalf("country summary = %+v", rows)
	}
	poly, ok := rows[0].Hull.(geom.Polygon)
	if !ok {
		t.Fatalf("5-store hull type %T", rows[0].Hull)
	}
	// All stores inside the hull.
	for i := int32(0); i < 5; i++ {
		g := c.Dimension("Store").Level("Store").Geometry(i)
		if !geom.Intersects(g, poly) {
			t.Errorf("store %d outside hull", i)
		}
	}
	// Identity grouping (level == groupLevel) gives one row per member.
	rows, err = c.SpatialSummary("Store", "Store", "Store", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("identity summary rows = %d", len(rows))
	}
}

func TestSpatialSummaryHonoursView(t *testing.T) {
	c := testWarehouse(t)
	v := NewView(c)
	_ = v.SelectMember("Store", "Store", 0)
	_ = v.SelectMember("Store", "Store", 3)
	rows, err := c.SpatialSummary("Store", "Store", "City", v)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("masked rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Count != 1 {
			t.Errorf("group %s count = %d", r.Group, r.Count)
		}
	}
}

func TestSpatialSummaryErrors(t *testing.T) {
	c := testWarehouse(t)
	if _, err := c.SpatialSummary("Ghost", "Store", "City", nil); err == nil {
		t.Error("unknown dimension")
	}
	if _, err := c.SpatialSummary("Store", "Ghost", "City", nil); err == nil {
		t.Error("unknown level")
	}
	if _, err := c.SpatialSummary("Store", "Store", "Ghost", nil); err == nil {
		t.Error("unknown group level")
	}
	if _, err := c.SpatialSummary("Store", "City", "Store", nil); err == nil {
		t.Error("finer group level accepted")
	}
	if _, err := c.SpatialSummary("Time", "Day", "Month", nil); err == nil {
		t.Error("non-spatial level accepted")
	}
}

package cube_test

// Allocation-budget assertion for the single-worker batch paths: BENCH_5
// showed workers=1/shared=true allocating ~1.6MB/op more than
// shared=false, which turned out to be cold-start artifact allocation
// amortized over too few benchmark iterations rather than a leak — the
// release path does return artifacts to the per-table pools. This test
// pins that conclusion: once the pools are warm, a sharing batch may not
// allocate meaningfully more bytes per run than the fused baseline, so a
// future regression in releaseArtifacts (or in partial pooling) fails
// here instead of only drifting the benchmark trajectory.

import (
	"runtime"
	"runtime/debug"
	"testing"

	"sdwp/internal/cube"
	"sdwp/internal/datagen"
)

// bytesPerRun reports steady-state allocated bytes per call of f: GC is
// disabled so sync.Pool contents survive (we are measuring the warm
// path), one warm-up call fills the pools, and TotalAlloc deltas average
// over runs.
func bytesPerRun(runs int, f func()) uint64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	f() // warm the pools
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / uint64(runs)
}

func TestSingleWorkerSharedBatchAllocBudget(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Seed: 7, States: 4, Cities: 20, Stores: 120, Customers: 200,
		Products: 40, Days: 30, Sales: 20000,
		AirportEvery: 5, TrainLines: 2, Hospitals: 2, Highways: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A batch with real sharing: two filter sets and two groupings, each
	// used by four queries, so the staged path materializes artifacts
	// every run (and must return every one of them to the pools).
	popFilter := []cube.AttrFilter{{
		LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
		Attr:     "population", Op: cube.OpGt, Value: 200000.0,
	}}
	ageFilter := []cube.AttrFilter{{
		LevelRef: cube.LevelRef{Dimension: "Customer", Level: "Customer"},
		Attr:     "age", Op: cube.OpGe, Value: 30.0,
	}}
	var qs []cube.Query
	for i := 0; i < 8; i++ {
		q := cube.Query{Fact: "Sales",
			Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}, {Agg: cube.AggCount}}}
		if i%2 == 0 {
			q.GroupBy = []cube.LevelRef{{Dimension: "Store", Level: "City"}}
		} else {
			q.GroupBy = []cube.LevelRef{{Dimension: "Product", Level: "Family"}}
		}
		if i < 4 {
			q.Filters = popFilter
		} else {
			q.Filters = ageFilter
		}
		qs = append(qs, q)
	}
	run := func(disableSharing bool) func() {
		return func() {
			if _, _, err := ds.Cube.ExecuteBatchOpt(qs, nil, cube.BatchOptions{
				Workers: 1, DisableSharing: disableSharing,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	const runs = 10
	fused := bytesPerRun(runs, run(true))
	shared := bytesPerRun(runs, run(false))
	t.Logf("bytes/run: fused=%d shared=%d", fused, shared)

	// Budget: warm shared scans re-materialize nothing large — one leaked
	// filter bitmap or key column per run (~2.5KB / ~80KB at 20k facts,
	// several of each per batch) blows this headroom immediately.
	const headroom = 100 << 10 // 100 KiB
	if shared > fused+headroom {
		t.Errorf("warm shared batch allocates %d bytes/run vs fused %d (+%d); artifacts are leaking the pools",
			shared, fused, shared-fused)
	}
}

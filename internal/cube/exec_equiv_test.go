package cube_test

// Randomized equivalence harness for the query executors: for generated
// warehouses and randomized queries/views, the parallel partitioned
// executor (every worker count 1–8) and the shared-scan batch executor
// must return Results identical to the serial path — rows, row order,
// group/aggregate columns, and ScannedFacts/MatchedFacts.
//
// SUM/AVG aggregates are drawn over UnitSales only: it is integer-valued,
// so per-group sums are exact in float64 and byte-for-byte equality holds
// regardless of summation order. COUNT/MIN/MAX are order-insensitive and
// drawn over every measure.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sdwp/internal/cube"
	"sdwp/internal/datagen"
)

// equivLevels lists the group-by candidates of the generated Sales schema.
var equivLevels = map[string][]string{
	"Store":    {"Store", "City", "State", "Country"},
	"Customer": {"Customer", "Segment"},
	"Product":  {"Product", "Family"},
	"Time":     {"Day", "Month", "Year"},
}

var equivDims = []string{"Store", "Customer", "Product", "Time"}

func randomQuery(rng *rand.Rand) cube.Query {
	q := cube.Query{Fact: "Sales"}

	// 0–3 group-by levels over distinct dimensions.
	dims := append([]string(nil), equivDims...)
	rng.Shuffle(len(dims), func(i, j int) { dims[i], dims[j] = dims[j], dims[i] })
	for _, d := range dims[:rng.Intn(4)] {
		levels := equivLevels[d]
		q.GroupBy = append(q.GroupBy, cube.LevelRef{Dimension: d, Level: levels[rng.Intn(len(levels))]})
	}

	// 1–3 aggregates.
	for n := 1 + rng.Intn(3); len(q.Aggregates) < n; {
		switch rng.Intn(5) {
		case 0:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Agg: cube.AggCount})
		case 1:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: "UnitSales", Agg: cube.AggSum})
		case 2:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: "UnitSales", Agg: cube.AggAvg})
		case 3:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: measureAt(rng), Agg: cube.AggMin})
		case 4:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: measureAt(rng), Agg: cube.AggMax})
		}
	}

	// 0–2 attribute filters.
	numericOps := []cube.FilterOp{cube.OpEq, cube.OpNe, cube.OpLt, cube.OpLe, cube.OpGt, cube.OpGe}
	for i := rng.Intn(3); i > 0; i-- {
		switch rng.Intn(3) {
		case 0:
			q.Filters = append(q.Filters, cube.AttrFilter{
				LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
				Attr:     "population",
				Op:       numericOps[rng.Intn(len(numericOps))],
				Value:    float64(20000 + rng.Intn(3000000)),
			})
		case 1:
			op := cube.OpEq
			if rng.Intn(2) == 0 {
				op = cube.OpNe
			}
			q.Filters = append(q.Filters, cube.AttrFilter{
				LevelRef: cube.LevelRef{Dimension: "Product", Level: "Product"},
				Attr:     "brand",
				Op:       op,
				Value:    fmt.Sprintf("Brand%02d", rng.Intn(17)),
			})
		case 2:
			q.Filters = append(q.Filters, cube.AttrFilter{
				LevelRef: cube.LevelRef{Dimension: "Customer", Level: "Customer"},
				Attr:     "age",
				Op:       numericOps[rng.Intn(len(numericOps))],
				Value:    float64(18 + rng.Intn(70)),
			})
		}
	}

	// Optional aggregate-value ordering and top-n limit.
	if len(q.Aggregates) > 0 && rng.Intn(2) == 0 {
		q.OrderBy = &cube.OrderBy{Agg: rng.Intn(len(q.Aggregates)), Desc: rng.Intn(2) == 0}
	}
	if rng.Intn(2) == 0 {
		q.Limit = 1 + rng.Intn(10)
	}
	return q
}

func measureAt(rng *rand.Rand) string {
	return []string{"UnitSales", "StoreCost", "StoreSales"}[rng.Intn(3)]
}

// randomView builds nil (baseline) or a view with random member and fact
// selections.
func randomView(rng *rand.Rand, c *cube.Cube, cfg datagen.Config) *cube.View {
	if rng.Intn(3) == 0 {
		return nil
	}
	v := cube.NewView(c)
	pick := func(dim, level string, max, n int) {
		for i := 0; i < n; i++ {
			if err := v.SelectMember(dim, level, int32(rng.Intn(max))); err != nil {
				panic(err)
			}
		}
	}
	switch rng.Intn(4) {
	case 0:
		pick("Store", "City", cfg.Cities, 2+rng.Intn(8))
	case 1:
		pick("Store", "Store", cfg.Stores, 5+rng.Intn(20))
	case 2:
		pick("Product", "Family", 5, 1+rng.Intn(3))
	case 3:
		pick("Store", "City", cfg.Cities, 2+rng.Intn(8))
		pick("Customer", "Segment", 3, 1+rng.Intn(2))
	}
	if rng.Intn(4) == 0 {
		for i := 0; i < 50; i++ {
			if err := v.SelectFact("Sales", int32(rng.Intn(cfg.Sales))); err != nil {
				panic(err)
			}
		}
	}
	return v
}

func diffResults(t *testing.T, label string, got, want *cube.Result) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	t.Errorf("%s: results differ", label)
	t.Logf("want: cols=%v/%v scanned=%d matched=%d rows=%d",
		want.GroupCols, want.AggCols, want.ScannedFacts, want.MatchedFacts, len(want.Rows))
	t.Logf("got:  cols=%v/%v scanned=%d matched=%d rows=%d",
		got.GroupCols, got.AggCols, got.ScannedFacts, got.MatchedFacts, len(got.Rows))
	for i := 0; i < len(want.Rows) && i < len(got.Rows); i++ {
		if !reflect.DeepEqual(want.Rows[i], got.Rows[i]) {
			t.Logf("first differing row %d: want %v, got %v", i, want.Rows[i], got.Rows[i])
			break
		}
	}
}

func TestExecutorEquivalenceRandomized(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := datagen.Config{
				Seed: seed, States: 5, Cities: 15, Stores: 80, Customers: 60,
				Products: 30, Days: 30, Sales: 4000,
				AirportEvery: 5, TrainLines: 4, Hospitals: 5, Highways: 2,
			}
			ds, err := datagen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 1000))

			const cases = 24
			qs := make([]cube.Query, cases)
			vs := make([]*cube.View, cases)
			serial := make([]*cube.Result, cases)
			for i := range qs {
				qs[i] = randomQuery(rng)
				vs[i] = randomView(rng, ds.Cube, cfg)
				serial[i], err = ds.Cube.Execute(qs[i], vs[i])
				if err != nil {
					t.Fatalf("case %d: serial: %v", i, err)
				}
			}

			// Parallel executor across worker counts.
			for i := range qs {
				for w := 1; w <= 8; w++ {
					got, err := ds.Cube.ExecuteParallel(qs[i], vs[i], w)
					if err != nil {
						t.Fatalf("case %d workers %d: %v", i, w, err)
					}
					diffResults(t, fmt.Sprintf("case %d workers %d", i, w), got, serial[i])
				}
			}

			// Shared-scan batch executor (all cases in one batch), with
			// cross-query subexpression sharing both off (the fused PR 1
			// path) and on (stage-1/2 artifacts shared by sub-fingerprint).
			for _, w := range []int{1, 3, 8} {
				for _, noShare := range []bool{false, true} {
					batch, _, err := ds.Cube.ExecuteBatchOpt(qs, vs,
						cube.BatchOptions{Workers: w, DisableSharing: noShare})
					if err != nil {
						t.Fatalf("batch workers %d noShare %v: %v", w, noShare, err)
					}
					if len(batch) != cases {
						t.Fatalf("batch workers %d: %d results, want %d", w, len(batch), cases)
					}
					for i := range qs {
						diffResults(t, fmt.Sprintf("batch case %d workers %d noShare %v",
							i, w, noShare), batch[i], serial[i])
					}
				}
			}
		})
	}
}

// TestSharedSubexprBatchEquivalence targets the sharing-heavy shape the
// staged executor exists for: many queries differing only in selection
// mask, measure, or limit over a handful of filter sets and groupings.
// Every result — with sharing on, across worker counts and randomized
// views — must be byte-identical to the serial path, and the reported
// SharingStats must account for every query.
func TestSharedSubexprBatchEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 11, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := datagen.Config{
				Seed: seed, States: 5, Cities: 15, Stores: 80, Customers: 60,
				Products: 30, Days: 30, Sales: 4000,
				AirportEvery: 5, TrainLines: 4, Hospitals: 5, Highways: 2,
			}
			ds, err := datagen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))

			// A small pool of filter sets (including reorderings of the
			// same set, which must share one bitmap) and groupings.
			popFilter := cube.AttrFilter{
				LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
				Attr:     "population", Op: cube.OpGt, Value: float64(500000),
			}
			ageFilter := cube.AttrFilter{
				LevelRef: cube.LevelRef{Dimension: "Customer", Level: "Customer"},
				Attr:     "age", Op: cube.OpLe, Value: float64(40),
			}
			filterPool := [][]cube.AttrFilter{
				nil,
				{popFilter},
				{popFilter, ageFilter},
				{ageFilter, popFilter}, // reordered: same sub-fingerprint
			}
			groupPool := [][]cube.LevelRef{
				{{Dimension: "Store", Level: "City"}},
				{{Dimension: "Store", Level: "State"}},
				{{Dimension: "Store", Level: "City"}, {Dimension: "Product", Level: "Family"}},
			}
			aggPool := [][]cube.MeasureAgg{
				{{Agg: cube.AggCount}},
				{{Measure: "UnitSales", Agg: cube.AggSum}},
				{{Measure: "StoreCost", Agg: cube.AggMin}, {Measure: "StoreSales", Agg: cube.AggMax}},
			}

			const cases = 20
			qs := make([]cube.Query, cases)
			vs := make([]*cube.View, cases)
			serial := make([]*cube.Result, cases)
			for i := range qs {
				qs[i] = cube.Query{
					Fact:       "Sales",
					GroupBy:    groupPool[rng.Intn(len(groupPool))],
					Aggregates: aggPool[rng.Intn(len(aggPool))],
					Filters:    filterPool[rng.Intn(len(filterPool))],
				}
				if rng.Intn(2) == 0 {
					qs[i].Limit = 1 + rng.Intn(8)
				}
				vs[i] = randomView(rng, ds.Cube, cfg)
				serial[i], err = ds.Cube.Execute(qs[i], vs[i])
				if err != nil {
					t.Fatalf("case %d: serial: %v", i, err)
				}
			}

			for _, w := range []int{1, 2, 5, 8} {
				batch, stats, err := ds.Cube.ExecuteBatchOpt(qs, vs, cube.BatchOptions{Workers: w})
				if err != nil {
					t.Fatalf("workers %d: %v", w, err)
				}
				for i := range qs {
					diffResults(t, fmt.Sprintf("shared case %d workers %d", i, w), batch[i], serial[i])
				}
				if stats.Queries != cases {
					t.Errorf("stats.Queries = %d, want %d", stats.Queries, cases)
				}
				// The pool admits at most 2 distinct non-empty filter sets
				// ({pop} and the reorder-shared {pop,age}) and 3 groupings.
				if stats.DistinctFilterSets > 2 {
					t.Errorf("distinct filter sets = %d, want <= 2 (reordered sets must share)",
						stats.DistinctFilterSets)
				}
				if stats.DistinctGroupings > 4 {
					t.Errorf("distinct groupings = %d, want <= 4", stats.DistinctGroupings)
				}
				if stats.FilterSets < stats.DistinctFilterSets ||
					stats.GroupKeySets < stats.DistinctGroupings {
					t.Errorf("instances below distinct counts: %+v", stats)
				}
			}
		})
	}
}

// TestExecuteBatchValidation covers the batch-specific error paths: length
// mismatch, an invalid query aborting the whole batch, and the empty
// batch.
func TestExecuteBatchValidation(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Seed: 1, States: 3, Cities: 6, Stores: 12, Customers: 10,
		Products: 8, Days: 10, Sales: 200,
		AirportEvery: 3, TrainLines: 2, Hospitals: 2, Highways: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	good := cube.Query{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}

	if _, err := ds.Cube.ExecuteBatch([]cube.Query{good}, make([]*cube.View, 2), 1); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := cube.Query{Fact: "Ghost", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}
	if _, err := ds.Cube.ExecuteBatch([]cube.Query{good, bad}, nil, 1); err == nil {
		t.Error("invalid query accepted in batch")
	}
	res, err := ds.Cube.ExecuteBatch(nil, nil, 4)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: res=%v err=%v", res, err)
	}

	// A batch mixing facts... the schema has one fact, so instead check a
	// batch mixing personalized and baseline views of the same query.
	v := cube.NewView(ds.Cube)
	if err := v.SelectMember("Store", "City", 0); err != nil {
		t.Fatal(err)
	}
	batch, err := ds.Cube.ExecuteBatch([]cube.Query{good, good}, []*cube.View{v, nil}, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantPers, _ := ds.Cube.Execute(good, v)
	wantBase, _ := ds.Cube.Execute(good, nil)
	if !reflect.DeepEqual(batch[0], wantPers) || !reflect.DeepEqual(batch[1], wantBase) {
		t.Errorf("mixed views batch: got %+v / %+v, want %+v / %+v",
			batch[0], batch[1], wantPers, wantBase)
	}
	if batch[0].MatchedFacts >= batch[1].MatchedFacts {
		t.Errorf("personalized view should see fewer facts: %d vs %d",
			batch[0].MatchedFacts, batch[1].MatchedFacts)
	}
}

package cube_test

// Randomized equivalence harness for the query executors: for generated
// warehouses and randomized queries/views, the parallel partitioned
// executor (every worker count 1–8) and the shared-scan batch executor
// must return Results identical to the serial path — rows, row order,
// group/aggregate columns, and ScannedFacts/MatchedFacts.
//
// SUM/AVG aggregates are drawn over UnitSales only: it is integer-valued,
// so per-group sums are exact in float64 and byte-for-byte equality holds
// regardless of summation order. COUNT/MIN/MAX are order-insensitive and
// drawn over every measure.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sdwp/internal/cube"
	"sdwp/internal/datagen"
	"sdwp/internal/obs"
)

// equivLevels lists the group-by candidates of the generated Sales schema.
var equivLevels = map[string][]string{
	"Store":    {"Store", "City", "State", "Country"},
	"Customer": {"Customer", "Segment"},
	"Product":  {"Product", "Family"},
	"Time":     {"Day", "Month", "Year"},
}

var equivDims = []string{"Store", "Customer", "Product", "Time"}

func randomQuery(rng *rand.Rand) cube.Query {
	q := cube.Query{Fact: "Sales"}

	// 0–3 group-by levels over distinct dimensions.
	dims := append([]string(nil), equivDims...)
	rng.Shuffle(len(dims), func(i, j int) { dims[i], dims[j] = dims[j], dims[i] })
	for _, d := range dims[:rng.Intn(4)] {
		levels := equivLevels[d]
		q.GroupBy = append(q.GroupBy, cube.LevelRef{Dimension: d, Level: levels[rng.Intn(len(levels))]})
	}

	// 1–3 aggregates.
	for n := 1 + rng.Intn(3); len(q.Aggregates) < n; {
		switch rng.Intn(5) {
		case 0:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Agg: cube.AggCount})
		case 1:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: "UnitSales", Agg: cube.AggSum})
		case 2:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: "UnitSales", Agg: cube.AggAvg})
		case 3:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: measureAt(rng), Agg: cube.AggMin})
		case 4:
			q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: measureAt(rng), Agg: cube.AggMax})
		}
	}

	// 0–2 attribute filters.
	numericOps := []cube.FilterOp{cube.OpEq, cube.OpNe, cube.OpLt, cube.OpLe, cube.OpGt, cube.OpGe}
	for i := rng.Intn(3); i > 0; i-- {
		switch rng.Intn(3) {
		case 0:
			q.Filters = append(q.Filters, cube.AttrFilter{
				LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
				Attr:     "population",
				Op:       numericOps[rng.Intn(len(numericOps))],
				Value:    float64(20000 + rng.Intn(3000000)),
			})
		case 1:
			op := cube.OpEq
			if rng.Intn(2) == 0 {
				op = cube.OpNe
			}
			q.Filters = append(q.Filters, cube.AttrFilter{
				LevelRef: cube.LevelRef{Dimension: "Product", Level: "Product"},
				Attr:     "brand",
				Op:       op,
				Value:    fmt.Sprintf("Brand%02d", rng.Intn(17)),
			})
		case 2:
			q.Filters = append(q.Filters, cube.AttrFilter{
				LevelRef: cube.LevelRef{Dimension: "Customer", Level: "Customer"},
				Attr:     "age",
				Op:       numericOps[rng.Intn(len(numericOps))],
				Value:    float64(18 + rng.Intn(70)),
			})
		}
	}

	// Optional aggregate-value ordering and top-n limit.
	if len(q.Aggregates) > 0 && rng.Intn(2) == 0 {
		q.OrderBy = &cube.OrderBy{Agg: rng.Intn(len(q.Aggregates)), Desc: rng.Intn(2) == 0}
	}
	if rng.Intn(2) == 0 {
		q.Limit = 1 + rng.Intn(10)
	}
	return q
}

func measureAt(rng *rand.Rand) string {
	return []string{"UnitSales", "StoreCost", "StoreSales"}[rng.Intn(3)]
}

// randomView builds nil (baseline) or a view with random member and fact
// selections.
func randomView(rng *rand.Rand, c *cube.Cube, cfg datagen.Config) *cube.View {
	if rng.Intn(3) == 0 {
		return nil
	}
	v := cube.NewView(c)
	pick := func(dim, level string, max, n int) {
		for i := 0; i < n; i++ {
			if err := v.SelectMember(dim, level, int32(rng.Intn(max))); err != nil {
				panic(err)
			}
		}
	}
	switch rng.Intn(4) {
	case 0:
		pick("Store", "City", cfg.Cities, 2+rng.Intn(8))
	case 1:
		pick("Store", "Store", cfg.Stores, 5+rng.Intn(20))
	case 2:
		pick("Product", "Family", 5, 1+rng.Intn(3))
	case 3:
		pick("Store", "City", cfg.Cities, 2+rng.Intn(8))
		pick("Customer", "Segment", 3, 1+rng.Intn(2))
	}
	if rng.Intn(4) == 0 {
		for i := 0; i < 50; i++ {
			if err := v.SelectFact("Sales", int32(rng.Intn(cfg.Sales))); err != nil {
				panic(err)
			}
		}
	}
	return v
}

// sameAnswer compares two Results ignoring the Cost vector: cost
// attribution is a property of the execution mode (a shared batch charges
// artifact shares a solo scan never materializes), not of the logical
// answer — the equivalence law covers everything else.
func sameAnswer(got, want *cube.Result) bool {
	g, w := *got, *want
	g.Cost, w.Cost = obs.QueryCost{}, obs.QueryCost{}
	return reflect.DeepEqual(&g, &w)
}

func diffResults(t *testing.T, label string, got, want *cube.Result) {
	t.Helper()
	if sameAnswer(got, want) {
		return
	}
	t.Errorf("%s: results differ", label)
	t.Logf("want: cols=%v/%v scanned=%d matched=%d rows=%d",
		want.GroupCols, want.AggCols, want.ScannedFacts, want.MatchedFacts, len(want.Rows))
	t.Logf("got:  cols=%v/%v scanned=%d matched=%d rows=%d",
		got.GroupCols, got.AggCols, got.ScannedFacts, got.MatchedFacts, len(got.Rows))
	for i := 0; i < len(want.Rows) && i < len(got.Rows); i++ {
		if !reflect.DeepEqual(want.Rows[i], got.Rows[i]) {
			t.Logf("first differing row %d: want %v, got %v", i, want.Rows[i], got.Rows[i])
			break
		}
	}
}

// unpackedOracle runs f with packed execution forced off: the serial
// unpacked scalar path is the oracle every packed kernel must match
// byte-for-byte.
func unpackedOracle(c *cube.Cube, f func()) {
	prev := c.PackedColumns()
	c.SetPackedColumns(false)
	f()
	c.SetPackedColumns(prev)
}

// packedModes sweeps compressed-column execution on and off; results must
// be byte-identical in both (the off side also pins the scalar path
// against accidental kernel dependence).
var packedModes = []struct {
	name string
	on   bool
}{
	{"packed", true},
	{"unpacked", false},
}

// batchSharingModes enumerates the executor's stage-1/2 sharing levels:
// fully fused (PR 1), whole-filter-set artifacts, and per-predicate
// bitmaps AND-composed into set masks (the default). Results must be
// byte-identical across all three.
var batchSharingModes = []struct {
	name string
	opts cube.BatchOptions
}{
	{"fused", cube.BatchOptions{DisableSharing: true}},
	{"per-set", cube.BatchOptions{DisablePredicateSharing: true}},
	{"per-predicate", cube.BatchOptions{}},
}

func TestExecutorEquivalenceRandomized(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := datagen.Config{
				Seed: seed, States: 5, Cities: 15, Stores: 80, Customers: 60,
				Products: 30, Days: 30, Sales: 4000,
				AirportEvery: 5, TrainLines: 4, Hospitals: 5, Highways: 2,
			}
			ds, err := datagen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 1000))

			const cases = 24
			qs := make([]cube.Query, cases)
			vs := make([]*cube.View, cases)
			serial := make([]*cube.Result, cases)
			for i := range qs {
				qs[i] = randomQuery(rng)
				vs[i] = randomView(rng, ds.Cube, cfg)
			}
			unpackedOracle(ds.Cube, func() {
				for i := range qs {
					serial[i], err = ds.Cube.Execute(qs[i], vs[i])
					if err != nil {
						t.Fatalf("case %d: serial: %v", i, err)
					}
				}
			})

			prev := ds.Cube.PackedColumns()
			defer ds.Cube.SetPackedColumns(prev)
			for _, pm := range packedModes {
				ds.Cube.SetPackedColumns(pm.on)

				// Parallel executor across worker counts.
				for i := range qs {
					for w := 1; w <= 8; w++ {
						got, err := ds.Cube.ExecuteParallel(qs[i], vs[i], w)
						if err != nil {
							t.Fatalf("case %d workers %d %s: %v", i, w, pm.name, err)
						}
						diffResults(t, fmt.Sprintf("case %d workers %d %s", i, w, pm.name),
							got, serial[i])
					}
				}

				// Shared-scan batch executor (all cases in one batch), across
				// every sharing mode: fused (the PR 1 path), whole-set
				// artifacts, and per-predicate bitmaps with AND-composition.
				for _, w := range []int{1, 3, 8} {
					for _, mode := range batchSharingModes {
						batch, _, err := ds.Cube.ExecuteBatchOpt(qs, vs,
							cube.BatchOptions{Workers: w, DisableSharing: mode.opts.DisableSharing,
								DisablePredicateSharing: mode.opts.DisablePredicateSharing})
						if err != nil {
							t.Fatalf("batch workers %d mode %s %s: %v", w, mode.name, pm.name, err)
						}
						if len(batch) != cases {
							t.Fatalf("batch workers %d: %d results, want %d", w, len(batch), cases)
						}
						for i := range qs {
							diffResults(t, fmt.Sprintf("batch case %d workers %d mode %s %s",
								i, w, mode.name, pm.name), batch[i], serial[i])
						}
					}
				}
			}
		})
	}
}

// TestSharedSubexprBatchEquivalence targets the sharing-heavy shape the
// staged executor exists for: many queries differing only in selection
// mask, measure, or limit over a handful of filter sets and groupings.
// Every result — with sharing on, across worker counts and randomized
// views — must be byte-identical to the serial path, and the reported
// SharingStats must account for every query.
func TestSharedSubexprBatchEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 11, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := datagen.Config{
				Seed: seed, States: 5, Cities: 15, Stores: 80, Customers: 60,
				Products: 30, Days: 30, Sales: 4000,
				AirportEvery: 5, TrainLines: 4, Hospitals: 5, Highways: 2,
			}
			ds, err := datagen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))

			// A small pool of filter sets — including reorderings of the
			// same set (which must share one bitmap) and
			// overlapping-but-unequal sets drawn from three predicates
			// (which must share per-predicate bitmaps through full and
			// partial AND-composition) — and groupings.
			popFilter := cube.AttrFilter{
				LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
				Attr:     "population", Op: cube.OpGt, Value: float64(500000),
			}
			ageFilter := cube.AttrFilter{
				LevelRef: cube.LevelRef{Dimension: "Customer", Level: "Customer"},
				Attr:     "age", Op: cube.OpLe, Value: float64(40),
			}
			brandFilter := cube.AttrFilter{
				LevelRef: cube.LevelRef{Dimension: "Product", Level: "Product"},
				Attr:     "brand", Op: cube.OpNe, Value: "Brand03",
			}
			filterPool := [][]cube.AttrFilter{
				nil,
				{popFilter},
				{ageFilter},
				{popFilter, ageFilter},
				{ageFilter, popFilter}, // reordered: same sub-fingerprint
				{popFilter, brandFilter},
				{ageFilter, brandFilter},
				{brandFilter, popFilter, ageFilter},
			}
			groupPool := [][]cube.LevelRef{
				{{Dimension: "Store", Level: "City"}},
				{{Dimension: "Store", Level: "State"}},
				{{Dimension: "Store", Level: "City"}, {Dimension: "Product", Level: "Family"}},
			}
			aggPool := [][]cube.MeasureAgg{
				{{Agg: cube.AggCount}},
				{{Measure: "UnitSales", Agg: cube.AggSum}},
				{{Measure: "StoreCost", Agg: cube.AggMin}, {Measure: "StoreSales", Agg: cube.AggMax}},
			}

			const cases = 20
			qs := make([]cube.Query, cases)
			vs := make([]*cube.View, cases)
			serial := make([]*cube.Result, cases)
			for i := range qs {
				qs[i] = cube.Query{
					Fact:       "Sales",
					GroupBy:    groupPool[rng.Intn(len(groupPool))],
					Aggregates: aggPool[rng.Intn(len(aggPool))],
					Filters:    filterPool[rng.Intn(len(filterPool))],
				}
				if rng.Intn(2) == 0 {
					qs[i].Limit = 1 + rng.Intn(8)
				}
				vs[i] = randomView(rng, ds.Cube, cfg)
			}
			unpackedOracle(ds.Cube, func() {
				for i := range qs {
					serial[i], err = ds.Cube.Execute(qs[i], vs[i])
					if err != nil {
						t.Fatalf("case %d: serial: %v", i, err)
					}
				}
			})

			prev := ds.Cube.PackedColumns()
			defer ds.Cube.SetPackedColumns(prev)
			for _, pm := range packedModes {
				ds.Cube.SetPackedColumns(pm.on)
				for _, w := range []int{1, 2, 5, 8} {
					for _, mode := range batchSharingModes {
						opts := mode.opts
						opts.Workers = w
						batch, stats, err := ds.Cube.ExecuteBatchOpt(qs, vs, opts)
						if err != nil {
							t.Fatalf("workers %d mode %s %s: %v", w, mode.name, pm.name, err)
						}
						for i := range qs {
							diffResults(t, fmt.Sprintf("shared case %d workers %d mode %s %s",
								i, w, mode.name, pm.name), batch[i], serial[i])
						}
						if mode.opts.DisableSharing {
							continue // fused scans report no sharing stats
						}
						if stats.Queries != cases {
							t.Errorf("mode %s: stats.Queries = %d, want %d", mode.name, stats.Queries, cases)
						}
						// The pool admits at most 6 distinct non-empty filter
						// sets (the reordered {pop,age} pair shares one key)
						// built from 3 distinct predicates, and 3 groupings.
						if stats.DistinctFilterSets > 6 {
							t.Errorf("mode %s: distinct filter sets = %d, want <= 6 (reordered sets must share)",
								mode.name, stats.DistinctFilterSets)
						}
						if stats.DistinctPredicates > 3 {
							t.Errorf("mode %s: distinct predicates = %d, want <= 3",
								mode.name, stats.DistinctPredicates)
						}
						if stats.DistinctGroupings > 4 {
							t.Errorf("mode %s: distinct groupings = %d, want <= 4",
								mode.name, stats.DistinctGroupings)
						}
						if stats.FilterSets < stats.DistinctFilterSets ||
							stats.FilterPredicates < stats.DistinctPredicates ||
							stats.GroupKeySets < stats.DistinctGroupings {
							t.Errorf("mode %s: instances below distinct counts: %+v", mode.name, stats)
						}
						if mode.opts.DisablePredicateSharing &&
							(stats.ComposedMasks > 0 || stats.PartialMasks > 0) {
							t.Errorf("per-set mode composed masks: %+v", stats)
						}
					}
				}
			}
		})
	}
}

// TestExecuteBatchValidation covers the batch-specific error paths: length
// mismatch, an invalid query aborting the whole batch, and the empty
// batch.
func TestExecuteBatchValidation(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Seed: 1, States: 3, Cities: 6, Stores: 12, Customers: 10,
		Products: 8, Days: 10, Sales: 200,
		AirportEvery: 3, TrainLines: 2, Hospitals: 2, Highways: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	good := cube.Query{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}

	if _, err := ds.Cube.ExecuteBatch([]cube.Query{good}, make([]*cube.View, 2), 1); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := cube.Query{Fact: "Ghost", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}
	if _, err := ds.Cube.ExecuteBatch([]cube.Query{good, bad}, nil, 1); err == nil {
		t.Error("invalid query accepted in batch")
	}
	res, err := ds.Cube.ExecuteBatch(nil, nil, 4)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: res=%v err=%v", res, err)
	}

	// A batch mixing facts... the schema has one fact, so instead check a
	// batch mixing personalized and baseline views of the same query.
	v := cube.NewView(ds.Cube)
	if err := v.SelectMember("Store", "City", 0); err != nil {
		t.Fatal(err)
	}
	batch, err := ds.Cube.ExecuteBatch([]cube.Query{good, good}, []*cube.View{v, nil}, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantPers, _ := ds.Cube.Execute(good, v)
	wantBase, _ := ds.Cube.Execute(good, nil)
	if !reflect.DeepEqual(batch[0], wantPers) || !reflect.DeepEqual(batch[1], wantBase) {
		t.Errorf("mixed views batch: got %+v / %+v, want %+v / %+v",
			batch[0], batch[1], wantPers, wantBase)
	}
	if batch[0].MatchedFacts >= batch[1].MatchedFacts {
		t.Errorf("personalized view should see fewer facts: %d vs %d",
			batch[0].MatchedFacts, batch[1].MatchedFacts)
	}
}

// TestPerFilterCompositionPaths pins the per-predicate planner's three
// stage-1 shapes on a deterministic batch: a predicate shared across
// three filter sets materializes one bitmap; qualifying sets compose it
// and refine their unshared predicate in one pass (full masks); a
// single-use set AND-composes the shared bitmap into a partial mask and
// leaves its residue to the per-fact path. Results must match the serial
// oracle in every mode.
func TestPerFilterCompositionPaths(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Seed: 13, States: 5, Cities: 15, Stores: 80, Customers: 60,
		Products: 30, Days: 30, Sales: 4000,
		AirportEvery: 5, TrainLines: 4, Hospitals: 5, Highways: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(attrDim, level, attr string, v any) cube.AttrFilter {
		return cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: attrDim, Level: level},
			Attr: attr, Op: cube.OpGt, Value: v}
	}
	shared := mk("Store", "City", "population", float64(300000)) // in all three sets
	b := mk("Customer", "Customer", "age", float64(30))
	c := mk("Customer", "Customer", "age", float64(50))
	d := mk("Store", "City", "population", float64(900000))
	agg := []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}}
	group := []cube.LevelRef{{Dimension: "Store", Level: "State"}}
	qs := []cube.Query{
		{Fact: "Sales", GroupBy: group, Aggregates: agg, Filters: []cube.AttrFilter{shared, b}},
		{Fact: "Sales", GroupBy: group, Aggregates: agg, Filters: []cube.AttrFilter{b, shared}},
		{Fact: "Sales", GroupBy: group, Aggregates: agg, Filters: []cube.AttrFilter{shared, c}},
		{Fact: "Sales", GroupBy: group, Aggregates: agg, Filters: []cube.AttrFilter{c, shared}},
		{Fact: "Sales", GroupBy: group, Aggregates: agg, Filters: []cube.AttrFilter{shared, d}},
	}
	serial := make([]*cube.Result, len(qs))
	unpackedOracle(ds.Cube, func() {
		for i, q := range qs {
			if serial[i], err = ds.Cube.Execute(q, nil); err != nil {
				t.Fatal(err)
			}
		}
	})
	prev := ds.Cube.PackedColumns()
	defer ds.Cube.SetPackedColumns(prev)
	for _, pm := range packedModes {
		ds.Cube.SetPackedColumns(pm.on)
		for _, w := range []int{1, 4} {
			for _, mode := range batchSharingModes {
				opts := mode.opts
				opts.Workers = w
				batch, stats, err := ds.Cube.ExecuteBatchOpt(qs, nil, opts)
				if err != nil {
					t.Fatalf("workers %d mode %s %s: %v", w, mode.name, pm.name, err)
				}
				for i := range qs {
					diffResults(t, fmt.Sprintf("case %d workers %d mode %s %s", i, w, mode.name, pm.name),
						batch[i], serial[i])
				}
				if mode.name != "per-predicate" {
					continue
				}
				// {shared,b} and {shared,c} qualify (2 uses each) and compose
				// the shared bitmap, refining b/c once per set; {shared,d}
				// (one use) gets a partial mask and evaluates d inline.
				if stats.DistinctPredicates != 4 || stats.FilterPredicates != 10 {
					t.Errorf("workers %d: predicates = %d/%d, want 4 distinct / 10 instances",
						w, stats.DistinctPredicates, stats.FilterPredicates)
				}
				if stats.ComposedMasks != 2 {
					t.Errorf("workers %d: composed masks = %d, want 2", w, stats.ComposedMasks)
				}
				if stats.PartialMasks != 1 {
					t.Errorf("workers %d: partial masks = %d, want 1", w, stats.PartialMasks)
				}
			}
		}
	}
}

// TestPerFilterArtifactCachePredicates checks that per-predicate bitmaps
// flow through the cross-batch artifact cache: after the doorkeeper
// admits them, a repeated overlapping-set batch takes its shared
// predicate bitmap (and composed set masks) from the cache.
func TestPerFilterArtifactCachePredicates(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Seed: 14, States: 5, Cities: 15, Stores: 80, Customers: 60,
		Products: 30, Days: 30, Sales: 4000,
		AirportEvery: 5, TrainLines: 4, Hospitals: 5, Highways: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	shared := cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
		Attr: "population", Op: cube.OpGt, Value: float64(300000)}
	young := cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: "Customer", Level: "Customer"},
		Attr: "age", Op: cube.OpLe, Value: float64(35)}
	old := cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: "Customer", Level: "Customer"},
		Attr: "age", Op: cube.OpGt, Value: float64(55)}
	agg := []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}}
	var qs []cube.Query
	for _, fs := range [][]cube.AttrFilter{{shared, young}, {shared, old}} {
		for _, level := range []string{"City", "State"} {
			qs = append(qs, cube.Query{Fact: "Sales",
				GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: level}},
				Aggregates: agg, Filters: fs})
		}
	}
	ac := cube.NewArtifactCache(16 << 20)
	var last cube.SharingStats
	for i := 0; i < 3; i++ {
		res, stats, err := ds.Cube.ExecuteBatchOpt(qs, nil, cube.BatchOptions{Artifacts: ac})
		if err != nil {
			t.Fatal(err)
		}
		last = stats
		for j, q := range qs {
			want, werr := ds.Cube.Execute(q, nil)
			if werr != nil {
				t.Fatal(werr)
			}
			diffResults(t, fmt.Sprintf("run %d case %d", i, j), res[j], want)
		}
	}
	// Run 1 materializes the shared predicate bitmap and both composed set
	// masks and offers all three (doorkept); run 2 re-materializes and is
	// admitted; run 3 takes both composed set masks straight from the
	// cache (the predicate bitmap is then not even needed). Key columns
	// never materialize here — the selective filters leave less than a
	// table pass of decode work.
	if last.ArtifactCacheHits < 2 {
		t.Errorf("third run took %d artifacts from the cache, want >= 2 (stats %+v, cache %+v)",
			last.ArtifactCacheHits, last, ac.Stats())
	}
	st := ac.Stats()
	if st.Doorkept < 3 || st.Entries < 3 {
		t.Errorf("doorkeeper flow: want >= 3 doorkept (run 1) and >= 3 entries (run 2 admits the"+
			" predicate bitmap and both set masks): %+v", st)
	}
}

package cube

import (
	"sdwp/internal/bitset"
	"sdwp/internal/obs"
)

// Cost attribution for shared-scan artifacts: every filter bitmap and
// roll-up key column a staged scan freshly materializes is charged to
// the queries that drive work off it, split evenly with the remainder
// bytes going to the earliest users — so the per-query shares sum
// exactly to the artifact's size, and summing Result.Cost across a
// batch reproduces SharingStats.BitmapBytesBuilt/KeyColBytesBuilt (the
// conservation law the cost tests pin). Cache hits charge nothing: the
// bytes were paid by the batch that built them.

// maskBytes is the byte footprint of one filter bitmap.
func maskBytes(m *bitset.Set) int64 {
	return int64((m.Len() + 7) / 8)
}

// keyColBytes is the byte footprint of one roll-up key column.
func keyColBytes(col []int32) int64 {
	return 4 * int64(len(col))
}

// chargeArtifact splits one artifact's byte cost across its using
// queries (users holds indices into costs, one entry per use). Each
// user is also credited the sharing discount — the full build cost it
// avoided by not materializing the artifact alone.
func chargeArtifact(costs []obs.QueryCost, users []int, total int64, bitmap bool) {
	if len(costs) == 0 || len(users) == 0 || total <= 0 {
		return
	}
	q, r := total/int64(len(users)), total%int64(len(users))
	for i, k := range users {
		share := q
		if int64(i) < r {
			share++
		}
		c := &costs[k]
		if bitmap {
			c.BitmapBytes += share
		} else {
			c.KeyColBytes += share
		}
		c.SharedSavedBytes += total - share
	}
}

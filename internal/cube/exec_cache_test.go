package cube_test

// Unit coverage of the cross-batch ArtifactCache through the batch
// executor: repeated batches hit, table mutations invalidate, the byte
// bound evicts, and results never change whichever way a lookup goes.

import (
	"testing"

	"sdwp/internal/cube"
	"sdwp/internal/datagen"
)

func cacheTestBatch() []cube.Query {
	filters := []cube.AttrFilter{{
		LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
		Attr:     "population", Op: cube.OpGt, Value: float64(100000),
	}}
	var qs []cube.Query
	for _, level := range []string{"Store", "City", "State"} {
		for _, agg := range []cube.MeasureAgg{
			{Measure: "UnitSales", Agg: cube.AggSum},
			{Agg: cube.AggCount},
		} {
			qs = append(qs, cube.Query{
				Fact:       "Sales",
				GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: level}},
				Aggregates: []cube.MeasureAgg{agg},
				Filters:    filters,
			})
		}
	}
	return qs
}

func TestArtifactCacheHitStaleAndEquivalence(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Seed: 5, States: 5, Cities: 15, Stores: 80, Customers: 60,
		Products: 30, Days: 30, Sales: 4000,
		AirportEvery: 5, TrainLines: 4, Hospitals: 5, Highways: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := cacheTestBatch()
	ac := cube.NewArtifactCache(16 << 20)
	run := func(label string) []*cube.Result {
		res, _, err := ds.Cube.ExecuteBatchOpt(qs, nil, cube.BatchOptions{Artifacts: ac})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return res
	}

	baseline := make([]*cube.Result, len(qs))
	for i, q := range qs {
		baseline[i], err = ds.Cube.Execute(q, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	// The admission doorkeeper turns first offers away: one batch is not
	// enough to cache anything, the repeat admits, the third run hits.
	first := run("first")
	if st := ac.Stats(); st.Entries != 0 || st.Doorkept == 0 {
		t.Fatalf("first batch should be doorkept, not cached: %+v", st)
	}
	admitted := run("admitted")
	if st := ac.Stats(); st.Entries == 0 {
		t.Fatalf("second batch cached nothing: %+v", st)
	}
	hitsAfterAdmit := ac.Stats().Hits
	second := run("second")
	st := ac.Stats()
	if st.Hits <= hitsAfterAdmit {
		t.Fatalf("repeat batch did not hit the cache: %+v", st)
	}
	for i := range qs {
		if !sameAnswer(first[i], baseline[i]) || !sameAnswer(admitted[i], baseline[i]) ||
			!sameAnswer(second[i], baseline[i]) {
			t.Errorf("case %d: cached execution differs from serial", i)
		}
	}

	// AddFact bumps the table version: the next batch must observe stale
	// entries, re-materialize, and still match the serial oracle.
	if err := ds.Cube.AddFact("Sales", map[string]int32{
		"Store": 0, "Customer": 0, "Product": 0, "Time": 0,
	}, map[string]float64{"UnitSales": 3}); err != nil {
		t.Fatal(err)
	}
	third := run("after-addfact")
	if got := ac.Stats(); got.Stale == 0 {
		t.Errorf("AddFact did not invalidate cached artifacts: %+v", got)
	}
	for i, q := range qs {
		want, err := ds.Cube.Execute(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswer(third[i], want) {
			t.Errorf("case %d: post-mutation cached execution differs from serial", i)
		}
	}

	// Member attribute mutation invalidates too (filter columns moved).
	if err := ds.Cube.SetMemberAttr("Store", "City", 0, "population", float64(1)); err != nil {
		t.Fatal(err)
	}
	staleBefore := ac.Stats().Stale
	fourth := run("after-attr")
	if got := ac.Stats(); got.Stale <= staleBefore {
		t.Errorf("SetMemberAttr did not invalidate cached artifacts: %+v", got)
	}
	for i, q := range qs {
		want, err := ds.Cube.Execute(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswer(fourth[i], want) {
			t.Errorf("case %d: post-attr cached execution differs from serial", i)
		}
	}
}

func TestArtifactCacheEviction(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Seed: 9, States: 4, Cities: 12, Stores: 60, Customers: 50,
		Products: 20, Days: 20, Sales: 3000,
		AirportEvery: 4, TrainLines: 3, Hospitals: 4, Highways: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A cache barely big enough for one key column (4 bytes/fact) forces
	// displacement as distinct groupings stream through.
	ac := cube.NewArtifactCache(int64(4*3000 + 64))
	for round := 0; round < 3; round++ {
		for _, level := range []string{"Store", "City", "State", "Country"} {
			qs := []cube.Query{
				{Fact: "Sales", GroupBy: []cube.LevelRef{{Dimension: "Store", Level: level}},
					Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}}},
				{Fact: "Sales", GroupBy: []cube.LevelRef{{Dimension: "Store", Level: level}},
					Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}},
			}
			res, _, err := ds.Cube.ExecuteBatchOpt(qs, nil, cube.BatchOptions{Artifacts: ac})
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range qs {
				want, werr := ds.Cube.Execute(q, nil)
				if werr != nil {
					t.Fatal(werr)
				}
				if !sameAnswer(res[i], want) {
					t.Errorf("round %d level %s case %d: differs under eviction pressure",
						round, level, i)
				}
			}
		}
	}
	st := ac.Stats()
	if st.Evictions == 0 {
		t.Errorf("tiny cache never evicted: %+v", st)
	}
	if st.Bytes > int64(4*3000+64) {
		t.Errorf("cache exceeds its byte bound: %+v", st)
	}
	if st.Entries > 1 {
		// One key column fits; a second must displace the first.
		t.Logf("note: %d entries resident (%d bytes)", st.Entries, st.Bytes)
	}
}

// doorkeeperBatch builds two no-group-by queries sharing one single-filter
// set, so a batch offers the cache exactly one artifact: the composed
// filter-set mask (no groupings → no key columns).
func doorkeeperBatch(value float64) []cube.Query {
	filters := []cube.AttrFilter{{
		LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
		Attr:     "population", Op: cube.OpGt, Value: value,
	}}
	return []cube.Query{
		{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}, Filters: filters},
		{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}}, Filters: filters},
	}
}

// TestArtifactCacheDoorkeeperAdmission pins the two-generation admission
// policy: a one-shot filter's artifact is never cached, its second offer
// admits, and a third run is served from the cache.
func TestArtifactCacheDoorkeeperAdmission(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Seed: 21, States: 4, Cities: 10, Stores: 50, Customers: 40,
		Products: 20, Days: 20, Sales: 2500,
		AirportEvery: 4, TrainLines: 3, Hospitals: 4, Highways: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ac := cube.NewArtifactCache(8 << 20)
	run := func(v float64) {
		if _, _, err := ds.Cube.ExecuteBatchOpt(doorkeeperBatch(v), nil,
			cube.BatchOptions{Artifacts: ac}); err != nil {
			t.Fatal(err)
		}
	}

	// One-shot filters: each value is offered once and turned away.
	for i := 0; i < 4; i++ {
		run(float64(10000 + i))
	}
	st := ac.Stats()
	if st.Entries != 0 {
		t.Fatalf("one-shot filters were cached: %+v", st)
	}
	if st.Doorkept != 4 {
		t.Fatalf("doorkept = %d, want 4 (one per one-shot filter set): %+v", st.Doorkept, st)
	}

	// A repeated filter admits on its second offer and hits from then on.
	run(99999)
	if st := ac.Stats(); st.Entries != 0 {
		t.Fatalf("first offer admitted: %+v", st)
	}
	run(99999)
	if st := ac.Stats(); st.Entries != 1 {
		t.Fatalf("second offer did not admit: %+v", st)
	}
	hits := ac.Stats().Hits
	run(99999)
	if st := ac.Stats(); st.Hits <= hits {
		t.Fatalf("admitted artifact not served: %+v", st)
	}
}

// TestArtifactCacheDoorkeeperRotation pins generation rotation: with a
// one-entry generation, a stream of distinct fingerprints keeps rotating
// the maps, so a fingerprint re-offered after two strangers has been
// forgotten (still not admitted), while an immediate repeat — surviving in
// the old generation — is.
func TestArtifactCacheDoorkeeperRotation(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Seed: 22, States: 4, Cities: 10, Stores: 50, Customers: 40,
		Products: 20, Days: 20, Sales: 2500,
		AirportEvery: 4, TrainLines: 3, Hospitals: 4, Highways: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ac := cube.NewArtifactCache(8 << 20)
	ac.SetDoorkeeperCapacity(1)
	run := func(v float64) {
		if _, _, err := ds.Cube.ExecuteBatchOpt(doorkeeperBatch(v), nil,
			cube.BatchOptions{Artifacts: ac}); err != nil {
			t.Fatal(err)
		}
	}

	// A, B, C rotate the single-slot generations twice; by the time A is
	// re-offered both generations have forgotten it.
	run(1)
	run(2)
	run(3)
	run(1)
	if st := ac.Stats(); st.Entries != 0 || st.Doorkept != 4 {
		t.Fatalf("rotation should have forgotten A (want 4 doorkept, 0 entries): %+v", st)
	}

	// An immediate repeat survives in the old generation and admits: after
	// offering D (filling the current generation), D's repeat still hits
	// one of the two generations.
	run(4)
	run(4)
	if st := ac.Stats(); st.Entries != 1 {
		t.Fatalf("immediate repeat should admit across generations: %+v", st)
	}
}

package cube

import (
	"math/bits"

	"sdwp/internal/bitset"
)

// This file is the compressed column layer: fact dimension-key columns
// dictionary-encoded (the keys already are small dense member indices, so
// the "dictionary" is the identity) and bit-packed at ceil(log2(card))
// bits per code into []uint64 words. Predicates are translated once at
// plan compile into the set of matching codes (codeSet) and then
// evaluated word-at-a-time on the packed data — 64/width lanes per load,
// SIMD-within-a-register — writing the resulting filter bitmap straight
// into bitset words, where the per-predicate AND algebra of the batch
// executor composes it exactly as it composes scalar-filled bitmaps.
//
// Layout: codes never straddle word boundaries. A column of width b keeps
// K = 64/b codes per word, code i in bits [(i%K)*b, (i%K)*b+b) of word
// i/K; the 64-K*b remainder bits of every word stay zero. The layout
// wastes those remainder bits but keeps every kernel free of cross-word
// reassembly, and is what makes the even/odd SWAR passes below valid for
// every width 1..31 with no scalar special case.
//
// Concurrency follows the column snapshot discipline of queryPlan: a
// packedView captured at compile (or Rebind) covers exactly the facts
// that existed then. append only ORs fresh lanes at indices >= the
// snapshot's n into the tail word (or appends new words), and a width
// overflow repacks into a freshly allocated slice — the old array is
// never mutated again — so a view held across concurrent AddFact ingest
// keeps reading exactly the prefix it snapshotted, bounded by the plan's
// compile-time fact count just like the unpacked columns.

// packedColumn is one fact dim-key column in packed form, maintained
// incrementally by AddFact alongside the unpacked []int32 column (which
// stays authoritative and serves as the oracle path when packed execution
// is off).
type packedColumn struct {
	words []uint64
	width uint // bits per code; 0 until the first append
	n     int
}

// bitsForCode returns the pack width needed to store code: ceil(log2)
// of the smallest power of two above it, at least 1.
func bitsForCode(code int32) uint {
	if code <= 0 {
		return 1
	}
	return uint(bits.Len32(uint32(code)))
}

// append packs one more code onto the column, widening first when the
// code needs more bits than the current width (grow-only: widths never
// shrink, so one oversized key repacks once, not per batch).
func (pc *packedColumn) append(code int32) {
	if need := bitsForCode(code); need > pc.width {
		pc.repack(need)
	}
	k := int(64 / pc.width)
	lane := pc.n % k
	if lane == 0 {
		pc.words = append(pc.words, 0)
	}
	pc.words[pc.n/k] |= uint64(uint32(code)) << (uint(lane) * pc.width)
	pc.n++
}

// repack rewrites the column at the given width into a freshly allocated
// word slice. Allocating fresh (never widening in place) is what keeps
// packedViews snapshotted before the overflow valid: they hold the old
// array, which no longer changes.
func (pc *packedColumn) repack(width uint) {
	k := int(64 / width)
	nw := make([]uint64, (pc.n+k-1)/k)
	if pc.n > 0 {
		oldK := int(64 / pc.width)
		mask := uint64(1)<<pc.width - 1
		for i := 0; i < pc.n; i++ {
			c := pc.words[i/oldK] >> (uint(i%oldK) * pc.width) & mask
			nw[i/k] |= c << (uint(i%k) * width)
		}
	}
	pc.words = nw
	pc.width = width
}

// get unpacks code i.
func (pc *packedColumn) get(i int) int32 {
	k := int(64 / pc.width)
	return int32(pc.words[i/k] >> (uint(i%k) * pc.width) & (uint64(1)<<pc.width - 1))
}

// view snapshots the column for a plan: the slice header, width and
// length taken together under the caller's lock stay consistent however
// the live column grows or repacks afterwards.
func (pc *packedColumn) view() packedView {
	return packedView{words: pc.words, width: pc.width, n: pc.n}
}

// packedView is a compile-time snapshot of a packedColumn (see the
// concurrency note in the file header). The zero view (width 0) means
// "no packed data"; plans then keep the scalar path.
type packedView struct {
	words []uint64
	width uint
	n     int
}

// get unpacks code i of the snapshot.
func (pv packedView) get(i int) int32 {
	k := int(64 / pv.width)
	return int32(pv.words[i/k] >> (uint(i%k) * pv.width) & (uint64(1)<<pv.width - 1))
}

// codeSet classification: how the set of matching codes is shaped, which
// picks the kernel that evaluates it on packed words.
const (
	csEmpty  = iota // no code matches: the predicate selects nothing
	csAll           // every code matches: the predicate selects everything
	csRange         // matching codes are one contiguous run [lo, hi]
	csSparse        // anything else: per-lane membership test
)

// codeSet is a predicate translated to its matching finest-level codes —
// the compile-once half of scan-on-compressed. bits always holds the
// membership bitmap (one bit per code < card; also the fast path for the
// scalar filterSpec.match), and kind/lo/hi classify the set so fillMask
// can pick the word-at-a-time kernel.
type codeSet struct {
	kind   int
	lo, hi int32 // csRange bounds, inclusive
	card   int
	bits   []uint64
}

// newCodeSet evaluates match for every code in [0, card) and classifies
// the result. match must be pure — it is the predicate's semantics at
// member granularity, evaluated card times at compile instead of once per
// fact per scan.
func newCodeSet(card int, match func(code int32) bool) *codeSet {
	cs := &codeSet{card: card, bits: make([]uint64, (card+63)/64)}
	count := 0
	var lo, hi int32
	for m := 0; m < card; m++ {
		if !match(int32(m)) {
			continue
		}
		cs.bits[m>>6] |= 1 << (uint(m) & 63)
		if count == 0 {
			lo = int32(m)
		}
		hi = int32(m)
		count++
	}
	switch {
	case count == 0:
		cs.kind = csEmpty
	case count == card:
		cs.kind = csAll
	case int(hi-lo)+1 == count:
		cs.kind = csRange
		cs.lo, cs.hi = lo, hi
	default:
		cs.kind = csSparse
	}
	return cs
}

// test reports whether code c is in the set. c must be < card — fact keys
// are validated against the finest level on AddFact, so every code a plan
// can read is in range.
func (cs *codeSet) test(c int32) bool {
	return cs.bits[c>>6]&(1<<(uint32(c)&63)) != 0
}

// fillRange sets out bits [lo, hi) word-at-a-time.
func fillRange(out *bitset.Set, lo, hi int) {
	ow := out.Words()
	loW, hiW := lo>>6, (hi-1)>>6
	for wi := loW; wi <= hiW; wi++ {
		w := ^uint64(0)
		if wi == loW {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == hiW {
			if rem := uint(hi) & 63; rem != 0 {
				w &= uint64(1)<<rem - 1
			}
		}
		ow[wi] |= w
	}
}

// scatterLanes ORs the K result bits for facts [i, i+K) into the output
// words (the bits may straddle one word boundary).
func scatterLanes(ow []uint64, i int, lanes uint64, k int) {
	off := uint(i) & 63
	ow[i>>6] |= lanes << off
	if off+uint(k) > 64 {
		ow[i>>6+1] |= lanes >> (64 - off)
	}
}

// fillMask is the stage-1 predicate kernel: set out's bit for every fact
// in [lo, hi) whose packed code is in cs, reading 64/width codes per
// word load. It writes only bits in [lo, hi), so the word-aligned-chunk
// contract of the shared fill phases holds (a worker owning a 64-aligned
// chunk writes only its own output words; the lone packed word spanning a
// chunk boundary is handled by the scalar head/tail, which stay inside
// the chunk). Results are bit-identical to testing cs.test(get(i)) per
// fact, which in turn equals the scalar predicate by construction of the
// code set — the equivalence the packed-vs-unpacked harness pins.
func (pv packedView) fillMask(cs *codeSet, lo, hi int, out *bitset.Set) {
	if hi > pv.n {
		hi = pv.n
	}
	if lo >= hi {
		return
	}
	switch cs.kind {
	case csEmpty:
		return
	case csAll:
		fillRange(out, lo, hi)
		return
	}
	b := pv.width
	k := int(64 / b)
	ow := out.Words()

	// Scalar head up to the first whole packed word, main loop over whole
	// packed words, scalar tail after the last whole one.
	head := (lo + k - 1) / k * k
	if head > hi {
		head = hi
	}
	for i := lo; i < head; i++ {
		if cs.test(pv.get(i)) {
			out.Set(i)
		}
	}
	tail := hi / k * k
	if tail < head {
		tail = head
	}

	if head < tail {
		if cs.kind == csRange {
			pv.fillRangeWords(cs, head, tail, ow)
		} else {
			pv.fillSparseWords(cs, head, tail, ow)
		}
	}
	for i := tail; i < hi; i++ {
		if cs.test(pv.get(i)) {
			out.Set(i)
		}
	}
}

// fillSparseWords is the membership kernel: per packed word, extract each
// lane's code and test the codeSet bitmap — no branches in the lane loop,
// one load per 64/width facts instead of the scalar path's key load,
// roll-up lookup, attribute fetch and interface-valued compare per fact.
// [head, tail) must be whole packed words.
func (pv packedView) fillSparseWords(cs *codeSet, head, tail int, ow []uint64) {
	b := pv.width
	k := int(64 / b)
	laneMask := uint64(1)<<b - 1
	csBits := cs.bits
	for i := head; i < tail; i += k {
		w := pv.words[i/k]
		var lanes uint64
		for l := 0; l < k; l++ {
			c := w & laneMask
			w >>= b
			lanes |= (csBits[c>>6] >> (c & 63) & 1) << uint(l)
		}
		scatterLanes(ow, i, lanes, k)
	}
}

// fillRangeWords is the SWAR comparison kernel for contiguous code
// ranges: test lo <= code <= hi across all lanes of a word at once.
//
// A b-bit lane has no headroom for the carry of an addition, so lanes are
// split into two half-density passes: the even pass masks the word to
// even-indexed lanes (the odd lanes between them become zero headroom),
// the odd pass shifts the word right by b so odd lanes land on the even
// slots. In each pass, code >= c is tested per lane by adding 2^b-c to
// the lane and reading the carry at laneStart+b; per-lane sums stay below
// 2^(b+1), so carries never reach the next occupied slot. The range test
// is then ge(lo) AND NOT ge(hi+1). lo == 0 (ge vacuously true) and
// hi+1 == 2^b (ge vacuously false) skip their pass — which also keeps the
// addends within b bits. [head, tail) must be whole packed words.
func (pv packedView) fillRangeWords(cs *codeSet, head, tail int, ow []uint64) {
	b := pv.width
	k := int(64 / b)
	if b == 1 {
		// Two one-bit codes and a proper-subset range means the set is
		// exactly {0} or {1}: the packed word is (or complements) the
		// answer, no arithmetic needed.
		for i := head; i < tail; i += k {
			lanes := pv.words[i/k]
			if cs.lo == 0 {
				lanes = ^lanes
			}
			scatterLanes(ow, i, lanes, k)
		}
		return
	}

	// Lane masks: selEven keeps the even-indexed lanes' fields; carryEven/
	// carryOdd pick each pass's carry bits (bit laneSlot+b per occupied
	// slot). The top lane never needs special casing: if k is even the top
	// lane is odd and its post-shift carry lands at (k-1)*b <= 63; if k is
	// odd then k*b <= 63 (64 has no odd divisor > 1), so the top even
	// lane's carry bit exists too.
	var selEven, carryEven, carryOdd uint64
	for j := 0; 2*j < k; j++ {
		selEven |= (uint64(1)<<b - 1) << (uint(2*j) * b)
		carryEven |= 1 << (uint(2*j)*b + b)
	}
	for j := 0; 2*j+1 < k; j++ {
		carryOdd |= 1 << (uint(2*j)*b + b)
	}
	needLo := cs.lo > 0
	needHi := uint(bits.Len32(uint32(cs.hi)+1)) <= b // hi+1 < 2^b
	var addLo, addHi uint64
	for j := 0; 2*j < k; j++ {
		slot := uint(2*j) * b
		addLo |= (uint64(1)<<b - uint64(uint32(cs.lo))) << slot
		addHi |= (uint64(1)<<b - uint64(uint32(cs.hi)+1)) << slot
	}

	for i := head; i < tail; i += k {
		w := pv.words[i/k]
		xe := w & selEven
		xo := (w >> b) & selEven
		geLoE, geLoO := carryEven, carryOdd
		if needLo {
			geLoE = (xe + addLo) & carryEven
			geLoO = (xo + addLo) & carryOdd
		}
		ltHiE, ltHiO := carryEven, carryOdd
		if needHi {
			ltHiE = ^(xe + addHi) & carryEven
			ltHiO = ^(xo + addHi) & carryOdd
		}
		// Even lane l's verdict sits at (l+1)*b, odd lane l's at l*b;
		// shifting the even half down by b unifies both at l*b.
		combined := (geLoE&ltHiE)>>b | geLoO&ltHiO
		var lanes uint64
		for l, p := 0, uint(0); l < k; l, p = l+1, p+b {
			lanes |= (combined >> p & 1) << uint(l)
		}
		scatterLanes(ow, i, lanes, k)
	}
}

// packedBytes is the column's packed footprint.
func (pc *packedColumn) packedBytes() int64 { return int64(len(pc.words)) * 8 }

// PackedStats reports the compressed column layer's footprint and shape:
// how many dim-key columns are packed, their packed vs unpacked ([]int32)
// byte sizes, and the bit width per "fact/dimension" column. Aggregated
// across shards by Add (widths take the max — shards of one logical
// column may have packed at different widths depending on the keys they
// were dealt).
type PackedStats struct {
	Columns       int            `json:"columns"`
	PackedBytes   int64          `json:"packedBytes"`
	UnpackedBytes int64          `json:"unpackedBytes"`
	BitsPerColumn map[string]int `json:"bitsPerColumn,omitempty"`
}

// Add folds another cube's (typically a sibling shard's) stats in.
func (ps *PackedStats) Add(o PackedStats) {
	ps.PackedBytes += o.PackedBytes
	ps.UnpackedBytes += o.UnpackedBytes
	if len(o.BitsPerColumn) > 0 && ps.BitsPerColumn == nil {
		ps.BitsPerColumn = map[string]int{}
	}
	for col, w := range o.BitsPerColumn {
		if w > ps.BitsPerColumn[col] {
			ps.BitsPerColumn[col] = w
		}
	}
	ps.Columns = len(ps.BitsPerColumn)
}

// PackedStats reports this cube's compressed-column footprint. Callers
// synchronize with ingest exactly as for scans (the engine holds its read
// lock; the shard table sums shards under their per-shard read locks).
func (c *Cube) PackedStats() PackedStats {
	ps := PackedStats{BitsPerColumn: map[string]int{}}
	for fn, fd := range c.facts {
		for dn, pc := range fd.packed {
			if pc == nil || pc.width == 0 {
				continue
			}
			ps.Columns++
			ps.PackedBytes += pc.packedBytes()
			ps.UnpackedBytes += int64(pc.n) * 4
			ps.BitsPerColumn[fn+"/"+dn] = int(pc.width)
		}
	}
	return ps
}

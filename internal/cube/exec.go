package cube

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdwp/internal/bitset"
	"sdwp/internal/mdmodel"
	"sdwp/internal/obs"
)

// This file is the query executor: a compiled plan (queryPlan) over
// thread-local partial aggregation tables (partial) that one goroutine or a
// worker pool can fill and merge.
//
// The fact table is split into contiguous fixed-size chunks and scanned
// morsel-driven: workers claim the next unclaimed chunk off a shared
// atomic cursor (forEachMorsel), so which worker scans which chunk follows
// execution speed, not a static stride, and a straggler holds back at most
// one chunk of work. Determinism comes from the merge, not from chunk
// ownership: the per-worker partials are always merged in worker index
// order, which fixes the fold order of COUNT (exact) and MIN/MAX
// (order-insensitive), and fixes SUM/AVG byte-for-byte whenever the
// per-group sums are exact in float64 (integer-valued or dyadic measures —
// what the equivalence harness pins); otherwise SUM/AVG are equal up to
// floating-point summation order, exactly the contract ExecuteParallel has
// always had across differing worker counts.
//
// Partial tables themselves are pooled per fact table (FactData.getPartial):
// a partial and the slab arena backing its accumulator cells are reset and
// rebound to the new plan on Get, live for exactly one scan, and return to
// the pool together after finalize (scanPartials.release) — merge moves
// accumulator cells between sibling partials by reference, so partials of
// one scan recycle only as a unit.

// execChunkSize is the facts-per-chunk scan granularity. Chunks are the
// unit of work interleaving: the shared-scan batch executor walks one
// chunk of the fact columns (a few hundred KB, cache-hot) through every
// query of the batch before moving to the next. It must stay a multiple
// of 64 so chunk bounds are bitset-word-aligned and workers can fill one
// shared filter bitmap chunk-by-chunk without write races.
const execChunkSize = 8192

// Compile-time guard for the word alignment buildArtifacts relies on.
var _ = [1]struct{}{}[execChunkSize%64]

// chunkCount returns the number of contiguous scan chunks for n facts.
func chunkCount(n int) int {
	chunks := (n + execChunkSize - 1) / execChunkSize
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// The executor is a three-stage pipeline over the fact columns:
//
//	stage 1  filter-mask      matchFact / materializeFilterMask
//	stage 2  group-key decode groupSpec.decode / materializeGroupKeys
//	stage 3  accumulate       partial.accumulateFact
//
// The serial and parallel single-query paths fuse the stages per fact
// (process). The batch executor can instead materialize stages 1 and 2 as
// shared artifacts — one filter bitmap per distinct filter set, one rolled-
// up key column per distinct (dimension, level) grouping, keyed by the
// sub-fingerprints in fingerprint.go — and drive every query's stage 3 off
// them (exec_shared.go).

// groupSpec is one resolved group-by level. anc maps each finest-level
// member to its ancestor at the group level (the roll-up cache), and keys
// is the fact's key column for the dimension. key is the grouping's
// sub-fingerprint — the identity under which a batch scan shares one
// decoded key column among queries.
type groupSpec struct {
	dd   *DimData
	li   int
	anc  []int32
	keys []int32
	key  string
}

// decode is stage 2 for one fact: the member of the grouping level that
// fact i rolls up to.
func (g *groupSpec) decode(i int32) int32 { return g.anc[g.keys[i]] }

// materializeGroupKeys runs stage 2 over facts [lo, hi) into the shared
// key column (col[i] valid for i in [lo, hi) afterwards).
func (g *groupSpec) materializeGroupKeys(lo, hi int, col []int32) {
	anc, keys := g.anc, g.keys
	for i := lo; i < hi; i++ {
		col[i] = anc[keys[i]]
	}
}

// attrCol is a filter attribute resolved at compile time: either the level
// descriptor column or a declared attribute column, so the per-fact path
// never re-scans level.Attributes (which LevelData.Attr does linearly).
type attrCol struct {
	desc []string // descriptor column when the filter names the descriptor
	col  []any    // attribute column otherwise (nil when never set)
}

// value returns the attribute of member i, mirroring LevelData.Attr.
func (a attrCol) value(i int32) (any, bool) {
	if a.desc != nil {
		return a.desc[i], true
	}
	if a.col == nil || int(i) >= len(a.col) {
		return nil, false
	}
	return a.col[i], true
}

// filterSpec is one resolved attribute filter. key is the predicate's
// sub-fingerprint (AttrFilter.Fingerprint) — the identity under which a
// batch scan materializes one bitmap per distinct predicate and composes
// each query's filter mask by AND.
type filterSpec struct {
	dd   *DimData
	li   int
	f    AttrFilter
	anc  []int32
	keys []int32
	attr attrCol
	key  string
	// pk/codes are the compressed-column bindings, set at compile when
	// packed execution is on: pk snapshots the dimension's bit-packed key
	// column and codes is the predicate translated to its matching
	// finest-level member codes (see packed.go). codes also accelerates
	// the scalar match below — one bitmap probe instead of roll-up lookup
	// plus interface-valued compare — so the translation pays off even on
	// paths that never touch packed words.
	pk    packedView
	codes *codeSet
}

// matchCode is the predicate's member-granularity semantics: whether a
// fact whose finest-level key is code passes this filter. match is
// exactly matchCode(keys[i]); newCodeSet evaluates matchCode once per
// code at compile so scans can test membership instead.
func (fs *filterSpec) matchCode(code int32) bool {
	anc := fs.anc[code]
	if anc == NoParent {
		return false
	}
	val, has := fs.attr.value(anc)
	return has && compare(val, fs.f.Op, fs.f.Value)
}

// match is stage 1 for one fact and one predicate: whether fact i passes
// this filter alone.
func (fs *filterSpec) match(i int32) bool {
	if fs.codes != nil {
		return fs.codes.test(fs.keys[i])
	}
	return fs.matchCode(fs.keys[i])
}

// materializePredicateMask runs this one predicate over facts [lo, hi)
// into the shared bitmap — the per-filter counterpart of
// queryPlan.materializeFilterMask, with the same word-aligned chunk
// contract (workers owning disjoint chunks fill one bitmap racelessly).
func (fs *filterSpec) materializePredicateMask(lo, hi int, out *bitset.Set) {
	if fs.codes != nil && fs.pk.n >= hi {
		// Word-at-a-time on the packed key column: 64/width codes per
		// load, same chunk contract (fillMask writes only bits [lo, hi)).
		fs.pk.fillMask(fs.codes, lo, hi, out)
		return
	}
	for i := lo; i < hi; i++ {
		if fs.match(int32(i)) {
			out.Set(i)
		}
	}
}

// queryPlan is a validated, resolved query: every name bound to column
// data, ready to scan. Plans are read-only after compile, so any number of
// workers can share one.
type queryPlan struct {
	q  Query
	fd *FactData
	// n is the fact count at compile time — the scan bound of this plan.
	// The column snapshots bound below (dimension keys, measures, filter
	// attributes) are guaranteed to cover exactly [0, n); facts appended
	// after compile grow fd.n and the live columns but not these
	// snapshots, so scanning by live fd.n would over-index them. A plan
	// therefore always aggregates the table prefix that existed when it
	// was compiled.
	n       int
	groups  []groupSpec
	filters []filterSpec
	// filterKey is the filter set's sub-fingerprint ("" without filters):
	// the identity under which a batch scan shares one materialized filter
	// bitmap among queries.
	filterKey string
	// measureCols holds the measure column per aggregate (nil for COUNT),
	// hoisted out of the scan loop.
	measureCols [][]float64
	// kern is the stage-3 accumulate kernel selected for this plan (see
	// exec_kernels.go); kernGeneric keeps the classic accumulateFact loop
	// and is always used when packed execution is off (the oracle path).
	kern kernelKind
}

// matchFact is stage 1 for one fact: whether fact i passes every filter of
// the plan. The outcome is order-insensitive (a conjunction), so plans
// whose filter sets are equal up to ordering share one FilterFingerprint
// and, in a batch, one materialized bitmap.
func (p *queryPlan) matchFact(i int32) bool {
	for fi := range p.filters {
		if !p.filters[fi].match(i) {
			return false
		}
	}
	return true
}

// matchResidual evaluates only the filters at the given indices — the
// residual predicates of a partially composed filter mask (the iterated
// bitmap already encodes the others). The conjunction over (encoded ∪
// residual) predicates equals matchFact, so results stay byte-identical.
func (p *queryPlan) matchResidual(i int32, idx []int) bool {
	for _, fi := range idx {
		if !p.filters[fi].match(i) {
			return false
		}
	}
	return true
}

// materializeFilterMask runs stage 1 over facts [lo, hi) into the shared
// bitmap. Chunk bounds are word-aligned (execChunkSize is a multiple of
// 64), so workers owning disjoint chunks fill one bitmap without racing.
func (p *queryPlan) materializeFilterMask(lo, hi int, out *bitset.Set) {
	for i := lo; i < hi; i++ {
		if p.matchFact(int32(i)) {
			out.Set(i)
		}
	}
}

// compile resolves and validates a query against the cube.
func (c *Cube) compile(q Query) (*queryPlan, error) {
	fd := c.facts[q.Fact]
	if fd == nil {
		return nil, fmt.Errorf("cube: unknown fact %q", q.Fact)
	}
	if len(q.Aggregates) == 0 {
		return nil, fmt.Errorf("cube: query needs at least one aggregate")
	}
	p := &queryPlan{q: q, fd: fd, n: fd.n}

	// Resolve group-by levels.
	p.groups = make([]groupSpec, len(q.GroupBy))
	for i, g := range q.GroupBy {
		dd := c.dims[g.Dimension]
		if dd == nil {
			return nil, fmt.Errorf("cube: unknown dimension %q", g.Dimension)
		}
		if !fd.fact.HasDimension(g.Dimension) {
			return nil, fmt.Errorf("cube: fact %q has no dimension %q", q.Fact, g.Dimension)
		}
		li := dd.dim.LevelIndex(g.Level)
		if li < 0 {
			return nil, fmt.Errorf("cube: dimension %q has no level %q", g.Dimension, g.Level)
		}
		p.groups[i] = groupSpec{dd: dd, li: li, anc: dd.ancestorsFromFinest(li),
			keys: fd.dimKeys[g.Dimension], key: g.Fingerprint()}
	}

	// Resolve aggregates.
	p.measureCols = make([][]float64, len(q.Aggregates))
	for j, a := range q.Aggregates {
		if a.Agg < AggSum || a.Agg > AggMax {
			return nil, fmt.Errorf("cube: invalid aggregation in query")
		}
		if a.Agg == AggCount {
			continue
		}
		if fd.fact.Measure(a.Measure) == nil {
			return nil, fmt.Errorf("cube: fact %q has no measure %q", q.Fact, a.Measure)
		}
		p.measureCols[j] = fd.measures[a.Measure]
	}

	if q.OrderBy != nil && (q.OrderBy.Agg < 0 || q.OrderBy.Agg >= len(q.Aggregates)) {
		return nil, fmt.Errorf("cube: OrderBy.Agg %d out of range (have %d aggregates)",
			q.OrderBy.Agg, len(q.Aggregates))
	}
	if q.Limit < 0 {
		return nil, fmt.Errorf("cube: negative Limit %d", q.Limit)
	}

	// Resolve filters.
	p.filters = make([]filterSpec, len(q.Filters))
	for i, f := range q.Filters {
		dd := c.dims[f.Dimension]
		if dd == nil {
			return nil, fmt.Errorf("cube: unknown dimension %q in filter", f.Dimension)
		}
		if !fd.fact.HasDimension(f.Dimension) {
			return nil, fmt.Errorf("cube: fact %q has no dimension %q in filter", q.Fact, f.Dimension)
		}
		li := dd.dim.LevelIndex(f.Level)
		if li < 0 {
			return nil, fmt.Errorf("cube: dimension %q has no level %q in filter", f.Dimension, f.Level)
		}
		ld := dd.levels[li]
		attr := ld.level.Attribute(f.Attr)
		if attr == nil {
			return nil, fmt.Errorf("cube: level %s has no attribute %q", f.LevelRef, f.Attr)
		}
		// Resolve the attribute column once here instead of re-scanning
		// level.Attributes per fact (LevelData.Attr's linear descriptor
		// check) in the scan loop.
		var ac attrCol
		if attr.Kind == mdmodel.KindDescriptor {
			ac.desc = ld.names
		} else {
			ac.col = ld.attrs[f.Attr]
		}
		p.filters[i] = filterSpec{dd: dd, li: li, f: f,
			anc: dd.ancestorsFromFinest(li), keys: fd.dimKeys[f.Dimension], attr: ac,
			key: f.Fingerprint()}
	}
	if len(p.filters) > 0 {
		p.filterKey = q.FilterFingerprint()
	}
	if c.packedExec.Load() {
		p.kern = selectKernel(p)
		p.bindPacked(fd)
	}
	return p, nil
}

// bindPacked attaches the compressed-column execution state to a plan's
// filters: a packed snapshot of each filtered dimension's key column and
// the predicate translated to its matching code set. The translation
// evaluates the predicate once per finest-level member (O(card), a
// vanishing fraction of one fact scan) and is what both the word-at-a-
// time stage-1 kernels and the bitmap-probe scalar match run on. A
// dimension without packed data (empty table) keeps the scalar path.
func (p *queryPlan) bindPacked(fd *FactData) {
	for i := range p.filters {
		fs := &p.filters[i]
		pc := fd.packed[fs.f.Dimension]
		if pc == nil || pc.width == 0 {
			continue
		}
		if pv := pc.view(); pv.n >= p.n {
			fs.pk = pv
			if fs.codes == nil {
				fs.codes = newCodeSet(len(fs.anc), fs.matchCode)
			}
		}
	}
}

// accum is the aggregation state of one group.
type accum struct {
	members []int32
	sums    []float64
	mins    []float64
	maxs    []float64
	count   float64
}

// mergeFrom folds src into a: sums and counts add, MIN/MAX narrow. AVG
// needs no state of its own — it divides sum by count at finalize.
func (a *accum) mergeFrom(src *accum) {
	a.count += src.count
	for j := range a.sums {
		a.sums[j] += src.sums[j]
		if src.mins[j] < a.mins[j] {
			a.mins[j] = src.mins[j]
		}
		if src.maxs[j] > a.maxs[j] {
			a.maxs[j] = src.maxs[j]
		}
	}
}

// slab is a rewindable block allocator: take carves n elements off the
// current block (growing by blockSize blocks as needed) and reset rewinds
// every block for reuse without freeing. Carved slices alias the blocks,
// so a slab may only rewind once nothing from the previous use is
// referenced — the unit-release discipline scanPartials enforces.
type slab[T any] struct {
	blocks [][]T
	bi     int // current block index
	off    int // next free element of blocks[bi]
}

// take returns a capacity-capped slice of n elements. Contents are
// whatever the previous use left behind; callers overwrite every element.
func (s *slab[T]) take(n, blockSize int) []T {
	for {
		if s.bi == len(s.blocks) {
			if blockSize < n {
				blockSize = n
			}
			s.blocks = append(s.blocks, make([]T, blockSize))
		}
		if b := s.blocks[s.bi]; s.off+n <= len(b) {
			out := b[s.off : s.off+n : s.off+n]
			s.off += n
			return out
		}
		s.bi++
		s.off = 0
	}
}

func (s *slab[T]) reset() { s.bi, s.off = 0, 0 }

// Slab block sizes: large enough that a scan with thousands of groups
// allocates a handful of blocks, small enough that a tiny shard's pooled
// partial does not pin megabytes.
const (
	accumBlockSize  = 256
	floatBlockSize  = 4096
	memberBlockSize = 1024
)

// accumArena backs every accumulator cell of one partial: the cells
// themselves plus their members/sums/mins/maxs slices all come from slabs
// that rewind when the partial is rebound, so a reused partial creates
// cells without a single heap allocation.
type accumArena struct {
	cells   slab[accum]
	floats  slab[float64]
	members slab[int32]
}

func (a *accumArena) reset() {
	a.cells.reset()
	a.floats.reset()
	a.members.reset()
}

// partial is one thread-local partial aggregation table plus scan
// statistics. Single-level group-bys (the common OLAP roll-up) use a dense
// slice indexed by group member; multi-level group-bys hash a composite
// key. Partials recycle through FactData.partialPool: rebind resets one
// for its next plan, and every field below survives pooling as reusable
// capacity (denseBuf, keyBuf, the arena blocks, the cells map's buckets).
type partial struct {
	p         *queryPlan
	fd        *FactData
	cells     map[string]*accum
	dense     []*accum
	denseNone *accum // the NoParent group of the dense path
	scanned   int
	matched   int
	// cost carries this partial's share of batch artifact bytes (set by
	// the staged scan's attribution pass); merge sums it so the gathered
	// per-shard partials conserve the batch totals.
	cost obs.QueryCost

	keyBuf        []byte
	memberScratch []int32

	denseBuf []*accum // backing storage dense reslices from
	arena    accumArena
}

// newPartial builds an unpooled partial — the fresh-allocation path the
// pool falls back to, and what tests use as an uncontaminated oracle.
func newPartial(p *queryPlan) *partial {
	pt := &partial{}
	pt.rebind(p)
	return pt
}

// rebind resets a partial for a new plan, recycling every allocation from
// its previous life: the accumulator arena rewinds, the dense table
// reslices (and clears) denseBuf to the new plan's group cardinality, and
// the hash cells clear in place. After rebind the partial is
// indistinguishable from a freshly constructed one — the pooled-partial
// hygiene test pins this.
func (pt *partial) rebind(p *queryPlan) {
	pt.p = p
	pt.scanned, pt.matched = 0, 0
	pt.cost = obs.QueryCost{}
	pt.denseNone = nil
	pt.dense = nil
	// Clear the whole backing buffer, not just the new plan's prefix:
	// cell pointers beyond it (from a wider previous plan, possibly moved
	// in by merge from a sibling's arena) would otherwise pin dead arenas.
	clear(pt.denseBuf)
	if len(p.groups) == 1 {
		l := p.groups[0].dd.levels[p.groups[0].li].Len()
		if cap(pt.denseBuf) < l {
			pt.denseBuf = make([]*accum, l)
		}
		pt.dense = pt.denseBuf[:l]
	}
	if pt.cells == nil {
		pt.cells = map[string]*accum{}
	} else {
		clear(pt.cells)
	}
	if cap(pt.memberScratch) < len(p.groups) {
		pt.memberScratch = make([]int32, len(p.groups))
	}
	pt.memberScratch = pt.memberScratch[:len(p.groups)]
	pt.keyBuf = pt.keyBuf[:0]
	pt.arena.reset()
}

// getPartial takes a pooled (or fresh) partial rebound to the plan. The
// second result reports whether the pool served it (stats fodder).
func (fd *FactData) getPartial(p *queryPlan) (*partial, bool) {
	pt, reused := fd.partialPool.Get().(*partial)
	if !reused {
		pt = &partial{}
	}
	pt.fd = fd
	pt.rebind(p)
	return pt, reused
}

// scanPartials tracks every partial one scan (single-query or batch) took
// from the per-table pools so the executor can return them together once
// the Results are finalized. Unit release is load-bearing: merge moves
// accumulator cells between sibling partials by reference, so recycling
// one partial while a sibling is still live would hand out aliased arena
// memory. Error paths may simply drop the tracker — unreleased partials
// fall to the GC like pre-pool partials always did.
type scanPartials struct {
	parts     []*partial
	reused    int
	allocated int
	released  bool
}

// get takes a partial for the plan from its table's pool and tracks it.
func (sp *scanPartials) get(p *queryPlan) *partial {
	pt, reused := p.fd.getPartial(p)
	if reused {
		sp.reused++
	} else {
		sp.allocated++
	}
	sp.parts = append(sp.parts, pt)
	return pt
}

// release returns every tracked partial to its table's pool. Idempotent —
// a sharded gather holds one handle per BatchPartial of the same scan —
// and nil-safe.
func (sp *scanPartials) release() {
	if sp == nil || sp.released {
		return
	}
	sp.released = true
	for _, pt := range sp.parts {
		pt.p = nil
		pt.fd.partialPool.Put(pt)
	}
	sp.parts = nil
}

func (pt *partial) newAccum(members []int32) *accum {
	n := len(pt.p.q.Aggregates)
	cell := &pt.arena.cells.take(1, accumBlockSize)[0]
	m := pt.arena.members.take(len(members), memberBlockSize)
	copy(m, members)
	f := pt.arena.floats.take(3*n, floatBlockSize)
	sums, mins, maxs := f[0:n:n], f[n:2*n:2*n], f[2*n:3*n]
	for j := 0; j < n; j++ {
		sums[j] = 0
		mins[j] = math.Inf(1)
		maxs[j] = math.Inf(-1)
	}
	*cell = accum{members: m, sums: sums, mins: mins, maxs: maxs}
	return cell
}

// process folds fact instance i into the partial: the fused form of the
// three-stage pipeline (filter, decode, accumulate — one fact at a time).
func (pt *partial) process(i int32) {
	pt.scanned++
	if !pt.p.matchFact(i) {
		return
	}
	pt.matched++
	pt.accumulateFact(i, nil)
}

// accumulateFact is stage 3 for one fact that already passed the filters:
// look up (or create) the fact's group cell and fold the measures in. A
// non-nil keyCols supplies pre-decoded shared key columns per grouping
// (stage 2 artifacts of a batch scan); nil entries — and a nil keyCols —
// fall back to inline decode.
func (pt *partial) accumulateFact(i int32, keyCols [][]int32) {
	p := pt.p
	var cell *accum
	if pt.dense != nil {
		var anc int32
		if keyCols != nil && keyCols[0] != nil {
			anc = keyCols[0][i]
		} else {
			anc = p.groups[0].decode(i)
		}
		cell = pt.cellFor(anc)
	} else {
		cell = pt.multiCell(i, keyCols)
	}
	cell.count++
	for j := range p.q.Aggregates {
		col := p.measureCols[j]
		if col == nil { // COUNT
			continue
		}
		mv := col[i]
		cell.sums[j] += mv
		if mv < cell.mins[j] {
			cell.mins[j] = mv
		}
		if mv > cell.maxs[j] {
			cell.maxs[j] = mv
		}
	}
}

// scanRange folds facts [lo, hi) into the partial, visiting only mask bits
// when a view mask is given (nil mask = the whole table). A plan with a
// specialized stage-3 kernel runs it where the shape allows — whole-range
// or mask-driven accumulation, and per-fact after a fused filter pass —
// with scanned/matched kept exactly as the generic path counts them.
func (pt *partial) scanRange(lo, hi int, mask *bitset.Set) {
	if p := pt.p; p.kern != kernGeneric {
		if mask == nil {
			if len(p.filters) == 0 {
				pt.scanned += hi - lo
				pt.matched += hi - lo
				pt.accumRange(lo, hi, nil)
				return
			}
			for i := lo; i < hi; i++ {
				pt.scanned++
				if p.matchFact(int32(i)) {
					pt.matched++
					pt.accumOne(int32(i), nil)
				}
			}
			return
		}
		if len(p.filters) == 0 {
			c := mask.CountRange(lo, hi)
			pt.scanned += c
			pt.matched += c
			pt.accumMask(mask, lo, hi, nil)
			return
		}
	}
	if mask != nil {
		mask.ForEachRange(lo, hi, func(i int) bool {
			pt.process(int32(i))
			return true
		})
		return
	}
	for i := lo; i < hi; i++ {
		pt.process(int32(i))
	}
}

// merge folds src into pt. Callers merge the per-worker partials in worker
// index order — the stable-merge half of the determinism contract: with
// work stealing the chunk→worker assignment varies run to run, but COUNT/
// MIN/MAX are order-insensitive and SUM folds are byte-stable whenever the
// per-group sums are exact in float64 (see the file header).
//
// merge moves accumulator cells from src into pt by reference when pt has
// no cell for the group yet — the reason a scan's partials recycle only as
// a unit (scanPartials.release).
func (pt *partial) merge(src *partial) {
	pt.scanned += src.scanned
	pt.matched += src.matched
	pt.cost.Add(src.cost)
	if pt.dense != nil {
		for idx, cell := range src.dense {
			if cell == nil {
				continue
			}
			if dst := pt.dense[idx]; dst == nil {
				pt.dense[idx] = cell
			} else {
				dst.mergeFrom(cell)
			}
		}
		if src.denseNone != nil {
			if pt.denseNone == nil {
				pt.denseNone = src.denseNone
			} else {
				pt.denseNone.mergeFrom(src.denseNone)
			}
		}
		return
	}
	for k, cell := range src.cells {
		if dst := pt.cells[k]; dst == nil {
			pt.cells[k] = cell
		} else {
			dst.mergeFrom(cell)
		}
	}
}

// finalize turns a fully merged partial into the query Result: group names,
// AVG division, ordering and limit.
func (p *queryPlan) finalize(pt *partial) *Result {
	res := &Result{ScannedFacts: pt.scanned, MatchedFacts: pt.matched}
	for _, g := range p.q.GroupBy {
		res.GroupCols = append(res.GroupCols, g.String())
	}
	for _, a := range p.q.Aggregates {
		if a.Agg == AggCount {
			res.AggCols = append(res.AggCols, "COUNT(*)")
		} else {
			res.AggCols = append(res.AggCols, fmt.Sprintf("%s(%s)", a.Agg, a.Measure))
		}
	}

	// Collect dense-path cells into the common row loop.
	cells := pt.cells
	if pt.dense != nil {
		for _, cell := range pt.dense {
			if cell != nil {
				cells[string(appendInt32(nil, cell.members[0]))] = cell
			}
		}
		if pt.denseNone != nil {
			cells[string(appendInt32(nil, NoParent))] = pt.denseNone
		}
	}

	// The cost vector: artifact-byte shares accumulated on the partial
	// by the staged scan, plus the scan counters and the distinct group
	// cells materialized (pre-Limit).
	res.Cost = pt.cost
	res.Cost.FactsScanned += int64(pt.scanned)
	res.Cost.FactsMatched += int64(pt.matched)
	res.Cost.CellsTouched += int64(len(cells))

	// Materialize rows.
	for _, cell := range cells {
		row := Row{Values: make([]float64, len(p.q.Aggregates))}
		for gi, gs := range p.groups {
			name := "(none)"
			if cell.members[gi] != NoParent {
				name = gs.dd.levels[gs.li].Name(cell.members[gi])
			}
			row.Groups = append(row.Groups, name)
		}
		for j, a := range p.q.Aggregates {
			switch a.Agg {
			case AggSum:
				row.Values[j] = cell.sums[j]
			case AggCount:
				row.Values[j] = cell.count
			case AggAvg:
				row.Values[j] = cell.sums[j] / cell.count
			case AggMin:
				row.Values[j] = cell.mins[j]
			case AggMax:
				row.Values[j] = cell.maxs[j]
			}
		}
		res.Rows = append(res.Rows, row)
	}
	byGroups := func(i, j int) bool {
		a, b := res.Rows[i].Groups, res.Rows[j].Groups
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	}
	if ob := p.q.OrderBy; ob != nil {
		sort.Slice(res.Rows, func(i, j int) bool {
			vi, vj := res.Rows[i].Values[ob.Agg], res.Rows[j].Values[ob.Agg]
			if vi != vj {
				if ob.Desc {
					return vi > vj
				}
				return vi < vj
			}
			return byGroups(i, j)
		})
	} else {
		sort.Slice(res.Rows, byGroups)
	}
	if p.q.Limit > 0 && len(res.Rows) > p.q.Limit {
		res.Rows = res.Rows[:p.q.Limit]
	}
	return res
}

// normalizeWorkers maps the worker-count knob to a concrete pool size for
// a scan over n facts: negative = one worker per logical CPU, 0 or 1 =
// serial — and never more workers than there are scan chunks. A surplus
// worker would take a partial table from the pool, scan nothing, and
// still be merged; post-sharding (shards × workers partials per batch)
// that waste was the norm for small shards, not the exception.
func normalizeWorkers(workers, n int) int {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		return 1
	}
	if chunks := chunkCount(n); workers > chunks {
		workers = chunks
	}
	return workers
}

// forEachMorsel is the work-stealing scan loop: claim the next unclaimed
// execChunkSize chunk off the shared cursor and hand its fact range to
// body, until the table is drained. Chunk→worker assignment follows
// execution speed (a straggling worker holds back at most one chunk, not
// a 1/W stripe of the table); chunk bounds stay word-aligned, so the
// shared-bitmap fill phases keep their racelessness.
func forEachMorsel(cur *atomic.Int64, chunks, n int, body func(lo, hi int)) {
	for {
		ci := int(cur.Add(1)) - 1
		if ci >= chunks {
			return
		}
		lo := ci * execChunkSize
		hi := lo + execChunkSize
		if hi > n {
			hi = n
		}
		body(lo, hi)
	}
}

// ExecuteParallel runs the query like Execute but partitions the fact scan
// across a pool of workers goroutines, each aggregating into a thread-local
// partial table; partials are merged in worker order before ordering/limit.
// workers <= 1 is the serial fallback (identical to Execute); workers < 0
// uses one worker per logical CPU.
func (c *Cube) ExecuteParallel(q Query, v *View, workers int) (*Result, error) {
	p, err := c.compile(q)
	if err != nil {
		return nil, err
	}
	var mask *bitset.Set
	if v != nil {
		// A personalized view materializes its combined mask once; the
		// query then visits only visible facts — the mechanical form of the
		// paper's "avoiding exploring a large and complex SDW". The
		// non-personalized baseline (nil view) scans the whole fact table.
		mask = v.Materialize(q.Fact)
	}
	sp := &scanPartials{}
	res := p.finalize(p.scan(mask, normalizeWorkers(workers, p.n), sp))
	sp.release()
	return res, nil
}

// scan fills and merges partials for the whole fact table. workers must
// already be normalized (clamped to the chunk count); partials come from
// sp and stay live until the caller finalizes and releases.
func (p *queryPlan) scan(mask *bitset.Set, workers int, sp *scanPartials) *partial {
	n := p.n
	if workers <= 1 {
		pt := sp.get(p)
		pt.scanRange(0, n, mask)
		return pt
	}
	chunks := chunkCount(n)
	parts := make([]*partial, workers)
	for w := range parts {
		parts[w] = sp.get(p)
	}
	var cur atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(pt *partial) {
			defer wg.Done()
			forEachMorsel(&cur, chunks, n, func(lo, hi int) {
				pt.scanRange(lo, hi, mask)
			})
		}(parts[w])
	}
	wg.Wait()
	out := parts[0]
	for _, src := range parts[1:] {
		out.merge(src)
	}
	return out
}

// CompiledQuery is a validated query plan bound to its cube. Plans are
// read-only after compilation, so one CompiledQuery may be executed any
// number of times and shared across goroutines; the scheduler compiles on
// admission and reuses the plan for the scan instead of resolving the
// query twice.
//
// A plan binds snapshots of the cube's columns (measures, dimension keys,
// roll-up caches, filter attribute columns) as they were at Compile time,
// together with the fact count (queryPlan.n) those snapshots cover.
// Appending facts afterwards is safe — AddFact grows the columns without
// disturbing the prefix a plan holds, and the plan's scans stay bounded
// by its compile-time count, so a plan held across concurrent ingest
// aggregates exactly the table prefix that existed when it was compiled.
// Structural mutation (loading dimension data, redefining attributes)
// still invalidates plans — compile after loading, as the scheduler does
// per admission.
type CompiledQuery struct {
	c *Cube
	p *queryPlan
}

// Compile resolves and validates a query for later batch execution.
func (c *Cube) Compile(q Query) (*CompiledQuery, error) {
	p, err := c.compile(q)
	if err != nil {
		return nil, err
	}
	return &CompiledQuery{c: c, p: p}, nil
}

// Query returns the source query of the plan.
func (cq *CompiledQuery) Query() Query { return cq.p.q }

// Rebind clones the plan onto another cube's fact columns. The target must
// share this plan's warehouse metadata — it is either the same cube, a
// fact shard derived from it via NewFactShard, or a sibling shard — so
// every name the plan resolved (levels, attributes, roll-up caches) stays
// valid and only the fact-local bindings (dimension key columns, measure
// columns, table handle) are swapped. This is how the shard executor
// compiles a query once and fans it out: one resolve, N cheap rebinds.
func (cq *CompiledQuery) Rebind(target *Cube) (*CompiledQuery, error) {
	if target == cq.c {
		return cq, nil
	}
	src, dst := cq.c, target
	if src.shardParent != nil {
		src = src.shardParent
	}
	if dst.shardParent != nil {
		dst = dst.shardParent
	}
	if src != dst {
		return nil, fmt.Errorf("cube: cannot rebind plan for fact %q onto an unrelated cube", cq.p.q.Fact)
	}
	p := cq.p
	fd := target.facts[p.q.Fact]
	if fd == nil {
		return nil, fmt.Errorf("cube: rebind target has no fact %q", p.q.Fact)
	}
	np := *p
	np.fd = fd
	np.n = fd.n
	np.groups = append([]groupSpec(nil), p.groups...)
	for i := range np.groups {
		np.groups[i].keys = fd.dimKeys[np.groups[i].dd.dim.Name]
	}
	np.filters = append([]filterSpec(nil), p.filters...)
	for i := range np.filters {
		fs := &np.filters[i]
		fs.keys = fd.dimKeys[fs.f.Dimension]
		// Re-snapshot the packed key column from the target shard. The
		// code set is reused as-is: it is member-level (dimension data is
		// shared by reference across the shard family), not fact-local.
		// A source plan compiled with packed execution off has no code
		// sets, so its rebinds stay on the scalar oracle path too.
		fs.pk = packedView{}
		if fs.codes != nil {
			if pc := fd.packed[fs.f.Dimension]; pc != nil && pc.width != 0 {
				if pv := pc.view(); pv.n >= np.n {
					fs.pk = pv
				}
			}
		}
	}
	np.measureCols = make([][]float64, len(p.measureCols))
	for j, a := range p.q.Aggregates {
		if p.measureCols[j] != nil {
			np.measureCols[j] = fd.measures[a.Measure]
		}
	}
	return &CompiledQuery{c: target, p: &np}, nil
}

// BatchOptions configures one shared batch scan.
type BatchOptions struct {
	// Workers sizes the chunk worker pool exactly as in ExecuteParallel.
	Workers int
	// DisableSharing reverts to fused per-query filter evaluation and
	// group-key decode inside the shared scan — the A/B baseline for the
	// cross-query subexpression sharing that is otherwise on by default.
	DisableSharing bool
	// DisablePredicateSharing keeps stage-1 sharing at whole-filter-set
	// granularity (the pre-per-filter behavior): each distinct filter set
	// materializes its bitmap by evaluating the full conjunction, instead
	// of factoring the set into per-predicate bitmaps and AND-composing.
	// The A/B baseline for per-filter sharing; results are identical
	// either way. Ignored when DisableSharing is set.
	DisablePredicateSharing bool
	// Artifacts optionally carries a cross-batch artifact cache (see
	// exec_cache.go): hot filter bitmaps and roll-up key columns then
	// survive between scans instead of being re-materialized per batch.
	// nil keeps artifacts scan-scoped (pooled), exactly as before.
	Artifacts *ArtifactCache
	// Trace optionally collects per-stage wall times of this scan (one
	// ShardScan per fact group, plus gather/finalize time). nil — the
	// default — records nothing; every timing hook is guarded by a single
	// pointer test taken once per scan phase, never per fact, so the
	// morsel loop is untouched.
	Trace *obs.ScanTrace
	// TraceShard labels recorded ShardScans with the shard index of this
	// scan (the shard executor sets it per fan-out goroutine; 0 when
	// unsharded).
	TraceShard int
}

// SharingStats reports how much cross-query stage-1/2 work one batch
// shared: instances are (query, artifact) uses, distinct counts are the
// artifacts actually needed. instances/distinct > 1 means the batch saved
// redundant filter evaluations or roll-up decodes. All zero when sharing
// is disabled.
type SharingStats struct {
	// Queries is the number of queries the batch executed.
	Queries int `json:"queries"`
	// FilterSets counts queries carrying at least one filter;
	// DistinctFilterSets the distinct filter-set sub-fingerprints among
	// them (= filter bitmaps the scan conceptually needs).
	FilterSets         int `json:"filterSets"`
	DistinctFilterSets int `json:"distinctFilterSets"`
	// FilterPredicates counts (query, distinct-predicate) uses across the
	// batch; DistinctPredicates the distinct single-AttrFilter
	// sub-fingerprints among them (= predicate bitmaps the scan
	// conceptually needs under per-filter sharing). Their ratio is the
	// per-predicate sharing factor: queries filtering
	// {year=2009, region=EU} and {year=2009, region=US} count 4 instances
	// over 3 distinct predicates.
	FilterPredicates   int `json:"filterPredicates"`
	DistinctPredicates int `json:"distinctPredicates"`
	// ComposedMasks counts filter-set masks this scan produced by
	// AND-composing per-predicate bitmaps (full composition) rather than
	// evaluating the conjunction; PartialMasks counts sets that composed
	// some predicates and evaluated the residue inline. Both 0 when
	// per-predicate sharing is disabled.
	ComposedMasks int `json:"composedMasks"`
	PartialMasks  int `json:"partialMasks"`
	// GroupKeySets counts (query, grouping) pairs; DistinctGroupings the
	// distinct (dimension, level) sub-fingerprints among them (= roll-up
	// key columns the scan conceptually needs).
	GroupKeySets      int `json:"groupKeySets"`
	DistinctGroupings int `json:"distinctGroupings"`
	// ArtifactCacheHits counts artifacts this scan took from the
	// cross-batch cache instead of re-materializing (0 without a cache).
	ArtifactCacheHits int `json:"artifactCacheHits"`
	// PartialsReused / PartialsAllocated count the per-worker partial
	// aggregation tables this scan took from the per-table pool vs
	// allocated fresh — the pool's effectiveness on the parallel path
	// (reported for both sharing modes; a warm steady state is all reuse).
	PartialsReused    int `json:"partialsReused"`
	PartialsAllocated int `json:"partialsAllocated"`
	// PackedKernelScans counts queries whose plan ran a specialized
	// stage-3 accumulate kernel (exec_kernels.go) in this batch;
	// PackedPredicateKernels counts predicate bitmaps filled by the
	// word-at-a-time packed-column kernels instead of the scalar
	// per-fact loop. Both 0 when packed execution is off.
	PackedKernelScans      int `json:"packedKernelScans"`
	PackedPredicateKernels int `json:"packedPredicateKernels"`
	// BitmapBytesBuilt / KeyColBytesBuilt total the filter bitmaps and
	// roll-up key columns this scan freshly materialized (cache hits
	// excluded). The per-query Result.Cost byte shares sum exactly to
	// these — the conservation law the cost tests pin.
	BitmapBytesBuilt int64 `json:"bitmapBytesBuilt"`
	KeyColBytesBuilt int64 `json:"keyColBytesBuilt"`
}

// Add folds another scan's stats in (the batch executor totals its
// per-fact-group scans; the shard table totals its per-shard scans).
func (s *SharingStats) Add(o SharingStats) {
	s.Queries += o.Queries
	s.FilterSets += o.FilterSets
	s.DistinctFilterSets += o.DistinctFilterSets
	s.FilterPredicates += o.FilterPredicates
	s.DistinctPredicates += o.DistinctPredicates
	s.ComposedMasks += o.ComposedMasks
	s.PartialMasks += o.PartialMasks
	s.GroupKeySets += o.GroupKeySets
	s.DistinctGroupings += o.DistinctGroupings
	s.ArtifactCacheHits += o.ArtifactCacheHits
	s.PartialsReused += o.PartialsReused
	s.PartialsAllocated += o.PartialsAllocated
	s.PackedKernelScans += o.PackedKernelScans
	s.PackedPredicateKernels += o.PackedPredicateKernels
	s.BitmapBytesBuilt += o.BitmapBytesBuilt
	s.KeyColBytesBuilt += o.KeyColBytesBuilt
}

// ExecuteBatch answers a batch of queries — e.g. many users' personalized
// views of the same fact table — in one shared scan per fact table,
// GLADE-style: queries are grouped by fact, the fact table is walked chunk
// by chunk, and every query of the group aggregates from the same
// cache-hot chunk before the scan moves on. Cross-query subexpression
// sharing is on (see ExecuteBatchCompiledOpt). Each result is identical to
// running its query through Execute/ExecuteParallel alone.
//
// vs pairs each query with its personalized view; nil vs (or a nil entry)
// means the non-personalized baseline. workers sizes the chunk worker pool
// exactly as in ExecuteParallel. Validation errors of any query abort the
// whole batch before scanning starts.
func (c *Cube) ExecuteBatch(qs []Query, vs []*View, workers int) ([]*Result, error) {
	res, _, err := c.ExecuteBatchOpt(qs, vs, BatchOptions{Workers: workers})
	return res, err
}

// ExecuteBatchOpt is ExecuteBatch with explicit batch options, also
// returning the scan's sharing statistics.
func (c *Cube) ExecuteBatchOpt(qs []Query, vs []*View, opts BatchOptions) ([]*Result, SharingStats, error) {
	if vs != nil && len(vs) != len(qs) {
		return nil, SharingStats{}, fmt.Errorf("cube: batch has %d queries but %d views", len(qs), len(vs))
	}
	cqs := make([]*CompiledQuery, len(qs))
	for i, q := range qs {
		cq, err := c.Compile(q)
		if err != nil {
			return nil, SharingStats{}, fmt.Errorf("cube: batch query %d: %w", i, err)
		}
		cqs[i] = cq
	}
	return c.ExecuteBatchCompiledOpt(cqs, vs, opts)
}

// ExecuteBatchCompiled is ExecuteBatch over pre-compiled plans: the same
// shared scan without re-resolving each query. Every entry must come from
// this cube's Compile.
func (c *Cube) ExecuteBatchCompiled(cqs []*CompiledQuery, vs []*View, workers int) ([]*Result, error) {
	res, _, err := c.ExecuteBatchCompiledOpt(cqs, vs, BatchOptions{Workers: workers})
	return res, err
}

// ExecuteBatchCompiledOpt runs one shared scan per fact table over
// pre-compiled plans. Unless opts.DisableSharing is set, each fact group's
// scan first materializes the shareable pipeline stages as batch-scoped
// artifacts — one filter bitmap per distinct filter set and one roll-up
// key column per distinct (dimension, level) grouping, identified by the
// plans' sub-fingerprints — and then drives every query's accumulation off
// the shared artifacts chunk by chunk, so queries that differ only in
// selection mask or measure stop re-evaluating each other's filters and
// re-deriving each other's group keys. Results are byte-identical either
// way (the randomized harness in exec_equiv_test.go enforces it).
func (c *Cube) ExecuteBatchCompiledOpt(cqs []*CompiledQuery, vs []*View, opts BatchOptions) ([]*Result, SharingStats, error) {
	var stats SharingStats
	if vs != nil && len(vs) != len(cqs) {
		return nil, stats, fmt.Errorf("cube: batch has %d queries but %d views", len(cqs), len(vs))
	}
	plans := make([]*queryPlan, len(cqs))
	masks := make([]*bitset.Set, len(cqs))
	for i, cq := range cqs {
		if cq == nil || cq.c != c {
			return nil, stats, fmt.Errorf("cube: batch query %d not compiled for this cube", i)
		}
		plans[i] = cq.p
		if vs != nil && vs[i] != nil {
			masks[i] = vs[i].Materialize(cq.p.q.Fact)
		}
	}
	parts, sp, stats := executeBatchPartials(plans, masks, opts)
	var t0 time.Time
	if opts.Trace != nil {
		t0 = time.Now()
	}
	results := make([]*Result, len(cqs))
	for i, pt := range parts {
		results[i] = plans[i].finalize(pt)
	}
	sp.release()
	if opts.Trace != nil {
		opts.Trace.AddGather(time.Since(t0))
	}
	return results, stats, nil
}

// executeBatchPartials is the shared core of the batch executors: group
// queries by fact (first-appearance order) so each fact table is scanned
// once per batch, run the shared scans, and return one fully merged (but
// not yet finalized) partial per query. masks are pre-materialized view
// masks (nil = whole table). The returned scanPartials owns every pooled
// partial of the scan; callers release it after finalizing.
func executeBatchPartials(plans []*queryPlan, masks []*bitset.Set, opts BatchOptions) ([]*partial, *scanPartials, SharingStats) {
	var stats SharingStats
	var factOrder []string
	groups := map[string][]int{}
	for i, p := range plans {
		if _, ok := groups[p.q.Fact]; !ok {
			factOrder = append(factOrder, p.q.Fact)
		}
		groups[p.q.Fact] = append(groups[p.q.Fact], i)
	}
	parts := make([]*partial, len(plans))
	sp := &scanPartials{}
	for _, p := range plans {
		if p.kern != kernGeneric {
			stats.PackedKernelScans++
		}
	}
	for _, fact := range factOrder {
		idxs := groups[fact]
		n := groupScanBound(plans, idxs)
		w := normalizeWorkers(opts.Workers, n)
		var sc *obs.ShardScan
		var t0 time.Time
		if opts.Trace != nil {
			sc = &obs.ShardScan{Shard: opts.TraceShard, Facts: n}
			t0 = time.Now()
		}
		if opts.DisableSharing {
			scanShared(idxs, plans, masks, parts, w, n, sp, sc)
		} else {
			stats.Add(scanSharedStaged(idxs, plans, masks, parts, w, n, opts, sp, sc))
		}
		if sc != nil {
			sc.Wall = time.Since(t0)
			opts.Trace.AddShard(*sc)
		}
	}
	stats.PartialsReused = sp.reused
	stats.PartialsAllocated = sp.allocated
	return parts, sp, stats
}

// groupScanBound is the shared scan bound for one fact group: the minimum
// of the group's compile-time fact counts. Plans in a group always target
// the same fact table but may have been compiled at different times —
// under concurrent ingest a later plan's column snapshots are longer — so
// the group's single morsel walk must stop where the shortest snapshot
// does. Facts past the bound are simply invisible to this batch, exactly
// as they are to a serial execution of the earliest-compiled plan.
func groupScanBound(plans []*queryPlan, idxs []int) int {
	n := plans[idxs[0]].n
	for _, qi := range idxs[1:] {
		if plans[qi].n < n {
			n = plans[qi].n
		}
	}
	return n
}

// BatchPartial is one query's merged partial aggregation state from a
// shared scan over one cube — typically one fact shard. Partials from
// sibling shards of the same scatter merge through MergeFinalize into the
// Result the unsharded executor would have produced.
type BatchPartial struct {
	p  *queryPlan
	pt *partial
	// sp is the owning scan's pooled-partials handle, shared by every
	// BatchPartial of the scan; MergeFinalize releases it (idempotently)
	// once the gathered Results are finalized.
	sp *scanPartials
}

// ExecuteBatchCompiledPartials runs the same shared scan as
// ExecuteBatchCompiledOpt but stops before finalize, returning each
// query's merged partial. masks pairs each query with a pre-materialized
// visibility mask over this cube's fact table (nil entry or nil slice =
// whole table); the shard layer passes the per-shard slice of a split
// view mask here. Plans must be compiled for (or rebound onto) this cube.
func (c *Cube) ExecuteBatchCompiledPartials(cqs []*CompiledQuery, masks []*bitset.Set, opts BatchOptions) ([]*BatchPartial, SharingStats, error) {
	var stats SharingStats
	if masks != nil && len(masks) != len(cqs) {
		return nil, stats, fmt.Errorf("cube: batch has %d queries but %d masks", len(cqs), len(masks))
	}
	plans := make([]*queryPlan, len(cqs))
	for i, cq := range cqs {
		if cq == nil || cq.c != c {
			return nil, stats, fmt.Errorf("cube: batch query %d not compiled for this cube", i)
		}
		plans[i] = cq.p
	}
	if masks == nil {
		masks = make([]*bitset.Set, len(cqs))
	}
	parts, sp, stats := executeBatchPartials(plans, masks, opts)
	out := make([]*BatchPartial, len(parts))
	for i, pt := range parts {
		out[i] = &BatchPartial{p: plans[i], pt: pt, sp: sp}
	}
	return out, stats, nil
}

// MergeFinalize gathers a scatter: shards[s][i] is query i's partial from
// shard s. Per query, the shard partials are merged in shard order — the
// same deterministic convention as the executor's worker-order merge — and
// finalized into the Result the unsharded engine would return (AVG divides
// merged sums by merged counts, MIN/MAX narrow). The partials are consumed.
func MergeFinalize(shards [][]*BatchPartial) ([]*Result, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cube: merge of zero shards")
	}
	nq := len(shards[0])
	for s, parts := range shards {
		if len(parts) != nq {
			return nil, fmt.Errorf("cube: shard %d has %d partials, want %d", s, len(parts), nq)
		}
	}
	results := make([]*Result, nq)
	for i := 0; i < nq; i++ {
		base := shards[0][i]
		for s := 1; s < len(shards); s++ {
			base.pt.merge(shards[s][i].pt)
		}
		results[i] = base.p.finalize(base.pt)
	}
	// Consumed: every shard scan's pooled partials go back to their
	// table's pool. release is idempotent, so iterating every handle
	// (shards of one scan share one) is fine.
	for _, parts := range shards {
		for _, bp := range parts {
			bp.sp.release()
		}
	}
	return results, nil
}

// scanShared runs one shared scan for all queries over one fact table
// with the stages fused per query (no cross-query artifact sharing) — the
// BatchOptions.DisableSharing baseline; see exec_shared.go for the staged
// variant. idxs indexes plans/masks/out; every plan shares the same
// FactData. Each worker keeps one partial per query and walks each
// claimed morsel through all queries before claiming the next, so a chunk
// of fact columns is aggregated by the whole batch while it is cache-hot.
// workers must already be normalized and n is the group's scan bound
// (groupScanBound). The merged partial per query lands in out (callers
// finalize, then release sp). A non-nil sc receives the scan's stage
// timings (the fused path charges everything to accumulate + merge).
func scanShared(idxs []int, plans []*queryPlan, masks []*bitset.Set, out []*partial, workers, n int, sp *scanPartials, sc *obs.ShardScan) {
	chunks := chunkCount(n)
	parts := make([][]*partial, workers) // [worker][query-in-group]
	for w := range parts {
		row := make([]*partial, len(idxs))
		for k, qi := range idxs {
			row[k] = sp.get(plans[qi])
		}
		parts[w] = row
	}
	var cur atomic.Int64
	scanWorker := func(row []*partial) {
		forEachMorsel(&cur, chunks, n, func(lo, hi int) {
			for k, qi := range idxs {
				row[k].scanRange(lo, hi, masks[qi])
			}
		})
	}
	var t0 time.Time
	if sc != nil {
		t0 = time.Now()
	}
	if workers == 1 {
		scanWorker(parts[0])
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(row []*partial) {
				defer wg.Done()
				scanWorker(row)
			}(parts[w])
		}
		wg.Wait()
	}
	if sc != nil {
		sc.Accumulate = time.Since(t0)
		t0 = time.Now()
	}
	for k, qi := range idxs {
		merged := parts[0][k]
		for w := 1; w < workers; w++ {
			merged.merge(parts[w][k])
		}
		out[qi] = merged
	}
	if sc != nil {
		sc.Merge = time.Since(t0)
	}
}

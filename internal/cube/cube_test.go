package cube

import (
	"strings"
	"testing"

	"sdwp/internal/geom"
	"sdwp/internal/geomd"
	"sdwp/internal/mdmodel"
)

// testWarehouse builds a small sales warehouse:
//
//	Store hierarchy: Store(5) → City(3) → State(2) → Country(1)
//	  s0,s1 in Alicante (Valencia); s2 in Elche (Valencia);
//	  s3,s4 in MadridCity (MadridState)
//	Time hierarchy: Day(2) → Month(1)
//	Facts: 6 sales with UnitSales 1,2,3,4,5,6 and StoreCost 10..60.
//	  f0: s0 d0, f1: s1 d0, f2: s2 d1, f3: s3 d1, f4: s4 d0, f5: s0 d1
func testWarehouse(t testing.TB) *Cube {
	t.Helper()
	b := mdmodel.NewBuilder("SalesDW")
	b.Dimension("Store").
		Level("Store", "name").Attr("size", mdmodel.TypeNumber).
		Level("City", "name").Attr("population", mdmodel.TypeNumber).
		Level("State", "name").
		Level("Country", "name")
	b.Dimension("Time").
		Level("Day", "date").
		Level("Month", "name")
	b.Fact("Sales").Measure("UnitSales").Measure("StoreCost").Uses("Store", "Time")
	gs := geomd.New(b.MustBuild())
	c := New(gs)

	must := func(idx int32, err error) int32 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	spain := must(c.AddMember("Store", "Country", "Spain", NoParent))
	valencia := must(c.AddMember("Store", "State", "Valencia", spain))
	madridSt := must(c.AddMember("Store", "State", "MadridState", spain))
	alicante := must(c.AddMember("Store", "City", "Alicante", valencia))
	elche := must(c.AddMember("Store", "City", "Elche", valencia))
	madrid := must(c.AddMember("Store", "City", "MadridCity", madridSt))
	s0 := must(c.AddMember("Store", "Store", "s0", alicante))
	s1 := must(c.AddMember("Store", "Store", "s1", alicante))
	s2 := must(c.AddMember("Store", "Store", "s2", elche))
	s3 := must(c.AddMember("Store", "Store", "s3", madrid))
	s4 := must(c.AddMember("Store", "Store", "s4", madrid))

	month := must(c.AddMember("Time", "Month", "2009-06", NoParent))
	d0 := must(c.AddMember("Time", "Day", "2009-06-01", month))
	d1 := must(c.AddMember("Time", "Day", "2009-06-02", month))

	// City populations.
	if err := c.SetMemberAttr("Store", "City", alicante, "population", 330000.0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMemberAttr("Store", "City", elche, "population", 230000.0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMemberAttr("Store", "City", madrid, "population", 3200000.0); err != nil {
		t.Fatal(err)
	}
	// Store geometries near their cities (lon/lat).
	locs := map[int32]geom.Point{
		s0: geom.Pt(-0.48, 38.34), s1: geom.Pt(-0.49, 38.35), s2: geom.Pt(-0.70, 38.27),
		s3: geom.Pt(-3.70, 40.41), s4: geom.Pt(-3.68, 40.42),
	}
	for m, p := range locs {
		if err := c.SetMemberGeometry("Store", "Store", m, p); err != nil {
			t.Fatal(err)
		}
	}

	add := func(store, day int32, units, cost float64) {
		t.Helper()
		if err := c.AddFact("Sales", map[string]int32{"Store": store, "Time": day},
			map[string]float64{"UnitSales": units, "StoreCost": cost}); err != nil {
			t.Fatal(err)
		}
	}
	add(s0, d0, 1, 10)
	add(s1, d0, 2, 20)
	add(s2, d1, 3, 30)
	add(s3, d1, 4, 40)
	add(s4, d0, 5, 50)
	add(s0, d1, 6, 60)
	return c
}

func TestLoadShape(t *testing.T) {
	c := testWarehouse(t)
	dd := c.Dimension("Store")
	if dd == nil || dd.NumLevels() != 4 {
		t.Fatal("Store dimension wrong")
	}
	if got := dd.Level("Store").Len(); got != 5 {
		t.Fatalf("stores = %d", got)
	}
	if got := dd.Level("City").Len(); got != 3 {
		t.Fatalf("cities = %d", got)
	}
	if c.FactData("Sales").Len() != 6 {
		t.Fatal("facts wrong")
	}
	if c.Dimension("Ghost") != nil || c.FactData("Ghost") != nil {
		t.Fatal("unknown lookups must be nil")
	}
	if dd.Level("City").IndexOf("Elche") != 1 {
		t.Fatal("IndexOf wrong")
	}
	if dd.Level("City").IndexOf("Atlantis") != -1 {
		t.Fatal("IndexOf of unknown member")
	}
}

func TestAncestorClimb(t *testing.T) {
	c := testWarehouse(t)
	dd := c.Dimension("Store")
	// s3 (index 3) → MadridCity (2) → MadridState (1) → Spain (0)
	if got := dd.Ancestor(0, 1, 3); got != 2 {
		t.Errorf("store→city = %d", got)
	}
	if got := dd.Ancestor(0, 2, 3); got != 1 {
		t.Errorf("store→state = %d", got)
	}
	if got := dd.Ancestor(0, 3, 3); got != 0 {
		t.Errorf("store→country = %d", got)
	}
	if got := dd.Ancestor(0, 0, 3); got != 3 {
		t.Errorf("identity climb = %d", got)
	}
	if got := dd.Ancestor(0, 1, NoParent); got != NoParent {
		t.Errorf("NoParent climb = %d", got)
	}
}

func TestAddMemberValidation(t *testing.T) {
	c := testWarehouse(t)
	if _, err := c.AddMember("Ghost", "X", "m", NoParent); err == nil {
		t.Error("unknown dimension")
	}
	if _, err := c.AddMember("Store", "Ghost", "m", NoParent); err == nil {
		t.Error("unknown level")
	}
	if _, err := c.AddMember("Store", "Country", "France", 0); err == nil {
		t.Error("top level member with parent")
	}
	if _, err := c.AddMember("Store", "City", "Nowhere", NoParent); err == nil {
		t.Error("non-top member without parent")
	}
	if _, err := c.AddMember("Store", "City", "Nowhere", 99); err == nil {
		t.Error("out-of-range parent")
	}
}

func TestSetMemberAttrValidation(t *testing.T) {
	c := testWarehouse(t)
	if err := c.SetMemberAttr("Store", "City", 0, "ghost", 1); err == nil {
		t.Error("unknown attribute")
	}
	if err := c.SetMemberAttr("Store", "City", 99, "population", 1.0); err == nil {
		t.Error("out-of-range member")
	}
	if err := c.SetMemberAttr("Ghost", "City", 0, "population", 1.0); err == nil {
		t.Error("unknown dimension")
	}
	// Descriptor writes replace the display name and must be strings.
	if err := c.SetMemberAttr("Store", "City", 0, "name", 42); err == nil {
		t.Error("descriptor accepts non-string")
	}
	if err := c.SetMemberAttr("Store", "City", 0, "name", "Alacant"); err != nil {
		t.Fatal(err)
	}
	if got := c.Dimension("Store").Level("City").Name(0); got != "Alacant" {
		t.Errorf("descriptor rename = %q", got)
	}
}

func TestAttrLookup(t *testing.T) {
	c := testWarehouse(t)
	city := c.Dimension("Store").Level("City")
	v, ok := city.Attr("population", 2)
	if !ok || v != 3200000.0 {
		t.Fatalf("population = %v,%v", v, ok)
	}
	// Descriptor readable under its attribute name.
	v, ok = city.Attr("name", 1)
	if !ok || v != "Elche" {
		t.Fatalf("name = %v,%v", v, ok)
	}
	if _, ok := city.Attr("ghost", 0); ok {
		t.Error("unknown attribute lookup should fail")
	}
}

func TestAddFactValidation(t *testing.T) {
	c := testWarehouse(t)
	if err := c.AddFact("Ghost", nil, nil); err == nil {
		t.Error("unknown fact")
	}
	if err := c.AddFact("Sales", map[string]int32{"Store": 0}, nil); err == nil {
		t.Error("missing dimension key")
	}
	if err := c.AddFact("Sales", map[string]int32{"Store": 99, "Time": 0}, nil); err == nil {
		t.Error("out-of-range key")
	}
	if err := c.AddFact("Sales", map[string]int32{"Store": 0, "Time": 0},
		map[string]float64{"Profit": 1}); err == nil {
		t.Error("unknown measure")
	}
	// Missing measures default to zero.
	if err := c.AddFact("Sales", map[string]int32{"Store": 0, "Time": 0}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuerySumByCity(t *testing.T) {
	c := testWarehouse(t)
	res, err := c.Execute(Query{
		Fact:       "Sales",
		GroupBy:    []LevelRef{{"Store", "City"}},
		Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: AggSum}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Alicante: f0(1)+f1(2)+f5(6)=9; Elche: 3; MadridCity: 4+5=9.
	want := map[string]float64{"Alicante": 9, "Elche": 3, "MadridCity": 9}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	for _, r := range res.Rows {
		if want[r.Groups[0]] != r.Values[0] {
			t.Errorf("%s = %v, want %v", r.Groups[0], r.Values[0], want[r.Groups[0]])
		}
	}
	if res.ScannedFacts != 6 || res.MatchedFacts != 6 {
		t.Errorf("scan stats = %d/%d", res.ScannedFacts, res.MatchedFacts)
	}
	// Rows sorted by group name.
	if res.Rows[0].Groups[0] != "Alicante" || res.Rows[2].Groups[0] != "MadridCity" {
		t.Errorf("rows not sorted: %+v", res.Rows)
	}
}

func TestQueryRollUpLevels(t *testing.T) {
	c := testWarehouse(t)
	for _, tc := range []struct {
		level string
		want  map[string]float64
	}{
		{"Store", map[string]float64{"s0": 7, "s1": 2, "s2": 3, "s3": 4, "s4": 5}},
		{"State", map[string]float64{"Valencia": 12, "MadridState": 9}},
		{"Country", map[string]float64{"Spain": 21}},
	} {
		res, err := c.Execute(Query{
			Fact:       "Sales",
			GroupBy:    []LevelRef{{"Store", tc.level}},
			Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: AggSum}},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(tc.want) {
			t.Fatalf("%s: rows = %+v", tc.level, res.Rows)
		}
		for _, r := range res.Rows {
			if tc.want[r.Groups[0]] != r.Values[0] {
				t.Errorf("%s %s = %v, want %v", tc.level, r.Groups[0], r.Values[0], tc.want[r.Groups[0]])
			}
		}
	}
}

func TestQueryMultiGroupAndAggs(t *testing.T) {
	c := testWarehouse(t)
	res, err := c.Execute(Query{
		Fact:    "Sales",
		GroupBy: []LevelRef{{"Store", "State"}, {"Time", "Day"}},
		Aggregates: []MeasureAgg{
			{Measure: "UnitSales", Agg: AggSum},
			{Agg: AggCount},
			{Measure: "StoreCost", Agg: AggAvg},
			{Measure: "UnitSales", Agg: AggMin},
			{Measure: "UnitSales", Agg: AggMax},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Groups: (Valencia,d0): f0,f1 → sum 3, count 2, avg cost 15, min 1, max 2
	//         (Valencia,d1): f2,f5 → sum 9, count 2, avg cost 45, min 3, max 6
	//         (MadridState,d0): f4 → 5,1,50,5,5
	//         (MadridState,d1): f3 → 4,1,40,4,4
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	find := func(state, day string) Row {
		for _, r := range res.Rows {
			if r.Groups[0] == state && r.Groups[1] == day {
				return r
			}
		}
		t.Fatalf("group %s/%s missing", state, day)
		return Row{}
	}
	r := find("Valencia", "2009-06-01")
	if r.Values[0] != 3 || r.Values[1] != 2 || r.Values[2] != 15 || r.Values[3] != 1 || r.Values[4] != 2 {
		t.Errorf("Valencia/d0 = %v", r.Values)
	}
	r = find("Valencia", "2009-06-02")
	if r.Values[0] != 9 || r.Values[2] != 45 {
		t.Errorf("Valencia/d1 = %v", r.Values)
	}
	r = find("MadridState", "2009-06-01")
	if r.Values[0] != 5 || r.Values[1] != 1 {
		t.Errorf("Madrid/d0 = %v", r.Values)
	}
}

func TestQueryGrandTotal(t *testing.T) {
	c := testWarehouse(t)
	res, err := c.Execute(Query{
		Fact:       "Sales",
		Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: AggSum}, {Agg: AggCount}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values[0] != 21 || res.Rows[0].Values[1] != 6 {
		t.Fatalf("grand total = %+v", res.Rows)
	}
}

func TestQueryFilters(t *testing.T) {
	c := testWarehouse(t)
	// Cities with population > 300k: Alicante, MadridCity.
	res, err := c.Execute(Query{
		Fact:       "Sales",
		GroupBy:    []LevelRef{{"Store", "City"}},
		Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: AggSum}},
		Filters: []AttrFilter{{
			LevelRef: LevelRef{"Store", "City"}, Attr: "population",
			Op: OpGt, Value: 300000.0,
		}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if res.MatchedFacts != 5 {
		t.Errorf("matched = %d, want 5", res.MatchedFacts)
	}
	// String equality on descriptor.
	res, err = c.Execute(Query{
		Fact:       "Sales",
		Aggregates: []MeasureAgg{{Agg: AggCount}},
		Filters: []AttrFilter{{
			LevelRef: LevelRef{"Store", "State"}, Attr: "name", Op: OpEq, Value: "Valencia",
		}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Values[0] != 4 {
		t.Errorf("Valencia count = %v", res.Rows[0].Values[0])
	}
	// Ne operator.
	res, _ = c.Execute(Query{
		Fact:       "Sales",
		Aggregates: []MeasureAgg{{Agg: AggCount}},
		Filters: []AttrFilter{{
			LevelRef: LevelRef{"Store", "State"}, Attr: "name", Op: OpNe, Value: "Valencia",
		}},
	}, nil)
	if res.Rows[0].Values[0] != 2 {
		t.Errorf("non-Valencia count = %v", res.Rows[0].Values[0])
	}
}

func TestQueryValidation(t *testing.T) {
	c := testWarehouse(t)
	cases := []Query{
		{Fact: "Ghost", Aggregates: []MeasureAgg{{Agg: AggCount}}},
		{Fact: "Sales"}, // no aggregates
		{Fact: "Sales", Aggregates: []MeasureAgg{{Measure: "Ghost", Agg: AggSum}}},
		{Fact: "Sales", Aggregates: []MeasureAgg{{Agg: Agg(99)}}},
		{Fact: "Sales", GroupBy: []LevelRef{{"Ghost", "X"}}, Aggregates: []MeasureAgg{{Agg: AggCount}}},
		{Fact: "Sales", GroupBy: []LevelRef{{"Store", "Ghost"}}, Aggregates: []MeasureAgg{{Agg: AggCount}}},
		{Fact: "Sales", Aggregates: []MeasureAgg{{Agg: AggCount}},
			Filters: []AttrFilter{{LevelRef: LevelRef{"Ghost", "X"}, Attr: "a", Op: OpEq, Value: 1}}},
		{Fact: "Sales", Aggregates: []MeasureAgg{{Agg: AggCount}},
			Filters: []AttrFilter{{LevelRef: LevelRef{"Store", "Ghost"}, Attr: "a", Op: OpEq, Value: 1}}},
		{Fact: "Sales", Aggregates: []MeasureAgg{{Agg: AggCount}},
			Filters: []AttrFilter{{LevelRef: LevelRef{"Store", "City"}, Attr: "ghost", Op: OpEq, Value: 1}}},
	}
	for i, q := range cases {
		if _, err := c.Execute(q, nil); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestViewSelection(t *testing.T) {
	c := testWarehouse(t)
	v := NewView(c)
	if v.Restricted() {
		t.Fatal("fresh view must be unrestricted")
	}
	if !v.FactVisible("Sales", 3) || !v.MemberVisible("Store", "City", 2) {
		t.Fatal("unrestricted view must show everything")
	}
	// Select the two Alicante stores (s0=0, s1=1).
	if err := v.SelectMember("Store", "Store", 0); err != nil {
		t.Fatal(err)
	}
	if err := v.SelectMember("Store", "Store", 1); err != nil {
		t.Fatal(err)
	}
	if !v.Restricted() {
		t.Fatal("view should be restricted")
	}
	res, err := c.Execute(Query{
		Fact:       "Sales",
		GroupBy:    []LevelRef{{"Store", "City"}},
		Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: AggSum}},
	}, v)
	if err != nil {
		t.Fatal(err)
	}
	// Only f0, f1, f5 (stores s0,s1) remain: Alicante 9.
	if len(res.Rows) != 1 || res.Rows[0].Groups[0] != "Alicante" || res.Rows[0].Values[0] != 9 {
		t.Fatalf("personalized rows = %+v", res.Rows)
	}
	if res.MatchedFacts != 3 {
		t.Errorf("matched = %d", res.MatchedFacts)
	}
	if got := v.VisibleFactCount("Sales"); got != 3 {
		t.Errorf("VisibleFactCount = %d", got)
	}
}

func TestViewLevelMaskAtCoarserLevel(t *testing.T) {
	c := testWarehouse(t)
	v := NewView(c)
	// Select the City "MadridCity" (index 2): only s3,s4 facts remain.
	if err := v.SelectMember("Store", "City", 2); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(Query{
		Fact:       "Sales",
		Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: AggSum}},
	}, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Values[0] != 9 {
		t.Fatalf("Madrid-only sum = %v", res.Rows[0].Values[0])
	}
}

func TestViewFactMask(t *testing.T) {
	c := testWarehouse(t)
	v := NewView(c)
	if err := v.SelectFact("Sales", 0); err != nil {
		t.Fatal(err)
	}
	if err := v.SelectFact("Sales", 5); err != nil {
		t.Fatal(err)
	}
	if got := v.VisibleFactCount("Sales"); got != 2 {
		t.Fatalf("visible = %d", got)
	}
	// Combined with a level mask: intersection semantics.
	if err := v.SelectMember("Store", "Store", 1); err != nil { // s1 only
		t.Fatal(err)
	}
	if got := v.VisibleFactCount("Sales"); got != 0 {
		t.Fatalf("intersected visible = %d", got)
	}
}

func TestViewValidationAndClone(t *testing.T) {
	c := testWarehouse(t)
	v := NewView(c)
	if err := v.SelectMember("Ghost", "X", 0); err == nil {
		t.Error("unknown dimension")
	}
	if err := v.SelectMember("Store", "Ghost", 0); err == nil {
		t.Error("unknown level")
	}
	if err := v.SelectMember("Store", "Store", 99); err == nil {
		t.Error("out-of-range member")
	}
	if err := v.SelectFact("Ghost", 0); err == nil {
		t.Error("unknown fact")
	}
	if err := v.SelectFact("Sales", 99); err == nil {
		t.Error("out-of-range fact")
	}
	_ = v.SelectMember("Store", "Store", 0)
	cl := v.Clone()
	_ = cl.SelectMember("Store", "Store", 1)
	if v.MemberVisible("Store", "Store", 1) {
		t.Error("clone selection leaked into source")
	}
	if !cl.MemberVisible("Store", "Store", 0) {
		t.Error("clone lost source selection")
	}
	if v.FactVisible("Ghost", 0) {
		t.Error("unknown fact never visible")
	}
}

func TestLayerCatalog(t *testing.T) {
	c := testWarehouse(t)
	ld, err := c.RegisterLayer("Airport", geom.TypePoint)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterLayer("Airport", geom.TypePoint); err == nil {
		t.Error("duplicate layer")
	}
	if _, err := c.RegisterLayer("", geom.TypePoint); err == nil {
		t.Error("empty layer name")
	}
	if _, err := c.AddLayerObject("Airport", "ALC", geom.Pt(-0.56, 38.28)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddLayerObject("Airport", "MAD", geom.Pt(-3.57, 40.49)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddLayerObject("Airport", "bad", geom.Ln(geom.Pt(0, 0), geom.Pt(1, 1))); err == nil {
		t.Error("type mismatch object")
	}
	if _, err := c.AddLayerObject("Ghost", "x", geom.Pt(0, 0)); err == nil {
		t.Error("unknown layer")
	}
	if ld.Len() != 2 || ld.Name(0) != "ALC" || ld.Type() != geom.TypePoint {
		t.Fatalf("layer data wrong: %+v", ld)
	}
	if c.Layer("Airport") != ld {
		t.Error("Layer lookup")
	}
	if len(c.Layers()) != 1 {
		t.Error("Layers list")
	}
}

func TestMembersWithinKm(t *testing.T) {
	c := testWarehouse(t)
	// Stores near Alicante city centre (s0, s1 within ~5 km; s2 ~25 km).
	var got []int32
	err := c.MembersWithinKm("Store", "Store", geom.Pt(-0.48, 38.34), 5,
		func(m int32) bool { got = append(got, m); return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("stores within 5km = %v", got)
	}
	// Wider radius captures Elche too.
	got = nil
	_ = c.MembersWithinKm("Store", "Store", geom.Pt(-0.48, 38.34), 40,
		func(m int32) bool { got = append(got, m); return true })
	if len(got) != 3 {
		t.Fatalf("stores within 40km = %v", got)
	}
	// Level without geometry errors.
	if err := c.MembersWithinKm("Store", "City", geom.Pt(0, 0), 5, nil); err == nil ||
		!strings.Contains(err.Error(), "no geometry") {
		t.Errorf("no-geometry error: %v", err)
	}
	if err := c.MembersWithinKm("Ghost", "X", geom.Pt(0, 0), 5, nil); err == nil {
		t.Error("unknown level")
	}
}

func TestLayerObjectsWithinKmAndNearest(t *testing.T) {
	c := testWarehouse(t)
	_, _ = c.RegisterLayer("Airport", geom.TypePoint)
	_, _ = c.AddLayerObject("Airport", "ALC", geom.Pt(-0.56, 38.28))
	_, _ = c.AddLayerObject("Airport", "MAD", geom.Pt(-3.57, 40.49))

	var got []int32
	err := c.LayerObjectsWithinKm("Airport", geom.Pt(-0.48, 38.34), 15,
		func(o int32) bool { got = append(got, o); return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("airports near Alicante = %v", got)
	}
	if err := c.LayerObjectsWithinKm("Ghost", geom.Pt(0, 0), 1, nil); err == nil {
		t.Error("unknown layer")
	}

	idx, d, err := c.NearestLayerObjectKm("Airport", geom.Pt(-3.70, 40.41))
	if err != nil || idx != 1 {
		t.Fatalf("nearest = %d, %v", idx, err)
	}
	if d <= 0 || d > 20 {
		t.Fatalf("nearest distance = %v", d)
	}
	if _, _, err := c.NearestLayerObjectKm("Ghost", geom.Pt(0, 0)); err == nil {
		t.Error("unknown layer nearest")
	}
	// Empty layer yields -1.
	_, _ = c.RegisterLayer("Empty", geom.TypePoint)
	idx, _, err = c.NearestLayerObjectKm("Empty", geom.Pt(0, 0))
	if err != nil || idx != -1 {
		t.Fatalf("empty layer nearest = %d, %v", idx, err)
	}
}

func TestAggStringAndParse(t *testing.T) {
	for a, s := range map[Agg]string{AggSum: "SUM", AggCount: "COUNT", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX"} {
		if a.String() != s {
			t.Errorf("%v.String() = %q", a, a.String())
		}
		back, err := ParseAgg(strings.ToLower(s))
		if err != nil || back != a {
			t.Errorf("ParseAgg(%q) = %v, %v", s, back, err)
		}
	}
	if Agg(99).String() != "?" {
		t.Error("invalid Agg string")
	}
	if _, err := ParseAgg("MEDIAN"); err == nil {
		t.Error("unknown agg should error")
	}
}

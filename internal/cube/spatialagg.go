package cube

import (
	"fmt"
	"sort"

	"sdwp/internal/geom"
)

// This file adds spatial aggregation over member geometries — the SOLAP
// counterpart of the paper's related work on aggregation functions for
// spatial measures (da Silva et al., DOLAP 2008): summarize the geometries
// of one level's members per group at a coarser level.

// SpatialSummaryRow is one group of a spatial summary.
type SpatialSummaryRow struct {
	// Group is the grouping member's descriptor (e.g. the city name).
	Group string
	// Count is the number of members with geometry in the group.
	Count int
	// Centroid is the mean coordinate of the members' representative
	// points.
	Centroid geom.Point
	// Bounds is the group's minimum bounding rectangle.
	Bounds geom.Rect
	// Hull is the convex hull of the members' vertices: a polygon, or a
	// degenerate line/point for small groups.
	Hull geom.Geometry
}

// SpatialSummary aggregates the geometries of dim.level's members grouped
// by their ancestor at dim.groupLevel, honouring the view's member mask for
// dim.level (nil view = all members). Members without geometry are skipped.
func (c *Cube) SpatialSummary(dim, level, groupLevel string, v *View) ([]SpatialSummaryRow, error) {
	dd := c.dims[dim]
	if dd == nil {
		return nil, fmt.Errorf("cube: unknown dimension %q", dim)
	}
	from := dd.LevelIndex(level)
	to := dd.LevelIndex(groupLevel)
	if from < 0 {
		return nil, fmt.Errorf("cube: dimension %q has no level %q", dim, level)
	}
	if to < 0 {
		return nil, fmt.Errorf("cube: dimension %q has no level %q", dim, groupLevel)
	}
	if to < from {
		return nil, fmt.Errorf("cube: group level %q must be coarser than %q", groupLevel, level)
	}
	ld := dd.levels[from]
	if ld.geoms == nil {
		return nil, fmt.Errorf("cube: level %s.%s has no geometry", dim, level)
	}
	groupLd := dd.levels[to]

	type acc struct {
		count int
		sumX  float64
		sumY  float64
		rect  geom.Rect
		parts []geom.Geometry
	}
	accs := map[int32]*acc{}
	for i := int32(0); int(i) < ld.Len(); i++ {
		g := ld.geoms[i]
		if g == nil {
			continue
		}
		if v != nil && !v.MemberVisible(dim, level, i) {
			continue
		}
		anc := dd.Ancestor(from, to, i)
		if anc == NoParent {
			continue
		}
		a := accs[anc]
		if a == nil {
			a = &acc{rect: geom.EmptyRect()}
			accs[anc] = a
		}
		a.count++
		center := g.Bounds().Center()
		a.sumX += center.X
		a.sumY += center.Y
		a.rect = a.rect.ExtendRect(g.Bounds())
		a.parts = append(a.parts, g)
	}

	out := make([]SpatialSummaryRow, 0, len(accs))
	for anc, a := range accs {
		out = append(out, SpatialSummaryRow{
			Group:    groupLd.Name(anc),
			Count:    a.count,
			Centroid: geom.Pt(a.sumX/float64(a.count), a.sumY/float64(a.count)),
			Bounds:   a.rect,
			Hull:     geom.ConvexHull(geom.Collection{Geoms: a.parts}),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out, nil
}

// Package cube is the spatial OLAP storage and query engine underneath the
// personalization layer — the substrate the paper assumes ("any BI tool")
// but which this reproduction builds from scratch.
//
// Storage is columnar: each dimension level keeps parallel arrays of member
// descriptors, attribute columns, parent pointers into the next coarser
// level, and (for spatial levels) geometries. Facts keep one int32 key
// column per dimension (referencing the finest level) plus one float64
// column per measure. Thematic layers (external geographic data, paper
// Fig. 6) keep named geometry objects with an R-tree over point layers.
//
// Queries aggregate measures grouped by arbitrary hierarchy levels, under
// attribute filters and under the selection masks produced by the paper's
// SelectInstance personalization action (package core builds those masks).
package cube

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"sdwp/internal/geoidx"
	"sdwp/internal/geom"
	"sdwp/internal/geomd"
	"sdwp/internal/mdmodel"
)

// NoParent marks a member of the coarsest level (or an unset parent).
const NoParent int32 = -1

// LevelData stores the members of one hierarchy level.
type LevelData struct {
	level   *mdmodel.Level
	names   []string         // descriptor column (display names)
	attrs   map[string][]any // other attribute columns
	parents []int32          // index into the next coarser level
	geoms   []geom.Geometry  // nil until the level becomes spatial

	byName  map[string]int32   // descriptor → member index (first wins)
	ptIndex *geoidx.PointIndex // lazy spatial index over point geometries
}

// Len returns the member count.
func (ld *LevelData) Len() int { return len(ld.names) }

// Name returns the descriptor of member i.
func (ld *LevelData) Name(i int32) string { return ld.names[i] }

// Parent returns the parent member index (NoParent at the top level).
func (ld *LevelData) Parent(i int32) int32 {
	if int(i) >= len(ld.parents) {
		return NoParent
	}
	return ld.parents[i]
}

// Geometry returns member i's geometry (nil if not spatial or unset).
func (ld *LevelData) Geometry(i int32) geom.Geometry {
	if ld.geoms == nil || int(i) >= len(ld.geoms) {
		return nil
	}
	return ld.geoms[i]
}

// Attr returns the named attribute of member i (the descriptor is exposed
// under its declared attribute name too).
func (ld *LevelData) Attr(name string, i int32) (any, bool) {
	for _, a := range ld.level.Attributes {
		if a.Name == name && a.Kind == mdmodel.KindDescriptor {
			return ld.names[i], true
		}
	}
	col, ok := ld.attrs[name]
	if !ok || int(i) >= len(col) {
		return nil, false
	}
	return col[i], true
}

// IndexOf returns the member index with the given descriptor, or -1.
func (ld *LevelData) IndexOf(name string) int32 {
	if i, ok := ld.byName[name]; ok {
		return i
	}
	return -1
}

// DimData stores one dimension's level tables, finest first.
type DimData struct {
	dim    *mdmodel.Dimension
	levels []*LevelData

	// ancMu guards ancCache: per target level, the ancestor of every
	// finest-level member (computed lazily; queries then resolve roll-ups
	// with one array lookup instead of climbing the parent chain per fact).
	ancMu    sync.Mutex
	ancCache map[int][]int32
}

// Level returns the level table by name, or nil.
func (dd *DimData) Level(name string) *LevelData {
	i := dd.dim.LevelIndex(name)
	if i < 0 {
		return nil
	}
	return dd.levels[i]
}

// LevelAt returns the level table by hierarchy position.
func (dd *DimData) LevelAt(i int) *LevelData { return dd.levels[i] }

// LevelName returns the name of the level at hierarchy position i.
func (dd *DimData) LevelName(i int) string { return dd.dim.Levels[i].Name }

// LevelIndex returns the hierarchy position of the named level, or -1.
func (dd *DimData) LevelIndex(name string) int { return dd.dim.LevelIndex(name) }

// NumLevels returns the hierarchy depth.
func (dd *DimData) NumLevels() int { return len(dd.levels) }

// Ancestor climbs from a member of the level at position from to its
// ancestor at position to (from ≤ to). Returns NoParent if any link is
// missing.
func (dd *DimData) Ancestor(from, to int, member int32) int32 {
	cur := member
	for l := from; l < to; l++ {
		if cur == NoParent {
			return NoParent
		}
		cur = dd.levels[l].Parent(cur)
	}
	return cur
}

// ancestorsFromFinest returns (building on first use) the ancestor at level
// position to for every member of the finest level.
func (dd *DimData) ancestorsFromFinest(to int) []int32 {
	dd.ancMu.Lock()
	defer dd.ancMu.Unlock()
	if cached, ok := dd.ancCache[to]; ok {
		return cached
	}
	finest := dd.levels[0]
	out := make([]int32, finest.Len())
	for i := range out {
		out[i] = dd.Ancestor(0, to, int32(i))
	}
	if dd.ancCache == nil {
		dd.ancCache = map[int][]int32{}
	}
	dd.ancCache[to] = out
	return out
}

// invalidateAncestors drops the roll-up cache after membership changes.
func (dd *DimData) invalidateAncestors() {
	dd.ancMu.Lock()
	dd.ancCache = nil
	dd.ancMu.Unlock()
}

// FactData stores one fact table.
type FactData struct {
	fact     *mdmodel.Fact
	n        int
	dimKeys  map[string][]int32
	measures map[string][]float64

	// packed mirrors dimKeys in bit-packed form (packed.go): one
	// dictionary-coded column per dimension at ceil(log2(cardinality))
	// bits per key, maintained incrementally by AddFact alongside the
	// unpacked column. The unpacked column stays authoritative — it is
	// what snapshots serialize and what the oracle path scans — while
	// compiled plans snapshot packed views for the word-at-a-time
	// predicate kernels when packed execution is on.
	packed map[string]*packedColumn

	// version counts mutations that can change what a scan over this table
	// computes: AddFact appends, and member/attribute mutations on any
	// dimension the warehouse shares (those move roll-up ancestors and
	// filter attribute values). It is the invalidation key of the
	// cross-batch ArtifactCache — a cached filter bitmap or key column is
	// only served while the version it was built under is still current.
	version atomic.Uint64

	// colPool and maskPool recycle the batch executor's scan-scoped
	// artifacts (roll-up key columns and filter/visibility bitmaps, all
	// sized to n) so high-rate coalesced batches do not churn the GC; see
	// exec_shared.go. Entries of a stale size (n grew via AddFact) are
	// discarded on Get.
	colPool  sync.Pool
	maskPool sync.Pool

	// partialPool recycles per-worker partial aggregation tables (and the
	// accumulator arenas behind them) across queries and batches; see
	// FactData.getPartial in exec.go. A partial is rebound (fully reset) to
	// its new plan on Get, so pooled entries may carry arbitrary state from
	// any earlier query over this table.
	partialPool sync.Pool
}

// Version returns the table's mutation counter (see the field comment).
func (fd *FactData) Version() uint64 { return fd.version.Load() }

// Len returns the number of fact instances.
func (fd *FactData) Len() int { return fd.n }

// Measure returns the named measure of fact instance i and whether the
// measure exists.
func (fd *FactData) Measure(name string, i int32) (float64, bool) {
	col, ok := fd.measures[name]
	if !ok || int(i) >= len(col) {
		return 0, ok && false
	}
	return col[i], true
}

// DimKey returns fact instance i's member index into the named dimension's
// finest level and whether the fact uses that dimension.
func (fd *FactData) DimKey(dim string, i int32) (int32, bool) {
	col, ok := fd.dimKeys[dim]
	if !ok || int(i) >= len(col) {
		return NoParent, false
	}
	return col[i], true
}

// LayerData stores the objects of one thematic layer.
type LayerData struct {
	layer   geomd.Layer
	names   []string
	geoms   []geom.Geometry
	ptIndex *geoidx.PointIndex
}

// Len returns the object count.
func (ld *LayerData) Len() int { return len(ld.names) }

// Name returns object i's name.
func (ld *LayerData) Name(i int32) string { return ld.names[i] }

// Geometry returns object i's geometry.
func (ld *LayerData) Geometry(i int32) geom.Geometry { return ld.geoms[i] }

// Type returns the layer's declared geometry type.
func (ld *LayerData) Type() geom.Type { return ld.layer.Geom }

// Cube is the warehouse instance store for one GeoMD schema. The schema
// held here is the designer's base model; per-session personalized schemas
// are clones that reference the same instance data.
type Cube struct {
	schema *geomd.Schema
	dims   map[string]*DimData
	facts  map[string]*FactData
	layers map[string]*LayerData // the geographic catalog: all loadable layers

	// shardParent is non-nil on a cube created by NewFactShard: the cube
	// whose dimension and layer data this shard shares. Rebind uses it to
	// verify a compiled plan and its rebinding target describe the same
	// warehouse metadata.
	shardParent *Cube
	// shardMu guards shardKids: the shards derived from this cube.
	// Member/attribute mutations on the parent must bump every shard's
	// fact-table versions too — shard scans validate cross-batch artifacts
	// against their own FactData's version, and shards share the parent's
	// member data by reference.
	shardMu   sync.Mutex
	shardKids []*Cube

	// packedExec gates compressed-column execution at plan compile:
	// when set, plans bind packed key-column views, translate predicates
	// to code sets and select specialized stage-3 kernels; when clear,
	// compile produces exactly the classic scalar plan — the unpacked
	// oracle every equivalence harness compares against. Defaults from
	// the SDWP_PACKED_COLUMNS env var (true when unset); shards inherit
	// the parent's setting at derivation.
	packedExec atomic.Bool
}

// New creates an empty cube for the schema.
func New(s *geomd.Schema) *Cube {
	c := &Cube{
		schema: s,
		dims:   map[string]*DimData{},
		facts:  map[string]*FactData{},
		layers: map[string]*LayerData{},
	}
	for _, d := range s.MD.Dimensions {
		dd := &DimData{dim: d}
		for _, l := range d.Levels {
			dd.levels = append(dd.levels, &LevelData{
				level:  l,
				attrs:  map[string][]any{},
				byName: map[string]int32{},
			})
		}
		c.dims[d.Name] = dd
	}
	for _, f := range s.MD.Facts {
		fd := &FactData{fact: f, dimKeys: map[string][]int32{},
			measures: map[string][]float64{}, packed: map[string]*packedColumn{}}
		for _, dn := range f.Dimensions {
			fd.dimKeys[dn] = nil
			fd.packed[dn] = &packedColumn{}
		}
		for _, m := range f.Measures {
			fd.measures[m.Name] = nil
		}
		c.facts[f.Name] = fd
	}
	c.packedExec.Store(packedColumnsDefault())
	return c
}

// packedColumnsDefault reads the process-wide default for packed
// execution: the SDWP_PACKED_COLUMNS env var parsed as a bool, true when
// unset or unparsable. The env override exists so whole test binaries
// (the CI oracle matrix cell) can exercise the scalar path without
// threading a knob through every constructor.
func packedColumnsDefault() bool {
	if v := os.Getenv("SDWP_PACKED_COLUMNS"); v != "" {
		if b, err := strconv.ParseBool(v); err == nil {
			return b
		}
	}
	return true
}

// SetPackedColumns toggles compressed-column execution for plans compiled
// after the call (in-flight plans keep whatever they bound — a plan is
// immutable once compiled either way). Shards already derived from this
// cube follow the new setting too.
func (c *Cube) SetPackedColumns(on bool) {
	c.packedExec.Store(on)
	c.shardMu.Lock()
	kids := append([]*Cube(nil), c.shardKids...)
	c.shardMu.Unlock()
	for _, kid := range kids {
		kid.packedExec.Store(on)
	}
}

// PackedColumns reports whether compressed-column execution is on.
func (c *Cube) PackedColumns() bool { return c.packedExec.Load() }

// Schema returns the cube's base GeoMD schema.
func (c *Cube) Schema() *geomd.Schema { return c.schema }

// NewFactShard derives a shard cube: it shares this cube's schema,
// dimension tables and layer catalog by reference but starts with empty
// fact tables of its own. The shard subsystem (internal/shard) uses it to
// hash-partition one logical fact table into independent scan units — each
// shard has its own fact columns, bitset pools and table version, so
// ingest into one shard never contends with scans over another, while
// roll-up caches and member attributes stay shared (dimension data is
// identical across shards by construction).
//
// Member and attribute loading must be complete before shards are derived:
// shards share the parent's live LevelData/DimData, so later member
// mutations affect all shards at once and must not race in-flight scans
// (the same discipline CompiledQuery already documents).
func (c *Cube) NewFactShard() *Cube {
	parent := c
	if c.shardParent != nil {
		parent = c.shardParent
	}
	s := &Cube{
		schema:      c.schema,
		dims:        c.dims,
		facts:       map[string]*FactData{},
		layers:      c.layers,
		shardParent: parent,
	}
	for _, f := range c.schema.MD.Facts {
		fd := &FactData{fact: f, dimKeys: map[string][]int32{},
			measures: map[string][]float64{}, packed: map[string]*packedColumn{}}
		for _, dn := range f.Dimensions {
			fd.dimKeys[dn] = nil
			fd.packed[dn] = &packedColumn{}
		}
		for _, m := range f.Measures {
			fd.measures[m.Name] = nil
		}
		s.facts[f.Name] = fd
	}
	s.packedExec.Store(c.packedExec.Load())
	parent.shardMu.Lock()
	parent.shardKids = append(parent.shardKids, s)
	parent.shardMu.Unlock()
	return s
}

// bumpFactVersions invalidates every fact table's artifact-cache version
// after a member or attribute mutation (roll-up ancestors and filter
// attribute columns feed every table's scans). Shards share the mutated
// member data by reference and validate artifacts against their own
// FactData versions, so the bump fans out across the whole shard family —
// whichever family member the mutation came in through.
func (c *Cube) bumpFactVersions() {
	root := c
	if c.shardParent != nil {
		root = c.shardParent
	}
	for _, fd := range root.facts {
		fd.version.Add(1)
	}
	root.shardMu.Lock()
	kids := append([]*Cube(nil), root.shardKids...)
	root.shardMu.Unlock()
	for _, kid := range kids {
		for _, fd := range kid.facts {
			fd.version.Add(1)
		}
	}
}

// Dimension returns a dimension's data, or nil.
func (c *Cube) Dimension(name string) *DimData { return c.dims[name] }

// Fact returns a fact's data, or nil.
func (c *Cube) FactData(name string) *FactData { return c.facts[name] }

// Layer returns a catalog layer's data, or nil.
func (c *Cube) Layer(name string) *LayerData { return c.layers[name] }

// AddMember appends a member to a level. parent indexes the next coarser
// level (NoParent at the coarsest level). Members must therefore be loaded
// coarse-to-fine. Returns the new member's index.
func (c *Cube) AddMember(dim, level, descriptor string, parent int32) (int32, error) {
	dd := c.dims[dim]
	if dd == nil {
		return 0, fmt.Errorf("cube: unknown dimension %q", dim)
	}
	li := dd.dim.LevelIndex(level)
	if li < 0 {
		return 0, fmt.Errorf("cube: dimension %q has no level %q", dim, level)
	}
	ld := dd.levels[li]
	if li == dd.NumLevels()-1 {
		if parent != NoParent {
			return 0, fmt.Errorf("cube: member of top level %s.%s cannot have a parent", dim, level)
		}
	} else {
		up := dd.levels[li+1]
		if parent == NoParent || int(parent) >= up.Len() {
			return 0, fmt.Errorf("cube: member %q of %s.%s has invalid parent %d (next level has %d members)",
				descriptor, dim, level, parent, up.Len())
		}
	}
	dd.invalidateAncestors()
	c.bumpFactVersions()
	idx := int32(ld.Len())
	ld.names = append(ld.names, descriptor)
	ld.parents = append(ld.parents, parent)
	if ld.geoms != nil {
		ld.geoms = append(ld.geoms, nil)
	}
	for k := range ld.attrs {
		ld.attrs[k] = append(ld.attrs[k], nil)
	}
	if _, dup := ld.byName[descriptor]; !dup {
		ld.byName[descriptor] = idx
	}
	return idx, nil
}

// SetMemberAttr sets a declared attribute value on a member.
func (c *Cube) SetMemberAttr(dim, level string, member int32, attr string, v any) error {
	ld, err := c.levelData(dim, level)
	if err != nil {
		return err
	}
	a := ld.level.Attribute(attr)
	if a == nil {
		return fmt.Errorf("cube: level %s.%s has no attribute %q", dim, level, attr)
	}
	if int(member) >= ld.Len() {
		return fmt.Errorf("cube: member %d out of range for %s.%s", member, dim, level)
	}
	c.bumpFactVersions()
	if a.Kind == mdmodel.KindDescriptor {
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("cube: descriptor %q wants string", attr)
		}
		ld.names[member] = s
		return nil
	}
	col := ld.attrs[attr]
	if col == nil {
		col = make([]any, ld.Len())
	}
	for len(col) < ld.Len() {
		col = append(col, nil)
	}
	col[member] = v
	ld.attrs[attr] = col
	return nil
}

// SetMemberGeometry attaches a geometry to a member. The level need not be
// spatial in the base schema — BecomeSpatial may promote it later; data can
// be staged eagerly (the usual deployment loads geometry for candidate
// levels and lets rules decide which users see it).
func (c *Cube) SetMemberGeometry(dim, level string, member int32, g geom.Geometry) error {
	ld, err := c.levelData(dim, level)
	if err != nil {
		return err
	}
	if int(member) >= ld.Len() {
		return fmt.Errorf("cube: member %d out of range for %s.%s", member, dim, level)
	}
	if ld.geoms == nil {
		ld.geoms = make([]geom.Geometry, ld.Len())
	}
	for len(ld.geoms) < ld.Len() {
		ld.geoms = append(ld.geoms, nil)
	}
	ld.geoms[member] = g
	ld.ptIndex = nil // invalidate lazy index
	return nil
}

func (c *Cube) levelData(dim, level string) (*LevelData, error) {
	dd := c.dims[dim]
	if dd == nil {
		return nil, fmt.Errorf("cube: unknown dimension %q", dim)
	}
	ld := dd.Level(level)
	if ld == nil {
		return nil, fmt.Errorf("cube: dimension %q has no level %q", dim, level)
	}
	return ld, nil
}

// AddFact appends a fact instance. keys maps every fact dimension to a
// member index of that dimension's finest level; measures maps measure
// names to values (missing measures default to 0).
func (c *Cube) AddFact(fact string, keys map[string]int32, measures map[string]float64) error {
	fd := c.facts[fact]
	if fd == nil {
		return fmt.Errorf("cube: unknown fact %q", fact)
	}
	for _, dn := range fd.fact.Dimensions {
		k, ok := keys[dn]
		if !ok {
			return fmt.Errorf("cube: fact %q instance missing key for dimension %q", fact, dn)
		}
		finest := c.dims[dn].levels[0]
		if k < 0 || int(k) >= finest.Len() {
			return fmt.Errorf("cube: fact %q key %d out of range for %s (%d members)",
				fact, k, dn, finest.Len())
		}
	}
	for mn := range measures {
		if fd.fact.Measure(mn) == nil {
			return fmt.Errorf("cube: fact %q has no measure %q", fact, mn)
		}
	}
	for _, dn := range fd.fact.Dimensions {
		fd.dimKeys[dn] = append(fd.dimKeys[dn], keys[dn])
		fd.packed[dn].append(keys[dn])
	}
	for _, m := range fd.fact.Measures {
		fd.measures[m.Name] = append(fd.measures[m.Name], measures[m.Name])
	}
	fd.n++
	fd.version.Add(1)
	return nil
}

// RegisterLayer declares a layer in the geographic catalog (the pool of
// external spatial data AddLayer rules may pull in) and returns its data
// holder for object loading.
func (c *Cube) RegisterLayer(name string, t geom.Type) (*LayerData, error) {
	if name == "" {
		return nil, fmt.Errorf("cube: empty layer name")
	}
	if _, ok := c.layers[name]; ok {
		return nil, fmt.Errorf("cube: layer %q already registered", name)
	}
	ld := &LayerData{layer: geomd.Layer{Name: name, Geom: t}}
	c.layers[name] = ld
	return ld, nil
}

// AddLayerObject appends a named geometry to a catalog layer; the geometry
// type must match the layer declaration.
func (c *Cube) AddLayerObject(layer, name string, g geom.Geometry) (int32, error) {
	ld := c.layers[layer]
	if ld == nil {
		return 0, fmt.Errorf("cube: unknown layer %q", layer)
	}
	if g == nil || g.Type() != ld.layer.Geom {
		return 0, fmt.Errorf("cube: layer %q wants %s objects", layer, ld.layer.Geom)
	}
	idx := int32(ld.Len())
	ld.names = append(ld.names, name)
	ld.geoms = append(ld.geoms, g)
	ld.ptIndex = nil
	return idx, nil
}

// Layers returns the catalog layer names (unordered).
func (c *Cube) Layers() []string {
	out := make([]string, 0, len(c.layers))
	for n := range c.layers {
		out = append(out, n)
	}
	return out
}

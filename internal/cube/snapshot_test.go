package cube

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sdwp/internal/geom"
)

func TestSnapshotRoundTrip(t *testing.T) {
	c := testWarehouse(t)
	_, _ = c.RegisterLayer("Airport", geom.TypePoint)
	_, _ = c.AddLayerObject("Airport", "ALC", geom.Pt(-0.56, 38.28))

	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Structure survives.
	if back.Dimension("Store").Level("Store").Len() != 5 {
		t.Error("stores lost")
	}
	if back.FactData("Sales").Len() != c.FactData("Sales").Len() {
		t.Error("facts lost")
	}
	if l := back.Layer("Airport"); l == nil || l.Len() != 1 || l.Name(0) != "ALC" {
		t.Error("layer lost")
	}
	// Attributes and geometry survive.
	if v, ok := back.Dimension("Store").Level("City").Attr("population", 2); !ok || v != 3200000.0 {
		t.Errorf("population = %v, %v", v, ok)
	}
	g := back.Dimension("Store").Level("Store").Geometry(0)
	if g == nil || g.Type() != geom.TypePoint {
		t.Error("geometry lost")
	}

	// Queries agree between original and restored cubes.
	q := Query{
		Fact:       "Sales",
		GroupBy:    []LevelRef{{"Store", "City"}},
		Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: AggSum}, {Agg: AggCount}},
	}
	want, err := c.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		if want.Rows[i].Groups[0] != got.Rows[i].Groups[0] ||
			want.Rows[i].Values[0] != got.Rows[i].Values[0] ||
			want.Rows[i].Values[1] != got.Rows[i].Values[1] {
			t.Fatalf("row %d differs: %+v vs %+v", i, want.Rows[i], got.Rows[i])
		}
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	c := testWarehouse(t)
	base, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(s *Snapshot)) error {
		var s Snapshot
		if err := json.Unmarshal(base, &s); err != nil {
			t.Fatal(err)
		}
		mutate(&s)
		_, err := FromSnapshot(&s)
		return err
	}
	cases := []struct {
		name   string
		mutate func(s *Snapshot)
		frag   string
	}{
		{"no schema", func(s *Snapshot) { s.Schema = nil }, "no schema"},
		{"missing level table", func(s *Snapshot) {
			s.Dimensions["Store"] = s.Dimensions["Store"][:2]
		}, "level tables"},
		{"parent out of range", func(s *Snapshot) {
			s.Dimensions["Store"][0].Parents[0] = 99
		}, "invalid parent"},
		{"parents length mismatch", func(s *Snapshot) {
			s.Dimensions["Store"][0].Parents = s.Dimensions["Store"][0].Parents[:1]
		}, "parents"},
		{"bad geometry WKT", func(s *Snapshot) {
			s.Dimensions["Store"][0].Geoms[0] = "POINT(broken"
		}, "wkt"},
		{"wrong level name", func(s *Snapshot) {
			s.Dimensions["Store"][0].Level = "Shop"
		}, "schema wants"},
		{"attr column length", func(s *Snapshot) {
			s.Dimensions["Store"][1].Attrs["population"] = []any{1.0}
		}, "values for"},
		{"fact key out of range", func(s *Snapshot) {
			f := s.Facts["Sales"]
			f.Keys["Store"][0] = 1000
			s.Facts["Sales"] = f
		}, "out of range"},
		{"fact key column short", func(s *Snapshot) {
			f := s.Facts["Sales"]
			f.Keys["Store"] = f.Keys["Store"][:2]
			s.Facts["Sales"] = f
		}, "keys for dimension"},
		{"measure column short", func(s *Snapshot) {
			f := s.Facts["Sales"]
			f.Measures["UnitSales"] = f.Measures["UnitSales"][:1]
			s.Facts["Sales"] = f
		}, "measure"},
	}
	for _, tc := range cases {
		err := corrupt(tc.mutate)
		if err == nil {
			t.Errorf("%s: corruption accepted", tc.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.frag)) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.frag)
		}
	}
}

func TestReadRejectsGarbageJSON(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func BenchmarkSnapshotRoundTrip(b *testing.B) {
	c := testWarehouse(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := c.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

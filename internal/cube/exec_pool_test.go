package cube

// Pooled-partial hygiene and worker-clamp regression tests for the
// morsel-driven executor: partials recycle through FactData.partialPool
// with a full reset-on-get (rebind), and normalizeWorkers never sizes a
// pool past the chunk count, so a tiny table (or shard) at workers=8 no
// longer allocates seven partial tables that scan nothing.

import (
	"reflect"
	"runtime"
	"testing"

	"sdwp/internal/bitset"
)

func TestNormalizeWorkersClampsToChunkCount(t *testing.T) {
	big := 10 * execChunkSize // 10 chunks
	cases := []struct {
		workers, n, want int
	}{
		{0, big, 1},
		{1, big, 1},
		{8, big, 8},
		{16, big, 10},             // more workers than chunks
		{8, 6, 1},                 // tiny table: one chunk
		{8, execChunkSize, 1},     // exactly one chunk
		{8, execChunkSize + 1, 2}, // just past the boundary
		{3, 2 * execChunkSize, 2}, // clamp below requested
		{2, 4 * execChunkSize, 2}, // no clamp needed
		{8, 0, 1},                 // empty table still scans as one chunk
	}
	for _, tc := range cases {
		if got := normalizeWorkers(tc.workers, tc.n); got != tc.want {
			t.Errorf("normalizeWorkers(%d, %d) = %d, want %d", tc.workers, tc.n, got, tc.want)
		}
	}
	// Negative = one worker per logical CPU, still chunk-clamped.
	if got := normalizeWorkers(-1, big); got != min(runtime.GOMAXPROCS(0), 10) {
		t.Errorf("normalizeWorkers(-1, big) = %d", got)
	}
	if got := normalizeWorkers(-1, 6); got != 1 {
		t.Errorf("normalizeWorkers(-1, tiny) = %d, want 1", got)
	}
}

// TestTinyTableWorkersAllocateOnePartial is the regression test for the
// surplus-partials bug: 6 facts fit one chunk, so workers=8 must take
// exactly one partial from the pool, not eight.
func TestTinyTableWorkersAllocateOnePartial(t *testing.T) {
	c := testWarehouse(t)
	p, err := c.compile(Query{
		Fact:       "Sales",
		GroupBy:    []LevelRef{{"Store", "City"}},
		Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: AggSum}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := &scanPartials{}
	pt := p.scan(nil, normalizeWorkers(8, p.fd.n), sp)
	if got := len(sp.parts); got != 1 {
		t.Fatalf("tiny-table scan at workers=8 took %d partials, want 1", got)
	}
	res := p.finalize(pt)
	sp.release()
	if len(res.Rows) != 3 || res.ScannedFacts != 6 {
		t.Fatalf("clamped scan result wrong: %+v", res)
	}
}

// TestPartialPoolNoStateBleed runs two structurally different queries
// back-to-back through one partial — exactly what the pool does on reuse —
// and pins that rebind leaves no trace of the previous query: no stale
// accumulator rows, no stale scan counters, results identical to a
// freshly allocated partial's.
func TestPartialPoolNoStateBleed(t *testing.T) {
	c := testWarehouse(t)
	// Query A: filtered, multi-group (hash-cells path), SUM + COUNT.
	qA := Query{
		Fact:    "Sales",
		GroupBy: []LevelRef{{"Store", "State"}, {"Time", "Day"}},
		Aggregates: []MeasureAgg{
			{Measure: "UnitSales", Agg: AggSum},
			{Agg: AggCount},
		},
		Filters: []AttrFilter{{
			LevelRef: LevelRef{"Store", "City"}, Attr: "population",
			Op: OpGt, Value: 300000.0,
		}},
	}
	// Query B: unfiltered, single-group (dense path), different measure,
	// different aggregate count — everything about its partial differs.
	qB := Query{
		Fact:    "Sales",
		GroupBy: []LevelRef{{"Store", "City"}},
		Aggregates: []MeasureAgg{
			{Measure: "StoreCost", Agg: AggMin},
			{Measure: "StoreCost", Agg: AggMax},
			{Measure: "UnitSales", Agg: AggAvg},
		},
	}
	pA, err := c.compile(qA)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := c.compile(qB)
	if err != nil {
		t.Fatal(err)
	}
	n := pA.fd.n
	run := func(p *queryPlan, pt *partial) *Result {
		pt.scanRange(0, n, nil)
		return p.finalize(pt)
	}
	wantA := run(pA, newPartial(pA))
	wantB := run(pB, newPartial(pB))

	pt := newPartial(pA)
	if got := run(pA, pt); !reflect.DeepEqual(got, wantA) {
		t.Fatalf("first use diverged:\ngot  %+v\nwant %+v", got, wantA)
	}
	// Rebind to B — the reset-on-get path — and check the partial is
	// indistinguishable from fresh before it scans anything.
	pt.rebind(pB)
	if pt.scanned != 0 || pt.matched != 0 {
		t.Fatalf("stale scan counters after rebind: %d/%d", pt.scanned, pt.matched)
	}
	if len(pt.cells) != 0 || pt.denseNone != nil {
		t.Fatalf("stale accumulator rows after rebind: %d cells", len(pt.cells))
	}
	for i, cell := range pt.dense {
		if cell != nil {
			t.Fatalf("stale dense cell %d after rebind", i)
		}
	}
	if got := run(pB, pt); !reflect.DeepEqual(got, wantB) {
		t.Fatalf("reused partial diverged on B:\ngot  %+v\nwant %+v", got, wantB)
	}
	// And back to A: the arena has rewound twice, dense→cells→dense.
	pt.rebind(pA)
	if got := run(pA, pt); !reflect.DeepEqual(got, wantA) {
		t.Fatalf("reused partial diverged on A:\ngot  %+v\nwant %+v", got, wantA)
	}
}

// TestBatchPartialPoolReuseStats pins the pool round-trip through the
// public batch API: the second identical batch over a warm pool reports
// reused partials in its SharingStats.
func TestBatchPartialPoolReuseStats(t *testing.T) {
	c := testWarehouse(t)
	qs := []Query{
		{
			Fact:       "Sales",
			GroupBy:    []LevelRef{{"Store", "City"}},
			Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: AggSum}},
		},
		{
			Fact:       "Sales",
			GroupBy:    []LevelRef{{"Store", "State"}},
			Aggregates: []MeasureAgg{{Agg: AggCount}},
		},
	}
	res1, st1, err := c.ExecuteBatchOpt(qs, nil, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st1.PartialsAllocated == 0 {
		t.Fatalf("cold batch reported no allocated partials: %+v", st1)
	}
	res2, st2, err := c.ExecuteBatchOpt(qs, nil, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st2.PartialsReused == 0 {
		t.Errorf("warm batch reused no partials: %+v", st2)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("pooled rerun changed results")
	}
}

// TestSingleWorkerSharedArtifactsReturnToPools audits the workers=1
// staged-path release discipline end to end: after a sharing batch whose
// filter bitmap and key column materialized, both artifacts — and the
// scan's partials — must be back in their per-table pools.
func TestSingleWorkerSharedArtifactsReturnToPools(t *testing.T) {
	c := testWarehouse(t)
	filt := []AttrFilter{{
		LevelRef: LevelRef{"Store", "City"}, Attr: "population",
		Op: OpGt, Value: 300000.0,
	}}
	// Two queries sharing filter set and grouping: combined visible mass
	// 2n > n, so both the set bitmap and the City key column materialize.
	qs := []Query{
		{
			Fact:       "Sales",
			GroupBy:    []LevelRef{{"Store", "City"}},
			Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: AggSum}},
			Filters:    filt,
		},
		{
			Fact:       "Sales",
			GroupBy:    []LevelRef{{"Store", "City"}},
			Aggregates: []MeasureAgg{{Agg: AggCount}},
			Filters:    filt,
		},
	}
	_, st, err := c.ExecuteBatchOpt(qs, nil, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.DistinctFilterSets != 1 || st.DistinctGroupings != 1 {
		t.Fatalf("batch did not share as expected: %+v", st)
	}
	fd := c.FactData("Sales")
	if v, ok := fd.maskPool.Get().(*bitset.Set); !ok || v.Len() != fd.n {
		t.Error("filter bitmap was not returned to maskPool after the single-worker scan")
	}
	if v, ok := fd.colPool.Get().(*[]int32); !ok || len(*v) != fd.n {
		t.Error("key column was not returned to colPool after the single-worker scan")
	}
	if _, ok := fd.partialPool.Get().(*partial); !ok {
		t.Error("partials were not returned to partialPool after finalize")
	}
}

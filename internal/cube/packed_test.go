package cube

import (
	"math/rand"
	"testing"

	"sdwp/internal/bitset"
)

// Unit and fuzz coverage for the compressed column layer in isolation:
// pack/unpack round-trips across widths, the width-overflow repack, the
// tail word, and bit-identity of the word-at-a-time predicate kernels
// against the scalar per-code test. The executor-level equivalence (full
// queries, packed vs unpacked oracle) lives in exec_equiv_test.go.

func TestPackedColumnWidthOne(t *testing.T) {
	var pc packedColumn
	want := make([]int32, 0, 130)
	for i := 0; i < 130; i++ {
		c := int32(i % 2)
		pc.append(c)
		want = append(want, c)
	}
	if pc.width != 1 {
		t.Fatalf("width = %d, want 1 for codes {0,1}", pc.width)
	}
	if len(pc.words) != 3 {
		t.Fatalf("len(words) = %d, want 3 for 130 one-bit codes", len(pc.words))
	}
	for i, w := range want {
		if got := pc.get(i); got != w {
			t.Fatalf("get(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestPackedColumnRepackOnOverflow(t *testing.T) {
	var pc packedColumn
	for i := 0; i < 100; i++ {
		pc.append(int32(i % 2))
	}
	if pc.width != 1 {
		t.Fatalf("pre-overflow width = %d, want 1", pc.width)
	}
	// Snapshot before the overflow: the view must keep reading the old
	// prefix even after the live column repacks (repack allocates fresh).
	pv := pc.view()
	oldWords := pc.words

	pc.append(1000) // needs 10 bits -> repack
	if pc.width != 10 {
		t.Fatalf("post-overflow width = %d, want 10", pc.width)
	}
	if &pc.words[0] == &oldWords[0] {
		t.Fatalf("repack reused the old word array; snapshots would see torn codes")
	}
	for i := 0; i < 100; i++ {
		want := int32(i % 2)
		if got := pc.get(i); got != want {
			t.Fatalf("after repack: get(%d) = %d, want %d", i, got, want)
		}
		if got := pv.get(i); got != want {
			t.Fatalf("stale view: get(%d) = %d, want %d", i, got, want)
		}
	}
	if got := pc.get(100); got != 1000 {
		t.Fatalf("get(100) = %d, want 1000", got)
	}
	// A second oversized code must not repack again (grow-only width).
	pc.append(1023)
	if pc.width != 10 {
		t.Fatalf("width grew to %d on a code that already fit", pc.width)
	}
}

func TestPackedColumnTailWord(t *testing.T) {
	// width 3 -> 21 codes per word with one remainder bit; 25 codes leave
	// a partially filled tail word whose unused bits must stay zero (the
	// SWAR kernels rely on zeroed remainder lanes).
	var pc packedColumn
	want := make([]int32, 0, 25)
	for i := 0; i < 25; i++ {
		c := int32((i * 3) % 8)
		if c < 4 {
			c += 4 // force width 3 from the first append
		}
		pc.append(c)
		want = append(want, c)
	}
	if pc.width != 3 {
		t.Fatalf("width = %d, want 3", pc.width)
	}
	if len(pc.words) != 2 {
		t.Fatalf("len(words) = %d, want 2 for 25 three-bit codes", len(pc.words))
	}
	for i, w := range want {
		if got := pc.get(i); got != w {
			t.Fatalf("get(%d) = %d, want %d", i, got, w)
		}
	}
	k := 25 - 21 // codes in the tail word
	if extra := pc.words[1] >> (uint(k) * 3); extra != 0 {
		t.Fatalf("tail word has non-zero bits past the last code: %#x", extra)
	}
}

// fillOracle is the scalar reference: test every code in [lo, hi).
func fillOracle(pv packedView, cs *codeSet, lo, hi int, out *bitset.Set) {
	for i := lo; i < hi; i++ {
		if cs.test(pv.get(i)) {
			out.Set(i)
		}
	}
}

func checkFillMask(t *testing.T, pv packedView, cs *codeSet, lo, hi int, label string) {
	t.Helper()
	got := bitset.New(pv.n)
	want := bitset.New(pv.n)
	pv.fillMask(cs, lo, hi, got)
	fillOracle(pv, cs, lo, hi, want)
	if !got.Equal(want) {
		t.Fatalf("%s: fillMask [%d,%d) diverges from scalar oracle: got %v want %v",
			label, lo, hi, got, want)
	}
	// The kernel must not touch bits outside [lo, hi) — the raceless
	// word-aligned chunk contract of the parallel fill phases.
	for _, i := range got.Indices() {
		if i < lo || i >= hi {
			t.Fatalf("%s: fillMask [%d,%d) set out-of-range bit %d", label, lo, hi, i)
		}
	}
}

func TestFillMaskMatchesScalarAcrossWidthsAndKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, width := range []uint{1, 2, 3, 5, 7, 8, 12, 16} {
		card := 1 << width
		if card > 4096 {
			card = 4096
		}
		var pc packedColumn
		n := 777 // deliberately not word-, lane- or chunk-aligned
		for i := 0; i < n; i++ {
			pc.append(int32(rng.Intn(card)))
		}
		// Force the intended width even when the random draw stayed low.
		if pc.width < width {
			pc.repack(width)
		}
		pv := pc.view()
		sets := map[string]*codeSet{
			"empty":    newCodeSet(card, func(int32) bool { return false }),
			"all":      newCodeSet(card, func(int32) bool { return true }),
			"rangeLow": newCodeSet(card, func(c int32) bool { return c < int32(card/2) }),
			"rangeHi":  newCodeSet(card, func(c int32) bool { return c >= int32(card/3) }),
			"rangeMid": newCodeSet(card, func(c int32) bool { return c >= int32(card/4) && c < int32(3*card/4) }),
			"sparse":   newCodeSet(card, func(c int32) bool { return c%3 == 1 }),
			"single":   newCodeSet(card, func(c int32) bool { return c == int32(card/2) }),
		}
		wantKinds := map[string]int{"empty": csEmpty, "all": csAll,
			"rangeLow": csRange, "rangeHi": csRange, "rangeMid": csRange}
		for name, wantKind := range wantKinds {
			if card == 2 && (name == "rangeLow" || name == "rangeHi") {
				continue // degenerates to all/empty/single at two codes
			}
			if got := sets[name].kind; got != wantKind {
				t.Fatalf("width %d: codeSet %q classified %d, want %d", width, name, got, wantKind)
			}
		}
		for name, cs := range sets {
			label := name
			checkFillMask(t, pv, cs, 0, n, label)
			checkFillMask(t, pv, cs, 0, 0, label)
			for trial := 0; trial < 8; trial++ {
				lo := rng.Intn(n)
				hi := lo + rng.Intn(n-lo)
				checkFillMask(t, pv, cs, lo, hi, label)
			}
			// 64-aligned bounds — the shape the parallel fill actually uses.
			checkFillMask(t, pv, cs, 64, 704, label)
		}
	}
}

// FuzzPackedColumn round-trips arbitrary code sequences through the
// packed column (appends drive width growth and repacks) and checks the
// predicate kernel against the scalar oracle on the resulting data.
func FuzzPackedColumn(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 0, 7})
	f.Add([]byte{1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		var pc packedColumn
		want := make([]int32, 0, len(data))
		for i, b := range data {
			c := int32(b)
			if i%7 == 6 {
				c = c * 37 % 1021 // occasionally exceed a byte's width range
			}
			pc.append(c)
			want = append(want, c)
		}
		if pc.n != len(want) {
			t.Fatalf("n = %d, want %d", pc.n, len(want))
		}
		for i, w := range want {
			if got := pc.get(i); got != w {
				t.Fatalf("get(%d) = %d, want %d (width %d)", i, got, w, pc.width)
			}
		}
		// Remainder bits of every word must be zero (kernel invariant).
		k := int(64 / pc.width)
		if rem := uint(64) - uint(k)*pc.width; rem != 0 {
			for wi, w := range pc.words {
				if w>>(uint(k)*pc.width) != 0 {
					t.Fatalf("word %d has non-zero remainder bits (width %d)", wi, pc.width)
				}
			}
		}
		if tail := pc.n % k; tail != 0 {
			if extra := pc.words[len(pc.words)-1] >> (uint(tail) * pc.width); extra != 0 {
				t.Fatalf("tail word has bits past code %d", pc.n)
			}
		}
		// Kernel equivalence on a range and a sparse set over this data.
		card := 1
		for _, w := range want {
			if int(w)+1 > card {
				card = int(w) + 1
			}
		}
		pv := pc.view()
		lo, hi := int32(card/4), int32(card/2)
		rangeSet := newCodeSet(card, func(c int32) bool { return c >= lo && c <= hi })
		sparseSet := newCodeSet(card, func(c int32) bool { return c%5 == 2 })
		for _, cs := range []*codeSet{rangeSet, sparseSet} {
			got := bitset.New(pc.n)
			wantBits := bitset.New(pc.n)
			pv.fillMask(cs, 0, pc.n, got)
			fillOracle(pv, cs, 0, pc.n, wantBits)
			if !got.Equal(wantBits) {
				t.Fatalf("fillMask diverges from oracle (width %d, kind %d)", pc.width, cs.kind)
			}
		}
	})
}

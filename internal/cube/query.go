package cube

import (
	"fmt"
	"math"
	"sdwp/internal/bitset"
	"sort"
	"strings"
)

// Agg enumerates the aggregation functions.
type Agg uint8

const (
	AggSum Agg = iota + 1
	AggCount
	AggAvg
	AggMin
	AggMax
)

// String names the aggregation.
func (a Agg) String() string {
	switch a {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "?"
	}
}

// ParseAgg parses an aggregation name (case-insensitive).
func ParseAgg(s string) (Agg, error) {
	switch strings.ToUpper(s) {
	case "SUM":
		return AggSum, nil
	case "COUNT":
		return AggCount, nil
	case "AVG":
		return AggAvg, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	}
	return 0, fmt.Errorf("cube: unknown aggregation %q", s)
}

// LevelRef names a hierarchy level of a dimension.
type LevelRef struct {
	Dimension string `json:"dimension"`
	Level     string `json:"level"`
}

// String renders "Dimension.Level".
func (r LevelRef) String() string { return r.Dimension + "." + r.Level }

// MeasureAgg is one aggregate column of a query. Measure is ignored for
// AggCount.
type MeasureAgg struct {
	Measure string `json:"measure,omitempty"`
	Agg     Agg    `json:"agg"`
}

// FilterOp enumerates attribute comparison operators.
type FilterOp uint8

const (
	OpEq FilterOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// AttrFilter restricts facts by a dimension attribute at some level.
type AttrFilter struct {
	LevelRef
	Attr  string
	Op    FilterOp
	Value any
}

// OrderBy sorts result rows by one aggregate column.
type OrderBy struct {
	// Agg indexes Query.Aggregates.
	Agg int `json:"agg"`
	// Desc sorts descending (largest first).
	Desc bool `json:"desc,omitempty"`
}

// Query describes one OLAP aggregation over a fact.
type Query struct {
	Fact       string
	GroupBy    []LevelRef
	Aggregates []MeasureAgg
	Filters    []AttrFilter
	// OrderBy optionally replaces the default group-name ordering with an
	// aggregate-value ordering (ties broken by group names).
	OrderBy *OrderBy
	// Limit truncates the result to the first n rows when positive (top-n
	// with OrderBy).
	Limit int
}

// Row is one result group.
type Row struct {
	Groups []string  `json:"groups"`
	Values []float64 `json:"values"`
}

// Result is a query result: the grouped aggregate table plus the scan
// statistics the benchmark harness reports (experiment C1 measures
// ScannedFacts against MatchedFacts to quantify "avoiding exploring a large
// SDW").
type Result struct {
	GroupCols    []string `json:"groupCols"`
	AggCols      []string `json:"aggCols"`
	Rows         []Row    `json:"rows"`
	ScannedFacts int      `json:"scannedFacts"`
	MatchedFacts int      `json:"matchedFacts"`
}

// Execute runs the query through the given view (nil view = the whole
// warehouse, the non-personalized baseline).
func (c *Cube) Execute(q Query, v *View) (*Result, error) {
	fd := c.facts[q.Fact]
	if fd == nil {
		return nil, fmt.Errorf("cube: unknown fact %q", q.Fact)
	}
	if len(q.Aggregates) == 0 {
		return nil, fmt.Errorf("cube: query needs at least one aggregate")
	}

	// Resolve group-by levels. anc maps each finest-level member to its
	// ancestor at the group level (the roll-up cache), and keys is the
	// fact's key column for the dimension.
	type groupSpec struct {
		dd   *DimData
		li   int
		anc  []int32
		keys []int32
	}
	groups := make([]groupSpec, len(q.GroupBy))
	for i, g := range q.GroupBy {
		dd := c.dims[g.Dimension]
		if dd == nil {
			return nil, fmt.Errorf("cube: unknown dimension %q", g.Dimension)
		}
		if !fd.fact.HasDimension(g.Dimension) {
			return nil, fmt.Errorf("cube: fact %q has no dimension %q", q.Fact, g.Dimension)
		}
		li := dd.dim.LevelIndex(g.Level)
		if li < 0 {
			return nil, fmt.Errorf("cube: dimension %q has no level %q", g.Dimension, g.Level)
		}
		groups[i] = groupSpec{dd: dd, li: li, anc: dd.ancestorsFromFinest(li), keys: fd.dimKeys[g.Dimension]}
	}

	// Resolve aggregates.
	for _, a := range q.Aggregates {
		if a.Agg < AggSum || a.Agg > AggMax {
			return nil, fmt.Errorf("cube: invalid aggregation in query")
		}
		if a.Agg != AggCount && fd.fact.Measure(a.Measure) == nil {
			return nil, fmt.Errorf("cube: fact %q has no measure %q", q.Fact, a.Measure)
		}
	}

	if q.OrderBy != nil && (q.OrderBy.Agg < 0 || q.OrderBy.Agg >= len(q.Aggregates)) {
		return nil, fmt.Errorf("cube: OrderBy.Agg %d out of range (have %d aggregates)",
			q.OrderBy.Agg, len(q.Aggregates))
	}
	if q.Limit < 0 {
		return nil, fmt.Errorf("cube: negative Limit %d", q.Limit)
	}

	// Resolve filters.
	type filterSpec struct {
		dd   *DimData
		li   int
		f    AttrFilter
		anc  []int32
		keys []int32
	}
	filters := make([]filterSpec, len(q.Filters))
	for i, f := range q.Filters {
		dd := c.dims[f.Dimension]
		if dd == nil {
			return nil, fmt.Errorf("cube: unknown dimension %q in filter", f.Dimension)
		}
		if !fd.fact.HasDimension(f.Dimension) {
			return nil, fmt.Errorf("cube: fact %q has no dimension %q in filter", q.Fact, f.Dimension)
		}
		li := dd.dim.LevelIndex(f.Level)
		if li < 0 {
			return nil, fmt.Errorf("cube: dimension %q has no level %q in filter", f.Dimension, f.Level)
		}
		if dd.levels[li].level.Attribute(f.Attr) == nil {
			return nil, fmt.Errorf("cube: level %s has no attribute %q", f.LevelRef, f.Attr)
		}
		filters[i] = filterSpec{dd: dd, li: li, f: f, anc: dd.ancestorsFromFinest(li), keys: fd.dimKeys[f.Dimension]}
	}

	// Aggregation state per group key. Single-level group-bys (the common
	// OLAP roll-up) use a dense slice indexed by group member; multi-level
	// group-bys hash a composite key.
	type accum struct {
		members []int32
		sums    []float64
		mins    []float64
		maxs    []float64
		count   float64
	}
	newAccum := func(members []int32) *accum {
		cell := &accum{
			members: append([]int32(nil), members...),
			sums:    make([]float64, len(q.Aggregates)),
			mins:    make([]float64, len(q.Aggregates)),
			maxs:    make([]float64, len(q.Aggregates)),
		}
		for j := range cell.mins {
			cell.mins[j] = math.Inf(1)
			cell.maxs[j] = math.Inf(-1)
		}
		return cell
	}
	cells := map[string]*accum{}
	var dense []*accum
	var denseNone *accum // the NoParent group of the dense path
	if len(groups) == 1 {
		dense = make([]*accum, groups[0].dd.levels[groups[0].li].Len())
	}

	res := &Result{}
	for _, g := range q.GroupBy {
		res.GroupCols = append(res.GroupCols, g.String())
	}
	for _, a := range q.Aggregates {
		if a.Agg == AggCount {
			res.AggCols = append(res.AggCols, "COUNT(*)")
		} else {
			res.AggCols = append(res.AggCols, fmt.Sprintf("%s(%s)", a.Agg, a.Measure))
		}
	}

	var keyBuf []byte
	memberScratch := make([]int32, len(groups))
	process := func(i int32) {
		res.ScannedFacts++
		ok := true
		for _, fs := range filters {
			anc := fs.anc[fs.keys[i]]
			if anc == NoParent {
				ok = false
				break
			}
			val, has := fs.dd.levels[fs.li].Attr(fs.f.Attr, anc)
			if !has || !compare(val, fs.f.Op, fs.f.Value) {
				ok = false
				break
			}
		}
		if !ok {
			return
		}
		res.MatchedFacts++

		var cell *accum
		if dense != nil {
			anc := groups[0].anc[groups[0].keys[i]]
			memberScratch[0] = anc
			if anc == NoParent {
				if denseNone == nil {
					denseNone = newAccum(memberScratch)
				}
				cell = denseNone
			} else {
				cell = dense[anc]
				if cell == nil {
					cell = newAccum(memberScratch)
					dense[anc] = cell
				}
			}
		} else {
			keyBuf = keyBuf[:0]
			for gi := range groups {
				anc := groups[gi].anc[groups[gi].keys[i]]
				memberScratch[gi] = anc
				keyBuf = appendInt32(keyBuf, anc)
			}
			cell = cells[string(keyBuf)]
			if cell == nil {
				cell = newAccum(memberScratch)
				cells[string(keyBuf)] = cell
			}
		}
		cell.count++
		for j, a := range q.Aggregates {
			if a.Agg == AggCount {
				continue
			}
			mv := fd.measures[a.Measure][i]
			cell.sums[j] += mv
			if mv < cell.mins[j] {
				cell.mins[j] = mv
			}
			if mv > cell.maxs[j] {
				cell.maxs[j] = mv
			}
		}
	}

	// A personalized view materializes its combined mask once; the query
	// then visits only visible facts — the mechanical form of the paper's
	// "avoiding exploring a large and complex SDW". The non-personalized
	// baseline (nil view) scans the whole fact table.
	var mask *bitset.Set
	if v != nil {
		mask = v.Materialize(q.Fact)
	}
	if mask != nil {
		mask.ForEach(func(i int) bool {
			process(int32(i))
			return true
		})
	} else {
		for i := int32(0); int(i) < fd.n; i++ {
			process(i)
		}
	}

	// Collect dense-path cells into the common row loop.
	if dense != nil {
		for _, cell := range dense {
			if cell != nil {
				cells[string(appendInt32(nil, cell.members[0]))] = cell
			}
		}
		if denseNone != nil {
			cells[string(appendInt32(nil, NoParent))] = denseNone
		}
	}

	// Materialize rows.
	for _, cell := range cells {
		row := Row{Values: make([]float64, len(q.Aggregates))}
		for gi, gs := range groups {
			name := "(none)"
			if cell.members[gi] != NoParent {
				name = gs.dd.levels[gs.li].Name(cell.members[gi])
			}
			row.Groups = append(row.Groups, name)
		}
		for j, a := range q.Aggregates {
			switch a.Agg {
			case AggSum:
				row.Values[j] = cell.sums[j]
			case AggCount:
				row.Values[j] = cell.count
			case AggAvg:
				row.Values[j] = cell.sums[j] / cell.count
			case AggMin:
				row.Values[j] = cell.mins[j]
			case AggMax:
				row.Values[j] = cell.maxs[j]
			}
		}
		res.Rows = append(res.Rows, row)
	}
	byGroups := func(i, j int) bool {
		a, b := res.Rows[i].Groups, res.Rows[j].Groups
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	}
	if ob := q.OrderBy; ob != nil {
		sort.Slice(res.Rows, func(i, j int) bool {
			vi, vj := res.Rows[i].Values[ob.Agg], res.Rows[j].Values[ob.Agg]
			if vi != vj {
				if ob.Desc {
					return vi > vj
				}
				return vi < vj
			}
			return byGroups(i, j)
		})
	} else {
		sort.Slice(res.Rows, byGroups)
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

func appendInt32(b []byte, v int32) []byte {
	u := uint32(v)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}

// compare applies a filter operator. Numeric comparisons normalize both
// sides to float64; other types support only equality operators.
func compare(a any, op FilterOp, b any) bool {
	af, aNum := toFloat(a)
	bf, bNum := toFloat(b)
	if aNum && bNum {
		switch op {
		case OpEq:
			return af == bf
		case OpNe:
			return af != bf
		case OpLt:
			return af < bf
		case OpLe:
			return af <= bf
		case OpGt:
			return af > bf
		case OpGe:
			return af >= bf
		}
		return false
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		switch op {
		case OpEq:
			return as == bs
		case OpNe:
			return as != bs
		case OpLt:
			return as < bs
		case OpLe:
			return as <= bs
		case OpGt:
			return as > bs
		case OpGe:
			return as >= bs
		}
		return false
	}
	ab, aok2 := a.(bool)
	bb, bok2 := b.(bool)
	if aok2 && bok2 {
		switch op {
		case OpEq:
			return ab == bb
		case OpNe:
			return ab != bb
		}
	}
	return false
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	}
	return 0, false
}

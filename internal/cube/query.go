package cube

import (
	"fmt"
	"strings"

	"sdwp/internal/obs"
)

// Agg enumerates the aggregation functions.
type Agg uint8

const (
	AggSum Agg = iota + 1
	AggCount
	AggAvg
	AggMin
	AggMax
)

// String names the aggregation.
func (a Agg) String() string {
	switch a {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "?"
	}
}

// ParseAgg parses an aggregation name (case-insensitive).
func ParseAgg(s string) (Agg, error) {
	switch strings.ToUpper(s) {
	case "SUM":
		return AggSum, nil
	case "COUNT":
		return AggCount, nil
	case "AVG":
		return AggAvg, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	}
	return 0, fmt.Errorf("cube: unknown aggregation %q", s)
}

// LevelRef names a hierarchy level of a dimension.
type LevelRef struct {
	Dimension string `json:"dimension"`
	Level     string `json:"level"`
}

// String renders "Dimension.Level".
func (r LevelRef) String() string { return r.Dimension + "." + r.Level }

// MeasureAgg is one aggregate column of a query. Measure is ignored for
// AggCount.
type MeasureAgg struct {
	Measure string `json:"measure,omitempty"`
	Agg     Agg    `json:"agg"`
}

// FilterOp enumerates attribute comparison operators.
type FilterOp uint8

const (
	OpEq FilterOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// AttrFilter restricts facts by a dimension attribute at some level.
type AttrFilter struct {
	LevelRef
	Attr  string
	Op    FilterOp
	Value any
}

// OrderBy sorts result rows by one aggregate column.
type OrderBy struct {
	// Agg indexes Query.Aggregates.
	Agg int `json:"agg"`
	// Desc sorts descending (largest first).
	Desc bool `json:"desc,omitempty"`
}

// Query describes one OLAP aggregation over a fact.
type Query struct {
	Fact       string
	GroupBy    []LevelRef
	Aggregates []MeasureAgg
	Filters    []AttrFilter
	// OrderBy optionally replaces the default group-name ordering with an
	// aggregate-value ordering (ties broken by group names).
	OrderBy *OrderBy
	// Limit truncates the result to the first n rows when positive (top-n
	// with OrderBy).
	Limit int
}

// Row is one result group.
type Row struct {
	Groups []string  `json:"groups"`
	Values []float64 `json:"values"`
}

// Result is a query result: the grouped aggregate table plus the scan
// statistics the benchmark harness reports (experiment C1 measures
// ScannedFacts against MatchedFacts to quantify "avoiding exploring a large
// SDW").
type Result struct {
	GroupCols    []string `json:"groupCols"`
	AggCols      []string `json:"aggCols"`
	Rows         []Row    `json:"rows"`
	ScannedFacts int      `json:"scannedFacts"`
	MatchedFacts int      `json:"matchedFacts"`
	// Cost is the resource-consumption vector the executor measured for
	// this query: scan counters, its share of freshly materialized batch
	// artifacts, and — once the scheduler attributes the batch — CPU
	// time and sharing/caching credits.
	Cost obs.QueryCost `json:"cost"`
}

// Execute runs the query through the given view (nil view = the whole
// warehouse, the non-personalized baseline) on a single goroutine. See
// ExecuteParallel for the partitioned executor and ExecuteBatch for the
// shared-scan batch API; all three produce identical Results.
func (c *Cube) Execute(q Query, v *View) (*Result, error) {
	return c.ExecuteParallel(q, v, 1)
}

func appendInt32(b []byte, v int32) []byte {
	u := uint32(v)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}

// compare applies a filter operator. Numeric comparisons normalize both
// sides to float64; other types support only equality operators.
func compare(a any, op FilterOp, b any) bool {
	af, aNum := toFloat(a)
	bf, bNum := toFloat(b)
	if aNum && bNum {
		switch op {
		case OpEq:
			return af == bf
		case OpNe:
			return af != bf
		case OpLt:
			return af < bf
		case OpLe:
			return af <= bf
		case OpGt:
			return af > bf
		case OpGe:
			return af >= bf
		}
		return false
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		switch op {
		case OpEq:
			return as == bs
		case OpNe:
			return as != bs
		case OpLt:
			return as < bs
		case OpLe:
			return as <= bs
		case OpGt:
			return as > bs
		case OpGe:
			return as >= bs
		}
		return false
	}
	ab, aok2 := a.(bool)
	bb, bok2 := b.(bool)
	if aok2 && bok2 {
		switch op {
		case OpEq:
			return ab == bb
		case OpNe:
			return ab != bb
		}
	}
	return false
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	}
	return 0, false
}

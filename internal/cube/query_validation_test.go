package cube

import (
	"strings"
	"testing"

	"sdwp/internal/geomd"
	"sdwp/internal/mdmodel"
)

// TestExecuteValidationErrors covers every validation error path of query
// compilation, through each executor entry point (the paths are shared by
// Execute, ExecuteParallel and ExecuteBatch).
func TestExecuteValidationErrors(t *testing.T) {
	c := testWarehouse(t)
	count := []MeasureAgg{{Agg: AggCount}}
	cases := []struct {
		name string
		q    Query
		want string
	}{
		{"unknown fact", Query{Fact: "Ghost", Aggregates: count}, "unknown fact"},
		{"no aggregates", Query{Fact: "Sales"}, "at least one aggregate"},
		{"unknown group dimension",
			Query{Fact: "Sales", GroupBy: []LevelRef{{Dimension: "Ghost", Level: "X"}}, Aggregates: count},
			"unknown dimension"},
		{"unknown group level",
			Query{Fact: "Sales", GroupBy: []LevelRef{{Dimension: "Store", Level: "Ghost"}}, Aggregates: count},
			"no level"},
		{"invalid agg zero",
			Query{Fact: "Sales", Aggregates: []MeasureAgg{{Agg: 0}}},
			"invalid aggregation"},
		{"invalid agg out of range",
			Query{Fact: "Sales", Aggregates: []MeasureAgg{{Agg: AggMax + 1}}},
			"invalid aggregation"},
		{"unknown measure",
			Query{Fact: "Sales", Aggregates: []MeasureAgg{{Measure: "Ghost", Agg: AggSum}}},
			"no measure"},
		{"orderby agg negative",
			Query{Fact: "Sales", Aggregates: count, OrderBy: &OrderBy{Agg: -1}},
			"out of range"},
		{"orderby agg too large",
			Query{Fact: "Sales", Aggregates: count, OrderBy: &OrderBy{Agg: 1}},
			"out of range"},
		{"negative limit",
			Query{Fact: "Sales", Aggregates: count, Limit: -3},
			"negative Limit"},
		{"unknown filter dimension",
			Query{Fact: "Sales", Aggregates: count,
				Filters: []AttrFilter{{LevelRef: LevelRef{Dimension: "Ghost", Level: "X"}, Attr: "a", Op: OpEq, Value: 1}}},
			"unknown dimension"},
		{"unknown filter level",
			Query{Fact: "Sales", Aggregates: count,
				Filters: []AttrFilter{{LevelRef: LevelRef{Dimension: "Store", Level: "Ghost"}, Attr: "a", Op: OpEq, Value: 1}}},
			"no level"},
		{"unknown filter attribute",
			Query{Fact: "Sales", Aggregates: count,
				Filters: []AttrFilter{{LevelRef: LevelRef{Dimension: "Store", Level: "City"}, Attr: "ghost", Op: OpEq, Value: 1}}},
			"no attribute"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := c.Execute(tc.q, nil); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Execute err = %v, want containing %q", err, tc.want)
			}
			if _, err := c.ExecuteParallel(tc.q, nil, 4); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("ExecuteParallel err = %v, want containing %q", err, tc.want)
			}
			if _, err := c.ExecuteBatch([]Query{tc.q}, nil, 2); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("ExecuteBatch err = %v, want containing %q", err, tc.want)
			}
		})
	}

	// A dimension the fact does not use is rejected in group-by and in
	// filters (needs a schema with an unused dimension).
	b := mdmodel.NewBuilder("Probe")
	b.Dimension("Store").Level("Store", "name")
	b.Dimension("Extra").Level("Item", "name").Attr("weight", mdmodel.TypeNumber)
	b.Fact("Sales").Measure("UnitSales").Uses("Store")
	pc := New(geomd.New(b.MustBuild()))
	q := Query{Fact: "Sales", GroupBy: []LevelRef{{Dimension: "Extra", Level: "Item"}}, Aggregates: count}
	if _, err := pc.Execute(q, nil); err == nil || !strings.Contains(err.Error(), "has no dimension") {
		t.Errorf("group-by on unused dimension: err = %v", err)
	}
	q = Query{Fact: "Sales", Aggregates: count,
		Filters: []AttrFilter{{LevelRef: LevelRef{Dimension: "Extra", Level: "Item"}, Attr: "weight", Op: OpEq, Value: 1.0}}}
	if _, err := pc.Execute(q, nil); err == nil || !strings.Contains(err.Error(), "has no dimension") {
		t.Errorf("filter on unused dimension: err = %v", err)
	}
}

// TestCompareOperators covers the compare/toFloat helpers: numeric
// comparisons across Go numeric types, string and bool comparisons, and
// the unsupported combinations that must answer false.
func TestCompareOperators(t *testing.T) {
	cases := []struct {
		name string
		a    any
		op   FilterOp
		b    any
		want bool
	}{
		// Numeric: all operators, mixed numeric types normalize to float64.
		{"eq float", 2.0, OpEq, 2.0, true},
		{"eq int float", 2, OpEq, 2.0, true},
		{"eq int32 int64", int32(5), OpEq, int64(5), true},
		{"eq float32", float32(1.5), OpEq, 1.5, true},
		{"ne", 2.0, OpNe, 3.0, true},
		{"ne false", 2.0, OpNe, 2.0, false},
		{"lt", 2.0, OpLt, 3, true},
		{"lt false", 3.0, OpLt, 3, false},
		{"le", 3.0, OpLe, 3, true},
		{"gt", 4, OpGt, 3.0, true},
		{"ge", int64(3), OpGe, 3, true},
		{"ge false", 2, OpGe, 3, false},
		{"bad op numeric", 2.0, FilterOp(99), 2.0, false},
		// Strings: full operator set, lexicographic.
		{"str eq", "a", OpEq, "a", true},
		{"str ne", "a", OpNe, "b", true},
		{"str lt", "a", OpLt, "b", true},
		{"str le", "b", OpLe, "b", true},
		{"str gt", "c", OpGt, "b", true},
		{"str ge", "b", OpGe, "c", false},
		{"bad op string", "a", FilterOp(99), "a", false},
		// Bools: only equality operators.
		{"bool eq", true, OpEq, true, true},
		{"bool ne", true, OpNe, false, true},
		{"bool lt unsupported", true, OpLt, false, false},
		// Type mismatches answer false.
		{"string vs number", "2", OpEq, 2.0, false},
		{"nil vs number", nil, OpEq, 2.0, false},
		{"bool vs number", true, OpEq, 1.0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := compare(tc.a, tc.op, tc.b); got != tc.want {
				t.Errorf("compare(%v, %v, %v) = %v, want %v", tc.a, tc.op, tc.b, got, tc.want)
			}
		})
	}
}

func TestToFloat(t *testing.T) {
	cases := []struct {
		in   any
		want float64
		ok   bool
	}{
		{2.5, 2.5, true},
		{float32(1.5), 1.5, true},
		{7, 7, true},
		{int32(-3), -3, true},
		{int64(1 << 40), float64(int64(1) << 40), true},
		{"2.5", 0, false},
		{true, 0, false},
		{nil, 0, false},
	}
	for _, tc := range cases {
		got, ok := toFloat(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("toFloat(%#v) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

package cube

import (
	"encoding/json"
	"fmt"
	"io"

	"sdwp/internal/geom"
	"sdwp/internal/geomd"
)

// This file implements warehouse persistence: a Cube serializes to a JSON
// snapshot (geometries as WKT) and rebuilds through the same validated
// loading paths as hand-written code, so a corrupted snapshot is rejected
// rather than silently mis-loaded.

// LevelSnapshot is one level's member table.
type LevelSnapshot struct {
	Level   string           `json:"level"`
	Names   []string         `json:"names"`
	Parents []int32          `json:"parents"`
	Attrs   map[string][]any `json:"attrs,omitempty"`
	Geoms   []string         `json:"geoms,omitempty"` // WKT; "" for absent
}

// FactSnapshot is one fact table.
type FactSnapshot struct {
	Keys     map[string][]int32   `json:"keys"`
	Measures map[string][]float64 `json:"measures"`
	N        int                  `json:"n"`
}

// LayerSnapshot is one catalog layer.
type LayerSnapshot struct {
	Type  string   `json:"type"`
	Names []string `json:"names"`
	Geoms []string `json:"geoms"` // WKT
}

// Snapshot is the serializable form of a whole warehouse.
type Snapshot struct {
	Schema     *geomd.Schema              `json:"schema"`
	Dimensions map[string][]LevelSnapshot `json:"dimensions"`
	Facts      map[string]FactSnapshot    `json:"facts"`
	Layers     map[string]LayerSnapshot   `json:"layers,omitempty"`
}

// Snapshot captures the cube's current contents.
func (c *Cube) Snapshot() *Snapshot {
	s := &Snapshot{
		Schema:     c.schema,
		Dimensions: map[string][]LevelSnapshot{},
		Facts:      map[string]FactSnapshot{},
		Layers:     map[string]LayerSnapshot{},
	}
	for name, dd := range c.dims {
		var levels []LevelSnapshot
		for i := 0; i < dd.NumLevels(); i++ {
			ld := dd.levels[i]
			ls := LevelSnapshot{
				Level:   dd.LevelName(i),
				Names:   append([]string(nil), ld.names...),
				Parents: append([]int32(nil), ld.parents...),
			}
			if len(ld.attrs) > 0 {
				ls.Attrs = map[string][]any{}
				for k, col := range ld.attrs {
					ls.Attrs[k] = append([]any(nil), col...)
				}
			}
			if ld.geoms != nil {
				ls.Geoms = make([]string, len(ld.geoms))
				for j, g := range ld.geoms {
					if g != nil {
						ls.Geoms[j] = g.WKT()
					}
				}
			}
			levels = append(levels, ls)
		}
		s.Dimensions[name] = levels
	}
	for name, fd := range c.facts {
		fs := FactSnapshot{Keys: map[string][]int32{}, Measures: map[string][]float64{}, N: fd.n}
		for k, col := range fd.dimKeys {
			fs.Keys[k] = append([]int32(nil), col...)
		}
		for k, col := range fd.measures {
			fs.Measures[k] = append([]float64(nil), col...)
		}
		s.Facts[name] = fs
	}
	for name, ld := range c.layers {
		ls := LayerSnapshot{Type: ld.layer.Geom.String()}
		ls.Names = append(ls.Names, ld.names...)
		for _, g := range ld.geoms {
			ls.Geoms = append(ls.Geoms, g.WKT())
		}
		s.Layers[name] = ls
	}
	return s
}

// FromSnapshot rebuilds a cube, re-validating every member, fact and layer
// object through the normal loading paths.
func FromSnapshot(s *Snapshot) (*Cube, error) {
	if s.Schema == nil || s.Schema.MD == nil {
		return nil, fmt.Errorf("cube: snapshot has no schema")
	}
	if err := s.Schema.MD.Validate(); err != nil {
		return nil, fmt.Errorf("cube: snapshot schema invalid: %w", err)
	}
	c := New(s.Schema)

	for _, d := range s.Schema.MD.Dimensions {
		levels := s.Dimensions[d.Name]
		if len(levels) != len(d.Levels) {
			return nil, fmt.Errorf("cube: dimension %q has %d level tables, schema wants %d",
				d.Name, len(levels), len(d.Levels))
		}
		// Load coarse→fine so parent references resolve.
		for i := len(levels) - 1; i >= 0; i-- {
			ls := levels[i]
			if ls.Level != d.Levels[i].Name {
				return nil, fmt.Errorf("cube: dimension %q level %d is %q, schema wants %q",
					d.Name, i, ls.Level, d.Levels[i].Name)
			}
			if len(ls.Parents) != len(ls.Names) {
				return nil, fmt.Errorf("cube: level %s.%s has %d parents for %d members",
					d.Name, ls.Level, len(ls.Parents), len(ls.Names))
			}
			for j, name := range ls.Names {
				if _, err := c.AddMember(d.Name, ls.Level, name, ls.Parents[j]); err != nil {
					return nil, err
				}
			}
			for attr, col := range ls.Attrs {
				if len(col) != len(ls.Names) {
					return nil, fmt.Errorf("cube: level %s.%s attr %q has %d values for %d members",
						d.Name, ls.Level, attr, len(col), len(ls.Names))
				}
				for j, v := range col {
					if v == nil {
						continue
					}
					if err := c.SetMemberAttr(d.Name, ls.Level, int32(j), attr, v); err != nil {
						return nil, err
					}
				}
			}
			if ls.Geoms != nil {
				if len(ls.Geoms) != len(ls.Names) {
					return nil, fmt.Errorf("cube: level %s.%s has %d geometries for %d members",
						d.Name, ls.Level, len(ls.Geoms), len(ls.Names))
				}
				for j, wkt := range ls.Geoms {
					if wkt == "" {
						continue
					}
					g, err := geom.ParseWKT(wkt)
					if err != nil {
						return nil, fmt.Errorf("cube: level %s.%s member %d: %w", d.Name, ls.Level, j, err)
					}
					if err := c.SetMemberGeometry(d.Name, ls.Level, int32(j), g); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	for name, ls := range s.Layers {
		t, err := geom.ParseType(ls.Type)
		if err != nil {
			return nil, fmt.Errorf("cube: layer %q: %w", name, err)
		}
		if _, err := c.RegisterLayer(name, t); err != nil {
			return nil, err
		}
		if len(ls.Geoms) != len(ls.Names) {
			return nil, fmt.Errorf("cube: layer %q has %d geometries for %d names",
				name, len(ls.Geoms), len(ls.Names))
		}
		for j, wkt := range ls.Geoms {
			g, err := geom.ParseWKT(wkt)
			if err != nil {
				return nil, fmt.Errorf("cube: layer %q object %d: %w", name, j, err)
			}
			if _, err := c.AddLayerObject(name, ls.Names[j], g); err != nil {
				return nil, err
			}
		}
	}

	for _, f := range s.Schema.MD.Facts {
		fs, ok := s.Facts[f.Name]
		if !ok {
			continue
		}
		for _, dn := range f.Dimensions {
			if len(fs.Keys[dn]) != fs.N {
				return nil, fmt.Errorf("cube: fact %q has %d keys for dimension %q, want %d",
					f.Name, len(fs.Keys[dn]), dn, fs.N)
			}
		}
		for _, m := range f.Measures {
			if col, ok := fs.Measures[m.Name]; ok && len(col) != fs.N {
				return nil, fmt.Errorf("cube: fact %q measure %q has %d values, want %d",
					f.Name, m.Name, len(col), fs.N)
			}
		}
		keys := map[string]int32{}
		vals := map[string]float64{}
		for i := 0; i < fs.N; i++ {
			for _, dn := range f.Dimensions {
				keys[dn] = fs.Keys[dn][i]
			}
			for _, m := range f.Measures {
				if col, ok := fs.Measures[m.Name]; ok {
					vals[m.Name] = col[i]
				} else {
					vals[m.Name] = 0
				}
			}
			if err := c.AddFact(f.Name, keys, vals); err != nil {
				return nil, fmt.Errorf("cube: fact %q row %d: %w", f.Name, i, err)
			}
		}
	}
	return c, nil
}

// WriteSnapshot streams the cube as JSON.
func (c *Cube) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c.Snapshot())
}

// Read rebuilds a cube from a JSON snapshot stream.
func Read(r io.Reader) (*Cube, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("cube: decode snapshot: %w", err)
	}
	return FromSnapshot(&s)
}

package cube

import (
	"container/list"
	"sync"
	"sync/atomic"

	"sdwp/internal/bitset"
)

// ArtifactCache is the cross-batch artifact cache: a byte-bounded LRU of
// the batch executor's stage-1/2 artifacts — composed filter-set bitmaps
// keyed by Query.FilterFingerprint, per-predicate bitmaps keyed by
// AttrFilter.Fingerprint, and roll-up key columns keyed by
// LevelRef.Fingerprint — so a hot dashboard filter or grouping survives
// between scans instead of being re-materialized per batch.
//
// Entries are validated against the fact table's version (FactData bumps
// it on AddFact, and the cube bumps every table on member/attribute
// mutation), so an artifact built over stale data is never served: the
// stale entry is dropped on lookup and the scan re-materializes. Cached
// artifacts are immutable and may be read by any number of concurrent
// scans; they are never recycled through the executor's buffer pools.
//
// Admission is doorkept, mirroring the scheduler's result cache: an
// artifact is admitted only once its composite key (fingerprint, not
// version — a hot filter stays admitted across ingest) has been offered
// at least twice, so a one-off exploratory filter passes through without
// evicting hot artifacts. Two map generations bound the doorkeeper's
// footprint: when the current generation fills it becomes the old one and
// a fresh map starts, forgetting fingerprints roughly FIFO.
//
// The shard subsystem keeps one ArtifactCache per fact shard — the cache
// key is effectively (fingerprint, shard, table version) there — and the
// scheduler can front the unsharded engine with a single cache the same
// way (core.Options.ArtifactCacheBytes).
type ArtifactCache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[string]*list.Element // composite key → *artifactEntry element
	lru     *list.List               // front = most recently used

	// Doorkeeper generations (guarded by mu): composite keys offered via
	// put at least once; a second offer admits.
	doorCap int
	doorCur map[string]struct{}
	doorOld map[string]struct{}

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	stale     atomic.Int64
	doorkept  atomic.Int64
}

// artifactDoorCapacity bounds one doorkeeper generation — a memory bound,
// not a tuning knob (cf. qsched's result-cache doorkeeper).
const artifactDoorCapacity = 4096

// artifactEntry is one cached artifact. Exactly one of mask/col is set.
type artifactEntry struct {
	key     string
	version uint64
	mask    *bitset.Set
	col     []int32
	bytes   int64
}

// NewArtifactCache builds a cache bounded to maxBytes of artifact payload
// (nil if maxBytes <= 0, which callers treat as "caching off").
func NewArtifactCache(maxBytes int64) *ArtifactCache {
	if maxBytes <= 0 {
		return nil
	}
	return &ArtifactCache{max: maxBytes, entries: map[string]*list.Element{}, lru: list.New(),
		doorCap: artifactDoorCapacity, doorCur: map[string]struct{}{}}
}

// SetDoorkeeperCapacity overrides the doorkeeper's per-generation bound
// (tests exercise generation rotation with small capacities; production
// keeps the default).
func (ac *ArtifactCache) SetDoorkeeperCapacity(n int) {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	if n < 1 {
		n = 1
	}
	ac.doorCap = n
}

// maskKey/predKey/colKey build the composite cache key. The fact name
// scopes fingerprints across tables; the kind prefix keeps the three
// artifact namespaces apart.
func maskKey(fd *FactData, fp string) string { return "m|" + fd.fact.Name + "|" + fp }
func predKey(fd *FactData, fp string) string { return "p|" + fd.fact.Name + "|" + fp }
func colKey(fd *FactData, fp string) string  { return "c|" + fd.fact.Name + "|" + fp }

// getMask returns the cached filter bitmap for the fingerprint if it was
// built under the given table version (and size), else nil.
func (ac *ArtifactCache) getMask(fd *FactData, version uint64, fp string) *bitset.Set {
	e := ac.get(maskKey(fd, fp), version)
	if e == nil || e.mask == nil || e.mask.Len() != fd.n {
		return nil
	}
	return e.mask
}

// getPredMask returns the cached per-predicate bitmap for the fingerprint
// if it was built under the given table version (and size), else nil.
func (ac *ArtifactCache) getPredMask(fd *FactData, version uint64, fp string) *bitset.Set {
	e := ac.get(predKey(fd, fp), version)
	if e == nil || e.mask == nil || e.mask.Len() != fd.n {
		return nil
	}
	return e.mask
}

// getCol returns the cached roll-up key column likewise.
func (ac *ArtifactCache) getCol(fd *FactData, version uint64, fp string) []int32 {
	e := ac.get(colKey(fd, fp), version)
	if e == nil || e.col == nil || len(e.col) != fd.n {
		return nil
	}
	return e.col
}

func (ac *ArtifactCache) get(key string, version uint64) *artifactEntry {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	el, ok := ac.entries[key]
	if !ok {
		ac.misses.Add(1)
		return nil
	}
	e := el.Value.(*artifactEntry)
	if e.version != version {
		// Built over a previous table state: drop it (the caller will
		// re-materialize and re-insert at the current version).
		ac.removeLocked(el)
		ac.stale.Add(1)
		ac.misses.Add(1)
		return nil
	}
	ac.lru.MoveToFront(el)
	ac.hits.Add(1)
	return e
}

// putMask hands a freshly filled filter bitmap to the cache. It reports
// whether the cache took ownership — false when the table version moved
// while the scan was filling (the artifact may be torn relative to the new
// state) or when the artifact alone exceeds the cache bound.
func (ac *ArtifactCache) putMask(fd *FactData, version uint64, fp string, m *bitset.Set) bool {
	if fd.version.Load() != version {
		return false
	}
	return ac.put(&artifactEntry{key: maskKey(fd, fp), version: version, mask: m,
		bytes: int64(m.Len()/8 + 16)})
}

// putPredMask hands a freshly filled per-predicate bitmap to the cache
// likewise.
func (ac *ArtifactCache) putPredMask(fd *FactData, version uint64, fp string, m *bitset.Set) bool {
	if fd.version.Load() != version {
		return false
	}
	return ac.put(&artifactEntry{key: predKey(fd, fp), version: version, mask: m,
		bytes: int64(m.Len()/8 + 16)})
}

// putCol hands a freshly filled key column to the cache likewise.
func (ac *ArtifactCache) putCol(fd *FactData, version uint64, fp string, col []int32) bool {
	if fd.version.Load() != version {
		return false
	}
	return ac.put(&artifactEntry{key: colKey(fd, fp), version: version, col: col,
		bytes: int64(4*len(col) + 16)})
}

// admitLocked is the doorkeeper verdict for one composite key: true once
// the key has been offered before (this offer then counts as the repeat
// that keeps it hot), false on first sight — the offer is recorded so the
// next one admits. Callers hold ac.mu.
func (ac *ArtifactCache) admitLocked(key string) bool {
	if _, ok := ac.doorCur[key]; ok {
		return true
	}
	if _, ok := ac.doorOld[key]; ok {
		ac.doorCur[key] = struct{}{} // keep hot keys in the fresh generation
		return true
	}
	if len(ac.doorCur) >= ac.doorCap {
		ac.doorOld = ac.doorCur
		ac.doorCur = map[string]struct{}{}
	}
	ac.doorCur[key] = struct{}{}
	return false
}

func (ac *ArtifactCache) put(e *artifactEntry) bool {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	if e.bytes > ac.max { // checked under the lock: max is mutable via Resize
		return false
	}
	if !ac.admitLocked(e.key) {
		// First offer of this fingerprint: the doorkeeper turns it away so
		// one-off filters cannot evict hot artifacts; the caller keeps
		// ownership (the buffer returns to the scan pools).
		ac.doorkept.Add(1)
		return false
	}
	if el, ok := ac.entries[e.key]; ok {
		// A concurrent scan raced us to the insert; keep the existing entry
		// (both were built at the same version, so they are identical) and
		// let the caller pool its copy.
		if el.Value.(*artifactEntry).version == e.version {
			return false
		}
		ac.removeLocked(el)
	}
	ac.entries[e.key] = ac.lru.PushFront(e)
	ac.bytes += e.bytes
	for ac.bytes > ac.max {
		oldest := ac.lru.Back()
		if oldest == nil {
			break
		}
		ac.removeLocked(oldest)
		ac.evictions.Add(1)
	}
	return true
}

// Resize retunes the cache's byte budget at runtime — the adaptive
// tuner's hit-rate knob — evicting least-recently-used entries
// immediately when shrinking below the current footprint. A no-op on a
// nil cache or a non-positive budget (a disabled cache stays disabled).
func (ac *ArtifactCache) Resize(maxBytes int64) {
	if ac == nil || maxBytes <= 0 {
		return
	}
	ac.mu.Lock()
	defer ac.mu.Unlock()
	ac.max = maxBytes
	for ac.bytes > ac.max {
		oldest := ac.lru.Back()
		if oldest == nil {
			break
		}
		ac.removeLocked(oldest)
		ac.evictions.Add(1)
	}
}

// removeLocked unlinks an entry. Callers hold ac.mu. The payload is left
// to the GC — in-flight scans may still be reading it.
func (ac *ArtifactCache) removeLocked(el *list.Element) {
	e := el.Value.(*artifactEntry)
	ac.lru.Remove(el)
	delete(ac.entries, e.key)
	ac.bytes -= e.bytes
}

// ArtifactCacheStats is a point-in-time snapshot of a cache's counters.
type ArtifactCacheStats struct {
	// Hits/Misses count artifact lookups; Stale counts misses caused by a
	// table-version bump (AddFact or member mutation) since the artifact
	// was built.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Stale  int64 `json:"stale"`
	// Doorkept counts artifacts turned away by the admission doorkeeper
	// (their fingerprint had only been offered once); they stay scan-
	// scoped and pooled, and a repeat offer admits.
	Doorkept int64 `json:"doorkept"`
	// Entries/Bytes is the current footprint; Evictions counts entries
	// displaced by the byte bound.
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the cache counters (zero value from a nil cache).
func (ac *ArtifactCache) Stats() ArtifactCacheStats {
	if ac == nil {
		return ArtifactCacheStats{}
	}
	st := ArtifactCacheStats{
		Hits:      ac.hits.Load(),
		Misses:    ac.misses.Load(),
		Stale:     ac.stale.Load(),
		Doorkept:  ac.doorkept.Load(),
		Evictions: ac.evictions.Load(),
	}
	ac.mu.Lock()
	st.Entries = len(ac.entries)
	st.Bytes = ac.bytes
	ac.mu.Unlock()
	return st
}

// add folds another cache's snapshot in (the shard table aggregates its
// per-shard caches this way).
func (s *ArtifactCacheStats) Add(o ArtifactCacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Stale += o.Stale
	s.Doorkept += o.Doorkept
	s.Entries += o.Entries
	s.Bytes += o.Bytes
	s.Evictions += o.Evictions
}

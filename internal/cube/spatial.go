package cube

import (
	"fmt"

	"sdwp/internal/geoidx"
	"sdwp/internal/geom"
)

// This file provides the spatial access paths the personalization engine's
// rule evaluator uses: radius queries over level members and layer objects
// (with lazily built R-trees over point data) and generic iteration.

// ensurePointIndex builds (once) an R-tree point index over the level's
// geometries if they are all points; non-point or missing geometries keep
// the level unindexed and queries fall back to scans.
func (ld *LevelData) ensurePointIndex() *geoidx.PointIndex {
	if ld.ptIndex != nil {
		return ld.ptIndex
	}
	if ld.geoms == nil || len(ld.geoms) != ld.Len() {
		return nil
	}
	pts := make([]geom.Point, len(ld.geoms))
	for i, g := range ld.geoms {
		p, ok := g.(geom.Point)
		if !ok {
			return nil
		}
		pts[i] = p
	}
	ld.ptIndex = geoidx.NewPointIndex(pts)
	return ld.ptIndex
}

// MembersWithinKm calls fn for every member of the level whose geometry
// lies within radiusKm kilometres of center (geodetic). Point levels use an
// R-tree; other geometries use exact geodetic distance on a scan.
func (c *Cube) MembersWithinKm(dim, level string, center geom.Geometry, radiusKm float64, fn func(member int32) bool) error {
	ld, err := c.levelData(dim, level)
	if err != nil {
		return err
	}
	if ld.geoms == nil {
		return fmt.Errorf("cube: level %s.%s has no geometry", dim, level)
	}
	cp, centerIsPt := center.(geom.Point)
	if centerIsPt {
		if idx := ld.ensurePointIndex(); idx != nil {
			idx.WithinKm(cp, radiusKm, fn)
			return nil
		}
	}
	for i := int32(0); int(i) < ld.Len(); i++ {
		g := ld.geoms[i]
		if g == nil {
			continue
		}
		if geom.GeodeticDistance(center, g) <= radiusKm {
			if !fn(i) {
				return nil
			}
		}
	}
	return nil
}

// LayerObjectsWithinKm calls fn for every object of a catalog layer within
// radiusKm kilometres of center.
func (c *Cube) LayerObjectsWithinKm(layer string, center geom.Geometry, radiusKm float64, fn func(obj int32) bool) error {
	ld := c.layers[layer]
	if ld == nil {
		return fmt.Errorf("cube: unknown layer %q", layer)
	}
	cp, centerIsPt := center.(geom.Point)
	if centerIsPt && ld.layer.Geom == geom.TypePoint {
		if ld.ptIndex == nil {
			pts := make([]geom.Point, len(ld.geoms))
			for i, g := range ld.geoms {
				pts[i] = g.(geom.Point)
			}
			ld.ptIndex = geoidx.NewPointIndex(pts)
		}
		ld.ptIndex.WithinKm(cp, radiusKm, fn)
		return nil
	}
	for i := int32(0); int(i) < ld.Len(); i++ {
		if geom.GeodeticDistance(center, ld.geoms[i]) <= radiusKm {
			if !fn(i) {
				return nil
			}
		}
	}
	return nil
}

// NearestLayerObjectKm returns the index of the layer object geodetically
// nearest to center and its distance in kilometres; returns -1 for an empty
// layer.
func (c *Cube) NearestLayerObjectKm(layer string, center geom.Geometry) (int32, float64, error) {
	ld := c.layers[layer]
	if ld == nil {
		return -1, 0, fmt.Errorf("cube: unknown layer %q", layer)
	}
	best := int32(-1)
	bestD := 0.0
	for i := int32(0); int(i) < ld.Len(); i++ {
		d := geom.GeodeticDistance(center, ld.geoms[i])
		if best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD, nil
}

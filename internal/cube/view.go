package cube

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sdwp/internal/bitset"
)

// View is a personalized window over a cube: the accumulated effect of the
// paper's SelectInstance actions in one analysis session. A nil mask means
// "everything visible" (bitset's nil-as-universe convention).
//
// Selections compose by union within a level (repeated SelectInstance calls
// "also add" instances, per Example 5.3) and by intersection across levels
// and with the fact mask (a fact is visible only if every constrained
// coordinate is selected).
//
// A View is safe for concurrent use: queries (serial, parallel and batch
// executors) may run while the session mutates the view through new
// selections. A query that races with a selection sees either the view
// before or after that selection — never a torn state — because executors
// work from the materialized snapshot mask taken at query start.
type View struct {
	cube *Cube
	// id is process-unique: result caches key entries by (view id, epoch)
	// so entries of a dead view can never alias a new one.
	id uint64

	// mu guards all mutable state below. Materialized snapshots are built
	// and replaced under the lock and never mutated in place afterwards,
	// so queries can iterate them lock-free. Level/fact masks returned by
	// the accessors are live sets: they must not be read concurrently
	// with new selections on the same view.
	mu sync.RWMutex
	// epoch counts selections applied to this view. Every mutation bumps
	// it, so an (id, epoch) pair names one immutable state of the view —
	// the invalidation key of the scheduler's result cache.
	epoch uint64
	// levelMasks maps "Dim.Level" to the selected members of that level.
	levelMasks map[string]*bitset.Set
	// factMasks maps fact names to directly selected fact instances.
	factMasks map[string]*bitset.Set
	// materialized caches the per-fact combination of all masks so queries
	// iterate only visible facts; invalidated on every new selection.
	materialized map[string]*bitset.Set
}

// viewSeq issues process-unique view ids.
var viewSeq atomic.Uint64

// NewView returns an unrestricted view over the cube.
func NewView(c *Cube) *View {
	return &View{
		cube:       c,
		id:         viewSeq.Add(1),
		levelMasks: map[string]*bitset.Set{},
		factMasks:  map[string]*bitset.Set{},
	}
}

// Cube returns the underlying cube.
func (v *View) Cube() *Cube { return v.cube }

// ID returns the view's process-unique identity.
func (v *View) ID() uint64 { return v.id }

// Epoch returns the view's mutation counter. Two reads returning the same
// value bracket a window in which no selection was applied, so any result
// computed from the view in between reflects exactly that state — the
// property the scheduler's result cache relies on.
func (v *View) Epoch() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.epoch
}

func levelKey(dim, level string) string { return dim + "." + level }

// SelectMember adds one member of a level to the view's selection. The
// first selection on a level restricts the level to exactly the selected
// members; later selections extend the set.
func (v *View) SelectMember(dim, level string, member int32) error {
	ld, err := v.cube.levelData(dim, level)
	if err != nil {
		return err
	}
	if member < 0 || int(member) >= ld.Len() {
		return fmt.Errorf("cube: member %d out of range for %s.%s", member, dim, level)
	}
	key := levelKey(dim, level)
	v.mu.Lock()
	defer v.mu.Unlock()
	m := v.levelMasks[key]
	if m == nil {
		m = bitset.New(ld.Len())
		v.levelMasks[key] = m
	}
	if m.Test(int(member)) {
		// Re-selecting an already-selected member changes nothing: keep
		// the epoch (and every cached result keyed by it) valid.
		return nil
	}
	m.Set(int(member))
	v.epoch++
	v.materialized = nil
	return nil
}

// SelectFact adds one fact instance to the view's fact selection.
func (v *View) SelectFact(fact string, idx int32) error {
	fd := v.cube.facts[fact]
	if fd == nil {
		return fmt.Errorf("cube: unknown fact %q", fact)
	}
	if idx < 0 || int(idx) >= fd.n {
		return fmt.Errorf("cube: fact index %d out of range for %q", idx, fact)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	m := v.factMasks[fact]
	if m == nil {
		m = bitset.New(fd.n)
		v.factMasks[fact] = m
	}
	if m.Test(int(idx)) {
		return nil // no-op re-selection, see SelectMember
	}
	m.Set(int(idx))
	v.epoch++
	v.materialized = nil
	return nil
}

// Materialize returns the combined per-fact visibility mask for one fact
// table (nil when the view leaves that fact unrestricted). The result is
// cached until the next selection, so the per-query cost of a personalized
// view is one bitset iteration instead of per-fact mask checks. The
// returned set is an immutable snapshot: later selections build a new one.
func (v *View) Materialize(fact string) *bitset.Set {
	fd := v.cube.facts[fact]
	if fd == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.restrictsLocked(fd) {
		return nil
	}
	if m, ok := v.materialized[fact]; ok {
		return m
	}
	// Start from the direct fact mask (or everything), then intersect one
	// dimension at a time. Each level mask is first pushed down to the
	// dimension's finest level — one hierarchy climb per *member* — so the
	// per-fact work is a single bitset test per constrained dimension.
	var m *bitset.Set
	if fm := v.factMasks[fact]; fm != nil {
		m = fm.Clone()
	} else {
		m = bitset.Full(fd.n)
	}
	for key, mask := range v.levelMasks {
		dim, level := splitKey(key)
		dd := v.cube.dims[dim]
		if dd == nil || !fd.fact.HasDimension(dim) {
			continue
		}
		li := dd.dim.LevelIndex(level)
		if li < 0 {
			continue
		}
		finest := dd.levels[0]
		allowed := bitset.New(finest.Len())
		for j := int32(0); int(j) < finest.Len(); j++ {
			if anc := dd.Ancestor(0, li, j); anc != NoParent && mask.Test(int(anc)) {
				allowed.Set(int(j))
			}
		}
		keys := fd.dimKeys[dim]
		m.ForEach(func(i int) bool {
			if !allowed.Test(int(keys[i])) {
				m.Clear(i)
			}
			return true
		})
	}
	if v.materialized == nil {
		v.materialized = map[string]*bitset.Set{}
	}
	v.materialized[fact] = m
	return m
}

// restrictsLocked reports whether any selection constrains the fact.
// Callers hold v.mu.
func (v *View) restrictsLocked(fd *FactData) bool {
	if v.factMasks[fd.fact.Name] != nil {
		return true
	}
	for key := range v.levelMasks {
		dim, _ := splitKey(key)
		if v.cube.dims[dim] != nil && fd.fact.HasDimension(dim) {
			return true
		}
	}
	return false
}

// LevelMask returns the mask for a level (nil = unrestricted). The
// returned set is live: do not read it concurrently with new selections.
func (v *View) LevelMask(dim, level string) *bitset.Set {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.levelMasks[levelKey(dim, level)]
}

// FactMask returns the mask for a fact (nil = unrestricted).
func (v *View) FactMask(fact string) *bitset.Set {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.factMasks[fact]
}

// Restricted reports whether any selection has been applied.
func (v *View) Restricted() bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.levelMasks) > 0 || len(v.factMasks) > 0
}

// MemberVisible reports whether a member passes the view's mask for its
// level (unrestricted levels pass everything).
func (v *View) MemberVisible(dim, level string, member int32) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	m := v.levelMasks[levelKey(dim, level)]
	if m == nil {
		return true
	}
	return m.Test(int(member))
}

// FactVisible reports whether fact instance idx passes the fact mask and
// every level mask (its coordinates' ancestors must be selected at each
// constrained level).
func (v *View) FactVisible(fact string, idx int32) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.factVisibleLocked(fact, idx)
}

func (v *View) factVisibleLocked(fact string, idx int32) bool {
	fd := v.cube.facts[fact]
	if fd == nil {
		return false
	}
	if m := v.factMasks[fact]; m != nil && !m.Test(int(idx)) {
		return false
	}
	for key, mask := range v.levelMasks {
		dim, level := splitKey(key)
		dd := v.cube.dims[dim]
		if dd == nil || !fd.fact.HasDimension(dim) {
			continue
		}
		li := dd.dim.LevelIndex(level)
		if li < 0 {
			continue
		}
		anc := dd.Ancestor(0, li, fd.dimKeys[dim][idx])
		if anc == NoParent || !mask.Test(int(anc)) {
			return false
		}
	}
	return true
}

func splitKey(key string) (dim, level string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '.' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}

// VisibleFactCount counts the fact instances visible through the view.
func (v *View) VisibleFactCount(fact string) int {
	fd := v.cube.facts[fact]
	if fd == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	if len(v.levelMasks) == 0 && len(v.factMasks) == 0 {
		return fd.n
	}
	n := 0
	for i := int32(0); int(i) < fd.n; i++ {
		if v.factVisibleLocked(fact, i) {
			n++
		}
	}
	return n
}

// Clone returns an independent copy of the view's masks under a fresh view
// identity (cached results of the original never alias the clone).
func (v *View) Clone() *View {
	c := NewView(v.cube)
	v.mu.RLock()
	defer v.mu.RUnlock()
	c.epoch = v.epoch
	for k, m := range v.levelMasks {
		c.levelMasks[k] = m.Clone()
	}
	for k, m := range v.factMasks {
		c.factMasks[k] = m.Clone()
	}
	return c
}

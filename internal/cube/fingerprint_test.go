package cube_test

import (
	"reflect"
	"testing"

	"sdwp/internal/cube"
	"sdwp/internal/datagen"
)

// TestFingerprintDistinguishesPlans checks that every field of a Query
// feeds the fingerprint: mutating any one of them must change the key,
// while an identical copy must not.
func TestFingerprintDistinguishesPlans(t *testing.T) {
	base := cube.Query{
		Fact:       "Sales",
		GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: "City"}},
		Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}},
		Filters: []cube.AttrFilter{{
			LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
			Attr:     "population", Op: cube.OpGt, Value: float64(1000),
		}},
		OrderBy: &cube.OrderBy{Agg: 0, Desc: true},
		Limit:   5,
	}
	if got, want := base.Fingerprint(), base.Fingerprint(); got != want {
		t.Fatalf("fingerprint not deterministic: %q vs %q", got, want)
	}
	copyQ := base
	copyQ.GroupBy = append([]cube.LevelRef(nil), base.GroupBy...)
	if copyQ.Fingerprint() != base.Fingerprint() {
		t.Error("structural copy fingerprints differ")
	}

	mutations := map[string]func(q *cube.Query){
		"fact":         func(q *cube.Query) { q.Fact = "Returns" },
		"group-level":  func(q *cube.Query) { q.GroupBy = []cube.LevelRef{{Dimension: "Store", Level: "State"}} },
		"group-extra":  func(q *cube.Query) { q.GroupBy = append(q.GroupBy, cube.LevelRef{Dimension: "Time", Level: "Year"}) },
		"agg-fn":       func(q *cube.Query) { q.Aggregates = []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggAvg}} },
		"agg-measure":  func(q *cube.Query) { q.Aggregates = []cube.MeasureAgg{{Measure: "StoreCost", Agg: cube.AggSum}} },
		"filter-op":    func(q *cube.Query) { q.Filters[0].Op = cube.OpLt },
		"filter-value": func(q *cube.Query) { q.Filters[0].Value = float64(2000) },
		"filter-type":  func(q *cube.Query) { q.Filters[0].Value = "1000" },
		"filter-none":  func(q *cube.Query) { q.Filters = nil },
		"order-dir":    func(q *cube.Query) { q.OrderBy = &cube.OrderBy{Agg: 0, Desc: false} },
		"order-none":   func(q *cube.Query) { q.OrderBy = nil },
		"limit":        func(q *cube.Query) { q.Limit = 6 },
		"limit-zero":   func(q *cube.Query) { q.Limit = 0 },
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, mutate := range mutations {
		q := base
		q.Filters = append([]cube.AttrFilter(nil), base.Filters...)
		mutate(&q)
		fp := q.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutation %q collides with %q: %q", name, prev, fp)
		}
		seen[fp] = name
	}
}

// TestFingerprintNoBoundaryCollisions targets the classic concatenation
// pitfall: field contents shifting across separators must not produce the
// same key.
func TestFingerprintNoBoundaryCollisions(t *testing.T) {
	a := cube.Query{Fact: "S", GroupBy: []cube.LevelRef{{Dimension: "ab", Level: "c"}}}
	b := cube.Query{Fact: "S", GroupBy: []cube.LevelRef{{Dimension: "a", Level: "bc"}}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Errorf("boundary collision: %q", a.Fingerprint())
	}
}

// TestFilterFingerprintOrderInsensitive checks the filter-set
// sub-fingerprint: the batch executor's sharing key must be identical for
// reordered but equal filter sets (a conjunction is order-insensitive)
// and distinct for genuinely different sets.
func TestFilterFingerprintOrderInsensitive(t *testing.T) {
	pop := cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
		Attr: "population", Op: cube.OpGt, Value: float64(1000)}
	age := cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: "Customer", Level: "Customer"},
		Attr: "age", Op: cube.OpLe, Value: float64(40)}
	q := func(fs ...cube.AttrFilter) cube.Query { return cube.Query{Fact: "Sales", Filters: fs} }

	if got, want := q(pop, age).FilterFingerprint(), q(age, pop).FilterFingerprint(); got != want {
		t.Errorf("reordered filter sets do not share: %q vs %q", got, want)
	}
	if q().FilterFingerprint() != "" {
		t.Errorf("empty filter set fingerprints to %q, want \"\"", q().FilterFingerprint())
	}
	// Reordering must share the key, but the full plan fingerprint stays
	// order-sensitive (separate cache entries).
	if q(pop, age).Fingerprint() == q(age, pop).Fingerprint() {
		t.Error("plan fingerprint became order-insensitive")
	}
}

// TestFilterFingerprintCollisionResistance checks injectivity across
// filter orderings and field boundaries: distinct filter sets must never
// collide, including sets whose concatenated fields would align and
// multisets that differ only in repetition.
func TestFilterFingerprintCollisionResistance(t *testing.T) {
	mk := func(dim, level, attr string, op cube.FilterOp, v any) cube.AttrFilter {
		return cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: dim, Level: level},
			Attr: attr, Op: op, Value: v}
	}
	a := mk("Store", "City", "population", cube.OpGt, float64(1000))
	b := mk("Customer", "Customer", "age", cube.OpLe, float64(40))
	c := mk("Product", "Product", "brand", cube.OpEq, "Brand01")

	sets := map[string][]cube.AttrFilter{
		"a":          {a},
		"b":          {b},
		"ab":         {a, b},
		"abc":        {a, b, c},
		"aa":         {a, a}, // multiset: repetition matters
		"boundary-1": {mk("ab", "c", "x", cube.OpEq, "y")},
		"boundary-2": {mk("a", "bc", "x", cube.OpEq, "y")},
		"value-type": {mk("Store", "City", "population", cube.OpGt, "1000")},
		"op":         {mk("Store", "City", "population", cube.OpLt, float64(1000))},
	}
	seen := map[string]string{}
	for name, fs := range sets {
		fp := cube.Query{Fact: "Sales", Filters: fs}.FilterFingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("filter sets %q and %q collide: %q", name, prev, fp)
		}
		seen[fp] = name
	}
	// Every permutation of a 3-filter set shares one key.
	want := cube.Query{Fact: "Sales", Filters: []cube.AttrFilter{a, b, c}}.FilterFingerprint()
	for _, perm := range [][]cube.AttrFilter{{a, c, b}, {b, a, c}, {b, c, a}, {c, a, b}, {c, b, a}} {
		if got := (cube.Query{Fact: "Sales", Filters: perm}).FilterFingerprint(); got != want {
			t.Errorf("permutation fingerprints differ: %q vs %q", got, want)
		}
	}
}

// TestLevelRefFingerprint checks the grouping sub-fingerprint: distinct
// (dimension, level) pairs get distinct keys, including across the
// dimension/level boundary.
func TestLevelRefFingerprint(t *testing.T) {
	refs := []cube.LevelRef{
		{Dimension: "Store", Level: "City"},
		{Dimension: "Store", Level: "State"},
		{Dimension: "City", Level: "Store"},
		{Dimension: "ab", Level: "c"},
		{Dimension: "a", Level: "bc"},
	}
	seen := map[string]cube.LevelRef{}
	for _, r := range refs {
		fp := r.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%v and %v collide: %q", r, prev, fp)
		}
		seen[fp] = r
	}
	r := cube.LevelRef{Dimension: "Store", Level: "City"}
	if r.Fingerprint() != (cube.LevelRef{Dimension: "Store", Level: "City"}).Fingerprint() {
		t.Error("equal groupings fingerprint differently")
	}
}

// TestExecuteBatchCompiled checks the precompiled batch path: identical
// results to ExecuteBatch, and rejection of nil or foreign-cube plans.
func TestExecuteBatchCompiled(t *testing.T) {
	cfg := datagen.Config{
		Seed: 1, States: 3, Cities: 6, Stores: 12, Customers: 10,
		Products: 8, Days: 10, Sales: 200,
		AirportEvery: 3, TrainLines: 2, Hospitals: 2, Highways: 1,
	}
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs := []cube.Query{
		{Fact: "Sales", Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}},
		{Fact: "Sales", GroupBy: []cube.LevelRef{{Dimension: "Store", Level: "City"}},
			Aggregates: []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}}},
	}
	cqs := make([]*cube.CompiledQuery, len(qs))
	for i, q := range qs {
		cq, err := ds.Cube.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cq.Query(), q) {
			t.Errorf("compiled plan %d reports query %+v, want %+v", i, cq.Query(), q)
		}
		cqs[i] = cq
	}
	want, err := ds.Cube.ExecuteBatch(qs, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.Cube.ExecuteBatchCompiled(cqs, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("compiled batch differs from ExecuteBatch")
	}

	if _, err := ds.Cube.ExecuteBatchCompiled([]*cube.CompiledQuery{cqs[0], nil}, nil, 1); err == nil {
		t.Error("nil compiled entry accepted")
	}
	if _, err := ds.Cube.ExecuteBatchCompiled(cqs, make([]*cube.View, 1), 1); err == nil {
		t.Error("view-length mismatch accepted")
	}
	other, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := other.Cube.Compile(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Cube.ExecuteBatchCompiled([]*cube.CompiledQuery{foreign}, nil, 1); err == nil {
		t.Error("plan compiled for another cube accepted")
	}
	if _, err := ds.Cube.Compile(cube.Query{Fact: "Ghost",
		Aggregates: []cube.MeasureAgg{{Agg: cube.AggCount}}}); err == nil {
		t.Error("Compile accepted unknown fact")
	}
	if _, err := ds.Cube.Compile(cube.Query{Fact: "Sales"}); err == nil {
		t.Error("Compile accepted query without aggregates")
	}
}

// TestViewEpochAndID checks the cache-key substrate: ids are unique, the
// epoch bumps on every selection (member and fact), and clones get fresh
// identities.
func TestViewEpochAndID(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Seed: 1, States: 3, Cities: 6, Stores: 12, Customers: 10,
		Products: 8, Days: 10, Sales: 200,
		AirportEvery: 3, TrainLines: 2, Hospitals: 2, Highways: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	v1 := cube.NewView(ds.Cube)
	v2 := cube.NewView(ds.Cube)
	if v1.ID() == v2.ID() {
		t.Fatalf("view ids collide: %d", v1.ID())
	}
	if v1.Epoch() != 0 {
		t.Fatalf("fresh view epoch = %d, want 0", v1.Epoch())
	}
	if err := v1.SelectMember("Store", "City", 0); err != nil {
		t.Fatal(err)
	}
	if v1.Epoch() != 1 {
		t.Fatalf("epoch after member selection = %d, want 1", v1.Epoch())
	}
	if err := v1.SelectFact("Sales", 0); err != nil {
		t.Fatal(err)
	}
	if v1.Epoch() != 2 {
		t.Fatalf("epoch after fact selection = %d, want 2", v1.Epoch())
	}
	// Failed selections must not bump the epoch.
	if err := v1.SelectMember("Store", "City", 10_000); err == nil {
		t.Fatal("out-of-range member accepted")
	}
	if v1.Epoch() != 2 {
		t.Fatalf("epoch after failed selection = %d, want 2", v1.Epoch())
	}
	c := v1.Clone()
	if c.ID() == v1.ID() {
		t.Error("clone shares the original's id")
	}
	if c.Epoch() != v1.Epoch() {
		t.Errorf("clone epoch = %d, want %d", c.Epoch(), v1.Epoch())
	}
}

// TestAttrFilterFingerprint checks the per-predicate sub-fingerprint:
// every field feeds it, boundary shifts cannot collide, and equal
// predicates share one key.
func TestAttrFilterFingerprint(t *testing.T) {
	mk := func(dim, level, attr string, op cube.FilterOp, v any) cube.AttrFilter {
		return cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: dim, Level: level},
			Attr: attr, Op: op, Value: v}
	}
	base := mk("Store", "City", "population", cube.OpGt, float64(1000))
	if base.Fingerprint() != mk("Store", "City", "population", cube.OpGt, float64(1000)).Fingerprint() {
		t.Error("equal predicates fingerprint differently")
	}
	variants := map[string]cube.AttrFilter{
		"dimension":  mk("Customer", "City", "population", cube.OpGt, float64(1000)),
		"level":      mk("Store", "State", "population", cube.OpGt, float64(1000)),
		"attr":       mk("Store", "City", "area", cube.OpGt, float64(1000)),
		"op":         mk("Store", "City", "population", cube.OpLt, float64(1000)),
		"value":      mk("Store", "City", "population", cube.OpGt, float64(2000)),
		"value-type": mk("Store", "City", "population", cube.OpGt, "1000"),
		"boundary-1": mk("ab", "c", "x", cube.OpEq, "y"),
		"boundary-2": mk("a", "bc", "x", cube.OpEq, "y"),
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, f := range variants {
		fp := f.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("predicate %q collides with %q: %q", name, prev, fp)
		}
		seen[fp] = name
	}
}

// TestFilterFingerprintDerivedFromPredicates pins the satellite fix: the
// filter-set keyspace is DERIVED from the per-predicate keyspace
// (CombinePredicateFingerprints over sorted AttrFilter.Fingerprint
// values), so the two can never disagree — the set key of {A, B} is a
// pure function of A's and B's predicate keys, in any order.
func TestFilterFingerprintDerivedFromPredicates(t *testing.T) {
	pop := cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
		Attr: "population", Op: cube.OpGt, Value: float64(1000)}
	age := cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: "Customer", Level: "Customer"},
		Attr: "age", Op: cube.OpLe, Value: float64(40)}
	brand := cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: "Product", Level: "Product"},
		Attr: "brand", Op: cube.OpEq, Value: "Brand01"}

	for _, set := range [][]cube.AttrFilter{
		{pop}, {pop, age}, {age, pop}, {brand, pop, age}, {pop, pop},
	} {
		fps := make([]string, len(set))
		for i, f := range set {
			fps[i] = f.Fingerprint()
		}
		want := cube.CombinePredicateFingerprints(fps)
		got := cube.Query{Fact: "Sales", Filters: set}.FilterFingerprint()
		if got != want {
			t.Errorf("set key not derived from predicate keys: got %q, want %q", got, want)
		}
	}

	// CombinePredicateFingerprints itself: order-insensitive, repetition-
	// and boundary-sensitive, and it must not mutate its input.
	in := []string{"zz", "aa"}
	if cube.CombinePredicateFingerprints(in) != cube.CombinePredicateFingerprints([]string{"aa", "zz"}) {
		t.Error("combine is order-sensitive")
	}
	if in[0] != "zz" {
		t.Error("combine mutated its input slice")
	}
	if cube.CombinePredicateFingerprints([]string{"aa"}) == cube.CombinePredicateFingerprints([]string{"aa", "aa"}) {
		t.Error("combine ignores repetition")
	}
	if cube.CombinePredicateFingerprints([]string{"ab", "c"}) == cube.CombinePredicateFingerprints([]string{"a", "bc"}) {
		t.Error("combine has boundary collisions")
	}
}

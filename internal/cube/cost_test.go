package cube_test

// Conservation tests for shared-scan cost attribution: summing the
// per-query Cost vectors of a batch must reproduce the batch's measured
// totals exactly — artifact bytes against SharingStats.BitmapBytesBuilt /
// KeyColBytesBuilt, and the scan counters against the Result's own
// ScannedFacts/MatchedFacts — in every sharing mode and with packed
// columns on and off. Attribution that leaks or double-counts shows up
// here as a broken sum.

import (
	"fmt"
	"testing"

	"sdwp/internal/cube"
	"sdwp/internal/datagen"
)

// costTestBatch builds a batch with overlapping filter sets and repeated
// groupings so the staged scan materializes shared bitmaps and key
// columns (several queries per artifact, enough mass to pay for staging).
func costTestBatch() []cube.Query {
	shared := cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: "Store", Level: "City"},
		Attr: "population", Op: cube.OpGt, Value: float64(100000)}
	young := cube.AttrFilter{LevelRef: cube.LevelRef{Dimension: "Customer", Level: "Customer"},
		Attr: "age", Op: cube.OpLe, Value: float64(35)}
	agg := []cube.MeasureAgg{{Measure: "UnitSales", Agg: cube.AggSum}}
	var qs []cube.Query
	for _, fs := range [][]cube.AttrFilter{nil, {shared}, {shared, young}} {
		for _, level := range []string{"City", "State"} {
			qs = append(qs, cube.Query{Fact: "Sales",
				GroupBy:    []cube.LevelRef{{Dimension: "Store", Level: level}},
				Aggregates: agg, Filters: fs})
		}
	}
	return qs
}

// checkCostConservation asserts the attribution sums for one executed
// batch against its sharing stats and per-result scan counters.
func checkCostConservation(t *testing.T, label string, res []*cube.Result, stats cube.SharingStats) {
	t.Helper()
	var bitmap, keyCol, saved int64
	for i, r := range res {
		c := r.Cost
		if c.FactsScanned != int64(r.ScannedFacts) {
			t.Errorf("%s query %d: Cost.FactsScanned %d != ScannedFacts %d",
				label, i, c.FactsScanned, r.ScannedFacts)
		}
		if c.FactsMatched != int64(r.MatchedFacts) {
			t.Errorf("%s query %d: Cost.FactsMatched %d != MatchedFacts %d",
				label, i, c.FactsMatched, r.MatchedFacts)
		}
		if want := int64(len(r.Rows)); c.CellsTouched < want {
			t.Errorf("%s query %d: CellsTouched %d < result rows %d",
				label, i, c.CellsTouched, want)
		}
		if c.BitmapBytes < 0 || c.KeyColBytes < 0 || c.SharedSavedBytes < 0 {
			t.Errorf("%s query %d: negative cost field %+v", label, i, c)
		}
		bitmap += c.BitmapBytes
		keyCol += c.KeyColBytes
		saved += c.SharedSavedBytes
	}
	if bitmap != stats.BitmapBytesBuilt {
		t.Errorf("%s: Σ BitmapBytes %d != BitmapBytesBuilt %d (leaked or double-charged)",
			label, bitmap, stats.BitmapBytesBuilt)
	}
	if keyCol != stats.KeyColBytesBuilt {
		t.Errorf("%s: Σ KeyColBytes %d != KeyColBytesBuilt %d (leaked or double-charged)",
			label, keyCol, stats.KeyColBytesBuilt)
	}
	if built := stats.BitmapBytesBuilt + stats.KeyColBytesBuilt; built > 0 && saved == 0 {
		t.Errorf("%s: artifacts were shared (%d bytes built) but no sharing discount recorded", label, built)
	}
}

// TestBatchCostConservation sweeps sharing modes × packed modes × worker
// counts over a sharing-heavy batch and pins the conservation law.
func TestBatchCostConservation(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Seed: 11, States: 5, Cities: 15, Stores: 80, Customers: 60,
		Products: 30, Days: 30, Sales: 4000,
		AirportEvery: 5, TrainLines: 4, Hospitals: 5, Highways: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := costTestBatch()
	for _, pm := range packedModes {
		for _, sm := range batchSharingModes {
			for _, workers := range []int{1, 4} {
				label := fmt.Sprintf("%s/%s/workers=%d", pm.name, sm.name, workers)
				opts := sm.opts
				opts.Workers = workers
				prev := ds.Cube.PackedColumns()
				ds.Cube.SetPackedColumns(pm.on)
				res, stats, err := ds.Cube.ExecuteBatchOpt(qs, nil, opts)
				ds.Cube.SetPackedColumns(prev)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				checkCostConservation(t, label, res, stats)
			}
		}
	}
}

// TestBatchCostChargesSharedArtifacts checks the attribution is not
// trivially zero: the default sharing mode on this batch materializes
// both bitmap and key-column artifacts and charges them out.
func TestBatchCostChargesSharedArtifacts(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Seed: 11, States: 5, Cities: 15, Stores: 80, Customers: 60,
		Products: 30, Days: 30, Sales: 4000,
		AirportEvery: 5, TrainLines: 4, Hospitals: 5, Highways: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := ds.Cube.ExecuteBatchOpt(costTestBatch(), nil, cube.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BitmapBytesBuilt == 0 && stats.KeyColBytesBuilt == 0 {
		t.Fatalf("sharing batch built no artifacts: %+v", stats)
	}
	var charged int64
	for _, r := range res {
		charged += r.Cost.BitmapBytes + r.Cost.KeyColBytes
	}
	if charged == 0 {
		t.Error("artifacts were built but no query was charged")
	}
}

// TestCachedArtifactsChargeNothing checks the cache-hit credit side: a
// repeated batch over a warm artifact cache takes its masks from the
// cache and must not charge their build cost again.
func TestCachedArtifactsChargeNothing(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Seed: 11, States: 5, Cities: 15, Stores: 80, Customers: 60,
		Products: 30, Days: 30, Sales: 4000,
		AirportEvery: 5, TrainLines: 4, Hospitals: 5, Highways: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := costTestBatch()
	ac := cube.NewArtifactCache(16 << 20)
	var last []*cube.Result
	var lastStats cube.SharingStats
	for i := 0; i < 3; i++ { // 1st doorkept, 2nd admits, 3rd hits
		last = nil
		last, lastStats, err = ds.Cube.ExecuteBatchOpt(qs, nil, cube.BatchOptions{Artifacts: ac})
		if err != nil {
			t.Fatal(err)
		}
		checkCostConservation(t, fmt.Sprintf("run %d", i), last, lastStats)
	}
	if lastStats.ArtifactCacheHits == 0 {
		t.Fatalf("third run hit no cached artifacts: %+v", lastStats)
	}
	var bitmap int64
	for _, r := range last {
		bitmap += r.Cost.BitmapBytes
	}
	if bitmap != lastStats.BitmapBytesBuilt {
		t.Errorf("cache-hit run charged %d bitmap bytes but built %d — cached artifacts must charge nothing",
			bitmap, lastStats.BitmapBytesBuilt)
	}
}

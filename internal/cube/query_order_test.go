package cube

import "testing"

func TestQueryOrderByAndLimit(t *testing.T) {
	c := testWarehouse(t)
	q := Query{
		Fact:       "Sales",
		GroupBy:    []LevelRef{{"Store", "Store"}},
		Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: AggSum}},
		OrderBy:    &OrderBy{Agg: 0, Desc: true},
	}
	res, err := c.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Store sums: s0=7, s1=2, s2=3, s3=4, s4=5 → desc: s0,s4,s3,s2,s1.
	wantOrder := []string{"s0", "s4", "s3", "s2", "s1"}
	for i, w := range wantOrder {
		if res.Rows[i].Groups[0] != w {
			t.Fatalf("row %d = %s, want %s (rows %+v)", i, res.Rows[i].Groups[0], w, res.Rows)
		}
	}
	// Ascending order.
	q.OrderBy = &OrderBy{Agg: 0}
	res, _ = c.Execute(q, nil)
	if res.Rows[0].Groups[0] != "s1" || res.Rows[4].Groups[0] != "s0" {
		t.Fatalf("asc rows = %+v", res.Rows)
	}
	// Top-2.
	q.OrderBy = &OrderBy{Agg: 0, Desc: true}
	q.Limit = 2
	res, _ = c.Execute(q, nil)
	if len(res.Rows) != 2 || res.Rows[0].Groups[0] != "s0" || res.Rows[1].Groups[0] != "s4" {
		t.Fatalf("top-2 = %+v", res.Rows)
	}
	// Limit without OrderBy keeps name order.
	q.OrderBy = nil
	q.Limit = 3
	res, _ = c.Execute(q, nil)
	if len(res.Rows) != 3 || res.Rows[0].Groups[0] != "s0" {
		t.Fatalf("limited rows = %+v", res.Rows)
	}
	// Ties break by group name: COUNT per day groups d0=3, d1=3.
	q2 := Query{
		Fact:       "Sales",
		GroupBy:    []LevelRef{{"Time", "Day"}},
		Aggregates: []MeasureAgg{{Agg: AggCount}},
		OrderBy:    &OrderBy{Agg: 0, Desc: true},
	}
	res, err = c.Execute(q2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Groups[0] != "2009-06-01" {
		t.Fatalf("tie-break rows = %+v", res.Rows)
	}
}

func TestQueryOrderByValidation(t *testing.T) {
	c := testWarehouse(t)
	if _, err := c.Execute(Query{
		Fact:       "Sales",
		Aggregates: []MeasureAgg{{Agg: AggCount}},
		OrderBy:    &OrderBy{Agg: 5},
	}, nil); err == nil {
		t.Error("out-of-range OrderBy accepted")
	}
	if _, err := c.Execute(Query{
		Fact:       "Sales",
		Aggregates: []MeasureAgg{{Agg: AggCount}},
		Limit:      -1,
	}, nil); err == nil {
		t.Error("negative limit accepted")
	}
}

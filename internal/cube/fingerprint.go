package cube

import (
	"fmt"
	"strings"
)

// Fingerprint returns a canonical textual key of the query plan: two
// queries with the same fingerprint compute the same result table over the
// same view state. The encoding is injective over the Query fields (each
// component is length- and type-tagged), so distinct plans never collide;
// it is intentionally order-sensitive on GroupBy/Aggregates/Filters —
// reordered but semantically equal queries simply occupy separate cache
// entries.
func (q Query) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "f:%d:%s", len(q.Fact), q.Fact)
	for _, g := range q.GroupBy {
		fmt.Fprintf(&b, "|g:%d:%s:%d:%s", len(g.Dimension), g.Dimension, len(g.Level), g.Level)
	}
	for _, a := range q.Aggregates {
		fmt.Fprintf(&b, "|a:%d:%d:%s", a.Agg, len(a.Measure), a.Measure)
	}
	for _, f := range q.Filters {
		v := fmt.Sprintf("%T=%v", f.Value, f.Value)
		fmt.Fprintf(&b, "|w:%d:%s:%d:%s:%d:%s:%d:%d:%s",
			len(f.Dimension), f.Dimension, len(f.Level), f.Level,
			len(f.Attr), f.Attr, f.Op, len(v), v)
	}
	if q.OrderBy != nil {
		fmt.Fprintf(&b, "|o:%d:%t", q.OrderBy.Agg, q.OrderBy.Desc)
	}
	if q.Limit != 0 {
		fmt.Fprintf(&b, "|l:%d", q.Limit)
	}
	return b.String()
}


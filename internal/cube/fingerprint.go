package cube

import (
	"fmt"
	"sort"
	"strings"
)

// Fingerprint returns a canonical textual key of the query plan: two
// queries with the same fingerprint compute the same result table over the
// same view state. The encoding is injective over the Query fields (each
// component is length- and type-tagged), so distinct plans never collide;
// it is intentionally order-sensitive on GroupBy/Aggregates/Filters —
// reordered but semantically equal queries simply occupy separate cache
// entries.
//
// The batch executor shares work at a finer grain than whole plans: see
// FilterFingerprint (the filter-set sub-fingerprint, order-insensitive)
// and LevelRef.Fingerprint (the per-grouping sub-fingerprint).
func (q Query) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "f:%d:%s", len(q.Fact), q.Fact)
	for _, g := range q.GroupBy {
		b.WriteByte('|')
		g.appendFingerprint(&b)
	}
	for _, a := range q.Aggregates {
		fmt.Fprintf(&b, "|a:%d:%d:%s", a.Agg, len(a.Measure), a.Measure)
	}
	for _, f := range q.Filters {
		b.WriteByte('|')
		f.appendFingerprint(&b)
	}
	if q.OrderBy != nil {
		fmt.Fprintf(&b, "|o:%d:%t", q.OrderBy.Agg, q.OrderBy.Desc)
	}
	if q.Limit != 0 {
		fmt.Fprintf(&b, "|l:%d", q.Limit)
	}
	return b.String()
}

// appendFingerprint writes the injective encoding of one grouping.
func (r LevelRef) appendFingerprint(b *strings.Builder) {
	fmt.Fprintf(b, "g:%d:%s:%d:%s", len(r.Dimension), r.Dimension, len(r.Level), r.Level)
}

// Fingerprint returns the injective sub-fingerprint of one (dimension,
// level) grouping: the sharing key under which the batch executor
// materializes one roll-up key column per distinct grouping in a batch.
func (r LevelRef) Fingerprint() string {
	var b strings.Builder
	r.appendFingerprint(&b)
	return b.String()
}

// appendFingerprint writes the injective encoding of one filter.
func (f AttrFilter) appendFingerprint(b *strings.Builder) {
	v := fmt.Sprintf("%T=%v", f.Value, f.Value)
	fmt.Fprintf(b, "w:%d:%s:%d:%s:%d:%s:%d:%d:%s",
		len(f.Dimension), f.Dimension, len(f.Level), f.Level,
		len(f.Attr), f.Attr, f.Op, len(v), v)
}

// Fingerprint returns the injective sub-fingerprint of one filter
// predicate: the sharing key under which the batch executor materializes
// one bitmap per distinct single AttrFilter in a batch (each query's
// filter mask is then AND-composed from its predicate bitmaps). Every
// component is length- or type-tagged, so distinct predicates never
// collide.
func (f AttrFilter) Fingerprint() string {
	var b strings.Builder
	f.appendFingerprint(&b)
	return b.String()
}

// CombinePredicateFingerprints folds per-predicate sub-fingerprints into
// the filter-set sub-fingerprint: each is length-tagged and the list is
// sorted before joining, so reordered but equal sets share one key while
// distinct sets (including multisets differing only in repetition) never
// collide. This is the single point where the set keyspace is derived
// from the predicate keyspace — the two can never disagree. The input
// slice is not modified.
func CombinePredicateFingerprints(fps []string) string {
	encs := append([]string(nil), fps...)
	sort.Strings(encs)
	var b strings.Builder
	for _, e := range encs {
		fmt.Fprintf(&b, "%d:%s", len(e), e)
	}
	return b.String()
}

// FilterFingerprint returns the injective sub-fingerprint of the query's
// filter set: the sharing key under which the batch executor caches one
// composed filter bitmap per distinct set. A filter conjunction is
// order-insensitive (the set of passing facts does not depend on
// evaluation order), so the key is derived from the per-predicate
// AttrFilter.Fingerprint values via CombinePredicateFingerprints. Queries
// without filters fingerprint to "".
func (q Query) FilterFingerprint() string {
	if len(q.Filters) == 0 {
		return ""
	}
	fps := make([]string, len(q.Filters))
	for i, f := range q.Filters {
		fps[i] = f.Fingerprint()
	}
	return CombinePredicateFingerprints(fps)
}

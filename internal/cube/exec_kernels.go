package cube

import (
	"math/bits"

	"sdwp/internal/bitset"
)

// This file is the stage-3 specialization layer: monomorphic accumulate
// kernels per (measure-op, group-shape), selected once at plan compile
// (selectKernel) instead of dispatched per fact. The generic
// accumulateFact walks the aggregate list per fact, re-testing each
// measure column for COUNT and updating sum, min and max whether the
// query asked for them or not; a plan with exactly one aggregate — the
// overwhelmingly common OLAP shape — instead runs a tight loop that
// hoists the measure column, key column and roll-up table into locals
// and performs only the one update its aggregate needs.
//
// Skipping the untouched accumulator fields is safe for byte-identical
// results: finalize reads only the field its aggregate defines (sums for
// SUM, count for COUNT/AVG, mins/maxs for MIN/MAX), and merge folds the
// untouched fields as identities (adding zero counts/sums, narrowing
// against ±Inf), so a kernel-filled partial finalizes and merges exactly
// like a generically filled one. The equivalence harness pins this
// against the unpacked serial oracle.

// kernelKind identifies one specialized accumulate loop. kernGeneric
// (the zero value) means "no specialization": the plan keeps the classic
// accumulateFact path — which is also the oracle path when packed
// execution is disabled.
type kernelKind uint8

const (
	kernGeneric kernelKind = iota
	kernSingleSum
	kernSingleCount
	kernSingleAvg
	kernSingleMin
	kernSingleMax
	kernMultiSum
	kernMultiCount
	kernMultiAvg
	kernMultiMin
	kernMultiMax
)

// selectKernel maps a plan to its accumulate kernel: one aggregate
// specializes per op, with the group shape picking the dense single-level
// variant or the hashed multi-level one (which also covers grand totals —
// zero group-by levels). Multi-aggregate plans keep the generic loop.
func selectKernel(p *queryPlan) kernelKind {
	if len(p.q.Aggregates) != 1 {
		return kernGeneric
	}
	single := len(p.groups) == 1
	switch p.q.Aggregates[0].Agg {
	case AggSum:
		if single {
			return kernSingleSum
		}
		return kernMultiSum
	case AggCount:
		if single {
			return kernSingleCount
		}
		return kernMultiCount
	case AggAvg:
		if single {
			return kernSingleAvg
		}
		return kernMultiAvg
	case AggMin:
		if single {
			return kernSingleMin
		}
		return kernMultiMin
	case AggMax:
		if single {
			return kernSingleMax
		}
		return kernMultiMax
	}
	return kernGeneric
}

// kernDrive is one scan range's hoisted kernel state: the measure column
// and the single-group key source (shared decoded column when the batch
// materialized one, else roll-up table + fact keys), loaded once per
// range instead of once per fact.
type kernDrive struct {
	col  []float64 // the aggregate's measure column (nil for COUNT)
	kc0  []int32   // shared decoded key column (nil → inline decode)
	anc  []int32
	keys []int32
	kc   [][]int32 // per-grouping shared columns for the multi shape
}

func (p *queryPlan) kernDrive(kc [][]int32) kernDrive {
	d := kernDrive{col: p.measureCols[0], kc: kc}
	if len(p.groups) == 1 {
		g := &p.groups[0]
		d.anc, d.keys = g.anc, g.keys
		if kc != nil {
			d.kc0 = kc[0]
		}
	}
	return d
}

// key is stage 2 for one fact of a single-level plan.
func (d *kernDrive) key(i int32) int32 {
	if d.kc0 != nil {
		return d.kc0[i]
	}
	return d.anc[d.keys[i]]
}

// cellFor is the dense-path cell fetch, shaped to inline into the kernel
// loops (inline budget is why the body is only the single hottest
// outcome): an existing dense cell returns directly, everything else —
// the NoParent slot and the rare create path — is one outlined call.
func (pt *partial) cellFor(a int32) *accum {
	if a >= 0 {
		if cell := pt.dense[a]; cell != nil {
			return cell
		}
	}
	return pt.cellForSlow(a)
}

// cellForSlow is cellFor's outlined tail: the NoParent slot and cell
// creation for member a (NoParent allowed).
func (pt *partial) cellForSlow(a int32) *accum {
	if a < 0 && pt.denseNone != nil {
		return pt.denseNone
	}
	pt.memberScratch[0] = a
	cell := pt.newAccum(pt.memberScratch)
	if a >= 0 {
		pt.dense[a] = cell
	} else {
		pt.denseNone = cell
	}
	return cell
}

// multiCell is the hashed-path cell fetch for multi-level (or zero-level)
// group keys — the composite-key half of accumulateFact, shared between
// the generic loop and the multi kernels.
func (pt *partial) multiCell(i int32, kc [][]int32) *accum {
	p := pt.p
	pt.keyBuf = pt.keyBuf[:0]
	for gi := range p.groups {
		var a int32
		if kc != nil && kc[gi] != nil {
			a = kc[gi][i]
		} else {
			a = p.groups[gi].decode(i)
		}
		pt.memberScratch[gi] = a
		pt.keyBuf = appendInt32(pt.keyBuf, a)
	}
	cell := pt.cells[string(pt.keyBuf)]
	if cell == nil {
		cell = pt.newAccum(pt.memberScratch)
		pt.cells[string(pt.keyBuf)] = cell
	}
	return cell
}

// accumRange folds every fact in [lo, hi) through the plan's kernel —
// the unfiltered, unmasked stage 3. Callers must only invoke it when
// p.kern != kernGeneric.
func (pt *partial) accumRange(lo, hi int, kc [][]int32) {
	d := pt.p.kernDrive(kc)
	switch pt.p.kern {
	case kernSingleSum:
		col := d.col
		for i := lo; i < hi; i++ {
			pt.cellFor(d.key(int32(i))).sums[0] += col[i]
		}
	case kernSingleCount:
		for i := lo; i < hi; i++ {
			pt.cellFor(d.key(int32(i))).count++
		}
	case kernSingleAvg:
		col := d.col
		for i := lo; i < hi; i++ {
			cell := pt.cellFor(d.key(int32(i)))
			cell.count++
			cell.sums[0] += col[i]
		}
	case kernSingleMin:
		col := d.col
		for i := lo; i < hi; i++ {
			cell := pt.cellFor(d.key(int32(i)))
			if mv := col[i]; mv < cell.mins[0] {
				cell.mins[0] = mv
			}
		}
	case kernSingleMax:
		col := d.col
		for i := lo; i < hi; i++ {
			cell := pt.cellFor(d.key(int32(i)))
			if mv := col[i]; mv > cell.maxs[0] {
				cell.maxs[0] = mv
			}
		}
	case kernMultiSum:
		col := d.col
		for i := lo; i < hi; i++ {
			pt.multiCell(int32(i), kc).sums[0] += col[i]
		}
	case kernMultiCount:
		for i := lo; i < hi; i++ {
			pt.multiCell(int32(i), kc).count++
		}
	case kernMultiAvg:
		col := d.col
		for i := lo; i < hi; i++ {
			cell := pt.multiCell(int32(i), kc)
			cell.count++
			cell.sums[0] += col[i]
		}
	case kernMultiMin:
		col := d.col
		for i := lo; i < hi; i++ {
			cell := pt.multiCell(int32(i), kc)
			if mv := col[i]; mv < cell.mins[0] {
				cell.mins[0] = mv
			}
		}
	case kernMultiMax:
		col := d.col
		for i := lo; i < hi; i++ {
			cell := pt.multiCell(int32(i), kc)
			if mv := col[i]; mv > cell.maxs[0] {
				cell.maxs[0] = mv
			}
		}
	}
}

// accumMask folds every set bit of m in [lo, hi) through the plan's
// kernel — the prefiltered stage 3, iterating mask words directly
// instead of taking a callback per fact. Bounds clamp to the mask's
// capacity exactly as ForEachRange does. Callers must only invoke it
// when p.kern != kernGeneric.
func (pt *partial) accumMask(m *bitset.Set, lo, hi int, kc [][]int32) {
	if hi > m.Len() {
		hi = m.Len()
	}
	if lo >= hi {
		return
	}
	d := pt.p.kernDrive(kc)
	words := m.Words()
	loW, hiW := lo>>6, (hi-1)>>6
	for wi := loW; wi <= hiW; wi++ {
		w := words[wi]
		if wi == loW {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if wi == hiW {
			if rem := uint(hi) & 63; rem != 0 {
				w &= uint64(1)<<rem - 1
			}
		}
		if w != 0 {
			pt.accumWord(w, int32(wi)<<6, &d)
		}
	}
}

// accumWord folds the set bits of one mask word (facts [base, base+64))
// through the kernel. The kind switch runs once per word, not per fact.
func (pt *partial) accumWord(w uint64, base int32, d *kernDrive) {
	switch pt.p.kern {
	case kernSingleSum:
		for w != 0 {
			i := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			pt.cellFor(d.key(i)).sums[0] += d.col[i]
		}
	case kernSingleCount:
		for w != 0 {
			i := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			pt.cellFor(d.key(i)).count++
		}
	case kernSingleAvg:
		for w != 0 {
			i := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			cell := pt.cellFor(d.key(i))
			cell.count++
			cell.sums[0] += d.col[i]
		}
	case kernSingleMin:
		for w != 0 {
			i := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			cell := pt.cellFor(d.key(i))
			if mv := d.col[i]; mv < cell.mins[0] {
				cell.mins[0] = mv
			}
		}
	case kernSingleMax:
		for w != 0 {
			i := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			cell := pt.cellFor(d.key(i))
			if mv := d.col[i]; mv > cell.maxs[0] {
				cell.maxs[0] = mv
			}
		}
	case kernMultiSum:
		for w != 0 {
			i := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			pt.multiCell(i, d.kc).sums[0] += d.col[i]
		}
	case kernMultiCount:
		for w != 0 {
			i := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			pt.multiCell(i, d.kc).count++
		}
	case kernMultiAvg:
		for w != 0 {
			i := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			cell := pt.multiCell(i, d.kc)
			cell.count++
			cell.sums[0] += d.col[i]
		}
	case kernMultiMin:
		for w != 0 {
			i := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			cell := pt.multiCell(i, d.kc)
			if mv := d.col[i]; mv < cell.mins[0] {
				cell.mins[0] = mv
			}
		}
	case kernMultiMax:
		for w != 0 {
			i := base + int32(bits.TrailingZeros64(w))
			w &= w - 1
			cell := pt.multiCell(i, d.kc)
			if mv := d.col[i]; mv > cell.maxs[0] {
				cell.maxs[0] = mv
			}
		}
	}
}

// accumOne folds a single already-matched fact through the plan's kernel
// — stage 3 of the fused filter path. Callers must only invoke it when
// p.kern != kernGeneric.
func (pt *partial) accumOne(i int32, kc [][]int32) {
	p := pt.p
	var cell *accum
	if pt.dense != nil {
		var a int32
		if kc != nil && kc[0] != nil {
			a = kc[0][i]
		} else {
			a = p.groups[0].decode(i)
		}
		cell = pt.cellFor(a)
	} else {
		cell = pt.multiCell(i, kc)
	}
	switch p.kern {
	case kernSingleSum, kernMultiSum:
		cell.sums[0] += p.measureCols[0][i]
	case kernSingleCount, kernMultiCount:
		cell.count++
	case kernSingleAvg, kernMultiAvg:
		cell.count++
		cell.sums[0] += p.measureCols[0][i]
	case kernSingleMin, kernMultiMin:
		if mv := p.measureCols[0][i]; mv < cell.mins[0] {
			cell.mins[0] = mv
		}
	case kernSingleMax, kernMultiMax:
		if mv := p.measureCols[0][i]; mv > cell.maxs[0] {
			cell.maxs[0] = mv
		}
	}
}

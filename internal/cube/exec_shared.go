package cube

import (
	"sync"
	"sync/atomic"
	"time"

	"sdwp/internal/bitset"
	"sdwp/internal/obs"
)

// This file is the sharing-aware batch executor: the explicit (non-fused)
// form of the three-stage pipeline in exec.go. One shared scan first
// materializes stage 1 (filter bitmaps) and stage 2 (roll-up key columns)
// as batch-scoped artifacts shared by every query whose sub-fingerprint
// matches, then runs stage 3 (accumulation) for all queries chunk by
// chunk off the shared artifacts. Queries that differ only in selection
// mask or measure — many personalized views over one fact table, the
// paper's core workload — then pay the filter evaluation and group-key
// decode once per batch instead of once per query.
//
// Artifacts are only materialized when they pay for themselves (at least
// two sharing queries whose combined visible fact mass exceeds a full
// table pass — see buildArtifacts); a query whose filter set or grouping
// is unique in the batch, or a batch of narrowly personalized views,
// keeps the fused per-fact path of exec.go and costs what PR 1's executor
// cost. Materialized artifacts are also the natural per-shard exchange
// unit once the fact table is sharded across processes.

// sharedArtifacts holds one fact group's materialized stage-1/2 results.
// Artifacts are scan-scoped and recycled through the fact table's pools
// (releaseArtifacts) — a busy scheduler materializes them thousands of
// times per second, and allocating them fresh each scan showed up as GC
// pressure that starved concurrent writers on small hosts — unless they
// came from (or were handed to) the cross-batch ArtifactCache, in which
// case the cache owns them: cached artifacts are immutable, may be read
// by several concurrent scans, and are never returned to the pools.
type sharedArtifacts struct {
	fd          *FactData
	filterMasks map[string]*bitset.Set // filter-set sub-fingerprint → bitmap
	predMasks   map[string]*bitset.Set // predicate sub-fingerprint → bitmap
	// partialMasks maps a filter-set sub-fingerprint to the AND of the
	// set's *available* predicate bitmaps only — the set's remaining
	// predicates are evaluated inline per query (queryScan.residual).
	// Partial masks are not the set's semantic mask, so they are never
	// cached and always return to the pool.
	partialMasks map[string]*bitset.Set
	keyCols      map[string][]int32 // grouping sub-fingerprint → key column
	// cacheOwned marks sub-fingerprints whose artifact the cross-batch
	// cache owns; releaseArtifacts must not pool those. One map serves all
	// three keyspaces: set fingerprints start with a digit, predicate
	// fingerprints with 'w', grouping fingerprints with 'g' — they cannot
	// collide.
	cacheOwned map[string]bool
}

// owned reports whether the artifact under key belongs to the cache.
func (a *sharedArtifacts) owned(key string) bool {
	return a.cacheOwned != nil && a.cacheOwned[key]
}

// markOwned records that the cache owns the artifact under key.
func (a *sharedArtifacts) markOwned(key string) {
	if a.cacheOwned == nil {
		a.cacheOwned = map[string]bool{}
	}
	a.cacheOwned[key] = true
}

// getKeyCol takes a recycled (or fresh) key column sized to the table.
func (fd *FactData) getKeyCol() []int32 {
	if v, ok := fd.colPool.Get().(*[]int32); ok && len(*v) == fd.n {
		return *v
	}
	return make([]int32, fd.n)
}

// getMask takes a recycled (or fresh) zeroed bitmap sized to the table.
func (fd *FactData) getMask() *bitset.Set {
	if v, ok := fd.maskPool.Get().(*bitset.Set); ok && v.Len() == fd.n {
		v.Reset()
		return v
	}
	return bitset.New(fd.n)
}

// queryScan is one query's precomputed accumulation drive: which mask to
// iterate, whether filters are pre-applied through it, and the shared key
// columns (nil entries decode inline).
type queryScan struct {
	// view is the personalized visibility mask (nil = whole table); its
	// per-chunk popcount is the query's ScannedFacts contribution.
	view *bitset.Set
	// iter is the mask accumulation iterates. With pre-applied filters it
	// is filterMask ∩ view (or partialMask ∩ view); otherwise it is view
	// and matchFact runs inline. nil iterates every fact.
	iter *bitset.Set
	// prefiltered marks that iter already encodes the filters (all of
	// them when residual is empty), so fully matched facts are counted by
	// popcount instead of per-fact evaluation.
	prefiltered bool
	// residual lists the plan's filter indices NOT encoded in iter — the
	// predicates of a partially composed mask that must still be
	// evaluated per fact (over the already-narrowed iteration domain).
	residual []int
	// keyCols holds the shared decoded key column per grouping (nil →
	// inline decode in accumulateFact).
	keyCols [][]int32
}

// scanRangeStaged is the staged counterpart of partial.scanRange: fold
// facts [lo, hi) into pt, driving stage 3 off qs's masks and key columns.
func (pt *partial) scanRangeStaged(lo, hi int, qs *queryScan) {
	if qs.prefiltered {
		// Stage 1 (or part of it) ran ahead of the scan: ScannedFacts is
		// the view's popcount (identical to the fused path, which counts
		// every visible fact it visits), and only facts passing the
		// encoded predicates are visited at all (iter is never nil here —
		// a prefiltered query always has a filter bitmap).
		if qs.view == nil {
			pt.scanned += hi - lo
		} else {
			pt.scanned += qs.view.CountRange(lo, hi)
		}
		if len(qs.residual) > 0 {
			// Partially composed mask: the residual predicates run inline
			// over the narrowed domain. MatchedFacts counts facts passing
			// the whole conjunction, exactly as the fused path does.
			qs.iter.ForEachRange(lo, hi, func(i int) bool {
				if pt.p.matchResidual(int32(i), qs.residual) {
					pt.matched++
					pt.accumulateFact(int32(i), qs.keyCols)
				}
				return true
			})
			return
		}
		pt.matched += qs.iter.CountRange(lo, hi)
		if pt.p.kern != kernGeneric {
			pt.accumMask(qs.iter, lo, hi, qs.keyCols)
			return
		}
		qs.iter.ForEachRange(lo, hi, func(i int) bool {
			pt.accumulateFact(int32(i), qs.keyCols)
			return true
		})
		return
	}
	// Filters (if any) stay fused, but stage 2 may still come from shared
	// key columns.
	fold := func(i int32) {
		pt.scanned++
		if !pt.p.matchFact(i) {
			return
		}
		pt.matched++
		pt.accumulateFact(i, qs.keyCols)
	}
	if qs.iter == nil {
		for i := lo; i < hi; i++ {
			fold(int32(i))
		}
		return
	}
	qs.iter.ForEachRange(lo, hi, func(i int) bool {
		fold(int32(i))
		return true
	})
}

// parallelFill runs fill over [0, n) with the worker pool, morsel-driven
// exactly like the scan phases (chunk bounds are word-aligned and each
// chunk is claimed by exactly one worker, so workers write disjoint
// bitmap words). workers must already be normalized.
func parallelFill(n, workers int, fill func(lo, hi int)) {
	if workers <= 1 {
		fill(0, n)
		return
	}
	chunks := chunkCount(n)
	var cur atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			forEachMorsel(&cur, chunks, n, fill)
		}()
	}
	wg.Wait()
}

// setFill is one filter-set mask being materialized this scan: composed
// from the set's available predicate bitmaps (base), with the remaining
// predicates (residual) evaluated in a refinement pass over the already-
// narrowed domain. A set with no available predicates degenerates to the
// classic full-conjunction fill.
type setFill struct {
	m        *bitset.Set
	base     []*bitset.Set // available predicate bitmaps (composed first)
	residual []*filterSpec // predicates without bitmaps, evaluated once per set
}

// refine runs the residual predicates over facts [lo, hi). With a
// composed base the mask already holds the AND of the base predicates and
// refinement clears facts failing the residue; without one it evaluates
// the residue (= the whole conjunction) into the zeroed mask.
func (sf *setFill) refine(lo, hi int) {
	if len(sf.residual) == 0 {
		return
	}
	if len(sf.base) > 0 {
		sf.m.ForEachRange(lo, hi, func(i int) bool {
			for _, fs := range sf.residual {
				if !fs.match(int32(i)) {
					sf.m.Clear(i)
					break
				}
			}
			return true
		})
		return
	}
	if fs0 := sf.residual[0]; fs0.codes != nil && fs0.pk.n >= hi {
		// No base: the mask is zero over [lo, hi), so the first residual
		// predicate can fill it with the packed word-at-a-time kernel and
		// the remaining predicates narrow the (already sparse) result.
		fs0.pk.fillMask(fs0.codes, lo, hi, sf.m)
		for _, fs := range sf.residual[1:] {
			sf.m.ForEachRange(lo, hi, func(i int) bool {
				if !fs.match(int32(i)) {
					sf.m.Clear(i)
				}
				return true
			})
		}
		return
	}
	for i := lo; i < hi; i++ {
		ok := true
		for _, fs := range sf.residual {
			if !fs.match(int32(i)) {
				ok = false
				break
			}
		}
		if ok {
			sf.m.Set(i)
		}
	}
}

// buildArtifacts materializes the filter bitmaps and key columns the fact
// group's plans share, filling them with the worker pool chunk by chunk,
// and returns them plus the batch's sharing statistics.
//
// An artifact is materialized only when it pays for itself: it needs at
// least two sharing queries, and the sharing queries' combined fact mass
// must exceed one full-table pass — a batch of narrowly personalized
// views evaluates less work fused per query than one whole-table
// materialization would cost, so it keeps the fused path. Filter masks
// weigh view-mask popcounts (stage 1 runs on every visible fact); key
// columns are decided after the filter masks are filled, so a filtered
// query weighs the popcount of its materialized filter mask rather than
// its full visible mass (stage 2 runs only on facts that passed stage 1).
// Results are byte-identical whichever way the decision goes.
//
// Stage 1 is decomposed per predicate (unless opts.DisablePredicateSharing
// reverts to whole-set granularity): each distinct single AttrFilter that
// is shared across at least two distinct filter sets materializes one
// bitmap, and set masks are AND-composed from their predicate bitmaps —
// so batches with overlapping-but-unequal filter sets ({year, regionEU}
// and {year, regionUS}) evaluate the shared predicate once instead of
// once per set. A qualifying set whose predicates are not all shared
// composes what is available and refines the residue in one pass over the
// narrowed domain; a non-qualifying set still AND-composes whatever
// predicate bitmaps exist into a partial mask and leaves the residue to
// the per-fact path (queryScan.residual).
//
// With a cross-batch cache, every distinct sub-fingerprint — composed set
// masks and predicate bitmaps alike — is first looked up by (fingerprint,
// table version): a hit is free, so it is used even by a single query,
// and freshly filled artifacts are offered to the cache (its doorkeeper
// admits only fingerprints seen across at least two scans) so the next
// batch's lookup hits. Cache-owned artifacts are immutable and bypass the
// pools.
//
// A non-nil sc receives the stage-1 (filter-mask) and stage-2 (group
// decode) wall times — two time.Now() pairs per scan, nothing per fact.
//
// A non-nil costs (len(idxs), indexed like idxs) receives each query's
// byte share of the artifacts this scan freshly materializes — see
// chargeArtifact for the split.
func buildArtifacts(idxs []int, plans []*queryPlan, masks []*bitset.Set, workers, n int, opts BatchOptions, sc *obs.ShardScan, costs []obs.QueryCost) (*sharedArtifacts, SharingStats) {
	cache := opts.Artifacts
	stats := SharingStats{Queries: len(idxs)}
	filterUses := map[string]int{} // set sub-fingerprint → queries using it
	groupUses := map[string]int{}  // sub-fingerprint → (query, grouping) uses
	filterMass := map[string]int{} // set sub-fingerprint → Σ visible facts
	filterOwner := map[string]*queryPlan{}
	setPreds := map[string][]string{}     // set sub-fingerprint → distinct predicate keys
	predUses := map[string]int{}          // predicate key → query uses
	predSets := map[string]int{}          // predicate key → distinct sets containing it
	predMass := map[string]int{}          // predicate key → Σ visible facts
	predOwner := map[string]*filterSpec{} // any resolved spec for the predicate
	groupOwner := map[string]*groupSpec{}
	// Artifact → using queries (indices into idxs/costs), for cost
	// attribution; group users append one entry per (query, grouping) use.
	setUsers := map[string][]int{}
	predUsers := map[string][]int{}
	groupUsers := map[string][]int{}
	visible := make([]int, len(idxs)) // per query-in-group
	for k, qi := range idxs {
		p := plans[qi]
		visible[k] = n
		if masks[qi] != nil {
			visible[k] = masks[qi].Count()
		}
		if p.filterKey != "" {
			stats.FilterSets++
			if filterUses[p.filterKey] == 0 {
				stats.DistinctFilterSets++
				filterOwner[p.filterKey] = p
				// Record the set's distinct predicates once: every plan
				// with this set fingerprint holds the same predicate
				// multiset (the set key is derived from the predicate
				// keys), so the first plan seen can speak for all.
				seen := map[string]bool{}
				for fi := range p.filters {
					fs := &p.filters[fi]
					if seen[fs.key] {
						continue
					}
					seen[fs.key] = true
					setPreds[p.filterKey] = append(setPreds[p.filterKey], fs.key)
					predSets[fs.key]++
					if predOwner[fs.key] == nil {
						predOwner[fs.key] = fs
					}
				}
			}
			filterUses[p.filterKey]++
			filterMass[p.filterKey] += visible[k]
			setUsers[p.filterKey] = append(setUsers[p.filterKey], k)
			for _, pk := range setPreds[p.filterKey] {
				stats.FilterPredicates++
				if predUses[pk] == 0 {
					stats.DistinctPredicates++
				}
				predUses[pk]++
				predMass[pk] += visible[k]
				predUsers[pk] = append(predUsers[pk], k)
			}
		}
		for gi := range p.groups {
			g := &p.groups[gi]
			stats.GroupKeySets++
			if groupUses[g.key] == 0 {
				stats.DistinctGroupings++
				groupOwner[g.key] = g
			}
			groupUses[g.key]++
			groupUsers[g.key] = append(groupUsers[g.key], k)
		}
	}

	fd := plans[idxs[0]].fd
	version := fd.version.Load()
	// Artifacts are offered to the cross-batch cache only when this scan
	// fills them over the whole live table: a group compiled before
	// concurrent ingest scans a shorter prefix (n < fd.n), and caching such
	// a partially filled bitmap under the live version would hand later
	// full-length scans missing facts. Cache *hits* are always safe — a hit
	// was filled full-length at this version, and scans never iterate past
	// their own bound.
	cachePut := cache != nil && n == fd.n
	art := &sharedArtifacts{fd: fd, filterMasks: map[string]*bitset.Set{},
		predMasks: map[string]*bitset.Set{}, partialMasks: map[string]*bitset.Set{},
		keyCols: map[string][]int32{}}

	var t0 time.Time
	if sc != nil {
		t0 = time.Now()
	}
	if opts.DisablePredicateSharing {
		// Whole-set granularity (the pre-per-filter path): one bitmap per
		// distinct filter set, filled by evaluating the full conjunction.
		fillMasks := map[string]*bitset.Set{} // freshly materialized this scan
		for key, uses := range filterUses {
			if cache != nil {
				if m := cache.getMask(fd, version, key); m != nil {
					art.filterMasks[key] = m
					art.markOwned(key)
					stats.ArtifactCacheHits++
					continue
				}
			}
			if uses >= 2 && filterMass[key] > n {
				m := fd.getMask()
				art.filterMasks[key] = m
				fillMasks[key] = m
			}
		}
		if len(fillMasks) > 0 {
			parallelFill(n, workers, func(lo, hi int) {
				for key, mask := range fillMasks {
					filterOwner[key].materializeFilterMask(lo, hi, mask)
				}
			})
			if cachePut {
				for key, m := range fillMasks {
					if cache.putMask(fd, version, key, m) {
						art.markOwned(key)
					}
				}
			}
			for key, m := range fillMasks {
				b := maskBytes(m)
				stats.BitmapBytesBuilt += b
				chargeArtifact(costs, setUsers[key], b, true)
			}
		}
	} else {
		buildFilterMasksPerPredicate(art, &stats, n, version, workers, cache, cachePut,
			filterUses, filterMass, filterOwner, setPreds, predSets, predMass, predOwner,
			costs, setUsers, predUsers)
	}

	if sc != nil {
		sc.FilterMask = time.Since(t0)
		t0 = time.Now()
	}

	// Decide key columns with the filter masks in hand: a query whose
	// filter mask was materialized decodes keys for at most the facts the
	// mask passes.
	matchedBound := map[string]int{}
	for key, fm := range art.filterMasks {
		matchedBound[key] = fm.Count()
	}
	groupMass := map[string]int{}
	for k, qi := range idxs {
		p := plans[qi]
		mass := visible[k]
		if bound, ok := matchedBound[p.filterKey]; ok && p.filterKey != "" && bound < mass {
			mass = bound
		}
		for gi := range p.groups {
			groupMass[p.groups[gi].key] += mass
		}
	}
	fillCols := map[string][]int32{}
	for key, uses := range groupUses {
		if cache != nil {
			if col := cache.getCol(fd, version, key); col != nil {
				art.keyCols[key] = col
				art.markOwned(key)
				stats.ArtifactCacheHits++
				continue
			}
		}
		if uses >= 2 && groupMass[key] > n {
			col := fd.getKeyCol()
			art.keyCols[key] = col
			fillCols[key] = col
		}
	}
	if len(fillCols) > 0 {
		parallelFill(n, workers, func(lo, hi int) {
			for key, col := range fillCols {
				groupOwner[key].materializeGroupKeys(lo, hi, col)
			}
		})
		if cachePut {
			for key, col := range fillCols {
				if cache.putCol(fd, version, key, col) {
					art.markOwned(key)
				}
			}
		}
		for key, col := range fillCols {
			b := keyColBytes(col)
			stats.KeyColBytesBuilt += b
			chargeArtifact(costs, groupUsers[key], b, false)
		}
	}
	if sc != nil {
		sc.GroupDecode = time.Since(t0)
	}
	return art, stats
}

// buildFilterMasksPerPredicate is buildArtifacts' stage-1 planner at
// per-predicate granularity. Predicate bitmaps materialize when the
// predicate recurs across at least two distinct filter sets (its total
// visible mass exceeding one table pass) or sits in the cross-batch
// cache; set masks are then AND-composed from them, with any residual
// predicates refined in a single pass over the already-narrowed domain.
// The resulting art.filterMasks entries are exactly the semantic set
// masks the whole-set path would have produced, so everything downstream
// (planScan, accumulation, caching) is untouched and results stay
// byte-identical.
func buildFilterMasksPerPredicate(art *sharedArtifacts, stats *SharingStats,
	n int, version uint64, workers int, cache *ArtifactCache, cachePut bool,
	filterUses, filterMass map[string]int, filterOwner map[string]*queryPlan,
	setPreds map[string][]string, predSets, predMass map[string]int,
	predOwner map[string]*filterSpec,
	costs []obs.QueryCost, setUsers, predUsers map[string][]int) {
	fd := art.fd

	// Composed set masks straight from the cache; the rest need building.
	var needSets []string
	for key := range filterUses {
		if cache != nil {
			if m := cache.getMask(fd, version, key); m != nil {
				art.filterMasks[key] = m
				art.markOwned(key)
				stats.ArtifactCacheHits++
				continue
			}
		}
		needSets = append(needSets, key)
	}

	// Predicate bitmaps: a cache hit is free and used unconditionally; a
	// fresh fill must pay for itself — the predicate has to recur across
	// distinct sets (within one set, the set's own conjunction pass
	// evaluates it with short-circuiting at no extra cost).
	fillPreds := map[string]*bitset.Set{}
	for _, sk := range needSets {
		for _, pk := range setPreds[sk] {
			if art.predMasks[pk] != nil {
				continue
			}
			if cache != nil {
				if m := cache.getPredMask(fd, version, pk); m != nil {
					art.predMasks[pk] = m
					art.markOwned(pk)
					stats.ArtifactCacheHits++
					continue
				}
			}
			if predSets[pk] >= 2 && predMass[pk] > n {
				m := fd.getMask()
				art.predMasks[pk] = m
				fillPreds[pk] = m
			}
		}
	}
	if len(fillPreds) > 0 {
		for pk := range fillPreds {
			if fs := predOwner[pk]; fs.codes != nil && fs.pk.n >= n {
				stats.PackedPredicateKernels++
			}
		}
		parallelFill(n, workers, func(lo, hi int) {
			for pk, m := range fillPreds {
				predOwner[pk].materializePredicateMask(lo, hi, m)
			}
		})
		if cachePut {
			for pk, m := range fillPreds {
				if cache.putPredMask(fd, version, pk, m) {
					art.markOwned(pk)
				}
			}
		}
		for pk, m := range fillPreds {
			b := maskBytes(m)
			stats.BitmapBytesBuilt += b
			chargeArtifact(costs, predUsers[pk], b, true)
		}
	}

	// Set masks. A set qualifying on its own (>= 2 queries whose mass
	// exceeds a table pass) always materializes fully — base composed,
	// residue refined once. A non-qualifying set becomes a full mask only
	// when every predicate already has a bitmap (composition is then pure
	// word-ANDs), or a partial mask when some do (queries evaluate the
	// residue inline over the narrowed domain).
	fillSets := map[string]*setFill{}
	for _, sk := range needSets {
		owner := filterOwner[sk]
		var base []*bitset.Set
		var residual []*filterSpec
		seen := map[string]bool{}
		for fi := range owner.filters {
			fs := &owner.filters[fi]
			if seen[fs.key] {
				continue
			}
			seen[fs.key] = true
			if m := art.predMasks[fs.key]; m != nil {
				base = append(base, m)
			} else {
				residual = append(residual, fs)
			}
		}
		qualifies := filterUses[sk] >= 2 && filterMass[sk] > n
		switch {
		case qualifies || len(residual) == 0 && len(base) > 0:
			m := fd.getMask()
			art.filterMasks[sk] = m
			fillSets[sk] = &setFill{m: m, base: base, residual: residual}
			if len(base) > 0 {
				stats.ComposedMasks++
			}
		case len(base) > 0:
			m := fd.getMask()
			art.partialMasks[sk] = m
			fillSets[sk] = &setFill{m: m, base: base}
			stats.PartialMasks++
		}
	}
	refine := false
	for _, sf := range fillSets {
		if len(sf.base) > 0 {
			sf.m.IntersectAll(sf.base) // word-parallel, memory-bound
		}
		if len(sf.residual) > 0 {
			refine = true
		}
	}
	if refine {
		parallelFill(n, workers, func(lo, hi int) {
			for _, sf := range fillSets {
				sf.refine(lo, hi)
			}
		})
	}
	// Offer freshly built full set masks to the cache (partial masks are
	// not the set's semantic mask and never leave the scan).
	if cachePut {
		for sk, sf := range fillSets {
			if art.filterMasks[sk] == sf.m && cache.putMask(fd, version, sk, sf.m) {
				art.markOwned(sk)
			}
		}
	}
	// Charge composed and partial set masks alike — both were freshly
	// materialized for this scan's queries.
	for sk, sf := range fillSets {
		b := maskBytes(sf.m)
		stats.BitmapBytesBuilt += b
		chargeArtifact(costs, setUsers[sk], b, true)
	}
}

// planScan builds one query's accumulation drive from the artifacts.
func planScan(p *queryPlan, view *bitset.Set, art *sharedArtifacts) *queryScan {
	qs := &queryScan{view: view, iter: view}
	if len(p.groups) > 0 {
		qs.keyCols = make([][]int32, len(p.groups))
		for gi := range p.groups {
			qs.keyCols[gi] = art.keyCols[p.groups[gi].key] // nil → inline decode
		}
	}
	// A view mask sized before AddFact grew the table cannot be
	// intersected with a bitmap at the current capacity; such a query
	// keeps the fused path (ForEachRange clamps, exactly as scanShared
	// always handled it).
	if fm := art.filterMasks[p.filterKey]; fm != nil && (view == nil || view.Len() == fm.Len()) {
		qs.prefiltered = true
		if view == nil {
			qs.iter = fm
		} else {
			// filter ∩ view, built in a pooled buffer (released with the
			// artifacts at scan end).
			eff := art.fd.getMask()
			eff.AndInto(fm, view)
			qs.iter = eff
		}
	} else if pm := art.partialMasks[p.filterKey]; pm != nil && (view == nil || view.Len() == pm.Len()) {
		// Partially composed set: iterate the AND of the available
		// predicate bitmaps and evaluate the residual predicates inline.
		// residual indexes this plan's own filter order — plans sharing a
		// set fingerprint hold the same predicate multiset, but possibly
		// reordered, so the indices are per plan.
		qs.prefiltered = true
		for fi := range p.filters {
			if art.predMasks[p.filters[fi].key] == nil {
				qs.residual = append(qs.residual, fi)
			}
		}
		if view == nil {
			qs.iter = pm
		} else {
			eff := art.fd.getMask()
			eff.AndInto(pm, view)
			qs.iter = eff
		}
	}
	return qs
}

// releaseArtifacts returns the scan's pooled buffers — shared bitmaps, key
// columns, and the per-query intersection masks — once no partial needs
// them (after the final merge; Results never reference artifacts).
// Cache-owned artifacts are skipped: the cross-batch cache keeps them for
// future scans (possibly reading them concurrently), so pooling them would
// hand a mutable buffer to a reader.
func releaseArtifacts(art *sharedArtifacts, scans []*queryScan) {
	for _, qs := range scans {
		if qs.prefiltered && qs.view != nil {
			art.fd.maskPool.Put(qs.iter)
		}
	}
	for key, m := range art.filterMasks {
		if art.owned(key) {
			continue
		}
		art.fd.maskPool.Put(m)
	}
	for key, m := range art.predMasks {
		if art.owned(key) {
			continue
		}
		art.fd.maskPool.Put(m)
	}
	for _, m := range art.partialMasks {
		// Partial masks are never cache-owned (they are not the set's
		// semantic mask), so they always recycle.
		art.fd.maskPool.Put(m)
	}
	for key, col := range art.keyCols {
		if art.owned(key) {
			continue
		}
		col := col
		art.fd.colPool.Put(&col)
	}
}

// scanSharedStaged runs one fact group's shared scan through the staged
// pipeline: materialize shared artifacts (taking cross-batch cached ones
// when a cache is given), then accumulate every query morsel by morsel
// exactly as scanShared does — same work stealing, same worker-order
// merge — so results are byte-identical to the fused path. workers must
// already be normalized and n is the group's scan bound (groupScanBound).
// The merged partial per query lands in out (callers finalize, then
// release sp; the scan-scoped artifacts are released here, since no
// partial or Result references them). A non-nil sc receives the scan's
// per-stage wall times.
func scanSharedStaged(idxs []int, plans []*queryPlan, masks []*bitset.Set, out []*partial, workers, n int, opts BatchOptions, sp *scanPartials, sc *obs.ShardScan) SharingStats {
	costs := make([]obs.QueryCost, len(idxs))
	art, stats := buildArtifacts(idxs, plans, masks, workers, n, opts, sc, costs)

	scans := make([]*queryScan, len(idxs))
	for k, qi := range idxs {
		scans[k] = planScan(plans[qi], masks[qi], art)
	}

	chunks := chunkCount(n)
	parts := make([][]*partial, workers) // [worker][query-in-group]
	for w := range parts {
		row := make([]*partial, len(idxs))
		for k, qi := range idxs {
			row[k] = sp.get(plans[qi])
		}
		parts[w] = row
	}
	var cur atomic.Int64
	scanWorker := func(row []*partial) {
		forEachMorsel(&cur, chunks, n, func(lo, hi int) {
			for k := range idxs {
				row[k].scanRangeStaged(lo, hi, scans[k])
			}
		})
	}
	var t0 time.Time
	if sc != nil {
		t0 = time.Now()
	}
	if workers == 1 {
		scanWorker(parts[0])
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(row []*partial) {
				defer wg.Done()
				scanWorker(row)
			}(parts[w])
		}
		wg.Wait()
	}
	if sc != nil {
		sc.Accumulate = time.Since(t0)
		t0 = time.Now()
	}
	for k, qi := range idxs {
		merged := parts[0][k]
		for w := 1; w < workers; w++ {
			merged.merge(parts[w][k])
		}
		// Land the artifact-byte attribution on the merged partial only —
		// worker partials carry zero cost, so the merges above added
		// nothing and each share is counted exactly once.
		merged.cost.Add(costs[k])
		out[qi] = merged
	}
	if sc != nil {
		sc.Merge = time.Since(t0)
	}
	releaseArtifacts(art, scans)
	return stats
}

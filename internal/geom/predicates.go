package geom

import "math"

// This file implements the boolean topological predicates of the paper's
// spatial PRML extension (Section 4.2.3): Intersect, Disjoint, Cross, Inside
// and Equals. The predicate meanings follow the ISO 19107 / OGC Simple
// Features definitions, restricted to the four primitives of the paper's
// GeometricTypes enumeration, with an Epsilon coordinate tolerance.

// Intersects reports whether a and b share at least one point.
func Intersects(a, b Geometry) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	if !a.Bounds().Expand(Epsilon).Intersects(b.Bounds().Expand(Epsilon)) {
		return false
	}
	switch ga := a.(type) {
	case Point:
		return pointIntersects(ga, b)
	case Line:
		switch gb := b.(type) {
		case Point:
			return pointIntersects(gb, a)
		case Line:
			return lineLineIntersects(ga, gb)
		case Polygon:
			return linePolygonIntersects(ga, gb)
		case Collection:
			return collectionIntersects(gb, a)
		}
	case Polygon:
		switch gb := b.(type) {
		case Point:
			return pointIntersects(gb, a)
		case Line:
			return linePolygonIntersects(gb, ga)
		case Polygon:
			return polygonPolygonIntersects(ga, gb)
		case Collection:
			return collectionIntersects(gb, a)
		}
	case Collection:
		return collectionIntersects(ga, b)
	}
	return false
}

// Disjoint reports whether a and b share no point. It is the negation of
// Intersects.
func Disjoint(a, b Geometry) bool { return !Intersects(a, b) }

// Within reports whether every point of a lies inside (or on the boundary
// of) b. This is PRML's Inside operator.
func Within(a, b Geometry) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	switch ga := a.(type) {
	case Point:
		return pointWithin(ga, b)
	case Line:
		return lineWithin(ga, b)
	case Polygon:
		return polygonWithin(ga, b)
	case Collection:
		for _, g := range ga.Flatten() {
			if g.IsEmpty() {
				continue
			}
			if !Within(g, b) {
				return false
			}
		}
		return !ga.IsEmpty()
	}
	return false
}

// Crosses reports whether a and b cross in the OGC sense: their interiors
// intersect but neither contains the other. For line/line this means they
// meet at a point that is interior to at least one of them; for line/polygon
// it means the line is partly inside and partly outside the polygon.
func Crosses(a, b Geometry) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	switch ga := a.(type) {
	case Line:
		switch gb := b.(type) {
		case Line:
			return lineLineCrosses(ga, gb)
		case Polygon:
			return linePolygonCrosses(ga, gb)
		case Collection:
			for _, g := range gb.Flatten() {
				if Crosses(a, g) {
					return true
				}
			}
			return false
		}
	case Polygon:
		if gb, ok := b.(Line); ok {
			return linePolygonCrosses(gb, ga)
		}
	case Collection:
		for _, g := range ga.Flatten() {
			if Crosses(g, b) {
				return true
			}
		}
		return false
	}
	return false
}

// Equals reports whether a and b describe the same point set within Epsilon.
// Lines compare as sequences of vertices in either direction; polygons
// compare shells and holes under ring rotation and reversal; collections
// compare as multisets of equal members.
func Equals(a, b Geometry) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.IsEmpty() && b.IsEmpty() {
		return true
	}
	if a.Type() != b.Type() {
		return false
	}
	switch ga := a.(type) {
	case Point:
		return ga.Eq(b.(Point))
	case Line:
		return lineEquals(ga, b.(Line))
	case Polygon:
		gb := b.(Polygon)
		if !ringEquals(ga.Shell, gb.Shell) || len(ga.Holes) != len(gb.Holes) {
			return false
		}
		used := make([]bool, len(gb.Holes))
	outer:
		for _, h := range ga.Holes {
			for i, k := range gb.Holes {
				if !used[i] && ringEquals(h, k) {
					used[i] = true
					continue outer
				}
			}
			return false
		}
		return true
	case Collection:
		gb := b.(Collection)
		fa, fb := ga.Flatten(), gb.Flatten()
		if len(fa) != len(fb) {
			return false
		}
		used := make([]bool, len(fb))
	outerC:
		for _, x := range fa {
			for i, y := range fb {
				if !used[i] && Equals(x, y) {
					used[i] = true
					continue outerC
				}
			}
			return false
		}
		return true
	}
	return false
}

func pointIntersects(p Point, g Geometry) bool {
	switch gg := g.(type) {
	case Point:
		return p.Eq(gg)
	case Line:
		for i := 0; i < gg.NumSegments(); i++ {
			a, b := gg.Segment(i)
			if onSegment(p, a, b) {
				return true
			}
		}
		return false
	case Polygon:
		return pointInPolygon(p, gg) >= 0
	case Collection:
		for _, m := range gg.Flatten() {
			if pointIntersects(p, m) {
				return true
			}
		}
		return false
	}
	return false
}

func lineLineIntersects(a, b Line) bool {
	for i := 0; i < a.NumSegments(); i++ {
		p1, p2 := a.Segment(i)
		for j := 0; j < b.NumSegments(); j++ {
			q1, q2 := b.Segment(j)
			if k, _, _ := segSegIntersection(p1, p2, q1, q2); k != segNone {
				return true
			}
		}
	}
	return false
}

func linePolygonIntersects(l Line, p Polygon) bool {
	// Any vertex inside or on the polygon?
	for _, v := range l.Pts {
		if pointInPolygon(v, p) >= 0 {
			return true
		}
	}
	// Any edge crossing the boundary?
	hit := false
	for i := 0; i < l.NumSegments() && !hit; i++ {
		a, b := l.Segment(i)
		polygonEdges(p, func(c, d Point) bool {
			if k, _, _ := segSegIntersection(a, b, c, d); k != segNone {
				hit = true
				return false
			}
			return true
		})
	}
	return hit
}

func polygonPolygonIntersects(a, b Polygon) bool {
	// Vertex containment either way.
	for _, v := range a.Shell {
		if pointInPolygon(v, b) >= 0 {
			return true
		}
	}
	for _, v := range b.Shell {
		if pointInPolygon(v, a) >= 0 {
			return true
		}
	}
	// Boundary crossings.
	hit := false
	polygonEdges(a, func(p1, p2 Point) bool {
		polygonEdges(b, func(q1, q2 Point) bool {
			if k, _, _ := segSegIntersection(p1, p2, q1, q2); k != segNone {
				hit = true
				return false
			}
			return true
		})
		return !hit
	})
	return hit
}

func collectionIntersects(c Collection, g Geometry) bool {
	for _, m := range c.Flatten() {
		if Intersects(m, g) {
			return true
		}
	}
	return false
}

func pointWithin(p Point, g Geometry) bool {
	return pointIntersects(p, g)
}

func lineWithin(l Line, g Geometry) bool {
	switch gg := g.(type) {
	case Point:
		for _, v := range l.Pts {
			if !v.Eq(gg) {
				return false
			}
		}
		return true
	case Line:
		// Every segment of l must lie on some segment chain of gg. We sample
		// segment endpoints and midpoints; exact containment of collinear
		// chains is beyond what the rule language needs.
		for i := 0; i < l.NumSegments(); i++ {
			a, b := l.Segment(i)
			mid := Point{(a.X + b.X) / 2, (a.Y + b.Y) / 2}
			if !pointIntersects(a, gg) || !pointIntersects(b, gg) || !pointIntersects(mid, gg) {
				return false
			}
		}
		return true
	case Polygon:
		for _, v := range l.Pts {
			if pointInPolygon(v, gg) < 0 {
				return false
			}
		}
		// Reject lines that exit and re-enter through the boundary: check
		// that no segment midpoint is outside and no proper crossing of the
		// shell leaves the polygon. Midpoint sampling is sufficient for
		// convex and mildly concave polygons used in the warehouse.
		for i := 0; i < l.NumSegments(); i++ {
			a, b := l.Segment(i)
			mid := Point{(a.X + b.X) / 2, (a.Y + b.Y) / 2}
			if pointInPolygon(mid, gg) < 0 {
				return false
			}
		}
		return true
	case Collection:
		for _, m := range gg.Flatten() {
			if lineWithin(l, m) {
				return true
			}
		}
		return false
	}
	return false
}

func polygonWithin(p Polygon, g Geometry) bool {
	gg, ok := g.(Polygon)
	if !ok {
		if c, isColl := g.(Collection); isColl {
			for _, m := range c.Flatten() {
				if polygonWithin(p, m) {
					return true
				}
			}
		}
		return false
	}
	for _, v := range p.Shell {
		if pointInPolygon(v, gg) < 0 {
			return false
		}
	}
	// No boundary crossing may leave gg.
	crossing := false
	polygonEdges(p, func(a, b Point) bool {
		polygonEdges(gg, func(c, d Point) bool {
			if k, pt, _ := segSegIntersection(a, b, c, d); k == segPoint {
				// Touching at shared boundary points is fine; a proper
				// crossing is not. Detect proper crossing via strict side
				// test.
				if math.Abs(cross(c, d, a)) > Epsilon && math.Abs(cross(c, d, b)) > Epsilon {
					_ = pt
					crossing = true
					return false
				}
			}
			return true
		})
		return !crossing
	})
	return !crossing
}

func lineLineCrosses(a, b Line) bool {
	touch := false
	for i := 0; i < a.NumSegments(); i++ {
		p1, p2 := a.Segment(i)
		for j := 0; j < b.NumSegments(); j++ {
			q1, q2 := b.Segment(j)
			k, pt, _ := segSegIntersection(p1, p2, q1, q2)
			if k == segOverlap {
				return false // shared segment → overlap, not a cross
			}
			if k == segPoint {
				touch = true
				// Interior of at least one line?
				if lineInteriorContains(a, pt) || lineInteriorContains(b, pt) {
					return true
				}
			}
		}
	}
	_ = touch
	return false
}

// lineInteriorContains reports whether p lies on l but is not one of l's two
// terminal endpoints.
func lineInteriorContains(l Line, p Point) bool {
	if len(l.Pts) < 2 {
		return false
	}
	if p.Eq(l.Pts[0]) || p.Eq(l.Pts[len(l.Pts)-1]) {
		return false
	}
	return pointIntersects(p, l)
}

func linePolygonCrosses(l Line, p Polygon) bool {
	in, out := false, false
	for i := 0; i < l.NumSegments(); i++ {
		a, b := l.Segment(i)
		for _, s := range []Point{a, b, {(a.X + b.X) / 2, (a.Y + b.Y) / 2}} {
			switch pointInPolygon(s, p) {
			case 1:
				in = true
			case -1:
				out = true
			}
		}
		if in && out {
			return true
		}
	}
	return in && out
}

func lineEquals(a, b Line) bool {
	if len(a.Pts) != len(b.Pts) {
		return false
	}
	forward := true
	for i := range a.Pts {
		if !a.Pts[i].Eq(b.Pts[i]) {
			forward = false
			break
		}
	}
	if forward {
		return true
	}
	n := len(a.Pts)
	for i := range a.Pts {
		if !a.Pts[i].Eq(b.Pts[n-1-i]) {
			return false
		}
	}
	return true
}

func ringEquals(a, b Ring) bool {
	n := len(a)
	if n != len(b) || n == 0 {
		return n == len(b)
	}
	// Try every rotation of b, forward and reversed.
	match := func(rev bool) bool {
		for off := 0; off < n; off++ {
			ok := true
			for i := 0; i < n; i++ {
				var bi Point
				if rev {
					bi = b[(off-i%n+2*n)%n]
				} else {
					bi = b[(off+i)%n]
				}
				if !a[i].Eq(bi) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	return match(false) || match(true)
}

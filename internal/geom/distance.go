package geom

import "math"

// This file implements planar distance and length. PRML's binary Distance
// operator maps to Distance (or GeodeticDistance for lon/lat data); the unary
// form used in Example 5.3 maps to MinLength (see DESIGN.md for the
// documented interpretation).

// Distance returns the minimum planar distance between a and b, 0 if they
// intersect, and +Inf if either is nil or empty.
func Distance(a, b Geometry) float64 {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return math.Inf(1)
	}
	switch ga := a.(type) {
	case Point:
		return distPointGeom(ga, b)
	case Line:
		switch gb := b.(type) {
		case Point:
			return distPointGeom(gb, a)
		case Line:
			return distLineLine(ga, gb)
		case Polygon:
			return distLinePolygon(ga, gb)
		case Collection:
			return distCollection(gb, a)
		}
	case Polygon:
		switch gb := b.(type) {
		case Point:
			return distPointGeom(gb, a)
		case Line:
			return distLinePolygon(gb, ga)
		case Polygon:
			return distPolygonPolygon(ga, gb)
		case Collection:
			return distCollection(gb, a)
		}
	case Collection:
		return distCollection(ga, b)
	}
	return math.Inf(1)
}

func distPointGeom(p Point, g Geometry) float64 {
	switch gg := g.(type) {
	case Point:
		return math.Hypot(p.X-gg.X, p.Y-gg.Y)
	case Line:
		best := math.Inf(1)
		for i := 0; i < gg.NumSegments(); i++ {
			a, b := gg.Segment(i)
			if d := distPointSegment(p, a, b); d < best {
				best = d
			}
		}
		return best
	case Polygon:
		if pointInPolygon(p, gg) >= 0 {
			return 0
		}
		best := math.Inf(1)
		polygonEdges(gg, func(a, b Point) bool {
			if d := distPointSegment(p, a, b); d < best {
				best = d
			}
			return true
		})
		return best
	case Collection:
		best := math.Inf(1)
		for _, m := range gg.Flatten() {
			if d := distPointGeom(p, m); d < best {
				best = d
			}
		}
		return best
	}
	return math.Inf(1)
}

func distSegSeg(a, b, c, d Point) float64 {
	if k, _, _ := segSegIntersection(a, b, c, d); k != segNone {
		return 0
	}
	m := distPointSegment(a, c, d)
	if v := distPointSegment(b, c, d); v < m {
		m = v
	}
	if v := distPointSegment(c, a, b); v < m {
		m = v
	}
	if v := distPointSegment(d, a, b); v < m {
		m = v
	}
	return m
}

func distLineLine(a, b Line) float64 {
	best := math.Inf(1)
	for i := 0; i < a.NumSegments(); i++ {
		p1, p2 := a.Segment(i)
		for j := 0; j < b.NumSegments(); j++ {
			q1, q2 := b.Segment(j)
			if d := distSegSeg(p1, p2, q1, q2); d < best {
				best = d
				if best == 0 {
					return 0
				}
			}
		}
	}
	return best
}

func distLinePolygon(l Line, p Polygon) float64 {
	if linePolygonIntersects(l, p) {
		return 0
	}
	best := math.Inf(1)
	for i := 0; i < l.NumSegments(); i++ {
		a, b := l.Segment(i)
		polygonEdges(p, func(c, d Point) bool {
			if v := distSegSeg(a, b, c, d); v < best {
				best = v
			}
			return true
		})
	}
	return best
}

func distPolygonPolygon(a, b Polygon) float64 {
	if polygonPolygonIntersects(a, b) {
		return 0
	}
	best := math.Inf(1)
	polygonEdges(a, func(p1, p2 Point) bool {
		polygonEdges(b, func(q1, q2 Point) bool {
			if v := distSegSeg(p1, p2, q1, q2); v < best {
				best = v
			}
			return true
		})
		return true
	})
	return best
}

func distCollection(c Collection, g Geometry) float64 {
	best := math.Inf(1)
	for _, m := range c.Flatten() {
		if d := Distance(m, g); d < best {
			best = d
			if best == 0 {
				return 0
			}
		}
	}
	return best
}

// Length returns the planar length of g: 0 for points, polyline length for
// lines, shell+hole perimeter for polygons, and the sum over members for
// collections.
func Length(g Geometry) float64 {
	switch gg := g.(type) {
	case Point:
		return 0
	case Line:
		s := 0.0
		for i := 0; i < gg.NumSegments(); i++ {
			a, b := gg.Segment(i)
			s += math.Hypot(b.X-a.X, b.Y-a.Y)
		}
		return s
	case Polygon:
		s := 0.0
		polygonEdges(gg, func(a, b Point) bool {
			s += math.Hypot(b.X-a.X, b.Y-a.Y)
			return true
		})
		return s
	case Collection:
		s := 0.0
		for _, m := range gg.Flatten() {
			s += Length(m)
		}
		return s
	}
	return 0
}

// MinLength implements the paper's unary Distance(g) as used in Example 5.3:
// for a COLLECTION it returns the length of the shortest non-point member
// (the "corresponding segment"); for other geometries it returns Length(g).
// An empty geometry (or a collection with no non-point members) yields +Inf
// so that threshold comparisons such as `< 50km` fail closed.
func MinLength(g Geometry) float64 {
	if g == nil || g.IsEmpty() {
		return math.Inf(1)
	}
	c, ok := g.(Collection)
	if !ok {
		return Length(g)
	}
	best := math.Inf(1)
	for _, m := range c.Flatten() {
		if m.Type() == TypePoint || m.IsEmpty() {
			continue
		}
		if l := Length(m); l < best {
			best = l
		}
	}
	return best
}

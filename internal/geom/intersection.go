package geom

import (
	"math"
	"sort"
)

// This file implements the paper's order-sensitive Intersection operator
// (Section 4.2.3): "if we intersect LINE type with POINT the operator returns
// a COLLECTION type of sublines. However, if it is POINT intersecting LINE
// type the operator returns a COLLECTION type of points." The first operand
// determines what kind of pieces come back — the result is made of parts of
// the first operand located at the second operand.
//
// SnapTolerance governs how close a point must be to a line (in the planar
// coordinate units) to be treated as lying on it when splitting. It is wider
// than Epsilon because warehouse layers (train stops, city markers) are
// digitized independently of the lines they conceptually lie on.

// SnapTolerance is the point-on-line snapping distance used by Intersection,
// in the planar coordinate units of the stored geometries (degrees for
// lon/lat data, where the default corresponds to roughly one kilometre).
var SnapTolerance = 0.01

// Intersection returns the parts of a located at b, as defined by the paper's
// ordered operator. The result is always a Collection (possibly empty).
func Intersection(a, b Geometry) Collection {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return Collection{}
	}
	switch ga := a.(type) {
	case Point:
		if intersectsSnapped(ga, b) {
			return Coll(ga)
		}
		return Collection{}
	case Line:
		return lineIntersection(ga, b)
	case Polygon:
		return polygonIntersection(ga, b)
	case Collection:
		var out []Geometry
		for _, m := range ga.Flatten() {
			sub := Intersection(m, b)
			out = append(out, sub.Flatten()...)
		}
		return Collection{Geoms: out}
	}
	return Collection{}
}

// intersectsSnapped is Intersects with the wider SnapTolerance applied for
// point-versus-line and point-versus-point tests.
func intersectsSnapped(p Point, g Geometry) bool {
	switch gg := g.(type) {
	case Point:
		return math.Hypot(p.X-gg.X, p.Y-gg.Y) <= SnapTolerance
	case Line:
		return distPointGeom(p, gg) <= SnapTolerance
	case Polygon:
		return pointInPolygon(p, gg) >= 0 || distPointGeom(p, gg) <= SnapTolerance
	case Collection:
		for _, m := range gg.Flatten() {
			if intersectsSnapped(p, m) {
				return true
			}
		}
	}
	return false
}

func lineIntersection(l Line, b Geometry) Collection {
	switch gb := b.(type) {
	case Point:
		return splitLineAtPoint(l, gb)
	case Line:
		return lineLineIntersection(l, gb)
	case Polygon:
		return clipLineToPolygon(l, gb)
	case Collection:
		var out []Geometry
		for _, m := range gb.Flatten() {
			sub := lineIntersection(l, m)
			out = append(out, sub.Flatten()...)
		}
		return Collection{Geoms: out}
	}
	return Collection{}
}

// splitLineAtPoint returns the sublines of l obtained by splitting it at the
// point nearest to p, provided p lies on l within SnapTolerance. A point
// interior to the line yields two sublines; a point at a line end yields one.
func splitLineAtPoint(l Line, p Point) Collection {
	bestD := math.Inf(1)
	bestSeg := -1
	var bestPt Point
	for i := 0; i < l.NumSegments(); i++ {
		a, b := l.Segment(i)
		q, _ := projectOnSegment(p, a, b)
		d := math.Hypot(p.X-q.X, p.Y-q.Y)
		if d < bestD {
			bestD, bestSeg, bestPt = d, i, q
		}
	}
	if bestSeg < 0 || bestD > SnapTolerance {
		return Collection{}
	}
	// First subline: vertices up to bestSeg, then the split point.
	first := append([]Point{}, l.Pts[:bestSeg+1]...)
	if !first[len(first)-1].Eq(bestPt) {
		first = append(first, bestPt)
	}
	// Second subline: split point, then the remaining vertices.
	second := []Point{bestPt}
	for _, v := range l.Pts[bestSeg+1:] {
		if !v.Eq(bestPt) || len(second) > 1 {
			second = append(second, v)
		}
	}
	var out []Geometry
	if len(first) >= 2 && Length(Line{Pts: first}) > Epsilon {
		out = append(out, Line{Pts: first})
	}
	if len(second) >= 2 && Length(Line{Pts: second}) > Epsilon {
		out = append(out, Line{Pts: second})
	}
	if len(out) == 0 {
		// The point coincides with a line terminal: the whole line is the
		// single "subline".
		out = append(out, l.Clone())
	}
	return Collection{Geoms: out}
}

// lineLineIntersection returns the crossing points plus any collinear shared
// segments of a with b.
func lineLineIntersection(a, b Line) Collection {
	var out []Geometry
	seen := func(p Point) bool {
		for _, g := range out {
			if q, ok := g.(Point); ok && q.Eq(p) {
				return true
			}
		}
		return false
	}
	for i := 0; i < a.NumSegments(); i++ {
		p1, p2 := a.Segment(i)
		for j := 0; j < b.NumSegments(); j++ {
			q1, q2 := b.Segment(j)
			switch k, p, q := segSegIntersection(p1, p2, q1, q2); k {
			case segPoint:
				if !seen(p) {
					out = append(out, p)
				}
			case segOverlap:
				out = append(out, Ln(p, q))
			}
		}
	}
	return Collection{Geoms: out}
}

// clipLineToPolygon returns the sublines of l that lie inside p.
func clipLineToPolygon(l Line, p Polygon) Collection {
	var out []Geometry
	var cur []Point
	flush := func() {
		if len(cur) >= 2 && Length(Line{Pts: cur}) > Epsilon {
			pts := make([]Point, len(cur))
			copy(pts, cur)
			out = append(out, Line{Pts: pts})
		}
		cur = nil
	}
	for i := 0; i < l.NumSegments(); i++ {
		a, b := l.Segment(i)
		// Split the segment at every boundary crossing, then keep pieces
		// whose midpoints are inside.
		ts := []float64{0, 1}
		polygonEdges(p, func(c, d Point) bool {
			if k, pt, _ := segSegIntersection(a, b, c, d); k == segPoint {
				dx, dy := b.X-a.X, b.Y-a.Y
				den := dx*dx + dy*dy
				if den > 0 {
					t := ((pt.X-a.X)*dx + (pt.Y-a.Y)*dy) / den
					ts = append(ts, math.Max(0, math.Min(1, t)))
				}
			}
			return true
		})
		sort.Float64s(ts)
		at := func(t float64) Point { return Point{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)} }
		for k := 0; k+1 < len(ts); k++ {
			lo, hi := ts[k], ts[k+1]
			if hi-lo <= 1e-12 {
				continue
			}
			mid := at((lo + hi) / 2)
			if pointInPolygon(mid, p) >= 0 {
				s, e := at(lo), at(hi)
				if len(cur) == 0 {
					cur = append(cur, s)
				} else if !cur[len(cur)-1].Eq(s) {
					flush()
					cur = append(cur, s)
				}
				cur = append(cur, e)
			} else {
				flush()
			}
		}
	}
	flush()
	return Collection{Geoms: out}
}

func polygonIntersection(p Polygon, b Geometry) Collection {
	switch gb := b.(type) {
	case Point:
		if pointInPolygon(gb, p) >= 0 {
			return Coll(p.Clone())
		}
		return Collection{}
	case Line:
		if linePolygonIntersects(gb, p) {
			return Coll(p.Clone())
		}
		return Collection{}
	case Polygon:
		clipped := clipPolygon(p, gb)
		if clipped.IsEmpty() {
			return Collection{}
		}
		return Coll(clipped)
	case Collection:
		var out []Geometry
		for _, m := range gb.Flatten() {
			sub := polygonIntersection(p, m)
			out = append(out, sub.Flatten()...)
		}
		return Collection{Geoms: out}
	}
	return Collection{}
}

// clipPolygon clips subject against clip using Sutherland–Hodgman. The clip
// polygon is treated as convex (a documented limitation, see DESIGN.md);
// holes of both operands are ignored.
func clipPolygon(subject, clip Polygon) Polygon {
	outPts := append([]Point{}, subject.Shell...)
	cs := clip.Shell
	if len(cs) < 3 || len(outPts) < 3 {
		return Polygon{}
	}
	// Ensure counter-clockwise clip ring so "inside" is the left side.
	if ringArea(cs) < 0 {
		rev := make(Ring, len(cs))
		for i, p := range cs {
			rev[len(cs)-1-i] = p
		}
		cs = rev
	}
	for i := 0; i < len(cs); i++ {
		a, b := cs[i], cs[(i+1)%len(cs)]
		in := outPts
		outPts = nil
		if len(in) == 0 {
			break
		}
		prev := in[len(in)-1]
		prevInside := cross(a, b, prev) >= -Epsilon
		for _, cur := range in {
			curInside := cross(a, b, cur) >= -Epsilon
			if curInside != prevInside {
				if k, pt, _ := segSegIntersection(prev, cur, a, b); k == segPoint {
					outPts = append(outPts, pt)
				} else {
					// Nearly parallel edge: fall back to the midpoint.
					outPts = append(outPts, Point{(prev.X + cur.X) / 2, (prev.Y + cur.Y) / 2})
				}
			}
			if curInside {
				outPts = append(outPts, cur)
			}
			prev, prevInside = cur, curInside
		}
	}
	// Drop consecutive duplicates.
	var shell Ring
	for _, p := range outPts {
		if len(shell) == 0 || !shell[len(shell)-1].Eq(p) {
			shell = append(shell, p)
		}
	}
	if len(shell) >= 2 && shell[0].Eq(shell[len(shell)-1]) {
		shell = shell[:len(shell)-1]
	}
	if len(shell) < 3 {
		return Polygon{}
	}
	return Polygon{Shell: shell}
}

package geom

import (
	"math"
	"math/rand"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsInf(want, 1) {
		if !math.IsInf(got, 1) {
			t.Errorf("%s: got %v, want +Inf", msg, got)
		}
		return
	}
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v (±%v)", msg, got, want, tol)
	}
}

func TestDistancePointPoint(t *testing.T) {
	almost(t, Distance(Pt(0, 0), Pt(3, 4)), 5, 1e-12, "3-4-5")
	almost(t, Distance(Pt(1, 1), Pt(1, 1)), 0, 0, "same point")
}

func TestDistancePointLine(t *testing.T) {
	l := Ln(Pt(0, 0), Pt(10, 0))
	almost(t, Distance(Pt(5, 3), l), 3, 1e-12, "above midpoint")
	almost(t, Distance(Pt(-3, 4), l), 5, 1e-12, "past endpoint")
	almost(t, Distance(Pt(5, 0), l), 0, 0, "on line")
	almost(t, Distance(l, Pt(5, 3)), 3, 1e-12, "symmetric")
}

func TestDistancePointPolygon(t *testing.T) {
	almost(t, Distance(Pt(0.5, 0.5), unitSq), 0, 0, "inside → 0")
	almost(t, Distance(Pt(0.5, -2), unitSq), 2, 1e-12, "below")
	almost(t, Distance(Pt(4, 5), unitSq), 5, 1e-12, "diagonal corner")
}

func TestDistanceLineLine(t *testing.T) {
	a := Ln(Pt(0, 0), Pt(10, 0))
	b := Ln(Pt(0, 2), Pt(10, 2))
	almost(t, Distance(a, b), 2, 1e-12, "parallel")
	c := Ln(Pt(5, -1), Pt(5, 1))
	almost(t, Distance(a, c), 0, 0, "crossing")
}

func TestDistancePolygonPolygon(t *testing.T) {
	almost(t, Distance(unitSq, farSq), math.Hypot(9, 9), 1e-9, "corner-to-corner")
	almost(t, Distance(unitSq, bigSq), 0, 0, "contained")
}

func TestDistanceCollection(t *testing.T) {
	c := Coll(Pt(100, 100), Pt(0, 3))
	almost(t, Distance(c, Pt(0, 0)), 3, 1e-12, "min over members")
	almost(t, Distance(Pt(0, 0), c), 3, 1e-12, "symmetric")
}

func TestDistanceEmptyIsInf(t *testing.T) {
	almost(t, Distance(nil, Pt(0, 0)), math.Inf(1), 0, "nil")
	almost(t, Distance(Line{}, Pt(0, 0)), math.Inf(1), 0, "empty line")
	almost(t, Distance(Collection{}, Pt(0, 0)), math.Inf(1), 0, "empty collection")
}

func TestLength(t *testing.T) {
	almost(t, Length(Pt(1, 1)), 0, 0, "point")
	almost(t, Length(Ln(Pt(0, 0), Pt(3, 4))), 5, 1e-12, "segment")
	almost(t, Length(Ln(Pt(0, 0), Pt(3, 0), Pt(3, 4))), 7, 1e-12, "polyline")
	almost(t, Length(unitSq), 4, 1e-12, "square perimeter")
	almost(t, Length(Coll(Ln(Pt(0, 0), Pt(1, 0)), Ln(Pt(0, 0), Pt(0, 2)))), 3, 1e-12, "collection sum")
}

func TestMinLength(t *testing.T) {
	almost(t, MinLength(Ln(Pt(0, 0), Pt(3, 4))), 5, 1e-12, "single line")
	c := Coll(Ln(Pt(0, 0), Pt(10, 0)), Ln(Pt(0, 0), Pt(0, 2)), Pt(5, 5))
	almost(t, MinLength(c), 2, 1e-12, "shortest non-point member")
	almost(t, MinLength(Coll(Pt(1, 1))), math.Inf(1), 0, "points only → Inf")
	almost(t, MinLength(nil), math.Inf(1), 0, "nil → Inf")
	almost(t, MinLength(Collection{}), math.Inf(1), 0, "empty → Inf")
}

// Property: Distance is symmetric and non-negative; zero iff Intersects for
// point/polygon pairs.
func TestQuickDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		p := Pt(rng.Float64()*6-3, rng.Float64()*6-3)
		l := Ln(Pt(rng.Float64()*6-3, rng.Float64()*6-3), Pt(rng.Float64()*6-3, rng.Float64()*6-3))
		d1, d2 := Distance(p, l), Distance(l, p)
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("asymmetric distance %v vs %v", d1, d2)
		}
		if d1 < 0 {
			t.Fatalf("negative distance %v", d1)
		}
		in := Intersects(p, unitSq)
		d := Distance(p, unitSq)
		if in && d > Epsilon {
			t.Fatalf("intersecting but distance %v", d)
		}
		if !in && d <= 0 {
			t.Fatalf("non-intersecting but distance %v (p=%v)", d, p)
		}
	}
}

// Property: triangle inequality for point distances.
func TestQuickTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		a := Pt(rng.Float64()*10, rng.Float64()*10)
		b := Pt(rng.Float64()*10, rng.Float64()*10)
		c := Pt(rng.Float64()*10, rng.Float64()*10)
		if Distance(a, c) > Distance(a, b)+Distance(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated at %v %v %v", a, b, c)
		}
	}
}

func BenchmarkDistancePointLine100(b *testing.B) {
	pts := make([]Point, 101)
	for i := range pts {
		pts[i] = Pt(float64(i), math.Sin(float64(i)))
	}
	l := Line{Pts: pts}
	p := Pt(50, 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distance(p, l)
	}
}

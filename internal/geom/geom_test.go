package geom

import (
	"math"
	"testing"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypePoint:      "POINT",
		TypeLine:       "LINE",
		TypePolygon:    "POLYGON",
		TypeCollection: "COLLECTION",
		TypeInvalid:    "INVALID",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Type
		err  bool
	}{
		{"POINT", TypePoint, false},
		{"point", TypePoint, false},
		{"LINE", TypeLine, false},
		{"LineString", TypeLine, false},
		{"POLYGON", TypePolygon, false},
		{"COLLECTION", TypeCollection, false},
		{"GEOMETRYCOLLECTION", TypeCollection, false},
		{"CIRCLE", TypeInvalid, true},
		{"", TypeInvalid, true},
	} {
		got, err := ParseType(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseType(%q) err = %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("ParseType(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestEmptiness(t *testing.T) {
	if Pt(1, 2).IsEmpty() {
		t.Error("point is never empty")
	}
	if !(Line{}).IsEmpty() {
		t.Error("zero line should be empty")
	}
	if !(Line{Pts: []Point{{0, 0}}}).IsEmpty() {
		t.Error("one-vertex line should be empty")
	}
	if (Ln(Pt(0, 0), Pt(1, 1))).IsEmpty() {
		t.Error("two-vertex line should not be empty")
	}
	if !(Polygon{}).IsEmpty() {
		t.Error("zero polygon should be empty")
	}
	if (Poly(Pt(0, 0), Pt(1, 0), Pt(0, 1))).IsEmpty() {
		t.Error("triangle should not be empty")
	}
	if !(Collection{}).IsEmpty() {
		t.Error("zero collection should be empty")
	}
	if !(Coll(Line{})).IsEmpty() {
		t.Error("collection of empties should be empty")
	}
	if (Coll(Pt(0, 0))).IsEmpty() {
		t.Error("collection with a point should not be empty")
	}
}

func TestBounds(t *testing.T) {
	l := Ln(Pt(-1, 5), Pt(3, -2), Pt(0, 0))
	b := l.Bounds()
	if b.Min != Pt(-1, -2) || b.Max != Pt(3, 5) {
		t.Errorf("bounds = %+v", b)
	}
	c := Coll(Pt(10, 10), l)
	cb := c.Bounds()
	if cb.Min != Pt(-1, -2) || cb.Max != Pt(10, 10) {
		t.Errorf("collection bounds = %+v", cb)
	}
	if !EmptyRect().IsEmpty() {
		t.Error("EmptyRect should be empty")
	}
}

func TestRectOps(t *testing.T) {
	a := Rect{Min: Pt(0, 0), Max: Pt(2, 2)}
	b := Rect{Min: Pt(1, 1), Max: Pt(3, 3)}
	c := Rect{Min: Pt(5, 5), Max: Pt(6, 6)}
	if !a.Intersects(b) || b.Intersects(c) {
		t.Error("rect intersects wrong")
	}
	if !a.ContainsPoint(Pt(1, 1)) || a.ContainsPoint(Pt(3, 1)) {
		t.Error("rect contains wrong")
	}
	if !a.ContainsRect(Rect{Min: Pt(0.5, 0.5), Max: Pt(1.5, 1.5)}) {
		t.Error("ContainsRect inner failed")
	}
	if a.ContainsRect(b) {
		t.Error("ContainsRect overlap should be false")
	}
	if got := a.Area(); got != 4 {
		t.Errorf("Area = %v", got)
	}
	if got := c.DistanceToPoint(Pt(5.5, 5.5)); got != 0 {
		t.Errorf("inside distance = %v", got)
	}
	if got := c.DistanceToPoint(Pt(5.5, 0)); math.Abs(got-5) > 1e-12 {
		t.Errorf("below distance = %v", got)
	}
	if got := a.Center(); got != Pt(1, 1) {
		t.Errorf("Center = %v", got)
	}
}

func TestClonesAreDeep(t *testing.T) {
	l := Ln(Pt(0, 0), Pt(1, 1))
	lc := l.Clone().(Line)
	lc.Pts[0] = Pt(9, 9)
	if l.Pts[0] != Pt(0, 0) {
		t.Error("line clone aliases source")
	}
	p := Polygon{Shell: Ring{Pt(0, 0), Pt(1, 0), Pt(0, 1)}, Holes: []Ring{{Pt(0.1, 0.1), Pt(0.2, 0.1), Pt(0.1, 0.2)}}}
	pc := p.Clone().(Polygon)
	pc.Shell[0] = Pt(9, 9)
	pc.Holes[0][0] = Pt(9, 9)
	if p.Shell[0] != Pt(0, 0) || p.Holes[0][0] != Pt(0.1, 0.1) {
		t.Error("polygon clone aliases source")
	}
	c := Coll(l)
	cc := c.Clone().(Collection)
	cc.Geoms[0].(Line).Pts[0] = Pt(9, 9)
	if l.Pts[0] != Pt(0, 0) {
		t.Error("collection clone aliases source")
	}
}

func TestCollectionFlatten(t *testing.T) {
	c := Coll(Pt(0, 0), Coll(Pt(1, 1), Coll(Pt(2, 2))))
	flat := c.Flatten()
	if len(flat) != 3 {
		t.Fatalf("Flatten = %d members, want 3", len(flat))
	}
}

func TestPolygonAreaCentroid(t *testing.T) {
	sq := Poly(Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2))
	if got := sq.Area(); math.Abs(got-4) > 1e-12 {
		t.Errorf("Area = %v, want 4", got)
	}
	if got := sq.Centroid(); !got.Eq(Pt(1, 1)) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
	withHole := Polygon{
		Shell: Ring{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)},
		Holes: []Ring{{Pt(1, 1), Pt(2, 1), Pt(2, 2), Pt(1, 2)}},
	}
	if got := withHole.Area(); math.Abs(got-15) > 1e-12 {
		t.Errorf("Area with hole = %v, want 15", got)
	}
	// Clockwise ring must give the same unsigned area.
	cw := Poly(Pt(0, 2), Pt(2, 2), Pt(2, 0), Pt(0, 0))
	if got := cw.Area(); math.Abs(got-4) > 1e-12 {
		t.Errorf("CW Area = %v, want 4", got)
	}
}

package geom

import (
	"math"
	"testing"
)

func TestIntersectionOrderSensitivity(t *testing.T) {
	// The paper's defining example: LINE ∩ POINT → sublines,
	// POINT ∩ LINE → points.
	line := Ln(Pt(0, 0), Pt(10, 0))
	pt := Pt(4, 0)

	sub := Intersection(line, pt)
	if len(sub.Geoms) != 2 {
		t.Fatalf("line∩point: %d members, want 2 sublines (%s)", len(sub.Geoms), sub.WKT())
	}
	for _, g := range sub.Geoms {
		if g.Type() != TypeLine {
			t.Fatalf("line∩point member type %v, want LINE", g.Type())
		}
	}
	almost(t, Length(sub.Geoms[0]), 4, 1e-9, "first subline")
	almost(t, Length(sub.Geoms[1]), 6, 1e-9, "second subline")

	pts := Intersection(pt, line)
	if len(pts.Geoms) != 1 || pts.Geoms[0].Type() != TypePoint {
		t.Fatalf("point∩line = %s, want the point", pts.WKT())
	}
}

func TestIntersectionPointMiss(t *testing.T) {
	line := Ln(Pt(0, 0), Pt(10, 0))
	if got := Intersection(line, Pt(5, 1)); !got.IsEmpty() {
		t.Errorf("off-line point should give empty, got %s", got.WKT())
	}
	if got := Intersection(Pt(5, 1), line); !got.IsEmpty() {
		t.Errorf("point∩line miss should be empty, got %s", got.WKT())
	}
}

func TestIntersectionSnapTolerance(t *testing.T) {
	// A point slightly off the line (within SnapTolerance) still splits it —
	// layers are digitized independently of lines.
	line := Ln(Pt(0, 0), Pt(10, 0))
	near := Pt(5, SnapTolerance/2)
	got := Intersection(line, near)
	if len(got.Geoms) != 2 {
		t.Fatalf("near point should split line, got %s", got.WKT())
	}
	far := Pt(5, SnapTolerance*3)
	if got := Intersection(line, far); !got.IsEmpty() {
		t.Errorf("far point should not split, got %s", got.WKT())
	}
}

func TestIntersectionLineEndpoint(t *testing.T) {
	line := Ln(Pt(0, 0), Pt(10, 0))
	got := Intersection(line, Pt(0, 0))
	if len(got.Geoms) != 1 {
		t.Fatalf("endpoint split should return whole line, got %s", got.WKT())
	}
	almost(t, Length(got.Geoms[0]), 10, 1e-9, "whole line")
}

func TestIntersectionMultiVertexSplit(t *testing.T) {
	line := Ln(Pt(0, 0), Pt(5, 0), Pt(5, 5))
	got := Intersection(line, Pt(5, 0)) // split at the interior vertex
	if len(got.Geoms) != 2 {
		t.Fatalf("vertex split: %d members (%s)", len(got.Geoms), got.WKT())
	}
	almost(t, Length(got.Geoms[0]), 5, 1e-9, "before vertex")
	almost(t, Length(got.Geoms[1]), 5, 1e-9, "after vertex")
}

func TestIntersectionLineLine(t *testing.T) {
	a := Ln(Pt(0, 0), Pt(2, 2))
	b := Ln(Pt(0, 2), Pt(2, 0))
	got := Intersection(a, b)
	if len(got.Geoms) != 1 {
		t.Fatalf("crossing lines: %s", got.WKT())
	}
	p, ok := got.Geoms[0].(Point)
	if !ok || !p.Eq(Pt(1, 1)) {
		t.Fatalf("crossing point = %s, want POINT(1 1)", got.Geoms[0].WKT())
	}
	// Collinear overlap yields the shared segment.
	c := Ln(Pt(1, 1), Pt(3, 3))
	ov := Intersection(a, c)
	if len(ov.Geoms) != 1 || ov.Geoms[0].Type() != TypeLine {
		t.Fatalf("overlap = %s", ov.WKT())
	}
	almost(t, Length(ov.Geoms[0]), math.Sqrt2, 1e-9, "shared segment")
	// Disjoint.
	if got := Intersection(a, Ln(Pt(10, 10), Pt(11, 11))); !got.IsEmpty() {
		t.Errorf("disjoint lines: %s", got.WKT())
	}
}

func TestIntersectionLinePolygon(t *testing.T) {
	line := Ln(Pt(-1, 0.5), Pt(2, 0.5))
	got := Intersection(line, unitSq)
	if len(got.Geoms) != 1 {
		t.Fatalf("clip: %s", got.WKT())
	}
	almost(t, Length(got.Geoms[0]), 1, 1e-9, "clipped length")
	// A line entering and leaving twice yields two sublines.
	zig := Ln(Pt(-1, 0.5), Pt(0.5, 0.5), Pt(0.5, 2), Pt(0.8, 2), Pt(0.8, 0.5), Pt(2, 0.5))
	got2 := Intersection(zig, unitSq)
	if len(got2.Geoms) != 2 {
		t.Fatalf("zig clip: %d members (%s)", len(got2.Geoms), got2.WKT())
	}
	// Fully inside line is returned whole.
	in := Ln(Pt(0.2, 0.2), Pt(0.8, 0.2))
	got3 := Intersection(in, unitSq)
	if len(got3.Geoms) != 1 {
		t.Fatalf("inside clip: %s", got3.WKT())
	}
	almost(t, Length(got3.Geoms[0]), 0.6, 1e-9, "inside length")
	// Disjoint line → empty.
	if got := Intersection(Ln(Pt(5, 5), Pt(6, 6)), unitSq); !got.IsEmpty() {
		t.Errorf("disjoint clip: %s", got.WKT())
	}
}

func TestIntersectionPolygonPolygon(t *testing.T) {
	a := Poly(Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2))
	b := Poly(Pt(1, 1), Pt(3, 1), Pt(3, 3), Pt(1, 3))
	got := Intersection(a, b)
	if len(got.Geoms) != 1 {
		t.Fatalf("poly∩poly: %s", got.WKT())
	}
	clip, ok := got.Geoms[0].(Polygon)
	if !ok {
		t.Fatalf("member type %v", got.Geoms[0].Type())
	}
	almost(t, clip.Area(), 1, 1e-9, "overlap area")
	// Disjoint polygons → empty.
	if got := Intersection(a, farSq); !got.IsEmpty() {
		t.Errorf("disjoint polygons: %s", got.WKT())
	}
	// Clockwise clip ring must work the same.
	bcw := Poly(Pt(1, 3), Pt(3, 3), Pt(3, 1), Pt(1, 1))
	got2 := Intersection(a, bcw)
	if len(got2.Geoms) != 1 {
		t.Fatalf("cw clip: %s", got2.WKT())
	}
	almost(t, got2.Geoms[0].(Polygon).Area(), 1, 1e-9, "cw overlap area")
}

func TestIntersectionPolygonPoint(t *testing.T) {
	if got := Intersection(unitSq, Pt(0.5, 0.5)); len(got.Geoms) != 1 || got.Geoms[0].Type() != TypePolygon {
		t.Errorf("polygon∩interior-point should return the polygon: %s", got.WKT())
	}
	if got := Intersection(unitSq, Pt(5, 5)); !got.IsEmpty() {
		t.Errorf("polygon∩far-point: %s", got.WKT())
	}
}

func TestIntersectionCollectionFirstOperand(t *testing.T) {
	// The Example 5.3 pattern: split a line at a city, then split the
	// resulting collection at an airport; the shortest member is the
	// city–airport stretch.
	train := Ln(Pt(0, 0), Pt(10, 0))
	city := Pt(3, 0)
	airport := Pt(7, 0)
	step1 := Intersection(train, city)
	if len(step1.Geoms) != 2 {
		t.Fatalf("step1: %s", step1.WKT())
	}
	step2 := Intersection(step1, airport)
	// Only the subline containing the airport (3..10) splits: into 3..7 and
	// 7..10. The 0..3 member is dropped (airport not on it).
	if len(step2.Geoms) != 2 {
		t.Fatalf("step2: %d members (%s)", len(step2.Geoms), step2.WKT())
	}
	almost(t, MinLength(step2), 3, 1e-9, "city–airport stretch (7..10 is 3, 3..7 is 4 → min 3)")
	// The city–airport stretch itself is the 4-long piece; the paper's rule
	// compares the min member against a generous 50 km threshold, so either
	// piece bounded by the two stops answers the "is there a short train
	// connection" question. Assert both pieces are present.
	lens := []float64{Length(step2.Geoms[0]), Length(step2.Geoms[1])}
	if !((math.Abs(lens[0]-4) < 1e-9 && math.Abs(lens[1]-3) < 1e-9) ||
		(math.Abs(lens[0]-3) < 1e-9 && math.Abs(lens[1]-4) < 1e-9)) {
		t.Fatalf("piece lengths = %v, want {3,4}", lens)
	}
}

func TestIntersectionEmptyInputs(t *testing.T) {
	if got := Intersection(nil, Pt(0, 0)); !got.IsEmpty() {
		t.Error("nil first operand")
	}
	if got := Intersection(Pt(0, 0), nil); !got.IsEmpty() {
		t.Error("nil second operand")
	}
	if got := Intersection(Line{}, Pt(0, 0)); !got.IsEmpty() {
		t.Error("empty first operand")
	}
}

func TestIntersectionPointFirst(t *testing.T) {
	if got := Intersection(Pt(0.5, 0.5), unitSq); len(got.Geoms) != 1 || got.Geoms[0].Type() != TypePoint {
		t.Errorf("point∩polygon: %s", got.WKT())
	}
	if got := Intersection(Pt(0.5, 0.5), Pt(0.5, 0.5)); len(got.Geoms) != 1 {
		t.Errorf("point∩point same: %s", got.WKT())
	}
	if got := Intersection(Pt(0, 0), Pt(5, 5)); !got.IsEmpty() {
		t.Errorf("point∩point far: %s", got.WKT())
	}
}

// Property: every member of Intersection(a,b) intersects both a and b
// (within snapping tolerance), for line/point and line/polygon pairs.
func TestQuickIntersectionMembersIntersect(t *testing.T) {
	line := Ln(Pt(0, 0), Pt(4, 2), Pt(8, 0), Pt(12, 3))
	for i := 0; i <= 40; i++ {
		f := float64(i) / 40 * 12
		p := Pt(f, 0.5)
		got := Intersection(line, p)
		for _, m := range got.Geoms {
			if Distance(m, line) > SnapTolerance*2 {
				t.Fatalf("member %s too far from source line", m.WKT())
			}
		}
	}
}

func BenchmarkIntersectionSplit(b *testing.B) {
	line := Ln(Pt(0, 0), Pt(5, 0), Pt(10, 2), Pt(15, 0))
	p := Pt(7, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Intersection(line, p)
	}
}

func BenchmarkIntersectionClip(b *testing.B) {
	line := Ln(Pt(-1, 0.5), Pt(0.5, 0.5), Pt(0.5, 2), Pt(0.8, 2), Pt(0.8, 0.5), Pt(2, 0.5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Intersection(line, unitSq)
	}
}

package geom

import (
	"strings"
	"testing"
)

func TestWKTWrite(t *testing.T) {
	for _, tc := range []struct {
		g    Geometry
		want string
	}{
		{Pt(1, 2), "POINT (1 2)"},
		{Pt(-0.5, 38.25), "POINT (-0.5 38.25)"},
		{Ln(Pt(0, 0), Pt(1, 1)), "LINESTRING (0 0, 1 1)"},
		{Line{}, "LINESTRING EMPTY"},
		{Poly(Pt(0, 0), Pt(1, 0), Pt(1, 1)), "POLYGON ((0 0, 1 0, 1 1, 0 0))"},
		{Polygon{}, "POLYGON EMPTY"},
		{Coll(Pt(1, 1)), "GEOMETRYCOLLECTION (POINT (1 1))"},
		{Collection{}, "GEOMETRYCOLLECTION EMPTY"},
	} {
		if got := tc.g.WKT(); got != tc.want {
			t.Errorf("WKT = %q, want %q", got, tc.want)
		}
	}
}

func TestWKTParseValid(t *testing.T) {
	for _, src := range []string{
		"POINT (1 2)",
		"POINT(1 2)",
		"point ( -1.5 2e3 )",
		"LINESTRING (0 0, 1 1, 2 0)",
		"LINE (0 0, 5 5)",
		"LINESTRING EMPTY",
		"POLYGON ((0 0, 1 0, 1 1, 0 0))",
		"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))",
		"POLYGON EMPTY",
		"GEOMETRYCOLLECTION (POINT (1 1), LINESTRING (0 0, 1 1))",
		"COLLECTION (POINT (0 0))",
		"GEOMETRYCOLLECTION EMPTY",
		"GEOMETRYCOLLECTION (GEOMETRYCOLLECTION (POINT (3 3)))",
	} {
		if _, err := ParseWKT(src); err != nil {
			t.Errorf("ParseWKT(%q): %v", src, err)
		}
	}
}

func TestWKTParseInvalid(t *testing.T) {
	for _, src := range []string{
		"",
		"CIRCLE (0 0)",
		"POINT",
		"POINT ()",
		"POINT (1)",
		"POINT (1 2",
		"POINT (1 2) extra",
		"LINESTRING (0 0)",
		"POLYGON ((0 0, 1 1))",
		"POINT EMPTY",
		"GEOMETRYCOLLECTION (POINT (1 1)",
	} {
		if _, err := ParseWKT(src); err == nil {
			t.Errorf("ParseWKT(%q): expected error", src)
		}
	}
}

func TestWKTRoundTrip(t *testing.T) {
	geoms := []Geometry{
		Pt(1.5, -2.25),
		Ln(Pt(0, 0), Pt(3, 4), Pt(5, 0)),
		Poly(Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)),
		Polygon{
			Shell: Ring{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)},
			Holes: []Ring{{Pt(1, 1), Pt(2, 1), Pt(2, 2), Pt(1, 2)}},
		},
		Coll(Pt(1, 1), Ln(Pt(0, 0), Pt(1, 1))),
	}
	for _, g := range geoms {
		back, err := ParseWKT(g.WKT())
		if err != nil {
			t.Fatalf("parse %q: %v", g.WKT(), err)
		}
		if !Equals(g, back) {
			t.Errorf("round trip %q → %q not equal", g.WKT(), back.WKT())
		}
	}
}

func TestWKTPolygonRingClosedOnOutput(t *testing.T) {
	w := Poly(Pt(0, 0), Pt(1, 0), Pt(0, 1)).WKT()
	if !strings.HasSuffix(w, "0 0))") {
		t.Errorf("ring must be closed on output: %q", w)
	}
}

func BenchmarkParseWKTPolygon(b *testing.B) {
	src := "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseWKT(src); err != nil {
			b.Fatal(err)
		}
	}
}

// Package geom implements the planar and geodetic geometry substrate used by
// the spatial data warehouse: the four geometric primitives the paper's
// GeometricTypes enumeration allows (POINT, LINE, POLYGON, COLLECTION), WKT
// encoding, the ISO/OGC-style topological predicates of PRML's spatial
// expressions (Intersect, Disjoint, Cross, Inside, Equals), distance and
// length computation, and the paper's order-sensitive Intersection operator.
//
// Coordinates are stored as X=longitude, Y=latitude in decimal degrees when
// geometries describe geographic data; all geodetic computations (package
// functions prefixed Geodetic, and Haversine) interpret them that way and
// return kilometres. The plain functions (Distance, Length, the predicates)
// operate in the planar coordinate space of the stored values.
package geom

import (
	"fmt"
	"math"
)

// Type enumerates the geometric primitives allowed by the spatial-aware user
// model's GeometricTypes enumeration (paper Fig. 3). The names follow the
// paper: POINT, LINE, POLYGON and COLLECTION.
type Type uint8

const (
	TypeInvalid Type = iota
	TypePoint
	TypeLine
	TypePolygon
	TypeCollection
)

// String returns the paper's upper-case spelling of the type.
func (t Type) String() string {
	switch t {
	case TypePoint:
		return "POINT"
	case TypeLine:
		return "LINE"
	case TypePolygon:
		return "POLYGON"
	case TypeCollection:
		return "COLLECTION"
	default:
		return "INVALID"
	}
}

// ParseType parses the paper's spelling of a geometric type. It accepts the
// PRML literals POINT, LINE, POLYGON and COLLECTION (case-insensitively).
func ParseType(s string) (Type, error) {
	switch upper(s) {
	case "POINT":
		return TypePoint, nil
	case "LINE", "LINESTRING":
		return TypeLine, nil
	case "POLYGON":
		return TypePolygon, nil
	case "COLLECTION", "GEOMETRYCOLLECTION":
		return TypeCollection, nil
	}
	return TypeInvalid, fmt.Errorf("geom: unknown geometric type %q", s)
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// Epsilon is the tolerance used by the planar predicates: coordinates closer
// than Epsilon are considered coincident. Stored coordinates are degrees, so
// the default corresponds to roughly a tenth of a metre at the equator.
const Epsilon = 1e-6

// Geometry is the interface satisfied by the four primitives.
type Geometry interface {
	// Type returns the primitive kind.
	Type() Type
	// Bounds returns the axis-aligned bounding rectangle. Empty geometries
	// return an empty Rect (Min > Max).
	Bounds() Rect
	// IsEmpty reports whether the geometry has no coordinates.
	IsEmpty() bool
	// WKT renders the geometry in Well-Known Text.
	WKT() string
	// Clone returns a deep copy.
	Clone() Geometry
}

// Point is a POINT.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

func (p Point) Type() Type      { return TypePoint }
func (p Point) IsEmpty() bool   { return false }
func (p Point) Bounds() Rect    { return Rect{Min: p, Max: p} }
func (p Point) Clone() Geometry { return p }

// Eq reports coordinate equality within Epsilon.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Epsilon && math.Abs(p.Y-q.Y) <= Epsilon
}

// Line is a LINE (an open polyline with at least two vertices).
type Line struct {
	Pts []Point
}

// Ln is shorthand for constructing a Line from vertices.
func Ln(pts ...Point) Line { return Line{Pts: pts} }

func (l Line) Type() Type    { return TypeLine }
func (l Line) IsEmpty() bool { return len(l.Pts) < 2 }

func (l Line) Bounds() Rect {
	r := EmptyRect()
	for _, p := range l.Pts {
		r = r.ExtendPoint(p)
	}
	return r
}

func (l Line) Clone() Geometry {
	pts := make([]Point, len(l.Pts))
	copy(pts, l.Pts)
	return Line{Pts: pts}
}

// NumSegments returns the number of line segments.
func (l Line) NumSegments() int {
	if len(l.Pts) < 2 {
		return 0
	}
	return len(l.Pts) - 1
}

// Segment returns the i-th segment.
func (l Line) Segment(i int) (Point, Point) { return l.Pts[i], l.Pts[i+1] }

// Ring is a closed sequence of vertices (the closing edge from the last
// vertex back to the first is implicit). A valid ring has at least three
// vertices.
type Ring []Point

// Polygon is a POLYGON with an outer shell and optional holes.
type Polygon struct {
	Shell Ring
	Holes []Ring
}

// Poly is shorthand for constructing a hole-free polygon.
func Poly(shell ...Point) Polygon { return Polygon{Shell: shell} }

func (p Polygon) Type() Type    { return TypePolygon }
func (p Polygon) IsEmpty() bool { return len(p.Shell) < 3 }

func (p Polygon) Bounds() Rect {
	r := EmptyRect()
	for _, pt := range p.Shell {
		r = r.ExtendPoint(pt)
	}
	return r
}

func (p Polygon) Clone() Geometry {
	shell := make(Ring, len(p.Shell))
	copy(shell, p.Shell)
	holes := make([]Ring, len(p.Holes))
	for i, h := range p.Holes {
		holes[i] = make(Ring, len(h))
		copy(holes[i], h)
	}
	return Polygon{Shell: shell, Holes: holes}
}

// Collection is a COLLECTION of geometries.
type Collection struct {
	Geoms []Geometry
}

// Coll is shorthand for constructing a Collection.
func Coll(gs ...Geometry) Collection { return Collection{Geoms: gs} }

func (c Collection) Type() Type { return TypeCollection }

func (c Collection) IsEmpty() bool {
	for _, g := range c.Geoms {
		if !g.IsEmpty() {
			return false
		}
	}
	return true
}

func (c Collection) Bounds() Rect {
	r := EmptyRect()
	for _, g := range c.Geoms {
		if !g.IsEmpty() {
			r = r.ExtendRect(g.Bounds())
		}
	}
	return r
}

func (c Collection) Clone() Geometry {
	gs := make([]Geometry, len(c.Geoms))
	for i, g := range c.Geoms {
		gs[i] = g.Clone()
	}
	return Collection{Geoms: gs}
}

// Flatten returns the leaf (non-collection) members, recursively.
func (c Collection) Flatten() []Geometry {
	var out []Geometry
	for _, g := range c.Geoms {
		if sub, ok := g.(Collection); ok {
			out = append(out, sub.Flatten()...)
		} else {
			out = append(out, g)
		}
	}
	return out
}

// Rect is an axis-aligned bounding rectangle.
type Rect struct {
	Min, Max Point
}

// EmptyRect returns the identity for ExtendRect: Min at +inf, Max at -inf.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// IsEmpty reports whether the rect contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// ExtendPoint grows r to include p.
func (r Rect) ExtendPoint(p Point) Rect {
	if p.X < r.Min.X {
		r.Min.X = p.X
	}
	if p.Y < r.Min.Y {
		r.Min.Y = p.Y
	}
	if p.X > r.Max.X {
		r.Max.X = p.X
	}
	if p.Y > r.Max.Y {
		r.Max.Y = p.Y
	}
	return r
}

// ExtendRect grows r to include o.
func (r Rect) ExtendRect(o Rect) Rect {
	if o.IsEmpty() {
		return r
	}
	return r.ExtendPoint(o.Min).ExtendPoint(o.Max)
}

// Intersects reports whether the rectangles overlap (edge touch counts,
// within Epsilon).
func (r Rect) Intersects(o Rect) bool {
	if r.IsEmpty() || o.IsEmpty() {
		return false
	}
	return r.Min.X <= o.Max.X+Epsilon && o.Min.X <= r.Max.X+Epsilon &&
		r.Min.Y <= o.Max.Y+Epsilon && o.Min.Y <= r.Max.Y+Epsilon
}

// ContainsPoint reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X-Epsilon && p.X <= r.Max.X+Epsilon &&
		p.Y >= r.Min.Y-Epsilon && p.Y <= r.Max.Y+Epsilon
}

// ContainsRect reports whether o lies entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	if r.IsEmpty() || o.IsEmpty() {
		return false
	}
	return r.ContainsPoint(o.Min) && r.ContainsPoint(o.Max)
}

// Area returns the rectangle's area (0 for empty rects).
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y)
}

// Expand grows the rect by d in every direction.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Center returns the rect's center point.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// DistanceToPoint returns the planar distance from the rect to p (0 if p is
// inside). Used as a lower bound in best-first nearest-neighbour search.
func (r Rect) DistanceToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplifyLineRemovesCollinear(t *testing.T) {
	// Collinear middle vertices vanish at any positive tolerance.
	l := Ln(Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(3, 0))
	got := Simplify(l, 0.01).(Line)
	if len(got.Pts) != 2 {
		t.Fatalf("simplified to %d points: %v", len(got.Pts), got.Pts)
	}
	if !got.Pts[0].Eq(Pt(0, 0)) || !got.Pts[1].Eq(Pt(3, 0)) {
		t.Fatalf("endpoints moved: %v", got.Pts)
	}
}

func TestSimplifyKeepsSignificantVertices(t *testing.T) {
	l := Ln(Pt(0, 0), Pt(5, 4), Pt(10, 0))
	got := Simplify(l, 1).(Line)
	if len(got.Pts) != 3 {
		t.Fatalf("significant vertex dropped: %v", got.Pts)
	}
	// With a huge tolerance the spike goes.
	got = Simplify(l, 10).(Line)
	if len(got.Pts) != 2 {
		t.Fatalf("vertex not dropped at high tolerance: %v", got.Pts)
	}
}

func TestSimplifyToleranceBound(t *testing.T) {
	// Property: every original vertex stays within tolerance of the
	// simplified line.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		pts := make([]Point, 50)
		x := 0.0
		for i := range pts {
			x += rng.Float64()
			pts[i] = Pt(x, rng.Float64()*3)
		}
		orig := Line{Pts: pts}
		tol := 0.5
		simp := Simplify(orig, tol).(Line)
		if len(simp.Pts) > len(pts) {
			t.Fatal("simplification added points")
		}
		for _, p := range pts {
			if d := Distance(p, simp); d > tol+1e-9 {
				t.Fatalf("vertex %v is %.4f from simplified line (tol %.2f)", p, d, tol)
			}
		}
	}
}

func TestSimplifyPassThroughs(t *testing.T) {
	p := Pt(1, 2)
	if got := Simplify(p, 1); !Equals(got, p) {
		t.Error("point must pass through")
	}
	if got := Simplify(nil, 1); got != nil {
		t.Error("nil must pass through")
	}
	l := Ln(Pt(0, 0), Pt(1, 1))
	if got := Simplify(l, 0); !Equals(got, l) {
		t.Error("zero tolerance must pass through")
	}
	// Collection simplifies member-wise.
	c := Coll(Ln(Pt(0, 0), Pt(1, 0), Pt(2, 0)))
	got := Simplify(c, 0.1).(Collection)
	if len(got.Geoms[0].(Line).Pts) != 2 {
		t.Error("collection member not simplified")
	}
}

func TestSimplifyPolygonKeepsRing(t *testing.T) {
	// A near-square with redundant vertices.
	p := Polygon{Shell: Ring{
		Pt(0, 0), Pt(1, 0.001), Pt(2, 0), Pt(2, 2), Pt(1, 2.001), Pt(0, 2),
	}}
	got := Simplify(p, 0.01).(Polygon)
	if len(got.Shell) != 4 {
		t.Fatalf("shell = %v", got.Shell)
	}
	// Absurd tolerance still yields a valid ring (≥3 vertices).
	got = Simplify(p, 100).(Polygon)
	if len(got.Shell) < 3 {
		t.Fatalf("over-simplified shell: %v", got.Shell)
	}
	// Tiny holes vanish.
	withHole := Polygon{
		Shell: Ring{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)},
		Holes: []Ring{{Pt(5, 5), Pt(5.001, 5), Pt(5, 5.001)}},
	}
	got = Simplify(withHole, 0.01).(Polygon)
	if len(got.Holes) != 0 {
		t.Fatalf("tiny hole survived: %v", got.Holes)
	}
}

func TestConvexHullSquare(t *testing.T) {
	pts := Coll(Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2), Pt(1, 1), Pt(0.5, 1.5))
	hull, ok := ConvexHull(pts).(Polygon)
	if !ok {
		t.Fatalf("hull type %T", ConvexHull(pts))
	}
	if len(hull.Shell) != 4 {
		t.Fatalf("hull = %v", hull.Shell)
	}
	if math.Abs(hull.Area()-4) > 1e-9 {
		t.Fatalf("hull area = %v", hull.Area())
	}
	// Every input point is inside or on the hull.
	for _, p := range pts.Geoms {
		if !Intersects(p, hull) {
			t.Fatalf("point %v outside hull", p)
		}
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if got := ConvexHull(Coll()); !got.IsEmpty() {
		t.Error("empty input should give empty hull")
	}
	if got, ok := ConvexHull(Pt(1, 1)).(Point); !ok || !got.Eq(Pt(1, 1)) {
		t.Error("single point hull")
	}
	if got, ok := ConvexHull(Coll(Pt(0, 0), Pt(1, 1), Pt(0, 0))).(Line); !ok || got.IsEmpty() {
		t.Error("two distinct points give a line")
	}
	// Collinear points give a line.
	if _, ok := ConvexHull(Coll(Pt(0, 0), Pt(1, 1), Pt(2, 2))).(Line); !ok {
		t.Error("collinear points should give a line")
	}
}

// Property: the hull contains all vertices and is convex.
func TestQuickConvexHullProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(60)
		gs := make([]Geometry, n)
		for i := range gs {
			gs[i] = Pt(rng.Float64()*10, rng.Float64()*10)
		}
		hull := ConvexHull(Collection{Geoms: gs})
		poly, ok := hull.(Polygon)
		if !ok {
			continue // degenerate random set
		}
		for _, g := range gs {
			if !Intersects(g, poly) {
				t.Fatalf("vertex %v outside hull", g)
			}
		}
		// Convexity: every consecutive triple turns the same way.
		sh := poly.Shell
		for i := range sh {
			a, b, c := sh[i], sh[(i+1)%len(sh)], sh[(i+2)%len(sh)]
			if cross(a, b, c) < -Epsilon {
				t.Fatalf("hull not convex at %v %v %v", a, b, c)
			}
		}
	}
}

func BenchmarkSimplify1000(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 1000)
	x := 0.0
	for i := range pts {
		x += rng.Float64()
		pts[i] = Pt(x, rng.Float64()*5)
	}
	l := Line{Pts: pts}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simplify(l, 0.5)
	}
}

func BenchmarkConvexHull1000(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	gs := make([]Geometry, 1000)
	for i := range gs {
		gs[i] = Pt(rng.Float64()*10, rng.Float64()*10)
	}
	c := Collection{Geoms: gs}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ConvexHull(c)
	}
}

package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randomGeometry builds an arbitrary valid geometry of bounded depth.
func randomGeometry(rng *rand.Rand, depth int) Geometry {
	kind := rng.Intn(4)
	if depth <= 0 && kind == 3 {
		kind = rng.Intn(3)
	}
	switch kind {
	case 0:
		return Pt(rng.NormFloat64()*50, rng.NormFloat64()*50)
	case 1:
		n := 2 + rng.Intn(8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.NormFloat64()*50, rng.NormFloat64()*50)
		}
		return Line{Pts: pts}
	case 2:
		// A random convex-ish polygon: points on a circle with jitter.
		n := 3 + rng.Intn(7)
		cx, cy := rng.NormFloat64()*20, rng.NormFloat64()*20
		r := 1 + rng.Float64()*10
		shell := make(Ring, n)
		for i := range shell {
			ang := float64(i) / float64(n) * 2 * math.Pi
			shell[i] = Pt(cx+r*math.Cos(ang), cy+r*math.Sin(ang))
		}
		return Polygon{Shell: shell}
	default:
		n := 1 + rng.Intn(4)
		gs := make([]Geometry, n)
		for i := range gs {
			gs[i] = randomGeometry(rng, depth-1)
		}
		return Collection{Geoms: gs}
	}
}

// TestQuickRandomWKTRoundTrip: any generated geometry survives
// WKT encode → parse → Equals.
func TestQuickRandomWKTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 500; trial++ {
		g := randomGeometry(rng, 2)
		back, err := ParseWKT(g.WKT())
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, g.WKT(), err)
		}
		if !Equals(g, back) {
			t.Fatalf("trial %d: round trip changed %s → %s", trial, g.WKT(), back.WKT())
		}
	}
}

// TestQuickRandomPredicatesTotal: the predicates never panic and obey basic
// consistency laws on random geometry pairs.
func TestQuickRandomPredicatesTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 1000; trial++ {
		a := randomGeometry(rng, 1)
		b := randomGeometry(rng, 1)
		inter := Intersects(a, b)
		if Disjoint(a, b) == inter {
			t.Fatalf("Disjoint must negate Intersects for %s / %s", a.WKT(), b.WKT())
		}
		if Within(a, b) && !inter {
			t.Fatalf("Within without Intersects for %s / %s", a.WKT(), b.WKT())
		}
		if !inter {
			if d := Distance(a, b); d <= 0 {
				t.Fatalf("disjoint but distance %v for %s / %s", d, a.WKT(), b.WKT())
			}
		}
		if !Equals(a, a) {
			t.Fatalf("Equals not reflexive for %s", a.WKT())
		}
		// Ordered intersection never panics and members stay near both
		// operands.
		_ = Intersection(a, b)
	}
}

// TestQuickRandomSimplifyIdempotent: simplifying twice equals simplifying
// once (same tolerance).
func TestQuickRandomSimplifyIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		g := randomGeometry(rng, 1)
		once := Simplify(g, 0.5)
		twice := Simplify(once, 0.5)
		if !Equals(once, twice) {
			t.Fatalf("simplify not idempotent for %s:\nonce  %s\ntwice %s",
				g.WKT(), once.WKT(), twice.WKT())
		}
	}
}

package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	unitSq   = Poly(Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1))
	bigSq    = Poly(Pt(-1, -1), Pt(3, -1), Pt(3, 3), Pt(-1, 3))
	farSq    = Poly(Pt(10, 10), Pt(11, 10), Pt(11, 11), Pt(10, 11))
	diagLine = Ln(Pt(-1, -1), Pt(2, 2))
)

func TestIntersectsPointPoint(t *testing.T) {
	if !Intersects(Pt(1, 1), Pt(1, 1)) {
		t.Error("identical points must intersect")
	}
	if Intersects(Pt(1, 1), Pt(1.1, 1)) {
		t.Error("distinct points must not intersect")
	}
	if !Intersects(Pt(1, 1), Pt(1+Epsilon/2, 1)) {
		t.Error("points within Epsilon must intersect")
	}
}

func TestIntersectsPointLine(t *testing.T) {
	l := Ln(Pt(0, 0), Pt(2, 0), Pt(2, 2))
	for _, tc := range []struct {
		p    Point
		want bool
	}{
		{Pt(1, 0), true},  // on first segment
		{Pt(2, 1), true},  // on second segment
		{Pt(0, 0), true},  // endpoint
		{Pt(2, 0), true},  // joint vertex
		{Pt(1, 1), false}, // off line
		{Pt(3, 0), false}, // beyond end
		{Pt(1, 0.1), false},
	} {
		if got := Intersects(tc.p, l); got != tc.want {
			t.Errorf("Intersects(%v, line) = %v, want %v", tc.p, got, tc.want)
		}
		if got := Intersects(l, tc.p); got != tc.want {
			t.Errorf("Intersects(line, %v) = %v, want %v (symmetry)", tc.p, got, tc.want)
		}
	}
}

func TestIntersectsPointPolygon(t *testing.T) {
	for _, tc := range []struct {
		p    Point
		want bool
	}{
		{Pt(0.5, 0.5), true}, // inside
		{Pt(0, 0.5), true},   // on boundary
		{Pt(0, 0), true},     // on vertex
		{Pt(-0.5, 0.5), false},
		{Pt(2, 2), false},
	} {
		if got := Intersects(tc.p, unitSq); got != tc.want {
			t.Errorf("Intersects(%v, unitSq) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Point inside a hole is outside the polygon.
	donut := Polygon{
		Shell: Ring{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)},
		Holes: []Ring{{Pt(1, 1), Pt(3, 1), Pt(3, 3), Pt(1, 3)}},
	}
	if Intersects(Pt(2, 2), donut) {
		t.Error("point in hole should not intersect polygon")
	}
	if !Intersects(Pt(0.5, 0.5), donut) {
		t.Error("point in annulus should intersect polygon")
	}
	if !Intersects(Pt(1, 2), donut) {
		t.Error("point on hole boundary should intersect polygon")
	}
}

func TestIntersectsLineLine(t *testing.T) {
	a := Ln(Pt(0, 0), Pt(2, 2))
	b := Ln(Pt(0, 2), Pt(2, 0))
	if !Intersects(a, b) {
		t.Error("crossing lines must intersect")
	}
	c := Ln(Pt(0, 3), Pt(2, 3))
	if Intersects(a, c) {
		t.Error("parallel-ish separated lines must not intersect")
	}
	// Touching at endpoints.
	d := Ln(Pt(2, 2), Pt(4, 2))
	if !Intersects(a, d) {
		t.Error("end-touching lines must intersect")
	}
	// Collinear overlap.
	e := Ln(Pt(1, 1), Pt(3, 3))
	if !Intersects(a, e) {
		t.Error("collinear overlapping lines must intersect")
	}
}

func TestIntersectsLinePolygon(t *testing.T) {
	if !Intersects(diagLine, unitSq) {
		t.Error("line through square must intersect")
	}
	if Intersects(Ln(Pt(5, 5), Pt(6, 6)), unitSq) {
		t.Error("far line must not intersect")
	}
	// Line fully inside.
	if !Intersects(Ln(Pt(0.2, 0.2), Pt(0.8, 0.8)), unitSq) {
		t.Error("interior line must intersect")
	}
	// Line touching a corner only.
	if !Intersects(Ln(Pt(-1, 1), Pt(1, -1)), unitSq) {
		t.Error("corner-touching line must intersect")
	}
}

func TestIntersectsPolygonPolygon(t *testing.T) {
	if !Intersects(unitSq, bigSq) {
		t.Error("contained polygon must intersect container")
	}
	if !Intersects(bigSq, unitSq) {
		t.Error("container must intersect contained polygon")
	}
	if Intersects(unitSq, farSq) {
		t.Error("distant polygons must not intersect")
	}
	half := Poly(Pt(0.5, -1), Pt(2, -1), Pt(2, 2), Pt(0.5, 2))
	if !Intersects(unitSq, half) {
		t.Error("overlapping polygons must intersect")
	}
}

func TestIntersectsCollection(t *testing.T) {
	c := Coll(Pt(5, 5), Ln(Pt(0, 0), Pt(1, 1)))
	if !Intersects(c, unitSq) {
		t.Error("collection with intersecting member must intersect")
	}
	if !Intersects(unitSq, c) {
		t.Error("symmetric collection intersect failed")
	}
	if Intersects(Coll(Pt(5, 5)), unitSq) {
		t.Error("collection of far point must not intersect")
	}
}

func TestIntersectsEmptyAndNil(t *testing.T) {
	if Intersects(nil, Pt(0, 0)) || Intersects(Pt(0, 0), nil) {
		t.Error("nil never intersects")
	}
	if Intersects(Line{}, Pt(0, 0)) {
		t.Error("empty never intersects")
	}
	if !Disjoint(nil, nil) {
		t.Error("nil is disjoint from everything")
	}
}

func TestDisjointIsNegation(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Pt(ax, ay)
		b := Ln(Pt(bx, by), Pt(bx+1, by+1))
		return Disjoint(a, b) == !Intersects(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWithin(t *testing.T) {
	if !Within(Pt(0.5, 0.5), unitSq) {
		t.Error("interior point within polygon")
	}
	if !Within(Pt(0, 0.5), unitSq) {
		t.Error("boundary point counts as within (closed set)")
	}
	if Within(Pt(2, 2), unitSq) {
		t.Error("outside point not within")
	}
	if !Within(Ln(Pt(0.1, 0.1), Pt(0.9, 0.9)), unitSq) {
		t.Error("interior line within polygon")
	}
	if Within(diagLine, unitSq) {
		t.Error("line exiting the polygon is not within")
	}
	if !Within(unitSq, bigSq) {
		t.Error("contained polygon within container")
	}
	if Within(bigSq, unitSq) {
		t.Error("container not within contained")
	}
	if !Within(Pt(1, 0), Ln(Pt(0, 0), Pt(2, 0))) {
		t.Error("point on line is within the line")
	}
	if !Within(Coll(Pt(0.2, 0.2), Pt(0.8, 0.8)), unitSq) {
		t.Error("collection of interior points within polygon")
	}
	if Within(Coll(Pt(0.2, 0.2), Pt(8, 8)), unitSq) {
		t.Error("collection with outside member not within")
	}
}

func TestCrosses(t *testing.T) {
	a := Ln(Pt(0, 0), Pt(2, 2))
	b := Ln(Pt(0, 2), Pt(2, 0))
	if !Crosses(a, b) {
		t.Error("X-crossing lines must cross")
	}
	// Endpoint-to-endpoint touch: the touch point is not interior to either.
	c := Ln(Pt(2, 2), Pt(3, 0))
	if Crosses(a, c) {
		t.Error("endpoint touch is not a cross")
	}
	// T-touch: endpoint of one in the interior of the other.
	d := Ln(Pt(1, 1), Pt(5, 1))
	if !Crosses(a, d) {
		t.Error("T-touch has an interior intersection, counts as cross")
	}
	// Collinear overlap is not a cross.
	e := Ln(Pt(1, 1), Pt(3, 3))
	if Crosses(a, e) {
		t.Error("overlap is not a cross")
	}
	// Line crossing a polygon.
	if !Crosses(diagLine, unitSq) {
		t.Error("line passing through polygon crosses it")
	}
	if Crosses(Ln(Pt(0.2, 0.2), Pt(0.8, 0.8)), unitSq) {
		t.Error("line inside polygon does not cross")
	}
	if Crosses(Ln(Pt(5, 5), Pt(6, 6)), unitSq) {
		t.Error("disjoint line does not cross")
	}
	if !Crosses(unitSq, diagLine) {
		t.Error("polygon/line cross must be symmetric")
	}
}

func TestEquals(t *testing.T) {
	if !Equals(Pt(1, 2), Pt(1, 2)) {
		t.Error("identical points equal")
	}
	if Equals(Pt(1, 2), Pt(2, 1)) {
		t.Error("different points not equal")
	}
	a := Ln(Pt(0, 0), Pt(1, 1), Pt(2, 0))
	rev := Ln(Pt(2, 0), Pt(1, 1), Pt(0, 0))
	if !Equals(a, rev) {
		t.Error("reversed line equal")
	}
	if Equals(a, Ln(Pt(0, 0), Pt(2, 0))) {
		t.Error("different vertex count not equal")
	}
	// Ring rotation and reversal.
	sq1 := Poly(Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1))
	sq2 := Poly(Pt(1, 1), Pt(0, 1), Pt(0, 0), Pt(1, 0))
	sq3 := Poly(Pt(0, 0), Pt(0, 1), Pt(1, 1), Pt(1, 0))
	if !Equals(sq1, sq2) {
		t.Error("rotated ring equal")
	}
	if !Equals(sq1, sq3) {
		t.Error("reversed ring equal")
	}
	if Equals(sq1, unitSq) != true {
		t.Error("same square equal")
	}
	if Equals(sq1, farSq) {
		t.Error("different squares not equal")
	}
	// Collections compare as multisets.
	c1 := Coll(Pt(0, 0), Pt(1, 1))
	c2 := Coll(Pt(1, 1), Pt(0, 0))
	if !Equals(c1, c2) {
		t.Error("collection order must not matter")
	}
	if Equals(c1, Coll(Pt(0, 0))) {
		t.Error("different sizes not equal")
	}
	if Equals(Pt(0, 0), Ln(Pt(0, 0), Pt(1, 1))) {
		t.Error("different types not equal")
	}
	if !Equals(nil, nil) {
		t.Error("nil equals nil")
	}
	if Equals(nil, Pt(0, 0)) {
		t.Error("nil not equal to geometry")
	}
}

// Property: Intersects is symmetric across random point/line/polygon pairs.
func TestQuickIntersectsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randGeom := func() Geometry {
		switch rng.Intn(3) {
		case 0:
			return Pt(rng.Float64()*4-2, rng.Float64()*4-2)
		case 1:
			x, y := rng.Float64()*4-2, rng.Float64()*4-2
			return Ln(Pt(x, y), Pt(x+rng.Float64()*2, y+rng.Float64()*2))
		default:
			x, y := rng.Float64()*4-2, rng.Float64()*4-2
			w, h := rng.Float64()+0.1, rng.Float64()+0.1
			return Poly(Pt(x, y), Pt(x+w, y), Pt(x+w, y+h), Pt(x, y+h))
		}
	}
	for i := 0; i < 500; i++ {
		a, b := randGeom(), randGeom()
		if Intersects(a, b) != Intersects(b, a) {
			t.Fatalf("asymmetric Intersects: %s vs %s", a.WKT(), b.WKT())
		}
	}
}

// Property: Within(a,b) implies Intersects(a,b).
func TestQuickWithinImpliesIntersects(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := Pt(rng.Float64()*3-1, rng.Float64()*3-1)
		if Within(p, unitSq) && !Intersects(p, unitSq) {
			t.Fatalf("point %v within but not intersecting", p)
		}
	}
}

func BenchmarkIntersectsPointPolygon(b *testing.B) {
	p := Pt(0.5, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Intersects(p, unitSq)
	}
}

func BenchmarkIntersectsLineLine(b *testing.B) {
	l1 := Ln(Pt(0, 0), Pt(1, 1), Pt(2, 0), Pt(3, 1))
	l2 := Ln(Pt(0, 1), Pt(1, 0), Pt(2, 1), Pt(3, 0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Intersects(l1, l2)
	}
}

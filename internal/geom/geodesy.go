package geom

import "math"

// This file provides geodetic (great-circle) measurement over geometries
// whose coordinates are X=longitude, Y=latitude in decimal degrees. Distances
// and lengths are returned in kilometres.
//
// Point-to-point distance uses the haversine formula. Distances and lengths
// involving lines and polygons are computed by projecting both geometries
// into a local equirectangular tangent frame centred between them and running
// the planar algorithms in kilometre space; for the regional extents a data
// warehouse analyses (tens to a few hundred kilometres) the approximation
// error is far below the tolerances used by personalization rules.

// EarthRadiusKm is the mean Earth radius used by the haversine formula.
const EarthRadiusKm = 6371.0088

// Haversine returns the great-circle distance in kilometres between two
// lon/lat points.
func Haversine(a, b Point) float64 {
	lat1 := a.Y * math.Pi / 180
	lat2 := b.Y * math.Pi / 180
	dLat := (b.Y - a.Y) * math.Pi / 180
	dLon := (b.X - a.X) * math.Pi / 180
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// Projector maps lon/lat degrees into a local planar frame measured in
// kilometres, using an equirectangular projection centred at Origin.
type Projector struct {
	Origin Point
	cosLat float64
}

// NewProjector returns a projector centred at origin.
func NewProjector(origin Point) *Projector {
	return &Projector{Origin: origin, cosLat: math.Cos(origin.Y * math.Pi / 180)}
}

// kmPerDegLat is the length of one degree of latitude in kilometres.
const kmPerDegLat = EarthRadiusKm * math.Pi / 180

// ToKm projects a lon/lat point into the local kilometre frame.
func (pr *Projector) ToKm(p Point) Point {
	return Point{
		X: (p.X - pr.Origin.X) * kmPerDegLat * pr.cosLat,
		Y: (p.Y - pr.Origin.Y) * kmPerDegLat,
	}
}

// FromKm maps a local kilometre-frame point back to lon/lat degrees.
func (pr *Projector) FromKm(p Point) Point {
	x := pr.Origin.X
	if pr.cosLat != 0 {
		x += p.X / (kmPerDegLat * pr.cosLat)
	}
	return Point{X: x, Y: pr.Origin.Y + p.Y/kmPerDegLat}
}

// ProjectGeometry projects every coordinate of g into the kilometre frame.
func (pr *Projector) ProjectGeometry(g Geometry) Geometry {
	switch gg := g.(type) {
	case Point:
		return pr.ToKm(gg)
	case Line:
		pts := make([]Point, len(gg.Pts))
		for i, p := range gg.Pts {
			pts[i] = pr.ToKm(p)
		}
		return Line{Pts: pts}
	case Polygon:
		shell := make(Ring, len(gg.Shell))
		for i, p := range gg.Shell {
			shell[i] = pr.ToKm(p)
		}
		holes := make([]Ring, len(gg.Holes))
		for i, h := range gg.Holes {
			holes[i] = make(Ring, len(h))
			for j, p := range h {
				holes[i][j] = pr.ToKm(p)
			}
		}
		return Polygon{Shell: shell, Holes: holes}
	case Collection:
		gs := make([]Geometry, len(gg.Geoms))
		for i, m := range gg.Geoms {
			gs[i] = pr.ProjectGeometry(m)
		}
		return Collection{Geoms: gs}
	}
	return g
}

// GeodeticDistance returns the great-circle distance in kilometres between
// two lon/lat geometries: haversine for point pairs, and the planar distance
// in a shared local tangent frame otherwise. Returns +Inf for nil or empty
// inputs.
func GeodeticDistance(a, b Geometry) float64 {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return math.Inf(1)
	}
	pa, aIsPt := a.(Point)
	pb, bIsPt := b.(Point)
	if aIsPt && bIsPt {
		return Haversine(pa, pb)
	}
	ra, rb := a.Bounds(), b.Bounds()
	mid := Point{
		X: (ra.Center().X + rb.Center().X) / 2,
		Y: (ra.Center().Y + rb.Center().Y) / 2,
	}
	pr := NewProjector(mid)
	return Distance(pr.ProjectGeometry(a), pr.ProjectGeometry(b))
}

// GeodeticLength returns the length of g in kilometres: haversine-summed for
// lines and polygon perimeters, totalled across collection members.
func GeodeticLength(g Geometry) float64 {
	switch gg := g.(type) {
	case Point:
		return 0
	case Line:
		s := 0.0
		for i := 0; i < gg.NumSegments(); i++ {
			a, b := gg.Segment(i)
			s += Haversine(a, b)
		}
		return s
	case Polygon:
		s := 0.0
		polygonEdges(gg, func(a, b Point) bool {
			s += Haversine(a, b)
			return true
		})
		return s
	case Collection:
		s := 0.0
		for _, m := range gg.Flatten() {
			s += GeodeticLength(m)
		}
		return s
	}
	return 0
}

// GeodeticMinLength is the geodetic counterpart of MinLength: the paper's
// unary Distance(g) in kilometres.
func GeodeticMinLength(g Geometry) float64 {
	if g == nil || g.IsEmpty() {
		return math.Inf(1)
	}
	c, ok := g.(Collection)
	if !ok {
		return GeodeticLength(g)
	}
	best := math.Inf(1)
	for _, m := range c.Flatten() {
		if m.Type() == TypePoint || m.IsEmpty() {
			continue
		}
		if l := GeodeticLength(m); l < best {
			best = l
		}
	}
	return best
}

// DegreeBox returns a bounding rectangle in degrees that conservatively
// contains every point within radiusKm kilometres of center. It is used to
// pre-filter spatial-index candidates before exact haversine checks.
func DegreeBox(center Point, radiusKm float64) Rect {
	dLat := radiusKm / kmPerDegLat
	cos := math.Cos(center.Y * math.Pi / 180)
	dLon := dLat * 4 // degenerate fallback near the poles
	if cos > 0.01 {
		dLon = radiusKm / (kmPerDegLat * cos)
	}
	return Rect{
		Min: Point{center.X - dLon, center.Y - dLat},
		Max: Point{center.X + dLon, center.Y + dLat},
	}
}

package geom

// Map-oriented geometry utilities used by the visualization/export layer
// (the paper's stated future work is "visualization aspects of the SDW"):
// Douglas-Peucker polyline simplification and Andrew's monotone-chain
// convex hull.

import "sort"

// Simplify reduces the vertex count of a geometry using the Douglas-Peucker
// algorithm with the given planar tolerance. Points pass through; polygon
// rings keep at least a triangle; collections simplify member-wise.
func Simplify(g Geometry, tolerance float64) Geometry {
	if tolerance <= 0 || g == nil {
		return g
	}
	switch gg := g.(type) {
	case Point:
		return gg
	case Line:
		if len(gg.Pts) <= 2 {
			return gg.Clone()
		}
		return Line{Pts: douglasPeucker(gg.Pts, tolerance)}
	case Polygon:
		out := Polygon{Shell: simplifyRing(gg.Shell, tolerance)}
		for _, h := range gg.Holes {
			// Holes smaller than the tolerance square are invisible at this
			// simplification level.
			if (Polygon{Shell: h}).Area() < tolerance*tolerance {
				continue
			}
			sh := simplifyRing(h, tolerance)
			if len(sh) >= 3 {
				out.Holes = append(out.Holes, sh)
			}
		}
		return out
	case Collection:
		gs := make([]Geometry, len(gg.Geoms))
		for i, m := range gg.Geoms {
			gs[i] = Simplify(m, tolerance)
		}
		return Collection{Geoms: gs}
	}
	return g
}

func simplifyRing(r Ring, tolerance float64) Ring {
	if len(r) <= 3 {
		return append(Ring(nil), r...)
	}
	// Close the ring, simplify as a line, reopen.
	closed := append(append([]Point(nil), r...), r[0])
	simplified := douglasPeucker(closed, tolerance)
	if len(simplified) >= 2 && simplified[0].Eq(simplified[len(simplified)-1]) {
		simplified = simplified[:len(simplified)-1]
	}
	if len(simplified) < 3 {
		// Over-simplified: keep a representative triangle.
		return Ring{r[0], r[len(r)/3], r[2*len(r)/3]}
	}
	return Ring(simplified)
}

// douglasPeucker keeps the endpoints and recursively the vertex farthest
// from the current chord when it exceeds the tolerance.
func douglasPeucker(pts []Point, tolerance float64) []Point {
	if len(pts) <= 2 {
		return append([]Point(nil), pts...)
	}
	keep := make([]bool, len(pts))
	keep[0], keep[len(pts)-1] = true, true

	type span struct{ lo, hi int }
	stack := []span{{0, len(pts) - 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo < 2 {
			continue
		}
		maxD := -1.0
		maxI := -1
		for i := s.lo + 1; i < s.hi; i++ {
			if d := distPointSegment(pts[i], pts[s.lo], pts[s.hi]); d > maxD {
				maxD, maxI = d, i
			}
		}
		if maxD > tolerance {
			keep[maxI] = true
			stack = append(stack, span{s.lo, maxI}, span{maxI, s.hi})
		}
	}
	out := make([]Point, 0, len(pts))
	for i, k := range keep {
		if k {
			out = append(out, pts[i])
		}
	}
	return out
}

// ConvexHull returns the convex hull of the geometry's vertices as a
// polygon (or the degenerate point/line when fewer than three distinct
// vertices exist). It uses Andrew's monotone-chain algorithm.
func ConvexHull(g Geometry) Geometry {
	pts := collectVertices(g)
	if len(pts) == 0 {
		return Collection{}
	}
	// Dedup + sort lexicographically.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
	uniq := pts[:1]
	for _, p := range pts[1:] {
		if !p.Eq(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	switch len(uniq) {
	case 1:
		return uniq[0]
	case 2:
		return Ln(uniq[0], uniq[1])
	}
	build := func(points []Point) []Point {
		var h []Point
		for _, p := range points {
			for len(h) >= 2 && cross(h[len(h)-2], h[len(h)-1], p) <= 0 {
				h = h[:len(h)-1]
			}
			h = append(h, p)
		}
		return h
	}
	lower := build(uniq)
	rev := make([]Point, len(uniq))
	for i, p := range uniq {
		rev[len(uniq)-1-i] = p
	}
	upper := build(rev)
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) < 3 {
		return Ln(uniq[0], uniq[len(uniq)-1])
	}
	return Polygon{Shell: Ring(hull)}
}

// collectVertices gathers every coordinate of the geometry.
func collectVertices(g Geometry) []Point {
	switch gg := g.(type) {
	case nil:
		return nil
	case Point:
		return []Point{gg}
	case Line:
		return append([]Point(nil), gg.Pts...)
	case Polygon:
		out := append([]Point(nil), gg.Shell...)
		for _, h := range gg.Holes {
			out = append(out, h...)
		}
		return out
	case Collection:
		var out []Point
		for _, m := range gg.Geoms {
			out = append(out, collectVertices(m)...)
		}
		return out
	}
	return nil
}

package geom

import (
	"math"
	"testing"
)

// Reference cities (lon, lat).
var (
	alicante  = Pt(-0.4810, 38.3452)
	madrid    = Pt(-3.7038, 40.4168)
	barcelona = Pt(2.1734, 41.3851)
)

func TestHaversineKnownDistances(t *testing.T) {
	// Published great-circle distances (±1%).
	for _, tc := range []struct {
		a, b Point
		km   float64
	}{
		{alicante, madrid, 361},
		{madrid, barcelona, 505},
		{alicante, barcelona, 408},
	} {
		got := Haversine(tc.a, tc.b)
		if math.Abs(got-tc.km)/tc.km > 0.01 {
			t.Errorf("Haversine(%v,%v) = %.1f km, want ≈%.0f", tc.a, tc.b, got, tc.km)
		}
	}
	if Haversine(madrid, madrid) != 0 {
		t.Error("distance to self must be 0")
	}
	if got, want := Haversine(madrid, barcelona), Haversine(barcelona, madrid); got != want {
		t.Error("haversine must be symmetric")
	}
}

func TestHaversineOneDegree(t *testing.T) {
	// One degree of latitude ≈ 111.19 km everywhere.
	got := Haversine(Pt(0, 0), Pt(0, 1))
	if math.Abs(got-111.19) > 0.1 {
		t.Errorf("1° lat = %.3f km, want ≈111.19", got)
	}
	// One degree of longitude at 60°N is half of that at the equator.
	eq := Haversine(Pt(0, 0), Pt(1, 0))
	at60 := Haversine(Pt(0, 60), Pt(1, 60))
	if math.Abs(at60/eq-0.5) > 0.01 {
		t.Errorf("lon shrink at 60° = %.3f, want ≈0.5", at60/eq)
	}
}

func TestProjectorRoundTrip(t *testing.T) {
	pr := NewProjector(madrid)
	for _, p := range []Point{madrid, alicante, barcelona} {
		back := pr.FromKm(pr.ToKm(p))
		if math.Abs(back.X-p.X) > 1e-9 || math.Abs(back.Y-p.Y) > 1e-9 {
			t.Errorf("round trip %v → %v", p, back)
		}
	}
}

func TestProjectorApproximatesHaversine(t *testing.T) {
	pr := NewProjector(Pt(-2, 39.5))
	a, b := pr.ToKm(alicante), pr.ToKm(madrid)
	planar := math.Hypot(a.X-b.X, a.Y-b.Y)
	hav := Haversine(alicante, madrid)
	if math.Abs(planar-hav)/hav > 0.02 {
		t.Errorf("projected %.1f vs haversine %.1f (>2%% off)", planar, hav)
	}
}

func TestGeodeticDistance(t *testing.T) {
	// Point-point delegates to haversine.
	if got, want := GeodeticDistance(alicante, madrid), Haversine(alicante, madrid); got != want {
		t.Errorf("point-point geodetic = %v, want %v", got, want)
	}
	// Point to line: a meridian segment through Madrid's longitude.
	meridian := Ln(Pt(madrid.X, 39), Pt(madrid.X, 42))
	got := GeodeticDistance(alicante, meridian)
	// Expected: distance from Alicante to the closest point on the meridian.
	// It must be positive and less than Alicante–Madrid.
	if got <= 0 || got >= Haversine(alicante, madrid) {
		t.Errorf("geodetic point-line = %v out of range", got)
	}
	if !math.IsInf(GeodeticDistance(nil, madrid), 1) {
		t.Error("nil → +Inf")
	}
}

func TestGeodeticLength(t *testing.T) {
	l := Ln(Pt(0, 0), Pt(0, 1), Pt(0, 2))
	got := GeodeticLength(l)
	if math.Abs(got-2*111.19) > 0.5 {
		t.Errorf("2° meridian length = %.2f km", got)
	}
	if GeodeticLength(Pt(0, 0)) != 0 {
		t.Error("point length = 0")
	}
	c := Coll(Ln(Pt(0, 0), Pt(0, 1)), Ln(Pt(0, 0), Pt(0, 1)))
	if math.Abs(GeodeticLength(c)-2*111.19) > 0.5 {
		t.Error("collection length should sum")
	}
}

func TestGeodeticMinLength(t *testing.T) {
	short := Ln(Pt(0, 0), Pt(0, 0.1))
	long := Ln(Pt(0, 0), Pt(0, 1))
	c := Coll(long, short, Pt(5, 5))
	got := GeodeticMinLength(c)
	if math.Abs(got-11.119) > 0.1 {
		t.Errorf("min member length = %.3f km, want ≈11.12", got)
	}
	if !math.IsInf(GeodeticMinLength(Coll(Pt(0, 0))), 1) {
		t.Error("points-only collection → +Inf")
	}
}

func TestDegreeBox(t *testing.T) {
	box := DegreeBox(madrid, 5)
	// Every point strictly within 5 km must fall inside the box.
	for _, d := range []Point{{0, 0.04}, {0.05, 0}, {-0.05, -0.04}} {
		p := Pt(madrid.X+d.X, madrid.Y+d.Y)
		if Haversine(madrid, p) < 5 && !box.ContainsPoint(p) {
			t.Errorf("point %v within 5km but outside DegreeBox", p)
		}
	}
	// The box must be conservative: its corners are at least 5 km away.
	corner := Pt(box.Min.X, box.Min.Y)
	if Haversine(madrid, corner) < 5 {
		t.Errorf("box corner only %.2f km away", Haversine(madrid, corner))
	}
}

func BenchmarkHaversine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Haversine(alicante, madrid)
	}
}

func BenchmarkGeodeticDistancePointLine(b *testing.B) {
	meridian := Ln(Pt(-3.7, 39), Pt(-3.7, 42))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GeodeticDistance(alicante, meridian)
	}
}

package geom

import "math"

// This file holds the low-level planar primitives the predicates, distance
// functions and intersection operator are built from: orientation tests,
// point-on-segment, segment-segment intersection and point-in-ring.

// cross returns the z component of (b-a) × (c-a). Positive means c is to the
// left of the directed line a→b.
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// dot returns (b-a) · (c-a).
func dot(a, b, c Point) float64 {
	return (b.X-a.X)*(c.X-a.X) + (b.Y-a.Y)*(c.Y-a.Y)
}

// onSegment reports whether p lies on the closed segment ab within Epsilon.
func onSegment(p, a, b Point) bool {
	return distPointSegment(p, a, b) <= Epsilon
}

// distPointSegment returns the planar distance from p to the closed segment
// ab.
func distPointSegment(p, a, b Point) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	l2 := abx*abx + aby*aby
	if l2 == 0 {
		return math.Hypot(p.X-a.X, p.Y-a.Y)
	}
	t := ((p.X-a.X)*abx + (p.Y-a.Y)*aby) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	qx, qy := a.X+t*abx, a.Y+t*aby
	return math.Hypot(p.X-qx, p.Y-qy)
}

// projectOnSegment returns the point on segment ab closest to p and the
// parameter t in [0,1] at which it occurs.
func projectOnSegment(p, a, b Point) (Point, float64) {
	abx, aby := b.X-a.X, b.Y-a.Y
	l2 := abx*abx + aby*aby
	if l2 == 0 {
		return a, 0
	}
	t := ((p.X-a.X)*abx + (p.Y-a.Y)*aby) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return Point{a.X + t*abx, a.Y + t*aby}, t
}

// segSegIntersection classifies the intersection of closed segments ab and
// cd. kind is one of:
//
//	segNone     — disjoint
//	segPoint    — a single intersection point (returned in p)
//	segOverlap  — collinear overlap (the shared sub-segment in p, q)
type segKind uint8

const (
	segNone segKind = iota
	segPoint
	segOverlap
)

func segSegIntersection(a, b, c, d Point) (kind segKind, p, q Point) {
	d1 := cross(c, d, a)
	d2 := cross(c, d, b)
	d3 := cross(a, b, c)
	d4 := cross(a, b, d)

	// Proper crossing.
	if ((d1 > Epsilon && d2 < -Epsilon) || (d1 < -Epsilon && d2 > Epsilon)) &&
		((d3 > Epsilon && d4 < -Epsilon) || (d3 < -Epsilon && d4 > Epsilon)) {
		t := d1 / (d1 - d2)
		return segPoint, Point{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)}, Point{}
	}

	collinear := math.Abs(d1) <= Epsilon && math.Abs(d2) <= Epsilon &&
		math.Abs(d3) <= Epsilon && math.Abs(d4) <= Epsilon
	if collinear {
		// Project onto the dominant axis and compute the parameter overlap.
		axis := func(p Point) float64 {
			if math.Abs(b.X-a.X) >= math.Abs(b.Y-a.Y) {
				return p.X
			}
			return p.Y
		}
		amin, amax := axis(a), axis(b)
		if amin > amax {
			amin, amax = amax, amin
		}
		cmin, cmax := axis(c), axis(d)
		if cmin > cmax {
			cmin, cmax = cmax, cmin
		}
		lo := math.Max(amin, cmin)
		hi := math.Min(amax, cmax)
		if lo > hi+Epsilon {
			return segNone, Point{}, Point{}
		}
		at := func(v float64) Point {
			den := axis(b) - axis(a)
			if math.Abs(den) <= Epsilon {
				return a
			}
			t := (v - axis(a)) / den
			return Point{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)}
		}
		pLo, pHi := at(lo), at(hi)
		if pLo.Eq(pHi) {
			return segPoint, pLo, Point{}
		}
		return segOverlap, pLo, pHi
	}

	// Endpoint touches.
	switch {
	case math.Abs(d1) <= Epsilon && onSegment(a, c, d):
		return segPoint, a, Point{}
	case math.Abs(d2) <= Epsilon && onSegment(b, c, d):
		return segPoint, b, Point{}
	case math.Abs(d3) <= Epsilon && onSegment(c, a, b):
		return segPoint, c, Point{}
	case math.Abs(d4) <= Epsilon && onSegment(d, a, b):
		return segPoint, d, Point{}
	}
	return segNone, Point{}, Point{}
}

// pointInRing reports whether p is strictly inside (1), on the boundary of
// (0), or outside (-1) the ring. Uses the even-odd ray casting rule with a
// boundary pre-check.
func pointInRing(p Point, r Ring) int {
	n := len(r)
	if n < 3 {
		return -1
	}
	for i := 0; i < n; i++ {
		if onSegment(p, r[i], r[(i+1)%n]) {
			return 0
		}
	}
	inside := false
	j := n - 1
	for i := 0; i < n; i++ {
		yi, yj := r[i].Y, r[j].Y
		if (yi > p.Y) != (yj > p.Y) {
			xint := r[i].X + (p.Y-yi)/(yj-yi)*(r[j].X-r[i].X)
			if p.X < xint {
				inside = !inside
			}
		}
		j = i
	}
	if inside {
		return 1
	}
	return -1
}

// pointInPolygon reports whether p is strictly inside (1), on the boundary of
// (0), or outside (-1) the polygon, accounting for holes.
func pointInPolygon(p Point, poly Polygon) int {
	s := pointInRing(p, poly.Shell)
	if s <= 0 {
		return s
	}
	for _, h := range poly.Holes {
		switch pointInRing(p, h) {
		case 1:
			return -1 // inside a hole → outside the polygon
		case 0:
			return 0 // on a hole boundary → on the polygon boundary
		}
	}
	return 1
}

// ringEdges calls fn for every edge of the ring, including the closing edge.
func ringEdges(r Ring, fn func(a, b Point) bool) {
	n := len(r)
	for i := 0; i < n; i++ {
		if !fn(r[i], r[(i+1)%n]) {
			return
		}
	}
}

// polygonEdges calls fn for every edge of the shell and every hole.
func polygonEdges(p Polygon, fn func(a, b Point) bool) {
	stop := false
	wrap := func(a, b Point) bool {
		if !fn(a, b) {
			stop = true
			return false
		}
		return true
	}
	ringEdges(p.Shell, wrap)
	if stop {
		return
	}
	for _, h := range p.Holes {
		ringEdges(h, wrap)
		if stop {
			return
		}
	}
}

// ringArea returns the signed area of the ring (positive if counter-
// clockwise).
func ringArea(r Ring) float64 {
	n := len(r)
	if n < 3 {
		return 0
	}
	s := 0.0
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += r[i].X*r[j].Y - r[j].X*r[i].Y
	}
	return s / 2
}

// Area returns the unsigned area of the polygon (shell minus holes) in the
// planar coordinate space.
func (p Polygon) Area() float64 {
	a := math.Abs(ringArea(p.Shell))
	for _, h := range p.Holes {
		a -= math.Abs(ringArea(h))
	}
	if a < 0 {
		return 0
	}
	return a
}

// Centroid returns the area centroid of the polygon shell; for degenerate
// shells it falls back to the vertex average.
func (p Polygon) Centroid() Point {
	n := len(p.Shell)
	if n == 0 {
		return Point{}
	}
	a := ringArea(p.Shell)
	if math.Abs(a) <= Epsilon {
		var c Point
		for _, pt := range p.Shell {
			c.X += pt.X
			c.Y += pt.Y
		}
		c.X /= float64(n)
		c.Y /= float64(n)
		return c
	}
	var cx, cy float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		f := p.Shell[i].X*p.Shell[j].Y - p.Shell[j].X*p.Shell[i].Y
		cx += (p.Shell[i].X + p.Shell[j].X) * f
		cy += (p.Shell[i].Y + p.Shell[j].Y) * f
	}
	return Point{cx / (6 * a), cy / (6 * a)}
}

package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements Well-Known Text (WKT) reading and writing for the four
// primitives. WKT is the interchange format the paper's ISO/OGC alignment
// implies; the web API and CLI tools use it for geometry I/O.

// WKT renders the point as "POINT (x y)".
func (p Point) WKT() string {
	return "POINT (" + fmtCoord(p.X) + " " + fmtCoord(p.Y) + ")"
}

// WKT renders the line as "LINESTRING (x y, x y, ...)".
func (l Line) WKT() string {
	if l.IsEmpty() {
		return "LINESTRING EMPTY"
	}
	var b strings.Builder
	b.WriteString("LINESTRING (")
	writeCoords(&b, l.Pts)
	b.WriteByte(')')
	return b.String()
}

// WKT renders the polygon as "POLYGON ((shell), (hole), ...)". Rings are
// closed on output (the first vertex is repeated at the end) per the WKT
// convention.
func (p Polygon) WKT() string {
	if p.IsEmpty() {
		return "POLYGON EMPTY"
	}
	var b strings.Builder
	b.WriteString("POLYGON (")
	writeRing(&b, p.Shell)
	for _, h := range p.Holes {
		b.WriteString(", ")
		writeRing(&b, h)
	}
	b.WriteByte(')')
	return b.String()
}

// WKT renders the collection as "GEOMETRYCOLLECTION (member, ...)".
func (c Collection) WKT() string {
	if len(c.Geoms) == 0 {
		return "GEOMETRYCOLLECTION EMPTY"
	}
	parts := make([]string, len(c.Geoms))
	for i, g := range c.Geoms {
		parts[i] = g.WKT()
	}
	return "GEOMETRYCOLLECTION (" + strings.Join(parts, ", ") + ")"
}

func fmtCoord(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeCoords(b *strings.Builder, pts []Point) {
	for i, p := range pts {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(fmtCoord(p.X))
		b.WriteByte(' ')
		b.WriteString(fmtCoord(p.Y))
	}
}

func writeRing(b *strings.Builder, r Ring) {
	b.WriteByte('(')
	writeCoords(b, []Point(r))
	if len(r) > 0 && !r[0].Eq(r[len(r)-1]) {
		b.WriteString(", ")
		b.WriteString(fmtCoord(r[0].X))
		b.WriteByte(' ')
		b.WriteString(fmtCoord(r[0].Y))
	}
	b.WriteByte(')')
}

// ParseWKT parses a WKT string into a Geometry. It accepts POINT,
// LINESTRING (or LINE), POLYGON and GEOMETRYCOLLECTION (or COLLECTION),
// case-insensitively, including the EMPTY keyword.
func ParseWKT(s string) (Geometry, error) {
	p := &wktParser{src: s}
	g, err := p.parseGeometry()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("geom: trailing input at offset %d in %q", p.pos, s)
	}
	return g, nil
}

type wktParser struct {
	src string
	pos int
}

func (p *wktParser) errf(format string, args ...any) error {
	return fmt.Errorf("geom: wkt offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *wktParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *wktParser) word() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			p.pos++
		} else {
			break
		}
	}
	return upper(p.src[start:p.pos])
}

func (p *wktParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *wktParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *wktParser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, p.errf("expected number")
	}
	v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, p.errf("bad number %q", p.src[start:p.pos])
	}
	return v, nil
}

func (p *wktParser) coord() (Point, error) {
	x, err := p.number()
	if err != nil {
		return Point{}, err
	}
	y, err := p.number()
	if err != nil {
		return Point{}, err
	}
	return Point{x, y}, nil
}

func (p *wktParser) coordList() ([]Point, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var pts []Point
	for {
		pt, err := p.coord()
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return pts, nil
}

func (p *wktParser) maybeEmpty() bool {
	save := p.pos
	if p.word() == "EMPTY" {
		return true
	}
	p.pos = save
	return false
}

func (p *wktParser) parseGeometry() (Geometry, error) {
	switch kw := p.word(); kw {
	case "POINT":
		if p.maybeEmpty() {
			return nil, p.errf("POINT EMPTY is not supported")
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		pt, err := p.coord()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return pt, nil
	case "LINESTRING", "LINE":
		if p.maybeEmpty() {
			return Line{}, nil
		}
		pts, err := p.coordList()
		if err != nil {
			return nil, err
		}
		if len(pts) < 2 {
			return nil, p.errf("linestring needs at least 2 points")
		}
		return Line{Pts: pts}, nil
	case "POLYGON":
		if p.maybeEmpty() {
			return Polygon{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var rings []Ring
		for {
			pts, err := p.coordList()
			if err != nil {
				return nil, err
			}
			// Un-close the ring if the closing vertex repeats the first.
			if len(pts) >= 2 && pts[0].Eq(pts[len(pts)-1]) {
				pts = pts[:len(pts)-1]
			}
			if len(pts) < 3 {
				return nil, p.errf("polygon ring needs at least 3 distinct points")
			}
			rings = append(rings, Ring(pts))
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		poly := Polygon{Shell: rings[0]}
		if len(rings) > 1 {
			poly.Holes = rings[1:]
		}
		return poly, nil
	case "GEOMETRYCOLLECTION", "COLLECTION":
		if p.maybeEmpty() {
			return Collection{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var gs []Geometry
		for {
			g, err := p.parseGeometry()
			if err != nil {
				return nil, err
			}
			gs = append(gs, g)
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Collection{Geoms: gs}, nil
	case "":
		return nil, p.errf("empty input")
	default:
		return nil, p.errf("unknown geometry keyword %q", kw)
	}
}

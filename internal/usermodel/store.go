package usermodel

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"sdwp/internal/geom"
)

// Store holds the user profiles of a deployment: one root «User» entity per
// user id, instantiated from a shared Profile. It is safe for concurrent
// use and serializes to JSON for the web layer's persistence.
type Store struct {
	profile *Profile

	mu    sync.RWMutex
	users map[string]*Entity
}

// NewStore creates a store over a validated profile.
func NewStore(p *Profile) (*Store, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Store{profile: p, users: map[string]*Entity{}}, nil
}

// Profile returns the store's SUS profile.
func (s *Store) Profile() *Profile { return s.profile }

// Create instantiates a new user profile rooted at the «User» class.
func (s *Store) Create(userID string) (*Entity, error) {
	if userID == "" {
		return nil, fmt.Errorf("usermodel: empty user id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[userID]; ok {
		return nil, fmt.Errorf("usermodel: user %q already exists", userID)
	}
	root := NewEntity(s.profile.Class(s.profile.UserClass()))
	s.users[userID] = root
	return root, nil
}

// Get returns the user's root entity, or nil.
func (s *Store) Get(userID string) *Entity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.users[userID]
}

// GetOrCreate returns the user's root entity, creating it on first access.
func (s *Store) GetOrCreate(userID string) (*Entity, error) {
	if e := s.Get(userID); e != nil {
		return e, nil
	}
	e, err := s.Create(userID)
	if err != nil {
		// Lost a race: the user now exists.
		if e := s.Get(userID); e != nil {
			return e, nil
		}
		return nil, err
	}
	return e, nil
}

// Users returns the known user ids, sorted.
func (s *Store) Users() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.users))
	for id := range s.users {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of users.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.users)
}

// entityJSON is the serialized form of an entity subtree.
type entityJSON struct {
	Class string                 `json:"class"`
	Props map[string]any         `json:"props,omitempty"`
	Links map[string]*entityJSON `json:"links,omitempty"`
}

// toJSON converts an entity subtree; geometry properties serialize as WKT
// strings. seen guards against cycles.
func (e *Entity) toJSON(seen map[*Entity]bool) (*entityJSON, error) {
	if seen[e] {
		return nil, fmt.Errorf("usermodel: cycle in profile graph at class %q", e.class.Name)
	}
	seen[e] = true
	defer delete(seen, e)

	out := &entityJSON{Class: e.class.Name, Props: map[string]any{}, Links: map[string]*entityJSON{}}
	e.mu.RLock()
	props := make(map[string]any, len(e.props))
	for k, v := range e.props {
		props[k] = v
	}
	links := make(map[string]*Entity, len(e.links))
	for k, v := range e.links {
		links[k] = v
	}
	e.mu.RUnlock()

	for k, v := range props {
		if g, ok := v.(geom.Geometry); ok {
			out.Props[k] = g.WKT()
		} else if v != nil {
			out.Props[k] = v
		}
	}
	for role, target := range links {
		sub, err := target.toJSON(seen)
		if err != nil {
			return nil, err
		}
		out.Links[role] = sub
	}
	return out, nil
}

// fromJSON reconstructs an entity subtree against the profile.
func fromJSON(p *Profile, in *entityJSON) (*Entity, error) {
	class := p.Class(in.Class)
	if class == nil {
		return nil, fmt.Errorf("usermodel: unknown class %q in serialized profile", in.Class)
	}
	e := NewEntity(class)
	for k, v := range in.Props {
		pd := class.Prop(k)
		if pd == nil {
			return nil, fmt.Errorf("usermodel: class %q has no property %q", in.Class, k)
		}
		if pd.Type == PropGeometry {
			s, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("usermodel: geometry property %q must be WKT string", k)
			}
			g, err := geom.ParseWKT(s)
			if err != nil {
				return nil, fmt.Errorf("usermodel: property %q: %w", k, err)
			}
			if err := e.Set(k, g); err != nil {
				return nil, err
			}
			continue
		}
		if err := e.Set(k, v); err != nil {
			return nil, err
		}
	}
	for role, sub := range in.Links {
		target, err := fromJSON(p, sub)
		if err != nil {
			return nil, err
		}
		if err := e.Link(p, role, target); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// MarshalJSON serializes all user profiles.
func (s *Store) MarshalJSON() ([]byte, error) {
	s.mu.RLock()
	ids := make([]string, 0, len(s.users))
	for id := range s.users {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	users := make(map[string]*Entity, len(s.users))
	for id, e := range s.users {
		users[id] = e
	}
	s.mu.RUnlock()

	out := make(map[string]*entityJSON, len(ids))
	for _, id := range ids {
		j, err := users[id].toJSON(map[*Entity]bool{})
		if err != nil {
			return nil, err
		}
		out[id] = j
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores user profiles (replacing current contents). The
// store must already carry its profile.
func (s *Store) UnmarshalJSON(data []byte) error {
	var in map[string]*entityJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	users := make(map[string]*Entity, len(in))
	for id, j := range in {
		e, err := fromJSON(s.profile, j)
		if err != nil {
			return fmt.Errorf("user %q: %w", id, err)
		}
		if e.class.Name != s.profile.UserClass() {
			return fmt.Errorf("usermodel: user %q root class %q is not the «User» class", id, e.class.Name)
		}
		users[id] = e
	}
	s.mu.Lock()
	s.users = users
	s.mu.Unlock()
	return nil
}

package usermodel

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"sdwp/internal/geom"
)

// fig4Profile builds the paper's Fig. 4 motivating user model: a
// DecisionMaker with a Role characteristic, a Session with a LocationContext
// and an AirportCity spatial-selection interest counter.
func fig4Profile(t testing.TB) *Profile {
	t.Helper()
	p := NewProfile()
	mustClass := func(name string, st Stereotype, props ...PropDef) {
		if _, err := p.AddClass(name, st, props...); err != nil {
			t.Fatalf("AddClass(%s): %v", name, err)
		}
	}
	mustClass("DecisionMaker", StereoUser, PropDef{Name: "name", Type: PropString})
	mustClass("Role", StereoCharacteristic, PropDef{Name: "name", Type: PropString})
	mustClass("AnalysisSession", StereoSession, PropDef{Name: "startedAt", Type: PropString})
	mustClass("Location", StereoLocationContext,
		PropDef{Name: "geometry", Type: PropGeometry, GeomType: geom.TypePoint})
	mustClass("AirportCity", StereoSpatialSelection) // degree auto-added
	for _, a := range [][3]string{
		{"DecisionMaker", "dm2role", "Role"},
		{"DecisionMaker", "dm2session", "AnalysisSession"},
		{"DecisionMaker", "dm2airportcity", "AirportCity"},
		{"AnalysisSession", "s2location", "Location"},
	} {
		if err := p.AddAssoc(a[0], a[1], a[2]); err != nil {
			t.Fatalf("AddAssoc(%v): %v", a, err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p
}

func TestFig3ProfileStereotypes(t *testing.T) {
	p := fig4Profile(t)
	if p.UserClass() != "DecisionMaker" {
		t.Errorf("UserClass = %q", p.UserClass())
	}
	if got := p.ClassesByStereo(StereoSpatialSelection); len(got) != 1 || got[0] != "AirportCity" {
		t.Errorf("SpatialSelection classes = %v", got)
	}
	if got := p.Classes(); len(got) != 5 {
		t.Errorf("Classes = %v", got)
	}
	// degree auto-added to SpatialSelection classes.
	if p.Class("AirportCity").Prop("degree") == nil {
		t.Error("AirportCity must have auto degree property")
	}
	if d, ok := p.Assoc("DecisionMaker", "dm2role"); !ok || d.To != "Role" {
		t.Errorf("Assoc dm2role = %+v,%v", d, ok)
	}
	if _, ok := p.Assoc("Role", "nothing"); ok {
		t.Error("unknown assoc should not exist")
	}
}

func TestProfileRejections(t *testing.T) {
	p := NewProfile()
	if _, err := p.AddClass("", StereoUser); err == nil {
		t.Error("empty class name")
	}
	if _, err := p.AddClass("U", Stereotype("Wizard")); err == nil {
		t.Error("unknown stereotype")
	}
	if _, err := p.AddClass("U", StereoUser); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddClass("U", StereoCharacteristic); err == nil {
		t.Error("duplicate class")
	}
	if _, err := p.AddClass("U2", StereoUser); err == nil {
		t.Error("second user class")
	}
	if _, err := p.AddClass("C", StereoCharacteristic,
		PropDef{Name: "x", Type: PropString}, PropDef{Name: "x", Type: PropString}); err == nil {
		t.Error("duplicate property")
	}
	if _, err := p.AddClass("C2", StereoCharacteristic, PropDef{Name: "x", Type: PropType(99)}); err == nil {
		t.Error("invalid prop type")
	}
	if err := p.AddAssoc("Ghost", "r", "U"); err == nil {
		t.Error("assoc from unknown class")
	}
	if err := p.AddAssoc("U", "r", "Ghost"); err == nil {
		t.Error("assoc to unknown class")
	}
	if err := p.AddAssoc("U", "", "U"); err == nil {
		t.Error("empty role")
	}
	// Role shadowing a property.
	if _, err := p.AddClass("P", StereoCharacteristic, PropDef{Name: "name", Type: PropString}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddAssoc("P", "name", "U"); err == nil {
		t.Error("role shadowing property")
	}
	if err := p.AddAssoc("U", "u2p", "P"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddAssoc("U", "u2p", "P"); err == nil {
		t.Error("duplicate role")
	}
}

func TestValidateUnreachableSpatialSelection(t *testing.T) {
	p := NewProfile()
	_, _ = p.AddClass("U", StereoUser)
	_, _ = p.AddClass("Orphan", StereoSpatialSelection)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("err = %v", err)
	}
	// No user class at all.
	p2 := NewProfile()
	if err := p2.Validate(); err == nil {
		t.Error("profile without user class must not validate")
	}
}

func TestFig4MotivatingUserModel(t *testing.T) {
	p := fig4Profile(t)
	st, err := NewStore(p)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := st.Create("u1")
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.Set("name", "Alice"); err != nil {
		t.Fatal(err)
	}
	role := NewEntity(p.Class("Role"))
	if err := role.Set("name", "RegionalSalesManager"); err != nil {
		t.Fatal(err)
	}
	if err := dm.Link(p, "dm2role", role); err != nil {
		t.Fatal(err)
	}
	ac := NewEntity(p.Class("AirportCity"))
	if err := dm.Link(p, "dm2airportcity", ac); err != nil {
		t.Fatal(err)
	}
	sess := NewEntity(p.Class("AnalysisSession"))
	loc := NewEntity(p.Class("Location"))
	if err := loc.Set("geometry", geom.Pt(-0.48, 38.34)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Link(p, "s2location", loc); err != nil {
		t.Fatal(err)
	}
	if err := dm.Link(p, "dm2session", sess); err != nil {
		t.Fatal(err)
	}

	// The paper's path expressions resolve.
	v, err := dm.Resolve([]string{"dm2role", "name"})
	if err != nil || v != "RegionalSalesManager" {
		t.Fatalf("SUS.DecisionMaker.dm2role.name = %v, %v", v, err)
	}
	v, err = dm.Resolve([]string{"name"})
	if err != nil || v != "Alice" {
		t.Fatalf("SUS.DecisionMaker.name = %v, %v", v, err)
	}
	g, err := dm.Resolve([]string{"dm2session", "s2location", "geometry"})
	if err != nil {
		t.Fatal(err)
	}
	if pt, ok := g.(geom.Geometry); !ok || pt.Type() != geom.TypePoint {
		t.Fatalf("location geometry = %T", g)
	}
	// Resolve to an entity when the path ends on a role.
	e, err := dm.Resolve([]string{"dm2airportcity"})
	if err != nil {
		t.Fatal(err)
	}
	if ent, ok := e.(*Entity); !ok || ent.Class().Name != "AirportCity" {
		t.Fatalf("dm2airportcity = %T", e)
	}
	// degree starts at 0 and counts up (Example 5.3 acquisition).
	if got := ac.GetNumber("degree"); got != 0 {
		t.Fatalf("initial degree = %v", got)
	}
	if _, err := ac.Add("degree", 1); err != nil {
		t.Fatal(err)
	}
	v, _ = dm.Resolve([]string{"dm2airportcity", "degree"})
	if v != 1.0 {
		t.Fatalf("degree after increment = %v", v)
	}
	// SetPath writes through the graph.
	if err := dm.SetPath([]string{"dm2airportcity", "degree"}, 5.0); err != nil {
		t.Fatal(err)
	}
	if got := ac.GetNumber("degree"); got != 5 {
		t.Fatalf("degree after SetPath = %v", got)
	}
}

func TestResolveErrors(t *testing.T) {
	p := fig4Profile(t)
	dm := NewEntity(p.Class("DecisionMaker"))
	if _, err := dm.Resolve([]string{"nothing"}); err == nil {
		t.Error("unknown segment")
	}
	if _, err := dm.Resolve([]string{"name", "deeper"}); err == nil {
		t.Error("navigating through a property")
	}
	if _, err := dm.Resolve([]string{"dm2role", "name"}); err == nil {
		t.Error("unlinked role navigation must fail")
	}
	if err := dm.SetPath(nil, 1); err == nil {
		t.Error("empty SetPath")
	}
	if err := dm.SetPath([]string{"dm2role", "name"}, "x"); err == nil {
		t.Error("SetPath through unlinked role")
	}
	got, err := dm.Resolve(nil)
	if err != nil || got != dm {
		t.Error("empty path resolves to self")
	}
}

func TestEntityTypeChecking(t *testing.T) {
	p := fig4Profile(t)
	dm := NewEntity(p.Class("DecisionMaker"))
	if err := dm.Set("name", 42); err == nil {
		t.Error("string prop accepts number")
	}
	if err := dm.Set("ghost", "x"); err == nil {
		t.Error("unknown prop")
	}
	ac := NewEntity(p.Class("AirportCity"))
	if err := ac.Set("degree", 3); err != nil {
		t.Errorf("int should normalize to number: %v", err)
	}
	if err := ac.Set("degree", "many"); err == nil {
		t.Error("number prop accepts string")
	}
	if _, err := ac.Add("ghost", 1); err == nil {
		t.Error("Add on unknown prop")
	}
	loc := NewEntity(p.Class("Location"))
	if err := loc.Set("geometry", geom.Ln(geom.Pt(0, 0), geom.Pt(1, 1))); err == nil {
		t.Error("POINT-typed geometry prop accepts LINE")
	}
	if err := loc.Set("geometry", geom.Pt(1, 2)); err != nil {
		t.Errorf("point accepted: %v", err)
	}
	if err := loc.Set("geometry", "not a geometry"); err == nil {
		t.Error("geometry prop accepts string")
	}
	role := NewEntity(p.Class("Role"))
	if err := dm.Link(p, "ghostRole", role); err == nil {
		t.Error("unknown role link")
	}
	if err := dm.Link(p, "dm2session", role); err == nil {
		t.Error("wrong target class link")
	}
	if _, err := role.Add("name", 1); err == nil {
		t.Error("Add on non-numeric prop")
	}
}

func TestStoreLifecycle(t *testing.T) {
	p := fig4Profile(t)
	st, err := NewStore(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create(""); err == nil {
		t.Error("empty user id")
	}
	u, err := st.Create("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create("alice"); err == nil {
		t.Error("duplicate user")
	}
	if got := st.Get("alice"); got != u {
		t.Error("Get returned different entity")
	}
	if st.Get("bob") != nil {
		t.Error("unknown user should be nil")
	}
	got, err := st.GetOrCreate("bob")
	if err != nil || got == nil {
		t.Fatal("GetOrCreate failed")
	}
	if again, _ := st.GetOrCreate("bob"); again != got {
		t.Error("GetOrCreate must be stable")
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d", st.Len())
	}
	ids := st.Users()
	if len(ids) != 2 || ids[0] != "alice" || ids[1] != "bob" {
		t.Errorf("Users = %v", ids)
	}
	// Store requires a valid profile.
	if _, err := NewStore(NewProfile()); err == nil {
		t.Error("store over invalid profile")
	}
}

func TestStoreJSONRoundTrip(t *testing.T) {
	p := fig4Profile(t)
	st, _ := NewStore(p)
	dm, _ := st.Create("alice")
	_ = dm.Set("name", "Alice")
	role := NewEntity(p.Class("Role"))
	_ = role.Set("name", "RegionalSalesManager")
	_ = dm.Link(p, "dm2role", role)
	ac := NewEntity(p.Class("AirportCity"))
	_, _ = ac.Add("degree", 4)
	_ = dm.Link(p, "dm2airportcity", ac)
	sess := NewEntity(p.Class("AnalysisSession"))
	loc := NewEntity(p.Class("Location"))
	_ = loc.Set("geometry", geom.Pt(-3.7, 40.4))
	_ = sess.Link(p, "s2location", loc)
	_ = dm.Link(p, "dm2session", sess)

	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	st2, _ := NewStore(p)
	if err := json.Unmarshal(data, st2); err != nil {
		t.Fatal(err)
	}
	dm2 := st2.Get("alice")
	if dm2 == nil {
		t.Fatal("alice lost in round trip")
	}
	v, err := dm2.Resolve([]string{"dm2role", "name"})
	if err != nil || v != "RegionalSalesManager" {
		t.Fatalf("role lost: %v, %v", v, err)
	}
	v, _ = dm2.Resolve([]string{"dm2airportcity", "degree"})
	if v != 4.0 {
		t.Fatalf("degree lost: %v", v)
	}
	g, err := dm2.Resolve([]string{"dm2session", "s2location", "geometry"})
	if err != nil {
		t.Fatal(err)
	}
	if pt, ok := g.(geom.Point); !ok || !pt.Eq(geom.Pt(-3.7, 40.4)) {
		t.Fatalf("geometry lost: %v", g)
	}
}

func TestStoreJSONRejectsGarbage(t *testing.T) {
	p := fig4Profile(t)
	st, _ := NewStore(p)
	for _, bad := range []string{
		`{"u":{"class":"Ghost"}}`,
		`{"u":{"class":"Role"}}`, // not the user class
		`{"u":{"class":"DecisionMaker","props":{"ghost":1}}}`,
		`{"u":{"class":"DecisionMaker","links":{"dm2role":{"class":"AnalysisSession"}}}}`,
		`{"u":{"class":"DecisionMaker","links":{"dm2session":{"class":"AnalysisSession","links":{"s2location":{"class":"Location","props":{"geometry":"POINT (bad"}}}}}}}`,
		`not json`,
	} {
		if err := json.Unmarshal([]byte(bad), st); err == nil {
			t.Errorf("accepted garbage: %s", bad)
		}
	}
}

func TestConcurrentDegreeIncrements(t *testing.T) {
	p := fig4Profile(t)
	ac := NewEntity(p.Class("AirportCity"))
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ac.Add("degree", 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := ac.GetNumber("degree"); got != n {
		t.Fatalf("degree = %v, want %d", got, n)
	}
}

func TestPropTypeStrings(t *testing.T) {
	for pt, want := range map[PropType]string{
		PropString: "string", PropNumber: "number", PropBool: "bool",
		PropGeometry: "geometry", PropType(0): "invalid",
	} {
		if got := pt.String(); got != want {
			t.Errorf("%d.String() = %q", pt, got)
		}
	}
}

func TestAccessorFallbacks(t *testing.T) {
	p := fig4Profile(t)
	dm := NewEntity(p.Class("DecisionMaker"))
	// Typed getters fall back to zero values on unknown properties.
	if dm.GetString("ghost") != "" || dm.GetNumber("ghost") != 0 || dm.GetGeometry("ghost") != nil {
		t.Error("getter fallbacks wrong")
	}
	loc := NewEntity(p.Class("Location"))
	if loc.GetGeometry("geometry") != nil {
		t.Error("unset geometry should be nil")
	}
	_ = loc.Set("geometry", geom.Pt(1, 2))
	if g := loc.GetGeometry("geometry"); g == nil || g.Type() != geom.TypePoint {
		t.Error("geometry getter")
	}
	if len(dm.Roles()) != 0 {
		t.Error("fresh entity has no linked roles")
	}
	role := NewEntity(p.Class("Role"))
	_ = dm.Link(p, "dm2role", role)
	if got := dm.Roles(); len(got) != 1 || got[0] != "dm2role" {
		t.Errorf("Roles = %v", got)
	}
	if dm.Class().Name != "DecisionMaker" {
		t.Error("Class accessor")
	}
}

func TestAssocsListing(t *testing.T) {
	p := fig4Profile(t)
	assocs := p.Assocs("DecisionMaker")
	if len(assocs) != 3 {
		t.Fatalf("assocs = %+v", assocs)
	}
	// Sorted by role name.
	if assocs[0].Role != "dm2airportcity" || assocs[2].Role != "dm2session" {
		t.Errorf("order = %v %v %v", assocs[0].Role, assocs[1].Role, assocs[2].Role)
	}
	if len(p.Assocs("Role")) != 0 {
		t.Error("Role has no outgoing assocs")
	}
}

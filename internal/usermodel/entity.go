package usermodel

import (
	"fmt"
	"sync"

	"sdwp/internal/geom"
)

// Entity is an instance of a SUS class: one node in a user's profile graph.
// Property values are dynamically typed (string, float64, bool or
// geom.Geometry) and checked against the class definition on write. Entities
// are safe for concurrent use.
type Entity struct {
	class *ClassDef

	mu    sync.RWMutex
	props map[string]any
	links map[string]*Entity
}

// NewEntity instantiates the class with zero-valued declared properties
// (numbers 0, strings "", bools false, geometries nil).
func NewEntity(class *ClassDef) *Entity {
	e := &Entity{class: class, props: map[string]any{}, links: map[string]*Entity{}}
	for _, pd := range class.Props {
		switch pd.Type {
		case PropString:
			e.props[pd.Name] = ""
		case PropNumber:
			e.props[pd.Name] = 0.0
		case PropBool:
			e.props[pd.Name] = false
		case PropGeometry:
			e.props[pd.Name] = nil
		}
	}
	return e
}

// Class returns the entity's class definition.
func (e *Entity) Class() *ClassDef { return e.class }

// Set writes a property value, enforcing the declared type. Numeric values
// may be given as any Go numeric type and are normalized to float64.
func (e *Entity) Set(prop string, v any) error {
	pd := e.class.Prop(prop)
	if pd == nil {
		return fmt.Errorf("usermodel: class %q has no property %q", e.class.Name, prop)
	}
	norm, err := normalize(pd, v)
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.props[prop] = norm
	e.mu.Unlock()
	return nil
}

func normalize(pd *PropDef, v any) (any, error) {
	switch pd.Type {
	case PropString:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("usermodel: property %q wants string, got %T", pd.Name, v)
		}
		return s, nil
	case PropNumber:
		switch n := v.(type) {
		case float64:
			return n, nil
		case float32:
			return float64(n), nil
		case int:
			return float64(n), nil
		case int32:
			return float64(n), nil
		case int64:
			return float64(n), nil
		}
		return nil, fmt.Errorf("usermodel: property %q wants number, got %T", pd.Name, v)
	case PropBool:
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("usermodel: property %q wants bool, got %T", pd.Name, v)
		}
		return b, nil
	case PropGeometry:
		if v == nil {
			return nil, nil
		}
		g, ok := v.(geom.Geometry)
		if !ok {
			return nil, fmt.Errorf("usermodel: property %q wants geometry, got %T", pd.Name, v)
		}
		if pd.GeomType != geom.TypeInvalid && g.Type() != pd.GeomType {
			return nil, fmt.Errorf("usermodel: property %q wants %s geometry, got %s",
				pd.Name, pd.GeomType, g.Type())
		}
		return g, nil
	}
	return nil, fmt.Errorf("usermodel: property %q has invalid declared type", pd.Name)
}

// Get reads a property value.
func (e *Entity) Get(prop string) (any, error) {
	if e.class.Prop(prop) == nil {
		return nil, fmt.Errorf("usermodel: class %q has no property %q", e.class.Name, prop)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.props[prop], nil
}

// GetString reads a string property, with a zero fallback on type mismatch.
func (e *Entity) GetString(prop string) string {
	v, err := e.Get(prop)
	if err != nil {
		return ""
	}
	s, _ := v.(string)
	return s
}

// GetNumber reads a numeric property.
func (e *Entity) GetNumber(prop string) float64 {
	v, err := e.Get(prop)
	if err != nil {
		return 0
	}
	n, _ := v.(float64)
	return n
}

// GetGeometry reads a geometry property (nil if unset).
func (e *Entity) GetGeometry(prop string) geom.Geometry {
	v, err := e.Get(prop)
	if err != nil || v == nil {
		return nil
	}
	g, _ := v.(geom.Geometry)
	return g
}

// Add increments a numeric property by delta and returns the new value —
// the acquisition idiom of Example 5.3 (degree = degree + 1), performed
// atomically so concurrent selections do not lose updates.
func (e *Entity) Add(prop string, delta float64) (float64, error) {
	pd := e.class.Prop(prop)
	if pd == nil {
		return 0, fmt.Errorf("usermodel: class %q has no property %q", e.class.Name, prop)
	}
	if pd.Type != PropNumber {
		return 0, fmt.Errorf("usermodel: property %q is not numeric", prop)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur, _ := e.props[prop].(float64)
	cur += delta
	e.props[prop] = cur
	return cur, nil
}

// Link attaches target under the given association role, enforcing the
// profile's association definitions.
func (e *Entity) Link(p *Profile, role string, target *Entity) error {
	def, ok := p.Assoc(e.class.Name, role)
	if !ok {
		return fmt.Errorf("usermodel: class %q has no association role %q", e.class.Name, role)
	}
	if target.class.Name != def.To {
		return fmt.Errorf("usermodel: role %q wants class %q, got %q", role, def.To, target.class.Name)
	}
	e.mu.Lock()
	e.links[role] = target
	e.mu.Unlock()
	return nil
}

// Nav follows the association role, returning nil if unlinked.
func (e *Entity) Nav(role string) *Entity {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.links[role]
}

// Roles returns the currently linked roles (unsorted length check helper).
func (e *Entity) Roles() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.links))
	for r := range e.links {
		out = append(out, r)
	}
	return out
}

// Resolve navigates a path from this entity: each intermediate segment must
// be an association role; the final segment may be a role (returning the
// entity) or a property (returning its value). This implements the SUS path
// expressions of PRML (e.g. dm2role.name, dm2session.s2location.geometry).
func (e *Entity) Resolve(segments []string) (any, error) {
	if len(segments) == 0 {
		return e, nil
	}
	cur := e
	for i, seg := range segments {
		last := i == len(segments)-1
		if next := cur.Nav(seg); next != nil {
			if last {
				return next, nil
			}
			cur = next
			continue
		}
		if cur.class.Prop(seg) != nil {
			if !last {
				return nil, fmt.Errorf("usermodel: %q is a property of %q, cannot navigate further",
					seg, cur.class.Name)
			}
			return cur.Get(seg)
		}
		return nil, fmt.Errorf("usermodel: class %q has neither role nor property %q",
			cur.class.Name, seg)
	}
	return cur, nil
}

// SetPath navigates to the parent of the final segment and sets that
// property — the write counterpart of Resolve used by SetContent actions.
func (e *Entity) SetPath(segments []string, v any) error {
	if len(segments) == 0 {
		return fmt.Errorf("usermodel: empty path")
	}
	cur := e
	for _, seg := range segments[:len(segments)-1] {
		next := cur.Nav(seg)
		if next == nil {
			return fmt.Errorf("usermodel: class %q has no linked role %q", cur.class.Name, seg)
		}
		cur = next
	}
	return cur.Set(segments[len(segments)-1], v)
}

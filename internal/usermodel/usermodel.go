// Package usermodel implements SUS, the paper's Spatial-aware User Model
// (Fig. 3): a UML-profile-like definition layer whose class stereotypes are
// «User», «Session», «Characteristic», «LocationContext» and
// «SpatialSelection», plus a dynamic instance graph that stores each decision
// maker's profile (Fig. 4) and is navigated by PRML path expressions such as
// SUS.DecisionMaker.dm2role.name.
//
// The definition layer (Profile, ClassDef, PropDef, AssocDef) plays the role
// of the UML profile: it constrains what the instance layer (Entity) may
// store, so acquisition actions (SetContent) are type-checked against the
// declared model.
package usermodel

import (
	"fmt"
	"sort"

	"sdwp/internal/geom"
)

// Stereotype enumerates the SUS class stereotypes of Fig. 3.
type Stereotype string

const (
	StereoUser             Stereotype = "User"
	StereoSession          Stereotype = "Session"
	StereoCharacteristic   Stereotype = "Characteristic"
	StereoLocationContext  Stereotype = "LocationContext"
	StereoSpatialSelection Stereotype = "SpatialSelection"
)

// valid reports whether the stereotype is one of the profile's five.
func (s Stereotype) valid() bool {
	switch s {
	case StereoUser, StereoSession, StereoCharacteristic,
		StereoLocationContext, StereoSpatialSelection:
		return true
	}
	return false
}

// PropType enumerates property value types. GeometricTypes of the profile
// map to PropGeometry with an associated geom.Type.
type PropType uint8

const (
	PropString PropType = iota + 1
	PropNumber
	PropBool
	PropGeometry
)

// String names the property type.
func (p PropType) String() string {
	switch p {
	case PropString:
		return "string"
	case PropNumber:
		return "number"
	case PropBool:
		return "bool"
	case PropGeometry:
		return "geometry"
	default:
		return "invalid"
	}
}

// PropDef declares a property of a class. For PropGeometry properties,
// GeomType restricts the allowed geometric primitive (one of the profile's
// GeometricTypes enumeration: POINT, LINE, POLYGON, COLLECTION).
type PropDef struct {
	Name     string
	Type     PropType
	GeomType geom.Type // only for PropGeometry
}

// AssocDef declares a navigable association from one class to another under
// a role name (e.g. DecisionMaker --dm2role--> Role).
type AssocDef struct {
	From string // source class
	Role string // navigation role, unique per source class
	To   string // target class
}

// ClassDef declares one SUS class.
type ClassDef struct {
	Name   string
	Stereo Stereotype
	Props  []PropDef
}

// Prop returns the named property definition, or nil.
func (c *ClassDef) Prop(name string) *PropDef {
	for i := range c.Props {
		if c.Props[i].Name == name {
			return &c.Props[i]
		}
	}
	return nil
}

// Profile is the SUS definition layer: the set of classes and associations a
// concrete system's user model supports.
type Profile struct {
	classes map[string]*ClassDef
	assocs  map[string]map[string]AssocDef // from → role → def
	user    string                         // the single «User» class name
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		classes: map[string]*ClassDef{},
		assocs:  map[string]map[string]AssocDef{},
	}
}

// AddClass declares a class. Exactly one «User» class is allowed; classes
// stereotyped «SpatialSelection» automatically receive a numeric "degree"
// property (the interest counter of Section 4.1) if not declared.
func (p *Profile) AddClass(name string, stereo Stereotype, props ...PropDef) (*ClassDef, error) {
	if name == "" {
		return nil, fmt.Errorf("usermodel: class with empty name")
	}
	if !stereo.valid() {
		return nil, fmt.Errorf("usermodel: class %q has unknown stereotype %q", name, stereo)
	}
	if _, ok := p.classes[name]; ok {
		return nil, fmt.Errorf("usermodel: duplicate class %q", name)
	}
	if stereo == StereoUser {
		if p.user != "" {
			return nil, fmt.Errorf("usermodel: second «User» class %q (already have %q)", name, p.user)
		}
		p.user = name
	}
	c := &ClassDef{Name: name, Stereo: stereo}
	seen := map[string]bool{}
	for _, pd := range props {
		if pd.Name == "" {
			return nil, fmt.Errorf("usermodel: class %q has property with empty name", name)
		}
		if seen[pd.Name] {
			return nil, fmt.Errorf("usermodel: class %q has duplicate property %q", name, pd.Name)
		}
		if pd.Type < PropString || pd.Type > PropGeometry {
			return nil, fmt.Errorf("usermodel: class %q property %q has invalid type", name, pd.Name)
		}
		seen[pd.Name] = true
		c.Props = append(c.Props, pd)
	}
	if stereo == StereoSpatialSelection && c.Prop("degree") == nil {
		c.Props = append(c.Props, PropDef{Name: "degree", Type: PropNumber})
	}
	p.classes[name] = c
	return c, nil
}

// AddAssoc declares an association. Role names must be unique per source
// class and must not shadow a property of the source class (path navigation
// would be ambiguous).
func (p *Profile) AddAssoc(from, role, to string) error {
	fc, ok := p.classes[from]
	if !ok {
		return fmt.Errorf("usermodel: association from unknown class %q", from)
	}
	if _, ok := p.classes[to]; !ok {
		return fmt.Errorf("usermodel: association to unknown class %q", to)
	}
	if role == "" {
		return fmt.Errorf("usermodel: association %s→%s with empty role", from, to)
	}
	if fc.Prop(role) != nil {
		return fmt.Errorf("usermodel: role %q shadows a property of class %q", role, from)
	}
	if _, ok := p.assocs[from][role]; ok {
		return fmt.Errorf("usermodel: duplicate role %q on class %q", role, from)
	}
	if p.assocs[from] == nil {
		p.assocs[from] = map[string]AssocDef{}
	}
	p.assocs[from][role] = AssocDef{From: from, Role: role, To: to}
	return nil
}

// Class returns the named class definition, or nil.
func (p *Profile) Class(name string) *ClassDef { return p.classes[name] }

// UserClass returns the name of the «User» class (empty if undeclared).
func (p *Profile) UserClass() string { return p.user }

// Assoc returns the association definition for from.role and whether it
// exists.
func (p *Profile) Assoc(from, role string) (AssocDef, bool) {
	d, ok := p.assocs[from][role]
	return d, ok
}

// Assocs returns the outgoing associations of a class, sorted by role name.
func (p *Profile) Assocs(from string) []AssocDef {
	roles := make([]string, 0, len(p.assocs[from]))
	for r := range p.assocs[from] {
		roles = append(roles, r)
	}
	sort.Strings(roles)
	out := make([]AssocDef, len(roles))
	for i, r := range roles {
		out[i] = p.assocs[from][r]
	}
	return out
}

// Classes returns all class names, sorted.
func (p *Profile) Classes() []string {
	out := make([]string, 0, len(p.classes))
	for n := range p.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ClassesByStereo returns the names of classes with the given stereotype,
// sorted.
func (p *Profile) ClassesByStereo(s Stereotype) []string {
	var out []string
	for n, c := range p.classes {
		if c.Stereo == s {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks profile-level invariants: a «User» class exists, and
// every «SpatialSelection» class is reachable from it (otherwise tracking
// rules could never update it).
func (p *Profile) Validate() error {
	if p.user == "" {
		return fmt.Errorf("usermodel: profile has no «User» class")
	}
	reach := map[string]bool{p.user: true}
	frontier := []string{p.user}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, a := range p.assocs[cur] {
			if !reach[a.To] {
				reach[a.To] = true
				frontier = append(frontier, a.To)
			}
		}
	}
	for name, c := range p.classes {
		if c.Stereo == StereoSpatialSelection && !reach[name] {
			return fmt.Errorf("usermodel: «SpatialSelection» class %q unreachable from user class %q", name, p.user)
		}
	}
	return nil
}

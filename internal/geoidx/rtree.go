// Package geoidx provides spatial indexes over bounding rectangles: an
// R-tree (quadratic split insertion and Sort-Tile-Recursive bulk loading)
// and a linear-scan baseline with the same interface. The cube engine uses
// these to answer the radius and proximity conditions of spatial
// personalization rules; the benchmark harness compares the two (experiment
// C4 in DESIGN.md).
package geoidx

import (
	"container/heap"
	"math"
	"sort"

	"sdwp/internal/geom"
)

// Index is the query interface shared by RTree and Linear.
type Index interface {
	// Insert adds an item with the given bounds.
	Insert(id int32, bounds geom.Rect)
	// Search calls fn for every item whose bounds intersect query, until fn
	// returns false.
	Search(query geom.Rect, fn func(id int32) bool)
	// Nearest returns up to k item ids ordered by the exact distance
	// function dist (which the caller supplies, e.g. haversine to a point).
	// lowerBound must return a lower bound of dist for any item inside a
	// rectangle; rect-to-point planar distance is the usual choice.
	Nearest(k int, lowerBound func(geom.Rect) float64, dist func(id int32) float64) []int32
	// Len returns the number of items.
	Len() int
}

const (
	defaultMaxEntries = 16
	minFillRatio      = 0.4
)

// RTree is an R-tree over int32 item ids.
type RTree struct {
	root       *node
	size       int
	maxEntries int
	minEntries int
}

type node struct {
	bounds   geom.Rect
	leaf     bool
	entries  []entry // for leaves
	children []*node // for internal nodes
}

type entry struct {
	bounds geom.Rect
	id     int32
}

// NewRTree returns an empty R-tree. maxEntries ≤ 0 selects the default node
// capacity of 16.
func NewRTree(maxEntries int) *RTree {
	if maxEntries <= 3 {
		maxEntries = defaultMaxEntries
	}
	minEntries := int(float64(maxEntries) * minFillRatio)
	if minEntries < 2 {
		minEntries = 2
	}
	return &RTree{
		root:       &node{leaf: true, bounds: geom.EmptyRect()},
		maxEntries: maxEntries,
		minEntries: minEntries,
	}
}

// Len returns the number of indexed items.
func (t *RTree) Len() int { return t.size }

// Insert adds an item. The descent path is recorded so node bounds can be
// extended and overflowing nodes split bottom-up along it.
func (t *RTree) Insert(id int32, bounds geom.Rect) {
	t.size++
	// Descend to the leaf needing least enlargement, recording the path and
	// extending bounds on the way down.
	path := []*node{t.root}
	n := t.root
	for !n.leaf {
		n.bounds = n.bounds.ExtendRect(bounds)
		best := -1
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		for i, c := range n.children {
			enl := c.bounds.ExtendRect(bounds).Area() - c.bounds.Area()
			area := c.bounds.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.children[best]
		path = append(path, n)
	}
	n.bounds = n.bounds.ExtendRect(bounds)
	n.entries = append(n.entries, entry{bounds: bounds, id: id})

	// Split bottom-up along the recorded path.
	for i := len(path) - 1; i >= 0; i-- {
		cur := path[i]
		over := (cur.leaf && len(cur.entries) > t.maxEntries) ||
			(!cur.leaf && len(cur.children) > t.maxEntries)
		if !over {
			break
		}
		a, b := t.split(cur)
		if i == 0 {
			t.root = &node{
				leaf:     false,
				children: []*node{a, b},
				bounds:   a.bounds.ExtendRect(b.bounds),
			}
		} else {
			parent := path[i-1]
			for j, c := range parent.children {
				if c == cur {
					parent.children[j] = a
					break
				}
			}
			parent.children = append(parent.children, b)
		}
	}
}

// split performs a quadratic split of an overflowing node into two.
func (t *RTree) split(n *node) (*node, *node) {
	type item struct {
		bounds geom.Rect
		e      entry
		c      *node
	}
	var items []item
	if n.leaf {
		for _, e := range n.entries {
			items = append(items, item{bounds: e.bounds, e: e})
		}
	} else {
		for _, c := range n.children {
			items = append(items, item{bounds: c.bounds, c: c})
		}
	}
	// Pick the two seeds wasting the most area if grouped together.
	si, sj := 0, 1
	worst := -math.MaxFloat64
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			waste := items[i].bounds.ExtendRect(items[j].bounds).Area() -
				items[i].bounds.Area() - items[j].bounds.Area()
			if waste > worst {
				worst, si, sj = waste, i, j
			}
		}
	}
	ga := &node{leaf: n.leaf, bounds: items[si].bounds}
	gb := &node{leaf: n.leaf, bounds: items[sj].bounds}
	assign := func(g *node, it item) {
		if n.leaf {
			g.entries = append(g.entries, it.e)
		} else {
			g.children = append(g.children, it.c)
		}
		g.bounds = g.bounds.ExtendRect(it.bounds)
	}
	assign(ga, items[si])
	assign(gb, items[sj])
	count := func(g *node) int {
		if n.leaf {
			return len(g.entries)
		}
		return len(g.children)
	}
	for k, it := range items {
		if k == si || k == sj {
			continue
		}
		remaining := len(items) - k - 1
		switch {
		case count(ga)+remaining < t.minEntries:
			assign(ga, it)
		case count(gb)+remaining < t.minEntries:
			assign(gb, it)
		default:
			enlA := ga.bounds.ExtendRect(it.bounds).Area() - ga.bounds.Area()
			enlB := gb.bounds.ExtendRect(it.bounds).Area() - gb.bounds.Area()
			if enlA < enlB || (enlA == enlB && count(ga) <= count(gb)) {
				assign(ga, it)
			} else {
				assign(gb, it)
			}
		}
	}
	return ga, gb
}

// Search calls fn for every item whose bounds intersect query.
func (t *RTree) Search(query geom.Rect, fn func(id int32) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if !n.bounds.Intersects(query) {
			return true
		}
		if n.leaf {
			for _, e := range n.entries {
				if e.bounds.Intersects(query) {
					if !fn(e.id) {
						return false
					}
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// pqItem is a priority-queue element for best-first traversal.
type pqItem struct {
	dist float64
	n    *node
	id   int32
	item bool
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Nearest returns up to k ids in ascending order of dist, using lowerBound
// over node rectangles to prune (best-first search).
func (t *RTree) Nearest(k int, lowerBound func(geom.Rect) float64, dist func(id int32) float64) []int32 {
	if k <= 0 || t.size == 0 {
		return nil
	}
	q := &pq{{dist: lowerBound(t.root.bounds), n: t.root}}
	var out []int32
	for q.Len() > 0 && len(out) < k {
		it := heap.Pop(q).(pqItem)
		if it.item {
			out = append(out, it.id)
			continue
		}
		n := it.n
		if n.leaf {
			for _, e := range n.entries {
				heap.Push(q, pqItem{dist: dist(e.id), id: e.id, item: true})
			}
		} else {
			for _, c := range n.children {
				heap.Push(q, pqItem{dist: lowerBound(c.bounds), n: c})
			}
		}
	}
	return out
}

// Bulk constructs an R-tree from items using Sort-Tile-Recursive packing,
// which yields near-optimal leaves for static data.
func Bulk(ids []int32, bounds []geom.Rect, maxEntries int) *RTree {
	if len(ids) != len(bounds) {
		panic("geoidx: ids and bounds length mismatch")
	}
	t := NewRTree(maxEntries)
	t.size = len(ids)
	if len(ids) == 0 {
		return t
	}
	entries := make([]entry, len(ids))
	for i := range ids {
		entries[i] = entry{bounds: bounds[i], id: ids[i]}
	}
	leaves := strPack(entries, t.maxEntries)
	t.root = buildUp(leaves, t.maxEntries)
	return t
}

// strPack tiles entries into leaves: sort by center X, slice into vertical
// strips of √(n/M) tiles, sort each strip by center Y, pack runs of M.
func strPack(entries []entry, m int) []*node {
	n := len(entries)
	numLeaves := (n + m - 1) / m
	numStrips := int(math.Ceil(math.Sqrt(float64(numLeaves))))
	perStrip := numStrips * m

	sort.Slice(entries, func(i, j int) bool {
		return entries[i].bounds.Center().X < entries[j].bounds.Center().X
	})
	var leaves []*node
	for s := 0; s < n; s += perStrip {
		e := s + perStrip
		if e > n {
			e = n
		}
		strip := entries[s:e]
		sort.Slice(strip, func(i, j int) bool {
			return strip[i].bounds.Center().Y < strip[j].bounds.Center().Y
		})
		for i := 0; i < len(strip); i += m {
			j := i + m
			if j > len(strip) {
				j = len(strip)
			}
			leaf := &node{leaf: true, bounds: geom.EmptyRect()}
			leaf.entries = append(leaf.entries, strip[i:j]...)
			for _, en := range leaf.entries {
				leaf.bounds = leaf.bounds.ExtendRect(en.bounds)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// buildUp packs a level of nodes into parents until a single root remains.
func buildUp(level []*node, m int) *node {
	for len(level) > 1 {
		var next []*node
		for i := 0; i < len(level); i += m {
			j := i + m
			if j > len(level) {
				j = len(level)
			}
			p := &node{bounds: geom.EmptyRect()}
			p.children = append(p.children, level[i:j]...)
			for _, c := range p.children {
				p.bounds = p.bounds.ExtendRect(c.bounds)
			}
			next = append(next, p)
		}
		level = next
	}
	return level[0]
}

// Height returns the number of levels in the tree (1 for a lone leaf root).
// Exposed for tests and diagnostics.
func (t *RTree) Height() int {
	h := 1
	n := t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}

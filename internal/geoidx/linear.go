package geoidx

import (
	"sort"

	"sdwp/internal/geom"
)

// Linear is the naive baseline index: it scans every item on every query.
// It implements the same Index interface as RTree so the benchmark harness
// (experiment C4) can swap the two.
type Linear struct {
	ids    []int32
	bounds []geom.Rect
}

// NewLinear returns an empty linear index.
func NewLinear() *Linear { return &Linear{} }

// Len returns the number of items.
func (l *Linear) Len() int { return len(l.ids) }

// Insert adds an item.
func (l *Linear) Insert(id int32, bounds geom.Rect) {
	l.ids = append(l.ids, id)
	l.bounds = append(l.bounds, bounds)
}

// Search scans all items.
func (l *Linear) Search(query geom.Rect, fn func(id int32) bool) {
	for i, b := range l.bounds {
		if b.Intersects(query) {
			if !fn(l.ids[i]) {
				return
			}
		}
	}
}

// Nearest computes the exact distance for every item and returns the k
// smallest.
func (l *Linear) Nearest(k int, _ func(geom.Rect) float64, dist func(id int32) float64) []int32 {
	if k <= 0 || len(l.ids) == 0 {
		return nil
	}
	type cand struct {
		id int32
		d  float64
	}
	cands := make([]cand, len(l.ids))
	for i, id := range l.ids {
		cands[i] = cand{id: id, d: dist(id)}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}

// PointIndex wraps an Index over point data with geodetic convenience
// queries. Geometry coordinates are lon/lat degrees.
type PointIndex struct {
	idx Index
	pts []geom.Point
}

// NewPointIndex bulk-loads the given points into an R-tree-backed index.
func NewPointIndex(pts []geom.Point) *PointIndex {
	ids := make([]int32, len(pts))
	bounds := make([]geom.Rect, len(pts))
	for i, p := range pts {
		ids[i] = int32(i)
		bounds[i] = p.Bounds()
	}
	return &PointIndex{idx: Bulk(ids, bounds, 0), pts: pts}
}

// NewLinearPointIndex wraps the points in the linear baseline.
func NewLinearPointIndex(pts []geom.Point) *PointIndex {
	l := NewLinear()
	for i, p := range pts {
		l.Insert(int32(i), p.Bounds())
	}
	return &PointIndex{idx: l, pts: pts}
}

// Len returns the number of points.
func (pi *PointIndex) Len() int { return pi.idx.Len() }

// WithinKm calls fn for every point within radiusKm kilometres (haversine)
// of center.
func (pi *PointIndex) WithinKm(center geom.Point, radiusKm float64, fn func(i int32) bool) {
	box := geom.DegreeBox(center, radiusKm)
	pi.idx.Search(box, func(id int32) bool {
		if geom.Haversine(center, pi.pts[id]) <= radiusKm {
			return fn(id)
		}
		return true
	})
}

// NearestKm returns the k points nearest to center by haversine distance.
func (pi *PointIndex) NearestKm(center geom.Point, k int) []int32 {
	// Lower bound: a degree of arc is never shorter than ~0.5 km anywhere a
	// warehouse plausibly operates, so scaling planar degree distance by 0.5
	// gives a valid (if loose) haversine lower bound for best-first pruning.
	lb := func(r geom.Rect) float64 {
		return r.DistanceToPoint(center) * 0.5
	}
	return pi.idx.Nearest(k, lb, func(id int32) float64 {
		return geom.Haversine(center, pi.pts[id])
	})
}

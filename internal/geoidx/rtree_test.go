package geoidx

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"sdwp/internal/geom"
)

func randRects(n int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, n)
	for i := range out {
		x, y := rng.Float64()*100, rng.Float64()*100
		w, h := rng.Float64()*2, rng.Float64()*2
		out[i] = geom.Rect{Min: geom.Pt(x, y), Max: geom.Pt(x+w, y+h)}
	}
	return out
}

func searchIDs(idx Index, q geom.Rect) []int32 {
	var got []int32
	idx.Search(q, func(id int32) bool { got = append(got, id); return true })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	return got
}

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRTreeEmpty(t *testing.T) {
	tr := NewRTree(0)
	if tr.Len() != 0 {
		t.Fatal("empty tree Len != 0")
	}
	if got := searchIDs(tr, geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)}); len(got) != 0 {
		t.Fatalf("search on empty tree returned %v", got)
	}
	if got := tr.Nearest(5, func(geom.Rect) float64 { return 0 }, func(int32) float64 { return 0 }); got != nil {
		t.Fatalf("nearest on empty tree returned %v", got)
	}
}

func TestRTreeSingleItem(t *testing.T) {
	tr := NewRTree(0)
	tr.Insert(7, geom.Pt(5, 5).Bounds())
	if got := searchIDs(tr, geom.Rect{Min: geom.Pt(4, 4), Max: geom.Pt(6, 6)}); !sameIDs(got, []int32{7}) {
		t.Fatalf("search = %v", got)
	}
	if got := searchIDs(tr, geom.Rect{Min: geom.Pt(8, 8), Max: geom.Pt(9, 9)}); len(got) != 0 {
		t.Fatalf("miss search = %v", got)
	}
}

// Insertion-built tree must agree with the linear baseline on every query.
func TestRTreeMatchesLinearOnSearch(t *testing.T) {
	rects := randRects(2000, 1)
	tr := NewRTree(8)
	lin := NewLinear()
	for i, r := range rects {
		tr.Insert(int32(i), r)
		lin.Insert(int32(i), r)
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	queries := randRects(100, 2)
	for _, q := range queries {
		want := searchIDs(lin, q)
		got := searchIDs(tr, q)
		if !sameIDs(got, want) {
			t.Fatalf("query %+v: rtree %d ids, linear %d ids", q, len(got), len(want))
		}
	}
}

// Bulk-loaded tree must agree with the linear baseline too.
func TestBulkMatchesLinear(t *testing.T) {
	rects := randRects(3000, 3)
	ids := make([]int32, len(rects))
	lin := NewLinear()
	for i, r := range rects {
		ids[i] = int32(i)
		lin.Insert(int32(i), r)
	}
	tr := Bulk(ids, rects, 16)
	if tr.Len() != len(rects) {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, q := range randRects(100, 4) {
		want := searchIDs(lin, q)
		got := searchIDs(tr, q)
		if !sameIDs(got, want) {
			t.Fatalf("bulk query mismatch: got %d want %d", len(got), len(want))
		}
	}
}

func TestBulkEmptyAndMismatch(t *testing.T) {
	tr := Bulk(nil, nil, 0)
	if tr.Len() != 0 {
		t.Fatal("bulk of nothing should be empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Bulk([]int32{1}, nil, 0)
}

func TestRTreeSearchEarlyStop(t *testing.T) {
	tr := NewRTree(4)
	for i := 0; i < 100; i++ {
		tr.Insert(int32(i), geom.Pt(float64(i%10), float64(i/10)).Bounds())
	}
	count := 0
	tr.Search(geom.Rect{Min: geom.Pt(-1, -1), Max: geom.Pt(11, 11)}, func(int32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestNearestMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, 1000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10-5, rng.Float64()*8+36) // lon/lat-ish
	}
	rt := NewPointIndex(pts)
	ln := NewLinearPointIndex(pts)
	for trial := 0; trial < 20; trial++ {
		c := geom.Pt(rng.Float64()*10-5, rng.Float64()*8+36)
		for _, k := range []int{1, 5, 17} {
			a := rt.NearestKm(c, k)
			b := ln.NearestKm(c, k)
			if len(a) != k || len(b) != k {
				t.Fatalf("k=%d: lens %d %d", k, len(a), len(b))
			}
			// Compare by distance (ties may reorder ids).
			for i := range a {
				da := geom.Haversine(c, pts[a[i]])
				db := geom.Haversine(c, pts[b[i]])
				if math.Abs(da-db) > 1e-9 {
					t.Fatalf("k=%d pos %d: rtree %.6f vs linear %.6f", k, i, da, db)
				}
			}
			// Ascending order.
			for i := 1; i < len(a); i++ {
				if geom.Haversine(c, pts[a[i-1]]) > geom.Haversine(c, pts[a[i]])+1e-9 {
					t.Fatalf("nearest not ascending")
				}
			}
		}
	}
}

func TestWithinKmMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := make([]geom.Point, 2000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*6-3, rng.Float64()*4+38)
	}
	pi := NewPointIndex(pts)
	for trial := 0; trial < 10; trial++ {
		c := geom.Pt(rng.Float64()*6-3, rng.Float64()*4+38)
		radius := rng.Float64()*40 + 5
		want := map[int32]bool{}
		for i, p := range pts {
			if geom.Haversine(c, p) <= radius {
				want[int32(i)] = true
			}
		}
		got := map[int32]bool{}
		pi.WithinKm(c, radius, func(i int32) bool { got[i] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("radius %.1f: got %d, want %d", radius, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("missing id %d", id)
			}
		}
	}
}

func TestWithinKmEarlyStop(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.001, 0), geom.Pt(0.002, 0), geom.Pt(0.003, 0)}
	pi := NewPointIndex(pts)
	count := 0
	pi.WithinKm(geom.Pt(0, 0), 10, func(int32) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestRTreeHeightGrows(t *testing.T) {
	tr := NewRTree(4)
	for i := 0; i < 500; i++ {
		tr.Insert(int32(i), geom.Pt(float64(i), float64(i%7)).Bounds())
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d for 500 items with fanout 4", tr.Height())
	}
}

// Property test: random insert order never loses items.
func TestQuickInsertAllFindable(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(400)
		tr := NewRTree(4 + rng.Intn(12))
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*50, rng.Float64()*50)
			tr.Insert(int32(i), pts[i].Bounds())
		}
		for i, p := range pts {
			found := false
			tr.Search(p.Bounds().Expand(1e-9), func(id int32) bool {
				if id == int32(i) {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("trial %d: item %d lost", trial, i)
			}
		}
	}
}

func buildPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*12-9, rng.Float64()*7+36)
	}
	return pts
}

func BenchmarkRTreeWithinKm10k(b *testing.B) {
	pi := NewPointIndex(buildPoints(10000, 5))
	c := geom.Pt(-3.7, 40.4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		pi.WithinKm(c, 25, func(int32) bool { n++; return true })
	}
}

func BenchmarkLinearWithinKm10k(b *testing.B) {
	pi := NewLinearPointIndex(buildPoints(10000, 5))
	c := geom.Pt(-3.7, 40.4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		pi.WithinKm(c, 25, func(int32) bool { n++; return true })
	}
}

func BenchmarkRTreeInsert(b *testing.B) {
	rects := randRects(b.N+1, 6)
	tr := NewRTree(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(int32(i), rects[i])
	}
}

func BenchmarkBulkLoad100k(b *testing.B) {
	rects := randRects(100000, 7)
	ids := make([]int32, len(rects))
	for i := range ids {
		ids[i] = int32(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bulk(ids, rects, 16)
	}
}

// Package mdmodel implements the conceptual multidimensional metamodel of
// Luján-Mora, Trujillo & Song ("A UML profile for multidimensional modeling
// in data warehouses", DKE 59(3)), which the paper uses as its base model
// (Fig. 2): Fact classes with FactAttributes (measures), Dimension classes
// whose hierarchy levels are Base classes carrying Descriptor and
// DimensionAttribute properties, and roll-up/drill-down associations between
// consecutive Base classes.
//
// The metamodel here is the executable equivalent of that UML profile: a
// validated, cloneable, JSON-serializable object model that the GeoMD
// extension (package geomd) decorates with spatiality and that the cube
// engine (package cube) stores instances for.
package mdmodel

import (
	"fmt"
	"sort"
	"strings"
)

// DataType enumerates the value types a descriptor attribute or measure may
// carry.
type DataType uint8

const (
	TypeString DataType = iota + 1
	TypeNumber
	TypeBool
)

// String returns the lower-case name of the data type.
func (d DataType) String() string {
	switch d {
	case TypeString:
		return "string"
	case TypeNumber:
		return "number"
	case TypeBool:
		return "bool"
	default:
		return "invalid"
	}
}

// AttrKind distinguishes the UML profile's property stereotypes on Base
// classes.
type AttrKind uint8

const (
	// KindOID marks the level's identifying attribute (stereotype «OID»).
	KindOID AttrKind = iota + 1
	// KindDescriptor marks the level's default display attribute («D»).
	KindDescriptor
	// KindAttribute marks ordinary descriptive attributes («DA»).
	KindAttribute
)

// String returns the profile's shorthand for the attribute kind.
func (k AttrKind) String() string {
	switch k {
	case KindOID:
		return "OID"
	case KindDescriptor:
		return "D"
	case KindAttribute:
		return "DA"
	default:
		return "?"
	}
}

// Attribute is a property of a Base class (hierarchy level).
type Attribute struct {
	Name string   `json:"name"`
	Kind AttrKind `json:"kind"`
	Type DataType `json:"type"`
}

// Level is a Base class: one level of a dimension hierarchy. Levels are
// ordered fine-to-coarse by the dimension's Levels slice; the roll-up
// association (role r in the profile) links Levels[i] to Levels[i+1], and
// drill-down (role d) is the inverse.
type Level struct {
	Name       string      `json:"name"`
	Attributes []Attribute `json:"attributes,omitempty"`
}

// Attribute returns the named attribute, or nil.
func (l *Level) Attribute(name string) *Attribute {
	for i := range l.Attributes {
		if l.Attributes[i].Name == name {
			return &l.Attributes[i]
		}
	}
	return nil
}

// Dimension is a Dimension class with a single linear roll-up hierarchy of
// Base classes, finest first. (The paper's examples use linear hierarchies:
// Store → City → State → Country; multiple alternative hierarchies are out
// of the paper's scope.)
type Dimension struct {
	Name   string   `json:"name"`
	Levels []*Level `json:"levels"`
}

// Level returns the named level, or nil.
func (d *Dimension) Level(name string) *Level {
	for _, l := range d.Levels {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// LevelIndex returns the position of the named level in the fine-to-coarse
// order, or -1.
func (d *Dimension) LevelIndex(name string) int {
	for i, l := range d.Levels {
		if l.Name == name {
			return i
		}
	}
	return -1
}

// Finest returns the finest (first) level.
func (d *Dimension) Finest() *Level {
	if len(d.Levels) == 0 {
		return nil
	}
	return d.Levels[0]
}

// RollUpPath returns the level names from the finest level up to and
// including the named level, or nil if the level does not exist.
func (d *Dimension) RollUpPath(name string) []string {
	i := d.LevelIndex(name)
	if i < 0 {
		return nil
	}
	out := make([]string, 0, i+1)
	for j := 0; j <= i; j++ {
		out = append(out, d.Levels[j].Name)
	}
	return out
}

// Measure is a FactAttribute of a Fact class.
type Measure struct {
	Name string   `json:"name"`
	Type DataType `json:"type"`
}

// Fact is a Fact class: measures plus the dimensions that contextualize
// them.
type Fact struct {
	Name       string    `json:"name"`
	Measures   []Measure `json:"measures"`
	Dimensions []string  `json:"dimensions"` // names of participating dimensions
}

// Measure returns the named measure, or nil.
func (f *Fact) Measure(name string) *Measure {
	for i := range f.Measures {
		if f.Measures[i].Name == name {
			return &f.Measures[i]
		}
	}
	return nil
}

// HasDimension reports whether the fact references the named dimension.
func (f *Fact) HasDimension(name string) bool {
	for _, d := range f.Dimensions {
		if d == name {
			return true
		}
	}
	return false
}

// Schema is a complete multidimensional model: the conceptual star/snowflake
// of one analysis domain.
type Schema struct {
	Name       string       `json:"name"`
	Facts      []*Fact      `json:"facts"`
	Dimensions []*Dimension `json:"dimensions"`
}

// Fact returns the named fact, or nil.
func (s *Schema) Fact(name string) *Fact {
	for _, f := range s.Facts {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Dimension returns the named dimension, or nil.
func (s *Schema) Dimension(name string) *Dimension {
	for _, d := range s.Dimensions {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// Validate checks the structural well-formedness rules of the profile:
// non-empty unique names, every fact dimension resolvable, every dimension
// non-empty, unique level names within a dimension, unique attribute names
// within a level, and exactly one Descriptor per level (the profile's «D»
// stereotype; the Descriptor doubles as the member display name in the cube
// engine).
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("mdmodel: schema has no name")
	}
	if len(s.Facts) == 0 {
		return fmt.Errorf("mdmodel: schema %q has no facts", s.Name)
	}
	dimSeen := map[string]bool{}
	for _, d := range s.Dimensions {
		if d.Name == "" {
			return fmt.Errorf("mdmodel: dimension with empty name")
		}
		if dimSeen[d.Name] {
			return fmt.Errorf("mdmodel: duplicate dimension %q", d.Name)
		}
		dimSeen[d.Name] = true
		if len(d.Levels) == 0 {
			return fmt.Errorf("mdmodel: dimension %q has no levels", d.Name)
		}
		lvlSeen := map[string]bool{}
		for _, l := range d.Levels {
			if l.Name == "" {
				return fmt.Errorf("mdmodel: dimension %q has a level with empty name", d.Name)
			}
			if lvlSeen[l.Name] {
				return fmt.Errorf("mdmodel: dimension %q has duplicate level %q", d.Name, l.Name)
			}
			lvlSeen[l.Name] = true
			attrSeen := map[string]bool{}
			descriptors := 0
			for _, a := range l.Attributes {
				if a.Name == "" {
					return fmt.Errorf("mdmodel: level %s.%s has an attribute with empty name", d.Name, l.Name)
				}
				if attrSeen[a.Name] {
					return fmt.Errorf("mdmodel: level %s.%s has duplicate attribute %q", d.Name, l.Name, a.Name)
				}
				attrSeen[a.Name] = true
				if a.Kind == KindDescriptor {
					descriptors++
				}
			}
			if descriptors != 1 {
				return fmt.Errorf("mdmodel: level %s.%s needs exactly one Descriptor attribute, has %d", d.Name, l.Name, descriptors)
			}
		}
	}
	factSeen := map[string]bool{}
	for _, f := range s.Facts {
		if f.Name == "" {
			return fmt.Errorf("mdmodel: fact with empty name")
		}
		if factSeen[f.Name] {
			return fmt.Errorf("mdmodel: duplicate fact %q", f.Name)
		}
		factSeen[f.Name] = true
		if len(f.Dimensions) == 0 {
			return fmt.Errorf("mdmodel: fact %q references no dimensions", f.Name)
		}
		refSeen := map[string]bool{}
		for _, dn := range f.Dimensions {
			if !dimSeen[dn] {
				return fmt.Errorf("mdmodel: fact %q references unknown dimension %q", f.Name, dn)
			}
			if refSeen[dn] {
				return fmt.Errorf("mdmodel: fact %q references dimension %q twice", f.Name, dn)
			}
			refSeen[dn] = true
		}
		mSeen := map[string]bool{}
		for _, m := range f.Measures {
			if m.Name == "" {
				return fmt.Errorf("mdmodel: fact %q has a measure with empty name", f.Name)
			}
			if mSeen[m.Name] {
				return fmt.Errorf("mdmodel: fact %q has duplicate measure %q", f.Name, m.Name)
			}
			mSeen[m.Name] = true
		}
	}
	return nil
}

// Clone returns a deep copy of the schema. Personalization rules operate on
// per-session clones so one decision maker's BecomeSpatial never leaks into
// another's view (paper Fig. 1).
func (s *Schema) Clone() *Schema {
	c := &Schema{Name: s.Name}
	for _, f := range s.Facts {
		nf := &Fact{Name: f.Name}
		nf.Measures = append([]Measure(nil), f.Measures...)
		nf.Dimensions = append([]string(nil), f.Dimensions...)
		c.Facts = append(c.Facts, nf)
	}
	for _, d := range s.Dimensions {
		nd := &Dimension{Name: d.Name}
		for _, l := range d.Levels {
			nl := &Level{Name: l.Name}
			nl.Attributes = append([]Attribute(nil), l.Attributes...)
			nd.Levels = append(nd.Levels, nl)
		}
		c.Dimensions = append(c.Dimensions, nd)
	}
	return c
}

// Render pretty-prints the schema in the textual shape of the paper's class
// diagrams: one fact block and one block per dimension, hierarchy shown
// fine → coarse. Deterministic output (dimensions in declaration order).
func (s *Schema) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Schema %s\n", s.Name)
	for _, f := range s.Facts {
		fmt.Fprintf(&b, "  Fact %s\n", f.Name)
		for _, m := range f.Measures {
			fmt.Fprintf(&b, "    FA %s: %s\n", m.Name, m.Type)
		}
		fmt.Fprintf(&b, "    dims: %s\n", strings.Join(f.Dimensions, ", "))
	}
	for _, d := range s.Dimensions {
		fmt.Fprintf(&b, "  Dimension %s\n", d.Name)
		for i, l := range d.Levels {
			arrow := ""
			if i > 0 {
				arrow = " (r↑)"
			}
			fmt.Fprintf(&b, "    Base %s%s\n", l.Name, arrow)
			attrs := append([]Attribute(nil), l.Attributes...)
			sort.Slice(attrs, func(x, y int) bool { return attrs[x].Kind < attrs[y].Kind })
			for _, a := range attrs {
				fmt.Fprintf(&b, "      %s %s: %s\n", a.Kind, a.Name, a.Type)
			}
		}
	}
	return b.String()
}

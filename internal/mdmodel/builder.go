package mdmodel

import "fmt"

// Builder assembles a Schema with a fluent API and defers validation to
// Build. It exists so examples and the data generator can declare the Fig. 2
// sales model readably.
type Builder struct {
	s    *Schema
	errs []error
}

// NewBuilder starts a schema with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{s: &Schema{Name: name}}
}

// DimensionBuilder adds levels to one dimension.
type DimensionBuilder struct {
	b *Builder
	d *Dimension
}

// Dimension declares a dimension; levels are added finest-first via Level.
func (b *Builder) Dimension(name string) *DimensionBuilder {
	d := &Dimension{Name: name}
	b.s.Dimensions = append(b.s.Dimensions, d)
	return &DimensionBuilder{b: b, d: d}
}

// Level appends a hierarchy level (fine → coarse declaration order). The
// descriptor attribute named by descriptor is created with TypeString and
// marked «D»; extra attributes are declared with Attr.
func (db *DimensionBuilder) Level(name, descriptor string) *LevelBuilder {
	l := &Level{Name: name}
	l.Attributes = append(l.Attributes, Attribute{Name: descriptor, Kind: KindDescriptor, Type: TypeString})
	db.d.Levels = append(db.d.Levels, l)
	return &LevelBuilder{db: db, l: l}
}

// LevelBuilder adds attributes to one level.
type LevelBuilder struct {
	db *DimensionBuilder
	l  *Level
}

// Attr appends a descriptive attribute («DA»).
func (lb *LevelBuilder) Attr(name string, t DataType) *LevelBuilder {
	lb.l.Attributes = append(lb.l.Attributes, Attribute{Name: name, Kind: KindAttribute, Type: t})
	return lb
}

// OID appends the identifying attribute («OID»).
func (lb *LevelBuilder) OID(name string) *LevelBuilder {
	lb.l.Attributes = append(lb.l.Attributes, Attribute{Name: name, Kind: KindOID, Type: TypeString})
	return lb
}

// Level continues the hierarchy with the next (coarser) level.
func (lb *LevelBuilder) Level(name, descriptor string) *LevelBuilder {
	return lb.db.Level(name, descriptor)
}

// Dimension starts a new dimension (convenience for chaining).
func (lb *LevelBuilder) Dimension(name string) *DimensionBuilder {
	return lb.db.b.Dimension(name)
}

// FactBuilder assembles a fact.
type FactBuilder struct {
	b *Builder
	f *Fact
}

// Fact declares a fact class.
func (b *Builder) Fact(name string) *FactBuilder {
	f := &Fact{Name: name}
	b.s.Facts = append(b.s.Facts, f)
	return &FactBuilder{b: b, f: f}
}

// Measure appends a numeric FactAttribute.
func (fb *FactBuilder) Measure(name string) *FactBuilder {
	fb.f.Measures = append(fb.f.Measures, Measure{Name: name, Type: TypeNumber})
	return fb
}

// Uses links the fact to a declared dimension.
func (fb *FactBuilder) Uses(dims ...string) *FactBuilder {
	for _, d := range dims {
		if fb.b.s.Dimension(d) == nil {
			fb.b.errs = append(fb.b.errs, fmt.Errorf("mdmodel: fact %q uses undeclared dimension %q", fb.f.Name, d))
		}
		fb.f.Dimensions = append(fb.f.Dimensions, d)
	}
	return fb
}

// Build validates and returns the schema.
func (b *Builder) Build() (*Schema, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if err := b.s.Validate(); err != nil {
		return nil, err
	}
	return b.s, nil
}

// MustBuild is Build for static schemas known to be valid; it panics on
// error.
func (b *Builder) MustBuild() *Schema {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

package mdmodel

import (
	"encoding/json"
	"strings"
	"testing"
)

// salesSchema builds the paper's Fig. 2 sales model.
func salesSchema(t testing.TB) *Schema {
	t.Helper()
	b := NewBuilder("SalesDW")
	b.Dimension("Store").
		Level("Store", "name").Attr("address", TypeString).OID("storeID").
		Level("City", "name").Attr("population", TypeNumber).
		Level("State", "name").
		Level("Country", "name")
	b.Dimension("Customer").
		Level("Customer", "name").Attr("age", TypeNumber).
		Level("Segment", "name")
	b.Dimension("Product").
		Level("Product", "name").Attr("brand", TypeString).
		Level("Family", "name")
	b.Dimension("Time").
		Level("Day", "date").
		Level("Month", "name").
		Level("Year", "name")
	b.Fact("Sales").
		Measure("UnitSales").Measure("StoreCost").Measure("StoreSales").
		Uses("Store", "Customer", "Product", "Time")
	s, err := b.Build()
	if err != nil {
		t.Fatalf("build sales schema: %v", err)
	}
	return s
}

func TestBuilderBuildsFig2Shape(t *testing.T) {
	s := salesSchema(t)
	if len(s.Dimensions) != 4 {
		t.Fatalf("dimensions = %d, want 4", len(s.Dimensions))
	}
	f := s.Fact("Sales")
	if f == nil {
		t.Fatal("Sales fact missing")
	}
	if len(f.Measures) != 3 {
		t.Fatalf("measures = %d, want 3", len(f.Measures))
	}
	st := s.Dimension("Store")
	if st == nil || len(st.Levels) != 4 {
		t.Fatalf("Store hierarchy wrong: %+v", st)
	}
	if st.Finest().Name != "Store" {
		t.Errorf("finest = %q", st.Finest().Name)
	}
	if got := st.RollUpPath("State"); len(got) != 3 || got[2] != "State" {
		t.Errorf("RollUpPath(State) = %v", got)
	}
	if st.RollUpPath("Planet") != nil {
		t.Error("RollUpPath of unknown level should be nil")
	}
	if !f.HasDimension("Time") || f.HasDimension("Weather") {
		t.Error("HasDimension wrong")
	}
	if f.Measure("UnitSales") == nil || f.Measure("Profit") != nil {
		t.Error("Measure lookup wrong")
	}
}

func TestLevelAndAttributeLookups(t *testing.T) {
	s := salesSchema(t)
	city := s.Dimension("Store").Level("City")
	if city == nil {
		t.Fatal("City level missing")
	}
	if city.Attribute("population") == nil {
		t.Error("population attribute missing")
	}
	if city.Attribute("elevation") != nil {
		t.Error("unknown attribute should be nil")
	}
	if s.Dimension("Store").LevelIndex("Country") != 3 {
		t.Error("LevelIndex wrong")
	}
	if s.Dimension("Nope") != nil || s.Fact("Nope") != nil {
		t.Error("unknown lookups should be nil")
	}
}

func TestValidateRejectsBadSchemas(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Schema
		frag  string
	}{
		{"no name", func() *Schema { return &Schema{} }, "no name"},
		{"no facts", func() *Schema { return &Schema{Name: "X"} }, "no facts"},
		{"fact without dims", func() *Schema {
			return &Schema{Name: "X", Facts: []*Fact{{Name: "F"}}}
		}, "references no dimensions"},
		{"unknown dim ref", func() *Schema {
			return &Schema{Name: "X", Facts: []*Fact{{Name: "F", Dimensions: []string{"D"}}}}
		}, "unknown dimension"},
		{"duplicate dim", func() *Schema {
			d1 := &Dimension{Name: "D", Levels: []*Level{{Name: "L", Attributes: []Attribute{{Name: "n", Kind: KindDescriptor, Type: TypeString}}}}}
			d2 := &Dimension{Name: "D", Levels: d1.Levels}
			return &Schema{Name: "X", Dimensions: []*Dimension{d1, d2},
				Facts: []*Fact{{Name: "F", Dimensions: []string{"D"}}}}
		}, "duplicate dimension"},
		{"dim without levels", func() *Schema {
			return &Schema{Name: "X", Dimensions: []*Dimension{{Name: "D"}},
				Facts: []*Fact{{Name: "F", Dimensions: []string{"D"}}}}
		}, "has no levels"},
		{"level without descriptor", func() *Schema {
			d := &Dimension{Name: "D", Levels: []*Level{{Name: "L"}}}
			return &Schema{Name: "X", Dimensions: []*Dimension{d},
				Facts: []*Fact{{Name: "F", Dimensions: []string{"D"}}}}
		}, "exactly one Descriptor"},
		{"two descriptors", func() *Schema {
			d := &Dimension{Name: "D", Levels: []*Level{{Name: "L", Attributes: []Attribute{
				{Name: "a", Kind: KindDescriptor, Type: TypeString},
				{Name: "b", Kind: KindDescriptor, Type: TypeString},
			}}}}
			return &Schema{Name: "X", Dimensions: []*Dimension{d},
				Facts: []*Fact{{Name: "F", Dimensions: []string{"D"}}}}
		}, "exactly one Descriptor"},
		{"duplicate level", func() *Schema {
			l := &Level{Name: "L", Attributes: []Attribute{{Name: "n", Kind: KindDescriptor, Type: TypeString}}}
			d := &Dimension{Name: "D", Levels: []*Level{l, {Name: "L", Attributes: l.Attributes}}}
			return &Schema{Name: "X", Dimensions: []*Dimension{d},
				Facts: []*Fact{{Name: "F", Dimensions: []string{"D"}}}}
		}, "duplicate level"},
		{"duplicate measure", func() *Schema {
			d := &Dimension{Name: "D", Levels: []*Level{{Name: "L", Attributes: []Attribute{{Name: "n", Kind: KindDescriptor, Type: TypeString}}}}}
			return &Schema{Name: "X", Dimensions: []*Dimension{d},
				Facts: []*Fact{{Name: "F", Dimensions: []string{"D"},
					Measures: []Measure{{Name: "m", Type: TypeNumber}, {Name: "m", Type: TypeNumber}}}}}
		}, "duplicate measure"},
		{"duplicate fact dim ref", func() *Schema {
			d := &Dimension{Name: "D", Levels: []*Level{{Name: "L", Attributes: []Attribute{{Name: "n", Kind: KindDescriptor, Type: TypeString}}}}}
			return &Schema{Name: "X", Dimensions: []*Dimension{d},
				Facts: []*Fact{{Name: "F", Dimensions: []string{"D", "D"}}}}
		}, "twice"},
	}
	for _, tc := range cases {
		err := tc.build().Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.frag)
		}
	}
}

func TestBuilderRejectsUndeclaredDimension(t *testing.T) {
	b := NewBuilder("X")
	b.Fact("F").Measure("m").Uses("Ghost")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undeclared dimension") {
		t.Fatalf("err = %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := salesSchema(t)
	c := s.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	c.Dimensions[0].Levels[0].Name = "Mutated"
	c.Facts[0].Measures[0].Name = "Mutated"
	c.Facts[0].Dimensions[0] = "Mutated"
	if s.Dimensions[0].Levels[0].Name == "Mutated" {
		t.Error("clone aliases levels")
	}
	if s.Facts[0].Measures[0].Name == "Mutated" {
		t.Error("clone aliases measures")
	}
	if s.Facts[0].Dimensions[0] == "Mutated" {
		t.Error("clone aliases dimension refs")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := salesSchema(t)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schema
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("deserialized schema invalid: %v", err)
	}
	if back.Name != s.Name || len(back.Dimensions) != len(s.Dimensions) {
		t.Error("round trip lost structure")
	}
	if back.Dimension("Store").Level("City").Attribute("population") == nil {
		t.Error("round trip lost attribute")
	}
}

func TestRenderShape(t *testing.T) {
	out := salesSchema(t).Render()
	for _, frag := range []string{
		"Schema SalesDW",
		"Fact Sales",
		"FA UnitSales: number",
		"dims: Store, Customer, Product, Time",
		"Dimension Store",
		"Base Store",
		"Base City (r↑)",
		"D name: string",
		"OID storeID: string",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q in:\n%s", frag, out)
		}
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder("").MustBuild()
}

func TestDataTypeAndKindStrings(t *testing.T) {
	if TypeString.String() != "string" || TypeNumber.String() != "number" || TypeBool.String() != "bool" {
		t.Error("DataType strings wrong")
	}
	if DataType(99).String() != "invalid" {
		t.Error("invalid DataType string")
	}
	if KindOID.String() != "OID" || KindDescriptor.String() != "D" || KindAttribute.String() != "DA" {
		t.Error("AttrKind strings wrong")
	}
	if AttrKind(99).String() != "?" {
		t.Error("invalid AttrKind string")
	}
}

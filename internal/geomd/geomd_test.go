package geomd

import (
	"encoding/json"
	"strings"
	"testing"

	"sdwp/internal/geom"
	"sdwp/internal/mdmodel"
)

func baseMD(t testing.TB) *mdmodel.Schema {
	t.Helper()
	b := mdmodel.NewBuilder("SalesDW")
	b.Dimension("Store").
		Level("Store", "name").
		Level("City", "name").
		Level("State", "name")
	b.Dimension("Time").
		Level("Day", "date")
	b.Fact("Sales").Measure("UnitSales").Uses("Store", "Time")
	return b.MustBuild()
}

func TestBecomeSpatial(t *testing.T) {
	s := New(baseMD(t))
	if s.IsSpatial("Store", "Store") {
		t.Fatal("level spatial before promotion")
	}
	if err := s.BecomeSpatial("Store", "Store", geom.TypePoint); err != nil {
		t.Fatal(err)
	}
	got, ok := s.SpatialType("Store", "Store")
	if !ok || got != geom.TypePoint {
		t.Fatalf("SpatialType = %v,%v", got, ok)
	}
	// Idempotent with same type.
	if err := s.BecomeSpatial("Store", "Store", geom.TypePoint); err != nil {
		t.Fatalf("idempotent promotion failed: %v", err)
	}
	// Conflicting type is an error.
	if err := s.BecomeSpatial("Store", "Store", geom.TypePolygon); err == nil {
		t.Fatal("expected type conflict error")
	}
}

func TestBecomeSpatialErrors(t *testing.T) {
	s := New(baseMD(t))
	if err := s.BecomeSpatial("Ghost", "Store", geom.TypePoint); err == nil ||
		!strings.Contains(err.Error(), "unknown dimension") {
		t.Errorf("unknown dimension: %v", err)
	}
	if err := s.BecomeSpatial("Store", "Ghost", geom.TypePoint); err == nil ||
		!strings.Contains(err.Error(), "no level") {
		t.Errorf("unknown level: %v", err)
	}
	if err := s.BecomeSpatial("Store", "Store", geom.Type(99)); err == nil ||
		!strings.Contains(err.Error(), "invalid geometric type") {
		t.Errorf("invalid type: %v", err)
	}
}

func TestAddLayer(t *testing.T) {
	s := New(baseMD(t))
	if err := s.AddLayer("Airport", geom.TypePoint); err != nil {
		t.Fatal(err)
	}
	if err := s.AddLayer("Train", geom.TypeLine); err != nil {
		t.Fatal(err)
	}
	l, ok := s.Layer("Airport")
	if !ok || l.Geom != geom.TypePoint {
		t.Fatalf("Layer(Airport) = %+v,%v", l, ok)
	}
	if _, ok := s.Layer("Hospital"); ok {
		t.Error("unknown layer should not exist")
	}
	if got := s.Layers(); len(got) != 2 || got[0].Name != "Airport" {
		t.Errorf("Layers = %+v", got)
	}
	// Idempotent same type; conflict different type.
	if err := s.AddLayer("Airport", geom.TypePoint); err != nil {
		t.Errorf("idempotent AddLayer: %v", err)
	}
	if err := s.AddLayer("Airport", geom.TypePolygon); err == nil {
		t.Error("expected conflict on type change")
	}
	if err := s.AddLayer("", geom.TypePoint); err == nil {
		t.Error("empty name should error")
	}
	if err := s.AddLayer("X", geom.Type(0)); err == nil {
		t.Error("invalid type should error")
	}
}

func TestSpatialLevelsSorted(t *testing.T) {
	s := New(baseMD(t))
	_ = s.BecomeSpatial("Store", "City", geom.TypePoint)
	_ = s.BecomeSpatial("Store", "Store", geom.TypePoint)
	got := s.SpatialLevels()
	if len(got) != 2 || got[0] != "Store.City" || got[1] != "Store.Store" {
		t.Fatalf("SpatialLevels = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(baseMD(t))
	_ = s.AddLayer("Airport", geom.TypePoint)
	_ = s.BecomeSpatial("Store", "Store", geom.TypePoint)
	c := s.Clone()
	_ = c.AddLayer("Train", geom.TypeLine)
	_ = c.BecomeSpatial("Store", "City", geom.TypePoint)
	c.MD.Name = "Mutated"

	if _, ok := s.Layer("Train"); ok {
		t.Error("clone layer leaked into source")
	}
	if s.IsSpatial("Store", "City") {
		t.Error("clone promotion leaked into source")
	}
	if s.MD.Name == "Mutated" {
		t.Error("clone MD aliases source")
	}
	// Source decorations survive in clone.
	if !c.IsSpatial("Store", "Store") {
		t.Error("clone lost source promotion")
	}
	if _, ok := c.Layer("Airport"); !ok {
		t.Error("clone lost source layer")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := New(baseMD(t))
	_ = s.BecomeSpatial("Store", "Store", geom.TypePoint)
	_ = s.AddLayer("Airport", geom.TypePoint)
	_ = s.AddLayer("Train", geom.TypeLine)

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schema
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.IsSpatial("Store", "Store") {
		t.Error("round trip lost spatial level")
	}
	if l, ok := back.Layer("Train"); !ok || l.Geom != geom.TypeLine {
		t.Error("round trip lost layer")
	}
	if back.MD.Fact("Sales") == nil {
		t.Error("round trip lost MD schema")
	}
}

func TestJSONRejectsBadType(t *testing.T) {
	var s Schema
	err := json.Unmarshal([]byte(`{"md":{"name":"X"},"spatialLevels":{"A.B":"BLOB"}}`), &s)
	if err == nil {
		t.Fatal("expected error for unknown geometry type")
	}
}

func TestRenderAndDiffReproduceFig6Delta(t *testing.T) {
	base := New(baseMD(t))
	personalized := base.Clone()
	// The Example 5.1 rule applied to Fig. 2 yields Fig. 6.
	_ = personalized.AddLayer("Airport", geom.TypePoint)
	_ = personalized.BecomeSpatial("Store", "Store", geom.TypePoint)
	_ = personalized.AddLayer("Train", geom.TypeLine)

	out := personalized.Render()
	for _, frag := range []string{
		"SpatialLevels",
		"Store.Store: POINT",
		"Layer Airport: POINT",
		"Layer Train: LINE",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q:\n%s", frag, out)
		}
	}

	diff := personalized.Diff(base)
	want := []string{
		"+SpatialLevel Store.Store POINT",
		"+Layer Airport POINT",
		"+Layer Train LINE",
	}
	if len(diff) != len(want) {
		t.Fatalf("Diff = %v", diff)
	}
	for i := range want {
		if diff[i] != want[i] {
			t.Errorf("Diff[%d] = %q, want %q", i, diff[i], want[i])
		}
	}
	if got := base.Diff(base); len(got) != 0 {
		t.Errorf("self-diff should be empty, got %v", got)
	}
}
